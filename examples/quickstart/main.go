// Quickstart: model a small concurrent program, detect its data race,
// apply the fix, and verify the fix is clean.
//
// This is the library's minimal end-to-end flow: write the program
// against the modeled runtime (internal/sched), run it under a seeded
// scheduling strategy with a detector attached (internal/core), and
// read Go-race-detector-style reports (internal/report).
package main

import (
	"fmt"
	"log"
	"runtime"

	"gorace/internal/core"
	"gorace/internal/report"
	"gorace/internal/sched"
)

// racyCounter is the classic bug: two goroutines increment a shared
// counter without synchronization.
func racyCounter(g *sched.G) {
	g.Call("main", "counter.go", 1, func() {
		counter := sched.NewVar[int](g, "counter")
		wg := sched.NewWaitGroup(g, "wg")
		for i := 0; i < 2; i++ {
			wg.Add(g, 1)
			g.Go("inc", func(g *sched.G) {
				g.Call("main.func1", "counter.go", 5, func() {
					counter.Update(g, func(x int) int { return x + 1 })
				})
				wg.Done(g)
			})
		}
		wg.Wait(g)
	})
}

// fixedCounter guards the increment with a mutex.
func fixedCounter(g *sched.G) {
	g.Call("main", "counter.go", 1, func() {
		counter := sched.NewVar[int](g, "counter")
		mu := sched.NewMutex(g, "mu")
		wg := sched.NewWaitGroup(g, "wg")
		for i := 0; i < 2; i++ {
			wg.Add(g, 1)
			g.Go("inc", func(g *sched.G) {
				g.Call("main.func1", "counter.go", 5, func() {
					mu.Lock(g)
					counter.Update(g, func(x int) int { return x + 1 })
					mu.Unlock(g)
				})
				wg.Done(g)
			})
		}
		wg.Wait(g)
	})
}

func main() {
	// One Runner drives every run; detectors and strategies come from
	// the registries (core.WithDetector / core.WithStrategy select by
	// name). The same Runner sweeps many seeds in parallel.
	runner := core.NewRunner(core.WithParallelism(runtime.NumCPU()))

	fmt.Println("== detecting the racy counter ==")
	for seed := int64(0); ; seed++ {
		out, err := runner.RunSeed(racyCounter, seed)
		if err != nil {
			log.Fatal(err)
		}
		if len(out.Races) == 0 {
			continue // this schedule hid the race; try another seed
		}
		fmt.Printf("manifested at seed %d after trying %d schedule(s)\n\n", seed, seed+1)
		for _, r := range report.UniqueByHash(out.Races) {
			fmt.Println(r)
			fmt.Println("dedup hash:", r.Hash())
		}
		break
	}

	fmt.Println("\n== verifying the mutex fix across 50 schedules (in parallel) ==")
	outs, err := runner.RunBatch(fixedCounter, core.Seeds(0, 50))
	if err != nil {
		log.Fatal(err)
	}
	for _, out := range outs {
		if len(out.Races) > 0 {
			log.Fatalf("fix is wrong! race at seed %d:\n%s", out.Seed, out.Races[0])
		}
	}
	fmt.Println("clean: no race under any of 50 seeds")

	p, err := runner.DetectionProbability(racyCounter, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nracy-counter detection probability over 50 schedules: %.2f\n", p)
	fmt.Println("(the §3.2.1 flakiness that makes PR-time detection a misfit)")
}
