// Deployment: a compressed DataRaceSpy run (§3.3–3.5) over a small
// synthetic codebase — daily detector runs, dedup, ramped release,
// heuristic assignment with rationale logs, and fix dynamics — plus a
// demonstration of the §3.3.1 dedup hash surviving source churn.
package main

import (
	"fmt"

	"gorace/internal/pipeline"
	"gorace/internal/report"
	"gorace/internal/stack"
	"gorace/internal/trace"
)

func main() {
	fmt.Println("== 90-day mini deployment ==")
	cfg := pipeline.DefaultConfig()
	cfg.Days = 90
	cfg.PreexistingRaces = 120
	cfg.InitialRelease = 40
	cfg.NewRacesPerDay = 1.5
	cfg.FloodgateDay = 45
	cfg.ShepherdEndDay = 60
	cfg.Engineers = 40
	cfg.Teams = 5
	cfg.Files = 400
	o := pipeline.Run(cfg)
	for _, d := range o.Days {
		if d.Day%10 == 0 {
			fmt.Printf("day %2d: outstanding=%3d created=%3d resolved=%3d\n",
				d.Day, d.Outstanding, d.CreatedCum, d.ResolvedCum)
		}
	}
	fmt.Println()
	fmt.Print(pipeline.FormatSummary(o.Summary))

	fmt.Println("\n== assignee heuristic with rationale (§3.3.2) ==")
	org := pipeline.NewOrg(12, 3, 40, 0.3, 90, 7)
	for i := 0; i < 3; i++ {
		a := org.Assign(org.RandomFile(), org.RandomFile(), 30)
		fmt.Printf("race %d -> %s\n", i+1, a.Engineer.ID)
		for _, r := range a.Rationale {
			fmt.Printf("    %s\n", r)
		}
	}

	fmt.Println("\n== dedup hash stability (§3.3.1) ==")
	mk := func(line1, line2 int, flip bool) report.Race {
		a := report.Access{Op: trace.OpWrite, Stack: stack.NewContext(
			stack.Frame{Func: "processOrders", File: "orders.go", Line: line1},
			stack.Frame{Func: "processOrders.func1", File: "orders.go", Line: line2},
		)}
		b := report.Access{Op: trace.OpRead, Stack: stack.NewContext(
			stack.Frame{Func: "combineErrors", File: "orders.go", Line: line1 + 3},
		)}
		if flip {
			return report.Race{First: b, Second: a}
		}
		return report.Race{First: a, Second: b}
	}
	h1 := mk(10, 14, false).Hash()
	h2 := mk(92, 97, false).Hash() // unrelated edits moved every line
	h3 := mk(10, 14, true).Hash()  // detector saw the accesses in the other order
	fmt.Printf("original:            %s\n", h1)
	fmt.Printf("after line churn:    %s (equal: %v)\n", h2, h1 == h2)
	fmt.Printf("accesses swapped:    %s (equal: %v)\n", h3, h1 == h3)

	d := report.NewDeduper()
	fmt.Printf("file first:  %v\n", d.Add(mk(10, 14, false)))
	fmt.Printf("file dup:    %v (suppressed while open)\n", d.Add(mk(92, 97, true)))
	d.Resolve(h1)
	fmt.Printf("after fix:   %v (re-filed once resolved)\n", d.Add(mk(10, 14, false)))
}
