// Future: the paper's Listing 9 — a Future built from a channel plus
// shared response/err fields. When the caller's context is cancelled,
// Wait writes f.err while the future's goroutine also writes it (a
// data race), and the goroutine then blocks forever on the unbuffered
// channel send (a goroutine leak). This example detects both defects
// and then runs the repaired version.
package main

import (
	"fmt"
	"log"

	"gorace/internal/core"
	"gorace/internal/patterns"
	"gorace/internal/report"
)

func main() {
	p, ok := patterns.ByID("future-ctx-cancel")
	if !ok {
		log.Fatal("corpus pattern missing")
	}
	fmt.Println(p.Description)
	fmt.Println()

	runner := core.NewRunner(core.WithDetector("hybrid"))
	var raceSeen, leakSeen bool
	for seed := int64(0); seed < 200 && !(raceSeen && leakSeen); seed++ {
		out, err := runner.RunSeed(p.Racy, seed)
		if err != nil {
			log.Fatal(err)
		}
		if len(out.Races) > 0 && !raceSeen {
			raceSeen = true
			fmt.Printf("-- race manifested at seed %d --\n", seed)
			fmt.Println(report.UniqueByHash(out.Races)[0])
		}
		if out.Result.Deadlocked() && !leakSeen {
			leakSeen = true
			l := out.Result.Leaked[0]
			fmt.Printf("-- goroutine leak at seed %d --\n", seed)
			fmt.Printf("g%d (%s) blocked forever on %q (Listing 9 line 6: \"may block forever!\")\n\n",
				l.G, l.Name, l.BlockedOn)
		}
	}
	if !raceSeen || !leakSeen {
		log.Fatal("failed to manifest both defects")
	}

	fmt.Println("-- fixed variant (buffered channel; Wait does not touch f.err) --")
	outs, err := runner.RunBatch(p.Fixed, core.Seeds(0, 100))
	if err != nil {
		log.Fatal(err)
	}
	for _, out := range outs {
		if len(out.Races) > 0 || out.Result.Deadlocked() {
			log.Fatalf("fixed variant misbehaved at seed %d", out.Seed)
		}
	}
	fmt.Println("clean: no race, no leak, across 100 seeds")
}
