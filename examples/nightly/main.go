// Nightly: the end-to-end DataRaceSpy loop with nothing simulated but
// the developers. A synthetic monorepo embeds real corpus programs in
// its unit tests; every "night" the whole suite runs under fresh
// schedules with the FastTrack detector attached; detections are
// de-duplicated with the §3.3.1 hash against open defects; and fixing
// a defect swaps the test to the pattern's repaired variant.
//
// Watch two of the paper's observations appear organically: detection
// counts fluctuate night to night (schedule-dependent manifestation),
// and some races take many nights to surface for the first time.
package main

import (
	"fmt"

	"gorace/internal/monorepo"
)

func main() {
	repo := monorepo.Generate(12, 3, 0.6, 42)
	fmt.Printf("monorepo: %d services, %d tests, %d with latent races\n\n",
		len(repo.Services), 12*3, repo.RacyCount())

	firstSeen := make(map[string]int)
	for night := 0; night < 12; night++ {
		dets := repo.RunAllTests(int64(night) * 104729)
		fresh := 0
		for _, d := range dets {
			key := d.Service + "/" + d.Test
			if _, ok := firstSeen[key]; !ok {
				firstSeen[key] = night
				fresh++
			}
		}
		fmt.Printf("night %2d: %2d detections, %d races seen for the first time\n",
			night, len(dets), fresh)
	}

	late := 0
	for _, n := range firstSeen {
		if n > 0 {
			late++
		}
	}
	fmt.Printf("\n%d distinct racy tests detected; %d of them stayed dormant on night 0\n",
		len(firstSeen), late)
	fmt.Println("(the paper's §3.2.1 argument: the PR that introduces a race often isn't the one that trips it)")

	fmt.Println("\nrunning 20 nights of detection + fixing (fix rate 30%/defect/day):")
	res := repo.SimulateDeployment(20, 0.3, 7)
	last := res.Days[len(res.Days)-1]
	fmt.Printf("filed %d, fixed %d, %d open at the end, %d tests still racy\n",
		res.TotalFiled, res.TotalFixed, last.OpenDefects, res.StillRacy)
}
