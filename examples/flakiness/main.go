// Flakiness: quantify §3.2.1's core argument — dynamic race detection
// is non-deterministic, so a race dormant in the PR that introduces it
// can surface in a later, unrelated PR. For several corpus patterns,
// this example measures the per-schedule detection probability under
// each scheduling strategy, and then shows CHESS-style bounded
// exhaustive exploration pinning the race down deterministically.
package main

import (
	"fmt"
	"log"

	"gorace/internal/explore"
	"gorace/internal/patterns"
)

func main() {
	ids := []string{
		"capture-loop-index",
		"waitgroup-add-inside",
		"future-ctx-cancel",
		"statement-order",
		"map-concurrent-write",
	}
	const runs = 60

	fmt.Printf("P(race detected in one run), %d runs per cell\n\n", runs)
	var reports []explore.FlakinessReport
	for _, id := range ids {
		p, ok := patterns.ByID(id)
		if !ok {
			log.Fatalf("pattern %s missing", id)
		}
		reports = append(reports, explore.FlakinessReport{
			Pattern: id,
			Results: explore.CompareStrategies(p.Racy, runs, 0),
		})
	}
	fmt.Print(explore.FormatFlakiness(reports))

	fmt.Println("\nNo strategy detects every race every time — the paper's")
	fmt.Println("reason for rejecting PR-blocking (CI) deployment (§3.2.1).")

	fmt.Println("\n== bounded exhaustive exploration (CHESS-style) ==")
	p, _ := patterns.ByID("waitgroup-add-inside")
	res := explore.Exhaustive(p.Racy, 400)
	fmt.Printf("schedules explored: %d, racy schedules: %d\n", res.Schedules, res.Racy)
	if res.FirstRacy != nil {
		fmt.Printf("first racy schedule prefix: %v (replayable deterministically)\n", res.FirstRacy)
	}
}
