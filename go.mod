module gorace

go 1.21
