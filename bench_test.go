// Package gorace_test is the benchmark harness: one benchmark per
// table and figure in the paper's evaluation, plus the ablation
// benchmarks DESIGN.md calls out. See EXPERIMENTS.md for the mapping
// and for paper-vs-measured notes.
package gorace_test

import (
	"bytes"
	"context"
	"runtime"
	"runtime/debug"
	"testing"
	"time"

	"gorace/internal/core"
	"gorace/internal/corpusgen"
	"gorace/internal/detector"
	"gorace/internal/explore"
	"gorace/internal/fleet"
	"gorace/internal/patterns"
	"gorace/internal/pipeline"
	"gorace/internal/report"
	"gorace/internal/sched"
	"gorace/internal/staticcount"
	"gorace/internal/staticrace"
	"gorace/internal/stream"
	"gorace/internal/study"
	"gorace/internal/sweep"
	"gorace/internal/trace"
)

// --- E1: Table 1 — concurrency construct counts, Java vs Go ---

func BenchmarkTable1ConstructCounts(b *testing.B) {
	const lines = 100_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var gc staticcount.GoCounts
		for _, f := range corpusgen.GenGoRepo(corpusgen.UberGoProfile, lines, 1) {
			c, err := staticcount.CountGoSource(f.Name, f.Content)
			if err != nil {
				b.Fatal(err)
			}
			gc.Add(c)
		}
		var jc staticcount.JavaCounts
		for _, f := range corpusgen.GenJavaRepo(corpusgen.UberJavaProfile, lines, 1) {
			jc.Add(staticcount.CountJavaSource(f.Content))
		}
		ratio := staticcount.PerMLoC(gc.PointToPoint(), gc.Lines) /
			staticcount.PerMLoC(jc.PointToPoint(), jc.Lines)
		if ratio < 3 || ratio > 4.5 {
			b.Fatalf("p2p ratio %.2f drifted from the paper's 3.7x", ratio)
		}
	}
}

// --- E2: Figure 1 — concurrency CDF per language ---

func BenchmarkFigure1ConcurrencyCDF(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		series := fleet.RunExperiment(int64(i + 1))
		for _, s := range series {
			if s.Lang == "Go" && s.P50 != 2048 {
				b.Fatalf("Go p50 = %d, want 2048", s.P50)
			}
		}
	}
}

// --- E3: §3.3.1 — dedup hash under churn ---

func BenchmarkDedupPipeline(b *testing.B) {
	// Hash + dedup store throughput over a stream of reports with
	// line churn and order flips (the duplicates the scheme absorbs).
	races := manifestAllListings(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := report.NewDeduper()
		for _, r := range races {
			d.Add(r)
			// Flipped duplicate must be suppressed.
			d.Add(report.Race{First: r.Second, Second: r.First, Detector: r.Detector})
		}
		_, unique, _ := d.Stats()
		if unique == 0 {
			b.Fatal("no unique races")
		}
	}
}

// --- E4/E5: Figures 3 and 4 — deployment time series ---

func BenchmarkFigure3Outstanding(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := pipeline.DefaultConfig()
		cfg.Seed = int64(i + 1)
		o := pipeline.Run(cfg)
		if s := pipeline.FormatFigure3(o); len(s) == 0 {
			b.Fatal("empty series")
		}
	}
}

func BenchmarkFigure4FoundFixed(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := pipeline.DefaultConfig()
		cfg.Seed = int64(i + 1)
		o := pipeline.Run(cfg)
		last := o.Days[len(o.Days)-1]
		if last.CreatedCum <= last.ResolvedCum {
			b.Fatal("created must exceed resolved at the end (paper shape)")
		}
	}
}

// --- E6/E7: Tables 2 and 3 — category counts ---

func BenchmarkTable2GoPatternCounts(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := study.RunTable23(0.1, int64(i+1))
		if len(r.Table2) == 0 {
			b.Fatal("empty table 2")
		}
	}
}

func BenchmarkTable3AgnosticCounts(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := study.RunTable23(0.1, int64(i+1))
		if len(r.Table3) == 0 {
			b.Fatal("empty table 3")
		}
	}
}

// --- E8: §3.5 overhead — detector cost over the corpus ---

// mustDetector builds a detector from the registry; benchmarks treat
// lookup failure as a harness bug.
func mustDetector(b *testing.B, name string) detector.Detector {
	b.Helper()
	d, err := detector.New(name)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// corpusWorkload runs every corpus racy variant once under one seed.
func corpusWorkload(seed int64, ls ...trace.Listener) {
	for _, p := range patterns.All() {
		sched.Run(p.Racy, sched.Options{
			Strategy: sched.NewRandom(), Seed: seed, MaxSteps: 1 << 16,
			Listeners: ls,
		})
	}
}

func BenchmarkDetectorOverheadNone(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		corpusWorkload(int64(i))
	}
}

func BenchmarkDetectorOverheadEpoch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		corpusWorkload(int64(i), mustDetector(b, "epoch"))
	}
}

func BenchmarkDetectorOverheadFastTrack(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		corpusWorkload(int64(i), mustDetector(b, "fasttrack"))
	}
}

func BenchmarkDetectorOverheadDJIT(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		corpusWorkload(int64(i), mustDetector(b, "djit"))
	}
}

func BenchmarkDetectorOverheadEraser(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		corpusWorkload(int64(i), mustDetector(b, "eraser"))
	}
}

func BenchmarkDetectorOverheadHybrid(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		corpusWorkload(int64(i), mustDetector(b, "hybrid"))
	}
}

// --- E9: §3.2.1 — flakiness / schedule exploration ---

func BenchmarkFlakinessRandom(b *testing.B) {
	p, _ := patterns.ByID("waitgroup-add-inside")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		explore.Probe(p.Racy, "random", 20, int64(i), 1)
	}
}

func BenchmarkFlakinessPCT(b *testing.B) {
	p, _ := patterns.ByID("waitgroup-add-inside")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		explore.Probe(p.Racy, "pct", 20, int64(i), 1)
	}
}

func BenchmarkExhaustiveExploration(b *testing.B) {
	p, _ := patterns.ByID("capture-loop-index")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := explore.Exhaustive(p.Racy, 100)
		if res.Racy == 0 {
			b.Fatal("exploration lost the race")
		}
	}
}

// --- E8 (pure analysis cost): replay a recorded trace into each
// detector, isolating detector cost from the modeled scheduler. This
// is the number comparable to TSan's 2×–20× instrumentation overhead:
// events-with-detection vs events-without.

func recordHeavyTrace(b *testing.B) *trace.Recorder {
	b.Helper()
	rec := &trace.Recorder{}
	sched.Run(heavyProgram, sched.Options{
		Strategy: sched.NewRandom(), Seed: 1, MaxSteps: 1 << 18,
		Listeners: []trace.Listener{rec},
	})
	if len(rec.Events) == 0 {
		b.Fatal("empty trace")
	}
	return rec
}

func BenchmarkReplayBaselineNoop(b *testing.B) {
	rec := recordHeavyTrace(b)
	noop := trace.ListenerFunc(func(trace.Event) {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Replay(noop)
	}
}

func BenchmarkReplayFastTrack(b *testing.B) {
	rec := recordHeavyTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Replay(mustDetector(b, "fasttrack"))
	}
}

func BenchmarkReplayEpoch(b *testing.B) {
	rec := recordHeavyTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Replay(mustDetector(b, "epoch"))
	}
}

func BenchmarkReplayDJIT(b *testing.B) {
	rec := recordHeavyTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Replay(mustDetector(b, "djit"))
	}
}

func BenchmarkReplayEraser(b *testing.B) {
	rec := recordHeavyTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Replay(mustDetector(b, "eraser"))
	}
}

// --- Hot path: steady-state per-event cost of a recycled detector ---
//
// Each benchmark replays the same recorded heavy trace into ONE
// detector instance that is Reset between iterations — the shape of a
// fleet-scale sweep, where core.Runner recycles per-worker detector
// state across seeds. ReportAllocs makes the allocation-free claim
// measurable: steady-state allocs/op must stay far below the
// construct-per-run Replay* benchmarks above (the pre-recycling
// baseline: FastTrack replayed at 442 allocs/op before the dense
// shadow slices and clock pooling landed).

func benchHotPath(b *testing.B, name string) {
	rec := recordHeavyTrace(b)
	det := mustDetector(b, name)
	rs, ok := det.(detector.Resetter)
	if !ok {
		b.Fatalf("detector %q is not resettable", name)
	}
	// Prime once so slice growth to the trace's high-water mark is not
	// billed to the steady state.
	rec.Replay(det)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs.Reset()
		rec.Replay(det)
	}
}

func BenchmarkFastTrackHotPath(b *testing.B) { benchHotPath(b, "fasttrack") }

func BenchmarkEpochHotPath(b *testing.B) { benchHotPath(b, "epoch") }

func BenchmarkDJITHotPath(b *testing.B) { benchHotPath(b, "djit") }

func BenchmarkEraserHotPath(b *testing.B) { benchHotPath(b, "eraser") }

func BenchmarkHybridHotPath(b *testing.B) { benchHotPath(b, "hybrid") }

// benchSampledHotPath is the sampled variant of benchHotPath: the
// same recycled FastTrack behind a deterministic 1-in-rate access
// gate, measuring what a sample:<n> campaign actually pays per event
// (the gate still consumes every event; only the detection work is
// skipped). docs/DETECTORS.md's tuning guide reads these numbers
// against the detection-probability table.
func benchSampledHotPath(b *testing.B, rate int) {
	rec := recordHeavyTrace(b)
	d, err := detector.New("fasttrack", detector.WithSampleRate(rate))
	if err != nil {
		b.Fatal(err)
	}
	s, ok := d.(*detector.Sampled)
	if !ok {
		b.Fatalf("rate %d did not wrap in a sampling gate", rate)
	}
	s.SetRunSeed(1)
	rec.Replay(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
		rec.Replay(s)
	}
}

func BenchmarkFastTrackHotPathSample4(b *testing.B) { benchSampledHotPath(b, 4) }

func BenchmarkFastTrackHotPathSample16(b *testing.B) { benchSampledHotPath(b, 16) }

// --- Ablations (DESIGN.md) ---

// heavyProgram stresses shadow-memory operations: many goroutines,
// many cells, mixed sync.
func heavyProgram(g *sched.G) {
	const workers = 8
	vars := make([]*sched.Var[int], 16)
	for i := range vars {
		vars[i] = sched.NewVar[int](g, "cell")
	}
	mu := sched.NewMutex(g, "mu")
	wg := sched.NewWaitGroup(g, "wg")
	for w := 0; w < workers; w++ {
		wg.Add(g, 1)
		w := w
		g.Go("worker", func(g *sched.G) {
			for i := 0; i < 40; i++ {
				v := vars[(w*7+i)%len(vars)]
				if i%3 == 0 {
					mu.Lock(g)
					v.Update(g, func(x int) int { return x + 1 })
					mu.Unlock(g)
				} else {
					v.Load(g)
				}
			}
			wg.Done(g)
		})
	}
	wg.Wait(g)
}

func BenchmarkAblationEpochs(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ep := mustDetector(b, "epoch")
		sched.Run(heavyProgram, sched.Options{
			Strategy: sched.NewRandom(), Seed: int64(i), MaxSteps: 1 << 18,
			Listeners: []trace.Listener{ep},
		})
	}
}

func BenchmarkAblationFullVC(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dj := mustDetector(b, "djit")
		sched.Run(heavyProgram, sched.Options{
			Strategy: sched.NewRandom(), Seed: int64(i), MaxSteps: 1 << 18,
			Listeners: []trace.Listener{dj},
		})
	}
}

func BenchmarkAblationHybridVsHB(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hy := mustDetector(b, "hybrid")
		sched.Run(heavyProgram, sched.Options{
			Strategy: sched.NewRandom(), Seed: int64(i), MaxSteps: 1 << 18,
			Listeners: []trace.Listener{hy},
		})
	}
}

// --- Runner batch scaling: serial DetectionProbability vs parallel
// RunBatch over a 64-seed sweep of the heavy program. The paper's
// deployment lesson is that detection pays off at fleet scale; this
// pair quantifies the parallel batch primitive's wall-clock win on
// one machine.

func BenchmarkRunBatchSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p, err := core.DetectionProbability(heavyProgram, core.Config{
			MaxSteps: 1 << 18, Seed: int64(i),
		}, 64)
		if err != nil {
			b.Fatal(err)
		}
		_ = p
	}
}

func BenchmarkRunBatchParallel(b *testing.B) {
	runner := core.NewRunner(
		core.WithMaxSteps(1<<18),
		core.WithParallelism(runtime.NumCPU()),
	)
	for i := 0; i < b.N; i++ {
		outs, err := runner.RunBatch(heavyProgram, core.Seeds(int64(i), 64))
		if err != nil {
			b.Fatal(err)
		}
		if len(outs) != 64 {
			b.Fatal("incomplete batch")
		}
	}
}

// --- Extension: static analysis of the §4 patterns ---

const staticBenchSrc = `package p

import "sync"

func processJobs(jobs []int) {
	var wg sync.WaitGroup
	errMap := make(map[int]error)
	for _, job := range jobs {
		go func() {
			wg.Add(1)
			errMap[job] = nil
			wg.Done()
		}()
	}
	wg.Wait()
}

func critical(mu sync.Mutex) (count int) {
	mu.Lock()
	go func() { count++ }()
	mu.Unlock()
	return 10
}
`

func BenchmarkStaticAnalyzer(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fs, err := staticrace.AnalyzeSource("bench.go", staticBenchSrc)
		if err != nil {
			b.Fatal(err)
		}
		if len(fs) < 4 {
			b.Fatalf("analyzer lost findings: %d", len(fs))
		}
	}
}

// --- Extension: post-facto trace persistence ---
//
// The codec pair measures the record-once/analyze-many hot path: one
// full save+load round trip of the heavy trace per iteration, with
// the encoded size reported as bytes/trace. The binary codec's
// acceptance bar is ≥5× smaller and ≥10× faster than JSON Lines.

func benchCodecRoundTrip(b *testing.B, save func(*trace.Recorder, *bytes.Buffer) error) {
	rec := recordHeavyTrace(b)
	var size int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := save(rec, &buf); err != nil {
			b.Fatal(err)
		}
		size = buf.Len()
		got, err := trace.Load(&buf)
		if err != nil || len(got.Events) != len(rec.Events) {
			b.Fatalf("round trip broken: %v", err)
		}
	}
	b.ReportMetric(float64(size), "bytes/trace")
}

func BenchmarkTraceCodecJSON(b *testing.B) {
	benchCodecRoundTrip(b, func(r *trace.Recorder, buf *bytes.Buffer) error {
		return r.SaveJSON(buf)
	})
}

func BenchmarkTraceCodecBinary(b *testing.B) {
	benchCodecRoundTrip(b, func(r *trace.Recorder, buf *bytes.Buffer) error {
		return r.Save(buf)
	})
}

// --- Extension: online streaming ingest under a memory ceiling ---

// BenchmarkStreamIngest streams a pre-encoded synthetic trace through
// a ceilinged online Ingestor, one 100k-event stream per op — under
// CI's -benchtime 100x that is the paper-scale 10M events per bench
// run. Throughput is the ns/op number; the ceiling contract is the
// assertion: peak HeapAlloc sampled across the whole run must stay
// under the 64 MiB ceiling (skipped under -race, whose shadow words
// void any absolute heap figure), and every op must detect at least
// 90% of the planted races. The full ceiling-degradation table lives
// in `racedetect -stream-bench`; this benchmark pins the one point CI
// gates on.
func BenchmarkStreamIngest(b *testing.B) {
	const ceilingMiB = 64
	spec := stream.SynthSpec{
		Events:     100_000,
		Goroutines: 8,
		Addrs:      1 << 13, // working set sized to fit the ceiling's page budget
		Planted:    10,
		Seed:       1,
	}
	var buf bytes.Buffer
	if err := spec.Write(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()

	// Same pairing RunCeilingSweep documents: the page budget bounds
	// shadow state, the soft limit (with headroom) bounds decode churn.
	prev := debug.SetMemoryLimit(ceilingMiB << 20 * 3 / 4)
	defer debug.SetMemoryLimit(prev)
	runtime.GC()
	stop := make(chan struct{})
	peak := make(chan uint64, 1)
	go func() {
		var ms runtime.MemStats
		max := uint64(0)
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > max {
				max = ms.HeapAlloc
			}
			select {
			case <-stop:
				peak <- max
				return
			case <-time.After(2 * time.Millisecond):
			}
		}
	}()

	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ing, err := stream.NewIngestor(stream.Config{MemCeilingMiB: ceilingMiB})
		if err != nil {
			b.Fatal(err)
		}
		res, err := ing.Ingest(context.Background(), bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		if got := spec.DetectedPlanted(res.Races); got*10 < spec.Planted*9 {
			b.Fatalf("detected %d/%d planted races, need >=90%%", got, spec.Planted)
		}
	}
	b.StopTimer()
	close(stop)
	peakMiB := float64(<-peak) / (1 << 20)
	b.ReportMetric(peakMiB, "peak-heap-MiB")
	if !raceEnabled && peakMiB >= ceilingMiB {
		b.Fatalf("peak heap %.1f MiB broke the %d MiB ceiling", peakMiB, ceilingMiB)
	}
}

// --- Extension: the streaming sweep campaign engine ---

// BenchmarkSweepCampaign runs a small corpus-wide campaign (4 racy
// patterns × 2 strategies × 16 seeds) through the engine with all
// three standard aggregators attached, serially — the per-run engine
// overhead, not parallel speedup, is the measurement.
func BenchmarkSweepCampaign(b *testing.B) {
	ids := []string{"capture-loop-index", "partial-locking", "map-concurrent-write", "capture-err"}
	var units []sweep.Unit
	for _, id := range ids {
		p, ok := patterns.ByID(id)
		if !ok {
			b.Fatalf("pattern %s missing", id)
		}
		for _, s := range []string{"random", "pct"} {
			units = append(units, sweep.Unit{
				ID: id + "/" + s, Program: p.Racy, Strategy: s,
				Runs: 16, MaxSteps: 1 << 16,
			})
		}
	}
	eng := sweep.New(sweep.WithParallelism(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		aggs, stats, err := eng.Run(units,
			func() sweep.Aggregator { return sweep.NewProb() },
			func() sweep.Aggregator { return sweep.NewCorpus() },
			func() sweep.Aggregator { return sweep.NewFirstRace() },
		)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Runs != len(units)*16 || len(aggs[1].(*sweep.Corpus).Detections()) == 0 {
			b.Fatalf("campaign lost work: %+v", stats)
		}
	}
}

// manifestAllListings collects one report per listing-backed pattern.
func manifestAllListings(b *testing.B) []report.Race {
	b.Helper()
	runner := core.NewRunner(core.WithMaxSteps(1 << 16))
	var out []report.Race
	for _, p := range patterns.All() {
		if p.Listing == 0 {
			continue
		}
		for seed := int64(0); seed < 60; seed++ {
			res, err := runner.RunSeed(p.Racy, seed)
			if err != nil {
				b.Fatal(err)
			}
			if res.HasRace() {
				out = append(out, res.Races[0])
				break
			}
		}
	}
	if len(out) == 0 {
		b.Fatal("no listing races manifested")
	}
	return out
}
