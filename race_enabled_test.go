//go:build race

package gorace_test

// raceEnabled reports whether the race detector instruments this
// build. Shadow-word instrumentation multiplies every allocation, so
// absolute-heap assertions (BenchmarkStreamIngest's ceiling check) are
// meaningless under -race and gate themselves off on this constant.
const raceEnabled = true
