package gorace_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestBinariesBuildAndRun compiles every command and example and
// executes each with fast arguments, asserting on headline output.
// This is the repo's end-to-end smoke: public API, corpus, detectors,
// simulations, and the CLIs all have to cooperate.
func TestBinariesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("binary integration skipped in -short mode")
	}
	bin := t.TempDir()

	build := func(pkg string) string {
		t.Helper()
		name := filepath.Join(bin, filepath.Base(pkg))
		cmd := exec.Command("go", "build", "-o", name, "./"+pkg)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
		return name
	}

	runOK := func(name string, wantSubstr string, args ...string) string {
		t.Helper()
		out, err := exec.Command(name, args...).CombinedOutput()
		if err != nil {
			if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 ||
				!strings.Contains(filepath.Base(name), "staticrace") {
				t.Fatalf("run %s %v: %v\n%s", name, args, err, out)
			}
		}
		if wantSubstr != "" && !strings.Contains(string(out), wantSubstr) {
			t.Fatalf("%s %v output missing %q:\n%s", name, args, wantSubstr, out)
		}
		return string(out)
	}

	// Commands.
	racedetect := build("cmd/racedetect")
	runOK(racedetect, "capture-loop-index", "-list")
	runOK(racedetect, "WARNING: DATA RACE", "-pattern", "capture-err", "-seeds", "40")

	gocount := build("cmd/gocount")
	runOK(gocount, "Table 1", "-go-lines", "50000", "-java-lines", "20000")

	fleetscan := build("cmd/fleetscan")
	runOK(fleetscan, "p50", "-seed", "7")

	racespy := build("cmd/racespy")
	runOK(racespy, "Figure 3", "-days", "60")
	runOK(racespy, "day,outstanding", "-days", "30", "-fig3")
	runOK(racespy, "end-to-end deployment", "-real", "-days", "4")

	racetable := build("cmd/racetable")
	runOK(racetable, "Concurrent slice access", "-scale", "0.05")

	staticraceBin := build("cmd/staticrace")
	racy := filepath.Join(bin, "racy.go")
	if err := os.WriteFile(racy, []byte("package d\nfunc f(js []int){for _,j:=range js{go func(){_=j}()}}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	runOK(staticraceBin, "loop-capture", racy)

	raceanalyze := build("cmd/raceanalyze")
	traceFile := filepath.Join(bin, "m.trace")
	out, err := exec.Command(racedetect, "-pattern", "map-concurrent-write",
		"-save-trace", traceFile, "-seeds", "40").CombinedOutput()
	if err != nil {
		t.Fatalf("save-trace: %v\n%s", err, out)
	}
	runOK(raceanalyze, "unique race", "-trace", traceFile)

	// Examples.
	runOK(build("examples/quickstart"), "clean: no race under any of 50 seeds")
	runOK(build("examples/future"), "clean: no race, no leak")
	runOK(build("examples/deployment"), "dedup hash stability")
	runOK(build("examples/flakiness"), "P(race detected in one run)")
	runOK(build("examples/nightly"), "running 20 nights")
}
