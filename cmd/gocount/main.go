// Command gocount regenerates Table 1: concurrency-construct counts
// for a Go and a Java monorepo at the paper's densities. The synthetic
// monorepos are generated at a configurable scale (the paper's are 46
// and 19 MLoC; the default here is 1:100 of that).
package main

import (
	"flag"
	"fmt"

	"gorace/internal/corpusgen"
	"gorace/internal/staticcount"
)

func main() {
	var (
		goLines   = flag.Int("go-lines", 460_000, "lines of synthetic Go to generate")
		javaLines = flag.Int("java-lines", 190_000, "lines of synthetic Java to generate")
		seed      = flag.Int64("seed", 1, "generation seed")
	)
	flag.Parse()

	var gc staticcount.GoCounts
	for _, f := range corpusgen.GenGoRepo(corpusgen.UberGoProfile, *goLines, *seed) {
		c, err := staticcount.CountGoSource(f.Name, f.Content)
		if err != nil {
			fmt.Printf("parse error in %s: %v\n", f.Name, err)
			continue
		}
		gc.Add(c)
	}
	var jc staticcount.JavaCounts
	for _, f := range corpusgen.GenJavaRepo(corpusgen.UberJavaProfile, *javaLines, *seed) {
		jc.Add(staticcount.CountJavaSource(f.Content))
	}

	per := staticcount.PerMLoC
	fmt.Println("Table 1: use of concurrency and synchronization constructs (synthetic monorepos)")
	fmt.Printf("%-38s %14s %14s\n", "Feature", "Java", "Go")
	fmt.Printf("%-38s %14d %14d\n", "LoC", jc.Lines, gc.Lines)
	fmt.Printf("%-38s %14d %14d\n", "concurrency creation", jc.ThreadStarts, gc.GoStatements)
	fmt.Printf("%-38s %14.1f %14.1f   (paper: 219.1 vs 250.3)\n", "  total/MLoC",
		per(jc.ThreadStarts, jc.Lines), per(gc.GoStatements, gc.Lines))
	fmt.Printf("%-38s %14d %14s\n", "p2p: synchronized", jc.Synchronized, "-")
	fmt.Printf("%-38s %14d %14s\n", "p2p: acquire+release", jc.AcquireRelease, "-")
	fmt.Printf("%-38s %14d %14d\n", "p2p: lock+unlock", jc.LockUnlock, gc.LockUnlock)
	fmt.Printf("%-38s %14s %14d\n", "p2p: rlock+runlock", "-", gc.RLockRUnlock)
	fmt.Printf("%-38s %14s %14d\n", "p2p: channel send/recv", "-", gc.ChanOps)
	goP2P, javaP2P := per(gc.PointToPoint(), gc.Lines), per(jc.PointToPoint(), jc.Lines)
	fmt.Printf("%-38s %14.1f %14.1f   (paper: 203 vs 754.2, 3.7x; here %.1fx)\n",
		"  total/MLoC", javaP2P, goP2P, goP2P/javaP2P)
	fmt.Printf("%-38s %14d %14d\n", "group: latch/barrier | WaitGroup", jc.GroupSync, gc.WaitGroupUses)
	goGrp, javaGrp := per(gc.WaitGroupUses, gc.Lines), per(jc.GroupSync, jc.Lines)
	fmt.Printf("%-38s %14.1f %14.1f   (paper: 55.9 vs 104.2, 1.9x; here %.1fx)\n",
		"  total/MLoC", javaGrp, goGrp, goGrp/javaGrp)
	goMap, javaMap := per(gc.MapConstructs, gc.Lines), per(jc.MapConstructs, jc.Lines)
	fmt.Printf("%-38s %14d %14d\n", "map constructs (§4.4)", jc.MapConstructs, gc.MapConstructs)
	fmt.Printf("%-38s %14.1f %14.1f   (paper: 4389 vs 5950, 1.34x; here %.2fx)\n",
		"  total/MLoC", javaMap, goMap, goMap/javaMap)
}
