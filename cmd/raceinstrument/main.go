// Command raceinstrument rewrites a real Go package onto the modeled
// scheduler's event vocabulary, producing a self-contained program
// function runnable under the repo's deterministic schedules and race
// detectors.
//
// General mode instruments one package directory:
//
//	raceinstrument -dir internal/stack -harness h.go -entry RacyTrace -name StackTrace -o out.go
//
// Dogfood mode regenerates every committed internal/progs source from
// the curated spec table (instrument.DogfoodPrograms):
//
//	raceinstrument -dogfood [-root .]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"gorace/internal/instrument"
)

func main() {
	var (
		dir      = flag.String("dir", "", "subject package directory to instrument")
		harness  = flag.String("harness", "", "optional harness file merged into the package")
		entry    = flag.String("entry", "", "niladic entry function the program invokes")
		name     = flag.String("name", "", "generated program name (func Prog<name>)")
		out      = flag.String("o", "", "output file (default stdout)")
		pkg      = flag.String("pkg", "progs", "package clause of the generated file")
		coalesce = flag.Bool("coalesce", true, "coalesce redundant adjacent accesses")
		dogfood  = flag.Bool("dogfood", false, "regenerate the committed internal/progs sources")
		root     = flag.String("root", ".", "repo root (dogfood mode)")
	)
	flag.Parse()

	if *dogfood {
		if err := regenerate(*root); err != nil {
			fmt.Fprintln(os.Stderr, "raceinstrument:", err)
			os.Exit(1)
		}
		return
	}

	if *dir == "" || *entry == "" || *name == "" {
		fmt.Fprintln(os.Stderr, "raceinstrument: -dir, -entry, and -name are required (or use -dogfood)")
		os.Exit(2)
	}
	opts := instrument.Options{
		ProgName: *name, Entry: *entry, OutPkg: *pkg, Coalesce: *coalesce,
	}
	if *harness != "" {
		src, err := os.ReadFile(*harness)
		if err != nil {
			fmt.Fprintln(os.Stderr, "raceinstrument:", err)
			os.Exit(1)
		}
		opts.ExtraFiles = map[string]string{"zz_harness.go": string(src)}
	}
	o, err := instrument.Dir(*dir, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "raceinstrument:", err)
		os.Exit(1)
	}
	if *out == "" {
		os.Stdout.Write(o.Source)
		return
	}
	if err := os.WriteFile(*out, o.Source, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "raceinstrument:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%s)\n", *out, o.FuncName)
}

// regenerate rewrites every dogfood target's generated files in place.
func regenerate(root string) error {
	for _, p := range instrument.DogfoodPrograms() {
		racy, fixed, err := instrument.GenerateDogfood(root, p)
		if err != nil {
			return err
		}
		for _, w := range []struct {
			path string
			src  []byte
			fn   string
		}{
			{p.OutRacy, racy.Source, racy.FuncName},
			{p.OutFixed, fixed.Source, fixed.FuncName},
		} {
			dst := filepath.Join(root, filepath.FromSlash(w.path))
			if err := os.WriteFile(dst, w.src, 0o644); err != nil {
				return err
			}
			fmt.Printf("wrote %s (%s)\n", w.path, w.fn)
		}
	}
	return nil
}
