// Command raceanalyze performs post-facto analysis (§3.3): it loads an
// event trace previously saved by `racedetect -save-trace` and replays
// it into a fresh detector, proving that detection verdicts do not
// depend on being attached to the live execution.
//
// The trace format is auto-detected: the versioned binary codec (the
// default racedetect writes) and legacy JSON Lines traces both load.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gorace/internal/detector"
	"gorace/internal/report"
	"gorace/internal/trace"
)

func main() {
	var (
		in       = flag.String("trace", "", "trace file (binary codec or legacy JSON Lines) to analyze")
		det      = flag.String("detector", detector.DefaultName, "one of: "+strings.Join(detector.Names(), ", "))
		jsonOut  = flag.Bool("json", false, "emit reports as JSON Lines")
		suppFile = flag.String("suppressions", "", "TSan-style suppression file; matching reports are dropped")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "usage: raceanalyze -trace file [-detector d] [-suppressions file] [-json]")
		os.Exit(2)
	}
	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer f.Close()
	rec, err := trace.Load(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	d, err := detector.New(*det)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	rec.Replay(d)
	races, name := d.Races(), d.Name()
	report.SortRaces(races)
	races = report.UniqueByHash(races)

	suppressed := 0
	if *suppFile != "" {
		text, err := os.ReadFile(*suppFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		sl, err := report.ParseSuppressions(string(text))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		races, suppressed = sl.Apply(races)
	}

	if *jsonOut {
		if err := report.WriteJSON(os.Stdout, races); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}
	fmt.Printf("analyzed %d events with %s: %d unique race(s)", len(rec.Events), name, len(races))
	if suppressed > 0 {
		fmt.Printf(" (%d suppressed)", suppressed)
	}
	fmt.Printf("\n\n")
	for _, r := range races {
		fmt.Println(r)
		fmt.Printf("dedup hash: %s\n\n", r.Hash())
	}
	for _, c := range report.UniqueByHash(d.Candidates()) {
		fmt.Printf("LOCKSET CANDIDATE (may not manifest):\n%s\n", c)
	}
}
