// Command raced is the race-detection-and-corpus service: an
// HTTP/JSON daemon (internal/service) that serves a persistent race
// corpus to concurrent readers off immutable snapshots, executes
// detection campaigns submitted as asynchronous jobs on a bounded
// worker pool, and accepts nightly monorepo publishes into the live
// store — the paper's deployed-at-scale pipeline (§3) as a process
// you can curl.
//
// Usage:
//
//	raced -db corpus.db [-addr :8077] [-workers 2] [-queue 16]
//	      [-parallel N] [-max-seeds 512] [-drain 30s] [-quiet]
//	      [-ingest-streams 4] [-ingest-window 1024] [-ingest-ceiling 64]
//	      [-nightly-services 4] [-nightly-tests 4]
//	      [-nightly-racy 0.4] [-nightly-seed 1]
//
// Distributed mode (see docs/SERVICE.md "Distributed mode"): one
// coordinator owns the store and the jobs API and dispatches campaign
// shards to joined workers; workers are store-less, execute shards,
// and serve reads from snapshots replicated off the coordinator.
//
//	raced -db corpus.db -coordinator [-shard-runs 16] [-inflight 2]
//	      [-heartbeat 2s] [-dead-after 10s]
//	raced -worker -join http://coordinator:8077 [-advertise URL]
//	      [-shard-parallel N] [-pull 2s] [-heartbeat 2s]
//
// Endpoints (see docs/SERVICE.md for schemas and examples):
//
//	GET  /healthz            liveness + role + snapshot generation + job load
//	GET  /v1/stats           corpus summary
//	GET  /v1/races           defect listing (unit=, category=, run=, sort=count, limit=)
//	GET  /v1/races/{id}      one defect by dedup key
//	GET  /v1/diff?a=&b=      defects new/resolved/recurring between runs
//	GET  /v1/replay/{id}     re-detect a defect from its saved trace
//	POST /v1/jobs            submit a campaign spec; 202 + job id (429 when full)
//	GET  /v1/jobs/{id}       job status and live progress
//	GET  /v1/jobs/{id}/results  finished results as JSON Lines
//	POST /v1/ingest?run=     detect a binary trace stream online and fold it in
//	POST /v1/nightly         run a monorepo nightly and append it to the store
//	POST /v1/cluster/join    (coordinator) worker registration
//	POST /v1/cluster/heartbeat  (coordinator) worker liveness beat
//	GET  /v1/cluster         (coordinator) worker registry status
//	GET  /v1/replica?since=  (coordinator) binary snapshot for replicas
//	POST /v1/shards          (worker) execute one dispatched shard
//
// On SIGINT/SIGTERM the server drains gracefully: the listener stops,
// in-flight requests and queued jobs finish (bounded by -drain), and
// the store is synced and closed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gorace/internal/corpus"
	"gorace/internal/monorepo"
	"gorace/internal/service"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}

func main() {
	var (
		addr     = flag.String("addr", ":8077", "listen address")
		db       = flag.String("db", "", "corpus store file (created if missing; required except with -worker)")
		workers  = flag.Int("workers", 2, "concurrent campaign-job executors")
		queue    = flag.Int("queue", 16, "pending-job queue bound (full queue answers 429)")
		parallel = flag.Int("parallel", 0, "sweep workers per campaign (default GOMAXPROCS)")
		maxSeeds = flag.Int("max-seeds", 512, "per-job seed cap")
		drain    = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight work")
		quiet    = flag.Bool("quiet", false, "suppress per-request logging")

		ingStreams = flag.Int("ingest-streams", 0, "concurrent /v1/ingest streams (default 4; past it: 429 + Retry-After)")
		ingWindow  = flag.Int("ingest-window", 0, "per-goroutine retained-event window for ingests (0 = default 1024, <0 = none)")
		ingCeiling = flag.Int("ingest-ceiling", 0, "shadow-memory ceiling per ingest stream in MiB (0 = unbounded; engages the paged detector)")

		nSvc  = flag.Int("nightly-services", 4, "monorepo services for /v1/nightly runs")
		nTest = flag.Int("nightly-tests", 4, "unit tests per monorepo service")
		nRacy = flag.Float64("nightly-racy", 0.4, "fraction of monorepo tests embedding a racy pattern")
		nSeed = flag.Int64("nightly-seed", 1, "monorepo generation seed (fixes which tests are racy)")

		coordinator = flag.Bool("coordinator", false, "run as a cluster coordinator: dispatch campaigns to joined workers")
		worker      = flag.Bool("worker", false, "run as a store-less worker node (requires -join)")
		join        = flag.String("join", "", "coordinator base URL a -worker node joins")
		advertise   = flag.String("advertise", "", "base URL this worker advertises to the coordinator (default derived from -addr)")
		shardRuns   = flag.Int("shard-runs", 0, "seeds per dispatched shard on the coordinator (default 16)")
		inflight    = flag.Int("inflight", 0, "concurrent shard dispatches per worker (default 2)")
		heartbeat   = flag.Duration("heartbeat", 0, "heartbeat period (default 2s)")
		deadAfter   = flag.Duration("dead-after", 0, "heartbeat staleness after which the coordinator declares a worker dead (default 10s)")
		pull        = flag.Duration("pull", 0, "replica snapshot pull period on workers (default 2s)")
		shardPar    = flag.Int("shard-parallel", 0, "concurrent shard executions per worker (default GOMAXPROCS)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "raced ", log.LstdFlags)
	reqLogger := logger
	if *quiet {
		reqLogger = log.New(io.Discard, "", 0)
	}

	var svc *service.Server
	var store *corpus.Store
	switch {
	case *worker:
		if *join == "" {
			fmt.Fprintln(os.Stderr, "raced: -worker requires -join <coordinator URL>")
			os.Exit(2)
		}
		if *db != "" {
			fmt.Fprintln(os.Stderr, "raced: -worker nodes are store-less; drop -db")
			os.Exit(2)
		}
		adv := *advertise
		if adv == "" {
			// ":8078" has no host to dial back; assume loopback, the
			// single-machine (and CI) topology.
			if strings.HasPrefix(*addr, ":") {
				adv = "http://127.0.0.1" + *addr
			} else {
				adv = "http://" + *addr
			}
		}
		var err error
		svc, err = service.New(service.Config{
			Worker: &service.WorkerConfig{
				Coordinator:      *join,
				Advertise:        adv,
				ShardParallelism: *shardPar,
				PullEvery:        *pull,
				HeartbeatEvery:   *heartbeat,
			},
			MaxSeeds: *maxSeeds,
			Logger:   reqLogger,
		})
		if err != nil {
			fatal(err)
		}
	default:
		if *db == "" {
			fmt.Fprintln(os.Stderr, "raced: -db is required")
			flag.Usage()
			os.Exit(2)
		}
		var err error
		store, err = corpus.Open(*db)
		if err != nil {
			fatal(err)
		}
		defer store.Close()
		cfg := service.Config{
			Store:            store,
			Repo:             monorepo.Generate(*nSvc, *nTest, *nRacy, *nSeed),
			JobWorkers:       *workers,
			QueueDepth:       *queue,
			JobParallelism:   *parallel,
			MaxSeeds:         *maxSeeds,
			IngestStreams:    *ingStreams,
			IngestWindow:     *ingWindow,
			IngestCeilingMiB: *ingCeiling,
			Logger:           reqLogger,
		}
		if *coordinator {
			cfg.Cluster = &service.ClusterConfig{
				ShardRuns:      *shardRuns,
				MaxInflight:    *inflight,
				HeartbeatEvery: *heartbeat,
				DeadAfter:      *deadAfter,
			}
		}
		svc, err = service.New(cfg)
		if err != nil {
			fatal(err)
		}
	}

	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	go func() {
		if *worker {
			logger.Printf("worker serving on %s, joining %s", *addr, *join)
		} else {
			logger.Printf("serving corpus %s (%d defects, generation %d) on %s",
				*db, svc.View().Len(), svc.View().Generation(), *addr)
		}
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}()

	workerCtx, stopWorker := context.WithCancel(context.Background())
	defer stopWorker()
	if *worker {
		// In a goroutine: StartWorker retries joining until the
		// coordinator appears, and a signal must still drain us while
		// it waits.
		go func() {
			if err := svc.StartWorker(workerCtx); err != nil {
				logger.Printf("worker: %v", err)
			}
		}()
	}

	// Graceful drain: stop the listener, finish in-flight requests,
	// then finish (or cancel at the deadline) queued campaigns, then
	// sync the store. The drain budget covers both phases.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Printf("draining (budget %s)...", *drain)
	stopWorker() // stop heartbeats first so the coordinator retires us promptly
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	// Drain quiesces every write path (jobs, an in-flight nightly)
	// and syncs the store itself; after it returns the deferred Close
	// cannot race an append.
	if err := svc.Drain(ctx); err != nil {
		logger.Printf("drain: %v (in-flight campaigns cancelled)", err)
	}
	logger.Printf("bye")
}
