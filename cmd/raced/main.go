// Command raced is the race-detection-and-corpus service: an
// HTTP/JSON daemon (internal/service) that serves a persistent race
// corpus to concurrent readers off immutable snapshots, executes
// detection campaigns submitted as asynchronous jobs on a bounded
// worker pool, and accepts nightly monorepo publishes into the live
// store — the paper's deployed-at-scale pipeline (§3) as a process
// you can curl.
//
// Usage:
//
//	raced -db corpus.db [-addr :8077] [-workers 2] [-queue 16]
//	      [-parallel N] [-max-seeds 512] [-drain 30s] [-quiet]
//	      [-nightly-services 4] [-nightly-tests 4]
//	      [-nightly-racy 0.4] [-nightly-seed 1]
//
// Endpoints (see docs/SERVICE.md for schemas and examples):
//
//	GET  /healthz            liveness + snapshot generation + job load
//	GET  /v1/stats           corpus summary
//	GET  /v1/races           defect listing (unit=, category=, run=, sort=count, limit=)
//	GET  /v1/races/{id}      one defect by dedup key
//	GET  /v1/diff?a=&b=      defects new/resolved/recurring between runs
//	GET  /v1/replay/{id}     re-detect a defect from its saved trace
//	POST /v1/jobs            submit a campaign spec; 202 + job id (429 when full)
//	GET  /v1/jobs/{id}       job status and live progress
//	GET  /v1/jobs/{id}/results  finished results as JSON Lines
//	POST /v1/nightly         run a monorepo nightly and append it to the store
//
// On SIGINT/SIGTERM the server drains gracefully: the listener stops,
// in-flight requests and queued jobs finish (bounded by -drain), and
// the store is synced and closed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gorace/internal/corpus"
	"gorace/internal/monorepo"
	"gorace/internal/service"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}

func main() {
	var (
		addr     = flag.String("addr", ":8077", "listen address")
		db       = flag.String("db", "", "corpus store file (created if missing; required)")
		workers  = flag.Int("workers", 2, "concurrent campaign-job executors")
		queue    = flag.Int("queue", 16, "pending-job queue bound (full queue answers 429)")
		parallel = flag.Int("parallel", 0, "sweep workers per campaign (default GOMAXPROCS)")
		maxSeeds = flag.Int("max-seeds", 512, "per-job seed cap")
		drain    = flag.Duration("drain", 30*time.Second, "graceful-shutdown budget for in-flight work")
		quiet    = flag.Bool("quiet", false, "suppress per-request logging")

		nSvc  = flag.Int("nightly-services", 4, "monorepo services for /v1/nightly runs")
		nTest = flag.Int("nightly-tests", 4, "unit tests per monorepo service")
		nRacy = flag.Float64("nightly-racy", 0.4, "fraction of monorepo tests embedding a racy pattern")
		nSeed = flag.Int64("nightly-seed", 1, "monorepo generation seed (fixes which tests are racy)")
	)
	flag.Parse()
	if *db == "" {
		fmt.Fprintln(os.Stderr, "raced: -db is required")
		flag.Usage()
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "raced ", log.LstdFlags)
	reqLogger := logger
	if *quiet {
		reqLogger = log.New(io.Discard, "", 0)
	}

	store, err := corpus.Open(*db)
	if err != nil {
		fatal(err)
	}
	defer store.Close()

	svc, err := service.New(service.Config{
		Store:          store,
		Repo:           monorepo.Generate(*nSvc, *nTest, *nRacy, *nSeed),
		JobWorkers:     *workers,
		QueueDepth:     *queue,
		JobParallelism: *parallel,
		MaxSeeds:       *maxSeeds,
		Logger:         reqLogger,
	})
	if err != nil {
		fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	go func() {
		logger.Printf("serving corpus %s (%d defects, generation %d) on %s",
			*db, svc.View().Len(), svc.View().Generation(), *addr)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}()

	// Graceful drain: stop the listener, finish in-flight requests,
	// then finish (or cancel at the deadline) queued campaigns, then
	// sync the store. The drain budget covers both phases.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	logger.Printf("draining (budget %s)...", *drain)
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	// Drain quiesces every write path (jobs, an in-flight nightly)
	// and syncs the store itself; after it returns the deferred Close
	// cannot race an append.
	if err := svc.Drain(ctx); err != nil {
		logger.Printf("drain: %v (in-flight campaigns cancelled)", err)
	}
	logger.Printf("bye")
}
