// Command racedetect runs one corpus pattern under a chosen detector
// and scheduling strategy and prints the resulting race reports in
// Go-race-detector style.
//
// Usage:
//
//	racedetect -list
//	racedetect -pattern capture-loop-index [-variant racy|fixed]
//	           [-detector fasttrack|eraser|hybrid] [-strategy random|pct|...]
//	           [-seeds 20]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gorace/internal/core"
	"gorace/internal/detector"
	"gorace/internal/patterns"
	"gorace/internal/report"
	"gorace/internal/sched"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list corpus patterns and exit")
		pattern   = flag.String("pattern", "", "corpus pattern ID")
		variant   = flag.String("variant", "racy", "racy or fixed")
		det       = flag.String("detector", detector.DefaultName, "one of: "+strings.Join(detector.Names(), ", "))
		strategy  = flag.String("strategy", sched.DefaultStrategyName, "one of: "+strings.Join(sched.StrategyNames(), ", "))
		seeds     = flag.Int("seeds", 20, "seeds to try until a race manifests")
		jsonOut   = flag.Bool("json", false, "emit reports as JSON Lines")
		saveTrace = flag.String("save-trace", "", "write the manifesting run's event trace to this file (JSON Lines)")
	)
	flag.Parse()

	if *list {
		for _, p := range patterns.All() {
			listing := ""
			if p.Listing > 0 {
				listing = fmt.Sprintf(" (Listing %d)", p.Listing)
			}
			fmt.Printf("%-28s %-22s %s%s\n", p.ID, p.Cat, p.Description, listing)
		}
		return
	}

	p, ok := patterns.ByID(*pattern)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown pattern %q; use -list\n", *pattern)
		os.Exit(2)
	}
	prog := p.Racy
	if *variant == "fixed" {
		prog = p.Fixed
	}

	runner := core.NewRunner(
		core.WithDetector(*det),
		core.WithStrategy(*strategy),
		core.WithRecord(*saveTrace != ""),
	)
	for seed := int64(0); seed < int64(*seeds); seed++ {
		out, err := runner.RunSeed(prog, seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if !out.HasRace() && len(out.Result.Leaked) == 0 {
			continue
		}
		if *saveTrace != "" && out.Trace != nil {
			f, err := os.Create(*saveTrace)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			if err := out.Trace.Save(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "trace (%d events) written to %s\n", len(out.Trace.Events), *saveTrace)
		}
		if *jsonOut {
			if err := report.WriteJSON(os.Stdout, report.UniqueByHash(out.Races)); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			return
		}
		fmt.Printf("== %s/%s under %s, %s, seed %d ==\n", p.ID, *variant, out.Detector, out.Strategy, seed)
		if out.RaceCount > 0 {
			// Counting detectors synthesize stackless one-per-address
			// reports; the pair count and racy-address total say more.
			fmt.Printf("race hits: %d across %d racy addresses (counting detector)\n",
				out.RaceCount, len(out.Races))
		} else {
			for _, r := range report.UniqueByHash(out.Races) {
				fmt.Println(r)
				fmt.Printf("dedup hash: %s\n\n", r.Hash())
			}
		}
		for _, c := range report.UniqueByHash(out.Candidates) {
			fmt.Printf("LOCKSET CANDIDATE (may not manifest):\n%s\n", c)
		}
		for _, l := range out.Result.Leaked {
			fmt.Printf("LEAKED GOROUTINE g%d (%s) blocked on %s\n", l.G, l.Name, l.BlockedOn)
		}
		return
	}
	fmt.Printf("no race manifested for %s/%s across %d seeds\n", p.ID, *variant, *seeds)
}
