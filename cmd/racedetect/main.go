// Command racedetect runs corpus patterns under a chosen detector and
// scheduling strategy and prints the resulting race reports in
// Go-race-detector style.
//
// Usage:
//
//	racedetect -list
//	racedetect -list-programs
//	racedetect -pattern capture-loop-index [-variant racy|fixed]
//	           [-detector fasttrack|eraser|hybrid] [-strategy random|pct|...]
//	           [-seeds 20] [-suppressions file] [-save-trace file]
//	racedetect -program stack-trace [-variant racy|fixed] [...]
//	racedetect -campaign [-seeds 20] [-parallel 8] [-strategies random,pct]
//	           [-corpus store.db] [-run-id id] [-corpus-traces dir]
//	racedetect -sweep-rates 1,4,16,64 [-seeds 20] [-detector fasttrack]
//	           [-strategy random] [-parallel 8] [-markdown]
//	racedetect -stream trace.bin [-mem-ceiling 64] [-window 1024]
//	           [-detector fasttrack] [-json] [-suppressions file]
//	racedetect -stream-bench 0,16,64,256 [-stream-events 10000000] [-markdown]
//
// Alongside the synthetic pattern corpus, racedetect runs instrumented
// programs: real packages rewritten onto the sched/trace event model
// by cmd/raceinstrument and registered in internal/progs. -list-programs
// tables them, -program runs one, and campaign mode sweeps them as
// prog:<name> units next to the patterns.
//
// Campaign mode sweeps the whole corpus — every pattern × every
// scheduling strategy × N seeds — through the internal/sweep engine
// and prints per-pattern detection probabilities, the deduplicated
// defect corpus (one defect per pattern × race, however many
// strategies found it), and root-cause classification tallies: the
// paper's fleet-scale deployment loop in one command. -suppressions
// drops matching defects from the corpus and the tallies; the
// probability columns keep reporting raw manifestation, since
// suppression is a reporting valve, not a schedule property.
//
// -corpus persists the campaign into a race-corpus store
// (internal/corpus) under -run-id (default: a UTC timestamp) and
// prints the cross-run delta against the store's previous run;
// -corpus-traces additionally saves each defect's defining binary
// trace for `racedb replay`. Inspect the store with cmd/racedb.
//
// -save-trace writes the manifesting run's event trace in the
// versioned binary codec; raceanalyze auto-detects it (and still
// reads legacy JSON Lines traces).
//
// -sample gates the detector behind a deterministic 1-in-N
// access-sampling filter (sync events always pass), trading detection
// probability for overhead; it applies to single runs and -campaign
// alike. -sweep-rates runs the tradeoff study itself: one campaign
// per rate over the whole corpus (patterns and prog:<name> programs),
// printing the detection-probability-vs-overhead table — P(detect),
// fraction of accesses checked, adaptive promotion counters, and
// wall-clock per rate — plus the per-unit P(detect) matrix.
// -markdown renders the summary table as GitHub-flavored markdown for
// CI job summaries. docs/DETECTORS.md explains how to read the table
// and choose a rate.
//
// -stream replays a recorded binary trace (or stdin with "-") through
// the online ingest path of internal/stream — the offline twin of
// raced's POST /v1/ingest. -mem-ceiling bounds shadow memory in MiB
// (engaging the evictable fasttrack-paged detector) and -window bounds
// per-goroutine trace retention. -stream-bench runs the
// ceiling-vs-missed-races study over a synthetic production-shaped
// stream of -stream-events events and prints coverage, eviction churn,
// and peak heap per ceiling; docs/STREAMING.md explains the soundness
// tradeoff the table quantifies.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"gorace/internal/core"
	"gorace/internal/corpus"
	"gorace/internal/detector"
	"gorace/internal/instrument"
	"gorace/internal/patterns"
	_ "gorace/internal/progs" // registers instrumented programs
	"gorace/internal/racegen"
	"gorace/internal/report"
	"gorace/internal/sched"
	"gorace/internal/sweep"
	"gorace/internal/taxonomy"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}

// loadSuppressions reads a TSan-style suppression file, or returns an
// empty list for "".
func loadSuppressions(path string) *report.SuppressionList {
	if path == "" {
		sl, _ := report.ParseSuppressions("")
		return sl
	}
	text, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	sl, err := report.ParseSuppressions(string(text))
	if err != nil {
		fatal(err)
	}
	return sl
}

func main() {
	var (
		list       = flag.Bool("list", false, "list corpus patterns and exit")
		listProgs  = flag.Bool("list-programs", false, "list instrumented programs and exit")
		pattern    = flag.String("pattern", "", "corpus pattern ID")
		program    = flag.String("program", "", "instrumented program name (see -list-programs)")
		variant    = flag.String("variant", "racy", "racy or fixed")
		det        = flag.String("detector", detector.DefaultName, "one of: "+strings.Join(detector.Names(), ", "))
		strategy   = flag.String("strategy", sched.DefaultStrategyName, "one of: "+strings.Join(sched.StrategyNames(), ", "))
		seeds      = flag.Int("seeds", 20, "seeds to try until a race manifests (per unit in campaign mode)")
		jsonOut    = flag.Bool("json", false, "emit reports as JSON Lines")
		saveTrace  = flag.String("save-trace", "", "write the manifesting run's event trace to this file (binary codec)")
		suppFile   = flag.String("suppressions", "", "TSan-style suppression file; matching reports are dropped")
		campaign   = flag.Bool("campaign", false, "sweep the whole corpus: every pattern × strategy × seed")
		strategies = flag.String("strategies", "", "comma-separated strategies for -campaign (default: all registered)")
		parallel   = flag.Int("parallel", 0, "campaign worker count (default GOMAXPROCS)")
		corpusPath = flag.String("corpus", "", "persist -campaign results into this race-corpus store (see cmd/racedb)")
		runID      = flag.String("run-id", "", "run id for -corpus (default: UTC timestamp; ids must sort chronologically)")
		corpusTr   = flag.String("corpus-traces", "", "with -corpus, save each defect's defining trace into this directory")
		sample     = flag.Int("sample", 1, "check 1 in N accesses (deterministic per seed; 1 = every access)")
		sweepRates = flag.String("sweep-rates", "", "comma-separated sample rates (e.g. 1,4,16,64): sweep rates × corpus and print the P(detect)-vs-overhead table")
		markdown   = flag.Bool("markdown", false, "with -sweep-rates, -stream-bench, or -racegen, print the summary table as GitHub-flavored markdown")
		streamIn   = flag.String("stream", "", "replay a recorded binary trace stream through the online detector (\"-\" = stdin)")
		memCeiling = flag.Int("mem-ceiling", 0, "with -stream, shadow-memory ceiling in MiB (0 = unbounded; engages the paged detector)")
		window     = flag.Int("window", 0, "with -stream, per-goroutine retained-event window (0 = default, <0 = none)")
		streamBn   = flag.String("stream-bench", "", "comma-separated MiB ceilings (0 = unbounded): sweep one synthetic stream per ceiling and print the coverage-vs-memory table")
		streamEv   = flag.Int("stream-events", 10_000_000, "with -stream-bench, synthetic stream length in events")
		racegenOn  = flag.Bool("racegen", false, "run the coverage-guided generation loop and print the round table (see docs/GENERATION.md)")
		rounds     = flag.Int("rounds", 3, "with -racegen, generation rounds")
		budget     = flag.Int("budget", 8, "with -racegen, candidate programs per round")
		keepDir    = flag.String("keep-dir", "", "with -racegen, write each minimized keeper spec to this directory as <id>.json")
	)
	flag.Parse()

	if *list {
		for _, p := range patterns.All() {
			listing := ""
			if p.Listing > 0 {
				listing = fmt.Sprintf(" (Listing %d)", p.Listing)
			}
			fmt.Printf("%-28s %-22s %s%s\n", p.ID, p.Cat, p.Description, listing)
		}
		return
	}

	if *listProgs {
		fmt.Printf("%-18s %-44s %s\n", "program", "source", "description")
		for _, p := range instrument.Programs() {
			fixed := ""
			if p.Fixed != nil {
				fixed = " [+fixed]"
			}
			fmt.Printf("%-18s %-44s %s%s\n", p.Name, p.Source, p.Desc, fixed)
		}
		return
	}

	supp := loadSuppressions(*suppFile)

	if *racegenOn {
		runRacegen(*rounds, *budget, *parallel, *corpusPath, *runID, *keepDir, *markdown)
		return
	}

	if *streamBn != "" {
		runStreamBench(*streamBn, *streamEv, *markdown)
		return
	}

	if *streamIn != "" {
		runStream(*streamIn, *det, *memCeiling, *window, supp, *jsonOut)
		return
	}

	if *sweepRates != "" {
		runRateSweep(*det, *strategy, *variant, *seeds, *parallel, *sweepRates, *markdown)
		return
	}

	if *campaign {
		runCampaign(*det, *strategies, *variant, *seeds, *parallel, *sample, supp,
			*corpusPath, *runID, *corpusTr)
		return
	}

	var (
		unitID string
		prog   func(*sched.G)
	)
	switch {
	case *program != "":
		ip, ok := instrument.ProgramByName(*program)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown program %q; use -list-programs\n", *program)
			os.Exit(2)
		}
		unitID, prog = "prog:"+ip.Name, ip.Racy
		if *variant == "fixed" {
			if ip.Fixed == nil {
				fmt.Fprintf(os.Stderr, "program %q has no fixed variant\n", *program)
				os.Exit(2)
			}
			prog = ip.Fixed
		}
	default:
		p, ok := patterns.ByID(*pattern)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown pattern %q; use -list\n", *pattern)
			os.Exit(2)
		}
		unitID, prog = p.ID, p.Racy
		if *variant == "fixed" {
			prog = p.Fixed
		}
	}

	runner := core.NewRunner(
		core.WithDetector(*det),
		core.WithStrategy(*strategy),
		core.WithRecord(*saveTrace != ""),
		core.WithSampleRate(*sample),
	)
	totalSuppressed := 0
	for seed := int64(0); seed < int64(*seeds); seed++ {
		out, err := runner.RunSeed(prog, seed)
		if err != nil {
			fatal(err)
		}
		races, suppressed := supp.Apply(out.Races)
		candidates, suppressedCand := supp.Apply(out.Candidates)
		suppressed += suppressedCand
		totalSuppressed += suppressed
		if len(races) == 0 && out.RaceCount == 0 && len(out.Result.Leaked) == 0 {
			continue
		}
		if *saveTrace != "" && out.Trace != nil {
			f, err := os.Create(*saveTrace)
			if err != nil {
				fatal(err)
			}
			if err := out.Trace.Save(f); err != nil {
				fatal(err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "trace (%d events) written to %s\n", len(out.Trace.Events), *saveTrace)
		}
		if *jsonOut {
			if err := report.WriteJSON(os.Stdout, report.UniqueByHash(races)); err != nil {
				fatal(err)
			}
			return
		}
		fmt.Printf("== %s/%s under %s, %s, seed %d ==\n", unitID, *variant, out.Detector, out.Strategy, seed)
		if out.RaceCount > 0 {
			// Counting detectors synthesize stackless one-per-address
			// reports; the pair count and racy-address total say more.
			fmt.Printf("race hits: %d across %d racy addresses (counting detector)\n",
				out.RaceCount, len(races))
		} else {
			for _, r := range report.UniqueByHash(races) {
				fmt.Println(r)
				fmt.Printf("dedup hash: %s\n\n", r.Hash())
			}
		}
		for _, c := range report.UniqueByHash(candidates) {
			fmt.Printf("LOCKSET CANDIDATE (may not manifest):\n%s\n", c)
		}
		for _, l := range out.Result.Leaked {
			fmt.Printf("LEAKED GOROUTINE g%d (%s) blocked on %s\n", l.G, l.Name, l.BlockedOn)
		}
		if suppressed > 0 {
			fmt.Printf("suppressed %d report(s) via %s\n", suppressed, *suppFile)
		}
		return
	}
	fmt.Printf("no race manifested for %s/%s across %d seeds", unitID, *variant, *seeds)
	if totalSuppressed > 0 {
		fmt.Printf(" (%d report(s) suppressed via %s)", totalSuppressed, *suppFile)
	}
	fmt.Println()
}

// runCampaign sweeps every corpus pattern under every requested
// strategy for the given number of seeds, as one sweep campaign.
// With corpusPath, the campaign additionally streams into a
// corpus.Collector and persists the deduplicated defects.
func runCampaign(det, strategies, variant string, seeds, parallel, sample int, supp *report.SuppressionList,
	corpusPath, runID, traceDir string) {
	stratNames := sched.StrategyNames()
	if strategies != "" {
		stratNames = stratNames[:0:0]
		for _, s := range strings.Split(strategies, ",") {
			s = strings.TrimSpace(s)
			if s == "" {
				fatal(fmt.Errorf("-strategies %q contains an empty name", strategies))
			}
			stratNames = append(stratNames, s)
		}
	}
	pats := patterns.All()
	progs := instrument.Programs()

	var units []sweep.Unit
	addUnits := func(id string, prog func(*sched.G)) {
		for _, s := range stratNames {
			units = append(units, sweep.Unit{
				ID:         id + "/" + s,
				Program:    prog,
				Detector:   det,
				Strategy:   s,
				Runs:       seeds,
				MaxSteps:   1 << 16,
				SampleRate: sample,
				// Recording buys hint-quality root-cause tallies at
				// the cost of one trace snapshot per run; corpus
				// programs are small, and Tally classifies in Observe,
				// so nothing is retained past the run.
				Record: true,
			})
		}
	}
	for _, p := range pats {
		prog := p.Racy
		if variant == "fixed" {
			prog = p.Fixed
		}
		addUnits(p.ID, prog)
	}
	// Instrumented programs sweep alongside the synthetic corpus; ones
	// without a fixed variant sit out a fixed-variant campaign.
	for _, p := range progs {
		prog := p.Racy
		if variant == "fixed" {
			if p.Fixed == nil {
				continue
			}
			prog = p.Fixed
		}
		addUnits("prog:"+p.Name, prog)
	}

	opts := []sweep.Option{}
	if parallel > 0 {
		opts = append(opts, sweep.WithParallelism(parallel))
	}
	factories := []sweep.Factory{
		func() sweep.Aggregator { return sweep.NewProb() },
		func() sweep.Aggregator { return sweep.NewCorpus() },
		func() sweep.Aggregator { return sweep.NewTally() },
	}
	// Open the store (and trace dir) before burning any compute, so a
	// typo'd path fails fast instead of after the whole sweep.
	var store *corpus.Store
	if corpusPath != "" {
		if runID == "" {
			runID = time.Now().UTC().Format("20060102-150405")
		}
		var err error
		if store, err = corpus.Open(corpusPath); err != nil {
			fatal(err)
		}
		defer store.Close()
		collOpts := []corpus.CollectorOption{corpus.WithRunLabel("campaign")}
		if traceDir != "" {
			if err := os.MkdirAll(traceDir, 0o755); err != nil {
				fatal(err)
			}
			collOpts = append(collOpts, corpus.WithTraceDir(traceDir))
		}
		factories = append(factories, func() sweep.Aggregator {
			return corpus.NewCollector(runID, collOpts...)
		})
	} else if traceDir != "" {
		fatal(fmt.Errorf("-corpus-traces requires -corpus"))
	}
	aggs, stats, err := sweep.New(opts...).Run(units, factories...)
	if err != nil {
		fatal(err)
	}
	prob := aggs[0].(*sweep.Prob)
	campCorpus := aggs[1].(*sweep.Corpus)
	tally := aggs[2].(*sweep.Tally)

	fmt.Printf("== campaign: %d patterns + %d programs × %d strategies × %d seeds, detector %s ==\n",
		len(pats), len(progs), len(stratNames), seeds, det)

	// Per-pattern manifestation probability, one column per strategy.
	byUnit := make(map[string]sweep.UnitStat)
	for _, s := range prob.Stats() {
		byUnit[s.Unit] = s
	}
	// The corpus deduplicates per unit (pattern × strategy); the
	// defects column re-deduplicates across strategies, so one race
	// found under every strategy is still one defect.
	defects := make(map[string]int) // pattern -> unique defects across strategies
	filed := make(map[string]bool)  // pattern + race hash
	var suppressed, unique int
	for _, d := range campCorpus.Detections() {
		if supp.Matches(d.Race) {
			suppressed++
			continue
		}
		pattern := strings.SplitN(d.Unit, "/", 2)[0]
		key := pattern + "/" + d.Race.Hash()
		if filed[key] {
			continue
		}
		filed[key] = true
		defects[pattern]++
		unique++
	}
	fmt.Printf("%-28s", "pattern")
	for _, s := range stratNames {
		fmt.Printf("%12s", s)
	}
	fmt.Printf("%10s\n", "defects")
	rowIDs := make([]string, 0, len(pats)+len(progs))
	for _, p := range pats {
		rowIDs = append(rowIDs, p.ID)
	}
	for _, p := range progs {
		if variant == "fixed" && p.Fixed == nil {
			continue
		}
		rowIDs = append(rowIDs, "prog:"+p.Name)
	}
	for _, id := range rowIDs {
		fmt.Printf("%-28s", id)
		for _, s := range stratNames {
			fmt.Printf("%12.2f", byUnit[id+"/"+s].Probability())
		}
		fmt.Printf("%10d\n", defects[id])
	}

	fmt.Printf("\nruns: %d (%d racy); reports: %d -> %d unique defects",
		stats.Runs, stats.Racy, campCorpus.Seen(), unique)
	if suppressed > 0 {
		fmt.Printf(" (%d suppressed)", suppressed)
	}
	fmt.Println()

	counts := tally.Counts(func(r report.Race) bool { return !supp.Matches(r) })
	if len(counts) > 0 {
		fmt.Println("\nroot-cause tallies (first manifesting run per unit):")
		keys := make([]string, 0, len(counts))
		for c := range counts {
			keys = append(keys, string(c))
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %-40s %4d\n", k, counts[taxonomy.Category(k)])
		}
	}

	if store != nil {
		persistCampaign(aggs[3].(*corpus.Collector), store, runID)
	}
}

// runRateSweep runs the detection-probability-vs-overhead study: one
// campaign per sample rate over the whole corpus (patterns plus
// instrumented programs) under a single strategy, timed separately so
// each rate gets a wall-clock figure, followed by the per-unit
// P(detect) matrix. Campaigns are deterministic at any parallelism,
// so two sweeps with the same seeds differ only in the wall column.
func runRateSweep(det, strategy, variant string, seeds, parallel int, ratesCSV string, markdown bool) {
	var rates []int
	for _, f := range strings.Split(ratesCSV, ",") {
		f = strings.TrimSpace(f)
		var n int
		if _, err := fmt.Sscanf(f, "%d", &n); err != nil || n < 1 {
			fatal(fmt.Errorf("-sweep-rates %q: %q is not a positive integer", ratesCSV, f))
		}
		rates = append(rates, n)
	}

	type unitSrc struct {
		id   string
		prog func(*sched.G)
	}
	var srcs []unitSrc
	for _, p := range patterns.All() {
		prog := p.Racy
		if variant == "fixed" {
			prog = p.Fixed
		}
		srcs = append(srcs, unitSrc{p.ID, prog})
	}
	nPats := len(srcs)
	for _, p := range instrument.Programs() {
		prog := p.Racy
		if variant == "fixed" {
			if p.Fixed == nil {
				continue
			}
			prog = p.Fixed
		}
		srcs = append(srcs, unitSrc{"prog:" + p.Name, prog})
	}

	opts := []sweep.Option{}
	if parallel > 0 {
		opts = append(opts, sweep.WithParallelism(parallel))
	}
	engine := sweep.New(opts...)

	type rateRow struct {
		rate    int
		work    []sweep.UnitWork
		byUnit  map[string]sweep.UnitWork
		elapsed time.Duration
	}
	var rows []rateRow
	for _, rate := range rates {
		units := make([]sweep.Unit, 0, len(srcs))
		for _, s := range srcs {
			units = append(units, sweep.Unit{
				ID:         s.id,
				Program:    s.prog,
				Detector:   det,
				Strategy:   strategy,
				Runs:       seeds,
				MaxSteps:   1 << 16,
				SampleRate: rate,
			})
		}
		start := time.Now()
		aggs, _, err := engine.Run(units, func() sweep.Aggregator { return sweep.NewOverhead() })
		if err != nil {
			fatal(err)
		}
		row := rateRow{rate: rate, work: aggs[0].(*sweep.Overhead).Work(),
			byUnit: make(map[string]sweep.UnitWork), elapsed: time.Since(start)}
		for _, w := range row.work {
			row.byUnit[w.Unit] = w
		}
		rows = append(rows, row)
	}

	if markdown {
		fmt.Printf("%d patterns + %d programs × %d seeds, detector `%s`, strategy `%s`.\n\n",
			nPats, len(srcs)-nPats, seeds, det, strategy)
	} else {
		fmt.Printf("== sample-rate sweep: %d patterns + %d programs × %d seeds, detector %s, strategy %s ==\n\n",
			nPats, len(srcs)-nPats, seeds, det, strategy)
	}

	// Summary: one row per rate, detection probability averaged over
	// units (each unit weighted equally, like the campaign table).
	if markdown {
		fmt.Println("| rate | P(detect) | checked | promotions | demotions | fastreads | wall |")
		fmt.Println("|-----:|----------:|--------:|-----------:|----------:|----------:|-----:|")
	} else {
		fmt.Printf("%6s %10s %9s %11s %10s %10s %8s\n",
			"rate", "P(detect)", "checked", "promotions", "demotions", "fastreads", "wall")
	}
	for _, row := range rows {
		var pSum float64
		var checked, accesses, promos, demos, fast int
		for _, w := range row.work {
			pSum += w.Probability()
			checked += w.Checked
			accesses += w.Accesses
			promos += w.Promotions
			demos += w.Demotions
			fast += w.FastReads
		}
		pMean := pSum / float64(len(row.work))
		frac := 0.0
		if accesses > 0 {
			frac = float64(checked) / float64(accesses)
		}
		wall := row.elapsed.Round(time.Millisecond)
		if markdown {
			fmt.Printf("| %d | %.3f | %.1f%% | %d | %d | %d | %s |\n",
				row.rate, pMean, 100*frac, promos, demos, fast, wall)
		} else {
			fmt.Printf("%6d %10.3f %8.1f%% %11d %10d %10d %8s\n",
				row.rate, pMean, 100*frac, promos, demos, fast, wall)
		}
	}

	// Per-unit detection probability, one column per rate. In
	// markdown mode the fixed-width matrix goes in a code fence so job
	// summaries render it intact.
	fmt.Printf("\nper-unit P(detect) by rate:\n")
	if markdown {
		fmt.Println("```")
	}
	fmt.Printf("%-28s", "unit")
	for _, row := range rows {
		fmt.Printf("%8d", row.rate)
	}
	fmt.Println()
	for _, s := range srcs {
		fmt.Printf("%-28s", s.id)
		for _, row := range rows {
			fmt.Printf("%8.2f", row.byUnit[s.id].Probability())
		}
		fmt.Println()
	}
	if markdown {
		fmt.Println("```")
	}
}

// persistCampaign appends the collected corpus to the already-open
// store and prints the cross-run delta against its previous run.
// runRacegen runs the coverage-guided generation loop: scored
// candidate programs, detector-disagreement keepers, delta-debugged
// minimization, and (with -corpus) a fold of the keepers' races into
// the persistent store. The loop is seeded and sweep-deterministic,
// so the same flags print the same table at any -parallel.
func runRacegen(rounds, budget, parallel int, corpusPath, runID, keepDir string, markdown bool) {
	cfg := racegen.Config{
		Rounds:      rounds,
		Budget:      budget,
		Parallelism: parallel,
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	var store *corpus.Store
	if corpusPath != "" {
		if runID == "" {
			runID = time.Now().UTC().Format("20060102-150405")
		}
		var err error
		if store, err = corpus.Open(corpusPath); err != nil {
			fatal(err)
		}
		defer store.Close()
		cfg.RunID = runID
		// Seed the under-representation bonus with what the store
		// already holds, so generation chases what it lacks.
		cfg.Known = make(map[taxonomy.Category]int)
		for _, rec := range store.Records() {
			if rec.Category != "" {
				cfg.Known[rec.Category]++
			}
		}
	}
	res, err := racegen.Run(cfg)
	if err != nil {
		fatal(err)
	}

	if markdown {
		fmt.Print(racegen.Markdown(res))
	} else {
		fmt.Printf("== racegen: %d rounds × %d candidates ==\n", rounds, budget)
		fmt.Printf("%-7s %11s %12s %6s %10s %12s\n",
			"round", "candidates", "disagreeing", "kept", "new edges", "total edges")
		for _, r := range res.Rounds {
			fmt.Printf("%-7d %11d %12d %6d %10d %12d\n",
				r.Round, r.Candidates, r.Disagreeing, r.Kept, r.NewEdges, r.TotalEdges)
		}
		fmt.Printf("\nkeepers: %d minimized discriminating programs\n", len(res.Keepers))
		cats := make([]string, 0, len(res.Fill))
		for cat := range res.Fill {
			cats = append(cats, string(cat))
		}
		sort.Strings(cats)
		for _, cat := range cats {
			fmt.Printf("  %-40s %4d\n", cat, res.Fill[taxonomy.Category(cat)])
		}
	}

	if keepDir != "" {
		if err := racegen.SaveKeepers(keepDir, res.Keepers); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %d keeper spec(s) to %s\n", len(res.Keepers), keepDir)
	}
	if store != nil {
		persistCampaign(res.Collector, store, runID)
	}
}

func persistCampaign(coll *corpus.Collector, store *corpus.Store, runID string) {
	prev := store.LastRun()
	if err := coll.AppendTo(store); err != nil {
		fatal(err)
	}
	fmt.Printf("\ncorpus: appended run %s to %s (%d defects now on record)\n",
		runID, store.Path(), store.Len())
	if prev == "" {
		fmt.Println("corpus: first recorded run; every defect is new (see racedb stats)")
		return
	}
	delta, err := store.Diff(prev, runID)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("corpus: delta vs %s: %d new, %d recurring, %d resolved\n",
		prev, len(delta.New), len(delta.Recurring), len(delta.Resolved))
	for _, rec := range delta.New {
		fmt.Printf("  NEW      %s\n", rec.Key)
	}
	for _, rec := range delta.Resolved {
		fmt.Printf("  RESOLVED %s\n", rec.Key)
	}
}
