package main

import (
	"context"
	"fmt"
	"os"
	"strings"

	"gorace/internal/report"
	"gorace/internal/stream"
)

// runStream replays a recorded binary trace stream (racedetect
// -save-trace, raced ingest payloads, or "-" for stdin) through an
// online Ingestor — the offline twin of POST /v1/ingest. A ceiling
// engages the paged detector; the printed stats then show what
// bounded memory cost in evictions and reloads.
func runStream(path, det string, ceilingMiB, window int, supp *report.SuppressionList, jsonOut bool) {
	in := os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	ing, err := stream.NewIngestor(stream.Config{
		Detector:      det,
		MemCeilingMiB: ceilingMiB,
		Window:        window,
	})
	if err != nil {
		fatal(err)
	}
	res, err := ing.Ingest(context.Background(), in)
	if err != nil {
		fatal(fmt.Errorf("stream failed after %d events: %w", res.Events, err))
	}
	races, suppressed := supp.Apply(res.Races)
	unique := report.UniqueByHash(races)
	if jsonOut {
		if err := report.WriteJSON(os.Stdout, unique); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("== stream %s under %s ==\n", path, ing.DetectorName())
	for _, r := range unique {
		fmt.Println(r)
		fmt.Printf("dedup hash: %s\n\n", r.Hash())
	}
	fmt.Printf("events: %d; reports: %d (%d unique)", res.Events, len(races), len(unique))
	if suppressed > 0 {
		fmt.Printf("; suppressed: %d", suppressed)
	}
	fmt.Println()
	if ceilingMiB > 0 {
		fmt.Printf("ceiling: %d MiB (%d shadow pages); evictions: %d; reloads: %d\n",
			ceilingMiB, ing.PageBudget(), res.Stats.Evictions, res.Stats.Reloads)
	}
}

// runStreamBench runs the ceiling-vs-missed-races study: one synthetic
// production-shaped stream (stream.SynthSpec) ingested once per
// ceiling, reporting planted-race coverage, eviction churn, and peak
// heap. The spec's noise working set is sized so a 64 MiB ceiling
// holds the full shadow state — tighter ceilings evict and miss, which
// is the tradeoff the table quantifies. Ceiling 0 rows run unbounded.
func runStreamBench(ceilingsCSV string, events int, markdown bool) {
	var ceilings []int
	for _, f := range strings.Split(ceilingsCSV, ",") {
		f = strings.TrimSpace(f)
		var n int
		if _, err := fmt.Sscanf(f, "%d", &n); err != nil || n < 0 {
			fatal(fmt.Errorf("-stream-bench %q: %q is not a non-negative MiB ceiling", ceilingsCSV, f))
		}
		ceilings = append(ceilings, n)
	}
	if events <= 0 {
		fatal(fmt.Errorf("-stream-events must be positive, got %d", events))
	}
	spec := stream.SynthSpec{
		Events:     events,
		Goroutines: 8,
		// 8 goroutines × 8K private addresses ≈ 64K shadow cells: the
		// whole working set fits a 64 MiB ceiling's page budget, so
		// misses at that ceiling would flag a detector regression
		// rather than an expected eviction.
		Addrs:   1 << 13,
		Planted: events / 10000,
		Seed:    1,
	}
	rows, err := stream.RunCeilingSweep(context.Background(), spec, ceilings)
	if err != nil {
		fatal(err)
	}
	if markdown {
		fmt.Printf("Streaming ingest: %d events, %d goroutines, %d planted races per run.\n\n",
			events, spec.Goroutines, spec.Planted)
		fmt.Print(stream.MarkdownTable(rows))
		return
	}
	fmt.Printf("== stream ceiling sweep: %d events, %d goroutines, %d planted races ==\n",
		events, spec.Goroutines, spec.Planted)
	fmt.Printf("%10s %10s %10s %10s %10s %12s\n",
		"ceiling", "planted", "detected", "evictions", "reloads", "peak-heap")
	for _, r := range rows {
		ceiling := "unbounded"
		if r.CeilingMiB > 0 {
			ceiling = fmt.Sprintf("%d MiB", r.CeilingMiB)
		}
		fmt.Printf("%10s %10d %10d %10d %10d %9.1f MiB\n",
			ceiling, r.Planted, r.Detected, r.Evictions, r.Reloads, r.PeakHeapMiB)
	}
}
