// Command staticrace runs the static race-pattern analyzer over real
// Go source files or directories — the paper's "further research in
// static race detection for Go" direction, seeded with the §4 pattern
// shapes (loop capture, err capture, named returns, by-value mutexes,
// wg.Add placement, map writes in goroutines, generic capture writes).
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"gorace/internal/staticrace"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: staticrace <file.go | dir> ...")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	total, filesWithFindings := 0, 0
	for _, arg := range flag.Args() {
		err := filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") {
				return nil
			}
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			findings, err := staticrace.AnalyzeSource(path, string(src))
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
				return nil
			}
			if len(findings) > 0 {
				filesWithFindings++
			}
			for _, f := range findings {
				fmt.Println(f)
				total++
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	fmt.Fprintf(os.Stderr, "%d finding(s) in %d file(s)\n", total, filesWithFindings)
	if total > 0 {
		os.Exit(1)
	}
}
