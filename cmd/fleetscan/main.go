// Command fleetscan regenerates Figure 1: the cumulative frequency
// distribution of per-process concurrency (threads or goroutines) for
// Go, Java, NodeJS, and Python fleets.
package main

import (
	"flag"
	"fmt"
	"strconv"

	"gorace/internal/fleet"
	"gorace/internal/textplot"
)

func main() {
	seed := flag.Int64("seed", 42, "fleet sampling seed")
	flag.Parse()

	series := fleet.RunExperiment(*seed)
	fmt.Println("Figure 1: cumulative fraction of processes at each concurrency level")
	fmt.Print(fleet.Format(series))
	fmt.Println()
	var plotSeries []textplot.Series
	for _, s := range series {
		plotSeries = append(plotSeries, textplot.Series{Name: s.Lang, Points: s.CDF})
	}
	var labels []string
	for _, b := range fleet.Buckets {
		labels = append(labels, strconv.Itoa(b))
	}
	fmt.Print(textplot.CDF("Figure 1 (x = concurrency bucket, log scale)", labels, plotSeries, textplot.Options{}))
	fmt.Println()
	for _, s := range series {
		fmt.Printf("%-8s %7d processes, p50 concurrency = %d\n", s.Lang, s.Processes, s.P50)
	}
	fmt.Println("\npaper: p50 = 16 (Node), 16 (Python), 256* (Java), 2048 (Go)")
	fmt.Println("*the paper's own Figure 1 curve crosses 0.5 in the 512 bucket for Java;")
	fmt.Println(" see EXPERIMENTS.md for the discrepancy note.")
}
