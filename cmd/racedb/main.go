// Command racedb inspects and manipulates a persistent race-corpus
// store (internal/corpus): the accumulated, deduplicated defect
// history that nightly monorepo runs and `racedetect -campaign
// -corpus` append to.
//
// Usage:
//
//	racedb -db corpus.db stats
//	racedb -db corpus.db top [-n 10]
//	racedb -db corpus.db diff <runA> <runB>
//	racedb -db corpus.db export [-format json|jsonl]
//	racedb -db corpus.db replay <race-id> [-detector name]
//	racedb -db corpus.db compact
//
// stats summarizes the store: run history, defect totals, and the
// longitudinal root-cause breakdown next to the paper's published
// counts. top ranks defects by cross-run occurrence count. diff
// classifies defects as new/resolved/recurring between two recorded
// runs. export emits the folded records as JSON (one array) or JSON
// Lines. replay loads a defect's saved binary trace and re-detects it
// post-facto — the record-once/analyze-many loop closed from disk.
// compact atomically rewrites the append-only log in folded form.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"gorace/internal/corpus"
	"gorace/internal/detector"
	"gorace/internal/report"
	"gorace/internal/study"
	"gorace/internal/taxonomy"
	"gorace/internal/trace"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: racedb -db file <stats|top|diff|export|replay|compact> [args]")
	flag.PrintDefaults()
	os.Exit(2)
}

func main() {
	db := flag.String("db", "", "corpus store file")
	flag.Usage = usage
	flag.Parse()
	if *db == "" || flag.NArg() == 0 {
		usage()
	}
	if flag.Arg(0) != "compact" {
		// Every other command is read-only; refuse to create an empty
		// store out of a typo'd path.
		if _, err := os.Stat(*db); err != nil {
			fatal(fmt.Errorf("corpus store %s: %w", *db, err))
		}
	}
	store, err := corpus.Open(*db)
	if err != nil {
		fatal(err)
	}
	defer store.Close()

	args := flag.Args()[1:]
	switch flag.Arg(0) {
	case "stats":
		stats(store)
	case "top":
		top(store, args)
	case "diff":
		diff(store, args)
	case "export":
		export(store, args)
	case "replay":
		replay(store, args)
	case "compact":
		compact(store)
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", flag.Arg(0))
		usage()
	}
}

func stats(store *corpus.Store) {
	recs := store.Records()
	runs := store.Runs()
	executions, reports := 0, 0
	for _, r := range runs {
		executions += r.Executions
		reports += r.Reports
	}
	var occurrences uint64
	counts := make(map[taxonomy.Category]int)
	recurring := 0
	for _, rec := range recs {
		occurrences += rec.Count
		if rec.Category != "" {
			counts[rec.Category]++
		}
		if len(rec.RunIDs) > 1 {
			recurring++
		}
	}
	fmt.Printf("store:   %s\n", store.Path())
	fmt.Printf("runs:    %d", len(runs))
	if len(runs) > 0 {
		fmt.Printf(" (%s .. %s)", runs[0].ID, runs[len(runs)-1].ID)
	}
	fmt.Println()
	fmt.Printf("defects: %d deduplicated (%d seen in more than one run)\n", len(recs), recurring)
	fmt.Printf("volume:  %d raw reports over %d executions\n", occurrences, executions)
	if len(runs) > 0 {
		fmt.Printf("\n%-20s %-12s %10s %10s\n", "run", "label", "executions", "reports")
		for _, r := range runs {
			fmt.Printf("%-20s %-12s %10d %10d\n", r.ID, r.Label, r.Executions, r.Reports)
		}
	}
	fmt.Printf("\nroot-cause breakdown (vs the paper's 1011-race study):\n%s", study.CorpusBreakdown(counts))
}

func top(store *corpus.Store, args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	n := fs.Int("n", 10, "defects to list")
	fs.Parse(args)
	recs := store.Records()
	// Records() is key-sorted; rank by occurrence count, ties by key,
	// so the ordering is deterministic.
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].Count != recs[j].Count {
			return recs[i].Count > recs[j].Count
		}
		return recs[i].Key < recs[j].Key
	})
	if len(recs) > *n {
		recs = recs[:*n]
	}
	fmt.Printf("%-44s %10s %6s %-20s %s\n", "race-id", "count", "runs", "category", "last seen")
	for _, rec := range recs {
		fmt.Printf("%-44s %10d %6d %-20s %s\n",
			rec.Key, rec.Count, len(rec.RunIDs), rec.Category, rec.LastSeen())
	}
}

func diff(store *corpus.Store, args []string) {
	if len(args) != 2 {
		fatal(fmt.Errorf("usage: racedb -db file diff <runA> <runB>"))
	}
	delta, err := store.Diff(args[0], args[1])
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s -> %s: %d new, %d resolved, %d recurring\n",
		delta.RunA, delta.RunB, len(delta.New), len(delta.Resolved), len(delta.Recurring))
	section := func(title string, recs []corpus.Record) {
		if len(recs) == 0 {
			return
		}
		fmt.Printf("\n%s:\n", title)
		for _, rec := range recs {
			fmt.Printf("  %-44s %-20s seen %dx since %s\n",
				rec.Key, rec.Category, rec.Count, rec.FirstSeen())
		}
	}
	section("NEW", delta.New)
	section("RESOLVED", delta.Resolved)
	section("RECURRING", delta.Recurring)
}

// exportRecord is the JSON wire form of a corpus record; the race
// itself marshals through report.Race's own wire format.
type exportRecord struct {
	Key       string      `json:"key"`
	Unit      string      `json:"unit"`
	FirstSeen string      `json:"firstSeen"`
	LastSeen  string      `json:"lastSeen"`
	RunIDs    []string    `json:"runIds"`
	Count     uint64      `json:"count"`
	Category  string      `json:"category,omitempty"`
	Labels    []string    `json:"labels,omitempty"`
	Detector  string      `json:"detector,omitempty"`
	TracePath string      `json:"tracePath,omitempty"`
	Race      report.Race `json:"race"`
}

func toExport(rec corpus.Record) exportRecord {
	out := exportRecord{
		Key: rec.Key, Unit: rec.Unit,
		FirstSeen: rec.FirstSeen(), LastSeen: rec.LastSeen(),
		RunIDs: rec.RunIDs, Count: rec.Count,
		Category: string(rec.Category), Detector: rec.Detector,
		TracePath: rec.TracePath, Race: rec.Race,
	}
	for _, l := range rec.Labels {
		out.Labels = append(out.Labels, string(l))
	}
	return out
}

func export(store *corpus.Store, args []string) {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	format := fs.String("format", "jsonl", "json (one array) or jsonl (one record per line)")
	fs.Parse(args)
	recs := store.Records()
	switch *format {
	case "json":
		out := make([]exportRecord, len(recs))
		for i, rec := range recs {
			out[i] = toExport(rec)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	case "jsonl":
		enc := json.NewEncoder(os.Stdout)
		for _, rec := range recs {
			if err := enc.Encode(toExport(rec)); err != nil {
				fatal(err)
			}
		}
	default:
		fatal(fmt.Errorf("unknown -format %q (want json or jsonl)", *format))
	}
}

func replay(store *corpus.Store, args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	det := fs.String("detector", "", "override the record's detector (default: the one that filed it)")
	fs.Parse(args)
	if fs.NArg() == 0 {
		fatal(fmt.Errorf("usage: racedb -db file replay <race-id> [-detector name]"))
	}
	key := fs.Arg(0)
	// flag stops at the first positional, so accept flags after the
	// race-id too — the order the doc comment shows.
	fs.Parse(fs.Args()[1:])
	if fs.NArg() != 0 {
		fatal(fmt.Errorf("replay: unexpected arguments %q", fs.Args()))
	}
	rec, ok := store.Get(key)
	if !ok {
		fatal(fmt.Errorf("no defect %q in store (see racedb top)", key))
	}
	if rec.TracePath == "" {
		fatal(fmt.Errorf("defect %s carries no saved trace (campaign ran without a trace dir)", key))
	}
	f, err := os.Open(rec.TracePath)
	if err != nil {
		fatal(err)
	}
	loaded, err := trace.Load(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	name := *det
	if name == "" {
		name = rec.Detector
	}
	if name == "" {
		name = detector.DefaultName
	}
	races, err := corpus.Replay(loaded, name)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("replayed %d events from %s under %s: %d unique race(s)\n\n",
		len(loaded.Events), rec.TracePath, name, len(races))
	reproduced := false
	for _, r := range races {
		fmt.Println(r)
		fmt.Printf("dedup hash: %s\n\n", r.Hash())
		if r.Hash() == rec.Race.Hash() {
			reproduced = true
		}
	}
	if reproduced {
		fmt.Printf("defect %s reproduced from its stored trace\n", key)
	} else {
		fmt.Printf("WARNING: stored hash %s did not re-manifest under %s\n", rec.Race.Hash(), name)
	}
}

func compact(store *corpus.Store) {
	before, err := os.Stat(store.Path())
	if err != nil {
		fatal(err)
	}
	if err := store.Compact(); err != nil {
		fatal(err)
	}
	after, err := os.Stat(store.Path())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("compacted %s: %d -> %d bytes (%d defects, %d runs)\n",
		store.Path(), before.Size(), after.Size(), store.Len(), len(store.Runs()))
}
