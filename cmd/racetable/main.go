// Command racetable regenerates Tables 2 and 3: it instantiates a
// synthetic population of fixed races from the corpus at the paper's
// category frequencies, detects each instance with the happens-before
// detector, classifies the reports, and tabulates the counts.
package main

import (
	"flag"
	"fmt"

	"gorace/internal/study"
)

func main() {
	var (
		scale      = flag.Float64("scale", 1.0, "population scale (1.0 = the paper's 1011 fixed races)")
		seed       = flag.Int64("seed", 1, "seed for instance scheduling")
		multilabel = flag.Bool("multilabel", false, "run the §4.10 multi-label study instead")
	)
	flag.Parse()

	if *multilabel {
		fmt.Print(study.RunMultiLabel(*seed).Format())
		return
	}
	r := study.RunTable23(*scale, *seed)
	fmt.Print(r.Format(*scale))
}
