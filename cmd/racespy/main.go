// Command racespy runs the DataRaceSpy deployment simulation of
// §3.3–3.5 and emits the Figure 3 and Figure 4 time series plus the
// operational summary.
package main

import (
	"flag"
	"fmt"

	"gorace/internal/monorepo"
	"gorace/internal/pipeline"
	"gorace/internal/textplot"
)

// runReal is the end-to-end mode: every simulated night, every unit
// test of a synthetic monorepo executes under a fresh schedule with
// the real FastTrack detector attached; dedup and fixing operate on
// the actual reports. Only the developer fix rate is simulated.
func runReal(days int, seed int64) {
	if days > 60 {
		days = 60 // each day runs the full test suite; keep it snappy
	}
	repo := monorepo.Generate(20, 4, 0.5, seed)
	fmt.Printf("end-to-end deployment: 20 services x 4 tests, %d racy tests, %d days\n\n",
		repo.RacyCount(), days)
	res := repo.SimulateDeployment(days, 0.25, seed)
	for _, d := range res.Days {
		if d.Day%5 == 0 || d.Day == days-1 {
			fmt.Printf("day %2d: %3d detections, %2d new defects, %2d fixed, %2d open\n",
				d.Day, d.Detections, d.NewDefects, d.Fixed, d.OpenDefects)
		}
	}
	fmt.Printf("\nfiled %d defects, fixed %d; %d tests still racy, %d never caught\n",
		res.TotalFiled, res.TotalFixed, res.StillRacy, res.NeverCaught)
}

func main() {
	var (
		days = flag.Int("days", 180, "days to simulate")
		seed = flag.Int64("seed", 1, "simulation seed")
		fig3 = flag.Bool("fig3", false, "print Figure 3 CSV (outstanding races)")
		fig4 = flag.Bool("fig4", false, "print Figure 4 CSV (found vs fixed)")
		real = flag.Bool("real", false, "run the end-to-end mode: real detector over a synthetic monorepo")
		diff = flag.Bool("difficulty", false, "apply per-category fix difficulty (subtle races land slower)")
	)
	flag.Parse()

	if *real {
		runReal(*days, *seed)
		return
	}

	cfg := pipeline.DefaultConfig()
	cfg.Days = *days
	cfg.Seed = *seed
	if *diff {
		cfg.FixDifficulty = pipeline.DefaultFixDifficulty()
	}
	o := pipeline.Run(cfg)

	switch {
	case *fig3:
		fmt.Print(pipeline.FormatFigure3(o))
	case *fig4:
		fmt.Print(pipeline.FormatFigure4(o))
	default:
		fmt.Println("DataRaceSpy deployment simulation (§3.3–3.5)")
		fmt.Println()
		fmt.Print(pipeline.FormatSummary(o.Summary))
		fmt.Println()
		outstanding := make([]float64, len(o.Days))
		created := make([]float64, len(o.Days))
		resolved := make([]float64, len(o.Days))
		for i, d := range o.Days {
			outstanding[i] = float64(d.Outstanding)
			created[i] = float64(d.CreatedCum)
			resolved[i] = float64(d.ResolvedCum)
		}
		fmt.Print(textplot.Chart("Figure 3: total outstanding detected races vs time (days)",
			[]textplot.Series{{Name: "outstanding", Points: outstanding}},
			textplot.Options{}))
		fmt.Println()
		fmt.Print(textplot.Chart("Figure 4: data race issues found vs fixed (cumulative)",
			[]textplot.Series{
				{Name: "created", Points: created},
				{Name: "resolved", Points: resolved},
			}, textplot.Options{}))
		fmt.Println("\nuse -fig3 / -fig4 for the full CSV series")
	}
}
