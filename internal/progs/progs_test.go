package progs_test

import (
	"sort"
	"testing"

	"gorace/internal/core"
	"gorace/internal/instrument"
	_ "gorace/internal/progs"
)

// seedsWithRace runs one registered program variant under FastTrack
// over a band of seeds and returns how many seeds manifested a race
// plus the sorted set of distinct race hashes seen.
func seedsWithRace(t *testing.T, name string, racy bool, seeds int) (hits int, hashes []string) {
	t.Helper()
	p, ok := instrument.ProgramByName(name)
	if !ok {
		t.Fatalf("program %q not registered", name)
	}
	entry := p.Racy
	if !racy {
		entry = p.Fixed
	}
	seen := map[string]bool{}
	for seed := int64(0); seed < int64(seeds); seed++ {
		out, err := core.Detect(entry, core.Config{Detector: "fasttrack", Seed: seed})
		if err != nil {
			t.Fatalf("%s seed %d: %v", name, seed, err)
		}
		if out.HasRace() {
			hits++
		}
		for _, r := range out.Races {
			seen[r.Hash()] = true
		}
	}
	for h := range seen {
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)
	return hits, hashes
}

// TestRacyProgramsManifest is the end-to-end acceptance check: every
// instrumented racy program yields a FastTrack race within a modest
// seed band, and its fixed counterpart never does.
func TestRacyProgramsManifest(t *testing.T) {
	const seeds = 30
	for _, p := range instrument.Programs() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			hits, _ := seedsWithRace(t, p.Name, true, seeds)
			if hits == 0 {
				t.Errorf("racy %s: no race in %d seeds", p.Name, seeds)
			}
			if p.Fixed == nil {
				return
			}
			if fhits, _ := seedsWithRace(t, p.Name, false, seeds); fhits != 0 {
				t.Errorf("fixed %s: race manifested in %d/%d seeds", p.Name, fhits, seeds)
			}
		})
	}
}

// TestRaceHashesStableAcrossRuns pins the stable-identity guarantee at
// the program level: because instrumented programs run under
// g.StableIDs, the set of race hashes a seed band produces is
// identical from process run to run and independent of which seed
// found each race first. Two full sweeps must agree exactly.
func TestRaceHashesStableAcrossRuns(t *testing.T) {
	const seeds = 20
	for _, p := range instrument.Programs() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			_, first := seedsWithRace(t, p.Name, true, seeds)
			if len(first) == 0 {
				t.Fatalf("racy %s: no hashes in %d seeds", p.Name, seeds)
			}
			_, second := seedsWithRace(t, p.Name, true, seeds)
			if len(first) != len(second) {
				t.Fatalf("hash sets differ in size: %d vs %d", len(first), len(second))
			}
			for i := range first {
				if first[i] != second[i] {
					t.Fatalf("hash %d differs: %s vs %s", i, first[i], second[i])
				}
			}
		})
	}
}

// TestRegistryComplete checks every dogfood spec made it into the
// registry with both variants wired.
func TestRegistryComplete(t *testing.T) {
	for _, d := range instrument.DogfoodPrograms() {
		p, ok := instrument.ProgramByName(d.Name)
		if !ok {
			t.Errorf("dogfood %s not registered", d.Name)
			continue
		}
		if p.Racy == nil || p.Fixed == nil {
			t.Errorf("dogfood %s missing a variant", d.Name)
		}
	}
}
