package progs

import "gorace/internal/instrument"

func init() {
	instrument.MustRegister(instrument.Program{
		Name:   "metrics-counter",
		Desc:   "partial atomics: plain ++ races with atomic ops on one counter",
		Source: "internal/instrument/testdata/real/metrics",
		Racy:   ProgMetricsCounter,
		Fixed:  ProgMetricsCounterFixed,
	})
	instrument.MustRegister(instrument.Program{
		Name:   "stack-trace",
		Desc:   "unsynchronized push/capture on a shared frame stack (internal/stack)",
		Source: "internal/stack",
		Racy:   ProgStackTrace,
		Fixed:  ProgStackTraceFixed,
	})
	instrument.MustRegister(instrument.Program{
		Name:   "taxonomy-audit",
		Desc:   "concurrent slice append vs. reads on the category table (internal/taxonomy)",
		Source: "internal/taxonomy",
		Racy:   ProgTaxonomyAudit,
		Fixed:  ProgTaxonomyAuditFixed,
	})
}
