package progs_test

import (
	"os"
	"path/filepath"
	"testing"

	"gorace/internal/instrument"
)

// TestGeneratedSourcesCurrent is the regeneration guard: the committed
// *_gen.go files must be byte-identical to what the rewriter produces
// from the dogfood spec today. Run `go run ./cmd/raceinstrument
// -dogfood` after changing the rewriter, a subject package, or a
// harness.
func TestGeneratedSourcesCurrent(t *testing.T) {
	root := filepath.Join("..", "..")
	for _, p := range instrument.DogfoodPrograms() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			racy, fixed, err := instrument.GenerateDogfood(root, p)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []struct {
				path string
				want []byte
			}{
				{p.OutRacy, racy.Source},
				{p.OutFixed, fixed.Source},
			} {
				got, err := os.ReadFile(filepath.Join(root, filepath.FromSlash(w.path)))
				if err != nil {
					t.Fatalf("missing committed file: %v", err)
				}
				if string(got) != string(w.want) {
					t.Errorf("%s is stale; run go run ./cmd/raceinstrument -dogfood", w.path)
				}
			}
		})
	}
}
