package staticrace

import "testing"

// Real-Go transliterations of every §4 listing, and which checks the
// static analyzer fires on them. This doubles as the static-vs-dynamic
// coverage experiment recorded in EXPERIMENTS.md: some listings are
// syntactically visible (1, 2, 3, 6, 7, 10), some need type or flow
// information a syntactic pass cannot have (5's header copy, 9's
// cross-method field race, 11's RLock-section mutation).

var listingSnippets = []struct {
	name    string
	src     string
	expect  []Check // checks that must fire
	absent  []Check // checks that must stay quiet
	dynamic bool    // the dynamic corpus detects it (always true here)
}{
	{
		name: "listing1-loop-capture",
		src: `
func l1(jobs []int) {
	for _, job := range jobs {
		go func() {
			process(job)
		}()
	}
}
func process(int) {}
`,
		expect:  []Check{CheckLoopCapture},
		dynamic: true,
	},
	{
		name: "listing2-err-capture",
		src: `
func l2() {
	x, err := foo()
	_, _ = x, err
	go func() {
		var y int
		y, err = bar()
		_, _ = y, err
	}()
	z, err := baz()
	_, _ = z, err
}
func foo() (int, error) { return 0, nil }
func bar() (int, error) { return 0, nil }
func baz() (int, error) { return 0, nil }
`,
		expect:  []Check{CheckErrCapture},
		dynamic: true,
	},
	{
		name: "listing3-named-return",
		src: `
func l3() (result int) {
	result = 10
	go func() {
		use(result)
	}()
	return 20
}
func use(int) {}
`,
		expect:  []Check{CheckNamedReturn},
		dynamic: true,
	},
	{
		name: "listing4-defer-named-return",
		src: `
func l4() (resp string, err error) {
	defer func() {
		resp, err = wrap(err)
	}()
	err = check()
	go func() {
		useBool(err != nil)
	}()
	return
}
func wrap(error) (string, error) { return "", nil }
func check() error               { return nil }
func useBool(bool)               {}
`,
		expect:  []Check{CheckNamedReturn},
		dynamic: true,
	},
	{
		name: "listing5-slice-header-copy",
		// The racy part is the *callsite copy* `}(uuid, myResults)`:
		// recognizing that the copied header races with locked appends
		// needs type information and a sharing analysis. The syntactic
		// pass correctly stays quiet on the copy itself (an
		// under-approximation recorded here), though the in-closure
		// append is visible.
		src: `
func l5(uuids []string, mu *sync.Mutex) {
	var myResults []string
	for _, uuid := range uuids {
		go func(id string, results []string) {
			mu.Lock()
			myResults = append(myResults, id)
			mu.Unlock()
		}(uuid, myResults)
	}
}
`,
		expect:  []Check{CheckCaptureWrite}, // the captured append target
		dynamic: true,
	},
	{
		name: "listing6-map",
		src: `
func l6(uuids []string) {
	errMap := make(map[string]error)
	for _, uuid := range uuids {
		go func(uuid string) {
			errMap[uuid] = getOrder(uuid)
		}(uuid)
	}
}
func getOrder(string) error { return nil }
`,
		expect:  []Check{CheckMapInGo},
		dynamic: true,
	},
	{
		name: "listing7-mutex-by-value",
		src: `
var a int

func criticalSection(m sync.Mutex) {
	m.Lock()
	a++
	m.Unlock()
}
`,
		expect:  []Check{CheckMutexByValue},
		dynamic: true,
	},
	{
		name: "listing9-future",
		// The f.err double write spans two methods; the goroutine
		// side is visible as a capture write through the receiver,
		// but correlating it with Wait's write is beyond syntax.
		src: `
type future struct {
	response string
	err      error
	ch       chan int
}

func (f *future) start() {
	go func() {
		f.response, f.err = f.run()
		f.ch <- 1
	}()
}
func (f *future) run() (string, error) { return "", nil }
`,
		expect:  []Check{CheckCaptureWrite}, // writes through the captured receiver f
		dynamic: true,
	},
	{
		name: "listing10-waitgroup",
		src: `
func l10(ids []int) {
	var wg sync.WaitGroup
	results := make([]int, len(ids))
	for i := range ids {
		i := i
		go func() {
			wg.Add(1)
			results[i] = i
			wg.Done()
		}()
	}
	wg.Wait()
}
`,
		expect:  []Check{CheckWGAddInside},
		dynamic: true,
	},
	{
		name: "listing11-rlock-mutation",
		// Distinguishing a mutating statement inside an
		// RLock/RUnlock extent requires flow analysis; the syntactic
		// pass underapproximates here — no goroutine closure is even
		// present in the method body.
		src: `
type gate struct {
	mu    sync.RWMutex
	ready bool
}

func (g *gate) updateGate() {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.ready = true
}
`,
		expect:  nil, // known static blind spot
		absent:  []Check{CheckCaptureWrite},
		dynamic: true,
	},
}

func TestListingsStaticCoverage(t *testing.T) {
	caught := 0
	for _, tc := range listingSnippets {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			fs := analyze(t, tc.src)
			for _, c := range tc.expect {
				if !has(fs, c) {
					t.Errorf("expected %s, got %v", c, fs)
				}
			}
			for _, c := range tc.absent {
				if has(fs, c) {
					t.Errorf("unexpected %s in %v", c, fs)
				}
			}
		})
		if len(tc.expect) > 0 {
			caught++
		}
	}
	// Static coverage headline: 9 of 10 listing shapes carry at least
	// one syntactic signal; Listing 11 needs flow analysis.
	if caught != len(listingSnippets)-1 {
		t.Fatalf("static coverage changed: %d/%d listings with findings", caught, len(listingSnippets))
	}
}
