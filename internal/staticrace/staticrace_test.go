package staticrace

import (
	"strings"
	"testing"

	"gorace/internal/corpusgen"
)

// analyze is a test helper: run all checks on a snippet.
func analyze(t *testing.T, src string) []Finding {
	t.Helper()
	fs, err := AnalyzeSource("snippet.go", "package p\n\nimport \"sync\"\nvar _ = sync.Mutex{}\n"+src)
	if err != nil {
		t.Fatalf("snippet does not parse: %v", err)
	}
	return fs
}

func has(fs []Finding, c Check) bool {
	for _, f := range fs {
		if f.Check == c {
			return true
		}
	}
	return false
}

func TestListing1LoopCapture(t *testing.T) {
	fs := analyze(t, `
func processJobs(jobs []int) {
	for _, job := range jobs {
		go func() {
			process(job)
		}()
	}
}
func process(int) {}
`)
	if !has(fs, CheckLoopCapture) {
		t.Fatalf("Listing 1 not flagged: %v", fs)
	}
}

func TestLoopCaptureFixedByArgument(t *testing.T) {
	fs := analyze(t, `
func processJobs(jobs []int) {
	for _, job := range jobs {
		go func(j int) {
			process(j)
		}(job)
	}
}
func process(int) {}
`)
	if has(fs, CheckLoopCapture) {
		t.Fatalf("argument-passing idiom flagged: %v", fs)
	}
}

func TestLoopCaptureFixedByRedeclare(t *testing.T) {
	fs := analyze(t, `
func processJobs(jobs []int) {
	for _, job := range jobs {
		job := job
		go func() {
			process(job)
		}()
	}
}
func process(int) {}
`)
	if has(fs, CheckLoopCapture) {
		t.Fatalf("privatized loop variable flagged: %v", fs)
	}
}

func TestThreeClauseForCapture(t *testing.T) {
	fs := analyze(t, `
func spawnAll(n int) {
	for i := 0; i < n; i++ {
		go func() {
			process(i)
		}()
	}
}
func process(int) {}
`)
	if !has(fs, CheckLoopCapture) {
		t.Fatalf("3-clause for capture not flagged: %v", fs)
	}
}

func TestListing2ErrCapture(t *testing.T) {
	fs := analyze(t, `
func handle() {
	x, err := foo()
	_ = x
	if err != nil {
		return
	}
	go func() {
		var y int
		y, err = bar()
		_ = y
		if err != nil {
			return
		}
	}()
	_, err = baz()
	_ = err
}
func foo() (int, error) { return 0, nil }
func bar() (int, error) { return 0, nil }
func baz() (int, error) { return 0, nil }
`)
	if !has(fs, CheckErrCapture) {
		t.Fatalf("Listing 2 not flagged: %v", fs)
	}
}

func TestErrCaptureFixedByFreshVariable(t *testing.T) {
	fs := analyze(t, `
func handle() {
	go func() {
		y, yErr := bar()
		_, _ = y, yErr
	}()
}
func bar() (int, error) { return 0, nil }
`)
	if has(fs, CheckErrCapture) {
		t.Fatalf("closure-local error flagged: %v", fs)
	}
}

func TestListing3NamedReturnCapture(t *testing.T) {
	fs := analyze(t, `
func namedReturnCallee() (result int) {
	result = 10
	go func() {
		use(result)
	}()
	return 20
}
func use(int) {}
`)
	if !has(fs, CheckNamedReturn) {
		t.Fatalf("Listing 3 not flagged: %v", fs)
	}
}

func TestUnnamedReturnNotFlagged(t *testing.T) {
	fs := analyze(t, `
func callee() int {
	result := 10
	go func() {
		use(result)
	}()
	return 20
}
func use(int) {}
`)
	if has(fs, CheckNamedReturn) {
		t.Fatalf("unnamed return flagged: %v", fs)
	}
}

func TestListing7MutexByValue(t *testing.T) {
	fs := analyze(t, `
func criticalSection(m sync.Mutex) {
	m.Lock()
	m.Unlock()
}
`)
	if !has(fs, CheckMutexByValue) {
		t.Fatalf("Listing 7 not flagged: %v", fs)
	}
}

func TestMutexByPointerNotFlagged(t *testing.T) {
	fs := analyze(t, `
func criticalSection(m *sync.Mutex) {
	m.Lock()
	m.Unlock()
}
func reader(m *sync.RWMutex) {
	m.RLock()
	m.RUnlock()
}
`)
	if has(fs, CheckMutexByValue) {
		t.Fatalf("pointer mutex flagged: %v", fs)
	}
}

func TestRWMutexByValueFlagged(t *testing.T) {
	fs := analyze(t, `
func guard(m sync.RWMutex) {
	m.RLock()
	m.RUnlock()
}
`)
	if !has(fs, CheckMutexByValue) {
		t.Fatalf("by-value RWMutex not flagged: %v", fs)
	}
}

func TestListing10WGAddInside(t *testing.T) {
	fs := analyze(t, `
func waitGrpExample(ids []int) {
	var wg sync.WaitGroup
	for range ids {
		go func() {
			wg.Add(1)
			wg.Done()
		}()
	}
	wg.Wait()
}
`)
	if !has(fs, CheckWGAddInside) {
		t.Fatalf("Listing 10 not flagged: %v", fs)
	}
}

func TestWGAddBeforeGoNotFlagged(t *testing.T) {
	fs := analyze(t, `
func waitGrpExample(ids []int) {
	var wg sync.WaitGroup
	for range ids {
		wg.Add(1)
		go func() {
			wg.Done()
		}()
	}
	wg.Wait()
}
`)
	if has(fs, CheckWGAddInside) {
		t.Fatalf("correct Add placement flagged: %v", fs)
	}
}

func TestListing6MapWriteInGoroutine(t *testing.T) {
	fs := analyze(t, `
func processOrders(uuids []string) {
	errMap := make(map[string]error)
	for _, uuid := range uuids {
		go func(uuid string) {
			errMap[uuid] = nil
		}(uuid)
	}
}
`)
	if !has(fs, CheckMapInGo) {
		t.Fatalf("Listing 6 not flagged: %v", fs)
	}
}

func TestLocalMapNotFlagged(t *testing.T) {
	fs := analyze(t, `
func processOrders(uuids []string) {
	for _, uuid := range uuids {
		go func(uuid string) {
			local := make(map[string]error)
			local[uuid] = nil
		}(uuid)
	}
}
`)
	if has(fs, CheckMapInGo) {
		t.Fatalf("closure-local map flagged: %v", fs)
	}
}

func TestCaptureWriteGeneric(t *testing.T) {
	fs := analyze(t, `
func aggregate() {
	total := 0
	go func() {
		total++
	}()
	total += 10
}
`)
	if !has(fs, CheckCaptureWrite) {
		t.Fatalf("generic capture write not flagged: %v", fs)
	}
}

func TestSelectorBaseCountsAsFree(t *testing.T) {
	fs := analyze(t, `
type future struct{ err error }
func (f *future) start() {
	go func() {
		f.err = nil
	}()
}
`)
	// f is the free variable written through; flagged as err-capture
	// (field name heuristic does not apply; the write target is f).
	if !has(fs, CheckCaptureWrite) && !has(fs, CheckErrCapture) {
		t.Fatalf("receiver capture write not flagged: %v", fs)
	}
}

func TestCleanFileNoFindings(t *testing.T) {
	fs := analyze(t, `
func clean(jobs []int) {
	var wg sync.WaitGroup
	results := make([]int, len(jobs))
	for i, job := range jobs {
		i, job := i, job
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = job * 2
		}()
	}
	wg.Wait()
}
`)
	// results[i] write inside the goroutine IS flagged by map-in-go
	// (indexed write to captured name) — a known over-approximation
	// without type info. Everything else must stay quiet.
	for _, f := range fs {
		if f.Check != CheckMapInGo {
			t.Fatalf("clean code flagged: %v", f)
		}
	}
}

func TestFindingsSortedAndFormatted(t *testing.T) {
	fs := analyze(t, `
func a(m sync.Mutex) {}
func b() {
	x := 0
	go func() { x = 1 }()
	_ = x
}
`)
	if len(fs) < 2 {
		t.Fatalf("findings = %v", fs)
	}
	for i := 1; i < len(fs); i++ {
		if fs[i].Pos.Line < fs[i-1].Pos.Line {
			t.Fatal("findings not sorted by line")
		}
	}
	if !strings.Contains(fs[0].String(), "snippet.go:") {
		t.Fatalf("finding format: %s", fs[0])
	}
}

func TestParseErrorPropagates(t *testing.T) {
	if _, err := AnalyzeSource("bad.go", "package {{{"); err == nil {
		t.Fatal("parse error swallowed")
	}
}

// TestNoFindingsOnSyntheticMonorepo sweeps the analyzer over the
// corpusgen-generated Go repository (clean by construction): a
// false-positive budget of zero across hundreds of files.
func TestNoFindingsOnSyntheticMonorepo(t *testing.T) {
	files := corpusgen.GenGoRepo(corpusgen.UberGoProfile, 100_000, 11)
	if len(files) < 50 {
		t.Fatalf("only %d files", len(files))
	}
	for _, f := range files {
		fs, err := AnalyzeSource(f.Name, f.Content)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		if len(fs) != 0 {
			t.Fatalf("false positive in clean synthetic code: %v", fs[0])
		}
	}
}
