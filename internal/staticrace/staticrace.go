// Package staticrace is a static analyzer for the Go data race
// patterns of §4, the "further research in static race detection for
// Go" the paper's conclusion calls for. It inspects real Go source
// (go/ast, no type information required) and flags the syntactic
// shapes behind the study's most frequent root causes:
//
//	loop-capture        a goroutine closure captures the loop variable (Listing 1)
//	err-capture         a goroutine closure assigns a captured err (Listing 2)
//	named-return        a goroutine closure references a named return (Listings 3–4)
//	mutex-by-value      a sync.Mutex/RWMutex parameter passed by value (Listing 7)
//	wg-add-inside       wg.Add called inside the goroutine it accounts for (Listing 10)
//	map-in-goroutine    a captured map written inside a goroutine (Listing 6)
//	capture-write       a goroutine closure writes any captured variable (Observation 3)
//
// Like every purely syntactic checker, it over- and under-approximates;
// each Finding carries the pattern ID so downstream tooling can tune
// severities. The corpus-derived tests pin both true positives and
// clean-code non-findings.
package staticrace

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
)

// Check identifies one analyzer rule.
type Check string

// The checks, named after the corpus patterns they correspond to.
const (
	CheckLoopCapture  Check = "loop-capture"
	CheckErrCapture   Check = "err-capture"
	CheckNamedReturn  Check = "named-return"
	CheckMutexByValue Check = "mutex-by-value"
	CheckWGAddInside  Check = "wg-add-inside"
	CheckMapInGo      Check = "map-in-goroutine"
	CheckCaptureWrite Check = "capture-write"
)

// Finding is one static report.
type Finding struct {
	Check   Check
	Pos     token.Position
	Message string
}

// String renders the finding in file:line:col: [check] message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// AnalyzeSource parses one Go file and runs all checks.
func AnalyzeSource(filename, src string) ([]Finding, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, 0)
	if err != nil {
		return nil, err
	}
	return AnalyzeFile(fset, f), nil
}

// AnalyzeFile runs all checks over a parsed file.
func AnalyzeFile(fset *token.FileSet, f *ast.File) []Finding {
	a := &analyzer{fset: fset}
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			a.checkFuncDecl(x)
		case *ast.FuncLit:
			a.checkMutexParams(x.Type, x.Pos())
		case *ast.RangeStmt:
			a.checkLoop(loopVars(x), x.Body)
		case *ast.ForStmt:
			a.checkLoop(forVars(x), x.Body)
		case *ast.GoStmt:
			a.checkGoStmt(x)
		}
		return true
	})
	sort.Slice(a.findings, func(i, j int) bool {
		if a.findings[i].Pos.Line != a.findings[j].Pos.Line {
			return a.findings[i].Pos.Line < a.findings[j].Pos.Line
		}
		return a.findings[i].Check < a.findings[j].Check
	})
	return a.findings
}

type analyzer struct {
	fset     *token.FileSet
	findings []Finding
}

func (a *analyzer) report(check Check, pos token.Pos, format string, args ...any) {
	a.findings = append(a.findings, Finding{
		Check:   check,
		Pos:     a.fset.Position(pos),
		Message: fmt.Sprintf(format, args...),
	})
}

// loopVars returns the := variables of a range statement.
func loopVars(r *ast.RangeStmt) map[string]bool {
	out := make(map[string]bool)
	if r.Tok.String() != ":=" {
		return out
	}
	if id, ok := r.Key.(*ast.Ident); ok && id.Name != "_" {
		out[id.Name] = true
	}
	if id, ok := r.Value.(*ast.Ident); ok && id.Name != "_" {
		out[id.Name] = true
	}
	return out
}

// forVars returns the init-declared variables of a 3-clause for.
func forVars(f *ast.ForStmt) map[string]bool {
	out := make(map[string]bool)
	if as, ok := f.Init.(*ast.AssignStmt); ok && as.Tok.String() == ":=" {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				out[id.Name] = true
			}
		}
	}
	return out
}

// checkLoop flags goroutine closures inside the loop body that
// capture the loop variable (Listing 1). A same-name redeclaration
// (`job := job`) between the loop header and the go statement
// privatizes the variable, so such closures are not flagged — the
// binding analysis in freeVars handles that, because the shadowing
// declaration bounds the name.
func (a *analyzer) checkLoop(vars map[string]bool, body *ast.BlockStmt) {
	if len(vars) == 0 {
		return
	}
	// A redeclaration anywhere in the loop body privatizes the name
	// for the closures below it; approximate by dropping redeclared
	// names entirely (toward fewer false positives).
	for _, stmt := range body.List {
		if as, ok := stmt.(*ast.AssignStmt); ok && as.Tok.String() == ":=" {
			for i := range as.Lhs {
				lid, lok := as.Lhs[i].(*ast.Ident)
				if !lok || i >= len(as.Rhs) {
					continue
				}
				if rid, rok := as.Rhs[i].(*ast.Ident); rok && lok && rid.Name == lid.Name {
					delete(vars, lid.Name)
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		fl, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		free := freeVars(fl)
		for name := range vars {
			if ids := free[name]; len(ids) > 0 {
				a.report(CheckLoopCapture, ids[0].Pos(),
					"goroutine closure captures loop variable %q by reference (Listing 1); pass it as an argument or redeclare it", name)
			}
		}
		return true
	})
}

// checkGoStmt flags err-captures, map writes, wg.Add placement, and
// generic captured-variable writes inside goroutine closures.
func (a *analyzer) checkGoStmt(gs *ast.GoStmt) {
	fl, ok := gs.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	free := freeVars(fl)

	// err-capture (Listing 2): the closure assigns a free variable
	// named err (or *err-suffixed), the idiomatic shared error slot.
	for _, id := range assignedIdents(fl.Body) {
		if !isErrName(id.Name) {
			continue
		}
		if ids := free[id.Name]; len(ids) > 0 {
			a.report(CheckErrCapture, id.Pos(),
				"goroutine assigns captured error variable %q (Listing 2); declare a fresh variable inside the closure", id.Name)
			break
		}
	}

	// map-in-goroutine (Listing 6): an index-assignment m[k] = v where
	// m is free. Without type info this also catches slice element
	// writes — which are racy for the same reason (Observation 4).
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			ix, ok := lhs.(*ast.IndexExpr)
			if !ok {
				continue
			}
			if id, ok := ix.X.(*ast.Ident); ok {
				if ids := free[id.Name]; len(ids) > 0 {
					a.report(CheckMapInGo, id.Pos(),
						"goroutine writes element of captured %q (Listings 5–6); maps and slice structure are thread-unsafe", id.Name)
				}
			}
		}
		return true
	})

	// wg-add-inside (Listing 10): wg.Add(...) in the goroutine body.
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && isWGName(id.Name) {
			if ids := free[id.Name]; len(ids) > 0 {
				a.report(CheckWGAddInside, call.Pos(),
					"%s.Add inside the goroutine it accounts for (Listing 10); Wait may unblock early — call Add before `go`", id.Name)
			}
		}
		return true
	})

	// capture-write (Observation 3, generic): plain writes to any
	// free variable. Skip names already reported by the specific
	// checks to keep reports focused.
	reported := make(map[string]bool)
	for _, f := range a.findings {
		if strings.Contains(f.Message, "\"") {
			if q := strings.SplitN(f.Message, "\"", 3); len(q) == 3 {
				reported[q[1]] = true
			}
		}
	}
	for _, id := range assignedIdents(fl.Body) {
		if reported[id.Name] || isErrName(id.Name) {
			continue
		}
		if ids := free[id.Name]; len(ids) > 0 {
			reported[id.Name] = true // one finding per captured name
			a.report(CheckCaptureWrite, id.Pos(),
				"goroutine writes captured variable %q (Observation 3); synchronize or privatize it", id.Name)
		}
	}
}

// checkFuncDecl flags named-return capture and by-value mutex params.
func (a *analyzer) checkFuncDecl(fd *ast.FuncDecl) {
	a.checkMutexParams(fd.Type, fd.Pos())
	if fd.Body == nil || fd.Type.Results == nil {
		return
	}
	named := make(map[string]bool)
	for _, f := range fd.Type.Results.List {
		for _, id := range f.Names {
			named[id.Name] = true
		}
	}
	if len(named) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		fl, ok := gs.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true
		}
		free := freeVars(fl)
		for name := range named {
			if ids := free[name]; len(ids) > 0 {
				a.report(CheckNamedReturn, ids[0].Pos(),
					"goroutine captures named return %q (Listings 3–4); every return statement writes it", name)
			}
		}
		return true
	})
}

// checkMutexParams flags sync.Mutex / sync.RWMutex parameters passed
// by value (Listing 7).
func (a *analyzer) checkMutexParams(ft *ast.FuncType, pos token.Pos) {
	if ft.Params == nil {
		return
	}
	for _, f := range ft.Params.List {
		sel, ok := f.Type.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || pkg.Name != "sync" {
			continue
		}
		if sel.Sel.Name == "Mutex" || sel.Sel.Name == "RWMutex" {
			p := pos
			if len(f.Names) > 0 {
				p = f.Names[0].Pos()
			}
			a.report(CheckMutexByValue, p,
				"sync.%s parameter passed by value (Listing 7); each call locks a private copy — use *sync.%s",
				sel.Sel.Name, sel.Sel.Name)
		}
	}
}

func isErrName(n string) bool {
	return n == "err" || strings.HasSuffix(n, "Err") || strings.HasSuffix(n, "err")
}

func isWGName(n string) bool {
	l := strings.ToLower(n)
	return l == "wg" || strings.Contains(l, "waitgroup") || strings.HasSuffix(l, "wg")
}
