package staticrace

import "go/ast"

// freeVars computes the free identifiers of a function literal: names
// referenced in the body that are not declared by the literal itself
// (parameters, named results, local declarations, range/assign
// variables, type switch bindings). This is the mechanical core of
// Observation 3: closures in Go capture free variables by reference,
// transparently.
func freeVars(fl *ast.FuncLit) map[string][]*ast.Ident {
	bound := make(map[string]bool)
	if fl.Type.Params != nil {
		for _, f := range fl.Type.Params.List {
			for _, n := range f.Names {
				bound[n.Name] = true
			}
		}
	}
	if fl.Type.Results != nil {
		for _, f := range fl.Type.Results.List {
			for _, n := range f.Names {
				bound[n.Name] = true
			}
		}
	}
	collectBound(fl.Body, bound)

	free := make(map[string][]*ast.Ident)
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			// Only the operand can be a variable reference; the
			// selected name never is.
			ast.Inspect(x.X, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					noteFree(free, bound, id)
				}
				return true
			})
			return false
		case *ast.KeyValueExpr:
			// Struct literal keys are field names, not variables.
			ast.Inspect(x.Value, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					noteFree(free, bound, id)
				}
				return true
			})
			return false
		case *ast.Ident:
			noteFree(free, bound, x)
		}
		return true
	})
	return free
}

func noteFree(free map[string][]*ast.Ident, bound map[string]bool, id *ast.Ident) {
	if id.Name == "_" || id.Name == "nil" || id.Name == "true" || id.Name == "false" {
		return
	}
	if bound[id.Name] {
		return
	}
	free[id.Name] = append(free[id.Name], id)
}

// collectBound gathers every name declared anywhere inside the body.
// This over-approximates lexical scoping (a name declared in a nested
// block shadows uses elsewhere), which errs toward *fewer* findings —
// the right direction for a linter's false-positive budget.
func collectBound(body *ast.BlockStmt, bound map[string]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok.String() == ":=" {
				for _, lhs := range x.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						bound[id.Name] = true
					}
				}
			}
		case *ast.GenDecl:
			for _, spec := range x.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, id := range vs.Names {
						bound[id.Name] = true
					}
				}
			}
		case *ast.RangeStmt:
			if id, ok := x.Key.(*ast.Ident); ok && x.Tok.String() == ":=" {
				bound[id.Name] = true
			}
			if id, ok := x.Value.(*ast.Ident); ok && x.Tok.String() == ":=" {
				bound[id.Name] = true
			}
		case *ast.TypeSwitchStmt:
			if as, ok := x.Assign.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						bound[id.Name] = true
					}
				}
			}
		case *ast.FuncLit:
			// Nested literals declare their own scope; their params
			// do not bind names in the outer body, but anything they
			// declare with := inside is also invisible outside. We
			// still walk in (shared over-approximation).
		}
		return true
	})
}

// assignedIdents returns identifiers assigned (written) in the node,
// including the base identifier of selector and dereference targets —
// `f.err = nil` and `*p = v` both write through the captured name.
func assignedIdents(n ast.Node) []*ast.Ident {
	var out []*ast.Ident
	note := func(e ast.Expr) {
		for {
			switch x := e.(type) {
			case *ast.Ident:
				out = append(out, x)
				return
			case *ast.SelectorExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.ParenExpr:
				e = x.X
			default:
				return // index targets are handled by the map check
			}
		}
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				note(lhs)
			}
		case *ast.IncDecStmt:
			note(x.X)
		}
		return true
	})
	return out
}
