// Package registry is the generic name→factory registry backing the
// pluggable detector and scheduling-strategy families. Registration
// happens at init time and panics loudly on misuse; lookup failures
// return an error listing the valid names.
package registry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Registry maps names to factories for one kind of component.
type Registry[T any] struct {
	kind      string
	mu        sync.RWMutex
	factories map[string]func() T
}

// New returns an empty registry; kind ("detector", "strategy") names
// the component family in panic and error messages.
func New[T any](kind string) *Registry[T] {
	return &Registry[T]{kind: kind, factories: map[string]func() T{}}
}

// Register adds a factory under name. It panics on an empty name, a
// nil factory, or a duplicate registration — registries are assembled
// at init time, where a loud failure beats a shadowed component.
func (r *Registry[T]) Register(name string, factory func() T) {
	if name == "" {
		panic(fmt.Sprintf("%s registry: Register with empty name", r.kind))
	}
	if factory == nil {
		panic(fmt.Sprintf("%s registry: Register(%q) with nil factory", r.kind, name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.factories[name]; dup {
		panic(fmt.Sprintf("%s registry: Register(%q) called twice", r.kind, name))
	}
	r.factories[name] = factory
}

// Build constructs a fresh instance by registered name. Unknown names
// error, listing the valid ones.
func (r *Registry[T]) Build(name string) (T, error) {
	r.mu.RLock()
	factory, ok := r.factories[name]
	r.mu.RUnlock()
	if !ok {
		var zero T
		return zero, fmt.Errorf("unknown %s %q (valid: %s)", r.kind, name, strings.Join(r.Names(), ", "))
	}
	return factory(), nil
}

// Names returns the registered names, sorted.
func (r *Registry[T]) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.factories))
	for name := range r.factories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
