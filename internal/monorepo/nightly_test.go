package monorepo

import (
	"path/filepath"
	"strings"
	"testing"

	"gorace/internal/corpus"
)

func TestRunNightlyAccumulatesAndDiffs(t *testing.T) {
	repo := Generate(6, 3, 0.6, 3)
	store, err := corpus.Open(filepath.Join(t.TempDir(), "nightly.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	n1, err := repo.RunNightly(store, "2026-07-01", 42)
	if err != nil {
		t.Fatal(err)
	}
	if !n1.FirstNight {
		t.Fatal("first night not flagged")
	}
	if n1.Defects == 0 {
		t.Fatal("no defects detected on night 1; scenario is vacuous")
	}
	if len(n1.Delta.New) != n1.Defects || len(n1.Delta.Recurring) != 0 || len(n1.Delta.Resolved) != 0 {
		t.Fatalf("first-night delta inconsistent: %d new, %d recurring, %d resolved (defects %d)",
			len(n1.Delta.New), len(n1.Delta.Recurring), len(n1.Delta.Resolved), n1.Defects)
	}

	// Fix one detected test, then rerun the same schedules: its
	// defects must show as resolved, everything else as recurring.
	first := n1.Delta.New[0]
	svcTest := strings.SplitN(first.Unit, "/", 2)
	if !repo.Fix(svcTest[0], svcTest[1]) {
		t.Fatalf("could not fix %s", first.Unit)
	}
	n2, err := repo.RunNightly(store, "2026-07-02", 42)
	if err != nil {
		t.Fatal(err)
	}
	if n2.FirstNight {
		t.Fatal("second night flagged as first")
	}
	if n2.Delta.RunA != "2026-07-01" || n2.Delta.RunB != "2026-07-02" {
		t.Fatalf("delta runs = %q -> %q", n2.Delta.RunA, n2.Delta.RunB)
	}
	if len(n2.Delta.New) != 0 {
		t.Fatalf("identical schedules produced %d new defects", len(n2.Delta.New))
	}
	if len(n2.Delta.Resolved) == 0 {
		t.Fatal("fixed test produced no resolved defects")
	}
	for _, rec := range n2.Delta.Resolved {
		if rec.Unit != first.Unit {
			t.Fatalf("resolved defect from unfixed unit %s", rec.Unit)
		}
	}
	if len(n2.Delta.Recurring) != n1.Defects-len(n2.Delta.Resolved) {
		t.Fatalf("recurring %d, want %d", len(n2.Delta.Recurring), n1.Defects-len(n2.Delta.Resolved))
	}
	// Recurring defects carry accumulated history.
	rec := n2.Delta.Recurring[0]
	if rec.FirstSeen() != "2026-07-01" || rec.LastSeen() != "2026-07-02" {
		t.Fatalf("recurring history wrong: %v", rec.RunIDs)
	}
	if rec.Category == "" || len(rec.Labels) == 0 {
		t.Fatalf("defect not classified: %+v", rec)
	}

	out := n2.Format()
	for _, want := range []string{"RECURRING", "RESOLVED", "delta vs 2026-07-01"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}

	// The store survives reopening with the full two-night history.
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := corpus.Open(store.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	runs := re.Runs()
	if len(runs) != 2 || runs[0].ID != "2026-07-01" || runs[1].ID != "2026-07-02" {
		t.Fatalf("reopened runs = %+v", runs)
	}
	if runs[0].Executions != n1.Executions || runs[0].Reports != n1.Reports {
		t.Fatalf("run 1 accounting lost: %+v vs %+v", runs[0], n1)
	}
	delta, err := re.Diff("2026-07-01", "2026-07-02")
	if err != nil {
		t.Fatal(err)
	}
	if len(delta.Resolved) != len(n2.Delta.Resolved) || len(delta.Recurring) != len(n2.Delta.Recurring) {
		t.Fatalf("reopened diff differs: %d/%d resolved, %d/%d recurring",
			len(delta.Resolved), len(n2.Delta.Resolved), len(delta.Recurring), len(n2.Delta.Recurring))
	}
}
