package monorepo

import (
	"fmt"
	"strings"

	"gorace/internal/corpus"
	"gorace/internal/sweep"
)

// This file is the longitudinal form of the nightly run: where
// RunAllTests forgets everything when it returns, RunNightly folds the
// night's detections into a persistent corpus store and reports the
// cross-run delta — which defects are brand new tonight, which
// recurred, and which stopped manifesting since the previous night.
// That accumulated store is what the paper's month-scale analyses
// (§3.3–§4) actually study.

// Nightly summarizes one corpus-backed nightly run.
type Nightly struct {
	RunID      string
	Executions int // unit-test executions performed
	Reports    int // raw race reports before dedup
	Defects    int // deduplicated defects observed tonight
	// FirstNight is set when the store had no prior run to diff
	// against; Delta then lists every defect as New.
	FirstNight bool
	// Delta is the cross-run diff against the previous recorded run.
	Delta corpus.Delta
}

// RunNightly executes every unit test once under a fresh schedule —
// the same campaign as RunAllTests — and appends the deduplicated,
// classified detections to the store under runID. Run ids must sort
// chronologically (the store orders them by string comparison).
func (r *Repo) RunNightly(store *corpus.Store, runID string, seed int64) (*Nightly, error) {
	var units []sweep.Unit
	for si, svc := range r.Services {
		for ti, t := range svc.Tests {
			units = append(units, sweep.Unit{
				// Unit IDs scope the dedup hash by service+test, as in
				// RunAllTests; recording feeds the classifier's hints.
				ID:       svc.Name + "/" + t.Name,
				Program:  t.Program(),
				BaseSeed: seed ^ int64(si*131+ti*17),
				Runs:     1,
				MaxSteps: 1 << 16,
				Record:   true,
			})
		}
	}
	prev := store.LastRun()
	aggs, _, err := sweep.New().Run(units,
		func() sweep.Aggregator { return corpus.NewCollector(runID, corpus.WithRunLabel("nightly")) })
	if err != nil {
		return nil, err
	}
	coll := aggs[0].(*corpus.Collector)
	if err := coll.AppendTo(store); err != nil {
		return nil, err
	}
	n := &Nightly{
		RunID:      runID,
		Executions: coll.Executions(),
		Reports:    coll.Reports(),
		Defects:    coll.Defects(),
	}
	if prev == "" {
		n.FirstNight = true
		n.Delta = corpus.Delta{RunB: runID}
		for _, rec := range store.Records() {
			if rec.SeenIn(runID) {
				n.Delta.New = append(n.Delta.New, rec)
			}
		}
		return n, nil
	}
	if n.Delta, err = store.Diff(prev, runID); err != nil {
		return nil, err
	}
	return n, nil
}

// Format renders the nightly report: the run summary followed by the
// delta sections, each defect with its key, category, and occurrence
// history.
func (n *Nightly) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== nightly %s: %d executions, %d reports, %d defects ==\n",
		n.RunID, n.Executions, n.Reports, n.Defects)
	if n.FirstNight {
		fmt.Fprintf(&b, "first recorded night; every defect is new\n")
	} else {
		fmt.Fprintf(&b, "delta vs %s: %d new, %d recurring, %d resolved\n",
			n.Delta.RunA, len(n.Delta.New), len(n.Delta.Recurring), len(n.Delta.Resolved))
	}
	section := func(title string, recs []corpus.Record) {
		if len(recs) == 0 {
			return
		}
		fmt.Fprintf(&b, "\n%s:\n", title)
		for _, rec := range recs {
			fmt.Fprintf(&b, "  %-44s %-22s seen %dx in %d run(s) since %s\n",
				rec.Key, rec.Category, rec.Count, len(rec.RunIDs), rec.FirstSeen())
		}
	}
	section("NEW", n.Delta.New)
	section("RECURRING", n.Delta.Recurring)
	section("RESOLVED (not seen tonight)", n.Delta.Resolved)
	return b.String()
}
