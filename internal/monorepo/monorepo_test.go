package monorepo

import (
	"strings"
	"testing"
)

func TestGenerateShape(t *testing.T) {
	r := Generate(10, 4, 0.5, 1)
	if len(r.Services) != 10 {
		t.Fatalf("services = %d", len(r.Services))
	}
	total := 0
	for _, s := range r.Services {
		if len(s.Tests) != 4 {
			t.Fatalf("%s has %d tests", s.Name, len(s.Tests))
		}
		total += len(s.Tests)
	}
	racy := r.RacyCount()
	if racy == 0 || racy == total {
		t.Fatalf("racy fraction degenerate: %d of %d", racy, total)
	}
}

func TestRunAllTestsFindsOnlyRacyTests(t *testing.T) {
	// With racyFraction 0 every test embeds the fixed variant: no
	// detection may fire on any schedule.
	clean := Generate(6, 3, 0, 2)
	for day := int64(0); day < 3; day++ {
		if dets := clean.RunAllTests(day); len(dets) != 0 {
			t.Fatalf("day %d: %d detections in an all-fixed repo (first: %s)",
				day, len(dets), dets[0].Hash)
		}
	}
	// With racyFraction 1 most tests should eventually produce
	// detections across a few nightly runs (some races are
	// schedule-dependent, hence "eventually").
	dirty := Generate(6, 3, 1, 2)
	seen := make(map[string]bool)
	for day := int64(0); day < 25; day++ {
		for _, det := range dirty.RunAllTests(day * 977) {
			seen[det.Service+"/"+det.Test] = true
		}
	}
	if len(seen) < 12 { // 18 racy tests; allow the flakiest to hide
		t.Fatalf("only %d/18 racy tests ever detected", len(seen))
	}
}

func TestHashScopedByTest(t *testing.T) {
	// The same corpus pattern in two services must file as two
	// distinct defects.
	r := Generate(2, 1, 1, 3)
	// Force both tests to the same pattern.
	r.Services[1].Tests[0].Pattern = r.Services[0].Tests[0].Pattern
	r.Services[0].Tests[0].Racy = true
	r.Services[1].Tests[0].Racy = true
	seen := make(map[string]bool)
	for day := int64(0); day < 30; day++ {
		for _, det := range r.RunAllTests(day * 31) {
			seen[det.Hash] = true
		}
	}
	bySvc := map[string]bool{}
	for h := range seen {
		bySvc[strings.SplitN(h, "/", 2)[0]] = true
	}
	if len(bySvc) != 2 {
		t.Fatalf("expected defects in both services, got %v", bySvc)
	}
}

func TestFixSwitchesVariant(t *testing.T) {
	r := Generate(1, 1, 1, 4)
	svc, tst := r.Services[0].Name, r.Services[0].Tests[0].Name
	if !r.Fix(svc, tst) {
		t.Fatal("fix failed")
	}
	if r.Fix(svc, tst) {
		t.Fatal("double fix succeeded")
	}
	if r.Fix("nope", tst) || r.Fix(svc, "nope") {
		t.Fatal("fixing unknown test succeeded")
	}
	if r.RacyCount() != 0 {
		t.Fatal("racy count not updated")
	}
}

func TestSimulateDeploymentDrivesRacesDown(t *testing.T) {
	r := Generate(8, 3, 0.6, 5)
	before := r.RacyCount()
	res := r.SimulateDeployment(30, 0.5, 9)
	if len(res.Days) != 30 {
		t.Fatalf("days = %d", len(res.Days))
	}
	if res.TotalFixed == 0 {
		t.Fatal("nothing fixed in 30 days at 50% fix rate")
	}
	if res.StillRacy >= before {
		t.Fatalf("racy count did not decrease: %d -> %d", before, res.StillRacy)
	}
	// Open defects must equal filed minus resolved each day; spot
	// check monotone sanity of the final day.
	last := res.Days[len(res.Days)-1]
	if last.OpenDefects < 0 || res.TotalFixed > res.TotalFiled {
		t.Fatalf("inconsistent accounting: %+v", res)
	}
}

func TestSimulateDeploymentDeterministic(t *testing.T) {
	a := Generate(5, 2, 0.5, 7).SimulateDeployment(10, 0.3, 11)
	b := Generate(5, 2, 0.5, 7).SimulateDeployment(10, 0.3, 11)
	if a.TotalFiled != b.TotalFiled || a.TotalFixed != b.TotalFixed || a.StillRacy != b.StillRacy {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
	for i := range a.Days {
		if a.Days[i] != b.Days[i] {
			t.Fatalf("day %d differs", i)
		}
	}
}

func TestNeverCaughtAccounting(t *testing.T) {
	// With zero days nothing can be filed, so every racy test is
	// "never caught".
	r := Generate(4, 2, 1, 8)
	res := r.SimulateDeployment(0, 1, 1)
	if res.NeverCaught != r.RacyCount() {
		t.Fatalf("never caught = %d, racy = %d", res.NeverCaught, r.RacyCount())
	}
}
