// Package monorepo models the subject of the study: a repository of
// services whose unit tests exercise concurrent code, some of it racy.
// Unlike internal/pipeline — which simulates detection as calibrated
// coin flips to reach the paper's six-month aggregates — this package
// embeds *real* corpus programs in the tests and runs the *real*
// detector over them, end to end: nightly runs execute every unit
// test under a fresh schedule, reports are de-duplicated with the
// §3.3.1 hash, and "fixing" a defect swaps the test's program for the
// pattern's repaired variant.
package monorepo

import (
	"fmt"
	"math/rand"
	"sort"

	"gorace/internal/patterns"
	"gorace/internal/report"
	"gorace/internal/sched"
	"gorace/internal/sweep"
)

// UnitTest is one test in a service, wrapping a corpus pattern.
type UnitTest struct {
	Name    string
	Pattern patterns.Pattern
	// Racy records whether the bug is still present; Fix flips it.
	Racy bool
}

// Program returns the test body reflecting the current fix state.
func (t *UnitTest) Program() func(*sched.G) {
	if t.Racy {
		return t.Pattern.Racy
	}
	return t.Pattern.Fixed
}

// Service is one microservice directory in the monorepo.
type Service struct {
	Name  string
	Owner string
	Tests []*UnitTest
}

// Repo is the synthetic monorepo.
type Repo struct {
	Services []*Service
}

// Generate builds a repo of nServices services with testsPerService
// tests each; racyFraction of the tests embed the racy variant of a
// corpus pattern (cycled deterministically), the rest start fixed.
func Generate(nServices, testsPerService int, racyFraction float64, seed int64) *Repo {
	rng := rand.New(rand.NewSource(seed))
	all := patterns.All()
	r := &Repo{}
	pi := 0
	for s := 0; s < nServices; s++ {
		svc := &Service{
			Name:  fmt.Sprintf("svc-%03d", s),
			Owner: fmt.Sprintf("eng-%03d", s%17),
		}
		for t := 0; t < testsPerService; t++ {
			p := all[pi%len(all)]
			pi++
			svc.Tests = append(svc.Tests, &UnitTest{
				Name:    fmt.Sprintf("Test%s_%d", svc.Name, t),
				Pattern: p,
				Racy:    rng.Float64() < racyFraction,
			})
		}
		r.Services = append(r.Services, svc)
	}
	return r
}

// Detection is one de-dup-relevant race found by a nightly run.
type Detection struct {
	Service string
	Test    string
	Race    report.Race
	Hash    string
}

// RunAllTests executes every unit test once under a fresh random
// schedule (the source of run-to-run flakiness) and returns the
// detections. The nightly run is one sweep campaign — a unit per
// test, the Corpus aggregator deduplicating reports within each test
// — so the whole monorepo's tests execute over the engine's recycled
// worker pool, in parallel, with deterministic output.
func (r *Repo) RunAllTests(seed int64) []Detection {
	type site struct{ service, test string }
	var units []sweep.Unit
	var sites []site // parallel to units
	for si, svc := range r.Services {
		for ti, t := range svc.Tests {
			units = append(units, sweep.Unit{
				// Unit IDs scope the dedup hash by service+test: the
				// same corpus pattern embedded in two services is two
				// distinct defects, as two real code sites would be.
				ID:       svc.Name + "/" + t.Name,
				Program:  t.Program(),
				BaseSeed: seed ^ int64(si*131+ti*17),
				Runs:     1,
				MaxSteps: 1 << 16,
			})
			sites = append(sites, site{svc.Name, t.Name})
		}
	}
	aggs, _, err := sweep.New().Run(units,
		func() sweep.Aggregator { return sweep.NewCorpus() })
	if err != nil {
		panic(err) // default registry names; cannot fail
	}
	var out []Detection
	for _, det := range aggs[0].(*sweep.Corpus).Detections() {
		out = append(out, Detection{
			Service: sites[det.UnitIdx].service,
			Test:    sites[det.UnitIdx].test,
			Hash:    det.Unit + "/" + det.Race.Hash(),
			Race:    det.Race,
		})
	}
	return out
}

// Fix repairs the named test (switches it to the fixed variant).
// Returns false if the test is unknown or already fixed.
func (r *Repo) Fix(service, test string) bool {
	for _, svc := range r.Services {
		if svc.Name != service {
			continue
		}
		for _, t := range svc.Tests {
			if t.Name == test && t.Racy {
				t.Racy = false
				return true
			}
		}
	}
	return false
}

// RacyCount returns how many tests still embed their bug.
func (r *Repo) RacyCount() int {
	n := 0
	for _, svc := range r.Services {
		for _, t := range svc.Tests {
			if t.Racy {
				n++
			}
		}
	}
	return n
}

// DeploymentDay is one day of the end-to-end deployment loop.
type DeploymentDay struct {
	Day         int
	Detections  int // raw detections today
	NewDefects  int // newly filed (hash not open)
	Fixed       int // defects fixed today
	OpenDefects int // open at end of day
}

// DeploymentResult summarizes an end-to-end run.
type DeploymentResult struct {
	Days        []DeploymentDay
	TotalFiled  int
	TotalFixed  int
	StillRacy   int
	NeverCaught int // racy tests whose race never manifested
}

// SimulateDeployment runs the real pipeline for the given number of
// days: every day each unit test executes under a fresh schedule;
// detections are de-duplicated against open defects; and each open
// defect is fixed with probability fixRate (the developer model, the
// only simulated part). Fixing a defect repairs its test.
func (r *Repo) SimulateDeployment(days int, fixRate float64, seed int64) *DeploymentResult {
	type defect struct {
		service, test string
	}
	open := make(map[string]defect)
	filedTests := make(map[string]bool) // service/test keys ever filed
	res := &DeploymentResult{}
	rng := rand.New(rand.NewSource(seed))

	for day := 0; day < days; day++ {
		d := DeploymentDay{Day: day}
		dets := r.RunAllTests(seed + int64(day)*7919)
		d.Detections = len(dets)
		for _, det := range dets {
			if _, ok := open[det.Hash]; ok {
				continue // §3.3.1: suppressed while an open defect exists
			}
			open[det.Hash] = defect{det.Service, det.Test}
			filedTests[det.Service+"/"+det.Test] = true
			d.NewDefects++
			res.TotalFiled++
		}
		// Developers fix open defects. Fixing in order of the day's
		// map iteration would be nondeterministic; collect and sort.
		var hashes []string
		for h := range open {
			hashes = append(hashes, h)
		}
		sort.Strings(hashes)
		for _, h := range hashes {
			if rng.Float64() >= fixRate {
				continue
			}
			df := open[h]
			if r.Fix(df.service, df.test) {
				d.Fixed++
				res.TotalFixed++
			}
			delete(open, h) // resolved either way (test already fixed)
		}
		d.OpenDefects = len(open)
		res.Days = append(res.Days, d)
	}
	res.StillRacy = r.RacyCount()
	for _, svc := range r.Services {
		for _, t := range svc.Tests {
			if t.Racy && !filedTests[svc.Name+"/"+t.Name] {
				res.NeverCaught++
			}
		}
	}
	return res
}
