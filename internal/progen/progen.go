// Package progen generates random modeled programs for differential
// testing: the scheduler must execute them without model failures
// under every strategy, runs must be deterministic per seed, and the
// happens-before detectors (FastTrack, Epoch, DJIT) must agree on
// verdicts within their published differences.
//
// A generated program spawns a random set of goroutines, each
// performing a random straight-line sequence of operations over a
// shared pool of variables, mutexes, RW mutexes, atomics, buffered
// channels, and a WaitGroup. Blocking hazards are constrained by
// construction: locks are released in LIFO order by the acquiring
// goroutine, channel traffic is pre-balanced (every receive has a
// matching send), and Wait runs only in the main goroutine after all
// Adds. Generated programs may still race — that is the point.
package progen

import (
	"fmt"
	"math/rand"

	"gorace/internal/sched"
)

// Params bounds the generated program shape.
type Params struct {
	Goroutines  int // worker goroutines (default 4)
	OpsPerG     int // operations per goroutine (default 12)
	Vars        int // shared plain variables (default 4)
	Mutexes     int // shared mutexes (default 2)
	RWMutexes   int // shared RW mutexes (default 1)
	Atomics     int // shared atomic cells (default 1)
	Channels    int // shared buffered channels (default 1)
	ChanCap     int // capacity of each channel (default 4)
	LockedRatio int // percent of accesses performed under a lock (default 50)
}

func (p Params) withDefaults() Params {
	def := Params{Goroutines: 4, OpsPerG: 12, Vars: 4, Mutexes: 2,
		RWMutexes: 1, Atomics: 1, Channels: 1, ChanCap: 4, LockedRatio: 50}
	if p.Goroutines == 0 {
		p.Goroutines = def.Goroutines
	}
	if p.OpsPerG == 0 {
		p.OpsPerG = def.OpsPerG
	}
	if p.Vars == 0 {
		p.Vars = def.Vars
	}
	if p.Mutexes == 0 {
		p.Mutexes = def.Mutexes
	}
	if p.RWMutexes == 0 {
		p.RWMutexes = def.RWMutexes
	}
	if p.Atomics == 0 {
		p.Atomics = def.Atomics
	}
	if p.Channels == 0 {
		p.Channels = def.Channels
	}
	if p.ChanCap == 0 {
		p.ChanCap = def.ChanCap
	}
	if p.LockedRatio == 0 {
		p.LockedRatio = def.LockedRatio
	}
	return p
}

// op is one generated operation in a goroutine's straight-line body.
type op struct {
	kind    opKind
	target  int // index into the relevant resource pool
	lock    int // mutex index for guarded ops, -1 for unguarded
	rwRead  bool
	isWrite bool
}

type opKind uint8

const (
	opVar opKind = iota
	opAtomic
	opChanSend
	opChanRecv
	opYield
)

// Program is a generated program plus its metadata.
type Program struct {
	Seed   int64
	Params Params
	bodies [][]op
	sends  []int // pre-balanced sends per channel (main drains them)
}

// Generate builds a random program from a seed.
func Generate(seed int64, p Params) *Program {
	p = p.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	prog := &Program{Seed: seed, Params: p, sends: make([]int, p.Channels)}
	for gi := 0; gi < p.Goroutines; gi++ {
		var body []op
		for oi := 0; oi < p.OpsPerG; oi++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4: // plain variable access
				o := op{kind: opVar, target: rng.Intn(p.Vars), lock: -1,
					isWrite: rng.Intn(2) == 0}
				if rng.Intn(100) < p.LockedRatio {
					o.lock = rng.Intn(p.Mutexes)
				}
				body = append(body, o)
			case 5: // RW-guarded variable access
				o := op{kind: opVar, target: rng.Intn(p.Vars), lock: p.Mutexes + rng.Intn(p.RWMutexes)}
				o.isWrite = rng.Intn(2) == 0
				o.rwRead = !o.isWrite // readers take RLock, writers Lock
				body = append(body, o)
			case 6: // atomic access
				body = append(body, op{kind: opAtomic, target: rng.Intn(p.Atomics),
					lock: -1, isWrite: rng.Intn(2) == 0})
			case 7: // channel send (buffered; may block on full buffer,
				// but main drains everything afterwards)
				ch := rng.Intn(p.Channels)
				prog.sends[ch]++
				body = append(body, op{kind: opChanSend, target: ch, lock: -1})
			case 8: // pure computation
				body = append(body, op{kind: opYield, lock: -1})
			case 9: // guarded read-modify-write
				body = append(body, op{kind: opVar, target: rng.Intn(p.Vars),
					lock: rng.Intn(p.Mutexes), isWrite: true})
			}
		}
		prog.bodies = append(prog.bodies, body)
	}
	return prog
}

// Main returns the runnable program body.
func (pr *Program) Main() func(*sched.G) {
	p := pr.Params
	return func(g *sched.G) {
		vars := make([]*sched.Var[int], p.Vars)
		for i := range vars {
			vars[i] = sched.NewVar[int](g, fmt.Sprintf("v%d", i))
		}
		mus := make([]*sched.Mutex, p.Mutexes)
		for i := range mus {
			mus[i] = sched.NewMutex(g, fmt.Sprintf("mu%d", i))
		}
		rws := make([]*sched.RWMutex, p.RWMutexes)
		for i := range rws {
			rws[i] = sched.NewRWMutex(g, fmt.Sprintf("rw%d", i))
		}
		atoms := make([]*sched.Atomic, p.Atomics)
		for i := range atoms {
			atoms[i] = sched.NewAtomic(g, fmt.Sprintf("at%d", i))
		}
		chans := make([]*sched.Chan[int], p.Channels)
		for i := range chans {
			// Capacity covers all sends so no producer blocks forever
			// even if main is still spawning.
			chans[i] = sched.NewChan[int](g, fmt.Sprintf("ch%d", i), pr.sends[i]+1)
		}
		wg := sched.NewWaitGroup(g, "wg")

		for gi, body := range pr.bodies {
			body := body
			wg.Add(g, 1)
			g.Go(fmt.Sprintf("w%d", gi), func(g *sched.G) {
				for _, o := range body {
					execOp(g, o, vars, mus, rws, atoms, chans)
				}
				wg.Done(g)
			})
		}
		wg.Wait(g)
		// Drain every channel so no value is stranded.
		for ci, n := range pr.sends {
			for i := 0; i < n; i++ {
				chans[ci].Recv(g)
			}
		}
	}
}

func execOp(g *sched.G, o op,
	vars []*sched.Var[int], mus []*sched.Mutex, rws []*sched.RWMutex,
	atoms []*sched.Atomic, chans []*sched.Chan[int]) {
	switch o.kind {
	case opVar:
		unlock := func() {}
		if o.lock >= 0 {
			if o.lock < len(mus) {
				mu := mus[o.lock]
				mu.Lock(g)
				unlock = func() { mu.Unlock(g) }
			} else {
				rw := rws[o.lock-len(mus)]
				if o.rwRead {
					rw.RLock(g)
					unlock = func() { rw.RUnlock(g) }
				} else {
					rw.Lock(g)
					unlock = func() { rw.Unlock(g) }
				}
			}
		}
		v := vars[o.target]
		if o.isWrite {
			v.Store(g, 1)
		} else {
			v.Load(g)
		}
		unlock()
	case opAtomic:
		if o.isWrite {
			atoms[o.target].Add(g, 1)
		} else {
			atoms[o.target].Load(g)
		}
	case opChanSend:
		chans[o.target].Send(g, 1)
	case opChanRecv:
		chans[o.target].Recv(g)
	case opYield:
		g.Yield()
	}
}
