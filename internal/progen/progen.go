// Package progen generates random modeled programs for differential
// testing: the scheduler must execute them without model failures
// under every strategy, runs must be deterministic per seed, and the
// happens-before detectors (FastTrack, Epoch, DJIT) must agree on
// verdicts within their published differences.
//
// A generated program spawns a random set of goroutines, each
// performing a random straight-line sequence of operations over a
// shared pool of variables, mutexes, RW mutexes, atomics, buffered
// channels, and a WaitGroup. Blocking hazards are constrained by
// construction: locks are released in LIFO order by the acquiring
// goroutine, channel traffic is pre-balanced (every receive has a
// matching send), and Wait runs only in the main goroutine after all
// Adds. Generated programs may still race — that is the point.
//
// Beyond the base shape family, Params can enable the taxonomy idioms
// the paper names that a plain variable/lock/channel mix cannot
// express: thread-unsafe maps hit concurrently (Maps), atomic flag
// publication with a plain-read consumer (Flags), context-cancellation
// trees with a shared cancellation reason (CtxDepth), errgroup-style
// fan-out with a shared first-error slot and Done-before-write
// stragglers (Errgroup), and pooled-object reuse through a free-list
// channel with use-after-put writers (Pools). internal/racegen mutates
// these knobs to steer generation toward shapes that discriminate
// between detectors.
//
// Programs round-trip through Spec, a JSON-serializable form, so a
// kept program can be minimized op-by-op and committed as a regression
// input (see internal/racegen/testdata).
package progen

import (
	"fmt"
	"math/rand"

	"gorace/internal/sched"
)

// Int returns a pointer to v, for the Params fields whose zero value
// is meaningful (LockedRatio, ChanCap).
func Int(v int) *int { return &v }

// Params bounds the generated program shape. Plain int fields treat 0
// as "use the default"; the pointer fields exist precisely because
// their zero is a real configuration (0% locked accesses, unbuffered
// channels), so nil means "default" and Int(0) means literal zero.
type Params struct {
	Goroutines int `json:"goroutines,omitempty"` // worker goroutines (default 4)
	OpsPerG    int `json:"opsPerG,omitempty"`    // operations per goroutine (default 12)
	Vars       int `json:"vars,omitempty"`       // shared plain variables (default 4)
	Mutexes    int `json:"mutexes,omitempty"`    // shared mutexes (default 2)
	RWMutexes  int `json:"rwMutexes,omitempty"`  // shared RW mutexes (default 1)
	Atomics    int `json:"atomics,omitempty"`    // shared atomic cells (default 1)
	Channels   int `json:"channels,omitempty"`   // shared channels (default 1)

	// ChanCap sets each channel's exact capacity. nil keeps the legacy
	// behavior: capacity covers every send and the main goroutine
	// drains afterwards. With ChanCap set (Int(0) = unbuffered, the
	// shape nil could never express), each channel gets a dedicated
	// drainer goroutine so senders always make progress.
	ChanCap *int `json:"chanCap,omitempty"`
	// LockedRatio is the percent of guarded-eligible accesses
	// performed under a lock. nil = default 50; Int(0) = fully
	// unguarded, which the old int field could not express.
	LockedRatio *int `json:"lockedRatio,omitempty"`

	// Idiom extensions; zero means the idiom is absent, so base-family
	// programs are byte-identical to pre-extension progen.
	Maps     int  `json:"maps,omitempty"`     // shared thread-unsafe maps
	MapKeys  int  `json:"mapKeys,omitempty"`  // distinct keys per map (default 3)
	Flags    int  `json:"flags,omitempty"`    // atomic publication flag + plain data pairs
	CtxDepth int  `json:"ctxDepth,omitempty"` // context-cancellation chain depth
	Errgroup bool `json:"errgroup,omitempty"` // shared first-error slot + post-Wait read
	Pools    int  `json:"pools,omitempty"`    // pooled objects behind a free-list channel
}

// resolved is Params with every default applied, as plain values.
type resolved struct {
	Params
	lockedPct int
	chanCap   int // -1 = legacy sends+1 capacity with main-drain
	mapKeys   int
}

func (p Params) withDefaults() resolved {
	def := Params{Goroutines: 4, OpsPerG: 12, Vars: 4, Mutexes: 2,
		RWMutexes: 1, Atomics: 1, Channels: 1}
	if p.Goroutines == 0 {
		p.Goroutines = def.Goroutines
	}
	if p.OpsPerG == 0 {
		p.OpsPerG = def.OpsPerG
	}
	if p.Vars == 0 {
		p.Vars = def.Vars
	}
	if p.Mutexes == 0 {
		p.Mutexes = def.Mutexes
	}
	if p.RWMutexes == 0 {
		p.RWMutexes = def.RWMutexes
	}
	if p.Atomics == 0 {
		p.Atomics = def.Atomics
	}
	if p.Channels == 0 {
		p.Channels = def.Channels
	}
	r := resolved{Params: p, lockedPct: 50, chanCap: -1, mapKeys: 3}
	if p.LockedRatio != nil {
		r.lockedPct = *p.LockedRatio
	}
	if p.ChanCap != nil {
		r.chanCap = *p.ChanCap
		if r.chanCap < 0 {
			r.chanCap = 0
		}
	}
	if p.MapKeys > 0 {
		r.mapKeys = p.MapKeys
	}
	return r
}

// hasIdioms reports whether any catalog extension is enabled; without
// them generation and execution follow the legacy path exactly.
func (r resolved) hasIdioms() bool {
	return r.Maps > 0 || r.Flags > 0 || r.CtxDepth > 0 || r.Errgroup || r.Pools > 0
}

// op is one generated operation in a goroutine's straight-line body.
type op struct {
	kind    opKind
	target  int // index into the relevant resource pool
	key     int // map key for map ops
	lock    int // mutex index for guarded ops, -1 for unguarded
	rwRead  bool
	isWrite bool
	// plain marks the racy sub-variant of an idiom op: a plain read of
	// a publication flag, an unconditional read of the cancellation
	// reason, a use-after-put write to a pooled object.
	plain bool
}

type opKind uint8

const (
	opVar opKind = iota
	opAtomic
	opChanSend
	opChanRecv
	opYield
	opMapGet
	opMapPut
	opMapDel
	opMapRange
	opFlagPub  // write data plainly, then atomically store the flag
	opFlagRead // load the flag (plainly when plain), read data if set
	opCtxPoll  // poll a context level; read the reason on done (or always, when plain)
	opPoolUse  // take an object from the pool, write it, put it back (write again when plain)
	opErrSet   // write the shared first-error slot
)

// Program is a generated program plus its metadata.
type Program struct {
	Seed       int64
	Params     Params
	bodies     [][]op
	stragglers []bool // per goroutine: write err after wg.Done (Errgroup)
	sends      []int  // channel sends per channel, computed from bodies
}

// computeSends rebuilds the per-channel send balance from the bodies.
func (pr *Program) computeSends() {
	r := pr.Params.withDefaults()
	pr.sends = make([]int, r.Channels)
	for _, body := range pr.bodies {
		for _, o := range body {
			if o.kind == opChanSend {
				pr.sends[o.target]++
			}
		}
	}
}

// Generate builds a random program from a seed.
func Generate(seed int64, p Params) *Program {
	r := p.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	prog := &Program{Seed: seed, Params: p}

	// The op menu: the first ten entries reproduce the legacy
	// distribution exactly (same rng consumption, same shapes), so
	// idiom-free programs are unchanged across the catalog extension.
	type gen func() op
	menu := []gen{
		// 0–4: plain variable access.
		func() op { return varOp(rng, r) },
		func() op { return varOp(rng, r) },
		func() op { return varOp(rng, r) },
		func() op { return varOp(rng, r) },
		func() op { return varOp(rng, r) },
		// 5: RW-guarded variable access.
		func() op {
			o := op{kind: opVar, target: rng.Intn(r.Vars), lock: r.Mutexes + rng.Intn(r.RWMutexes)}
			o.isWrite = rng.Intn(2) == 0
			o.rwRead = !o.isWrite // readers take RLock, writers Lock
			return o
		},
		// 6: atomic access.
		func() op {
			return op{kind: opAtomic, target: rng.Intn(r.Atomics), lock: -1, isWrite: rng.Intn(2) == 0}
		},
		// 7: channel send (drained by main or a drainer goroutine).
		func() op { return op{kind: opChanSend, target: rng.Intn(r.Channels), lock: -1} },
		// 8: pure computation.
		func() op { return op{kind: opYield, lock: -1} },
		// 9: guarded read-modify-write.
		func() op {
			return op{kind: opVar, target: rng.Intn(r.Vars), lock: rng.Intn(r.Mutexes), isWrite: true}
		},
	}
	if r.Maps > 0 {
		mapOp := func(kind opKind, write bool) op {
			o := op{kind: kind, target: rng.Intn(r.Maps), key: rng.Intn(r.mapKeys), lock: -1, isWrite: write}
			if rng.Intn(100) < r.lockedPct {
				o.lock = rng.Intn(r.Mutexes)
			}
			return o
		}
		menu = append(menu,
			func() op { return mapOp(opMapGet, false) },
			func() op { return mapOp(opMapPut, true) },
			func() op {
				switch rng.Intn(3) {
				case 0:
					return mapOp(opMapDel, true)
				default:
					return mapOp(opMapRange, false)
				}
			},
		)
	}
	if r.Flags > 0 {
		menu = append(menu,
			func() op { return op{kind: opFlagPub, target: rng.Intn(r.Flags), lock: -1} },
			func() op {
				// The plain (racy) consumer skips the atomic load — the
				// §4.9.2 partial-atomics half — at the unguarded rate.
				return op{kind: opFlagRead, target: rng.Intn(r.Flags), lock: -1,
					plain: rng.Intn(100) >= r.lockedPct}
			},
		)
	}
	if r.CtxDepth > 0 {
		menu = append(menu, func() op {
			return op{kind: opCtxPoll, target: rng.Intn(r.CtxDepth), lock: -1,
				plain: rng.Intn(100) >= r.lockedPct}
		})
	}
	if r.Pools > 0 {
		menu = append(menu, func() op {
			return op{kind: opPoolUse, target: rng.Intn(r.Pools), lock: -1,
				plain: rng.Intn(100) >= r.lockedPct}
		})
	}
	if r.Errgroup {
		menu = append(menu, func() op {
			o := op{kind: opErrSet, lock: -1, isWrite: true}
			if rng.Intn(100) < r.lockedPct {
				o.lock = rng.Intn(r.Mutexes)
			}
			return o
		})
	}

	for gi := 0; gi < r.Goroutines; gi++ {
		var body []op
		for oi := 0; oi < r.OpsPerG; oi++ {
			body = append(body, menu[rng.Intn(len(menu))]())
		}
		prog.bodies = append(prog.bodies, body)
	}
	if r.Errgroup {
		prog.stragglers = make([]bool, r.Goroutines)
		for gi := range prog.stragglers {
			// A straggler calls wg.Done before its final err write —
			// the Done-before-publish statement-order bug that makes
			// errgroup fan-out race with the post-Wait reader.
			prog.stragglers[gi] = rng.Intn(3) == 0
		}
	}
	prog.computeSends()
	return prog
}

// varOp draws the legacy plain-variable access (menu cases 0–4).
func varOp(rng *rand.Rand, r resolved) op {
	o := op{kind: opVar, target: rng.Intn(r.Vars), lock: -1, isWrite: rng.Intn(2) == 0}
	if rng.Intn(100) < r.lockedPct {
		o.lock = rng.Intn(r.Mutexes)
	}
	return o
}

// resources is the shared state a program body executes over.
type resources struct {
	vars   []*sched.Var[int]
	mus    []*sched.Mutex
	rws    []*sched.RWMutex
	atoms  []*sched.Atomic
	chans  []*sched.Chan[int]
	maps   []*sched.Map[int, int]
	fdata  []*sched.Var[int] // published payloads, one per flag
	fctl   []*sched.Atomic   // publication flags
	ctxs   []*sched.Context  // cancellation chain, root first
	reason *sched.Var[int]   // cancellation reason, written before cancel
	pool   *sched.Chan[int]  // free list of pooled object indices
	pobjs  []*sched.Var[int] // pooled objects' state
	errV   *sched.Var[int]   // errgroup first-error slot
}

// Main returns the runnable program body.
func (pr *Program) Main() func(*sched.G) {
	r := pr.Params.withDefaults()
	return func(g *sched.G) {
		res := &resources{}
		res.vars = make([]*sched.Var[int], r.Vars)
		for i := range res.vars {
			res.vars[i] = sched.NewVar[int](g, fmt.Sprintf("v%d", i))
		}
		res.mus = make([]*sched.Mutex, r.Mutexes)
		for i := range res.mus {
			res.mus[i] = sched.NewMutex(g, fmt.Sprintf("mu%d", i))
		}
		res.rws = make([]*sched.RWMutex, r.RWMutexes)
		for i := range res.rws {
			res.rws[i] = sched.NewRWMutex(g, fmt.Sprintf("rw%d", i))
		}
		res.atoms = make([]*sched.Atomic, r.Atomics)
		for i := range res.atoms {
			res.atoms[i] = sched.NewAtomic(g, fmt.Sprintf("at%d", i))
		}
		res.chans = make([]*sched.Chan[int], r.Channels)
		for i := range res.chans {
			cap := pr.sends[i] + 1
			if r.chanCap >= 0 {
				cap = r.chanCap
			}
			// Legacy capacity covers all sends so no producer blocks
			// forever even if main is still spawning.
			res.chans[i] = sched.NewChan[int](g, fmt.Sprintf("ch%d", i), cap)
		}
		for i := 0; i < r.Maps; i++ {
			res.maps = append(res.maps, sched.NewMap[int, int](g, fmt.Sprintf("m%d", i)))
		}
		for i := 0; i < r.Flags; i++ {
			res.fdata = append(res.fdata, sched.NewVar[int](g, fmt.Sprintf("payload%d", i)))
			res.fctl = append(res.fctl, sched.NewAtomic(g, fmt.Sprintf("ready%d", i)))
		}
		if r.CtxDepth > 0 {
			res.reason = sched.NewVar[int](g, "ctx.reason")
			ctx := sched.Background(g)
			cancels := make([]func(*sched.G), 0, r.CtxDepth)
			for i := 0; i < r.CtxDepth; i++ {
				var cancel func(*sched.G)
				ctx, cancel = ctx.WithCancel(g, fmt.Sprintf("lvl%d", i))
				res.ctxs = append(res.ctxs, ctx)
				cancels = append(cancels, cancel)
			}
			// The canceller publishes the reason, then cancels the
			// whole tree root-to-leaf: consumers that wait for Done
			// read the reason ordered; plain pollers race with it.
			g.Go("canceller", func(g *sched.G) {
				for i := 0; i < 3; i++ {
					g.Yield()
				}
				res.reason.Store(g, 1)
				for _, cancel := range cancels {
					cancel(g)
				}
			})
		}
		if r.Pools > 0 {
			res.pool = sched.NewChan[int](g, "pool", r.Pools)
			res.pobjs = make([]*sched.Var[int], r.Pools)
			for i := range res.pobjs {
				res.pobjs[i] = sched.NewVar[int](g, fmt.Sprintf("api.pool.obj%d", i))
				res.pool.Send(g, i)
			}
		}
		if r.Errgroup {
			res.errV = sched.NewVar[int](g, "err")
		}
		wg := sched.NewWaitGroup(g, "wg")

		// With an explicit channel capacity, senders can block on a
		// full (or unbuffered) channel; a dedicated drainer per
		// channel receives exactly the balanced send count.
		if r.chanCap >= 0 {
			for ci, n := range pr.sends {
				if n == 0 {
					continue
				}
				ci, n := ci, n
				wg.Add(g, 1)
				g.Go(fmt.Sprintf("drain%d", ci), func(g *sched.G) {
					for i := 0; i < n; i++ {
						res.chans[ci].Recv(g)
					}
					wg.Done(g)
				})
			}
		}

		for gi, body := range pr.bodies {
			body := body
			straggler := len(pr.stragglers) > gi && pr.stragglers[gi]
			wg.Add(g, 1)
			g.Go(fmt.Sprintf("w%d", gi), func(g *sched.G) {
				for _, o := range body {
					execOp(g, o, res)
				}
				wg.Done(g)
				if straggler {
					// Done-before-publish: the write the group
					// synchronization was supposed to order.
					res.errV.Store(g, 1)
				}
			})
		}
		wg.Wait(g)
		if r.Errgroup {
			// The errgroup pattern: the waiter collects the first
			// error after Wait — racing with any straggler's write.
			res.errV.Load(g)
		}
		if r.chanCap < 0 {
			// Drain every channel so no value is stranded.
			for ci, n := range pr.sends {
				for i := 0; i < n; i++ {
					res.chans[ci].Recv(g)
				}
			}
		}
	}
}

func execOp(g *sched.G, o op, res *resources) {
	unlock := func() {}
	if o.lock >= 0 && o.kind != opVar {
		mu := res.mus[o.lock]
		mu.Lock(g)
		unlock = func() { mu.Unlock(g) }
	}
	switch o.kind {
	case opVar:
		if o.lock >= 0 {
			if o.lock < len(res.mus) {
				mu := res.mus[o.lock]
				mu.Lock(g)
				unlock = func() { mu.Unlock(g) }
			} else {
				rw := res.rws[o.lock-len(res.mus)]
				if o.rwRead {
					rw.RLock(g)
					unlock = func() { rw.RUnlock(g) }
				} else {
					rw.Lock(g)
					unlock = func() { rw.Unlock(g) }
				}
			}
		}
		v := res.vars[o.target]
		if o.isWrite {
			v.Store(g, 1)
		} else {
			v.Load(g)
		}
	case opAtomic:
		if o.isWrite {
			res.atoms[o.target].Add(g, 1)
		} else {
			res.atoms[o.target].Load(g)
		}
	case opChanSend:
		res.chans[o.target].Send(g, 1)
	case opChanRecv:
		res.chans[o.target].Recv(g)
	case opYield:
		g.Yield()
	case opMapGet:
		res.maps[o.target].Get(g, o.key)
	case opMapPut:
		res.maps[o.target].Put(g, o.key, 1)
	case opMapDel:
		res.maps[o.target].Delete(g, o.key)
	case opMapRange:
		res.maps[o.target].Range(g, func(int, int) bool { return true })
	case opFlagPub:
		// Publish: write the payload plainly, then release the flag.
		res.fdata[o.target].Store(g, 1)
		res.fctl[o.target].Store(g, 1)
	case opFlagRead:
		if o.plain {
			// Partial atomics: a plain read of the flag carries no
			// acquire edge, racing with the atomic store — and the
			// payload read it gates is unordered too.
			if res.fctl[o.target].PlainLoad(g) != 0 {
				res.fdata[o.target].Load(g)
			}
		} else if res.fctl[o.target].Load(g) != 0 {
			res.fdata[o.target].Load(g)
		}
	case opCtxPoll:
		ctx := res.ctxs[o.target]
		done := false
		g.Select(
			ctx.OnDone(func() { done = true }),
			sched.Default(nil),
		)
		if done {
			res.reason.Load(g) // ordered by the Done edge
		} else if o.plain {
			res.reason.Load(g) // unordered peek at the reason
		}
	case opPoolUse:
		idx, _ := res.pool.Recv(g)
		res.pobjs[idx].Store(g, 1)
		res.pool.Send(g, idx)
		if o.plain {
			// Use-after-put: the object now belongs to the next
			// taker, but this goroutine keeps writing it.
			res.pobjs[idx].Store(g, 2)
		}
	case opErrSet:
		res.errV.Store(g, 1)
	}
	unlock()
}
