package progen_test

// Native fuzzing over the generator's full parameter space: any
// (seed, raw bytes) input decodes to a bounded Params, and the
// resulting program must execute cleanly and deterministically under
// every scheduling strategy. The committed racegen keeper suite seeds
// the corpus — those shapes are exactly the discriminating corners the
// campaign loop found, so the fuzzer starts from the hard cases.
//
// The file lives in package progen_test (not progen) so it can import
// internal/racegen for the keeper corpus without a cycle.

import (
	"testing"

	"gorace/internal/progen"
	"gorace/internal/racegen"
	"gorace/internal/sched"
	"gorace/internal/trace"
)

// fuzz byte layout: one knob per position, clamped by paramsFromBytes.
const (
	fzGoroutines = iota
	fzOpsPerG
	fzVars
	fzMutexes
	fzRWMutexes
	fzAtomics
	fzChannels
	fzMaps
	fzMapKeys
	fzFlags
	fzCtxDepth
	fzPools
	fzErrgroup
	fzLockedRatio // 255 = nil (default), else %101
	fzChanCap     // 255 = nil (legacy), else %4
	fzLen
)

// paramsFromBytes is the bounded decoder: every byte maps onto one
// Params knob modulo a sane range, so arbitrary fuzz input is always a
// valid, small program shape. Values already inside the range decode
// to themselves, which makes paramsToBytes a true inverse for the
// keeper corpus.
func paramsFromBytes(raw []byte) progen.Params {
	knob := func(i, max int) int {
		if i >= len(raw) {
			return 0
		}
		return int(raw[i]) % (max + 1)
	}
	p := progen.Params{
		Goroutines: knob(fzGoroutines, 6),
		OpsPerG:    knob(fzOpsPerG, 16),
		Vars:       knob(fzVars, 6),
		Mutexes:    knob(fzMutexes, 4),
		RWMutexes:  knob(fzRWMutexes, 3),
		Atomics:    knob(fzAtomics, 3),
		Channels:   knob(fzChannels, 3),
		Maps:       knob(fzMaps, 3),
		MapKeys:    knob(fzMapKeys, 4),
		Flags:      knob(fzFlags, 3),
		CtxDepth:   knob(fzCtxDepth, 3),
		Pools:      knob(fzPools, 2),
		Errgroup:   knob(fzErrgroup, 1) == 1,
	}
	if fzLockedRatio < len(raw) && raw[fzLockedRatio] != 255 {
		p.LockedRatio = progen.Int(int(raw[fzLockedRatio]) % 101)
	}
	if fzChanCap < len(raw) && raw[fzChanCap] != 255 {
		p.ChanCap = progen.Int(int(raw[fzChanCap]) % 4)
	}
	return p
}

// paramsToBytes encodes Params into the fuzz layout (clamping to each
// knob's range), used to seed the corpus from keeper specs.
func paramsToBytes(p progen.Params) []byte {
	clamp := func(v, max int) byte {
		if v < 0 {
			return 0
		}
		if v > max {
			return byte(max)
		}
		return byte(v)
	}
	raw := make([]byte, fzLen)
	raw[fzGoroutines] = clamp(p.Goroutines, 6)
	raw[fzOpsPerG] = clamp(p.OpsPerG, 16)
	raw[fzVars] = clamp(p.Vars, 6)
	raw[fzMutexes] = clamp(p.Mutexes, 4)
	raw[fzRWMutexes] = clamp(p.RWMutexes, 3)
	raw[fzAtomics] = clamp(p.Atomics, 3)
	raw[fzChannels] = clamp(p.Channels, 3)
	raw[fzMaps] = clamp(p.Maps, 3)
	raw[fzMapKeys] = clamp(p.MapKeys, 4)
	raw[fzFlags] = clamp(p.Flags, 3)
	raw[fzCtxDepth] = clamp(p.CtxDepth, 3)
	raw[fzPools] = clamp(p.Pools, 2)
	if p.Errgroup {
		raw[fzErrgroup] = 1
	}
	raw[fzLockedRatio] = 255
	if p.LockedRatio != nil {
		raw[fzLockedRatio] = clamp(*p.LockedRatio, 100)
	}
	raw[fzChanCap] = 255
	if p.ChanCap != nil {
		raw[fzChanCap] = clamp(*p.ChanCap, 3)
	}
	return raw
}

func FuzzProgen(f *testing.F) {
	// Hand-picked corners: legacy defaults, minimal shape, every idiom.
	f.Add(int64(0), []byte{})
	f.Add(int64(1), []byte{1, 1, 1, 0, 0, 0, 0})
	f.Add(int64(2), paramsToBytes(progen.Params{Maps: 2, MapKeys: 2}))
	f.Add(int64(3), paramsToBytes(progen.Params{Flags: 2, LockedRatio: progen.Int(0)}))
	f.Add(int64(4), paramsToBytes(progen.Params{CtxDepth: 2}))
	f.Add(int64(5), paramsToBytes(progen.Params{Errgroup: true}))
	f.Add(int64(6), paramsToBytes(progen.Params{Pools: 1, ChanCap: progen.Int(0)}))
	// The committed discriminating suite.
	suite, err := racegen.Suite()
	if err != nil {
		f.Fatal(err)
	}
	for _, k := range suite {
		f.Add(k.Spec.Seed, paramsToBytes(k.Spec.Params))
	}

	strategies := sched.StrategyNames()
	f.Fuzz(func(t *testing.T, seed int64, raw []byte) {
		p := paramsFromBytes(raw)
		prog := progen.Generate(seed, p)
		for _, name := range strategies {
			run := func() ([]trace.Event, *sched.Result) {
				strat, err := sched.NewStrategy(name)
				if err != nil {
					t.Fatal(err)
				}
				rec := &trace.Recorder{}
				res := sched.Run(prog.Main(), sched.Options{
					Strategy: strat, Seed: seed, MaxSteps: 1 << 17,
					Listeners: []trace.Listener{rec},
				})
				return rec.Events, res
			}
			ev, res := run()
			if len(res.Failures) > 0 {
				t.Fatalf("%s: model failures: %v", name, res.Failures)
			}
			if res.BudgetExceeded {
				t.Fatalf("%s: step budget exceeded", name)
			}
			if res.Deadlocked() {
				t.Fatalf("%s: leaked goroutines: %+v", name, res.Leaked)
			}
			ev2, _ := run()
			if len(ev) != len(ev2) {
				t.Fatalf("%s: nondeterministic trace length: %d vs %d", name, len(ev), len(ev2))
			}
			for i := range ev {
				if ev[i].String() != ev2[i].String() {
					t.Fatalf("%s: traces diverge at event %d:\n%s\n%s",
						name, i, ev[i], ev2[i])
				}
			}
		}
	})
}

// TestParamsBytesRoundTrip pins the encoder/decoder inverse property
// on the keeper corpus: what we f.Add must be what the fuzz body runs.
func TestParamsBytesRoundTrip(t *testing.T) {
	suite, err := racegen.Suite()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range suite {
		got := paramsFromBytes(paramsToBytes(k.Spec.Params))
		want := k.Spec.Params
		if got.Goroutines != want.Goroutines || got.OpsPerG != want.OpsPerG ||
			got.Maps != want.Maps || got.Flags != want.Flags ||
			got.CtxDepth != want.CtxDepth || got.Errgroup != want.Errgroup ||
			got.Pools != want.Pools {
			t.Fatalf("keeper %s: params did not round-trip:\ngot  %+v\nwant %+v",
				k.ID, got, want)
		}
		if (got.LockedRatio == nil) != (want.LockedRatio == nil) {
			t.Fatalf("keeper %s: LockedRatio presence did not round-trip", k.ID)
		}
		if got.LockedRatio != nil && *got.LockedRatio != *want.LockedRatio {
			t.Fatalf("keeper %s: LockedRatio %d != %d", k.ID, *got.LockedRatio, *want.LockedRatio)
		}
	}
}
