package progen

import (
	"testing"

	"gorace/internal/sched"
	"gorace/internal/trace"
)

// The detector differential tests over generated programs
// (FastTrack/Epoch/DJIT verdict agreement, online-vs-offline replay,
// fully-locked programs) live in internal/detector/differential_test.go,
// next to the detectors they exercise.

// TestGeneratedProgramsExecuteCleanly is the model-robustness fuzz: a
// battery of random programs must run to quiescence under every
// strategy with no model failures, no leaks, and no budget blowups.
func TestGeneratedProgramsExecuteCleanly(t *testing.T) {
	strategies := []func() sched.Strategy{
		func() sched.Strategy { return sched.NewRoundRobin() },
		func() sched.Strategy { return sched.NewRandom() },
		func() sched.Strategy { return sched.NewPCT(3, 4000) },
		func() sched.Strategy { return sched.NewDelay(0.1, 6) },
	}
	for seed := int64(0); seed < 25; seed++ {
		prog := Generate(seed, Params{})
		for si, mk := range strategies {
			res := sched.Run(prog.Main(), sched.Options{
				Strategy: mk(), Seed: seed * 31, MaxSteps: 1 << 18,
			})
			if len(res.Failures) > 0 {
				t.Fatalf("seed %d strategy %d: failures %v", seed, si, res.Failures)
			}
			if res.Deadlocked() {
				t.Fatalf("seed %d strategy %d: leaked %+v", seed, si, res.Leaked)
			}
			if res.BudgetExceeded {
				t.Fatalf("seed %d strategy %d: budget exceeded", seed, si)
			}
		}
	}
}

// TestDeterministicExecution: same program + same seed + same strategy
// must give identical traces.
func TestDeterministicExecution(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		prog := Generate(seed, Params{})
		sig := func() []string {
			rec := &trace.Recorder{}
			sched.Run(prog.Main(), sched.Options{
				Strategy: sched.NewRandom(), Seed: 7, MaxSteps: 1 << 18,
				Listeners: []trace.Listener{rec},
			})
			out := make([]string, len(rec.Events))
			for i, ev := range rec.Events {
				out[i] = ev.String()
			}
			return out
		}
		a, b := sig(), sig()
		if len(a) != len(b) {
			t.Fatalf("seed %d: trace lengths differ", seed)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: traces diverge at event %d", seed, i)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(5, Params{})
	b := Generate(5, Params{})
	if len(a.bodies) != len(b.bodies) {
		t.Fatal("different shapes from one seed")
	}
	for i := range a.bodies {
		if len(a.bodies[i]) != len(b.bodies[i]) {
			t.Fatal("different body lengths from one seed")
		}
		for j := range a.bodies[i] {
			if a.bodies[i][j] != b.bodies[i][j] {
				t.Fatal("different ops from one seed")
			}
		}
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.Goroutines == 0 || p.Vars == 0 || p.ChanCap == 0 {
		t.Fatalf("defaults not applied: %+v", p)
	}
}
