package progen

import (
	"testing"

	"gorace/internal/detector"
	"gorace/internal/sched"
	"gorace/internal/trace"
)

// TestGeneratedProgramsExecuteCleanly is the model-robustness fuzz: a
// battery of random programs must run to quiescence under every
// strategy with no model failures, no leaks, and no budget blowups.
func TestGeneratedProgramsExecuteCleanly(t *testing.T) {
	strategies := []func() sched.Strategy{
		func() sched.Strategy { return sched.NewRoundRobin() },
		func() sched.Strategy { return sched.NewRandom() },
		func() sched.Strategy { return sched.NewPCT(3, 4000) },
		func() sched.Strategy { return sched.NewDelay(0.1, 6) },
	}
	for seed := int64(0); seed < 25; seed++ {
		prog := Generate(seed, Params{})
		for si, mk := range strategies {
			res := sched.Run(prog.Main(), sched.Options{
				Strategy: mk(), Seed: seed * 31, MaxSteps: 1 << 18,
			})
			if len(res.Failures) > 0 {
				t.Fatalf("seed %d strategy %d: failures %v", seed, si, res.Failures)
			}
			if res.Deadlocked() {
				t.Fatalf("seed %d strategy %d: leaked %+v", seed, si, res.Leaked)
			}
			if res.BudgetExceeded {
				t.Fatalf("seed %d strategy %d: budget exceeded", seed, si)
			}
		}
	}
}

// TestDifferentialDetectorVerdicts cross-validates the three HB
// detectors over random programs: Epoch racy-addresses must equal
// FastTrack's, and DJIT's must be a superset (it keeps full
// histories, so it may flag pairs FastTrack forgets after a cell's
// first race).
func TestDifferentialDetectorVerdicts(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		prog := Generate(seed, Params{})
		ft := detector.NewFastTrack()
		ft.MaxReportsPerCell = 1 << 30
		ep := detector.NewEpoch()
		dj := detector.NewDJIT()
		sched.Run(prog.Main(), sched.Options{
			Strategy: sched.NewRandom(), Seed: seed, MaxSteps: 1 << 18,
			Listeners: []trace.Listener{ft, ep, dj},
		})
		ftAddrs := make(map[trace.Addr]bool)
		for _, r := range ft.Races() {
			ftAddrs[r.Second.Addr] = true
		}
		for a := range ftAddrs {
			if !ep.RacyAddrs()[a] {
				t.Fatalf("seed %d: addr %d flagged by fasttrack, missed by epoch", seed, a)
			}
		}
		for a := range ep.RacyAddrs() {
			if !ftAddrs[a] {
				t.Fatalf("seed %d: addr %d flagged by epoch, missed by fasttrack", seed, a)
			}
			if !dj.RacyAddrs()[a] {
				t.Fatalf("seed %d: addr %d flagged by epoch, missed by djit", seed, a)
			}
		}
	}
}

// TestDeterministicExecution: same program + same seed + same strategy
// must give identical traces.
func TestDeterministicExecution(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		prog := Generate(seed, Params{})
		sig := func() []string {
			rec := &trace.Recorder{}
			sched.Run(prog.Main(), sched.Options{
				Strategy: sched.NewRandom(), Seed: 7, MaxSteps: 1 << 18,
				Listeners: []trace.Listener{rec},
			})
			out := make([]string, len(rec.Events))
			for i, ev := range rec.Events {
				out[i] = ev.String()
			}
			return out
		}
		a, b := sig(), sig()
		if len(a) != len(b) {
			t.Fatalf("seed %d: trace lengths differ", seed)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: traces diverge at event %d", seed, i)
			}
		}
	}
}

// TestOfflineEqualsOnline: post-facto replay of a recorded random
// program's trace must yield the same reports as online detection.
func TestOfflineEqualsOnline(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		prog := Generate(seed, Params{})
		online := detector.NewFastTrack()
		rec := &trace.Recorder{}
		sched.Run(prog.Main(), sched.Options{
			Strategy: sched.NewRandom(), Seed: seed, MaxSteps: 1 << 18,
			Listeners: []trace.Listener{online, rec},
		})
		offline := detector.NewFastTrack()
		rec.Replay(offline)
		if online.RaceCount() != offline.RaceCount() {
			t.Fatalf("seed %d: online %d vs offline %d races",
				seed, online.RaceCount(), offline.RaceCount())
		}
	}
}

// TestFullyLockedProgramsAreRaceFree: with LockedRatio 100 and no
// RW/atomic mix, every variable access is mutex-guarded... but
// distinct accesses may use distinct mutexes, so races remain
// possible. Constrain to one mutex: then the program must be clean.
func TestFullyLockedProgramsAreRaceFree(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		prog := Generate(seed, Params{Mutexes: 1, RWMutexes: 1, LockedRatio: 100})
		// RW-guarded ops pick the single RW mutex; plain guarded ops
		// the single mutex. Races across the two lock domains are
		// still possible, so restrict the check to variables only
		// ever touched under the plain mutex.
		ft := detector.NewFastTrack()
		sched.Run(prog.Main(), sched.Options{
			Strategy: sched.NewRandom(), Seed: seed, MaxSteps: 1 << 18,
			Listeners: []trace.Listener{ft},
		})
		for _, r := range ft.Races() {
			bothLocked := len(r.First.Locks) > 0 && len(r.Second.Locks) > 0
			sameLock := bothLocked && r.First.Locks[0] == r.Second.Locks[0]
			if sameLock {
				t.Fatalf("seed %d: race between two sections of the same lock:\n%s", seed, r)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(5, Params{})
	b := Generate(5, Params{})
	if len(a.bodies) != len(b.bodies) {
		t.Fatal("different shapes from one seed")
	}
	for i := range a.bodies {
		if len(a.bodies[i]) != len(b.bodies[i]) {
			t.Fatal("different body lengths from one seed")
		}
		for j := range a.bodies[i] {
			if a.bodies[i][j] != b.bodies[i][j] {
				t.Fatal("different ops from one seed")
			}
		}
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.Goroutines == 0 || p.Vars == 0 || p.ChanCap == 0 {
		t.Fatalf("defaults not applied: %+v", p)
	}
}
