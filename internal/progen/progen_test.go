package progen

import (
	"encoding/json"
	"testing"

	"gorace/internal/sched"
	"gorace/internal/trace"
)

// The detector differential tests over generated programs
// (FastTrack/Epoch/DJIT verdict agreement, online-vs-offline replay,
// fully-locked programs) live in internal/detector/differential_test.go,
// next to the detectors they exercise.

// TestGeneratedProgramsExecuteCleanly is the model-robustness fuzz: a
// battery of random programs must run to quiescence under every
// strategy with no model failures, no leaks, and no budget blowups.
func TestGeneratedProgramsExecuteCleanly(t *testing.T) {
	strategies := []func() sched.Strategy{
		func() sched.Strategy { return sched.NewRoundRobin() },
		func() sched.Strategy { return sched.NewRandom() },
		func() sched.Strategy { return sched.NewPCT(3, 4000) },
		func() sched.Strategy { return sched.NewDelay(0.1, 6) },
	}
	for seed := int64(0); seed < 25; seed++ {
		prog := Generate(seed, Params{})
		for si, mk := range strategies {
			res := sched.Run(prog.Main(), sched.Options{
				Strategy: mk(), Seed: seed * 31, MaxSteps: 1 << 18,
			})
			if len(res.Failures) > 0 {
				t.Fatalf("seed %d strategy %d: failures %v", seed, si, res.Failures)
			}
			if res.Deadlocked() {
				t.Fatalf("seed %d strategy %d: leaked %+v", seed, si, res.Leaked)
			}
			if res.BudgetExceeded {
				t.Fatalf("seed %d strategy %d: budget exceeded", seed, si)
			}
		}
	}
}

// TestDeterministicExecution: same program + same seed + same strategy
// must give identical traces.
func TestDeterministicExecution(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		prog := Generate(seed, Params{})
		sig := func() []string {
			rec := &trace.Recorder{}
			sched.Run(prog.Main(), sched.Options{
				Strategy: sched.NewRandom(), Seed: 7, MaxSteps: 1 << 18,
				Listeners: []trace.Listener{rec},
			})
			out := make([]string, len(rec.Events))
			for i, ev := range rec.Events {
				out[i] = ev.String()
			}
			return out
		}
		a, b := sig(), sig()
		if len(a) != len(b) {
			t.Fatalf("seed %d: trace lengths differ", seed)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: traces diverge at event %d", seed, i)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(5, Params{})
	b := Generate(5, Params{})
	if len(a.bodies) != len(b.bodies) {
		t.Fatal("different shapes from one seed")
	}
	for i := range a.bodies {
		if len(a.bodies[i]) != len(b.bodies[i]) {
			t.Fatal("different body lengths from one seed")
		}
		for j := range a.bodies[i] {
			if a.bodies[i][j] != b.bodies[i][j] {
				t.Fatal("different ops from one seed")
			}
		}
	}
}

func TestParamsDefaults(t *testing.T) {
	r := Params{}.withDefaults()
	if r.Goroutines == 0 || r.Vars == 0 {
		t.Fatalf("defaults not applied: %+v", r)
	}
	if r.lockedPct != 50 {
		t.Fatalf("nil LockedRatio should default to 50, got %d", r.lockedPct)
	}
	if r.chanCap != -1 {
		t.Fatalf("nil ChanCap should mean legacy capacity, got %d", r.chanCap)
	}
}

// TestZeroValueParamsExpressible pins the fix for the zero-value
// ambiguity: Int(0) must mean literal zero, not "use default".
func TestZeroValueParamsExpressible(t *testing.T) {
	r := Params{LockedRatio: Int(0), ChanCap: Int(0)}.withDefaults()
	if r.lockedPct != 0 {
		t.Fatalf("Int(0) LockedRatio resolved to %d", r.lockedPct)
	}
	if r.chanCap != 0 {
		t.Fatalf("Int(0) ChanCap resolved to %d", r.chanCap)
	}

	// 0%-locked: the ratio-governed accesses (menu cases 0–4, which
	// are the only source of mutex-guarded reads) must never take a
	// lock. The always-guarded RMW case still emits guarded writes.
	prog := Generate(3, Params{LockedRatio: Int(0)})
	for _, body := range prog.bodies {
		for _, o := range body {
			if o.kind == opVar && !o.isWrite && o.lock >= 0 && o.lock < prog.Params.withDefaults().Mutexes {
				t.Fatalf("0%%-locked program generated a mutex-guarded read: %+v", o)
			}
		}
	}

	// Unbuffered channels: the shape the old int field could never
	// express must still execute cleanly (drainer goroutines pair
	// every send).
	for seed := int64(0); seed < 10; seed++ {
		prog := Generate(seed, Params{ChanCap: Int(0)})
		res := sched.Run(prog.Main(), sched.Options{
			Strategy: sched.NewRandom(), Seed: seed, MaxSteps: 1 << 18,
		})
		if len(res.Failures) > 0 || res.Deadlocked() || res.BudgetExceeded {
			t.Fatalf("seed %d unbuffered: failures=%v leaked=%v budget=%v",
				seed, res.Failures, res.Leaked, res.BudgetExceeded)
		}
	}
}

// TestLegacyShapesUnchanged pins that idiom-free generation is
// byte-identical to pre-extension progen: Params{} and an explicit
// Int(50) ratio must produce the same trace as each other and the
// same op stream as before the catalog grew.
func TestLegacyShapesUnchanged(t *testing.T) {
	sig := func(p Params) []string {
		prog := Generate(11, p)
		rec := &trace.Recorder{}
		sched.Run(prog.Main(), sched.Options{
			Strategy: sched.NewRoundRobin(), Seed: 1, MaxSteps: 1 << 18,
			Listeners: []trace.Listener{rec},
		})
		out := make([]string, len(rec.Events))
		for i, ev := range rec.Events {
			out[i] = ev.String()
		}
		return out
	}
	a, b := sig(Params{}), sig(Params{LockedRatio: Int(50)})
	if len(a) != len(b) {
		t.Fatalf("explicit-default trace length differs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("explicit-default trace diverges at event %d: %q vs %q", i, a[i], b[i])
		}
	}
}

// TestIdiomProgramsExecuteCleanly runs the extended catalog under
// every strategy: maps, flag publication, context trees, errgroup
// fan-out, and pooled reuse may race, but must never fail the model,
// leak, or blow the step budget.
func TestIdiomProgramsExecuteCleanly(t *testing.T) {
	idioms := []Params{
		{Maps: 2, MapKeys: 3},
		{Flags: 2},
		{CtxDepth: 3},
		{Errgroup: true},
		{Pools: 2},
		{Maps: 1, Flags: 1, CtxDepth: 2, Errgroup: true, Pools: 1, ChanCap: Int(1)},
	}
	strategies := []func() sched.Strategy{
		func() sched.Strategy { return sched.NewRoundRobin() },
		func() sched.Strategy { return sched.NewRandom() },
		func() sched.Strategy { return sched.NewPCT(3, 4000) },
		func() sched.Strategy { return sched.NewDelay(0.1, 6) },
	}
	for pi, p := range idioms {
		for seed := int64(0); seed < 8; seed++ {
			prog := Generate(seed, p)
			for si, mk := range strategies {
				res := sched.Run(prog.Main(), sched.Options{
					Strategy: mk(), Seed: seed * 13, MaxSteps: 1 << 18,
				})
				if len(res.Failures) > 0 {
					t.Fatalf("idiom %d seed %d strategy %d: failures %v", pi, seed, si, res.Failures)
				}
				if res.Deadlocked() {
					t.Fatalf("idiom %d seed %d strategy %d: leaked %+v", pi, seed, si, res.Leaked)
				}
				if res.BudgetExceeded {
					t.Fatalf("idiom %d seed %d strategy %d: budget exceeded", pi, seed, si)
				}
			}
		}
	}
}

// TestSpecRoundTrip: Program → Spec → JSON → Spec → Program must
// reproduce the identical op stream and an identical trace.
func TestSpecRoundTrip(t *testing.T) {
	p := Params{Maps: 1, Flags: 1, CtxDepth: 2, Errgroup: true, Pools: 1}
	orig := Generate(17, p)
	raw, err := json.Marshal(orig.Spec())
	if err != nil {
		t.Fatal(err)
	}
	var s Spec
	if err := json.Unmarshal(raw, &s); err != nil {
		t.Fatal(err)
	}
	back, err := FromSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.bodies) != len(orig.bodies) {
		t.Fatalf("body count changed: %d vs %d", len(back.bodies), len(orig.bodies))
	}
	for gi := range orig.bodies {
		if len(back.bodies[gi]) != len(orig.bodies[gi]) {
			t.Fatalf("g%d length changed", gi)
		}
		for oi := range orig.bodies[gi] {
			if back.bodies[gi][oi] != orig.bodies[gi][oi] {
				t.Fatalf("g%d op%d changed: %+v vs %+v", gi, oi, back.bodies[gi][oi], orig.bodies[gi][oi])
			}
		}
	}
	trc := func(pr *Program) []string {
		rec := &trace.Recorder{}
		sched.Run(pr.Main(), sched.Options{
			Strategy: sched.NewRandom(), Seed: 3, MaxSteps: 1 << 18,
			Listeners: []trace.Listener{rec},
		})
		out := make([]string, len(rec.Events))
		for i, ev := range rec.Events {
			out[i] = ev.String()
		}
		return out
	}
	a, b := trc(orig), trc(back)
	if len(a) != len(b) {
		t.Fatalf("round-trip trace length differs: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round-trip trace diverges at event %d", i)
		}
	}
}

// TestFromSpecRejectsBadIndices: a corrupted spec must be rejected at
// load time, not crash at run time.
func TestFromSpecRejectsBadIndices(t *testing.T) {
	s := Generate(1, Params{}).Spec()
	s.Goroutines[0].Ops[0] = OpSpec{Kind: "var", Target: 99, Lock: -1}
	if _, err := FromSpec(s); err == nil {
		t.Fatal("out-of-range var index accepted")
	}
	s = Generate(1, Params{}).Spec()
	s.Goroutines[0].Ops[0] = OpSpec{Kind: "frobnicate", Lock: -1}
	if _, err := FromSpec(s); err == nil {
		t.Fatal("unknown op kind accepted")
	}
	s = Generate(1, Params{}).Spec()
	s.Goroutines[0].Ops[0] = OpSpec{Kind: "err-set", Lock: -1}
	if _, err := FromSpec(s); err == nil {
		t.Fatal("err-set without errgroup accepted")
	}
}
