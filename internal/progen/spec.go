package progen

import (
	"fmt"
)

// OpSpec is the serializable form of one generated operation. Kind
// uses stable string names so committed specs survive opKind
// renumbering.
type OpSpec struct {
	Kind    string `json:"kind"`
	Target  int    `json:"target,omitempty"`
	Key     int    `json:"key,omitempty"`
	Lock    int    `json:"lock"` // -1 = unguarded
	RWRead  bool   `json:"rwRead,omitempty"`
	IsWrite bool   `json:"isWrite,omitempty"`
	Plain   bool   `json:"plain,omitempty"`
}

// GoroutineSpec is one goroutine's straight-line body plus its
// errgroup straggler flag.
type GoroutineSpec struct {
	Ops       []OpSpec `json:"ops"`
	Straggler bool     `json:"straggler,omitempty"`
}

// Spec is the JSON-serializable form of a Program: the exact op
// sequence rather than the generation seed, so a minimizer can delete
// individual ops and the result still round-trips.
type Spec struct {
	Seed       int64           `json:"seed"`
	Params     Params          `json:"params"`
	Goroutines []GoroutineSpec `json:"bodies"`
}

var kindNames = map[opKind]string{
	opVar:      "var",
	opAtomic:   "atomic",
	opChanSend: "chan-send",
	opChanRecv: "chan-recv",
	opYield:    "yield",
	opMapGet:   "map-get",
	opMapPut:   "map-put",
	opMapDel:   "map-del",
	opMapRange: "map-range",
	opFlagPub:  "flag-pub",
	opFlagRead: "flag-read",
	opCtxPoll:  "ctx-poll",
	opPoolUse:  "pool-use",
	opErrSet:   "err-set",
}

var kindByName = func() map[string]opKind {
	m := make(map[string]opKind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// Spec captures the program's exact shape for serialization.
func (pr *Program) Spec() Spec {
	s := Spec{Seed: pr.Seed, Params: pr.Params}
	for gi, body := range pr.bodies {
		gs := GoroutineSpec{Ops: make([]OpSpec, 0, len(body))}
		for _, o := range body {
			gs.Ops = append(gs.Ops, OpSpec{
				Kind: kindNames[o.kind], Target: o.target, Key: o.key,
				Lock: o.lock, RWRead: o.rwRead, IsWrite: o.isWrite, Plain: o.plain,
			})
		}
		if len(pr.stragglers) > gi {
			gs.Straggler = pr.stragglers[gi]
		}
		s.Goroutines = append(s.Goroutines, gs)
	}
	return s
}

// FromSpec reconstructs a runnable Program from its serialized form,
// validating every resource index against the spec's Params so a
// hand-edited or minimized spec cannot index out of bounds at run
// time.
func FromSpec(s Spec) (*Program, error) {
	r := s.Params.withDefaults()
	pr := &Program{Seed: s.Seed, Params: s.Params}
	anyStraggler := false
	for gi, gs := range s.Goroutines {
		var body []op
		for oi, os := range gs.Ops {
			kind, ok := kindByName[os.Kind]
			if !ok {
				return nil, fmt.Errorf("g%d op%d: unknown kind %q", gi, oi, os.Kind)
			}
			o := op{kind: kind, target: os.Target, key: os.Key, lock: os.Lock,
				rwRead: os.RWRead, isWrite: os.IsWrite, plain: os.Plain}
			if err := checkOp(o, r); err != nil {
				return nil, fmt.Errorf("g%d op%d: %w", gi, oi, err)
			}
			body = append(body, o)
		}
		pr.bodies = append(pr.bodies, body)
		if gs.Straggler {
			anyStraggler = true
		}
	}
	if anyStraggler && !r.Errgroup {
		return nil, fmt.Errorf("straggler goroutine without errgroup enabled")
	}
	if r.Errgroup {
		pr.stragglers = make([]bool, len(s.Goroutines))
		for gi, gs := range s.Goroutines {
			pr.stragglers[gi] = gs.Straggler
		}
	}
	pr.computeSends()
	return pr, nil
}

func checkOp(o op, r resolved) error {
	inPool := func(name string, idx, n int) error {
		if idx < 0 || idx >= n {
			return fmt.Errorf("%s index %d out of range [0,%d)", name, idx, n)
		}
		return nil
	}
	checkLock := func(allowRW bool) error {
		if o.lock < -1 {
			return fmt.Errorf("lock index %d", o.lock)
		}
		max := r.Mutexes
		if allowRW {
			max += r.RWMutexes
		}
		if o.lock >= max {
			return fmt.Errorf("lock index %d out of range [0,%d)", o.lock, max)
		}
		return nil
	}
	switch o.kind {
	case opVar:
		if err := inPool("var", o.target, r.Vars); err != nil {
			return err
		}
		return checkLock(true)
	case opAtomic:
		return inPool("atomic", o.target, r.Atomics)
	case opChanSend, opChanRecv:
		return inPool("chan", o.target, r.Channels)
	case opYield:
		return nil
	case opMapGet, opMapPut, opMapDel, opMapRange:
		if err := inPool("map", o.target, r.Maps); err != nil {
			return err
		}
		if err := inPool("map key", o.key, r.mapKeys); err != nil {
			return err
		}
		return checkLock(false)
	case opFlagPub, opFlagRead:
		return inPool("flag", o.target, r.Flags)
	case opCtxPoll:
		return inPool("ctx level", o.target, r.CtxDepth)
	case opPoolUse:
		return inPool("pool object", o.target, r.Pools)
	case opErrSet:
		if !r.Errgroup {
			return fmt.Errorf("err-set without errgroup enabled")
		}
		return checkLock(false)
	}
	return fmt.Errorf("unhandled kind %d", o.kind)
}
