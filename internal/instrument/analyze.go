package instrument

import (
	"go/ast"
	"go/token"
	"go/types"
)

// varKind says how one variable (or struct field) is represented in
// the generated program.
type varKind int

const (
	kPlain  varKind = iota // untouched Go
	kCell                  // *sched.Var[T]
	kAtomic                // *sched.Atomic (sync/atomic target)
	kMutex                 // *sched.Mutex
	kRW                    // *sched.RWMutex
	kWG                    // *sched.WaitGroup
	kOnce                  // *sched.Once
	kChan                  // *sched.Chan[T]
	kMap                   // *sched.Map[K,V]
	kSlice                 // *sched.Slice[T]
)

// structInfo describes a cellified struct type: one whose fields
// become individual cells because instances are mutated through
// pointer receivers (or hold sync primitives).
type structInfo struct {
	name   string
	fields []*types.Var
	kinds  map[string]varKind
}

// analysis is everything the emitter needs to know about the subject
// package: which variables are shared (and as what kind), which struct
// types are cellified, and the declarations in deterministic order.
type analysis struct {
	fset  *token.FileSet
	files []*ast.File
	pkg   *types.Package
	info  *types.Info

	shared      map[*types.Var]bool
	kinds       map[*types.Var]varKind
	cellStructs map[*types.TypeName]*structInfo

	typeDecls   []*ast.GenDecl   // plain type declarations, in order
	constDecls  []*ast.GenDecl   // const declarations, in order
	pkgVarSpecs []*ast.ValueSpec // package-level var specs, in order
	funcs       []*ast.FuncDecl  // top-level functions, in order
	methods     []*ast.FuncDecl  // methods, in order
}

// analyze runs the shared-state analysis over the type-checked files.
func analyze(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) (*analysis, error) {
	an := &analysis{
		fset: fset, files: files, pkg: pkg, info: info,
		shared:      map[*types.Var]bool{},
		kinds:       map[*types.Var]varKind{},
		cellStructs: map[*types.TypeName]*structInfo{},
	}
	if err := an.collectDecls(); err != nil {
		return nil, err
	}
	an.findShared()
	an.findCellStructs()
	an.assignKinds()
	return an, nil
}

// collectDecls gathers declarations in source order and rejects
// generic declarations up front.
func (an *analysis) collectDecls() error {
	for _, f := range an.files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.GenDecl:
				switch d.Tok {
				case token.TYPE:
					for _, s := range d.Specs {
						ts := s.(*ast.TypeSpec)
						if ts.TypeParams != nil {
							return errAt(an.fset, ts.Pos(), "generic type %s unsupported", ts.Name.Name)
						}
					}
					an.typeDecls = append(an.typeDecls, d)
				case token.CONST:
					an.constDecls = append(an.constDecls, d)
				case token.VAR:
					for _, s := range d.Specs {
						an.pkgVarSpecs = append(an.pkgVarSpecs, s.(*ast.ValueSpec))
					}
				}
			case *ast.FuncDecl:
				if d.Type.TypeParams != nil {
					return errAt(an.fset, d.Pos(), "generic function %s unsupported", d.Name.Name)
				}
				if d.Recv != nil {
					an.methods = append(an.methods, d)
				} else {
					an.funcs = append(an.funcs, d)
				}
			}
		}
	}
	return nil
}

// findShared marks package-level variables, address-taken locals, and
// locals captured by function literals as shared.
func (an *analysis) findShared() {
	for _, spec := range an.pkgVarSpecs {
		for _, name := range spec.Names {
			if v, ok := an.info.Defs[name].(*types.Var); ok {
				an.shared[v] = true
			}
		}
	}

	// declFunc maps each local variable to the function node (FuncDecl
	// or FuncLit) whose body declares it; a use from a deeper FuncLit
	// is a capture. Pass 1 records declarations, pass 2 checks uses
	// and address-of — both with an explicit function-node stack.
	declFunc := map[*types.Var]ast.Node{}
	for _, f := range an.files {
		an.walkWithFuncStack(f, func(n ast.Node, stack []ast.Node) {
			if id, ok := n.(*ast.Ident); ok && len(stack) > 0 {
				if v, ok := an.info.Defs[id].(*types.Var); ok && !v.IsField() {
					declFunc[v] = stackTop(stack)
				}
			}
		})
	}
	for _, f := range an.files {
		an.walkWithFuncStack(f, func(n ast.Node, stack []ast.Node) {
			switch n := n.(type) {
			case *ast.Ident:
				if v, ok := an.info.Uses[n].(*types.Var); ok && !v.IsField() {
					if df, ok := declFunc[v]; ok && len(stack) > 0 && stackTop(stack) != df {
						an.shared[v] = true
					}
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if id, ok := n.X.(*ast.Ident); ok {
						if v, ok := an.info.Uses[id].(*types.Var); ok && !v.IsField() {
							if !isImportedStruct(v.Type()) {
								an.shared[v] = true
							}
						}
					}
				}
			}
		})
	}
}

// walkWithFuncStack walks the tree invoking fn on every node with the
// current stack of enclosing function nodes (FuncDecl / FuncLit).
func (an *analysis) walkWithFuncStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil {
			return
		}
		push := isFuncNode(n)
		if push {
			stack = append(stack, n)
		}
		fn(n, stack)
		children(n, walk)
		if push {
			stack = stack[:len(stack)-1]
		}
	}
	walk(root)
}

func isFuncNode(n ast.Node) bool {
	switch n.(type) {
	case *ast.FuncDecl, *ast.FuncLit:
		return true
	}
	return false
}

func stackTop(s []ast.Node) ast.Node { return s[len(s)-1] }

// children invokes fn on each direct child node of n.
func children(n ast.Node, fn func(ast.Node)) {
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		if c != nil {
			fn(c)
		}
		return false
	})
}

// isImportedStruct reports whether t names a struct from another
// package (e.g. strings.Builder): such values stay plain — the
// rewriter cannot cellify types it does not own.
func isImportedStruct(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() != ""
}

// findCellStructs marks locally-defined struct types whose instances
// are mutated through pointer receivers — or which embed sync
// primitives — as cellified: each field becomes its own cell.
func (an *analysis) findCellStructs() {
	hasPtrMethod := map[*types.TypeName]bool{}
	for _, m := range an.methods {
		if tn := an.recvTypeName(m); tn != nil {
			if _, isPtr := an.recvType(m).(*types.Pointer); isPtr {
				hasPtrMethod[tn] = true
			}
		}
	}
	for _, d := range an.typeDecls {
		for _, s := range d.Specs {
			ts := s.(*ast.TypeSpec)
			obj, ok := an.info.Defs[ts.Name].(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := obj.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			cellify := hasPtrMethod[obj]
			for i := 0; i < st.NumFields(); i++ {
				if k := syncKind(st.Field(i).Type()); k != kPlain {
					cellify = true
				}
			}
			if !cellify {
				continue
			}
			si := &structInfo{name: obj.Name(), kinds: map[string]varKind{}}
			for i := 0; i < st.NumFields(); i++ {
				fv := st.Field(i)
				si.fields = append(si.fields, fv)
				si.kinds[fv.Name()] = kindForType(fv.Type(), true)
			}
			an.cellStructs[obj] = si
		}
	}
}

// recvType returns the method's receiver type.
func (an *analysis) recvType(m *ast.FuncDecl) types.Type {
	if len(m.Recv.List) == 0 {
		return nil
	}
	return an.info.Types[m.Recv.List[0].Type].Type
}

// recvTypeName resolves a method's receiver to its defined type name.
func (an *analysis) recvTypeName(m *ast.FuncDecl) *types.TypeName {
	t := an.recvType(m)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

// syncKind classifies sync package types, or kPlain.
func syncKind(t types.Type) varKind {
	named, ok := t.(*types.Named)
	if !ok {
		return kPlain
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return kPlain
	}
	switch obj.Name() {
	case "Mutex":
		return kMutex
	case "RWMutex":
		return kRW
	case "WaitGroup":
		return kWG
	case "Once":
		return kOnce
	}
	return kPlain
}

// kindForType maps a variable's type (plus its sharedness) to its
// generated representation.
func kindForType(t types.Type, shared bool) varKind {
	if k := syncKind(t); k != kPlain {
		return k
	}
	switch t.Underlying().(type) {
	case *types.Chan:
		return kChan // channels are scheduling primitives, always modeled
	}
	if !shared {
		return kPlain
	}
	switch t.Underlying().(type) {
	case *types.Map:
		return kMap
	case *types.Slice:
		return kSlice
	case *types.Pointer:
		return kPlain // pointers are plain holders of cell pointers
	}
	return kCell
}

// assignKinds computes each variable's kind, then upgrades sync/atomic
// targets to kAtomic by scanning atomic.* call sites.
func (an *analysis) assignKinds() {
	collect := func(id *ast.Ident) {
		if v, ok := an.info.Defs[id].(*types.Var); ok && !v.IsField() {
			an.kinds[v] = kindForType(v.Type(), an.shared[v])
		}
	}
	for _, f := range an.files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				collect(n)
			case *ast.CallExpr:
				if pkgSel(an.info, n, "atomic") != "" && len(n.Args) > 0 {
					if u, ok := n.Args[0].(*ast.UnaryExpr); ok && u.Op == token.AND {
						if id, ok := u.X.(*ast.Ident); ok {
							if v, ok := an.info.Uses[id].(*types.Var); ok {
								an.shared[v] = true
								an.kinds[v] = kAtomic
							}
						}
					}
				}
			}
			return true
		})
	}
}

// pkgSel returns the selector name if call's callee is pkgName.Sel on
// the given imported package, else "".
func pkgSel(info *types.Info, call *ast.CallExpr, pkgName string) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	if pn.Imported().Name() != pkgName {
		return ""
	}
	return sel.Sel.Name
}

// kindOf returns the kind of the variable an identifier resolves to
// (kPlain when it is not a variable).
func (an *analysis) kindOf(id *ast.Ident) varKind {
	obj := an.info.Uses[id]
	if obj == nil {
		obj = an.info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return kPlain
	}
	return an.kinds[v]
}

// varOf resolves an identifier to its *types.Var, or nil.
func (an *analysis) varOf(id *ast.Ident) *types.Var {
	obj := an.info.Uses[id]
	if obj == nil {
		obj = an.info.Defs[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	return v
}
