package instrument

import (
	"go/ast"
	"go/token"
	"go/types"
)

// coalescePlan is one cell's treatment inside a run: accesses go
// through temp, with a single trailing store if the run writes it.
type coalescePlan struct {
	v        *types.Var
	temp     string
	needLoad bool
}

// coalesceRun is a maximal sequence of simple statements emitted as
// one unit; plans list the cells whose accesses coalesce within it.
type coalesceRun struct {
	stmts []ast.Stmt
	plans []coalescePlan
}

// planRuns partitions a statement list into runs. Simple statements
// (straight-line assignments and ++/-- over identifiers, no calls or
// channel/container operations) form runs; anything else is a run of
// its own with no coalescing.
func (em *emitter) planRuns(list []ast.Stmt) []coalesceRun {
	var runs []coalesceRun
	var cur []ast.Stmt
	flush := func() {
		if len(cur) == 0 {
			return
		}
		runs = append(runs, coalesceRun{stmts: cur, plans: em.planCells(cur)})
		cur = nil
	}
	for _, s := range list {
		if em.simpleStmt(s) {
			cur = append(cur, s)
			continue
		}
		flush()
		runs = append(runs, coalesceRun{stmts: []ast.Stmt{s}})
	}
	flush()
	return runs
}

// simpleStmt reports whether s is a pure straight-line statement over
// identifiers — the only shape the coalescer reorders.
func (em *emitter) simpleStmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if s.Tok == token.DEFINE {
			return false
		}
		for _, l := range s.Lhs {
			if _, ok := l.(*ast.Ident); !ok {
				return false
			}
		}
		for _, r := range s.Rhs {
			if !em.pureExpr(r) {
				return false
			}
		}
		return true
	case *ast.IncDecStmt:
		_, ok := s.X.(*ast.Ident)
		return ok
	}
	return false
}

// pureExpr reports whether e reads only identifiers and literals.
func (em *emitter) pureExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident, *ast.BasicLit:
		return true
	case *ast.ParenExpr:
		return em.pureExpr(e.X)
	case *ast.BinaryExpr:
		return em.pureExpr(e.X) && em.pureExpr(e.Y)
	case *ast.UnaryExpr:
		return e.Op != token.ARROW && e.Op != token.AND && em.pureExpr(e.X)
	}
	return false
}

// cellAccess is one ordered access to a cell within a run.
type cellAccess struct {
	v    *types.Var
	read bool
}

// planCells decides which cells coalesce in a run: any cell touched
// twice or more gets a temp; needLoad when its first access reads.
func (em *emitter) planCells(stmts []ast.Stmt) []coalescePlan {
	var accs []cellAccess
	note := func(id *ast.Ident, read bool) {
		v := em.an.varOf(id)
		if v != nil && em.an.kinds[v] == kCell {
			accs = append(accs, cellAccess{v: v, read: read})
		}
	}
	var reads func(e ast.Expr)
	reads = func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				note(id, true)
			}
			return true
		})
	}
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.AssignStmt:
			for _, r := range s.Rhs {
				reads(r)
			}
			for _, l := range s.Lhs {
				id := l.(*ast.Ident)
				if s.Tok != token.ASSIGN {
					note(id, true) // compound ops read before writing
				}
				note(id, false)
			}
		case *ast.IncDecStmt:
			id := s.X.(*ast.Ident)
			note(id, true)
			note(id, false)
		}
	}

	counts := map[*types.Var]int{}
	first := map[*types.Var]bool{}
	var order []*types.Var
	for _, a := range accs {
		if counts[a.v] == 0 {
			first[a.v] = a.read
			order = append(order, a.v)
		}
		counts[a.v]++
	}
	var plans []coalescePlan
	for _, v := range order {
		if counts[v] < 2 {
			continue
		}
		plans = append(plans, coalescePlan{v: v, temp: em.tmp("c"), needLoad: first[v]})
	}
	return plans
}
