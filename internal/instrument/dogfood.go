package instrument

import (
	"fmt"
	"os"
	"path/filepath"
)

// DogfoodProgram describes one curated instrumentation target: a real
// package from this repository (or a curated real-world bug shape
// under testdata/real) plus a harness defining racy and fixed entry
// points. cmd/raceinstrument -dogfood regenerates the committed
// internal/progs sources from this table, and a regeneration-guard
// test keeps the two in sync.
type DogfoodProgram struct {
	// Name is the registry name of the generated Program.
	Name string
	// Desc is a one-line description of the bug shape.
	Desc string
	// SubjectDir is the subject package directory, repo-relative.
	SubjectDir string
	// Harness is a repo-relative harness file merged into the subject
	// package (empty when the subject defines its own entries).
	Harness string
	// RacyEntry and FixedEntry name the niladic entry functions.
	RacyEntry  string
	FixedEntry string
	// RacyProg and FixedProg name the generated program functions
	// (Prog<RacyProg>, Prog<FixedProg>).
	RacyProg  string
	FixedProg string
	// OutRacy and OutFixed are the repo-relative generated files.
	OutRacy  string
	OutFixed string
	// Skip names subject-directory files left out of the instrumented
	// package: infrastructure sharing the directory without being part
	// of the bug shape.
	Skip []string
}

// DogfoodPrograms returns the curated instrumentation targets, sorted
// by name.
func DogfoodPrograms() []DogfoodProgram {
	return []DogfoodProgram{
		{
			Name:       "metrics-counter",
			Desc:       "partial atomics: plain ++ races with atomic ops on one counter",
			SubjectDir: "internal/instrument/testdata/real/metrics",
			RacyEntry:  "RacyServe",
			FixedEntry: "FixedServe",
			RacyProg:   "MetricsCounter",
			FixedProg:  "MetricsCounterFixed",
			OutRacy:    "internal/progs/metrics_counter_racy_gen.go",
			OutFixed:   "internal/progs/metrics_counter_fixed_gen.go",
		},
		{
			Name:       "stack-trace",
			Desc:       "unsynchronized push/capture on a shared frame stack (internal/stack)",
			SubjectDir: "internal/stack",
			// The interning depot is detector infrastructure that shares
			// the package, not part of the push/capture bug shape.
			Skip:       []string{"depot.go"},
			Harness:    "internal/instrument/testdata/harness/stack_harness.go",
			RacyEntry:  "RacyTrace",
			FixedEntry: "FixedTrace",
			RacyProg:   "StackTrace",
			FixedProg:  "StackTraceFixed",
			OutRacy:    "internal/progs/stack_trace_racy_gen.go",
			OutFixed:   "internal/progs/stack_trace_fixed_gen.go",
		},
		{
			Name:       "taxonomy-audit",
			Desc:       "concurrent slice append vs. reads on the category table (internal/taxonomy)",
			SubjectDir: "internal/taxonomy",
			Harness:    "internal/instrument/testdata/harness/taxonomy_harness.go",
			RacyEntry:  "RacyAudit",
			FixedEntry: "FixedAudit",
			RacyProg:   "TaxonomyAudit",
			FixedProg:  "TaxonomyAuditFixed",
			OutRacy:    "internal/progs/taxonomy_audit_racy_gen.go",
			OutFixed:   "internal/progs/taxonomy_audit_fixed_gen.go",
		},
	}
}

// DogfoodByName looks a dogfood spec up by registry name.
func DogfoodByName(name string) (DogfoodProgram, bool) {
	for _, p := range DogfoodPrograms() {
		if p.Name == name {
			return p, true
		}
	}
	return DogfoodProgram{}, false
}

// GenerateDogfood instruments one dogfood target relative to the repo
// root and returns the racy and fixed generated sources. Coalescing is
// on, matching the committed internal/progs files.
func GenerateDogfood(root string, p DogfoodProgram) (racy, fixed *Output, err error) {
	extra := map[string]string{}
	if p.Harness != "" {
		src, err := os.ReadFile(filepath.Join(root, filepath.FromSlash(p.Harness)))
		if err != nil {
			return nil, nil, fmt.Errorf("dogfood %s: %w", p.Name, err)
		}
		// The zz_ prefix sorts the harness after the subject sources, so
		// generated declaration order tracks the subject package.
		extra["zz_harness.go"] = string(src)
	}
	dir := filepath.Join(root, filepath.FromSlash(p.SubjectDir))
	racy, err = Dir(dir, Options{ProgName: p.RacyProg, Entry: p.RacyEntry, Coalesce: true, ExtraFiles: extra, SkipFiles: p.Skip})
	if err != nil {
		return nil, nil, fmt.Errorf("dogfood %s (racy): %w", p.Name, err)
	}
	fixed, err = Dir(dir, Options{ProgName: p.FixedProg, Entry: p.FixedEntry, Coalesce: true, ExtraFiles: extra, SkipFiles: p.Skip})
	if err != nil {
		return nil, nil, fmt.Errorf("dogfood %s (fixed): %w", p.Name, err)
	}
	return racy, fixed, nil
}
