package instrument

import (
	"fmt"
	"sort"
	"sync"

	"gorace/internal/sched"
)

// Program is one instrumented program: a racy variant and (optionally)
// its fixed counterpart, both runnable under the modeled scheduler.
type Program struct {
	// Name identifies the program in CLIs, job specs, and reports.
	Name string
	// Desc is a one-line description of the bug shape.
	Desc string
	// Source names where the subject code came from (package path or
	// real-world provenance).
	Source string
	// Racy is the instrumented buggy entry point.
	Racy func(*sched.G)
	// Fixed is the instrumented corrected entry point, or nil.
	Fixed func(*sched.G)
}

var (
	progMu   sync.Mutex
	programs = map[string]Program{}
)

// MustRegister adds a program to the global registry; duplicate or
// anonymous registrations panic (they indicate a generation bug).
func MustRegister(p Program) {
	progMu.Lock()
	defer progMu.Unlock()
	if p.Name == "" || p.Racy == nil {
		panic("instrument: program needs a name and a racy entry")
	}
	if _, dup := programs[p.Name]; dup {
		panic(fmt.Sprintf("instrument: duplicate program %q", p.Name))
	}
	programs[p.Name] = p
}

// Programs returns all registered programs sorted by name.
func Programs() []Program {
	progMu.Lock()
	defer progMu.Unlock()
	out := make([]Program, 0, len(programs))
	for _, p := range programs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ProgramByName looks a program up by name.
func ProgramByName(name string) (Program, bool) {
	progMu.Lock()
	defer progMu.Unlock()
	p, ok := programs[name]
	return p, ok
}
