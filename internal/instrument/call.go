package instrument

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// callExpr dispatches a call: conversion, builtin, atomic/sync
// mapping, subject function, lifted method, or passthrough.
func (em *emitter) callExpr(call *ast.CallExpr) string {
	if tv, ok := em.an.info.Types[call.Fun]; ok && tv.IsType() {
		return em.goType(tv.Type) + "(" + em.exprStr(call.Args[0]) + ")"
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if _, ok := em.an.info.Uses[fun].(*types.Builtin); ok {
			return em.builtinCall(fun, call)
		}
		if f, ok := em.an.info.Uses[fun].(*types.Func); ok && f.Pkg() == em.an.pkg {
			return em.withG(fun.Name, "", call)
		}
		// Func-typed variable (a rewritten literal capturing g).
		return fun.Name + "(" + em.argList(call) + ")"
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := em.an.info.Uses[id].(*types.PkgName); ok {
				path := pn.Imported().Path()
				switch path {
				case "sync/atomic":
					return em.atomicCall(fun.Sel.Name, call)
				case "sync":
					em.fail(call.Pos(), "unsupported sync function %s", fun.Sel.Name)
				}
				em.imports[path] = true
				return pn.Imported().Name() + "." + fun.Sel.Name + "(" + em.argList(call) + ")"
			}
		}
		if k := em.exprKind(fun.X); k == kMutex || k == kRW || k == kWG || k == kOnce {
			return em.syncMethodCall(k, fun, call)
		}
		if k := em.exprKind(fun.X); k == kChan || k == kMap || k == kSlice {
			em.fail(call.Pos(), "unsupported method %s on modeled container", fun.Sel.Name)
		}
		if s, ok := em.an.info.Selections[fun]; ok {
			if f, isF := s.Obj().(*types.Func); isF && f.Pkg() == em.an.pkg {
				return em.liftedCall(fun, f, call)
			}
		}
		return em.exprStr(fun.X) + "." + fun.Sel.Name + "(" + em.argList(call) + ")"
	case *ast.FuncLit:
		return em.renderFuncLit(fun) + "(" + em.argList(call) + ")"
	case *ast.ParenExpr:
		inner := *call
		inner.Fun = fun.X
		return em.callExpr(&inner)
	}
	em.fail(call.Pos(), "unsupported call form %T", call.Fun)
	return ""
}

// withG renders a subject-function call with the scheduler handle (and
// optional receiver) prepended.
func (em *emitter) withG(name, recv string, call *ast.CallExpr) string {
	args := []string{"g"}
	if recv != "" {
		args = append(args, recv)
	}
	if a := em.argList(call); a != "" {
		args = append(args, a)
	}
	return name + "(" + strings.Join(args, ", ") + ")"
}

// liftedCall renders a method call on a subject type as a call of the
// lifted closure variable.
func (em *emitter) liftedCall(fun *ast.SelectorExpr, f *types.Func, call *ast.CallExpr) string {
	sel := em.an.info.Selections[fun]
	recvT := f.Type().(*types.Signature).Recv().Type()
	var tn *types.TypeName
	t := recvT
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		em.fail(fun.Pos(), "method on unsupported receiver type")
	}
	tn = named.Obj()

	recv := em.exprStr(fun.X)
	_, wantPtr := recvT.(*types.Pointer)
	xT := sel.Recv()
	_, havePtr := xT.Underlying().(*types.Pointer)
	if wantPtr && !havePtr {
		recv = "&" + recv
	}
	if !wantPtr && havePtr {
		recv = "*" + recv
	}
	return em.withG(tn.Name()+"_"+fun.Sel.Name, recv, call)
}

// syncMethodCall maps sync primitive methods onto sched equivalents.
func (em *emitter) syncMethodCall(k varKind, fun *ast.SelectorExpr, call *ast.CallExpr) string {
	holder := em.baseObjExpr(fun.X)
	m := fun.Sel.Name
	bad := func() string {
		em.fail(call.Pos(), "unsupported sync method %s", m)
		return ""
	}
	switch k {
	case kMutex:
		switch m {
		case "Lock", "Unlock":
			return holder + "." + m + "(g)"
		}
		return bad()
	case kRW:
		switch m {
		case "Lock", "Unlock", "RLock", "RUnlock":
			return holder + "." + m + "(g)"
		}
		return bad()
	case kWG:
		switch m {
		case "Add":
			return holder + ".Add(g, " + em.exprStr(call.Args[0]) + ")"
		case "Done", "Wait":
			return holder + "." + m + "(g)"
		}
		return bad()
	case kOnce:
		if m == "Do" {
			return holder + ".Do(g, " + em.exprStr(call.Args[0]) + ")"
		}
		return bad()
	}
	return bad()
}

// atomicCall maps sync/atomic calls onto the modeled Atomic.
func (em *emitter) atomicCall(name string, call *ast.CallExpr) string {
	u, ok := call.Args[0].(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		em.fail(call.Pos(), "atomic.%s requires an explicit &variable argument", name)
	}
	holder := em.cellHolder(u.X)
	switch name {
	case "LoadInt64":
		return holder + ".Load(g)"
	case "StoreInt64":
		return holder + ".Store(g, " + em.exprStr(call.Args[1]) + ")"
	case "AddInt64":
		return holder + ".Add(g, " + em.exprStr(call.Args[1]) + ")"
	case "CompareAndSwapInt64":
		return holder + ".CompareAndSwap(g, " + em.exprStr(call.Args[1]) + ", " + em.exprStr(call.Args[2]) + ")"
	}
	em.fail(call.Pos(), "unsupported atomic operation %s (only the Int64 family is modeled)", name)
	return ""
}

// cellHolder renders the holder expression for a cell-backed variable
// or field (no Load).
func (em *emitter) cellHolder(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if _, cell := em.cellField(x); cell {
			return em.exprStr(x.X) + "." + x.Sel.Name
		}
	}
	em.fail(e.Pos(), "unsupported atomic target")
	return ""
}

// builtinCall maps builtins that touch modeled containers/channels.
func (em *emitter) builtinCall(fun *ast.Ident, call *ast.CallExpr) string {
	switch fun.Name {
	case "len":
		switch em.exprKind(call.Args[0]) {
		case kSlice, kMap:
			return em.baseObjExpr(call.Args[0]) + ".Len(g)"
		case kChan:
			return em.baseObjExpr(call.Args[0]) + ".Len()"
		}
	case "cap":
		if em.exprKind(call.Args[0]) == kChan {
			return em.baseObjExpr(call.Args[0]) + ".Cap()"
		}
	case "delete":
		if em.exprKind(call.Args[0]) == kMap {
			return em.baseObjExpr(call.Args[0]) + ".Delete(g, " + em.exprStr(call.Args[1]) + ")"
		}
	case "close":
		if em.exprKind(call.Args[0]) == kChan {
			return em.baseObjExpr(call.Args[0]) + ".Close(g)"
		}
		em.fail(call.Pos(), "close on a non-modeled channel")
	case "append":
		if em.exprKind(call.Args[0]) == kSlice {
			em.fail(call.Pos(), "append on a modeled slice only supported as s = append(s, ...)")
		}
	case "make":
		t := em.an.info.Types[call.Args[0]].Type
		if ch, ok := t.Underlying().(*types.Chan); ok {
			capStr := "0"
			if len(call.Args) > 1 {
				capStr = em.exprStr(call.Args[1])
			}
			return fmt.Sprintf("sched.NewChan[%s](g, %q, %s)", em.goType(ch.Elem()), em.tmp("ch"), capStr)
		}
	case "new":
		t := em.an.info.Types[call.Args[0]].Type
		if si := em.cellStructOf(t); si != nil {
			return em.cellStructLit(&ast.CompositeLit{}, si)
		}
	}
	return fun.Name + "(" + em.argList(call) + ")"
}

// argList renders call arguments, expanding modeled-slice variadics.
func (em *emitter) argList(call *ast.CallExpr) string {
	var parts []string
	for i, a := range call.Args {
		s := em.exprStr(a)
		if call.Ellipsis != token.NoPos && i == len(call.Args)-1 {
			if em.exprKind(a) == kSlice {
				s = em.baseObjExpr(a) + ".Values(g)"
			}
			s += "..."
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, ", ")
}
