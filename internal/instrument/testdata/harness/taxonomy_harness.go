package taxonomy

import "sync"

// RacyAudit reads the category table concurrently with a
// late-registration append — the paper's concurrent-slice-access
// shape on a real package of this repository.
func RacyAudit() {
	done := make(chan bool, 2)
	go func() {
		Entries = append(Entries, Entry{CatUnknown, 3, 0, "late registration", 1})
		done <- true
	}()
	go func() {
		_, _ = ByCategory(CatSlice)
		_ = TableEntries(2)
		done <- true
	}()
	<-done
	<-done
}

var auditMu sync.Mutex

// FixedAudit is RacyAudit with every table access behind one mutex.
func FixedAudit() {
	done := make(chan bool, 2)
	go func() {
		auditMu.Lock()
		Entries = append(Entries, Entry{CatUnknown, 3, 0, "late registration", 1})
		auditMu.Unlock()
		done <- true
	}()
	go func() {
		auditMu.Lock()
		_, _ = ByCategory(CatSlice)
		_ = TableEntries(2)
		auditMu.Unlock()
		done <- true
	}()
	<-done
	<-done
}
