package stack

import "sync"

// RacyTrace shares one frame Stack between a worker pushing frames and
// an observer capturing snapshots, without synchronization — the
// missing-lock shape on this repository's stack package.
func RacyTrace() {
	s := NewStack()
	s.Push("main", "main.go", 1)
	done := make(chan bool, 2)
	go func() {
		s.Push("worker", "worker.go", 10)
		s.SetLine(11)
		_ = s.Capture()
		s.Pop()
		done <- true
	}()
	go func() {
		_ = s.Capture()
		_ = s.Depth()
		done <- true
	}()
	<-done
	<-done
}

var traceMu sync.Mutex

// FixedTrace is RacyTrace with a mutex around every Stack operation.
func FixedTrace() {
	s := NewStack()
	s.Push("main", "main.go", 1)
	done := make(chan bool, 2)
	go func() {
		traceMu.Lock()
		s.Push("worker", "worker.go", 10)
		s.SetLine(11)
		_ = s.Capture()
		s.Pop()
		traceMu.Unlock()
		done <- true
	}()
	go func() {
		traceMu.Lock()
		_ = s.Capture()
		_ = s.Depth()
		traceMu.Unlock()
		done <- true
	}()
	<-done
	<-done
}
