// Package metrics reproduces a recurring real-world shape from the
// study's partial-atomics category: a request counter bumped with a
// plain ++ on the hot path while other paths use sync/atomic on the
// same word. The mixed accesses race; the fix makes every access
// atomic.
package metrics

import "sync/atomic"

var requests int64
var failures int64

// Handle is the racy hot path: a plain increment of an
// atomically-accessed counter.
func Handle(fail bool) {
	requests++
	if fail {
		atomic.AddInt64(&failures, 1)
	}
}

// HandleAtomic is the repaired hot path.
func HandleAtomic(fail bool) {
	atomic.AddInt64(&requests, 1)
	if fail {
		atomic.AddInt64(&failures, 1)
	}
}

// Snapshot reads both counters atomically.
func Snapshot() (int64, int64) {
	return atomic.LoadInt64(&requests), atomic.LoadInt64(&failures)
}

// RacyServe runs two racy handlers concurrently.
func RacyServe() {
	done := make(chan bool, 2)
	go func() { Handle(false); done <- true }()
	go func() { Handle(true); done <- true }()
	<-done
	<-done
	_, _ = Snapshot()
}

// FixedServe runs two repaired handlers concurrently.
func FixedServe() {
	done := make(chan bool, 2)
	go func() { HandleAtomic(false); done <- true }()
	go func() { HandleAtomic(true); done <- true }()
	<-done
	<-done
	_, _ = Snapshot()
}
