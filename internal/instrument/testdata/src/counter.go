package counter

import "sync"

var total int

func worker(wg *sync.WaitGroup, n int) {
	for i := 0; i < n; i++ {
		total++
	}
	wg.Done()
}

func Run() {
	var wg sync.WaitGroup
	wg.Add(2)
	go worker(&wg, 3)
	go worker(&wg, 3)
	wg.Wait()
	_ = total
}
