package atomics

import "sync/atomic"

var hits int64
var flag int64

func Record() {
	atomic.AddInt64(&hits, 1)
	if atomic.CompareAndSwapInt64(&flag, 0, 1) {
		atomic.StoreInt64(&flag, 2)
	}
}

func Run() {
	done := make(chan bool, 2)
	go func() { Record(); done <- true }()
	go func() { hits++; done <- true }()
	<-done
	<-done
	_ = atomic.LoadInt64(&hits)
}
