package collections

var items []int
var index = map[string]int{}

func Add(k string, v int) {
	items = append(items, v)
	index[k] = len(items)
}

func Run() {
	done := make(chan bool, 2)
	go func() { Add("x", 1); done <- true }()
	go func() { Add("y", 2); done <- true }()
	<-done
	<-done
	total := 0
	for _, v := range items {
		total += v
	}
	for k := range index {
		_ = k
	}
	_ = total
}
