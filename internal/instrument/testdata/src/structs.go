package structs

import "sync"

type Counter struct {
	mu sync.Mutex
	n  int
}

func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *Counter) Value() int {
	return c.n
}

func Run() {
	c := &Counter{}
	done := make(chan bool, 2)
	go func() { c.Inc(); done <- true }()
	go func() { _ = c.Value(); done <- true }()
	<-done
	<-done
}
