package coalesce

var a, b int

func Step() {
	a = a + 1
	a = a + 2
	b = a
	b++
}

func Run() {
	done := make(chan bool)
	go func() { Step(); done <- true }()
	Step()
	<-done
}
