package mutexdemo

import "sync"

var (
	mu    sync.Mutex
	rw    sync.RWMutex
	count int
	seen  = map[string]int{}
)

func Inc(key string) {
	mu.Lock()
	count++
	mu.Unlock()
	rw.Lock()
	seen[key]++
	rw.Unlock()
}

func Get(key string) int {
	rw.RLock()
	v := seen[key]
	rw.RUnlock()
	return v
}

func Run() {
	done := make(chan bool, 2)
	go func() { Inc("a"); done <- true }()
	go func() { Inc("a"); done <- true }()
	<-done
	<-done
	_ = Get("a")
}
