package chans

func produce(ch chan int, n int) {
	for i := 0; i < n; i++ {
		ch <- i
	}
	close(ch)
}

func Run() {
	ch := make(chan int, 2)
	results := make(chan int)
	go produce(ch, 4)
	go func() {
		sum := 0
		for v := range ch {
			sum += v
		}
		results <- sum
	}()
	total := <-results
	select {
	case v := <-results:
		_ = v
	default:
		total++
	}
	_ = total
}
