package instrument

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// exprStr renders one expression, rewriting instrumented reads.
func (em *emitter) exprStr(e ast.Expr) string {
	if t, ok := em.replaced[e]; ok {
		return t
	}
	switch e := e.(type) {
	case *ast.Ident:
		return em.identExpr(e)
	case *ast.BasicLit:
		return e.Value
	case *ast.ParenExpr:
		return "(" + em.exprStr(e.X) + ")"
	case *ast.BinaryExpr:
		return em.binExpr(e)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return em.addrOf(e)
		}
		if e.Op == token.ARROW {
			em.fail(e.Pos(), "channel receive in unsupported position")
		}
		s := em.exprStr(e.X)
		if _, ok := e.X.(*ast.BinaryExpr); ok {
			s = "(" + s + ")"
		}
		return e.Op.String() + s
	case *ast.StarExpr:
		if em.isCellPtr(e.X) {
			return em.exprStr(e.X) + ".Load(g)"
		}
		return "*" + em.exprStr(e.X)
	case *ast.SelectorExpr:
		return em.selectorExpr(e)
	case *ast.IndexExpr:
		switch em.exprKind(e.X) {
		case kSlice:
			return em.baseObjExpr(e.X) + ".Get(g, " + em.exprStr(e.Index) + ")"
		case kMap:
			em.fail(e.Pos(), "map read in unsupported position")
		}
		return em.exprStr(e.X) + "[" + em.exprStr(e.Index) + "]"
	case *ast.SliceExpr:
		if em.exprKind(e.X) == kSlice {
			em.fail(e.Pos(), "slice expression on a modeled slice only supported as s = s[:n]")
		}
		return em.origPrint(e)
	case *ast.CallExpr:
		return em.callExpr(e)
	case *ast.CompositeLit:
		return em.compositeLit(e)
	case *ast.FuncLit:
		return em.renderFuncLit(e)
	default:
		em.fail(e.Pos(), "unsupported expression %T", e)
		return ""
	}
}

// identExpr renders a bare identifier read.
func (em *emitter) identExpr(id *ast.Ident) string {
	if f, ok := em.an.info.Uses[id].(*types.Func); ok && f.Pkg() == em.an.pkg {
		em.fail(id.Pos(), "using subject function %s as a value is unsupported; use a function literal", id.Name)
	}
	v := em.an.varOf(id)
	switch em.an.kindOf(id) {
	case kCell:
		if t, ok := em.subst[v]; ok {
			return t
		}
		return id.Name + ".Load(g)"
	case kAtomic:
		return id.Name + ".PlainLoad(g)"
	}
	return id.Name
}

// binExpr renders a binary expression with minimal re-parenthesizing.
func (em *emitter) binExpr(e *ast.BinaryExpr) string {
	l, r := em.exprStr(e.X), em.exprStr(e.Y)
	if c, ok := e.X.(*ast.BinaryExpr); ok && c.Op.Precedence() < e.Op.Precedence() {
		l = "(" + l + ")"
	}
	if c, ok := e.Y.(*ast.BinaryExpr); ok && c.Op.Precedence() <= e.Op.Precedence() {
		r = "(" + r + ")"
	}
	return l + " " + e.Op.String() + " " + r
}

// addrOf renders &x: taking the address of a cell yields the cell
// holder itself.
func (em *emitter) addrOf(u *ast.UnaryExpr) string {
	switch x := u.X.(type) {
	case *ast.Ident:
		// All modeled kinds are holder pointers already.
		if em.an.kindOf(x) != kPlain {
			return x.Name
		}
		return "&" + x.Name
	case *ast.SelectorExpr:
		if _, cell := em.cellField(x); cell {
			return em.exprStr(x.X) + "." + x.Sel.Name
		}
		return "&" + em.exprStr(x)
	case *ast.CompositeLit:
		if si := em.cellStructOf(em.an.info.Types[x].Type); si != nil {
			return em.cellStructLit(x, si)
		}
		return "&" + em.compositeLit(x)
	}
	return "&" + em.exprStr(u.X)
}

// selectorExpr renders pkg.Name, cell-field reads, and plain field
// accesses.
func (em *emitter) selectorExpr(sel *ast.SelectorExpr) string {
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := em.an.info.Uses[id].(*types.PkgName); ok {
			path := pn.Imported().Path()
			if path == "sync" || path == "sync/atomic" {
				em.fail(sel.Pos(), "unsupported %s reference %s", path, sel.Sel.Name)
			}
			em.imports[path] = true
			return pn.Imported().Name() + "." + sel.Sel.Name
		}
	}
	if fk, cell := em.cellField(sel); cell {
		base := em.exprStr(sel.X) + "." + sel.Sel.Name
		switch fk {
		case kCell:
			return base + ".Load(g)"
		case kAtomic:
			return base + ".PlainLoad(g)"
		}
		return base // holder field: chan/map/slice/sync primitive
	}
	if s, ok := em.an.info.Selections[sel]; ok && s.Kind() != types.FieldVal {
		if f, isF := s.Obj().(*types.Func); isF && f.Pkg() == em.an.pkg {
			em.fail(sel.Pos(), "method value %s unsupported; call it directly", sel.Sel.Name)
		}
	}
	return em.exprStr(sel.X) + "." + sel.Sel.Name
}

// compositeLit renders a composite literal with rewritten elements.
func (em *emitter) compositeLit(cl *ast.CompositeLit) string {
	if si := em.cellStructOf(em.an.info.Types[cl].Type); si != nil {
		em.fail(cl.Pos(), "cellified struct %s must be constructed as &%s{...}", si.name, si.name)
	}
	if !em.interesting(cl) {
		return em.origPrint(cl)
	}
	var parts []string
	for _, el := range cl.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			parts = append(parts, em.exprStr(kv.Key)+": "+em.exprStr(kv.Value))
			continue
		}
		parts = append(parts, em.exprStr(el))
	}
	typ := ""
	if cl.Type != nil {
		typ = em.goType(em.an.info.Types[cl].Type)
	}
	return typ + "{" + strings.Join(parts, ", ") + "}"
}

// cellStructLit renders &S{...} for a cellified struct: every field
// becomes an initialized holder.
func (em *emitter) cellStructLit(cl *ast.CompositeLit, si *structInfo) string {
	vals := map[string]ast.Expr{}
	for _, el := range cl.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			em.fail(el.Pos(), "cellified struct literal %s must use keyed fields", si.name)
		}
		vals[kv.Key.(*ast.Ident).Name] = kv.Value
	}
	var parts []string
	for _, fv := range si.fields {
		fname := fv.Name()
		cellName := si.name + "." + fname
		init, has := vals[fname]
		var s string
		switch si.kinds[fname] {
		case kPlain:
			if !has {
				continue
			}
			s = em.exprStr(init)
		case kCell:
			if has {
				s = fmt.Sprintf("sched.NewVarOf[%s](g, %q, %s)", em.goType(fv.Type()), cellName, em.exprStr(init))
			} else {
				s = fmt.Sprintf("sched.NewVar[%s](g, %q)", em.goType(fv.Type()), cellName)
			}
		case kAtomic:
			s = fmt.Sprintf("sched.NewAtomic(g, %q)", cellName)
		case kSlice:
			elem := em.goType(fv.Type().Underlying().(*types.Slice).Elem())
			if has {
				s = fmt.Sprintf("sched.NewSliceOf[%s](g, %q, %s)", elem, cellName, em.exprStr(init))
			} else {
				s = fmt.Sprintf("sched.NewSlice[%s](g, %q, 0)", elem, cellName)
			}
		case kMap:
			mt := fv.Type().Underlying().(*types.Map)
			if has {
				em.fail(init.Pos(), "map field initializer in cellified struct literal unsupported")
			}
			s = fmt.Sprintf("sched.NewMap[%s, %s](g, %q)", em.goType(mt.Key()), em.goType(mt.Elem()), cellName)
		case kMutex:
			s = fmt.Sprintf("sched.NewMutex(g, %q)", cellName)
		case kRW:
			s = fmt.Sprintf("sched.NewRWMutex(g, %q)", cellName)
		case kWG:
			s = fmt.Sprintf("sched.NewWaitGroup(g, %q)", cellName)
		case kOnce:
			s = fmt.Sprintf("sched.NewOnce(g, %q)", cellName)
		case kChan:
			if has {
				em.fail(init.Pos(), "channel field initializer in cellified struct literal unsupported; make it in code")
			}
			s = "nil"
		}
		parts = append(parts, fname+": "+s)
	}
	return "&" + si.name + "{" + strings.Join(parts, ", ") + "}"
}

// renderFuncLit renders a function literal with an instrumented body.
// Literals capture g lexically, so their signatures carry no g param.
func (em *emitter) renderFuncLit(lit *ast.FuncLit) string {
	sig := em.an.info.Types[lit].Type.(*types.Signature)
	header := em.litHeader(lit, sig)

	saved := em.buf
	em.buf = bytes.Buffer{}
	em.buf.WriteString(header + " {\n")
	em.ind++
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if p.Name() != "" && p.Name() != "_" {
			em.promoteLocal(p, p.Name(), p.Name())
		}
	}
	savedResults := em.curResults
	em.curResults = nil
	em.stmtList(lit.Body.List)
	em.curResults = savedResults
	em.ind--
	em.buf.WriteString(strings.Repeat("\t", em.ind) + "}")
	out := em.buf.String()
	em.buf = saved
	return out
}

// litHeader renders a function literal's signature (named results are
// kept, so bare returns stay valid).
func (em *emitter) litHeader(lit *ast.FuncLit, sig *types.Signature) string {
	var params []string
	i := 0
	for _, f := range lit.Type.Params.List {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for j := 0; j < n; j++ {
			p := sig.Params().At(i)
			name := p.Name()
			if name == "" {
				name = "_"
			}
			t := em.goType(p.Type())
			if sig.Variadic() && i == sig.Params().Len()-1 {
				t = "..." + em.goType(p.Type().(*types.Slice).Elem())
			}
			params = append(params, name+" "+t)
			i++
		}
	}
	res := ""
	if n := sig.Results().Len(); n > 0 {
		named := sig.Results().At(0).Name() != ""
		var parts []string
		for i := 0; i < n; i++ {
			rv := sig.Results().At(i)
			if named {
				if em.an.kinds[rv] != kPlain {
					em.fail(lit.Pos(), "captured named result %s in function literal unsupported", rv.Name())
				}
				parts = append(parts, rv.Name()+" "+em.goType(rv.Type()))
			} else {
				parts = append(parts, em.goType(rv.Type()))
			}
		}
		if len(parts) == 1 && !named {
			res = " " + parts[0]
		} else {
			res = " (" + strings.Join(parts, ", ") + ")"
		}
	}
	return "func(" + strings.Join(params, ", ") + ")" + res
}
