package instrument

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// goldenCases drives TestGolden: each instruments one fixture from
// testdata/src and compares against testdata/golden.
var goldenCases = []struct {
	name     string // fixture and golden basename
	src      string // source file under testdata/src
	prog     string // generated Prog name
	coalesce bool
}{
	{name: "counter", src: "counter.go", prog: "Counter"},
	{name: "mutexdemo", src: "mutexdemo.go", prog: "MutexDemo"},
	{name: "chans", src: "chans.go", prog: "Chans"},
	{name: "atomics", src: "atomics.go", prog: "Atomics"},
	{name: "coalesce_off", src: "coalesce.go", prog: "CoalesceOff"},
	{name: "coalesce_on", src: "coalesce.go", prog: "CoalesceOn", coalesce: true},
	{name: "collections", src: "collections.go", prog: "Collections"},
	{name: "structs", src: "structs.go", prog: "Structs"},
}

func TestGolden(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("testdata", "src", tc.src))
			if err != nil {
				t.Fatal(err)
			}
			out, err := Files(map[string]string{tc.src: string(src)}, Options{
				ProgName: tc.prog, Entry: "Run", Coalesce: tc.coalesce,
			})
			if err != nil {
				t.Fatalf("instrument %s: %v", tc.src, err)
			}
			goldenPath := filepath.Join("testdata", "golden", tc.name+".go")
			if *update {
				if err := os.WriteFile(goldenPath, out.Source, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run go test -run TestGolden -update): %v", err)
			}
			if string(want) != string(out.Source) {
				t.Errorf("generated source differs from %s;\n--- got ---\n%s\nrun with -update after verifying", goldenPath, out.Source)
			}
		})
	}
}

// TestGoldenDeterministic pins byte-identical output across repeated
// runs (map iteration anywhere in the pipeline would break this).
func TestGoldenDeterministic(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "src", "collections.go"))
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{ProgName: "Collections", Entry: "Run", Coalesce: true}
	first, err := Files(map[string]string{"collections.go": string(src)}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := Files(map[string]string{"collections.go": string(src)}, opts)
		if err != nil {
			t.Fatal(err)
		}
		if string(again.Source) != string(first.Source) {
			t.Fatalf("run %d produced different bytes", i)
		}
	}
}

// TestCoalescePass checks that coalescing actually removes per-access
// traffic: the coalesced Step body must hold one Load and one Store
// per cell run, not one per statement.
func TestCoalescePass(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "src", "coalesce.go"))
	if err != nil {
		t.Fatal(err)
	}
	off, err := Files(map[string]string{"coalesce.go": string(src)}, Options{ProgName: "C", Entry: "Run"})
	if err != nil {
		t.Fatal(err)
	}
	on, err := Files(map[string]string{"coalesce.go": string(src)}, Options{ProgName: "C", Entry: "Run", Coalesce: true})
	if err != nil {
		t.Fatal(err)
	}
	if no, nc := strings.Count(string(off.Source), ".Load(g)"), strings.Count(string(on.Source), ".Load(g)"); nc >= no {
		t.Errorf("coalescing did not reduce loads: %d -> %d", no, nc)
	}
	if no, nc := strings.Count(string(off.Source), ".Store(g"), strings.Count(string(on.Source), ".Store(g"); nc >= no {
		t.Errorf("coalescing did not reduce stores: %d -> %d", no, nc)
	}
}

// TestRejectsUnsupported pins positioned subset-violation errors.
func TestRejectsUnsupported(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{
			name: "generic-func",
			src:  "package p\nfunc Max[T int](a, b T) T { if a > b { return a }; return b }\nfunc Run() {}\n",
			want: "generic function",
		},
		{
			name: "unsupported-import",
			src:  "package p\nimport \"os\"\nfunc Run() { _ = os.Args }\n",
			want: "unsupported import",
		},
		{
			name: "missing-entry",
			src:  "package p\nfunc Other() {}\n",
			want: "entry function",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Files(map[string]string{"p.go": tc.src}, Options{ProgName: "P", Entry: "Run"})
			if err == nil {
				t.Fatal("expected an error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
