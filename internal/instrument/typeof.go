package instrument

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// goType renders a subject type in the generated program's vocabulary:
// pointers to basics become cell pointers, channels become modeled
// channels, imported names record their import.
func (em *emitter) goType(t types.Type) string {
	switch t := t.(type) {
	case *types.Basic:
		if t.Info()&types.IsUntyped != 0 {
			return em.goType(types.Default(t))
		}
		return t.Name()
	case *types.Named:
		switch syncKind(t) {
		case kMutex:
			return "*sched.Mutex"
		case kRW:
			return "*sched.RWMutex"
		case kWG:
			return "*sched.WaitGroup"
		case kOnce:
			return "*sched.Once"
		}
		obj := t.Obj()
		if obj.Pkg() == nil || obj.Pkg() == em.an.pkg {
			return obj.Name()
		}
		em.imports[obj.Pkg().Path()] = true
		return obj.Pkg().Name() + "." + obj.Name()
	case *types.Pointer:
		// Sync primitives are already pointers in the model: *sync.Mutex
		// and sync.Mutex both become *sched.Mutex.
		if syncKind(t.Elem()) != kPlain {
			return em.goType(t.Elem())
		}
		if _, ok := t.Elem().Underlying().(*types.Basic); ok {
			return "*sched.Var[" + em.goType(t.Elem()) + "]"
		}
		return "*" + em.goType(t.Elem())
	case *types.Slice:
		return "[]" + em.goType(t.Elem())
	case *types.Array:
		return fmt.Sprintf("[%d]%s", t.Len(), em.goType(t.Elem()))
	case *types.Map:
		return "map[" + em.goType(t.Key()) + "]" + em.goType(t.Elem())
	case *types.Chan:
		return "*sched.Chan[" + em.goType(t.Elem()) + "]"
	case *types.Signature:
		return em.funcType(t)
	case *types.Interface:
		if t.Empty() {
			return "any"
		}
	}
	panic(emitErr{fmt.Errorf("instrument: unsupported type %s", t)})
}

// funcType renders a plain function type (literal-style: no g param —
// literals capture g lexically).
func (em *emitter) funcType(sig *types.Signature) string {
	var params []string
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if sig.Variadic() && i == sig.Params().Len()-1 {
			params = append(params, "..."+em.goType(p.Type().(*types.Slice).Elem()))
			continue
		}
		params = append(params, em.goType(p.Type()))
	}
	return "func(" + strings.Join(params, ", ") + ")" + em.resultTypes(sig)
}

// holderType renders the generated representation of one variable.
func (em *emitter) holderType(kind varKind, t types.Type) string {
	switch kind {
	case kCell:
		return "*sched.Var[" + em.goType(t) + "]"
	case kAtomic:
		return "*sched.Atomic"
	case kMutex:
		return "*sched.Mutex"
	case kRW:
		return "*sched.RWMutex"
	case kWG:
		return "*sched.WaitGroup"
	case kOnce:
		return "*sched.Once"
	case kChan:
		return "*sched.Chan[" + em.goType(t.Underlying().(*types.Chan).Elem()) + "]"
	case kMap:
		mt := t.Underlying().(*types.Map)
		return "*sched.Map[" + em.goType(mt.Key()) + ", " + em.goType(mt.Elem()) + "]"
	case kSlice:
		return "*sched.Slice[" + em.goType(t.Underlying().(*types.Slice).Elem()) + "]"
	}
	return em.goType(t)
}

// sigType renders a rewritten function variable's type: g first.
func (em *emitter) sigType(sig *types.Signature) string {
	params := append([]string{"g *sched.G"}, em.typedParams(sig)...)
	return "func(" + strings.Join(params, ", ") + ")" + em.resultTypes(sig)
}

// methodSigType renders a lifted method variable's type: g, then the
// receiver, then the parameters.
func (em *emitter) methodSigType(sig *types.Signature) string {
	params := []string{"g *sched.G", "_ " + em.goType(sig.Recv().Type())}
	params = append(params, em.typedParams(sig)...)
	return "func(" + strings.Join(params, ", ") + ")" + em.resultTypes(sig)
}

// typedParams renders sig's parameter types (blank-named, since the g
// parameter before them is named).
func (em *emitter) typedParams(sig *types.Signature) []string {
	var out []string
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if sig.Variadic() && i == sig.Params().Len()-1 {
			out = append(out, "_ ..."+em.goType(p.Type().(*types.Slice).Elem()))
			continue
		}
		out = append(out, "_ "+em.goType(p.Type()))
	}
	return out
}

// cellField resolves a selector to a cellified-struct field kind.
func (em *emitter) cellField(sel *ast.SelectorExpr) (varKind, bool) {
	s, ok := em.an.info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return kPlain, false
	}
	si := em.cellStructOf(s.Recv())
	if si == nil {
		return kPlain, false
	}
	k, ok := si.kinds[sel.Sel.Name]
	if !ok {
		return kPlain, false
	}
	return k, true
}

// cellStructOf resolves a type (through one pointer) to its cellified
// struct info, or nil.
func (em *emitter) cellStructOf(t types.Type) *structInfo {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return em.an.cellStructs[named.Obj()]
}

// exprKind reports the modeled kind of the variable or field an
// expression denotes.
func (em *emitter) exprKind(e ast.Expr) varKind {
	switch x := e.(type) {
	case *ast.Ident:
		return em.an.kindOf(x)
	case *ast.SelectorExpr:
		if k, ok := em.cellField(x); ok {
			return k
		}
	case *ast.ParenExpr:
		return em.exprKind(x.X)
	}
	return kPlain
}

// baseObj renders the holder expression for a modeled container, or ""
// when e is not a direct variable/field reference.
func (em *emitter) baseObj(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if _, ok := em.cellField(x); ok {
			return em.exprStr(x.X) + "." + x.Sel.Name
		}
	case *ast.ParenExpr:
		return em.baseObj(x.X)
	}
	return ""
}

// baseObjExpr is baseObj or a positioned failure.
func (em *emitter) baseObjExpr(e ast.Expr) string {
	if s := em.baseObj(e); s != "" {
		return s
	}
	em.fail(e.Pos(), "unsupported container expression")
	return ""
}

// isCellPtr reports whether e's static type is pointer-to-basic (its
// generated representation is a cell pointer).
func (em *emitter) isCellPtr(e ast.Expr) bool {
	t := em.an.info.Types[e].Type
	if t == nil {
		return false
	}
	p, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	_, basic := p.Elem().Underlying().(*types.Basic)
	return basic
}

// hoistInner pre-evaluates channel receives and map reads nested in e
// into temps, recording them in em.replaced (innermost first).
func (em *emitter) hoistInner(e ast.Expr, _ bool) {
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil {
			return
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return
		}
		children(n, walk)
		switch x := n.(type) {
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				if _, done := em.replaced[ast.Expr(x)]; !done {
					tv := em.tmp("r")
					em.line("%s, _ := %s.Recv(g)", tv, em.exprStr(x.X))
					em.replaced[x] = tv
				}
			}
		case *ast.IndexExpr:
			if em.exprKind(x.X) == kMap {
				if _, done := em.replaced[ast.Expr(x)]; !done {
					tv := em.tmp("v")
					em.line("%s, _ := %s.Get(g, %s)", tv, em.baseObjExpr(x.X), em.exprStr(x.Index))
					em.replaced[x] = tv
				}
			}
		}
	}
	walk(e)
}

// needsHoist reports whether e contains a receive or map read outside
// any function literal.
func (em *emitter) needsHoist(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.IndexExpr:
			if em.exprKind(x.X) == kMap {
				found = true
			}
		}
		return !found
	})
	return found
}

// interesting reports whether any part of n needs rewriting; verbatim
// passthrough is used otherwise.
func (em *emitter) interesting(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		switch c := c.(type) {
		case *ast.GoStmt, *ast.SelectStmt, *ast.SendStmt:
			found = true
		case *ast.Ident:
			if em.an.kindOf(c) != kPlain {
				found = true
			}
			if f, ok := em.an.info.Uses[c].(*types.Func); ok && f.Pkg() == em.an.pkg {
				found = true
			}
		case *ast.SelectorExpr:
			if s, ok := em.an.info.Selections[c]; ok {
				if f, isF := s.Obj().(*types.Func); isF && f.Pkg() == em.an.pkg {
					found = true
				}
			}
			if _, cell := em.cellField(c); cell {
				found = true
			}
		case *ast.StarExpr:
			if em.isCellPtr(c.X) {
				found = true
			}
		case *ast.UnaryExpr:
			if c.Op == token.ARROW {
				found = true
			}
		case *ast.CompositeLit:
			if em.cellStructOf(em.an.info.Types[c].Type) != nil {
				found = true
			}
		case *ast.CallExpr:
			if pkgSel(em.an.info, c, "atomic") != "" {
				found = true
			}
		}
		return !found
	})
	return found
}

// containsReturn reports whether s contains a return outside any
// function literal (such statements cannot pass through verbatim in
// functions whose named results were lowered).
func containsReturn(s ast.Stmt) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			found = true
		}
		return !found
	})
	return found
}
