package instrument

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// loopBind prepares the binding of one range variable. Shared loop
// variables follow go1.21 semantics: ONE cell per loop, stored each
// iteration — the classic captured-loop-variable race shape.
func (em *emitter) loopBind(e ast.Expr) func(tmp string) {
	if e == nil {
		return func(string) {}
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		em.fail(e.Pos(), "range variable must be an identifier")
	}
	if id.Name == "_" {
		return func(string) {}
	}
	v := em.an.varOf(id)
	switch em.an.kinds[v] {
	case kPlain:
		return func(tmp string) {
			em.line("%s := %s", id.Name, tmp)
			em.line("_ = %s", id.Name)
		}
	case kCell:
		em.line("%s := sched.NewVar[%s](g, %q)", id.Name, em.goType(v.Type()), id.Name)
		return func(tmp string) {
			em.line("%s.Store(g, %s)", id.Name, tmp)
		}
	}
	em.fail(id.Pos(), "unsupported range variable kind for %s", id.Name)
	return nil
}

// rangeStmt lowers range loops over modeled channels, slices, and
// maps; plain ranges keep their header but bind shared loop variables
// through cells.
func (em *emitter) rangeStmt(s *ast.RangeStmt) {
	if s.Tok == token.ASSIGN {
		em.fail(s.Pos(), "range with = assignment unsupported")
	}
	switch em.exprKind(s.X) {
	case kChan:
		base := em.baseObjExpr(s.X)
		em.line("for {")
		em.ind++
		tv, tok := em.tmp("v"), em.tmp("ok")
		em.line("%s, %s := %s.Recv(g)", tv, tok, base)
		em.line("if !%s {", tok)
		em.line("\tbreak")
		em.line("}")
		bind := em.loopBind(s.Key)
		bind(tv)
		em.stmtList(s.Body.List)
		em.ind--
		em.line("}")
	case kSlice:
		base := em.baseObjExpr(s.X)
		n := em.tmp("n")
		em.line("%s := %s.Len(g)", n, base)
		bindKey := em.loopBind(s.Key)
		bindVal := em.loopBind(s.Value)
		i := em.tmp("i")
		em.line("for %s := 0; %s < %s; %s++ {", i, i, n, i)
		em.ind++
		bindKey(i)
		if s.Value != nil {
			ev := em.tmp("e")
			em.line("%s := %s.Get(g, %s)", ev, base, i)
			bindVal(ev)
		}
		em.stmtList(s.Body.List)
		em.ind--
		em.line("}")
	case kMap:
		base := em.baseObjExpr(s.X)
		bindKey := em.loopBind(s.Key)
		bindVal := em.loopBind(s.Value)
		k := em.tmp("k")
		em.line("for _, %s := range %s.Keys(g) {", k, base)
		em.ind++
		bindKey(k)
		if s.Value != nil {
			ev := em.tmp("e")
			em.line("%s, _ := %s.Get(g, %s)", ev, base, k)
			bindVal(ev)
		}
		em.stmtList(s.Body.List)
		em.ind--
		em.line("}")
	default:
		bindKey := em.loopBind(s.Key)
		bindVal := em.loopBind(s.Value)
		kt, vt := "_", ""
		if s.Key != nil {
			kt = em.tmp("k")
		}
		if s.Value != nil {
			vt = em.tmp("v")
		}
		hdr := "for " + kt
		if vt != "" {
			hdr += ", " + vt
		}
		hdr += " := range " + em.exprStr(s.X)
		if s.Key == nil {
			hdr = "for range " + em.exprStr(s.X)
		}
		em.line("%s {", hdr)
		em.ind++
		if kt != "_" {
			bindKey(kt)
		}
		if vt != "" {
			bindVal(vt)
		}
		em.stmtList(s.Body.List)
		em.ind--
		em.line("}")
	}
}

// switchStmt emits an expression switch; the init and any hoists live
// in a wrapper block.
func (em *emitter) switchStmt(s *ast.SwitchStmt) {
	wrap := s.Init != nil || (s.Tag != nil && em.needsHoist(s.Tag))
	if wrap {
		em.line("{")
		em.ind++
		if s.Init != nil {
			em.stmt(s.Init)
		}
		if s.Tag != nil {
			em.hoistInner(s.Tag, false)
		}
	}
	hdr := "switch"
	if s.Tag != nil {
		hdr += " " + em.exprStr(s.Tag)
	}
	em.line("%s {", hdr)
	for _, c := range s.Body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			em.line("default:")
		} else {
			var parts []string
			for _, e := range cc.List {
				if em.needsHoist(e) {
					em.fail(e.Pos(), "channel/map operation in a case expression unsupported")
				}
				parts = append(parts, em.exprStr(e))
			}
			em.line("case %s:", strings.Join(parts, ", "))
		}
		em.ind++
		em.stmtList(cc.Body)
		em.ind--
	}
	em.line("}")
	if wrap {
		em.ind--
		em.line("}")
	}
}

// selectStmt lowers select onto g.Select with one SelectCase per
// clause. Case bodies run as closures: returns and labeled branches
// inside them are rejected; a plain break is dropped.
func (em *emitter) selectStmt(s *ast.SelectStmt) {
	em.line("g.Select(")
	em.ind++
	for _, c := range s.Body.List {
		cc := c.(*ast.CommClause)
		body := em.selectBody(cc.Body)
		switch comm := cc.Comm.(type) {
		case nil:
			em.line("sched.Default(func() {")
		case *ast.SendStmt:
			if em.needsHoist(comm.Chan) || em.needsHoist(comm.Value) {
				em.fail(comm.Pos(), "nested channel/map operation in select send unsupported")
			}
			em.line("sched.OnSend(%s, %s, func() {", em.baseObjExpr(comm.Chan), em.exprStr(comm.Value))
		case *ast.ExprStmt:
			u, ok := comm.X.(*ast.UnaryExpr)
			if !ok || u.Op != token.ARROW {
				em.fail(comm.Pos(), "unsupported select clause")
			}
			em.line("sched.OnRecv(%s, func(_ %s, _ bool) {", em.baseObjExpr(u.X), em.chanElem(u.X))
		case *ast.AssignStmt:
			if comm.Tok != token.DEFINE {
				em.fail(comm.Pos(), "select receive must use :=")
			}
			u := comm.Rhs[0].(*ast.UnaryExpr)
			vn, okn := "_", "_"
			if id := comm.Lhs[0].(*ast.Ident); id.Name != "_" {
				vn = id.Name
			}
			if len(comm.Lhs) == 2 {
				if id := comm.Lhs[1].(*ast.Ident); id.Name != "_" {
					okn = id.Name
				}
			}
			em.line("sched.OnRecv(%s, func(%s %s, %s bool) {", em.baseObjExpr(u.X), vn, em.chanElem(u.X), okn)
			for _, l := range comm.Lhs {
				id := l.(*ast.Ident)
				if v := em.an.varOf(id); v != nil && em.an.kinds[v] != kPlain && id.Name != "_" {
					em.fail(id.Pos(), "select receive into a captured variable unsupported")
				}
			}
		default:
			em.fail(cc.Pos(), "unsupported select clause %T", cc.Comm)
		}
		em.ind++
		em.stmtList(body)
		em.ind--
		em.line("}),")
	}
	em.ind--
	em.line(")")
}

// chanElem renders the element type of a channel expression.
func (em *emitter) chanElem(ch ast.Expr) string {
	t := em.an.info.Types[ch].Type
	if c, ok := t.Underlying().(*types.Chan); ok {
		return em.goType(c.Elem())
	}
	em.fail(ch.Pos(), "expected a channel expression")
	return ""
}

// selectBody validates a select case body and strips the trailing
// plain break.
func (em *emitter) selectBody(body []ast.Stmt) []ast.Stmt {
	var out []ast.Stmt
	for _, st := range body {
		if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.BREAK && br.Label == nil {
			continue
		}
		ast.Inspect(st, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				em.fail(n.Pos(), "return inside a select case unsupported")
			case *ast.BranchStmt:
				if n.Label != nil {
					em.fail(n.Pos(), "labeled branch inside a select case unsupported")
				}
			}
			return true
		})
		out = append(out, st)
	}
	return out
}
