package instrument

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// stmt emits one statement. Statements whose subtree touches nothing
// instrumented pass through verbatim.
func (em *emitter) stmt(s ast.Stmt) {
	// Functions with named results have them lowered out of the
	// signature, so any return must be rewritten even in otherwise
	// plain code.
	forced := len(em.curResults) > 0 && containsReturn(s)
	if !forced && !em.interesting(s) {
		for _, ln := range strings.Split(em.origPrint(s), "\n") {
			em.line("%s", ln)
		}
		return
	}
	prevReplaced := em.replaced
	em.replaced = map[ast.Expr]string{}
	defer func() { em.replaced = prevReplaced }()

	switch s := s.(type) {
	case *ast.AssignStmt:
		em.assign(s)
	case *ast.DeclStmt:
		em.declStmt(s)
	case *ast.IncDecStmt:
		em.incDec(s)
	case *ast.ExprStmt:
		em.exprStmt(s)
	case *ast.SendStmt:
		em.hoistInner(s.Chan, false)
		em.hoistInner(s.Value, false)
		em.line("%s.Send(g, %s)", em.exprStr(s.Chan), em.exprStr(s.Value))
	case *ast.GoStmt:
		em.goStmt(s)
	case *ast.DeferStmt:
		em.deferStmt(s)
	case *ast.ReturnStmt:
		em.returnStmt(s)
	case *ast.IfStmt:
		em.ifStmt(s)
	case *ast.ForStmt:
		em.forStmt(s)
	case *ast.RangeStmt:
		em.rangeStmt(s)
	case *ast.SwitchStmt:
		em.switchStmt(s)
	case *ast.SelectStmt:
		em.selectStmt(s)
	case *ast.BlockStmt:
		em.block(s)
	case *ast.LabeledStmt:
		em.line("%s:", s.Label.Name)
		em.stmt(s.Stmt)
	case *ast.BranchStmt:
		em.line("%s", em.origPrint(s))
	case *ast.EmptyStmt:
	default:
		em.fail(s.Pos(), "unsupported statement %T", s)
	}
}

// exprStmt emits a top-level expression statement.
func (em *emitter) exprStmt(s *ast.ExprStmt) {
	if u, ok := s.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
		em.hoistInner(u.X, false)
		em.line("%s.Recv(g)", em.exprStr(u.X))
		return
	}
	em.hoistInner(s.X, true)
	em.line("%s", em.exprStr(s.X))
}

// assign emits an assignment, dispatching over the supported shapes.
func (em *emitter) assign(s *ast.AssignStmt) {
	// v := <-ch / v, ok := <-ch
	if len(s.Rhs) == 1 {
		if u, ok := s.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			em.recvAssign(s, u.X)
			return
		}
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
			if em.makeAssign(s, call) {
				return
			}
			if em.appendAssign(s, call) {
				return
			}
		}
		if ix, ok := s.Rhs[0].(*ast.IndexExpr); ok && em.exprKind(ix.X) == kMap {
			em.mapReadAssign(s, ix)
			return
		}
		if sl, ok := s.Rhs[0].(*ast.SliceExpr); ok && em.exprKind(sl.X) == kSlice {
			em.truncateAssign(s, sl)
			return
		}
	}

	// Compound ops: x op= e.
	if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
		em.opAssign(s)
		return
	}

	// Hoist receives/map-reads buried in RHS expressions.
	for _, r := range s.Rhs {
		em.hoistInner(r, false)
	}

	if s.Tok == token.DEFINE {
		em.define(s)
		return
	}
	em.plainAssign(s)
}

// recvAssign emits `v[, ok] :=/= <-ch`.
func (em *emitter) recvAssign(s *ast.AssignStmt, ch ast.Expr) {
	em.hoistInner(ch, false)
	chs := em.exprStr(ch)
	if s.Tok == token.DEFINE {
		names := make([]string, len(s.Lhs))
		for i, l := range s.Lhs {
			id := l.(*ast.Ident)
			names[i] = id.Name
			if em.an.kindOf(id) != kPlain && id.Name != "_" {
				names[i] = em.tmp("r")
			}
		}
		if len(names) == 1 {
			names = append(names, "_")
		}
		em.line("%s := %s.Recv(g)", strings.Join(names, ", "), chs)
		for i, l := range s.Lhs {
			id := l.(*ast.Ident)
			if v := em.an.varOf(id); v != nil && em.an.kinds[v] != kPlain {
				em.promoteLocal(v, id.Name, names[i])
			}
		}
		return
	}
	// Assignment to existing locations: receive into temps, then store.
	tv, tok := em.tmp("v"), "_"
	if len(s.Lhs) == 2 {
		tok = em.tmp("ok")
	}
	em.line("%s, %s := %s.Recv(g)", tv, tok, chs)
	em.storeTo(s.Lhs[0], tv)
	if len(s.Lhs) == 2 {
		em.storeTo(s.Lhs[1], tok)
	}
}

// makeAssign handles `x := make(...)` / `x = make(...)` for modeled
// kinds; returns false if the make is plain (or not a make).
func (em *emitter) makeAssign(s *ast.AssignStmt, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	if len(s.Lhs) != 1 {
		return false
	}
	lhs, ok := s.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	t := em.an.info.Types[call.Args[0]].Type
	switch u := t.Underlying().(type) {
	case *types.Chan:
		capStr := "0"
		if len(call.Args) > 1 {
			capStr = em.exprStr(call.Args[1])
		}
		em.defineOrAssign(s.Tok, lhs.Name,
			fmt.Sprintf("sched.NewChan[%s](g, %q, %s)", em.goType(u.Elem()), lhs.Name, capStr))
		return true
	case *types.Map:
		if em.an.kindOf(lhs) != kMap {
			return false
		}
		em.defineOrAssign(s.Tok, lhs.Name,
			fmt.Sprintf("sched.NewMap[%s, %s](g, %q)", em.goType(u.Key()), em.goType(u.Elem()), lhs.Name))
		return true
	case *types.Slice:
		if em.an.kindOf(lhs) != kSlice {
			return false
		}
		lenStr := "0"
		if len(call.Args) > 1 {
			lenStr = em.exprStr(call.Args[1])
		}
		em.defineOrAssign(s.Tok, lhs.Name,
			fmt.Sprintf("sched.NewSlice[%s](g, %q, %s)", em.goType(u.Elem()), lhs.Name, lenStr))
		return true
	}
	return false
}

func (em *emitter) defineOrAssign(tok token.Token, name, rhs string) {
	op := "="
	if tok == token.DEFINE {
		op = ":="
	}
	em.line("%s %s %s", name, op, rhs)
}

// appendAssign handles `s = append(s, ...)` on modeled slices;
// returns false for plain appends.
func (em *emitter) appendAssign(s *ast.AssignStmt, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	base := em.baseObj(call.Args[0])
	if base == "" || em.exprKind(call.Args[0]) != kSlice {
		return false
	}
	if s.Tok == token.DEFINE {
		em.fail(s.Pos(), "append on a modeled slice must reassign the same variable")
	}
	lhsStr := em.baseObj(s.Lhs[0])
	if lhsStr != base {
		em.fail(s.Pos(), "append on a modeled slice must reassign the same variable")
	}
	if call.Ellipsis != token.NoPos {
		src := call.Args[1]
		var vals string
		if em.exprKind(src) == kSlice {
			vals = em.baseObjExpr(src) + ".Values(g)"
		} else {
			vals = em.exprStr(src)
		}
		tv := em.tmp("v")
		em.line("for _, %s := range %s {", tv, vals)
		em.ind++
		em.line("%s.Append(g, %s)", base, tv)
		em.ind--
		em.line("}")
		return true
	}
	for _, a := range call.Args[1:] {
		em.hoistInner(a, false)
		em.line("%s.Append(g, %s)", base, em.exprStr(a))
	}
	return true
}

// truncateAssign handles `s = s[:n]` on modeled slices.
func (em *emitter) truncateAssign(s *ast.AssignStmt, sl *ast.SliceExpr) {
	base := em.baseObj(sl.X)
	if base == "" || len(s.Lhs) != 1 || em.baseObj(s.Lhs[0]) != base {
		em.fail(s.Pos(), "slice expression on a modeled slice only supported as s = s[:n]")
	}
	if sl.Low != nil || sl.High == nil || sl.Max != nil {
		em.fail(s.Pos(), "slice expression on a modeled slice only supported as s = s[:n]")
	}
	em.hoistInner(sl.High, false)
	em.line("%s.Truncate(g, %s)", base, em.exprStr(sl.High))
}

// mapReadAssign emits `v[, ok] :=/= m[k]`.
func (em *emitter) mapReadAssign(s *ast.AssignStmt, ix *ast.IndexExpr) {
	em.hoistInner(ix.Index, false)
	get := fmt.Sprintf("%s.Get(g, %s)", em.baseObjExpr(ix.X), em.exprStr(ix.Index))
	if s.Tok == token.DEFINE {
		names := make([]string, len(s.Lhs))
		for i, l := range s.Lhs {
			names[i] = l.(*ast.Ident).Name
		}
		if len(names) == 1 {
			names = append(names, "_")
		}
		em.line("%s := %s", strings.Join(names, ", "), get)
		for _, l := range s.Lhs {
			id := l.(*ast.Ident)
			if v := em.an.varOf(id); v != nil && em.an.kinds[v] != kPlain {
				em.fail(s.Pos(), "shared variable %s cannot be bound by map read directly", id.Name)
			}
		}
		return
	}
	tv, tok := em.tmp("v"), "_"
	if len(s.Lhs) == 2 {
		tok = em.tmp("ok")
	}
	em.line("%s, %s := %s", tv, tok, get)
	em.storeTo(s.Lhs[0], tv)
	if len(s.Lhs) == 2 {
		em.storeTo(s.Lhs[1], tok)
	}
}

// opAssign emits `lhs op= rhs` for instrumented targets.
func (em *emitter) opAssign(s *ast.AssignStmt) {
	op := strings.TrimSuffix(s.Tok.String(), "=")
	lhs, rhs := s.Lhs[0], s.Rhs[0]
	em.hoistInner(rhs, false)
	rs := em.exprStr(rhs)
	switch l := lhs.(type) {
	case *ast.Ident:
		v := em.an.varOf(l)
		switch em.an.kindOf(l) {
		case kPlain:
			em.line("%s %s= %s", l.Name, op, rs)
		case kCell:
			if t, ok := em.subst[v]; ok {
				em.substDirty[v] = true
				em.line("%s = %s %s (%s)", t, t, op, rs)
				return
			}
			em.line("%s.Store(g, %s.Load(g) %s (%s))", l.Name, l.Name, op, rs)
		case kAtomic:
			em.line("%s.PlainStore(g, %s.PlainLoad(g) %s (%s))", l.Name, l.Name, op, rs)
		default:
			em.fail(s.Pos(), "compound assignment unsupported for this kind")
		}
	case *ast.IndexExpr:
		switch em.exprKind(l.X) {
		case kMap:
			b := em.baseObjExpr(l.X)
			k := em.tmp("k")
			em.line("%s := %s", k, em.exprStr(l.Index))
			tv := em.tmp("v")
			em.line("%s, _ := %s.Get(g, %s)", tv, b, k)
			em.line("%s.Put(g, %s, %s %s (%s))", b, k, tv, op, rs)
		case kSlice:
			b := em.baseObjExpr(l.X)
			i := em.tmp("i")
			em.line("%s := %s", i, em.exprStr(l.Index))
			em.line("%s.Set(g, %s, %s.Get(g, %s) %s (%s))", b, i, b, i, op, rs)
		default:
			em.line("%s %s= %s", em.exprStr(l), op, rs)
		}
	case *ast.SelectorExpr:
		if fk, cell := em.cellField(l); cell && fk == kCell {
			em.line("%s.%s.Store(g, %s.%s.Load(g) %s (%s))",
				em.exprStr(l.X), l.Sel.Name, em.exprStr(l.X), l.Sel.Name, op, rs)
			return
		}
		em.line("%s %s= %s", em.exprStr(l), op, rs)
	case *ast.StarExpr:
		if em.isCellPtr(l.X) {
			p := em.exprStr(l.X)
			em.line("%s.Store(g, %s.Load(g) %s (%s))", p, p, op, rs)
			return
		}
		em.line("*%s %s= %s", em.exprStr(l.X), op, rs)
	default:
		em.fail(s.Pos(), "unsupported compound assignment target %T", lhs)
	}
}

// define emits `lhs... := rhs...`, promoting shared targets to cells.
func (em *emitter) define(s *ast.AssignStmt) {
	// Multi-value call: bind everything to temps first.
	if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
		temps := make([]string, len(s.Lhs))
		for i := range temps {
			temps[i] = em.tmp("t")
		}
		em.line("%s := %s", strings.Join(temps, ", "), em.exprStr(s.Rhs[0]))
		for i, l := range s.Lhs {
			em.defineOne(l.(*ast.Ident), nil, temps[i])
		}
		return
	}
	if len(s.Lhs) != len(s.Rhs) {
		em.fail(s.Pos(), "unbalanced short declaration unsupported")
	}
	// Evaluate all RHS first (Go semantics), then bind.
	anyShared := false
	for _, l := range s.Lhs {
		if id, ok := l.(*ast.Ident); ok && em.an.kindOf(id) != kPlain {
			anyShared = true
		}
	}
	if !anyShared && len(s.Lhs) == 1 {
		id := s.Lhs[0].(*ast.Ident)
		em.line("%s := %s", id.Name, em.exprStr(s.Rhs[0]))
		return
	}
	for i, l := range s.Lhs {
		em.defineOne(l.(*ast.Ident), s.Rhs[i], "")
	}
}

// defineOne declares one variable, from either an expression or an
// already-evaluated temp.
func (em *emitter) defineOne(id *ast.Ident, rhs ast.Expr, temp string) {
	v := em.an.varOf(id)
	if id.Name == "_" || v == nil {
		val := temp
		if rhs != nil {
			val = em.exprStr(rhs)
		}
		em.line("_ = %s", val)
		return
	}
	kind := em.an.kinds[v]
	val := temp
	if rhs != nil {
		val = em.exprStr(rhs)
	}
	switch kind {
	case kPlain:
		em.line("%s := %s", id.Name, val)
	case kCell:
		em.line("%s := sched.NewVarOf[%s](g, %q, %s)", id.Name, em.goType(v.Type()), id.Name, val)
	case kSlice:
		if rhs != nil {
			if cl, ok := rhs.(*ast.CompositeLit); ok {
				em.emitCellInit(id.Name, v, kSlice, cl, token.DEFINE)
				return
			}
		}
		elem := v.Type().Underlying().(*types.Slice).Elem()
		em.line("%s := sched.NewSliceOf[%s](g, %q, %s)", id.Name, em.goType(elem), id.Name, val)
	case kMap:
		if rhs != nil {
			if cl, ok := rhs.(*ast.CompositeLit); ok {
				em.emitCellInit(id.Name, v, kMap, cl, token.DEFINE)
				return
			}
		}
		em.fail(id.Pos(), "shared map %s: only make/literal initialization supported", id.Name)
	default:
		em.fail(id.Pos(), "short declaration unsupported for this kind (declare with var or make)")
	}
}

// plainAssign emits `lhs... = rhs...` (token.ASSIGN).
func (em *emitter) plainAssign(s *ast.AssignStmt) {
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		em.assignOne(s.Lhs[0], s.Rhs[0])
		return
	}
	if len(s.Rhs) == 1 {
		// Multi-value call into existing locations.
		temps := make([]string, len(s.Lhs))
		for i := range temps {
			temps[i] = em.tmp("t")
		}
		em.line("%s := %s", strings.Join(temps, ", "), em.exprStr(s.Rhs[0]))
		for i, l := range s.Lhs {
			em.storeTo(l, temps[i])
		}
		return
	}
	// Parallel assignment: evaluate RHS into temps, then store.
	temps := make([]string, len(s.Rhs))
	for i, r := range s.Rhs {
		temps[i] = em.tmp("t")
		em.line("%s := %s", temps[i], em.exprStr(r))
	}
	for i, l := range s.Lhs {
		em.storeTo(l, temps[i])
	}
}

// assignOne emits a single `lhs = rhs`.
func (em *emitter) assignOne(lhs, rhs ast.Expr) {
	switch l := lhs.(type) {
	case *ast.IndexExpr:
		switch em.exprKind(l.X) {
		case kMap:
			em.line("%s.Put(g, %s, %s)", em.baseObjExpr(l.X), em.exprStr(l.Index), em.exprStr(rhs))
			return
		case kSlice:
			em.line("%s.Set(g, %s, %s)", em.baseObjExpr(l.X), em.exprStr(l.Index), em.exprStr(rhs))
			return
		}
	case *ast.SelectorExpr:
		// s[i].f = v on a modeled slice: read-modify-write the element.
		if ix, ok := l.X.(*ast.IndexExpr); ok && em.exprKind(ix.X) == kSlice {
			b := em.baseObjExpr(ix.X)
			i := em.tmp("i")
			em.line("%s := %s", i, em.exprStr(ix.Index))
			tv := em.tmp("e")
			em.line("%s := %s.Get(g, %s)", tv, b, i)
			em.line("%s.%s = %s", tv, l.Sel.Name, em.exprStr(rhs))
			em.line("%s.Set(g, %s, %s)", b, i, tv)
			return
		}
	}
	em.storeTo(lhs, em.exprStr(rhs))
}

// storeTo emits the store of an evaluated value (as Go source text)
// into an assignable location.
func (em *emitter) storeTo(lhs ast.Expr, val string) {
	switch l := lhs.(type) {
	case *ast.Ident:
		if l.Name == "_" {
			em.line("_ = %s", val)
			return
		}
		v := em.an.varOf(l)
		switch em.an.kindOf(l) {
		case kPlain:
			em.line("%s = %s", l.Name, val)
		case kCell:
			if t, ok := em.subst[v]; ok {
				em.substDirty[v] = true
				em.line("%s = %s", t, val)
				return
			}
			em.line("%s.Store(g, %s)", l.Name, val)
		case kAtomic:
			em.line("%s.PlainStore(g, %s)", l.Name, val)
		case kChan, kMap, kSlice, kMutex, kRW, kWG, kOnce:
			em.line("%s = %s", l.Name, val) // rebinding the object reference
		}
	case *ast.SelectorExpr:
		if fk, cell := em.cellField(l); cell {
			switch fk {
			case kCell:
				em.line("%s.%s.Store(g, %s)", em.exprStr(l.X), l.Sel.Name, val)
			default:
				em.fail(l.Pos(), "cannot reassign cellified field %s", l.Sel.Name)
			}
			return
		}
		em.line("%s.%s = %s", em.exprStr(l.X), l.Sel.Name, val)
	case *ast.StarExpr:
		if em.isCellPtr(l.X) {
			em.line("%s.Store(g, %s)", em.exprStr(l.X), val)
			return
		}
		em.line("*%s = %s", em.exprStr(l.X), val)
	case *ast.IndexExpr:
		switch em.exprKind(l.X) {
		case kMap:
			em.line("%s.Put(g, %s, %s)", em.baseObjExpr(l.X), em.exprStr(l.Index), val)
		case kSlice:
			em.line("%s.Set(g, %s, %s)", em.baseObjExpr(l.X), em.exprStr(l.Index), val)
		default:
			em.line("%s[%s] = %s", em.exprStr(l.X), em.exprStr(l.Index), val)
		}
	default:
		em.fail(lhs.Pos(), "unsupported assignment target %T", lhs)
	}
}

// declStmt emits a local var/const declaration.
func (em *emitter) declStmt(s *ast.DeclStmt) {
	d := s.Decl.(*ast.GenDecl)
	if d.Tok == token.CONST {
		em.line("%s", em.origPrint(d))
		return
	}
	for _, sp := range d.Specs {
		spec := sp.(*ast.ValueSpec)
		for i, name := range spec.Names {
			v := em.an.varOf(name)
			if v == nil {
				continue
			}
			var init ast.Expr
			if i < len(spec.Values) {
				init = spec.Values[i]
			}
			em.emitCellInit(name.Name, v, em.an.kinds[v], init, token.DEFINE)
		}
	}
}

// emitCellInit declares-or-assigns one variable's representation with
// an optional initializer expression.
func (em *emitter) emitCellInit(name string, v *types.Var, kind varKind, init ast.Expr, tok token.Token) {
	if init != nil {
		em.hoistInner(init, false)
	}
	switch kind {
	case kPlain:
		if tok == token.DEFINE {
			if init != nil {
				em.line("var %s %s = %s", name, em.goType(v.Type()), em.exprStr(init))
			} else {
				em.line("var %s %s", name, em.goType(v.Type()))
			}
		} else {
			if init != nil {
				em.line("%s = %s", name, em.exprStr(init))
			}
		}
	case kCell:
		if init != nil {
			em.defineOrAssign(tok, name, fmt.Sprintf("sched.NewVarOf[%s](g, %q, %s)", em.goType(v.Type()), name, em.exprStr(init)))
		} else {
			em.defineOrAssign(tok, name, fmt.Sprintf("sched.NewVar[%s](g, %q)", em.goType(v.Type()), name))
		}
	case kAtomic:
		em.defineOrAssign(tok, name, fmt.Sprintf("sched.NewAtomic(g, %q)", name))
		if init != nil {
			em.line("%s.PlainStore(g, %s)", name, em.exprStr(init))
		}
	case kMutex:
		em.defineOrAssign(tok, name, fmt.Sprintf("sched.NewMutex(g, %q)", name))
	case kRW:
		em.defineOrAssign(tok, name, fmt.Sprintf("sched.NewRWMutex(g, %q)", name))
	case kWG:
		em.defineOrAssign(tok, name, fmt.Sprintf("sched.NewWaitGroup(g, %q)", name))
	case kOnce:
		em.defineOrAssign(tok, name, fmt.Sprintf("sched.NewOnce(g, %q)", name))
	case kChan:
		ct := v.Type().Underlying().(*types.Chan)
		if init == nil {
			if tok == token.DEFINE {
				em.line("var %s *sched.Chan[%s]", name, em.goType(ct.Elem()))
			}
			return
		}
		call, ok := init.(*ast.CallExpr)
		if !ok {
			em.fail(init.Pos(), "channel initializer must be make")
		}
		capStr := "0"
		if len(call.Args) > 1 {
			capStr = em.exprStr(call.Args[1])
		}
		em.defineOrAssign(tok, name, fmt.Sprintf("sched.NewChan[%s](g, %q, %s)", em.goType(ct.Elem()), name, capStr))
	case kSlice:
		st := v.Type().Underlying().(*types.Slice)
		switch init := init.(type) {
		case nil:
			em.defineOrAssign(tok, name, fmt.Sprintf("sched.NewSlice[%s](g, %q, 0)", em.goType(st.Elem()), name))
		case *ast.CompositeLit:
			var elems []string
			for _, e := range init.Elts {
				elems = append(elems, em.exprStr(e))
			}
			em.defineOrAssign(tok, name, fmt.Sprintf("sched.NewSliceOf[%s](g, %q, []%s{\n%s,\n})",
				em.goType(st.Elem()), name, em.goType(st.Elem()), strings.Join(elems, ",\n")))
		case *ast.CallExpr:
			lenStr := "0"
			if len(init.Args) > 1 {
				lenStr = em.exprStr(init.Args[1])
			}
			em.defineOrAssign(tok, name, fmt.Sprintf("sched.NewSlice[%s](g, %q, %s)", em.goType(st.Elem()), name, lenStr))
		default:
			em.fail(init.Pos(), "unsupported shared slice initializer")
		}
	case kMap:
		mt := v.Type().Underlying().(*types.Map)
		em.defineOrAssign(tok, name, fmt.Sprintf("sched.NewMap[%s, %s](g, %q)", em.goType(mt.Key()), em.goType(mt.Elem()), name))
		if cl, ok := init.(*ast.CompositeLit); ok {
			for _, e := range cl.Elts {
				kv := e.(*ast.KeyValueExpr)
				em.line("%s.Put(g, %s, %s)", name, em.exprStr(kv.Key), em.exprStr(kv.Value))
			}
		} else if init != nil {
			if _, isMake := init.(*ast.CallExpr); !isMake {
				em.fail(init.Pos(), "unsupported shared map initializer")
			}
		}
	}
}

// incDec emits x++ / x--.
func (em *emitter) incDec(s *ast.IncDecStmt) {
	op := "+"
	if s.Tok == token.DEC {
		op = "-"
	}
	switch l := s.X.(type) {
	case *ast.Ident:
		v := em.an.varOf(l)
		switch em.an.kindOf(l) {
		case kPlain:
			em.line("%s%s", l.Name, s.Tok)
		case kCell:
			if t, ok := em.subst[v]; ok {
				em.substDirty[v] = true
				em.line("%s%s", t, s.Tok)
				return
			}
			em.line("%s.Store(g, %s.Load(g) %s 1)", l.Name, l.Name, op)
		case kAtomic:
			em.line("%s.PlainStore(g, %s.PlainLoad(g) %s 1)", l.Name, l.Name, op)
		default:
			em.fail(s.Pos(), "unsupported ++/-- target kind")
		}
	case *ast.SelectorExpr:
		if fk, cell := em.cellField(l); cell && fk == kCell {
			em.line("%s.%s.Store(g, %s.%s.Load(g) %s 1)", em.exprStr(l.X), l.Sel.Name, em.exprStr(l.X), l.Sel.Name, op)
			return
		}
		em.line("%s%s", em.exprStr(l), s.Tok)
	case *ast.IndexExpr:
		switch em.exprKind(l.X) {
		case kMap:
			b := em.baseObjExpr(l.X)
			k := em.tmp("k")
			em.line("%s := %s", k, em.exprStr(l.Index))
			tv := em.tmp("v")
			em.line("%s, _ := %s.Get(g, %s)", tv, b, k)
			em.line("%s.Put(g, %s, %s%s1)", b, k, tv, op)
		case kSlice:
			b := em.baseObjExpr(l.X)
			i := em.tmp("i")
			em.line("%s := %s", i, em.exprStr(l.Index))
			em.line("%s.Set(g, %s, %s.Get(g, %s)%s1)", b, i, b, i, op)
		default:
			em.line("%s%s", em.exprStr(l), s.Tok)
		}
	default:
		em.fail(s.Pos(), "unsupported ++/-- target %T", s.X)
	}
}

// goStmt emits a goroutine spawn: arguments are hoisted to temps
// (evaluated at the go statement, as in Go), then the call runs inside
// a modeled goroutine.
func (em *emitter) goStmt(s *ast.GoStmt) {
	call := s.Call
	pos := em.an.fset.Position(s.Pos())
	file := filepath.Base(pos.Filename)

	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		name = fmt.Sprintf("%s.func%d", em.curFunc, em.anonN[em.curFunc]+1)
		em.anonN[em.curFunc]++
	}

	temps := make([]string, len(call.Args))
	for i, a := range call.Args {
		em.hoistInner(a, false)
		temps[i] = em.tmp("a")
		em.line("%s := %s", temps[i], em.exprStr(a))
	}

	em.line("g.Go(%q, func(g *sched.G) {", name)
	em.ind++
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		em.line("g.Push(%q, %q, %d)", em.an.pkg.Name()+"."+name, file, pos.Line)
		em.line("defer g.Pop()")
		// Bind parameters to the hoisted argument temps, then inline
		// the body.
		sig := em.an.info.Types[lit].Type.(*types.Signature)
		idx := 0
		for _, f := range lit.Type.Params.List {
			for _, pn := range f.Names {
				if pn.Name == "_" {
					em.line("_ = %s", temps[idx])
					idx++
					continue
				}
				em.line("%s := %s", pn.Name, temps[idx])
				pv, _ := em.an.info.Defs[pn].(*types.Var)
				if pv != nil && em.an.kinds[pv] != kPlain {
					em.promoteLocal(pv, pn.Name, pn.Name)
				}
				idx++
			}
		}
		_ = sig
		prev := em.curFunc
		em.curFunc = name
		em.stmtList(lit.Body.List)
		em.curFunc = prev
	} else {
		em.line("%s", em.callWith(call, temps))
	}
	em.ind--
	em.line("})")
}

// callWith renders call with pre-evaluated argument temps.
func (em *emitter) callWith(call *ast.CallExpr, temps []string) string {
	saved := em.replaced
	em.replaced = map[ast.Expr]string{}
	for i, a := range call.Args {
		em.replaced[a] = temps[i]
	}
	for k, v := range saved {
		em.replaced[k] = v
	}
	out := em.exprStr(call)
	em.replaced = saved
	return out
}

// deferStmt emits a defer of the rewritten call.
func (em *emitter) deferStmt(s *ast.DeferStmt) {
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok && len(s.Call.Args) == 0 {
		em.line("defer func() {")
		em.ind++
		em.stmtList(lit.Body.List)
		em.ind--
		em.line("}()")
		return
	}
	em.line("defer %s", em.exprStr(s.Call))
}

// returnStmt emits a return, expanding bare returns of named results.
func (em *emitter) returnStmt(s *ast.ReturnStmt) {
	if len(s.Results) == 0 {
		if len(em.curResults) == 0 {
			em.line("return")
			return
		}
		var vals []string
		for _, r := range em.curResults {
			switch r.kind {
			case kCell:
				vals = append(vals, fmt.Sprintf("%s.Load(g)", r.name))
			default:
				vals = append(vals, r.name)
			}
		}
		em.line("return %s", strings.Join(vals, ", "))
		return
	}
	for _, r := range s.Results {
		em.hoistInner(r, false)
	}
	var vals []string
	for _, r := range s.Results {
		vals = append(vals, em.exprStr(r))
	}
	em.line("return %s", strings.Join(vals, ", "))
}

// ifStmt emits an if/else chain; inits and hoists go in a wrapper
// block so their names scope correctly.
func (em *emitter) ifStmt(s *ast.IfStmt) {
	needsWrap := s.Init != nil || em.needsHoist(s.Cond)
	if needsWrap {
		em.line("{")
		em.ind++
		if s.Init != nil {
			em.stmt(s.Init)
		}
		em.hoistInner(s.Cond, false)
	}
	em.line("if %s {", em.exprStr(s.Cond))
	em.ind++
	em.stmtList(s.Body.List)
	em.ind--
	if s.Else != nil {
		em.line("} else {")
		em.ind++
		if eb, ok := s.Else.(*ast.BlockStmt); ok {
			em.stmtList(eb.List)
		} else {
			em.stmt(s.Else)
		}
		em.ind--
	}
	em.line("}")
	if needsWrap {
		em.ind--
		em.line("}")
	}
}

// forStmt emits a for loop. An instrumented post clause moves to the
// end of the body (rejected if the body contains a continue).
func (em *emitter) forStmt(s *ast.ForStmt) {
	if s.Cond != nil && em.needsHoist(s.Cond) {
		em.fail(s.Cond.Pos(), "channel/map operations in a loop condition are unsupported")
	}
	postInBody := s.Post != nil && em.interesting(s.Post)
	if postInBody && hasLoopContinue(s.Body) {
		em.fail(s.Post.Pos(), "continue with an instrumented loop post statement is unsupported")
	}
	wrap := s.Init != nil && em.interesting(s.Init)
	if wrap {
		em.line("{")
		em.ind++
		em.stmt(s.Init)
	}
	header := "for "
	if !wrap && s.Init != nil {
		header += em.origPrint(s.Init) + "; "
	} else if s.Post != nil && !postInBody {
		header += "; "
	}
	if s.Cond != nil {
		header += em.exprStr(s.Cond)
	}
	if s.Post != nil && !postInBody {
		header += "; " + em.origPrint(s.Post)
	} else if !wrap && s.Init != nil {
		header += ";"
	}
	em.line("%s {", strings.TrimRight(header, " "))
	em.ind++
	em.stmtList(s.Body.List)
	if postInBody {
		em.stmt(s.Post)
	}
	em.ind--
	em.line("}")
	if wrap {
		em.ind--
		em.line("}")
	}
}

// hasLoopContinue reports whether body contains a continue binding to
// this loop (ignores nested loops and function literals).
func hasLoopContinue(body *ast.BlockStmt) bool {
	found := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false
		case *ast.BranchStmt:
			if n.Tok == token.CONTINUE {
				found = true
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return found
}
