// Package instrument rewrites real Go source onto the modeled
// scheduler's event vocabulary, so ordinary packages can run under the
// repo's deterministic schedules and race detectors.
//
// The rewriter is a source-to-source compiler built on go/ast and
// go/types. Given a package directory (plus an optional harness file
// defining the entry function), it emits one self-contained program
// function — `func Prog<Name>(g *sched.G)` — in which:
//
//   - reads and writes of shared variables become trace access events
//     on stable trace.Addrs (the program calls sched.G.StableIDs first,
//     so cell identities are schedule- and seed-independent);
//   - `go` statements become sched.G.Go spawns;
//   - sync.Mutex, sync.RWMutex, sync.WaitGroup, and sync.Once map onto
//     the corresponding sched primitives;
//   - channel makes/sends/receives/closes/selects map onto sched.Chan
//     and sched.G.Select;
//   - sync/atomic calls map onto sched.Atomic, with plain accesses of
//     the same variable becoming PlainLoad/PlainStore (the partial-
//     atomics bug shape);
//   - shared maps and slices map onto sched.Map and sched.Slice.
//
// Only shared state is instrumented: package-level variables,
// address-taken locals, and locals captured by function literals.
// Everything else stays plain Go, so the emitted event stream models
// the program's concurrency without drowning it in irrelevant
// accesses. An optional coalescing pass additionally drops redundant
// adjacent accesses to the same cell within a basic block.
//
// The rewriter supports a documented subset of Go (see
// docs/INSTRUMENT.md); source outside the subset is rejected with a
// positioned error rather than silently mis-modeled.
package instrument

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Options configures one instrumentation run.
type Options struct {
	// ProgName names the generated function: Prog<ProgName>. Required;
	// must be a valid identifier fragment.
	ProgName string
	// Entry is the niladic subject function the generated program
	// invokes last. Required.
	Entry string
	// OutPkg is the generated file's package clause (default "progs").
	OutPkg string
	// Coalesce drops redundant adjacent accesses to the same cell
	// within a basic block (default off; cmd/raceinstrument enables it
	// unless told otherwise).
	Coalesce bool
	// ExtraFiles adds sources (filename → content) on top of the
	// package directory — typically a harness defining Entry.
	ExtraFiles map[string]string
	// SkipFiles names package files Dir leaves out of the subject —
	// infrastructure that shares a directory with the bug shape but is
	// not part of it (and may use constructs the rewriter rejects).
	SkipFiles []string
}

// Output is the product of one instrumentation run.
type Output struct {
	// Source is a complete generated .go file.
	Source []byte
	// FuncName is the generated program function's name.
	FuncName string
	// PkgName is the subject package's name.
	PkgName string
}

// passthrough lists imports the subject may use un-modeled: calls into
// them are emitted as-is (with instrumented arguments). "sync" and
// "sync/atomic" are allowed but modeled, never passed through.
var passthrough = map[string]bool{
	"fmt": true, "sort": true, "strings": true, "strconv": true,
	"errors": true, "math": true, "unicode": true,
}

// Dir instruments the package in dir (non-test .go files, plus
// opts.ExtraFiles) and returns the generated program.
func Dir(dir string, opts Options) (*Output, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	files := map[string]string{}
	skip := map[string]bool{}
	for _, name := range opts.SkipFiles {
		skip[name] = true
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") || skip[name] {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		files[name] = string(src)
	}
	return Files(files, opts)
}

// Files instruments a package given as filename → source (harness
// files from opts.ExtraFiles are merged in) and returns the generated
// program.
func Files(files map[string]string, opts Options) (*Output, error) {
	if opts.ProgName == "" || opts.Entry == "" {
		return nil, fmt.Errorf("instrument: ProgName and Entry are required")
	}
	if opts.OutPkg == "" {
		opts.OutPkg = "progs"
	}
	all := map[string]string{}
	for k, v := range files {
		all[k] = v
	}
	for k, v := range opts.ExtraFiles {
		all[k] = v
	}

	fset := token.NewFileSet()
	var names []string
	for name := range all {
		names = append(names, name)
	}
	sort.Strings(names)
	var parsed []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, all[name], parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	if len(parsed) == 0 {
		return nil, fmt.Errorf("instrument: no Go files")
	}
	pkgName := parsed[0].Name.Name

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(pkgName, fset, parsed, info)
	if err != nil {
		return nil, fmt.Errorf("instrument: typecheck: %w", err)
	}
	for _, imp := range pkg.Imports() {
		p := imp.Path()
		if p != "sync" && p != "sync/atomic" && !passthrough[p] {
			return nil, fmt.Errorf("instrument: unsupported import %q", p)
		}
	}

	an, err := analyze(fset, parsed, pkg, info)
	if err != nil {
		return nil, err
	}
	em := &emitter{an: an, opts: opts}
	src, err := em.program()
	if err != nil {
		return nil, err
	}
	return &Output{Source: src, FuncName: "Prog" + opts.ProgName, PkgName: pkgName}, nil
}

// errAt builds a positioned subset-violation error.
func errAt(fset *token.FileSet, pos token.Pos, format string, args ...any) error {
	return fmt.Errorf("%s: %s", fset.Position(pos), fmt.Sprintf(format, args...))
}
