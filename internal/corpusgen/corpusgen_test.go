package corpusgen

import (
	"strings"
	"testing"

	"gorace/internal/staticcount"
)

func countGoRepo(t *testing.T, files []File) staticcount.GoCounts {
	t.Helper()
	var total staticcount.GoCounts
	for _, f := range files {
		c, err := staticcount.CountGoSource(f.Name, f.Content)
		if err != nil {
			t.Fatalf("%s does not parse: %v", f.Name, err)
		}
		total.Add(c)
	}
	return total
}

func TestGeneratedGoParsesAndMatchesDensities(t *testing.T) {
	const lines = 200_000 // 0.2 MLoC: enough for stable rates
	files := GenGoRepo(UberGoProfile, lines, 1)
	if len(files) < 10 {
		t.Fatalf("only %d files generated", len(files))
	}
	c := countGoRepo(t, files)

	within := func(name string, got int, wantPerMLoC float64) {
		t.Helper()
		gotRate := staticcount.PerMLoC(got, c.Lines)
		if gotRate < wantPerMLoC*0.85 || gotRate > wantPerMLoC*1.15 {
			t.Errorf("%s: got %.1f/MLoC, want ≈%.1f", name, gotRate, wantPerMLoC)
		}
	}
	within("go statements", c.GoStatements, UberGoProfile.GoStmtsPerMLoC)
	within("lock+unlock", c.LockUnlock, UberGoProfile.LockUnlockPerMLoC)
	within("rlock+runlock", c.RLockRUnlock, UberGoProfile.RLockRUnlockPerMLoC)
	within("chan ops", c.ChanOps, UberGoProfile.ChanOpsPerMLoC)
	within("waitgroups", c.WaitGroupUses, UberGoProfile.WaitGroupPerMLoC)
	within("maps", c.MapConstructs, UberGoProfile.MapsPerMLoC)
}

func TestGeneratedJavaMatchesDensities(t *testing.T) {
	const lines = 200_000
	files := GenJavaRepo(UberJavaProfile, lines, 1)
	var c staticcount.JavaCounts
	for _, f := range files {
		c.Add(staticcount.CountJavaSource(f.Content))
	}
	within := func(name string, got int, wantPerMLoC float64) {
		t.Helper()
		gotRate := staticcount.PerMLoC(got, c.Lines)
		if gotRate < wantPerMLoC*0.85 || gotRate > wantPerMLoC*1.15 {
			t.Errorf("%s: got %.1f/MLoC, want ≈%.1f", name, gotRate, wantPerMLoC)
		}
	}
	within("thread starts", c.ThreadStarts, UberJavaProfile.ThreadStartPerMLoC)
	within("synchronized", c.Synchronized, UberJavaProfile.SynchronizedPerMLoC)
	within("acquire+release", c.AcquireRelease, UberJavaProfile.AcquireRelPerMLoC)
	within("lock+unlock", c.LockUnlock, UberJavaProfile.JLockUnlockPerMLoC)
	within("group sync", c.GroupSync, UberJavaProfile.JGroupSyncPerMLoC)
	within("maps", c.MapConstructs, UberJavaProfile.JMapsPerMLoC)
}

func TestTable1RatiosReproduce(t *testing.T) {
	// The paper's headline Table 1 ratios: Go uses ~3.7× more
	// point-to-point sync per MLoC than Java and ~1.9× more group
	// sync; creation rates are comparable (250 vs 219 per MLoC).
	const lines = 400_000
	gc := countGoRepo(t, GenGoRepo(UberGoProfile, lines, 2))
	var jc staticcount.JavaCounts
	for _, f := range GenJavaRepo(UberJavaProfile, lines, 2) {
		jc.Add(staticcount.CountJavaSource(f.Content))
	}

	goP2P := staticcount.PerMLoC(gc.PointToPoint(), gc.Lines)
	javaP2P := staticcount.PerMLoC(jc.PointToPoint(), jc.Lines)
	ratio := goP2P / javaP2P
	if ratio < 3.0 || ratio > 4.5 {
		t.Errorf("p2p sync ratio = %.2f, paper reports 3.7×", ratio)
	}

	goGroup := staticcount.PerMLoC(gc.WaitGroupUses, gc.Lines)
	javaGroup := staticcount.PerMLoC(jc.GroupSync, jc.Lines)
	gratio := goGroup / javaGroup
	if gratio < 1.5 || gratio > 2.4 {
		t.Errorf("group sync ratio = %.2f, paper reports 1.9×", gratio)
	}

	goCreate := staticcount.PerMLoC(gc.GoStatements, gc.Lines)
	javaCreate := staticcount.PerMLoC(jc.ThreadStarts, jc.Lines)
	cratio := goCreate / javaCreate
	if cratio < 0.9 || cratio > 1.4 {
		t.Errorf("creation ratio = %.2f, paper reports ~1.14×", cratio)
	}

	// §4.4's map ratio: 5950 vs 4389 per MLoC ≈ 1.34×.
	mratio := staticcount.PerMLoC(gc.MapConstructs, gc.Lines) /
		staticcount.PerMLoC(jc.MapConstructs, jc.Lines)
	if mratio < 1.1 || mratio > 1.6 {
		t.Errorf("map ratio = %.2f, paper reports 1.34×", mratio)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := GenGoRepo(UberGoProfile, 50_000, 7)
	b := GenGoRepo(UberGoProfile, 50_000, 7)
	if len(a) != len(b) {
		t.Fatal("file counts differ")
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Content != b[i].Content {
			t.Fatalf("file %d differs between identical-seed generations", i)
		}
	}
}

func TestSmallRepoStillValid(t *testing.T) {
	files := GenGoRepo(UberGoProfile, 1000, 3)
	c := countGoRepo(t, files)
	if c.ParseErrors != 0 {
		t.Fatal("parse errors in small repo")
	}
	if !strings.HasSuffix(files[0].Name, ".go") {
		t.Fatalf("odd file name %q", files[0].Name)
	}
}
