// Package staticcount counts concurrency-related constructs in source
// code, reproducing the methodology behind Table 1 ("As a rough
// approximation of the use of concurrency, we counted the number of
// concurrency creation constructs and synchronization constructs").
//
// Go sources are counted precisely on the AST (go statements, channel
// operations, Lock/Unlock/RLock/RUnlock calls, WaitGroup mentions, map
// types); Java sources are counted with the same kind of coarse
// text/regex matching the paper describes (".start()", "synchronized",
// lock()/unlock(), acquire()/release(), CyclicBarrier/CountDownLatch/
// Phaser), since no Java parser is available in the Go stdlib — the
// paper itself calls its look-up "coarse-grained and imperfect".
package staticcount

import (
	"go/ast"
	"go/parser"
	"go/token"
	"regexp"
	"strings"
)

// GoCounts are the Table 1 construct tallies for Go code.
type GoCounts struct {
	Lines          int
	GoStatements   int // concurrency creation: `go f()`
	LockUnlock     int // Lock() + Unlock() calls
	RLockRUnlock   int // RLock() + RUnlock() calls
	ChanOps        int // channel sends and receives
	WaitGroupUses  int // sync.WaitGroup mentions (type + Add/Done/Wait)
	MapConstructs  int // map type expressions and literals
	ParseErrors    int
	FilesProcessed int
}

// PointToPoint is the Table 1 "point-to-point communication" total.
func (c GoCounts) PointToPoint() int { return c.LockUnlock + c.RLockRUnlock + c.ChanOps }

// CountGoSource counts constructs in one Go source file.
func CountGoSource(filename, src string) (GoCounts, error) {
	var c GoCounts
	c.Lines = strings.Count(src, "\n") + 1
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, 0)
	if err != nil {
		c.ParseErrors++
		return c, err
	}
	c.FilesProcessed = 1
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			c.GoStatements++
		case *ast.SendStmt:
			c.ChanOps++
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				c.ChanOps++ // receive expression
			}
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Lock", "Unlock":
					c.LockUnlock++
				case "RLock", "RUnlock":
					c.RLockRUnlock++
				case "Add", "Done", "Wait":
					if isWaitGroupRecv(sel.X) {
						c.WaitGroupUses++
					}
				}
			}
		case *ast.SelectorExpr:
			// sync.WaitGroup type mentions.
			if id, ok := x.X.(*ast.Ident); ok && id.Name == "sync" && x.Sel.Name == "WaitGroup" {
				c.WaitGroupUses++
			}
		case *ast.MapType:
			c.MapConstructs++
		}
		return true
	})
	return c, nil
}

// isWaitGroupRecv applies the coarse variable-name heuristic the
// paper's regex-based lookup implies: receivers named like WaitGroups.
func isWaitGroupRecv(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	n := strings.ToLower(id.Name)
	return n == "wg" || strings.Contains(n, "waitgroup") || strings.HasSuffix(n, "wg")
}

// Add accumulates other into c.
func (c *GoCounts) Add(o GoCounts) {
	c.Lines += o.Lines
	c.GoStatements += o.GoStatements
	c.LockUnlock += o.LockUnlock
	c.RLockRUnlock += o.RLockRUnlock
	c.ChanOps += o.ChanOps
	c.WaitGroupUses += o.WaitGroupUses
	c.MapConstructs += o.MapConstructs
	c.ParseErrors += o.ParseErrors
	c.FilesProcessed += o.FilesProcessed
}

// JavaCounts are the Table 1 construct tallies for Java code.
type JavaCounts struct {
	Lines          int
	ThreadStarts   int // `.start(` — concurrency creation
	Synchronized   int // synchronized blocks/methods
	AcquireRelease int // semaphore acquire()/release()
	LockUnlock     int // lock()/unlock() calls
	GroupSync      int // CyclicBarrier, CountDownLatch, Phaser
	MapConstructs  int // Map/HashMap/ConcurrentHashMap mentions
	FilesProcessed int
}

// PointToPoint is the Table 1 "point-to-point communication" total.
func (c JavaCounts) PointToPoint() int { return c.Synchronized + c.AcquireRelease + c.LockUnlock }

var (
	reStart     = regexp.MustCompile(`\.start\s*\(`)
	reSync      = regexp.MustCompile(`\bsynchronized\b`)
	reAcqRel    = regexp.MustCompile(`\.(acquire|release)\s*\(`)
	reLockUnl   = regexp.MustCompile(`\.(lock|unlock)\s*\(`)
	reGroupSync = regexp.MustCompile(`\b(CyclicBarrier|CountDownLatch|Phaser)\b`)
	reJavaMap   = regexp.MustCompile(`\b(HashMap|ConcurrentHashMap|TreeMap|LinkedHashMap|Map)\s*<`)
)

// CountJavaSource counts constructs in one Java source file using the
// paper's regex-style lookup.
func CountJavaSource(src string) JavaCounts {
	return JavaCounts{
		Lines:          strings.Count(src, "\n") + 1,
		ThreadStarts:   len(reStart.FindAllString(src, -1)),
		Synchronized:   len(reSync.FindAllString(src, -1)),
		AcquireRelease: len(reAcqRel.FindAllString(src, -1)),
		LockUnlock:     len(reLockUnl.FindAllString(src, -1)),
		GroupSync:      len(reGroupSync.FindAllString(src, -1)),
		MapConstructs:  len(reJavaMap.FindAllString(src, -1)),
		FilesProcessed: 1,
	}
}

// Add accumulates other into c.
func (c *JavaCounts) Add(o JavaCounts) {
	c.Lines += o.Lines
	c.ThreadStarts += o.ThreadStarts
	c.Synchronized += o.Synchronized
	c.AcquireRelease += o.AcquireRelease
	c.LockUnlock += o.LockUnlock
	c.GroupSync += o.GroupSync
	c.MapConstructs += o.MapConstructs
	c.FilesProcessed += o.FilesProcessed
}

// PerMLoC normalizes a count to per-million-lines.
func PerMLoC(count, lines int) float64 {
	if lines == 0 {
		return 0
	}
	return float64(count) / (float64(lines) / 1e6)
}
