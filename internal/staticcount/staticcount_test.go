package staticcount

import "testing"

const goSample = `package demo

import "sync"

var mu sync.Mutex
var wg sync.WaitGroup

func produce(ch chan int) {
	go worker()
	go func() {
		ch <- 1
	}()
	v := <-ch
	_ = v
}

func worker() {
	mu.Lock()
	defer mu.Unlock()
	var rw sync.RWMutex
	rw.RLock()
	rw.RUnlock()
	wg.Add(1)
	wg.Done()
	wg.Wait()
	m := map[string]int{"a": 1}
	_ = m
	var n map[int]bool
	_ = n
}
`

func TestCountGoSource(t *testing.T) {
	c, err := CountGoSource("demo.go", goSample)
	if err != nil {
		t.Fatal(err)
	}
	if c.GoStatements != 2 {
		t.Errorf("go statements = %d, want 2", c.GoStatements)
	}
	if c.ChanOps != 2 {
		t.Errorf("chan ops = %d, want 2 (one send, one recv)", c.ChanOps)
	}
	if c.LockUnlock != 2 {
		t.Errorf("lock+unlock = %d, want 2", c.LockUnlock)
	}
	if c.RLockRUnlock != 2 {
		t.Errorf("rlock+runlock = %d, want 2", c.RLockRUnlock)
	}
	// 1 type mention + Add + Done + Wait on a wg-named receiver.
	if c.WaitGroupUses != 4 {
		t.Errorf("waitgroup uses = %d, want 4", c.WaitGroupUses)
	}
	if c.MapConstructs != 2 {
		t.Errorf("maps = %d, want 2", c.MapConstructs)
	}
}

func TestCountGoSourceParseError(t *testing.T) {
	c, err := CountGoSource("bad.go", "package {{{")
	if err == nil {
		t.Fatal("expected a parse error")
	}
	if c.ParseErrors != 1 {
		t.Fatalf("ParseErrors = %d", c.ParseErrors)
	}
}

const javaSample = `public class Demo {
  void run() {
    new Thread(this::work).start();
    sem.acquire();
    sem.release();
    mu.lock();
    mu.unlock();
  }
  synchronized void critical() {}
  CountDownLatch latch;
  CyclicBarrier barrier;
  Phaser phaser;
  HashMap<String, Integer> cache = makeCache();
  Map<String, String> index;
}
`

func TestCountJavaSource(t *testing.T) {
	c := CountJavaSource(javaSample)
	if c.ThreadStarts != 1 {
		t.Errorf("starts = %d", c.ThreadStarts)
	}
	if c.Synchronized != 1 {
		t.Errorf("synchronized = %d", c.Synchronized)
	}
	if c.AcquireRelease != 2 {
		t.Errorf("acquire+release = %d", c.AcquireRelease)
	}
	if c.LockUnlock != 2 {
		t.Errorf("lock+unlock = %d", c.LockUnlock)
	}
	if c.GroupSync != 3 {
		t.Errorf("group sync = %d", c.GroupSync)
	}
	if c.MapConstructs != 2 {
		t.Errorf("maps = %d", c.MapConstructs)
	}
}

func TestAddAccumulates(t *testing.T) {
	a, _ := CountGoSource("a.go", goSample)
	var tot GoCounts
	tot.Add(a)
	tot.Add(a)
	if tot.GoStatements != 2*a.GoStatements || tot.Lines != 2*a.Lines {
		t.Fatal("Add did not accumulate")
	}
	var j JavaCounts
	j.Add(CountJavaSource(javaSample))
	j.Add(CountJavaSource(javaSample))
	if j.ThreadStarts != 2 {
		t.Fatal("Java Add did not accumulate")
	}
}

func TestPerMLoC(t *testing.T) {
	if got := PerMLoC(250, 1_000_000); got != 250 {
		t.Fatalf("PerMLoC = %f", got)
	}
	if got := PerMLoC(5, 0); got != 0 {
		t.Fatalf("PerMLoC with zero lines = %f", got)
	}
	if got := PerMLoC(1, 500_000); got != 2 {
		t.Fatalf("PerMLoC = %f", got)
	}
}

func TestPointToPointTotals(t *testing.T) {
	g := GoCounts{LockUnlock: 3, RLockRUnlock: 2, ChanOps: 5}
	if g.PointToPoint() != 10 {
		t.Fatal("Go p2p total wrong")
	}
	j := JavaCounts{Synchronized: 1, AcquireRelease: 2, LockUnlock: 3}
	if j.PointToPoint() != 6 {
		t.Fatal("Java p2p total wrong")
	}
}
