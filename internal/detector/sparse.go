package detector

import "gorace/internal/trace"

// sparseIndex maps the scheduler's stable identities (63-bit hashes
// with trace.StableBit set, see sched.G.StableIDs) onto small dense
// indices, so detectors can keep their shadow state in the same dense
// slices they use for default-mode addresses. Default-mode identities
// pass through untouched on a branch, keeping the pattern-corpus hot
// path map-free; a run is either entirely dense or entirely stable, so
// the two ranges never mix within one run.
//
// The dense index assigned to a given stable identity is first-touch
// (run-local, schedule-dependent) — that is fine because it never
// leaves the detector: reports and racy-address sets always carry the
// original event identity.
type sparseIndex struct {
	m    map[uint64]uint64
	next uint64
}

// local returns the dense index for v, assigning one on first touch.
func (si *sparseIndex) local(v uint64) uint64 {
	if v&trace.StableBit == 0 {
		return v
	}
	l, ok := si.m[v]
	if !ok {
		if si.m == nil {
			si.m = make(map[uint64]uint64)
		}
		si.next++
		l = si.next
		si.m[v] = l
	}
	return l
}

// reset forgets all assignments, keeping the map's capacity.
func (si *sparseIndex) reset() {
	clear(si.m)
	si.next = 0
}
