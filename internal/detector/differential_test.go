package detector

import (
	"testing"

	"gorace/internal/progen"
	"gorace/internal/sched"
	"gorace/internal/trace"
)

// TestDifferentialDetectorVerdicts cross-validates the three HB
// detectors over random programs: Epoch racy-addresses must equal
// FastTrack's, and DJIT's must be a superset (it keeps full
// histories, so it may flag pairs FastTrack forgets after a cell's
// first race).
func TestDifferentialDetectorVerdicts(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		prog := progen.Generate(seed, progen.Params{})
		ft := NewFastTrack()
		ft.MaxReportsPerCell = 1 << 30
		ep := NewEpoch()
		dj := NewDJIT()
		sched.Run(prog.Main(), sched.Options{
			Strategy: sched.NewRandom(), Seed: seed, MaxSteps: 1 << 18,
			Listeners: []trace.Listener{ft, ep, dj},
		})
		ftAddrs := make(map[trace.Addr]bool)
		for _, r := range ft.Races() {
			ftAddrs[r.Second.Addr] = true
		}
		for a := range ftAddrs {
			if !ep.RacyAddrs()[a] {
				t.Fatalf("seed %d: addr %d flagged by fasttrack, missed by epoch", seed, a)
			}
		}
		for a := range ep.RacyAddrs() {
			if !ftAddrs[a] {
				t.Fatalf("seed %d: addr %d flagged by epoch, missed by fasttrack", seed, a)
			}
			if !dj.RacyAddrs()[a] {
				t.Fatalf("seed %d: addr %d flagged by epoch, missed by djit", seed, a)
			}
		}
	}
}

// TestOfflineEqualsOnline: post-facto replay of a recorded random
// program's trace must yield the same reports as online detection.
func TestOfflineEqualsOnline(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		prog := progen.Generate(seed, progen.Params{})
		online := NewFastTrack()
		rec := &trace.Recorder{}
		sched.Run(prog.Main(), sched.Options{
			Strategy: sched.NewRandom(), Seed: seed, MaxSteps: 1 << 18,
			Listeners: []trace.Listener{online, rec},
		})
		offline := NewFastTrack()
		rec.Replay(offline)
		if online.RaceCount() != offline.RaceCount() {
			t.Fatalf("seed %d: online %d vs offline %d races",
				seed, online.RaceCount(), offline.RaceCount())
		}
	}
}

// TestFullyLockedProgramsAreRaceFree: with LockedRatio 100 and no
// RW/atomic mix, every variable access is mutex-guarded... but
// distinct accesses may use distinct mutexes, so races remain
// possible. Constrain to one mutex: then the program must be clean.
func TestFullyLockedProgramsAreRaceFree(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		prog := progen.Generate(seed, progen.Params{Mutexes: 1, RWMutexes: 1, LockedRatio: progen.Int(100)})
		// RW-guarded ops pick the single RW mutex; plain guarded ops
		// the single mutex. Races across the two lock domains are
		// still possible, so restrict the check to variables only
		// ever touched under the plain mutex.
		ft := NewFastTrack()
		sched.Run(prog.Main(), sched.Options{
			Strategy: sched.NewRandom(), Seed: seed, MaxSteps: 1 << 18,
			Listeners: []trace.Listener{ft},
		})
		for _, r := range ft.Races() {
			bothLocked := len(r.First.Locks) > 0 && len(r.Second.Locks) > 0
			sameLock := bothLocked && r.First.Locks[0] == r.Second.Locks[0]
			if sameLock {
				t.Fatalf("seed %d: race between two sections of the same lock:\n%s", seed, r)
			}
		}
	}
}
