package detector

import (
	"gorace/internal/report"
	"gorace/internal/stack"
	"gorace/internal/trace"
	"gorace/internal/vclock"
)

// access is a recorded prior access to a shadow cell, with everything
// a race report needs.
type access struct {
	g      vclock.TID
	gname  string
	time   uint32
	op     trace.Op
	stk    stack.Context
	label  string
	atomic bool
	locks  []string
	seq    uint64
}

func (a access) toReport(addr trace.Addr) report.Access {
	return report.Access{
		G: a.g, GName: a.gname, Op: a.op, Addr: addr, Seq: a.seq,
		Stack: a.stk, Label: a.label, Atomic: a.atomic, Locks: a.locks,
	}
}

// ftCell is the shadow state of one memory cell. Cells live by value
// in a dense slice indexed by Addr, so looking one up is a bounds
// check, not a map probe, and a fresh cell costs no allocation.
//
// The read history is adaptive, FastTrack style: while a single
// goroutine reads the cell — by far the common case — the history is
// the inline `read` slot and costs nothing beyond the cell itself.
// The first read by a second goroutine *promotes* the cell to the
// `readers` list (drawn from the detector's freelist); the next write
// *demotes* it back, releasing the list for reuse by other cells.
// Unlike textbook FastTrack, an *ordered* read by a second goroutine
// still promotes: this detector reports one race per retained reader
// with that reader's metadata, so collapsing ordered readers into one
// slot would change which reports a later concurrent write produces.
type ftCell struct {
	seen     bool
	hasWrite bool
	hasRead  bool
	write    access
	// read is the epoch-form read slot: the most recent read while at
	// most one goroutine has read since the last write.
	read access
	// readers is the promoted (vector-clock-form) read history: the
	// most recent read per goroutine since the last write, in first-
	// read order. nil while the cell is in epoch form.
	readers []access
	reports int
}

// FastTrack is the happens-before race detector. It maintains one
// vector clock per goroutine, one per synchronization object, and
// per-cell access histories; a race is two accesses to the same cell,
// at least one a write, not both atomic, with neither ordered before
// the other.
//
// All shadow state is held in dense slices keyed by the scheduler's
// small dense TIDs, ObjIDs, and Addrs, and vector clocks come from a
// Pool, so the per-event path performs no steady-state allocations.
// Reset reuses all of it for the next run.
type FastTrack struct {
	pool      *vclock.Pool
	clocks    []*vclock.VC
	objClocks []*vclock.VC
	objCount  int
	cells     []ftCell
	cellCount int
	addrIx    sparseIndex
	objIx     sparseIndex
	locks     *lockTracker
	races     []report.Race
	stats     statCounter
	adapt     adaptCounter
	// freeReaders recycles demoted readers lists: only currently
	// promoted cells hold list storage, and a demotion hands the
	// backing array to the next promotion anywhere in the detector.
	freeReaders [][]access
	// MaxReportsPerCell caps reports from a single cell so a racy
	// loop does not flood the output (default 8).
	MaxReportsPerCell int
}

// NewFastTrack returns a fresh happens-before detector.
func NewFastTrack() *FastTrack {
	return &FastTrack{
		pool:              vclock.NewPool(),
		locks:             newLockTracker(),
		MaxReportsPerCell: 8,
	}
}

// Name implements Detector.
func (ft *FastTrack) Name() string { return "fasttrack-hb" }

// Races implements Detector.
func (ft *FastTrack) Races() []report.Race { return ft.races }

// Candidates implements Detector; the HB detector is precise and has
// no may-not-manifest findings.
func (ft *FastTrack) Candidates() []report.Race { return nil }

// RaceCount returns the number of reports.
func (ft *FastTrack) RaceCount() int { return len(ft.races) }

// Reset implements Resetter: it clears all detection state in place,
// releasing clocks to the pool and retaining every buffer, so the
// detector can consume another run without reallocating its shadow
// state. Slices previously returned by Races are invalidated.
func (ft *FastTrack) Reset() {
	for i, c := range ft.clocks {
		if c != nil {
			ft.pool.Release(c)
			ft.clocks[i] = nil
		}
	}
	ft.clocks = ft.clocks[:0]
	for i, c := range ft.objClocks {
		if c != nil {
			ft.pool.Release(c)
			ft.objClocks[i] = nil
		}
	}
	ft.objClocks = ft.objClocks[:0]
	ft.objCount = 0
	for i := range ft.cells {
		c := &ft.cells[i]
		c.seen, c.hasWrite, c.hasRead, c.reports = false, false, false, 0
		c.write, c.read = access{}, access{}
		if c.readers != nil {
			// Teardown, not a demotion: the counters describe the
			// event stream, so Reset does not touch them.
			ft.releaseReaders(c.readers)
			c.readers = nil
		}
	}
	ft.cellCount = 0
	ft.addrIx.reset()
	ft.objIx.reset()
	ft.locks.reset()
	ft.races = ft.races[:0]
	ft.stats = statCounter{}
	ft.adapt = adaptCounter{}
}

// acquireReaders pops a recycled readers list, or allocates the first
// time a promotion outruns the freelist.
func (ft *FastTrack) acquireReaders() []access {
	if n := len(ft.freeReaders); n > 0 {
		s := ft.freeReaders[n-1]
		ft.freeReaders[n-1] = nil
		ft.freeReaders = ft.freeReaders[:n-1]
		return s
	}
	return make([]access, 0, 4)
}

// releaseReaders clears a demoted list (dropping its stack and lock
// references) and parks it for the next promotion.
func (ft *FastTrack) releaseReaders(s []access) {
	for i := range s {
		s[i] = access{}
	}
	ft.freeReaders = append(ft.freeReaders, s[:0])
}

// clockOf returns g's clock, initializing it with its own component
// at 1 (each goroutine begins in its own epoch).
func (ft *FastTrack) clockOf(g vclock.TID) *vclock.VC {
	for int(g) >= len(ft.clocks) {
		ft.clocks = append(ft.clocks, nil)
	}
	if ft.clocks[g] == nil {
		c := ft.pool.Acquire()
		c.Set(g, 1)
		ft.clocks[g] = c
	}
	return ft.clocks[g]
}

func (ft *FastTrack) objClock(o trace.ObjID) *vclock.VC {
	o = trace.ObjID(ft.objIx.local(uint64(o)))
	for int(o) >= len(ft.objClocks) {
		ft.objClocks = append(ft.objClocks, nil)
	}
	if ft.objClocks[o] == nil {
		ft.objClocks[o] = ft.pool.Acquire()
		ft.objCount++
	}
	return ft.objClocks[o]
}

// cell returns the shadow cell for a. The returned pointer is only
// valid until the next cell call (growth may move the backing array).
func (ft *FastTrack) cell(a trace.Addr) *ftCell {
	a = trace.Addr(ft.addrIx.local(uint64(a)))
	for int(a) >= len(ft.cells) {
		ft.cells = append(ft.cells, ftCell{})
	}
	c := &ft.cells[a]
	if !c.seen {
		c.seen = true
		ft.cellCount++
	}
	return c
}

// HandleEvent implements trace.Listener.
func (ft *FastTrack) HandleEvent(ev trace.Event) {
	ft.stats.note(ev)
	switch ev.Op {
	case trace.OpFork:
		parent := ft.clockOf(ev.G)
		child := ft.pool.Acquire()
		parent.CopyInto(child)
		child.Tick(ev.Child)
		for int(ev.Child) >= len(ft.clocks) {
			ft.clocks = append(ft.clocks, nil)
		}
		ft.clocks[ev.Child] = child
		parent.Tick(ev.G)

	case trace.OpAcquire:
		ft.locks.handle(ev)
		ft.objClock(ev.Obj).JoinInto(ft.clockOf(ev.G))

	case trace.OpRelease:
		if ft.locks.handle(ev) && ev.Kind == trace.KindRWRead {
			// Read-mode release: lockset bookkeeping only. The HB
			// reader→writer edge travels through the RWMutex's
			// internal read-release object instead.
			return
		}
		ft.clockOf(ev.G).JoinInto(ft.objClock(ev.Obj))
		ft.clockOf(ev.G).Tick(ev.G)

	case trace.OpRead, trace.OpAtomicLoad:
		ft.read(ev)

	case trace.OpWrite, trace.OpAtomicStore, trace.OpAtomicRMW:
		ft.write(ev)
	}
}

func (ft *FastTrack) newAccess(ev trace.Event) access {
	return access{
		g: ev.G, gname: ev.GName, time: ft.clockOf(ev.G).Get(ev.G),
		op: ev.Op, stk: ev.Stack, label: ev.Label,
		atomic: ev.Op.IsAtomic(), locks: ft.locks.heldLabels(ev.G), seq: ev.Seq,
	}
}

func (ft *FastTrack) read(ev trace.Event) {
	c := ft.cell(ev.Addr)
	cur := ft.clockOf(ev.G)
	if c.hasWrite && c.write.g != ev.G && c.write.time > cur.Get(c.write.g) {
		if !(c.write.atomic && ev.Op.IsAtomic()) {
			ft.report(ev, c, c.write)
		}
	}
	a := ft.newAccess(ev)
	if c.readers != nil {
		// Promoted: maintain the per-goroutine slot in first-read
		// order, exactly the pre-adaptive list behavior.
		for i := range c.readers {
			if c.readers[i].g == ev.G {
				c.readers[i] = a
				return
			}
		}
		c.readers = append(c.readers, a)
		return
	}
	if !c.hasRead || c.read.g == ev.G {
		// Epoch-form fast path: first reader, or the owning goroutine
		// reading again.
		c.read, c.hasRead = a, true
		ft.adapt.fastReads++
		return
	}
	// Second distinct reader: promote. The prior slot goes first so
	// the list order matches the pre-adaptive insertion order.
	c.readers = append(ft.acquireReaders(), c.read, a)
	c.read, c.hasRead = access{}, false
	ft.adapt.promotions++
}

func (ft *FastTrack) write(ev trace.Event) {
	c := ft.cell(ev.Addr)
	cur := ft.clockOf(ev.G)
	if c.hasWrite && c.write.g != ev.G && c.write.time > cur.Get(c.write.g) {
		if !(c.write.atomic && ev.Op.IsAtomic()) {
			ft.report(ev, c, c.write)
		}
	}
	if c.readers != nil {
		for i := range c.readers {
			r := &c.readers[i]
			if r.g == ev.G {
				continue
			}
			if r.time > cur.Get(r.g) && !(r.atomic && ev.Op.IsAtomic()) {
				ft.report(ev, c, *r)
			}
		}
		// Demote: the write subsumes the ordered read history and the
		// concurrent readers were just reported, so the list storage
		// goes back to the freelist for the next promotion.
		ft.releaseReaders(c.readers)
		c.readers = nil
		ft.adapt.demotions++
	} else if c.hasRead {
		if r := c.read; r.g != ev.G && r.time > cur.Get(r.g) && !(r.atomic && ev.Op.IsAtomic()) {
			ft.report(ev, c, r)
		}
	}
	c.read, c.hasRead = access{}, false
	c.write = ft.newAccess(ev)
	c.hasWrite = true
}

func (ft *FastTrack) report(ev trace.Event, c *ftCell, prior access) {
	if c.reports >= ft.MaxReportsPerCell {
		return
	}
	c.reports++
	second := ft.newAccess(ev)
	ft.races = append(ft.races, report.Race{
		First:    prior.toReport(ev.Addr),
		Second:   second.toReport(ev.Addr),
		Detector: ft.Name(),
		Seq:      ev.Seq,
	})
}
