package detector

import (
	"gorace/internal/report"
	"gorace/internal/stack"
	"gorace/internal/trace"
	"gorace/internal/vclock"
)

// access is a recorded prior access to a shadow cell, with everything
// a race report needs.
type access struct {
	g      vclock.TID
	gname  string
	time   uint32
	op     trace.Op
	stk    stack.Context
	label  string
	atomic bool
	locks  []string
	seq    uint64
}

func (a access) toReport(addr trace.Addr) report.Access {
	return report.Access{
		G: a.g, GName: a.gname, Op: a.op, Addr: addr, Seq: a.seq,
		Stack: a.stk, Label: a.label, Atomic: a.atomic, Locks: a.locks,
	}
}

// ftCell is the shadow state of one memory cell.
type ftCell struct {
	write    access
	hasWrite bool
	// reads holds the most recent read per goroutine since the last
	// ordered write (FastTrack's read history, with report metadata).
	reads   map[vclock.TID]access
	reports int
}

// FastTrack is the happens-before race detector. It maintains one
// vector clock per goroutine, one per synchronization object, and
// per-cell access histories; a race is two accesses to the same cell,
// at least one a write, not both atomic, with neither ordered before
// the other.
type FastTrack struct {
	clocks    []*vclock.VC
	objClocks map[trace.ObjID]*vclock.VC
	cells     map[trace.Addr]*ftCell
	locks     *lockTracker
	races     []report.Race
	stats     statCounter
	// MaxReportsPerCell caps reports from a single cell so a racy
	// loop does not flood the output (default 8).
	MaxReportsPerCell int
}

// NewFastTrack returns a fresh happens-before detector.
func NewFastTrack() *FastTrack {
	return &FastTrack{
		objClocks:         make(map[trace.ObjID]*vclock.VC),
		cells:             make(map[trace.Addr]*ftCell),
		locks:             newLockTracker(),
		MaxReportsPerCell: 8,
	}
}

// Name implements Detector.
func (ft *FastTrack) Name() string { return "fasttrack-hb" }

// Races implements Detector.
func (ft *FastTrack) Races() []report.Race { return ft.races }

// Candidates implements Detector; the HB detector is precise and has
// no may-not-manifest findings.
func (ft *FastTrack) Candidates() []report.Race { return nil }

// RaceCount returns the number of reports.
func (ft *FastTrack) RaceCount() int { return len(ft.races) }

// clockOf returns g's clock, initializing it with its own component
// at 1 (each goroutine begins in its own epoch).
func (ft *FastTrack) clockOf(g vclock.TID) *vclock.VC {
	for int(g) >= len(ft.clocks) {
		ft.clocks = append(ft.clocks, nil)
	}
	if ft.clocks[g] == nil {
		c := vclock.New()
		c.Set(g, 1)
		ft.clocks[g] = c
	}
	return ft.clocks[g]
}

func (ft *FastTrack) objClock(o trace.ObjID) *vclock.VC {
	c, ok := ft.objClocks[o]
	if !ok {
		c = vclock.New()
		ft.objClocks[o] = c
	}
	return c
}

func (ft *FastTrack) cell(a trace.Addr) *ftCell {
	c, ok := ft.cells[a]
	if !ok {
		c = &ftCell{reads: make(map[vclock.TID]access)}
		ft.cells[a] = c
	}
	return c
}

// HandleEvent implements trace.Listener.
func (ft *FastTrack) HandleEvent(ev trace.Event) {
	ft.stats.note(ev)
	switch ev.Op {
	case trace.OpFork:
		parent := ft.clockOf(ev.G)
		child := parent.Copy()
		child.Tick(ev.Child)
		for int(ev.Child) >= len(ft.clocks) {
			ft.clocks = append(ft.clocks, nil)
		}
		ft.clocks[ev.Child] = child
		parent.Tick(ev.G)

	case trace.OpAcquire:
		ft.locks.handle(ev)
		ft.clockOf(ev.G).Join(ft.objClock(ev.Obj))

	case trace.OpRelease:
		if ft.locks.handle(ev) && ev.Kind == trace.KindRWRead {
			// Read-mode release: lockset bookkeeping only. The HB
			// reader→writer edge travels through the RWMutex's
			// internal read-release object instead.
			return
		}
		ft.objClock(ev.Obj).Join(ft.clockOf(ev.G))
		ft.clockOf(ev.G).Tick(ev.G)

	case trace.OpRead, trace.OpAtomicLoad:
		ft.read(ev)

	case trace.OpWrite, trace.OpAtomicStore, trace.OpAtomicRMW:
		ft.write(ev)
	}
}

func (ft *FastTrack) newAccess(ev trace.Event) access {
	return access{
		g: ev.G, gname: ev.GName, time: ft.clockOf(ev.G).Get(ev.G),
		op: ev.Op, stk: ev.Stack, label: ev.Label,
		atomic: ev.Op.IsAtomic(), locks: ft.locks.heldLabels(ev.G), seq: ev.Seq,
	}
}

func (ft *FastTrack) read(ev trace.Event) {
	c := ft.cell(ev.Addr)
	cur := ft.clockOf(ev.G)
	if c.hasWrite && c.write.g != ev.G && c.write.time > cur.Get(c.write.g) {
		if !(c.write.atomic && ev.Op.IsAtomic()) {
			ft.report(ev, c, c.write)
		}
	}
	c.reads[ev.G] = ft.newAccess(ev)
}

func (ft *FastTrack) write(ev trace.Event) {
	c := ft.cell(ev.Addr)
	cur := ft.clockOf(ev.G)
	if c.hasWrite && c.write.g != ev.G && c.write.time > cur.Get(c.write.g) {
		if !(c.write.atomic && ev.Op.IsAtomic()) {
			ft.report(ev, c, c.write)
		}
	}
	for g, r := range c.reads {
		if g == ev.G {
			continue
		}
		if r.time > cur.Get(g) && !(r.atomic && ev.Op.IsAtomic()) {
			ft.report(ev, c, r)
		}
	}
	c.write = ft.newAccess(ev)
	c.hasWrite = true
	// FastTrack: a write subsumes the ordered read history; concurrent
	// reads were just reported. Clearing keeps the history bounded.
	for g := range c.reads {
		delete(c.reads, g)
	}
}

func (ft *FastTrack) report(ev trace.Event, c *ftCell, prior access) {
	if c.reports >= ft.MaxReportsPerCell {
		return
	}
	c.reports++
	second := ft.newAccess(ev)
	ft.races = append(ft.races, report.Race{
		First:    prior.toReport(ev.Addr),
		Second:   second.toReport(ev.Addr),
		Detector: ft.Name(),
		Seq:      ev.Seq,
	})
}
