package detector

import (
	"math/rand"
	"testing"

	"gorace/internal/progen"
	"gorace/internal/sched"
	"gorace/internal/trace"
	"gorace/internal/vclock"
)

// TestPooledFastTrackMatchesFresh is the fuzz-style differential for
// the recycled hot path: one FastTrack instance Reset between random
// traces must report exactly the races a fresh instance reports on
// each trace. Any pooled clock or dense-slice state leaking across
// Resets shows up as a verdict or report difference.
func TestPooledFastTrackMatchesFresh(t *testing.T) {
	pooled := NewFastTrack()
	for seed := int64(0); seed < 60; seed++ {
		prog := progen.Generate(seed, progen.Params{})
		rec := &trace.Recorder{}
		sched.Run(prog.Main(), sched.Options{
			Strategy: sched.NewRandom(), Seed: seed, MaxSteps: 1 << 18,
			Listeners: []trace.Listener{rec},
		})

		fresh := NewFastTrack()
		rec.Replay(fresh)
		pooled.Reset()
		rec.Replay(pooled)

		fr, pr := fresh.Races(), pooled.Races()
		if len(fr) != len(pr) {
			t.Fatalf("seed %d: fresh %d races, pooled %d", seed, len(fr), len(pr))
		}
		for i := range fr {
			if fr[i].Hash() != pr[i].Hash() {
				t.Fatalf("seed %d: report %d differs:\nfresh:  %s\npooled: %s",
					seed, i, fr[i], pr[i])
			}
		}
		fs, ps := fresh.Stats(), pooled.Stats()
		if fs != ps {
			t.Fatalf("seed %d: stats differ:\nfresh:  %s\npooled: %s", seed, fs, ps)
		}
	}
}

// TestPooledDetectorsMatchFreshOnRandomEventStreams drives every
// resettable detector with synthetic random event streams (not just
// scheduler-generated ones): random forks, lock sections, and plain /
// atomic accesses over a small address space, which exercises read-set
// inflation and shadow-cell reuse much harder than the corpus does.
func TestPooledDetectorsMatchFreshOnRandomEventStreams(t *testing.T) {
	build := map[string]func() Detector{
		"fasttrack": func() Detector { return NewFastTrack() },
		"epoch":     func() Detector { return NewCounting(NewEpoch()) },
		"djit":      func() Detector { return NewCounting(NewDJIT()) },
		"eraser":    func() Detector { return NewEraser() },
		"hybrid":    func() Detector { return NewHybrid() },
	}
	for name, mk := range build {
		pooled := mk()
		rs, ok := pooled.(Resetter)
		if !ok {
			t.Fatalf("%s: not resettable", name)
		}
		for seed := int64(0); seed < 40; seed++ {
			events := randomEventStream(seed)
			fresh := mk()
			for _, ev := range events {
				fresh.HandleEvent(ev)
			}
			rs.Reset()
			for _, ev := range events {
				pooled.HandleEvent(ev)
			}
			fr, pr := fresh.Races(), pooled.Races()
			if len(fr) != len(pr) {
				t.Fatalf("%s seed %d: fresh %d races, pooled %d", name, seed, len(fr), len(pr))
			}
			for i := range fr {
				if fr[i].Hash() != pr[i].Hash() {
					t.Fatalf("%s seed %d: report %d differs", name, seed, i)
				}
			}
			if fs, ps := fresh.Stats(), pooled.Stats(); fs != ps {
				t.Fatalf("%s seed %d: stats differ:\nfresh:  %s\npooled: %s", name, seed, fs, ps)
			}
		}
	}
}

// randomEventStream builds a structurally valid random trace: TIDs
// exist before they act (forked from g0), lock acquire/release pairs
// nest properly per goroutine, and accesses mix plain and atomic ops
// over a handful of cells.
func randomEventStream(seed int64) []trace.Event {
	rng := rand.New(rand.NewSource(seed))
	const (
		maxG    = 6
		addrs   = 8
		mutexes = 3
		nEvents = 400
	)
	var events []trace.Event
	var seq uint64
	emit := func(ev trace.Event) {
		seq++
		ev.Seq = seq
		events = append(events, ev)
	}
	gs := 1 // g0 exists
	held := make([][]trace.ObjID, maxG)
	for i := 0; i < nEvents; i++ {
		g := vclock.TID(rng.Intn(gs))
		switch r := rng.Intn(10); {
		case r == 0 && gs < maxG:
			emit(trace.Event{Op: trace.OpFork, G: g, Child: vclock.TID(gs)})
			gs++
		case r == 1 && len(held[g]) < 2:
			obj := trace.ObjID(1 + rng.Intn(mutexes))
			already := false
			for _, h := range held[g] {
				if h == obj {
					already = true
				}
			}
			if already {
				continue
			}
			held[g] = append(held[g], obj)
			emit(trace.Event{Op: trace.OpAcquire, G: g, Obj: obj, Kind: trace.KindMutex})
		case r == 2 && len(held[g]) > 0:
			obj := held[g][len(held[g])-1]
			held[g] = held[g][:len(held[g])-1]
			emit(trace.Event{Op: trace.OpRelease, G: g, Obj: obj, Kind: trace.KindMutex})
		default:
			ops := []trace.Op{trace.OpRead, trace.OpWrite, trace.OpRead, trace.OpWrite,
				trace.OpAtomicLoad, trace.OpAtomicStore, trace.OpAtomicRMW}
			emit(trace.Event{
				Op: ops[rng.Intn(len(ops))], G: g,
				Addr: trace.Addr(1 + rng.Intn(addrs)),
			})
		}
	}
	return events
}
