package detector

import (
	"fmt"
	"sort"

	"gorace/internal/registry"
	"gorace/internal/report"
	"gorace/internal/trace"
)

// DefaultName is the detector used when no name is given.
const DefaultName = "fasttrack"

var reg = registry.New[Detector]("detector")

// Register adds a detector factory under name. It panics on an empty
// name, a nil factory, or a duplicate registration.
func Register(name string, factory func() Detector) { reg.Register(name, factory) }

// Option configures construction in New beyond the detector name.
type Option func(*config)

type config struct {
	sampleRate int
}

// WithSampleRate asks New to wrap the detector in a Sampled gate that
// checks 1 in n accesses (sync events always pass). n ≤ 1 means no
// sampling; negative n is rejected by New. The "none" detector is
// never wrapped — there is nothing to sample.
func WithSampleRate(n int) Option {
	return func(c *config) { c.sampleRate = n }
}

// New builds a fresh detector by registered name ("" selects
// DefaultName). Unknown names error, listing the valid ones, as does
// an invalid option (negative sample rate).
func New(name string, opts ...Option) (Detector, error) {
	if name == "" {
		name = DefaultName
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.sampleRate < 0 {
		return nil, fmt.Errorf("detector: sample rate %d is negative (want ≥ 1, 1 = no sampling)", cfg.sampleRate)
	}
	d, err := reg.Build(name)
	if err != nil {
		return nil, err
	}
	if cfg.sampleRate > 1 && !IsNoop(d) {
		d = NewSampled(d, cfg.sampleRate)
	}
	return d, nil
}

// Names returns the registered detector names, sorted.
func Names() []string { return reg.Names() }

func init() {
	Register("fasttrack", func() Detector { return NewFastTrack() })
	Register("fasttrack-paged", func() Detector { return NewPagedFastTrack() })
	Register("epoch", func() Detector { return NewCounting(NewEpoch()) })
	Register("djit", func() Detector { return NewCounting(NewDJIT()) })
	Register("eraser", func() Detector { return NewEraser() })
	Register("hybrid", func() Detector { return NewHybrid() })
	Register("none", func() Detector { return Noop{} })
}

// CountingSource is the surface of the counting-only detectors (Epoch,
// DJIT): they track race hits and racy addresses without report
// metadata.
type CountingSource interface {
	trace.Listener
	Name() string
	RaceCount() int
	RacyAddrs() map[trace.Addr]bool
	Stats() Stats
}

// Counting adapts a counting-only detector to the unified Detector
// interface by synthesizing one minimal report per racy address, so
// consumers need no parallel race-count channel. The total number of
// conflicting pairs stays available via Count (and Stats().Reports).
type Counting struct {
	Inner CountingSource
}

// NewCounting wraps a counting-only detector.
func NewCounting(inner CountingSource) *Counting { return &Counting{Inner: inner} }

// HandleEvent implements trace.Listener.
func (c *Counting) HandleEvent(ev trace.Event) { c.Inner.HandleEvent(ev) }

// Name implements Detector.
func (c *Counting) Name() string { return c.Inner.Name() }

// Count returns the number of conflicting access pairs observed.
func (c *Counting) Count() int { return c.Inner.RaceCount() }

// Races implements Detector: one synthesized report per racy address,
// in address order. The reports carry no stacks — counting detectors
// keep no metadata — but they make "did anything race, and where"
// uniform across the detector family.
func (c *Counting) Races() []report.Race {
	racy := c.Inner.RacyAddrs()
	if len(racy) == 0 {
		return nil
	}
	addrs := make([]int, 0, len(racy))
	for a := range racy {
		addrs = append(addrs, int(a))
	}
	sort.Ints(addrs)
	out := make([]report.Race, 0, len(addrs))
	for _, a := range addrs {
		out = append(out, report.Race{
			First:    report.Access{Addr: trace.Addr(a), Op: trace.OpWrite},
			Second:   report.Access{Addr: trace.Addr(a), Op: trace.OpWrite},
			Detector: c.Inner.Name(),
		})
	}
	return out
}

// Candidates implements Detector.
func (c *Counting) Candidates() []report.Race { return nil }

// Stats implements Detector.
func (c *Counting) Stats() Stats { return c.Inner.Stats() }

// Reset implements Resetter by delegating to the wrapped counting
// detector. It panics on a non-resettable inner detector — silently
// keeping accumulated shadow state would corrupt every later run —
// so callers that may hold one must check CanReset first.
func (c *Counting) Reset() {
	r, ok := c.Inner.(Resetter)
	if !ok {
		panic("detector: Reset on Counting wrapper of non-resettable " + c.Inner.Name())
	}
	r.Reset()
}

// CanReset reports whether the wrapped detector supports in-place
// reuse; core.Runner consults this before recycling a Counting
// instance across runs.
func (c *Counting) CanReset() bool {
	_, ok := c.Inner.(Resetter)
	return ok
}

// Noop is the "none" detector: it observes nothing and reports
// nothing, the overhead baseline. The Runner recognizes it and skips
// attaching it as a listener, so a "none" run pays no per-event cost.
type Noop struct{}

// HandleEvent implements trace.Listener.
func (Noop) HandleEvent(trace.Event) {}

// Name implements Detector.
func (Noop) Name() string { return "none" }

// Races implements Detector.
func (Noop) Races() []report.Race { return nil }

// Candidates implements Detector.
func (Noop) Candidates() []report.Race { return nil }

// Stats implements Detector.
func (Noop) Stats() Stats { return Stats{} }

// Reset implements Resetter; the none detector holds no state.
func (Noop) Reset() {}

// Counter is implemented by detectors that track the total number of
// conflicting access pairs beyond the deduplicated report list
// (Counting and any wrapper around one). Consumers prefer Count over
// len(Races()) when available.
type Counter interface {
	Count() int
}

// Seeded is implemented by detectors whose behavior has a per-run
// pseudo-random component (the Sampled gate's phase). core.Runner
// calls SetRunSeed before each seed so results are a pure function of
// (seed, configuration) at any parallelism.
type Seeded interface {
	SetRunSeed(seed int64)
}

// IsNoop reports whether d is the "none" detector, unwrapping any
// Sampled gate. The Runner consults it to skip attaching a listener
// that would observe nothing.
func IsNoop(d Detector) bool {
	for {
		if _, ok := d.(Noop); ok {
			return true
		}
		s, ok := d.(*Sampled)
		if !ok {
			return false
		}
		d = s.Inner
	}
}
