package detector

import (
	"gorace/internal/report"
	"gorace/internal/trace"
	"gorace/internal/vclock"
)

// Epoch is a lean FastTrack variant that keeps only epochs and
// adaptive read sets in shadow cells — no stacks, labels, or lock
// annotations — and counts races instead of building reports. It
// exists for the epochs-vs-vector-clocks ablation (DESIGN.md): the
// detection *verdicts* must match FastTrack exactly, at a fraction of
// the per-access cost.
type Epoch struct {
	pool      *vclock.Pool
	clocks    []*vclock.VC
	objClocks []*vclock.VC
	objCount  int
	cells     []epochCell
	cellCount int
	addrIx    sparseIndex
	objIx     sparseIndex
	count     int
	racyAddrs map[trace.Addr]bool
	stats     statCounter
	adapt     adaptCounter
}

// epochCell is one cell's shadow word, stored by value in a dense
// slice indexed by Addr. A cell is lazily initialized on first touch
// (seen=false) because the zero Epoch is not NoEpoch.
type epochCell struct {
	seen        bool
	write       vclock.Epoch
	writeAtomic bool
	// Plain and atomic reads are kept in separate read sets so the
	// atomic-vs-atomic suppression rule matches FastTrack verdicts.
	reads       vclock.ReadSet
	atomicReads vclock.ReadSet
}

// NewEpoch returns a fresh epoch-based detector.
func NewEpoch() *Epoch {
	return &Epoch{
		pool:      vclock.NewPool(),
		racyAddrs: make(map[trace.Addr]bool),
	}
}

// Name implements CountingSource.
func (e *Epoch) Name() string { return "fasttrack-epoch" }

// Races returns nil: the epoch detector keeps no report metadata. Use
// RaceCount and RacyAddrs directly, or wrap with NewCounting for the
// unified Detector surface.
func (e *Epoch) Races() []report.Race { return nil }

// RaceCount returns the number of conflicting access pairs observed.
func (e *Epoch) RaceCount() int { return e.count }

// RacyAddrs returns the set of cells on which at least one race fired.
func (e *Epoch) RacyAddrs() map[trace.Addr]bool { return e.racyAddrs }

// Reset implements Resetter: all shadow state is cleared in place and
// clocks return to the pool, readying the detector for another run
// without reallocation.
func (e *Epoch) Reset() {
	for i, c := range e.clocks {
		if c != nil {
			e.pool.Release(c)
			e.clocks[i] = nil
		}
	}
	e.clocks = e.clocks[:0]
	for i, c := range e.objClocks {
		if c != nil {
			e.pool.Release(c)
			e.objClocks[i] = nil
		}
	}
	e.objClocks = e.objClocks[:0]
	e.objCount = 0
	for i := range e.cells {
		c := &e.cells[i]
		c.seen = false
		// Inflated read clocks must come back to the pool now, not
		// lazily on the cell's next touch — a run that never revisits
		// this address would otherwise strand them.
		c.reads.ReleaseTo(e.pool)
		c.atomicReads.ReleaseTo(e.pool)
	}
	e.cellCount = 0
	e.addrIx.reset()
	e.objIx.reset()
	e.count = 0
	clear(e.racyAddrs)
	e.stats = statCounter{}
	e.adapt = adaptCounter{}
}

func (e *Epoch) clockOf(g vclock.TID) *vclock.VC {
	for int(g) >= len(e.clocks) {
		e.clocks = append(e.clocks, nil)
	}
	if e.clocks[g] == nil {
		c := e.pool.Acquire()
		c.Set(g, 1)
		e.clocks[g] = c
	}
	return e.clocks[g]
}

func (e *Epoch) objClock(o trace.ObjID) *vclock.VC {
	o = trace.ObjID(e.objIx.local(uint64(o)))
	for int(o) >= len(e.objClocks) {
		e.objClocks = append(e.objClocks, nil)
	}
	if e.objClocks[o] == nil {
		e.objClocks[o] = e.pool.Acquire()
		e.objCount++
	}
	return e.objClocks[o]
}

// cell returns the shadow cell for a, initializing it on first touch.
// The pointer is only valid until the next cell call.
func (e *Epoch) cell(a trace.Addr) *epochCell {
	a = trace.Addr(e.addrIx.local(uint64(a)))
	for int(a) >= len(e.cells) {
		e.cells = append(e.cells, epochCell{})
	}
	c := &e.cells[a]
	if !c.seen {
		c.seen = true
		c.write = vclock.NoEpoch
		c.writeAtomic = false
		c.reads.ReleaseTo(e.pool)
		c.atomicReads.ReleaseTo(e.pool)
		e.cellCount++
	}
	return c
}

// HandleEvent implements trace.Listener.
func (e *Epoch) HandleEvent(ev trace.Event) {
	e.stats.note(ev)
	switch ev.Op {
	case trace.OpFork:
		parent := e.clockOf(ev.G)
		child := e.pool.Acquire()
		parent.CopyInto(child)
		child.Tick(ev.Child)
		for int(ev.Child) >= len(e.clocks) {
			e.clocks = append(e.clocks, nil)
		}
		e.clocks[ev.Child] = child
		parent.Tick(ev.G)

	case trace.OpAcquire:
		e.objClock(ev.Obj).JoinInto(e.clockOf(ev.G))

	case trace.OpRelease:
		if ev.Kind == trace.KindRWRead {
			return // lockset bookkeeping only; no HB edge
		}
		e.clockOf(ev.G).JoinInto(e.objClock(ev.Obj))
		e.clockOf(ev.G).Tick(ev.G)

	case trace.OpRead, trace.OpAtomicLoad:
		c := e.cell(ev.Addr)
		cur := e.clockOf(ev.G)
		if !c.write.IsNone() && c.write.TID() != ev.G && !c.write.LeqVC(cur) {
			if !(c.writeAtomic && ev.Op.IsAtomic()) {
				e.hit(ev.Addr)
			}
		}
		if ev.Op.IsAtomic() {
			e.noteRead(&c.atomicReads, ev.G, cur)
		} else {
			e.noteRead(&c.reads, ev.G, cur)
		}

	case trace.OpWrite, trace.OpAtomicStore, trace.OpAtomicRMW:
		c := e.cell(ev.Addr)
		cur := e.clockOf(ev.G)
		if !c.write.IsNone() && c.write.TID() != ev.G && !c.write.LeqVC(cur) {
			if !(c.writeAtomic && ev.Op.IsAtomic()) {
				e.hit(ev.Addr)
			}
		}
		// Report every concurrent reader, matching FastTrack's
		// per-reader reporting. Atomic readers race with this write
		// only if the write is not atomic itself.
		c.reads.ForEach(func(r vclock.Epoch) {
			if r.TID() != ev.G && !r.LeqVC(cur) {
				e.hit(ev.Addr)
			}
		})
		if !ev.Op.IsAtomic() {
			c.atomicReads.ForEach(func(r vclock.Epoch) {
				if r.TID() != ev.G && !r.LeqVC(cur) {
					e.hit(ev.Addr)
				}
			})
		}
		c.write = vclock.MakeEpoch(ev.G, cur.Get(ev.G))
		c.writeAtomic = ev.Op.IsAtomic()
		// The write subsumes the read history; count the demotion only
		// when an inflated clock actually went back to the pool (cell
		// init and Reset also call ReleaseTo, but those are teardown).
		if c.reads.ReleaseTo(e.pool) {
			e.adapt.demotions++
		}
		if c.atomicReads.ReleaseTo(e.pool) {
			e.adapt.demotions++
		}
	}
}

// noteRead folds a read into an adaptive read set, counting the
// promotion when the set inflates and the fast path when the read is
// absorbed in epoch form.
func (e *Epoch) noteRead(rs *vclock.ReadSet, g vclock.TID, cur *vclock.VC) {
	wasEpoch := !rs.IsInflated()
	if rs.NotePooled(vclock.MakeEpoch(g, cur.Get(g)), cur, e.pool) {
		e.adapt.promotions++
	} else if wasEpoch {
		e.adapt.fastReads++
	}
}

func (e *Epoch) hit(a trace.Addr) {
	e.count++
	e.racyAddrs[a] = true
}
