package detector

import (
	"gorace/internal/report"
	"gorace/internal/trace"
	"gorace/internal/vclock"
)

// Epoch is a lean FastTrack variant that keeps only epochs and
// adaptive read sets in shadow cells — no stacks, labels, or lock
// annotations — and counts races instead of building reports. It
// exists for the epochs-vs-vector-clocks ablation (DESIGN.md): the
// detection *verdicts* must match FastTrack exactly, at a fraction of
// the per-access cost.
type Epoch struct {
	clocks    []*vclock.VC
	objClocks map[trace.ObjID]*vclock.VC
	cells     map[trace.Addr]*epochCell
	count     int
	racyAddrs map[trace.Addr]bool
	stats     statCounter
}

type epochCell struct {
	write       vclock.Epoch
	writeAtomic bool
	// Plain and atomic reads are kept in separate read sets so the
	// atomic-vs-atomic suppression rule matches FastTrack verdicts.
	reads       vclock.ReadSet
	atomicReads vclock.ReadSet
}

// NewEpoch returns a fresh epoch-based detector.
func NewEpoch() *Epoch {
	return &Epoch{
		objClocks: make(map[trace.ObjID]*vclock.VC),
		cells:     make(map[trace.Addr]*epochCell),
		racyAddrs: make(map[trace.Addr]bool),
	}
}

// Name implements CountingSource.
func (e *Epoch) Name() string { return "fasttrack-epoch" }

// Races returns nil: the epoch detector keeps no report metadata. Use
// RaceCount and RacyAddrs directly, or wrap with NewCounting for the
// unified Detector surface.
func (e *Epoch) Races() []report.Race { return nil }

// RaceCount returns the number of conflicting access pairs observed.
func (e *Epoch) RaceCount() int { return e.count }

// RacyAddrs returns the set of cells on which at least one race fired.
func (e *Epoch) RacyAddrs() map[trace.Addr]bool { return e.racyAddrs }

func (e *Epoch) clockOf(g vclock.TID) *vclock.VC {
	for int(g) >= len(e.clocks) {
		e.clocks = append(e.clocks, nil)
	}
	if e.clocks[g] == nil {
		c := vclock.New()
		c.Set(g, 1)
		e.clocks[g] = c
	}
	return e.clocks[g]
}

func (e *Epoch) objClock(o trace.ObjID) *vclock.VC {
	c, ok := e.objClocks[o]
	if !ok {
		c = vclock.New()
		e.objClocks[o] = c
	}
	return c
}

func (e *Epoch) cell(a trace.Addr) *epochCell {
	c, ok := e.cells[a]
	if !ok {
		c = &epochCell{write: vclock.NoEpoch, reads: vclock.NewReadSet(), atomicReads: vclock.NewReadSet()}
		e.cells[a] = c
	}
	return c
}

// HandleEvent implements trace.Listener.
func (e *Epoch) HandleEvent(ev trace.Event) {
	e.stats.note(ev)
	switch ev.Op {
	case trace.OpFork:
		parent := e.clockOf(ev.G)
		child := parent.Copy()
		child.Tick(ev.Child)
		for int(ev.Child) >= len(e.clocks) {
			e.clocks = append(e.clocks, nil)
		}
		e.clocks[ev.Child] = child
		parent.Tick(ev.G)

	case trace.OpAcquire:
		e.clockOf(ev.G).Join(e.objClock(ev.Obj))

	case trace.OpRelease:
		if ev.Kind == trace.KindRWRead {
			return // lockset bookkeeping only; no HB edge
		}
		e.objClock(ev.Obj).Join(e.clockOf(ev.G))
		e.clockOf(ev.G).Tick(ev.G)

	case trace.OpRead, trace.OpAtomicLoad:
		c := e.cell(ev.Addr)
		cur := e.clockOf(ev.G)
		if !c.write.IsNone() && c.write.TID() != ev.G && !c.write.LeqVC(cur) {
			if !(c.writeAtomic && ev.Op.IsAtomic()) {
				e.hit(ev.Addr)
			}
		}
		if ev.Op.IsAtomic() {
			c.atomicReads.Note(vclock.MakeEpoch(ev.G, cur.Get(ev.G)), cur)
		} else {
			c.reads.Note(vclock.MakeEpoch(ev.G, cur.Get(ev.G)), cur)
		}

	case trace.OpWrite, trace.OpAtomicStore, trace.OpAtomicRMW:
		c := e.cell(ev.Addr)
		cur := e.clockOf(ev.G)
		if !c.write.IsNone() && c.write.TID() != ev.G && !c.write.LeqVC(cur) {
			if !(c.writeAtomic && ev.Op.IsAtomic()) {
				e.hit(ev.Addr)
			}
		}
		// Report every concurrent reader, matching FastTrack's
		// per-reader reporting. Atomic readers race with this write
		// only if the write is not atomic itself.
		for _, r := range c.reads.Readers() {
			if r.TID() != ev.G && !r.LeqVC(cur) {
				e.hit(ev.Addr)
			}
		}
		if !ev.Op.IsAtomic() {
			for _, r := range c.atomicReads.Readers() {
				if r.TID() != ev.G && !r.LeqVC(cur) {
					e.hit(ev.Addr)
				}
			}
		}
		c.write = vclock.MakeEpoch(ev.G, cur.Get(ev.G))
		c.writeAtomic = ev.Op.IsAtomic()
		c.reads.Reset()
		c.atomicReads.Reset()
	}
}

func (e *Epoch) hit(a trace.Addr) {
	e.count++
	e.racyAddrs[a] = true
}
