package detector

import (
	"unsafe"

	"gorace/internal/trace"
)

// pagedCellsPerPage is the shadow-page granularity: cells are grouped
// into pages of this many consecutive dense indices, and eviction
// reclaims whole pages. 256 cells × ~¼ KiB of ftCell state ≈ 64 KiB
// per page — big enough that LRU bookkeeping is negligible per access,
// small enough that one eviction does not blow away a large fraction
// of the working set.
const pagedCellsPerPage = 256

// Evictor is implemented by detectors whose shadow memory is paged and
// evictable, the hook streaming ingest (internal/stream) uses to hold
// a detector under a hard memory ceiling. A budget of 0 means
// unbounded — the detector must then behave exactly like its unpaged
// counterpart.
type Evictor interface {
	// SetPageBudget bounds the resident shadow pages; exceeding it
	// evicts least-recently-touched pages. 0 removes the bound.
	SetPageBudget(pages int)
	// PageBytes returns the approximate heap footprint of one resident
	// page, the unit callers divide a byte ceiling by.
	PageBytes() int
	// LivePages returns the number of currently resident pages.
	LivePages() int
}

// PagedFastTrack is FastTrack with paged, evictable shadow memory: the
// dense cell slice is tracked in pages of pagedCellsPerPage cells,
// each page carrying a last-touch tick, and when a page budget is set
// the least-recently-touched page is reclaimed whenever the budget is
// exceeded. Evicted cells lose their access history; a re-accessed
// evicted address restarts in epoch form as if never seen, so races
// straddling an eviction are missed (false negatives only — clearing
// history can never fabricate a happens-before violation, so every
// report remains one the unpaged detector would also make). Evictions
// and Reloads in Stats quantify the tradeoff.
//
// With no budget set, PagedFastTrack is report-identical to FastTrack
// (paged_test.go pins this), so the streaming path's
// unbounded-ceiling mode degenerates to exact batch semantics.
//
// Eviction is driven by a deterministic access-count clock, not
// wall-time or GC pressure: the same event stream under the same
// budget always evicts the same pages at the same points, keeping
// streaming results reproducible.
type PagedFastTrack struct {
	*FastTrack
	maxPages           int
	tick               uint64
	touch              []uint64 // per-page last-touch tick
	resident           []bool
	wasEver            []bool // page has been evicted at least once
	live               int
	evictions, reloads int
}

// NewPagedFastTrack returns a paged detector with no page budget
// (unbounded, FastTrack-identical) until SetPageBudget is called.
func NewPagedFastTrack() *PagedFastTrack {
	return &PagedFastTrack{FastTrack: NewFastTrack()}
}

// Name implements Detector, distinguishing the paged variant in
// experiment output; the race reports themselves keep the embedded
// FastTrack's name (and identical §3.3.1 hashes), since the paged
// variant is the same algorithm under a different retention policy.
func (p *PagedFastTrack) Name() string { return "fasttrack-paged" }

// SetPageBudget implements Evictor.
func (p *PagedFastTrack) SetPageBudget(pages int) {
	if pages < 0 {
		pages = 0
	}
	p.maxPages = pages
}

// PageBytes implements Evictor: the dense cell state of one page. The
// real footprint also includes promoted reader lists and report
// storage, which is why callers budget pages at a fraction of their
// byte ceiling rather than all of it.
func (p *PagedFastTrack) PageBytes() int {
	return pagedCellsPerPage * int(unsafe.Sizeof(ftCell{}))
}

// LivePages implements Evictor.
func (p *PagedFastTrack) LivePages() int { return p.live }

// Stats extends the FastTrack counters with the eviction tallies.
func (p *PagedFastTrack) Stats() Stats {
	s := p.FastTrack.Stats()
	s.Evictions = p.evictions
	s.Reloads = p.reloads
	return s
}

// Reset implements Resetter, additionally rewinding the paging state.
func (p *PagedFastTrack) Reset() {
	p.FastTrack.Reset()
	p.tick = 0
	p.live = 0
	p.evictions, p.reloads = 0, 0
	for i := range p.touch {
		p.touch[i] = 0
		p.resident[i] = false
		p.wasEver[i] = false
	}
}

// HandleEvent implements trace.Listener: page bookkeeping (touch,
// fault, evict) runs before the embedded FastTrack consumes the event,
// so the cell the access lands in is guaranteed resident.
func (p *PagedFastTrack) HandleEvent(ev trace.Event) {
	if ev.Op.IsAccess() {
		p.tick++
		// The same first-touch mapping FastTrack.cell will apply —
		// sparseIndex assignment is idempotent, so asking first does
		// not disturb it.
		pg := int(p.addrIx.local(uint64(ev.Addr))) / pagedCellsPerPage
		for pg >= len(p.touch) {
			p.touch = append(p.touch, 0)
			p.resident = append(p.resident, false)
			p.wasEver = append(p.wasEver, false)
		}
		if !p.resident[pg] {
			p.resident[pg] = true
			p.live++
			if p.wasEver[pg] {
				p.reloads++
			}
		}
		p.touch[pg] = p.tick
		if p.maxPages > 0 && p.live > p.maxPages {
			p.evictColdest(pg)
		}
	}
	p.FastTrack.HandleEvent(ev)
}

// evictColdest reclaims the least-recently-touched resident page other
// than keep (the page the current access needs). Ties break toward the
// lowest page index, keeping eviction order a pure function of the
// event stream.
func (p *PagedFastTrack) evictColdest(keep int) {
	victim, best := -1, uint64(0)
	for pg, res := range p.resident {
		if !res || pg == keep {
			continue
		}
		if victim == -1 || p.touch[pg] < best {
			victim, best = pg, p.touch[pg]
		}
	}
	if victim == -1 {
		return // budget of 1 with only the current page resident
	}
	lo := victim * pagedCellsPerPage
	hi := lo + pagedCellsPerPage
	if hi > len(p.cells) {
		hi = len(p.cells)
	}
	for i := lo; i < hi; i++ {
		c := &p.cells[i]
		if !c.seen {
			continue
		}
		if c.readers != nil {
			p.releaseReaders(c.readers)
		}
		*c = ftCell{}
		p.cellCount--
	}
	p.resident[victim] = false
	p.wasEver[victim] = true
	p.live--
	p.evictions++
}
