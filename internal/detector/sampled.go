package detector

import (
	"fmt"

	"gorace/internal/report"
	"gorace/internal/trace"
)

// Sampled is the access-sampling wrapper: it forwards every
// synchronization and fork event to the inner detector — the
// happens-before clocks must stay exact or sampled verdicts would be
// wrong, not merely incomplete — but gates memory accesses through a
// deterministic 1-in-Rate counter. Sampling trades detection
// probability for overhead on the hottest part of the event stream;
// docs/DETECTORS.md documents the tradeoff curve and how campaigns
// sweep it.
//
// Determinism: the gate is a simple per-run access counter with a
// seed-derived starting phase (set via SetRunSeed, which core.Runner
// calls before each seed). Each modeled run's event stream is itself
// sequential and deterministic per seed, so the set of checked
// accesses — and therefore every verdict — is reproducible at any
// campaign parallelism. Rate 1 checks every access and is
// behaviorally identical to the unwrapped detector.
type Sampled struct {
	// Inner is the wrapped detector receiving the sampled stream.
	Inner Detector
	// Rate is the sampling rate: 1 in Rate accesses is checked.
	Rate int

	ctr     uint64
	phase   uint64
	stats   statCounter // full-stream event shape, pre-gate
	checked int
	skipped int
}

// NewSampled wraps inner with a 1-in-rate access-sampling gate.
// Rates below 1 are treated as 1 (check everything).
func NewSampled(inner Detector, rate int) *Sampled {
	if rate < 1 {
		rate = 1
	}
	return &Sampled{Inner: inner, Rate: rate}
}

// Name implements Detector, tagging the inner name with the rate so a
// sampled run is recognizable in reports and logs. Race dedup hashes
// cover only the two stacks, never the detector name, so the tag does
// not perturb corpus identity.
func (s *Sampled) Name() string {
	if s.Rate <= 1 {
		return s.Inner.Name()
	}
	return fmt.Sprintf("%s+sample:%d", s.Inner.Name(), s.Rate)
}

// HandleEvent implements trace.Listener: sync and fork events always
// pass through; accesses pass 1 in Rate.
func (s *Sampled) HandleEvent(ev trace.Event) {
	s.stats.note(ev)
	if ev.Op.IsAccess() && s.Rate > 1 {
		hit := (s.ctr+s.phase)%uint64(s.Rate) == 0
		s.ctr++
		if !hit {
			s.skipped++
			return
		}
		s.checked++
	} else if ev.Op.IsAccess() {
		s.checked++
	}
	s.Inner.HandleEvent(ev)
}

// Races implements Detector.
func (s *Sampled) Races() []report.Race { return s.Inner.Races() }

// Candidates implements Detector.
func (s *Sampled) Candidates() []report.Race { return s.Inner.Candidates() }

// Count implements Counter by delegating to the wrapped detector.
// For a report-producing inner detector it returns 0, matching the
// runner's convention that a nonzero count marks a counting-only
// detector (full reports speak for themselves via Races).
func (s *Sampled) Count() int {
	if c, ok := s.Inner.(Counter); ok {
		return c.Count()
	}
	return 0
}

// Stats implements Detector. The event-shape counters describe the
// full pre-gate stream; CheckedAccesses/SkippedAccesses carry the
// gate's split, and the shadow-state and adaptive counters are the
// inner detector's own — no zero-value lies about work that really
// happened inside.
func (s *Sampled) Stats() Stats {
	st := s.Inner.Stats()
	st.Events = s.stats.events
	st.Accesses = s.stats.accesses
	st.SyncOps = s.stats.syncOps
	st.CheckedAccesses = s.checked
	st.SkippedAccesses = s.skipped
	return st
}

// SetRunSeed implements Seeded: it derives the gate's starting phase
// from the run seed (splitmix64, so neighboring seeds get unrelated
// phases) and rewinds the access counter. core.Runner calls this
// before every seed so campaign results depend only on (seed, rate).
func (s *Sampled) SetRunSeed(seed int64) {
	if s.Rate > 1 {
		s.phase = splitmix64(uint64(seed)) % uint64(s.Rate)
	}
	s.ctr = 0
	if in, ok := s.Inner.(Seeded); ok {
		in.SetRunSeed(seed)
	}
}

// Reset implements Resetter by delegating to the wrapped detector and
// rewinding the gate. Like Counting.Reset it panics on a
// non-resettable inner detector; check CanReset first.
func (s *Sampled) Reset() {
	r, ok := s.Inner.(Resetter)
	if !ok {
		panic("detector: Reset on Sampled wrapper of non-resettable " + s.Inner.Name())
	}
	r.Reset()
	s.ctr = 0
	s.stats = statCounter{}
	s.checked, s.skipped = 0, 0
}

// CanReset reports whether the wrapped detector supports in-place
// reuse across runs.
func (s *Sampled) CanReset() bool {
	if c, ok := s.Inner.(interface{ CanReset() bool }); ok {
		return c.CanReset()
	}
	_, ok := s.Inner.(Resetter)
	return ok
}

// splitmix64 is the SplitMix64 finalizer, a cheap bijective hash used
// to spread consecutive seeds into unrelated sampling phases.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
