// Package detector implements dynamic data race detection over the
// event stream of the modeled runtime.
//
// Three detectors are provided, mirroring the algorithm family §3.1
// describes inside ThreadSanitizer:
//
//   - FastTrack: the precise happens-before detector (vector clocks
//     with epoch optimizations), the reference detector of this repo.
//   - Eraser: the classic lockset detector — interleaving-insensitive
//     but imprecise ("may include races that may never manifest").
//   - Hybrid: runs both, reporting FastTrack races as confirmed and
//     Eraser-only findings as lockset candidates, approximating how
//     TSan "integrates lock-set and happens-before algorithms".
//
// All detectors are trace.Listeners and can run online (attached to a
// scheduler) or offline over a recorded trace (post-facto, the
// deployment mode of §3.3).
package detector

import (
	"gorace/internal/report"
	"gorace/internal/trace"
	"gorace/internal/vclock"
)

// Detector is a race detector consuming runtime events. All detectors
// expose the same surface, so consumers (the core.Runner, the CLI
// tools, post-facto replay) never special-case an algorithm: precise
// detectors fill Races, lockset-based ones may additionally surface
// Candidates, and counting-only detectors are wrapped by Counting so
// their verdicts still appear as (minimal) reports.
type Detector interface {
	trace.Listener
	// Races returns the reports accumulated so far.
	Races() []report.Race
	// Candidates returns findings that may not manifest under the
	// analyzed schedule (lockset-only reports); nil for precise
	// detectors.
	Candidates() []report.Race
	// Stats summarizes the work performed (events, shadow cells,
	// reports); Stats().Reports is the race count for counting
	// detectors.
	Stats() Stats
	// Name identifies the detector in reports and experiments.
	Name() string
}

// lockTracker maintains per-goroutine held-lock sets from
// acquire/release events. Shared by the HB detector (for report
// annotation) and the Eraser detector (as its core state).
type lockTracker struct {
	// held[g] lists lock object ids currently held, in acquisition
	// order; reads-held are tracked separately from write-held.
	write map[vclock.TID][]lockEntry
	read  map[vclock.TID][]lockEntry
}

type lockEntry struct {
	obj   trace.ObjID
	label string
}

func newLockTracker() *lockTracker {
	return &lockTracker{
		write: make(map[vclock.TID][]lockEntry),
		read:  make(map[vclock.TID][]lockEntry),
	}
}

// handle updates lock state; returns true if the event was lock-related.
func (lt *lockTracker) handle(ev trace.Event) bool {
	switch {
	case ev.Op == trace.OpAcquire && ev.Kind == trace.KindMutex:
		lt.write[ev.G] = append(lt.write[ev.G], lockEntry{ev.Obj, ev.Label})
		return true
	case ev.Op == trace.OpRelease && ev.Kind == trace.KindMutex:
		lt.write[ev.G] = removeLock(lt.write[ev.G], ev.Obj)
		return true
	case ev.Op == trace.OpAcquire && ev.Kind == trace.KindRWRead:
		lt.read[ev.G] = append(lt.read[ev.G], lockEntry{ev.Obj, ev.Label})
		return true
	case ev.Op == trace.OpRelease && ev.Kind == trace.KindRWRead:
		lt.read[ev.G] = removeLock(lt.read[ev.G], ev.Obj)
		return true
	}
	return false
}

func removeLock(ls []lockEntry, obj trace.ObjID) []lockEntry {
	for i := len(ls) - 1; i >= 0; i-- {
		if ls[i].obj == obj {
			return append(ls[:i], ls[i+1:]...)
		}
	}
	return ls
}

// writeHeld returns the ids of write-held locks of g.
func (lt *lockTracker) writeHeld(g vclock.TID) []trace.ObjID {
	return ids(lt.write[g])
}

// allHeld returns the ids of all locks (write- and read-held) of g.
func (lt *lockTracker) allHeld(g vclock.TID) []trace.ObjID {
	return append(ids(lt.write[g]), ids(lt.read[g])...)
}

// heldLabels returns human-readable names of all locks held by g.
func (lt *lockTracker) heldLabels(g vclock.TID) []string {
	var out []string
	for _, e := range lt.write[g] {
		out = append(out, e.label)
	}
	for _, e := range lt.read[g] {
		out = append(out, e.label+"(r)")
	}
	return out
}

func ids(ls []lockEntry) []trace.ObjID {
	out := make([]trace.ObjID, 0, len(ls))
	for _, e := range ls {
		out = append(out, e.obj)
	}
	return out
}

// intersect keeps the members of a that are also in b.
func intersect(a, b []trace.ObjID) []trace.ObjID {
	var out []trace.ObjID
	for _, x := range a {
		for _, y := range b {
			if x == y {
				out = append(out, x)
				break
			}
		}
	}
	return out
}
