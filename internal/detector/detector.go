// Package detector implements dynamic data race detection over the
// event stream of the modeled runtime.
//
// Three detectors are provided, mirroring the algorithm family §3.1
// describes inside ThreadSanitizer:
//
//   - FastTrack: the precise happens-before detector (vector clocks
//     with epoch optimizations), the reference detector of this repo.
//   - Eraser: the classic lockset detector — interleaving-insensitive
//     but imprecise ("may include races that may never manifest").
//   - Hybrid: runs both, reporting FastTrack races as confirmed and
//     Eraser-only findings as lockset candidates, approximating how
//     TSan "integrates lock-set and happens-before algorithms".
//
// All detectors are trace.Listeners and can run online (attached to a
// scheduler) or offline over a recorded trace (post-facto, the
// deployment mode of §3.3).
package detector

import (
	"gorace/internal/report"
	"gorace/internal/trace"
	"gorace/internal/vclock"
)

// Detector is a race detector consuming runtime events. All detectors
// expose the same surface, so consumers (the core.Runner, the CLI
// tools, post-facto replay) never special-case an algorithm: precise
// detectors fill Races, lockset-based ones may additionally surface
// Candidates, and counting-only detectors are wrapped by Counting so
// their verdicts still appear as (minimal) reports.
type Detector interface {
	trace.Listener
	// Races returns the reports accumulated so far.
	Races() []report.Race
	// Candidates returns findings that may not manifest under the
	// analyzed schedule (lockset-only reports); nil for precise
	// detectors.
	Candidates() []report.Race
	// Stats summarizes the work performed (events, shadow cells,
	// reports); Stats().Reports is the race count for counting
	// detectors.
	Stats() Stats
	// Name identifies the detector in reports and experiments.
	Name() string
}

// Resetter is implemented by detectors that can be rewound to their
// initial state in place, retaining allocated buffers, so one instance
// can analyze many runs without churning the garbage collector. After
// Reset, slices previously returned by Races/Candidates are
// invalidated; callers that keep results across runs must copy them
// first (core.Runner does).
type Resetter interface {
	Reset()
}

// lockTracker maintains per-goroutine held-lock sets from
// acquire/release events. Shared by the HB detector (for report
// annotation) and the Eraser detector (as its core state). Held sets
// are dense slices keyed by TID, so the per-event bookkeeping is a
// bounds check rather than a map probe.
type lockTracker struct {
	// write[g] / read[g] list lock object ids currently held, in
	// acquisition order; reads-held are tracked separately from
	// write-held.
	write [][]lockEntry
	read  [][]lockEntry
	// cache[g] holds the derived views of g's current lock set
	// (labels for reports, id sets for lockset refinement). Accesses
	// are far more frequent than acquire/release, so deriving these
	// once per lock-set change instead of once per access is what
	// makes the annotated access path allocation-free. Each rebuild
	// allocates fresh slices; consumers may keep the old ones, which
	// stay immutable forever.
	cache []lockView
}

// lockView caches the derived forms of one goroutine's lock set. Each
// field is built lazily under its own valid bit, so a detector that
// only wants labels (FastTrack) never pays for the id sets Eraser
// needs, and vice versa.
type lockView struct {
	labelsOK bool
	labels   []string
	writeOK  bool
	writeIDs []trace.ObjID
	allOK    bool
	allIDs   []trace.ObjID
}

type lockEntry struct {
	obj   trace.ObjID
	label string
}

func newLockTracker() *lockTracker {
	return &lockTracker{}
}

// reset empties every held set in place, keeping per-goroutine buffers.
func (lt *lockTracker) reset() {
	for i := range lt.write {
		lt.write[i] = lt.write[i][:0]
	}
	for i := range lt.read {
		lt.read[i] = lt.read[i][:0]
	}
	for i := range lt.cache {
		lt.cache[i] = lockView{}
	}
}

// view returns g's cache slot, growing the table as needed.
func (lt *lockTracker) view(g vclock.TID) *lockView {
	for int(g) >= len(lt.cache) {
		lt.cache = append(lt.cache, lockView{})
	}
	return &lt.cache[g]
}

// invalidate marks g's derived views stale after a lock-set mutation.
func (lt *lockTracker) invalidate(g vclock.TID) {
	if int(g) < len(lt.cache) {
		lt.cache[g] = lockView{}
	}
}

func growLocks(held [][]lockEntry, g vclock.TID) [][]lockEntry {
	for int(g) >= len(held) {
		held = append(held, nil)
	}
	return held
}

// handle updates lock state; returns true if the event was lock-related.
func (lt *lockTracker) handle(ev trace.Event) bool {
	switch {
	case ev.Op == trace.OpAcquire && ev.Kind == trace.KindMutex:
		lt.write = growLocks(lt.write, ev.G)
		lt.write[ev.G] = append(lt.write[ev.G], lockEntry{ev.Obj, ev.Label})
	case ev.Op == trace.OpRelease && ev.Kind == trace.KindMutex:
		lt.write = growLocks(lt.write, ev.G)
		lt.write[ev.G] = removeLock(lt.write[ev.G], ev.Obj)
	case ev.Op == trace.OpAcquire && ev.Kind == trace.KindRWRead:
		lt.read = growLocks(lt.read, ev.G)
		lt.read[ev.G] = append(lt.read[ev.G], lockEntry{ev.Obj, ev.Label})
	case ev.Op == trace.OpRelease && ev.Kind == trace.KindRWRead:
		lt.read = growLocks(lt.read, ev.G)
		lt.read[ev.G] = removeLock(lt.read[ev.G], ev.Obj)
	default:
		return false
	}
	lt.invalidate(ev.G)
	return true
}

func removeLock(ls []lockEntry, obj trace.ObjID) []lockEntry {
	for i := len(ls) - 1; i >= 0; i-- {
		if ls[i].obj == obj {
			return append(ls[:i], ls[i+1:]...)
		}
	}
	return ls
}

func heldOf(held [][]lockEntry, g vclock.TID) []lockEntry {
	if int(g) >= len(held) {
		return nil
	}
	return held[g]
}

// writeHeld returns the ids of write-held locks of g. The slice is
// shared and immutable; callers may retain but must not mutate it.
func (lt *lockTracker) writeHeld(g vclock.TID) []trace.ObjID {
	v := lt.view(g)
	if !v.writeOK {
		v.writeOK = true
		v.writeIDs = nil
		for _, e := range heldOf(lt.write, g) {
			v.writeIDs = append(v.writeIDs, e.obj)
		}
	}
	return v.writeIDs
}

// allHeld returns the ids of all locks (write- and read-held) of g,
// under the same sharing contract as writeHeld.
func (lt *lockTracker) allHeld(g vclock.TID) []trace.ObjID {
	v := lt.view(g)
	if !v.allOK {
		v.allOK = true
		v.allIDs = nil
		for _, e := range heldOf(lt.write, g) {
			v.allIDs = append(v.allIDs, e.obj)
		}
		for _, e := range heldOf(lt.read, g) {
			v.allIDs = append(v.allIDs, e.obj)
		}
	}
	return v.allIDs
}

// heldLabels returns human-readable names of all locks held by g,
// under the same sharing contract as writeHeld.
func (lt *lockTracker) heldLabels(g vclock.TID) []string {
	v := lt.view(g)
	if !v.labelsOK {
		v.labelsOK = true
		v.labels = nil
		for _, e := range heldOf(lt.write, g) {
			v.labels = append(v.labels, e.label)
		}
		for _, e := range heldOf(lt.read, g) {
			v.labels = append(v.labels, e.label+"(r)")
		}
	}
	return v.labels
}

// intersect keeps the members of a that are also in b. When every
// member of a survives — by far the common case for consistently
// locked data — a is returned unchanged, so steady-state lockset
// refinement allocates nothing.
func intersect(a, b []trace.ObjID) []trace.ObjID {
	kept := 0
	for _, x := range a {
		found := false
		for _, y := range b {
			if x == y {
				found = true
				break
			}
		}
		if !found {
			break
		}
		kept++
	}
	if kept == len(a) {
		return a
	}
	out := append([]trace.ObjID(nil), a[:kept]...)
	for _, x := range a[kept+1:] {
		for _, y := range b {
			if x == y {
				out = append(out, x)
				break
			}
		}
	}
	return out
}
