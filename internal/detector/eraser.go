package detector

import (
	"gorace/internal/report"
	"gorace/internal/trace"
	"gorace/internal/vclock"
)

// eraserState is the per-cell state machine of the Eraser algorithm
// (Savage et al., TOCS 1997).
type eraserState uint8

const (
	stVirgin eraserState = iota
	stExclusive
	stShared
	stSharedModified
)

func (s eraserState) String() string {
	switch s {
	case stVirgin:
		return "virgin"
	case stExclusive:
		return "exclusive"
	case stShared:
		return "shared"
	case stSharedModified:
		return "shared-modified"
	default:
		return "?"
	}
}

// eraserCell lives by value in a dense slice indexed by Addr; its zero
// value (state stVirgin) is a valid fresh cell, so no per-cell
// initialization or allocation happens on first touch.
type eraserCell struct {
	seen  bool
	state eraserState
	owner vclock.TID
	// candidate is C(v): locks held at *every* access so far (write
	// locks for writes; write- or read-held locks for reads). nil
	// means "not yet initialized", distinct from the empty set.
	candidate   []trace.ObjID
	initialized bool
	last        access
	hasLast     bool
	reported    bool
}

// Eraser is the lockset race detector: interleaving-insensitive, so it
// flags inconsistently-locked data even when the analyzed schedule
// never exposed unordered accesses — and, dually, it false-positives
// on data synchronized by non-lock means (channels, WaitGroups), the
// imprecision §3.1 notes ("may include races that may never manifest").
type Eraser struct {
	locks     *lockTracker
	cells     []eraserCell
	cellCount int
	addrIx    sparseIndex
	races     []report.Race
	stats     statCounter
}

// NewEraser returns a fresh lockset detector.
func NewEraser() *Eraser {
	return &Eraser{locks: newLockTracker()}
}

// Reset implements Resetter: the cell slice is zeroed in place and the
// lock tracker emptied, keeping all buffers for the next run. Slices
// previously returned by Races are invalidated.
func (e *Eraser) Reset() {
	for i := range e.cells {
		e.cells[i] = eraserCell{}
	}
	e.cellCount = 0
	e.addrIx.reset()
	e.locks.reset()
	e.races = e.races[:0]
	e.stats = statCounter{}
}

// Name implements Detector.
func (e *Eraser) Name() string { return "eraser-lockset" }

// Races implements Detector. Eraser reports are inherently lockset
// findings; standalone use reports them as Races, while the Hybrid
// detector demotes the unconfirmed ones to Candidates.
func (e *Eraser) Races() []report.Race { return e.races }

// Candidates implements Detector.
func (e *Eraser) Candidates() []report.Race { return nil }

// RaceCount returns the number of reports.
func (e *Eraser) RaceCount() int { return len(e.races) }

// CellState exposes a cell's state machine position, for tests.
func (e *Eraser) CellState(a trace.Addr) string {
	a = trace.Addr(e.addrIx.local(uint64(a)))
	if int(a) < len(e.cells) && e.cells[a].seen {
		return e.cells[a].state.String()
	}
	return stVirgin.String()
}

// HandleEvent implements trace.Listener.
func (e *Eraser) HandleEvent(ev trace.Event) {
	e.stats.note(ev)
	if e.locks.handle(ev) {
		return
	}
	if !ev.Op.IsAccess() || ev.Op.IsAtomic() {
		// Atomic accesses are treated as synchronization, not data
		// accesses, by the lockset algorithm.
		return
	}
	idx := trace.Addr(e.addrIx.local(uint64(ev.Addr)))
	for int(idx) >= len(e.cells) {
		e.cells = append(e.cells, eraserCell{})
	}
	c := &e.cells[idx]
	if !c.seen {
		c.seen = true
		e.cellCount++
	}
	isWrite := ev.Op.IsWrite()
	held := e.locks.allHeld(ev.G)
	if isWrite {
		held = e.locks.writeHeld(ev.G)
	}

	switch c.state {
	case stVirgin:
		c.state = stExclusive
		c.owner = ev.G
	case stExclusive:
		if ev.G != c.owner {
			if isWrite {
				c.state = stSharedModified
			} else {
				c.state = stShared
			}
			c.candidate = held
			c.initialized = true
		}
	case stShared:
		c.refine(held)
		if isWrite {
			c.state = stSharedModified
		}
	case stSharedModified:
		c.refine(held)
	}

	if c.state == stSharedModified && c.initialized && len(c.candidate) == 0 && !c.reported {
		c.reported = true
		var first report.Access
		if c.hasLast {
			first = c.last.toReport(ev.Addr)
		}
		e.races = append(e.races, report.Race{
			First: first,
			Second: report.Access{
				G: ev.G, GName: ev.GName, Op: ev.Op, Addr: ev.Addr, Seq: ev.Seq,
				Stack: ev.Stack, Label: ev.Label,
				Locks: e.locks.heldLabels(ev.G),
			},
			Detector: e.Name(),
			Seq:      ev.Seq,
		})
	}

	c.last = access{
		g: ev.G, gname: ev.GName, op: ev.Op, stk: ev.Stack,
		label: ev.Label, locks: e.locks.heldLabels(ev.G), seq: ev.Seq,
	}
	c.hasLast = true
}

func (c *eraserCell) refine(held []trace.ObjID) {
	if !c.initialized {
		c.candidate = held
		c.initialized = true
		return
	}
	c.candidate = intersect(c.candidate, held)
}

// Hybrid runs the happens-before and lockset detectors side by side,
// approximating ThreadSanitizer's integration of the two algorithms:
// HB reports are precise ("confirmed"); Eraser findings on cells the
// HB detector did not flag are "candidates" — potential races the
// analyzed interleaving happened to order.
type Hybrid struct {
	HB *FastTrack
	LS *Eraser
}

// NewHybrid returns a fresh hybrid detector.
func NewHybrid() *Hybrid {
	return &Hybrid{HB: NewFastTrack(), LS: NewEraser()}
}

// Reset implements Resetter by resetting both sides.
func (h *Hybrid) Reset() {
	h.HB.Reset()
	h.LS.Reset()
}

// Name implements Detector.
func (h *Hybrid) Name() string { return "hybrid-tsan" }

// HandleEvent implements trace.Listener.
func (h *Hybrid) HandleEvent(ev trace.Event) {
	h.HB.HandleEvent(ev)
	h.LS.HandleEvent(ev)
}

// Races implements Detector: the precise (HB) reports.
func (h *Hybrid) Races() []report.Race { return h.HB.Races() }

// Candidates returns lockset findings on addresses the HB detector did
// not confirm in this execution — the "might race under another
// schedule" set that makes post-facto triage noisy.
func (h *Hybrid) Candidates() []report.Race {
	confirmed := make(map[trace.Addr]bool)
	for _, r := range h.HB.Races() {
		confirmed[r.Second.Addr] = true
	}
	var out []report.Race
	for _, r := range h.LS.Races() {
		if !confirmed[r.Second.Addr] {
			out = append(out, r)
		}
	}
	return out
}
