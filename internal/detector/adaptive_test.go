package detector

import (
	"testing"

	"gorace/internal/instrument"
	"gorace/internal/progen"
	_ "gorace/internal/progs" // registers the instrumented dogfood programs
	"gorace/internal/report"
	"gorace/internal/sched"
	"gorace/internal/trace"
	"gorace/internal/vclock"
)

// legacyFastTrack is a reference copy of the pre-adaptive FastTrack
// shadow representation: every cell keeps its read history as a plain
// per-goroutine list, with no epoch fast path, no promotion, and no
// demotion. The adaptive detector must produce byte-identical report
// sequences — the adaptive representation is a cost optimization, not
// a semantics change — and this replica is the pin that keeps it so.
type legacyFastTrack struct {
	pool       *vclock.Pool
	clocks     []*vclock.VC
	objClocks  []*vclock.VC
	cells      []legacyCell
	addrIx     sparseIndex
	objIx      sparseIndex
	locks      *lockTracker
	races      []report.Race
	maxReports int
}

type legacyCell struct {
	seen     bool
	hasWrite bool
	write    access
	reads    []access
	reports  int
}

func newLegacyFastTrack() *legacyFastTrack {
	return &legacyFastTrack{
		pool:       vclock.NewPool(),
		locks:      newLockTracker(),
		maxReports: 8,
	}
}

func (ft *legacyFastTrack) clockOf(g vclock.TID) *vclock.VC {
	for int(g) >= len(ft.clocks) {
		ft.clocks = append(ft.clocks, nil)
	}
	if ft.clocks[g] == nil {
		c := ft.pool.Acquire()
		c.Set(g, 1)
		ft.clocks[g] = c
	}
	return ft.clocks[g]
}

func (ft *legacyFastTrack) objClock(o trace.ObjID) *vclock.VC {
	o = trace.ObjID(ft.objIx.local(uint64(o)))
	for int(o) >= len(ft.objClocks) {
		ft.objClocks = append(ft.objClocks, nil)
	}
	if ft.objClocks[o] == nil {
		ft.objClocks[o] = ft.pool.Acquire()
	}
	return ft.objClocks[o]
}

func (ft *legacyFastTrack) cell(a trace.Addr) *legacyCell {
	a = trace.Addr(ft.addrIx.local(uint64(a)))
	for int(a) >= len(ft.cells) {
		ft.cells = append(ft.cells, legacyCell{})
	}
	c := &ft.cells[a]
	c.seen = true
	return c
}

func (ft *legacyFastTrack) newAccess(ev trace.Event) access {
	return access{
		g: ev.G, gname: ev.GName, time: ft.clockOf(ev.G).Get(ev.G),
		op: ev.Op, stk: ev.Stack, label: ev.Label,
		atomic: ev.Op.IsAtomic(), locks: ft.locks.heldLabels(ev.G), seq: ev.Seq,
	}
}

func (ft *legacyFastTrack) HandleEvent(ev trace.Event) {
	switch ev.Op {
	case trace.OpFork:
		parent := ft.clockOf(ev.G)
		child := ft.pool.Acquire()
		parent.CopyInto(child)
		child.Tick(ev.Child)
		for int(ev.Child) >= len(ft.clocks) {
			ft.clocks = append(ft.clocks, nil)
		}
		ft.clocks[ev.Child] = child
		parent.Tick(ev.G)

	case trace.OpAcquire:
		ft.locks.handle(ev)
		ft.objClock(ev.Obj).JoinInto(ft.clockOf(ev.G))

	case trace.OpRelease:
		if ft.locks.handle(ev) && ev.Kind == trace.KindRWRead {
			return
		}
		ft.clockOf(ev.G).JoinInto(ft.objClock(ev.Obj))
		ft.clockOf(ev.G).Tick(ev.G)

	case trace.OpRead, trace.OpAtomicLoad:
		c := ft.cell(ev.Addr)
		cur := ft.clockOf(ev.G)
		if c.hasWrite && c.write.g != ev.G && c.write.time > cur.Get(c.write.g) {
			if !(c.write.atomic && ev.Op.IsAtomic()) {
				ft.report(ev, c, c.write)
			}
		}
		a := ft.newAccess(ev)
		for i := range c.reads {
			if c.reads[i].g == ev.G {
				c.reads[i] = a
				return
			}
		}
		c.reads = append(c.reads, a)

	case trace.OpWrite, trace.OpAtomicStore, trace.OpAtomicRMW:
		c := ft.cell(ev.Addr)
		cur := ft.clockOf(ev.G)
		if c.hasWrite && c.write.g != ev.G && c.write.time > cur.Get(c.write.g) {
			if !(c.write.atomic && ev.Op.IsAtomic()) {
				ft.report(ev, c, c.write)
			}
		}
		for i := range c.reads {
			r := &c.reads[i]
			if r.g == ev.G {
				continue
			}
			if r.time > cur.Get(r.g) && !(r.atomic && ev.Op.IsAtomic()) {
				ft.report(ev, c, *r)
			}
		}
		c.write = ft.newAccess(ev)
		c.hasWrite = true
		c.reads = c.reads[:0]
	}
}

func (ft *legacyFastTrack) report(ev trace.Event, c *legacyCell, prior access) {
	if c.reports >= ft.maxReports {
		return
	}
	c.reports++
	second := ft.newAccess(ev)
	ft.races = append(ft.races, report.Race{
		First:    prior.toReport(ev.Addr),
		Second:   second.toReport(ev.Addr),
		Detector: "fasttrack-hb",
		Seq:      ev.Seq,
	})
}

// raceHashes renders a report sequence as its ordered dedup hashes.
func raceHashes(races []report.Race) []string {
	out := make([]string, len(races))
	for i, r := range races {
		out[i] = r.Hash()
	}
	return out
}

// compareToLegacy runs prog under both representations and fails on
// the first divergence in the ordered race-hash sequence (a stronger
// check than set equality: report order and multiplicity must match
// too, since downstream dedup keeps first manifestations).
func compareToLegacy(t *testing.T, name string, prog func(*sched.G), seed int64) *FastTrack {
	t.Helper()
	adaptive := NewFastTrack()
	legacy := newLegacyFastTrack()
	sched.Run(prog, sched.Options{
		Strategy: sched.NewRandom(), Seed: seed, MaxSteps: 1 << 18,
		Listeners: []trace.Listener{adaptive, legacy},
	})
	got, want := raceHashes(adaptive.Races()), raceHashes(legacy.races)
	if len(got) != len(want) {
		t.Fatalf("%s seed %d: adaptive reported %d races, legacy %d", name, seed, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s seed %d: report %d hash diverged:\nadaptive %s\nlegacy   %s",
				name, seed, i, got[i], want[i])
		}
	}
	return adaptive
}

// TestAdaptiveFastTrackMatchesLegacyOnProgen pins the adaptive
// representation to the pre-adaptive one over 60 random programs, and
// checks the sweep exercised the adaptive machinery at all (a suite
// where nothing ever promotes would prove nothing).
func TestAdaptiveFastTrackMatchesLegacyOnProgen(t *testing.T) {
	var promotions, demotions, fastReads int
	for seed := int64(0); seed < 60; seed++ {
		prog := progen.Generate(seed, progen.Params{})
		ft := compareToLegacy(t, "progen", prog.Main(), seed)
		st := ft.Stats()
		promotions += st.Promotions
		demotions += st.Demotions
		fastReads += st.FastPathReads
		if st.CheckedAccesses != st.Accesses {
			t.Fatalf("seed %d: unsampled detector checked %d of %d accesses",
				seed, st.CheckedAccesses, st.Accesses)
		}
	}
	if promotions == 0 || demotions == 0 || fastReads == 0 {
		t.Fatalf("suite never exercised the adaptive machinery: promotions=%d demotions=%d fastreads=%d",
			promotions, demotions, fastReads)
	}
}

// TestAdaptiveFastTrackMatchesLegacyOnPrograms runs every registered
// instrumented dogfood program (racy and fixed variants) through both
// representations over several seeds each.
func TestAdaptiveFastTrackMatchesLegacyOnPrograms(t *testing.T) {
	progs := instrument.Programs()
	if len(progs) == 0 {
		t.Fatal("no instrumented programs registered")
	}
	for _, p := range progs {
		for seed := int64(0); seed < 5; seed++ {
			compareToLegacy(t, "prog:"+p.Name, p.Racy, seed)
			if p.Fixed != nil {
				compareToLegacy(t, "prog:"+p.Name+"/fixed", p.Fixed, seed)
			}
		}
	}
}

// TestSampleRateOneIsIdentity: a Sampled gate at rate 1 forwards every
// event, so the wrapped detector's reports are byte-identical to the
// unwrapped detector's, and New does not even bother wrapping.
func TestSampleRateOneIsIdentity(t *testing.T) {
	d, err := New("fasttrack", WithSampleRate(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, wrapped := d.(*Sampled); wrapped {
		t.Fatal("New(WithSampleRate(1)) wrapped the detector; rate 1 means no sampling")
	}
	for seed := int64(0); seed < 20; seed++ {
		prog := progen.Generate(seed, progen.Params{})
		plain := NewFastTrack()
		gated := NewSampled(NewFastTrack(), 1)
		gated.SetRunSeed(seed)
		sched.Run(prog.Main(), sched.Options{
			Strategy: sched.NewRandom(), Seed: seed, MaxSteps: 1 << 18,
			Listeners: []trace.Listener{plain, gated},
		})
		got, want := raceHashes(gated.Races()), raceHashes(plain.Races())
		if len(got) != len(want) {
			t.Fatalf("seed %d: rate-1 gate reported %d races, plain %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: report %d diverged under a rate-1 gate", seed, i)
			}
		}
		st := gated.Stats()
		if st.SkippedAccesses != 0 || st.CheckedAccesses != st.Accesses {
			t.Fatalf("seed %d: rate-1 gate skipped %d and checked %d of %d accesses",
				seed, st.SkippedAccesses, st.CheckedAccesses, st.Accesses)
		}
	}
}

// TestSampledRunReproducible: the same (seed, rate) must yield the
// same reports and the same checked/skipped split on every execution —
// the property that makes sampled campaigns placement-independent.
func TestSampledRunReproducible(t *testing.T) {
	run := func(seed int64) ([]string, Stats) {
		s := NewSampled(NewFastTrack(), 4)
		s.SetRunSeed(seed)
		prog := progen.Generate(seed, progen.Params{})
		sched.Run(prog.Main(), sched.Options{
			Strategy: sched.NewRandom(), Seed: seed, MaxSteps: 1 << 18,
			Listeners: []trace.Listener{s},
		})
		return raceHashes(s.Races()), s.Stats()
	}
	for seed := int64(0); seed < 10; seed++ {
		h1, st1 := run(seed)
		h2, st2 := run(seed)
		if len(h1) != len(h2) {
			t.Fatalf("seed %d: %d vs %d races across identical sampled runs", seed, len(h1), len(h2))
		}
		for i := range h1 {
			if h1[i] != h2[i] {
				t.Fatalf("seed %d: report %d differs across identical sampled runs", seed, i)
			}
		}
		if st1 != st2 {
			t.Fatalf("seed %d: stats differ across identical sampled runs:\n%v\n%v", seed, st1, st2)
		}
		if st1.CheckedAccesses+st1.SkippedAccesses != st1.Accesses {
			t.Fatalf("seed %d: checked %d + skipped %d != accesses %d",
				seed, st1.CheckedAccesses, st1.SkippedAccesses, st1.Accesses)
		}
	}
}
