package detector

import (
	"gorace/internal/report"
	"gorace/internal/trace"
	"gorace/internal/vclock"
)

// DJIT is the pre-FastTrack vector-clock detector (DJIT+ of
// Pozniansky & Schuster): every shadow cell holds two *full* vector
// clocks — last-write times and last-read times per goroutine. It is
// the baseline for the epochs-vs-vector-clocks ablation: verdicts
// match the epoch detector, but every access pays O(goroutines)
// instead of O(1) in the common case.
type DJIT struct {
	pool      *vclock.Pool
	clocks    []*vclock.VC
	objClocks []*vclock.VC
	objCount  int
	cells     []djitCell
	cellCount int
	addrIx    sparseIndex
	objIx     sparseIndex
	count     int
	racyAddrs map[trace.Addr]bool
	stats     statCounter
	adapt     adaptCounter
}

// djitCell holds the four per-cell history clocks by value, in a dense
// slice indexed by Addr. Each history is an adaptive clock: one packed
// epoch word while a single goroutine touches it, inflated to a pooled
// full vector clock on the first second-goroutine touch. AdaptiveClock
// preserves every component exactly, so DJIT's per-component verdict
// counts are unchanged — only the representation (and its cost) adapts.
// The zero value is a usable empty history, so a fresh cell needs no
// initialization and no allocation.
type djitCell struct {
	seen         bool
	writes       vclock.AdaptiveClock // per-goroutine last write time
	reads        vclock.AdaptiveClock // per-goroutine last plain-read time
	atomicWrites vclock.AdaptiveClock
	atomicReads  vclock.AdaptiveClock
}

// NewDJIT returns a fresh DJIT+ detector.
func NewDJIT() *DJIT {
	return &DJIT{
		pool:      vclock.NewPool(),
		racyAddrs: make(map[trace.Addr]bool),
	}
}

// Name implements CountingSource.
func (d *DJIT) Name() string { return "djit-vc" }

// Races returns nil; DJIT counts races without report metadata, like
// the epoch detector. Wrap with NewCounting for the unified surface.
func (d *DJIT) Races() []report.Race { return nil }

// RaceCount returns the number of conflicting access pairs observed.
func (d *DJIT) RaceCount() int { return d.count }

// RacyAddrs returns the set of cells on which at least one race fired.
func (d *DJIT) RacyAddrs() map[trace.Addr]bool { return d.racyAddrs }

// Reset implements Resetter: shadow state is zeroed in place (history
// clocks keep their backing arrays) and goroutine/object clocks return
// to the pool.
func (d *DJIT) Reset() {
	for i, c := range d.clocks {
		if c != nil {
			d.pool.Release(c)
			d.clocks[i] = nil
		}
	}
	d.clocks = d.clocks[:0]
	for i, c := range d.objClocks {
		if c != nil {
			d.pool.Release(c)
			d.objClocks[i] = nil
		}
	}
	d.objClocks = d.objClocks[:0]
	d.objCount = 0
	for i := range d.cells {
		c := &d.cells[i]
		c.seen = false
		// Inflated histories return their clocks to the pool now;
		// teardown is not a demotion, so the counters stay untouched.
		c.writes.ReleaseTo(d.pool)
		c.reads.ReleaseTo(d.pool)
		c.atomicWrites.ReleaseTo(d.pool)
		c.atomicReads.ReleaseTo(d.pool)
	}
	d.cellCount = 0
	d.addrIx.reset()
	d.objIx.reset()
	d.count = 0
	clear(d.racyAddrs)
	d.stats = statCounter{}
	d.adapt = adaptCounter{}
}

func (d *DJIT) clockOf(g vclock.TID) *vclock.VC {
	for int(g) >= len(d.clocks) {
		d.clocks = append(d.clocks, nil)
	}
	if d.clocks[g] == nil {
		c := d.pool.Acquire()
		c.Set(g, 1)
		d.clocks[g] = c
	}
	return d.clocks[g]
}

func (d *DJIT) objClock(o trace.ObjID) *vclock.VC {
	o = trace.ObjID(d.objIx.local(uint64(o)))
	for int(o) >= len(d.objClocks) {
		d.objClocks = append(d.objClocks, nil)
	}
	if d.objClocks[o] == nil {
		d.objClocks[o] = d.pool.Acquire()
		d.objCount++
	}
	return d.objClocks[o]
}

// cell returns the shadow cell for a. The pointer is only valid until
// the next cell call.
func (d *DJIT) cell(a trace.Addr) *djitCell {
	a = trace.Addr(d.addrIx.local(uint64(a)))
	for int(a) >= len(d.cells) {
		d.cells = append(d.cells, djitCell{})
	}
	c := &d.cells[a]
	if !c.seen {
		c.seen = true
		d.cellCount++
	}
	return c
}

// HandleEvent implements trace.Listener.
func (d *DJIT) HandleEvent(ev trace.Event) {
	d.stats.note(ev)
	switch ev.Op {
	case trace.OpFork:
		parent := d.clockOf(ev.G)
		child := d.pool.Acquire()
		parent.CopyInto(child)
		child.Tick(ev.Child)
		for int(ev.Child) >= len(d.clocks) {
			d.clocks = append(d.clocks, nil)
		}
		d.clocks[ev.Child] = child
		parent.Tick(ev.G)

	case trace.OpAcquire:
		d.objClock(ev.Obj).JoinInto(d.clockOf(ev.G))

	case trace.OpRelease:
		if ev.Kind == trace.KindRWRead {
			return
		}
		d.clockOf(ev.G).JoinInto(d.objClock(ev.Obj))
		d.clockOf(ev.G).Tick(ev.G)

	case trace.OpRead, trace.OpAtomicLoad:
		c := d.cell(ev.Addr)
		cur := d.clockOf(ev.G)
		d.countConcurrent(&c.writes, cur, ev)
		if !ev.Op.IsAtomic() {
			// A plain read also conflicts with concurrent atomic writes.
			d.countConcurrent(&c.atomicWrites, cur, ev)
			d.noteRead(&c.reads, ev.G, cur.Get(ev.G))
		} else {
			d.noteRead(&c.atomicReads, ev.G, cur.Get(ev.G))
		}

	case trace.OpWrite, trace.OpAtomicStore, trace.OpAtomicRMW:
		c := d.cell(ev.Addr)
		cur := d.clockOf(ev.G)
		d.countConcurrent(&c.writes, cur, ev)
		d.countConcurrent(&c.reads, cur, ev)
		if !ev.Op.IsAtomic() {
			d.countConcurrent(&c.atomicWrites, cur, ev)
			d.countConcurrent(&c.atomicReads, cur, ev)
			if c.writes.SetPooled(ev.G, cur.Get(ev.G), d.pool) {
				d.adapt.promotions++
			}
		} else {
			if c.atomicWrites.SetPooled(ev.G, cur.Get(ev.G), d.pool) {
				d.adapt.promotions++
			}
		}
	}
}

// noteRead folds a read into an adaptive read history, counting the
// promotion when the set inflates and the fast path when it stays in
// (or enters) epoch form.
func (d *DJIT) noteRead(hist *vclock.AdaptiveClock, g vclock.TID, t uint32) {
	wasEpoch := !hist.IsInflated()
	if hist.SetPooled(g, t, d.pool) {
		d.adapt.promotions++
	} else if wasEpoch {
		d.adapt.fastReads++
	}
}

// countConcurrent tallies components of hist that are ahead of cur —
// prior accesses by other goroutines not ordered before this one.
func (d *DJIT) countConcurrent(hist *vclock.AdaptiveClock, cur *vclock.VC, ev trace.Event) {
	hist.ForEachTime(func(t vclock.TID, ts uint32) {
		if t == ev.G {
			return
		}
		if ts > cur.Get(t) {
			d.count++
			d.racyAddrs[ev.Addr] = true
		}
	})
}
