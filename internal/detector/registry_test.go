package detector

import (
	"sort"
	"strings"
	"testing"

	"gorace/internal/sched"
	"gorace/internal/trace"
)

func TestNewKnownDetectors(t *testing.T) {
	for _, name := range Names() {
		d, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if d == nil {
			t.Fatalf("New(%q) returned nil", name)
		}
	}
}

func TestNewDefaultsToFastTrack(t *testing.T) {
	d, err := New("")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.(*FastTrack); !ok {
		t.Fatalf("default detector is %T, want *FastTrack", d)
	}
}

func TestNewUnknownNameListsValid(t *testing.T) {
	_, err := New("magic")
	if err == nil {
		t.Fatal("unknown detector accepted")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list valid name %q", err, name)
		}
	}
}

func TestNamesSortedAndStable(t *testing.T) {
	a, b := Names(), Names()
	if !sort.StringsAreSorted(a) {
		t.Fatalf("Names not sorted: %v", a)
	}
	if len(a) != len(b) {
		t.Fatal("Names changed between calls")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Names not stable between calls")
		}
	}
	for _, want := range []string{"fasttrack", "epoch", "djit", "eraser", "hybrid", "none"} {
		found := false
		for _, got := range a {
			if got == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("built-in detector %q not registered (have %v)", want, a)
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register("fasttrack", func() Detector { return NewFastTrack() })
}

func TestRegisterEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty-name Register did not panic")
		}
	}()
	Register("", func() Detector { return NewFastTrack() })
}

func TestRegisterNilFactoryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil-factory Register did not panic")
		}
	}()
	Register("nil-factory", nil)
}

func TestNewReturnsFreshInstances(t *testing.T) {
	a, _ := New("fasttrack")
	b, _ := New("fasttrack")
	if a == b {
		t.Fatal("registry returned a shared detector instance")
	}
}

// TestCountingSynthesizesPerAddrReports checks the Counting adapter:
// racy addresses become minimal reports, the pair count stays
// available, and the unified surface agrees with the inner detector.
func TestCountingSynthesizesPerAddrReports(t *testing.T) {
	c := NewCounting(NewEpoch())
	runWith(t, 3, sched.NewRandom(), racyCounter, c)
	inner := c.Inner.(*Epoch)
	if inner.RaceCount() == 0 {
		// racyCounter manifests under most seeds; search a few.
		for seed := int64(4); seed < 40 && inner.RaceCount() == 0; seed++ {
			c = NewCounting(NewEpoch())
			runWith(t, seed, sched.NewRandom(), racyCounter, c)
			inner = c.Inner.(*Epoch)
		}
		if inner.RaceCount() == 0 {
			t.Fatal("race never manifested")
		}
	}
	races := c.Races()
	if len(races) != len(inner.RacyAddrs()) {
		t.Fatalf("%d synthesized reports, %d racy addrs", len(races), len(inner.RacyAddrs()))
	}
	for _, r := range races {
		if r.Detector != c.Name() {
			t.Fatalf("synthesized report names %q, want %q", r.Detector, c.Name())
		}
		if !inner.RacyAddrs()[r.First.Addr] {
			t.Fatalf("report for addr %d not in RacyAddrs", r.First.Addr)
		}
	}
	if c.Count() != inner.RaceCount() {
		t.Fatal("Count disagrees with inner RaceCount")
	}
	if c.Stats().Reports != inner.RaceCount() {
		t.Fatal("Stats().Reports disagrees with inner RaceCount")
	}
	if c.Candidates() != nil {
		t.Fatal("counting detector has candidates")
	}
}

func TestNoopDetectorReportsNothing(t *testing.T) {
	var n Noop
	n.HandleEvent(trace.Event{Op: trace.OpWrite, Addr: 1})
	if n.Races() != nil || n.Candidates() != nil || n.Stats() != (Stats{}) {
		t.Fatal("noop detector accumulated state")
	}
	if n.Name() != "none" {
		t.Fatalf("noop name %q", n.Name())
	}
}
