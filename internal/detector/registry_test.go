package detector

import (
	"sort"
	"strings"
	"testing"

	"gorace/internal/sched"
	"gorace/internal/trace"
	"gorace/internal/vclock"
)

func TestNewKnownDetectors(t *testing.T) {
	for _, name := range Names() {
		d, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if d == nil {
			t.Fatalf("New(%q) returned nil", name)
		}
	}
}

func TestNewDefaultsToFastTrack(t *testing.T) {
	d, err := New("")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.(*FastTrack); !ok {
		t.Fatalf("default detector is %T, want *FastTrack", d)
	}
}

func TestNewUnknownNameListsValid(t *testing.T) {
	_, err := New("magic")
	if err == nil {
		t.Fatal("unknown detector accepted")
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list valid name %q", err, name)
		}
	}
}

func TestNamesSortedAndStable(t *testing.T) {
	a, b := Names(), Names()
	if !sort.StringsAreSorted(a) {
		t.Fatalf("Names not sorted: %v", a)
	}
	if len(a) != len(b) {
		t.Fatal("Names changed between calls")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Names not stable between calls")
		}
	}
	for _, want := range []string{"fasttrack", "epoch", "djit", "eraser", "hybrid", "none"} {
		found := false
		for _, got := range a {
			if got == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("built-in detector %q not registered (have %v)", want, a)
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register("fasttrack", func() Detector { return NewFastTrack() })
}

func TestRegisterEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty-name Register did not panic")
		}
	}()
	Register("", func() Detector { return NewFastTrack() })
}

func TestRegisterNilFactoryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil-factory Register did not panic")
		}
	}()
	Register("nil-factory", nil)
}

func TestNewReturnsFreshInstances(t *testing.T) {
	a, _ := New("fasttrack")
	b, _ := New("fasttrack")
	if a == b {
		t.Fatal("registry returned a shared detector instance")
	}
}

// TestCountingSynthesizesPerAddrReports checks the Counting adapter:
// racy addresses become minimal reports, the pair count stays
// available, and the unified surface agrees with the inner detector.
func TestCountingSynthesizesPerAddrReports(t *testing.T) {
	c := NewCounting(NewEpoch())
	runWith(t, 3, sched.NewRandom(), racyCounter, c)
	inner := c.Inner.(*Epoch)
	if inner.RaceCount() == 0 {
		// racyCounter manifests under most seeds; search a few.
		for seed := int64(4); seed < 40 && inner.RaceCount() == 0; seed++ {
			c = NewCounting(NewEpoch())
			runWith(t, seed, sched.NewRandom(), racyCounter, c)
			inner = c.Inner.(*Epoch)
		}
		if inner.RaceCount() == 0 {
			t.Fatal("race never manifested")
		}
	}
	races := c.Races()
	if len(races) != len(inner.RacyAddrs()) {
		t.Fatalf("%d synthesized reports, %d racy addrs", len(races), len(inner.RacyAddrs()))
	}
	for _, r := range races {
		if r.Detector != c.Name() {
			t.Fatalf("synthesized report names %q, want %q", r.Detector, c.Name())
		}
		if !inner.RacyAddrs()[r.First.Addr] {
			t.Fatalf("report for addr %d not in RacyAddrs", r.First.Addr)
		}
	}
	if c.Count() != inner.RaceCount() {
		t.Fatal("Count disagrees with inner RaceCount")
	}
	if c.Stats().Reports != inner.RaceCount() {
		t.Fatal("Stats().Reports disagrees with inner RaceCount")
	}
	if c.Candidates() != nil {
		t.Fatal("counting detector has candidates")
	}
}

func TestNoopDetectorReportsNothing(t *testing.T) {
	var n Noop
	n.HandleEvent(trace.Event{Op: trace.OpWrite, Addr: 1})
	if n.Races() != nil || n.Candidates() != nil || n.Stats() != (Stats{}) {
		t.Fatal("noop detector accumulated state")
	}
	if n.Name() != "none" {
		t.Fatalf("noop name %q", n.Name())
	}
}

// TestNewWithSampleRate pins the option's wrapping rules: rates above
// 1 wrap in a Sampled gate, rates 0/1 build the bare detector, the
// none detector is never wrapped, and negative rates error.
func TestNewWithSampleRate(t *testing.T) {
	d, err := New("fasttrack", WithSampleRate(4))
	if err != nil {
		t.Fatal(err)
	}
	s, ok := d.(*Sampled)
	if !ok {
		t.Fatalf("New(fasttrack, rate 4) = %T, want *Sampled", d)
	}
	if s.Rate != 4 {
		t.Fatalf("wrapped rate = %d, want 4", s.Rate)
	}
	if got, want := s.Name(), "fasttrack-hb+sample:4"; got != want {
		t.Fatalf("sampled name = %q, want %q", got, want)
	}
	for _, rate := range []int{0, 1} {
		d, err := New("fasttrack", WithSampleRate(rate))
		if err != nil {
			t.Fatal(err)
		}
		if _, wrapped := d.(*Sampled); wrapped {
			t.Fatalf("rate %d wrapped the detector; want bare", rate)
		}
	}
	d, err = New("none", WithSampleRate(16))
	if err != nil {
		t.Fatal(err)
	}
	if !IsNoop(d) {
		t.Fatalf("New(none, rate 16) = %T, want the noop detector unwrapped", d)
	}
	if _, wrapped := d.(*Sampled); wrapped {
		t.Fatal("the none detector was wrapped in a sampling gate")
	}
	if _, err := New("fasttrack", WithSampleRate(-1)); err == nil {
		t.Fatal("negative sample rate did not error")
	}
}

// TestStatsPassthroughCarriesAdaptiveCounters drives a promoting,
// demoting event stream through every wrapper combination and checks
// nobody zeroes the inner detector's counters — the "no zero-value
// lies" contract.
func TestStatsPassthroughCarriesAdaptiveCounters(t *testing.T) {
	// g1 and g2 read addr 1 concurrently (promotion), then g1 writes
	// it (demotion + two report pairs).
	stream := func(l trace.Listener) {
		emit := func(op trace.Op, g vclock.TID) {
			l.HandleEvent(trace.Event{Op: op, G: g, Addr: 1})
		}
		l.HandleEvent(trace.Event{Op: trace.OpFork, G: 0, Child: 1})
		l.HandleEvent(trace.Event{Op: trace.OpFork, G: 0, Child: 2})
		emit(trace.OpRead, 1)
		emit(trace.OpRead, 2)
		emit(trace.OpWrite, 1)
	}
	check := func(name string, d Detector, wantDemotions bool) {
		t.Helper()
		stream(d)
		st := d.Stats()
		if st.Promotions == 0 {
			t.Fatalf("%s: promotions = 0 after a concurrent-read stream\nstats: %v", name, st)
		}
		if wantDemotions && st.Demotions == 0 {
			t.Fatalf("%s: demotions = 0 after a dominating write\nstats: %v", name, st)
		}
		if st.CheckedAccesses == 0 {
			t.Fatalf("%s: checked accesses = 0\nstats: %v", name, st)
		}
	}
	check("fasttrack", NewFastTrack(), true)
	check("counting(epoch)", NewCounting(NewEpoch()), true)
	// DJIT keeps full histories for the cell's whole life, so it
	// promotes but never demotes within a run.
	check("counting(djit)", NewCounting(NewDJIT()), false)
	check("sampled(fasttrack)", NewSampled(NewFastTrack(), 1), true)
	check("sampled(counting(epoch))", NewSampled(NewCounting(NewEpoch()), 1), true)

	// Under a real gate the full-stream counters must stay honest:
	// checked + skipped == accesses, and the event-shape counters
	// describe the pre-gate stream.
	s := NewSampled(NewFastTrack(), 3)
	s.SetRunSeed(7)
	stream(s)
	st := s.Stats()
	if st.Accesses != 3 {
		t.Fatalf("sampled stats lost the full stream: accesses = %d, want 3", st.Accesses)
	}
	if st.CheckedAccesses+st.SkippedAccesses != st.Accesses {
		t.Fatalf("checked %d + skipped %d != accesses %d",
			st.CheckedAccesses, st.SkippedAccesses, st.Accesses)
	}
	if st.SkippedAccesses == 0 {
		t.Fatal("rate-3 gate over 3 accesses skipped nothing")
	}
}

// TestNoopStatsStayZero: the none detector reports all-zero stats, and
// IsNoop sees through a hypothetical sampled wrapping.
func TestNoopStatsStayZero(t *testing.T) {
	if got := (Noop{}).Stats(); got != (Stats{}) {
		t.Fatalf("Noop stats = %v, want zero", got)
	}
	if !IsNoop(NewSampled(Noop{}, 8)) {
		t.Fatal("IsNoop failed to unwrap a sampled noop")
	}
	if IsNoop(NewFastTrack()) {
		t.Fatal("IsNoop claimed fasttrack is the none detector")
	}
}
