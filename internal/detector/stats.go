package detector

import (
	"fmt"

	"gorace/internal/trace"
)

// Stats summarizes the work a detector performed, the denominator of
// the overhead story: TSan's cost scales with instrumented accesses
// and the shadow state they allocate ("memory usage increases by
// 5×-10×", §1).
//
// The adaptive-representation counters (Promotions, Demotions,
// FastPathReads) expose how often the epoch↔vector-clock shadow
// machinery left the cheap epoch form; the sampling counters
// (CheckedAccesses, SkippedAccesses) expose how much of the access
// stream a sampled run actually inspected. docs/DETECTORS.md glosses
// every field and how to read anomalies in them.
type Stats struct {
	Events     int // total events consumed
	Accesses   int // plain + atomic memory accesses
	SyncOps    int // acquire/release edges
	Cells      int // shadow cells allocated
	SyncClocks int // synchronization-object clocks allocated
	Goroutines int // goroutine clocks allocated
	Reports    int // races reported (or counted)

	// Promotions counts epoch→vector-clock shadow-cell promotions: a
	// cell's read history left the one-word epoch form because a
	// second goroutine read it in the same write-free span.
	Promotions int
	// Demotions counts vector-clock→epoch demotions: a write
	// dominated a promoted cell's read history and collapsed it back
	// to epoch form, releasing the clock to the pool.
	Demotions int
	// FastPathReads counts read-history updates absorbed in epoch
	// form (first read, or a repeat read by the owning goroutine) —
	// FastTrack's O(1) common case. Healthy workloads keep this well
	// above 90% of reads; see docs/DETECTORS.md for tuning.
	FastPathReads int

	// CheckedAccesses counts accesses the detection logic actually
	// inspected. Without sampling it equals Accesses; under a
	// sample:<n> gate it is roughly Accesses/n.
	CheckedAccesses int
	// SkippedAccesses counts accesses the sampling gate dropped
	// before they reached the detector (zero without sampling).
	SkippedAccesses int

	// Evictions counts shadow pages reclaimed by a memory-ceilinged
	// detector (fasttrack-paged): every cell on an evicted page loses
	// its access history, so races against those prior accesses can no
	// longer be reported — the documented soundness tradeoff of
	// bounded-memory streaming (docs/STREAMING.md). Zero for unpaged
	// detectors and for paged runs that never hit their budget.
	Evictions int
	// Reloads counts evicted pages that were re-faulted by a later
	// access: the cells restart with empty (epoch-form) histories. A
	// high Reloads/Evictions ratio means the ceiling is evicting hot
	// pages and the stream is likely missing races.
	Reloads int
}

// String renders the counters on one line for logs and CLI output.
func (s Stats) String() string {
	line := fmt.Sprintf("events=%d accesses=%d syncs=%d cells=%d objclocks=%d goroutines=%d reports=%d",
		s.Events, s.Accesses, s.SyncOps, s.Cells, s.SyncClocks, s.Goroutines, s.Reports)
	line += fmt.Sprintf(" promotions=%d demotions=%d fastreads=%d",
		s.Promotions, s.Demotions, s.FastPathReads)
	if s.SkippedAccesses > 0 {
		line += fmt.Sprintf(" checked=%d skipped=%d", s.CheckedAccesses, s.SkippedAccesses)
	}
	if s.Evictions > 0 || s.Reloads > 0 {
		line += fmt.Sprintf(" evictions=%d reloads=%d", s.Evictions, s.Reloads)
	}
	return line
}

// statCounter wraps the event-shape counters shared by detectors.
type statCounter struct {
	events, accesses, syncOps int
}

func (c *statCounter) note(ev trace.Event) {
	c.events++
	if ev.Op.IsAccess() {
		c.accesses++
	}
	if ev.Op == trace.OpAcquire || ev.Op == trace.OpRelease {
		c.syncOps++
	}
}

// adaptCounter tracks the adaptive shadow-representation transitions
// shared by the epoch-based detectors (fasttrack, epoch, djit).
type adaptCounter struct {
	promotions, demotions, fastReads int
}

// fill copies the shared counters into a Stats snapshot, defaulting
// CheckedAccesses to the full access count (no sampling at this
// layer; the Sampled wrapper overrides the split).
func fill(s Stats, c statCounter, a adaptCounter) Stats {
	s.Events = c.events
	s.Accesses = c.accesses
	s.SyncOps = c.syncOps
	s.Promotions = a.promotions
	s.Demotions = a.demotions
	s.FastPathReads = a.fastReads
	s.CheckedAccesses = c.accesses
	return s
}

// Stats reports the FastTrack detector's work counters.
func (ft *FastTrack) Stats() Stats {
	gor := 0
	for _, c := range ft.clocks {
		if c != nil {
			gor++
		}
	}
	return fill(Stats{
		Cells:      ft.cellCount,
		SyncClocks: ft.objCount,
		Goroutines: gor,
		Reports:    len(ft.races),
	}, ft.stats, ft.adapt)
}

// Stats reports the Epoch detector's work counters.
func (e *Epoch) Stats() Stats {
	gor := 0
	for _, c := range e.clocks {
		if c != nil {
			gor++
		}
	}
	return fill(Stats{
		Cells:      e.cellCount,
		SyncClocks: e.objCount,
		Goroutines: gor,
		Reports:    e.count,
	}, e.stats, e.adapt)
}

// Stats reports the DJIT detector's work counters. DJIT never clears
// a cell's history, so its Demotions stay zero within a run — the
// contrast with FastTrack's demotion stream is the ablation's point.
func (d *DJIT) Stats() Stats {
	gor := 0
	for _, c := range d.clocks {
		if c != nil {
			gor++
		}
	}
	return fill(Stats{
		Cells:      d.cellCount,
		SyncClocks: d.objCount,
		Goroutines: gor,
		Reports:    d.count,
	}, d.stats, d.adapt)
}

// Stats reports the Hybrid detector's combined work counters. Both
// sides consume the same event stream, so the event-shape counters
// come from the HB side; shadow state and reports are summed. The
// adaptive counters come from the HB side alone (Eraser keeps lockset
// state, not clock histories).
func (h *Hybrid) Stats() Stats {
	hb, ls := h.HB.Stats(), h.LS.Stats()
	hb.Cells += ls.Cells
	hb.Reports += ls.Reports
	return hb
}

// Stats reports the Eraser detector's work counters. Eraser tracks
// locksets, not clocks, so the adaptive promotion counters are always
// zero.
func (e *Eraser) Stats() Stats {
	return fill(Stats{
		Cells:   e.cellCount,
		Reports: len(e.races),
	}, e.stats, adaptCounter{})
}
