package detector

import (
	"fmt"

	"gorace/internal/trace"
)

// Stats summarizes the work a detector performed, the denominator of
// the overhead story: TSan's cost scales with instrumented accesses
// and the shadow state they allocate ("memory usage increases by
// 5×-10×", §1).
type Stats struct {
	Events     int // total events consumed
	Accesses   int // plain + atomic memory accesses
	SyncOps    int // acquire/release edges
	Cells      int // shadow cells allocated
	SyncClocks int // synchronization-object clocks allocated
	Goroutines int // goroutine clocks allocated
	Reports    int // races reported (or counted)
}

// String renders the counters on one line for logs and CLI output.
func (s Stats) String() string {
	return fmt.Sprintf("events=%d accesses=%d syncs=%d cells=%d objclocks=%d goroutines=%d reports=%d",
		s.Events, s.Accesses, s.SyncOps, s.Cells, s.SyncClocks, s.Goroutines, s.Reports)
}

// statCounter wraps the event-shape counters shared by detectors.
type statCounter struct {
	events, accesses, syncOps int
}

func (c *statCounter) note(ev trace.Event) {
	c.events++
	if ev.Op.IsAccess() {
		c.accesses++
	}
	if ev.Op == trace.OpAcquire || ev.Op == trace.OpRelease {
		c.syncOps++
	}
}

// Stats reports the FastTrack detector's work counters.
func (ft *FastTrack) Stats() Stats {
	gor := 0
	for _, c := range ft.clocks {
		if c != nil {
			gor++
		}
	}
	return Stats{
		Events:     ft.stats.events,
		Accesses:   ft.stats.accesses,
		SyncOps:    ft.stats.syncOps,
		Cells:      ft.cellCount,
		SyncClocks: ft.objCount,
		Goroutines: gor,
		Reports:    len(ft.races),
	}
}

// Stats reports the Epoch detector's work counters.
func (e *Epoch) Stats() Stats {
	gor := 0
	for _, c := range e.clocks {
		if c != nil {
			gor++
		}
	}
	return Stats{
		Events:     e.stats.events,
		Accesses:   e.stats.accesses,
		SyncOps:    e.stats.syncOps,
		Cells:      e.cellCount,
		SyncClocks: e.objCount,
		Goroutines: gor,
		Reports:    e.count,
	}
}

// Stats reports the DJIT detector's work counters.
func (d *DJIT) Stats() Stats {
	gor := 0
	for _, c := range d.clocks {
		if c != nil {
			gor++
		}
	}
	return Stats{
		Events:     d.stats.events,
		Accesses:   d.stats.accesses,
		SyncOps:    d.stats.syncOps,
		Cells:      d.cellCount,
		SyncClocks: d.objCount,
		Goroutines: gor,
		Reports:    d.count,
	}
}

// Stats reports the Hybrid detector's combined work counters. Both
// sides consume the same event stream, so the event-shape counters
// come from the HB side; shadow state and reports are summed.
func (h *Hybrid) Stats() Stats {
	hb, ls := h.HB.Stats(), h.LS.Stats()
	return Stats{
		Events:     hb.Events,
		Accesses:   hb.Accesses,
		SyncOps:    hb.SyncOps,
		Cells:      hb.Cells + ls.Cells,
		SyncClocks: hb.SyncClocks,
		Goroutines: hb.Goroutines,
		Reports:    hb.Reports + ls.Reports,
	}
}

// Stats reports the Eraser detector's work counters.
func (e *Eraser) Stats() Stats {
	return Stats{
		Events:   e.stats.events,
		Accesses: e.stats.accesses,
		SyncOps:  e.stats.syncOps,
		Cells:    e.cellCount,
		Reports:  len(e.races),
	}
}
