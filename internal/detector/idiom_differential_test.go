package detector

import (
	"testing"

	"gorace/internal/progen"
	"gorace/internal/report"
	"gorace/internal/sched"
	"gorace/internal/trace"
)

// TestIdiomPairwiseAgreement extends the differential suite to the
// idiom families progen grew for racegen: for every idiom the three HB
// detectors must keep their published pairwise relations (Epoch ≡
// FastTrack on racy addresses, DJIT ⊇ Epoch), and for the idioms built
// on atomics the sweep must witness Eraser's documented blind spot —
// at least one cell the HB detectors flag that the lockset detector,
// which ignores atomic accesses, never can.
func TestIdiomPairwiseAgreement(t *testing.T) {
	cases := []struct {
		name   string
		params progen.Params
		// expectEraserBlind: the idiom manufactures atomic/plain
		// mixes, so some seed must show an HB-only address.
		expectEraserBlind bool
	}{
		{"concurrent-maps", progen.Params{Maps: 2, MapKeys: 2}, false},
		{"atomic-flag-publication", progen.Params{Flags: 2, LockedRatio: progen.Int(0)}, true},
		{"ctx-cancel-tree", progen.Params{CtxDepth: 2}, false},
		{"errgroup-fanout", progen.Params{Errgroup: true}, false},
		{"pooled-objects", progen.Params{Pools: 1}, false},
		{"unbuffered-chans", progen.Params{ChanCap: progen.Int(0)}, false},
		{"everything", progen.Params{Maps: 1, Flags: 1, CtxDepth: 1, Errgroup: true, Pools: 1}, false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			eraserBlindSeen := false
			for seed := int64(0); seed < 25; seed++ {
				prog := progen.Generate(seed, tc.params)
				ft := NewFastTrack()
				ft.MaxReportsPerCell = 1 << 30
				ep := NewEpoch()
				dj := NewDJIT()
				er := NewEraser()
				sched.Run(prog.Main(), sched.Options{
					Strategy: sched.NewRandom(), Seed: seed, MaxSteps: 1 << 18,
					Listeners: []trace.Listener{ft, ep, dj, er},
				})

				ftAddrs := racyAddrsOf(ft.Races())
				erAddrs := racyAddrsOf(er.Races())
				for a := range ftAddrs {
					if !ep.RacyAddrs()[a] {
						t.Fatalf("seed %d: addr %d flagged by fasttrack, missed by epoch", seed, a)
					}
				}
				for a := range ep.RacyAddrs() {
					if !ftAddrs[a] {
						t.Fatalf("seed %d: addr %d flagged by epoch, missed by fasttrack", seed, a)
					}
					if !dj.RacyAddrs()[a] {
						t.Fatalf("seed %d: addr %d flagged by epoch, missed by djit", seed, a)
					}
					if !erAddrs[a] {
						eraserBlindSeen = true
					}
				}

				// Eraser never implicates a purely-atomic cell: it drops
				// atomic accesses before lockset analysis, so any report
				// must carry at least one plain access.
				for _, r := range er.Races() {
					if r.First.Op.IsAtomic() && r.Second.Op.IsAtomic() {
						t.Fatalf("seed %d: eraser reported an atomic/atomic pair:\n%s", seed, r)
					}
				}
			}
			if tc.expectEraserBlind && !eraserBlindSeen {
				t.Fatalf("no seed exposed eraser's atomic blind spot for %s", tc.name)
			}
		})
	}
}

// racyAddrsOf collects the cells implicated in a report list.
func racyAddrsOf(races []report.Race) map[trace.Addr]bool {
	out := make(map[trace.Addr]bool)
	for _, r := range races {
		out[r.First.Addr] = true
		out[r.Second.Addr] = true
	}
	return out
}
