package detector

import (
	"testing"

	"gorace/internal/sched"
	"gorace/internal/trace"
)

// runWith executes a modeled program with the given detectors attached.
func runWith(t *testing.T, seed int64, strat sched.Strategy, main func(*sched.G), ds ...trace.Listener) *sched.Result {
	t.Helper()
	return sched.Run(main, sched.Options{
		Strategy:  strat,
		Seed:      seed,
		MaxSteps:  1 << 16,
		Listeners: ds,
	})
}

// --- Programs with known verdicts ---

// racyCounter: two goroutines increment an unprotected counter.
func racyCounter(g *sched.G) {
	v := sched.NewVar[int](g, "counter")
	wg := sched.NewWaitGroup(g, "wg")
	for i := 0; i < 2; i++ {
		wg.Add(g, 1)
		g.Go("inc", func(g *sched.G) {
			v.Update(g, func(x int) int { return x + 1 })
			wg.Done(g)
		})
	}
	wg.Wait(g)
}

// lockedCounter: the same program, properly mutex-protected.
func lockedCounter(g *sched.G) {
	v := sched.NewVar[int](g, "counter")
	mu := sched.NewMutex(g, "mu")
	wg := sched.NewWaitGroup(g, "wg")
	for i := 0; i < 2; i++ {
		wg.Add(g, 1)
		g.Go("inc", func(g *sched.G) {
			mu.Lock(g)
			v.Update(g, func(x int) int { return x + 1 })
			mu.Unlock(g)
			wg.Done(g)
		})
	}
	wg.Wait(g)
}

// chanHandoff: writer publishes via channel; the main goroutine reads
// and then updates the value after the recv. Race-free (HB edges via
// the channel), but lock-free — so the Eraser state machine reaches
// SharedModified with an empty candidate set: a lockset false positive.
func chanHandoff(g *sched.G) {
	v := sched.NewVar[int](g, "data")
	ch := sched.NewChan[int](g, "ch", 0)
	g.Go("producer", func(g *sched.G) {
		v.Store(g, 42)
		ch.Send(g, 1)
	})
	ch.Recv(g)
	if got := v.Load(g); got != 42 {
		panic("handoff lost the value")
	}
	v.Store(g, 43) // still ordered after the producer's write
}

func TestFastTrackDetectsWriteWriteRace(t *testing.T) {
	found := false
	for seed := int64(0); seed < 20; seed++ {
		ft := NewFastTrack()
		runWith(t, seed, sched.NewRandom(), racyCounter, ft)
		if ft.RaceCount() > 0 {
			found = true
			r := ft.Races()[0]
			if r.First.G == r.Second.G {
				t.Fatalf("self-race reported: %v", r)
			}
			break
		}
	}
	if !found {
		t.Fatal("racy counter never flagged across 20 seeds")
	}
}

func TestFastTrackCleanOnLockedCounter(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		ft := NewFastTrack()
		runWith(t, seed, sched.NewRandom(), lockedCounter, ft)
		if n := ft.RaceCount(); n != 0 {
			t.Fatalf("seed %d: %d false positives on mutex-protected counter:\n%s",
				seed, n, ft.Races()[0])
		}
	}
}

func TestFastTrackCleanOnChannelHandoff(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		ft := NewFastTrack()
		runWith(t, seed, sched.NewRandom(), chanHandoff, ft)
		if ft.RaceCount() != 0 {
			t.Fatalf("seed %d: channel handoff flagged:\n%s", seed, ft.Races()[0])
		}
	}
}

func TestEraserFalsePositiveOnChannelHandoff(t *testing.T) {
	// The lockset algorithm does not understand channel edges: the
	// shared var is written and read with no common lock, so Eraser
	// must flag it — the imprecision §3.1 describes.
	er := NewEraser()
	runWith(t, 1, sched.NewRoundRobin(), chanHandoff, er)
	if er.RaceCount() == 0 {
		t.Fatal("Eraser should flag channel-only synchronization")
	}
}

func TestEraserCleanOnLockedCounter(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		er := NewEraser()
		runWith(t, seed, sched.NewRandom(), lockedCounter, er)
		if er.RaceCount() != 0 {
			t.Fatalf("seed %d: Eraser flagged a consistently locked var", seed)
		}
	}
}

func TestEraserInterleavingInsensitive(t *testing.T) {
	// Round-robin lets the first goroutine finish before the second
	// starts, so HB sees the accesses ordered (via wg edges? no — via
	// nothing: they are ordered only by scheduling luck). Eraser still
	// flags the missing lock.
	prog := func(g *sched.G) {
		v := sched.NewVar[int](g, "x")
		done := sched.NewChan[int](g, "done", 2)
		g.Go("a", func(g *sched.G) {
			v.Store(g, 1)
			done.Send(g, 1)
		})
		g.Go("b", func(g *sched.G) {
			v.Store(g, 2)
			done.Send(g, 1)
		})
		done.Recv(g)
		done.Recv(g)
	}
	er := NewEraser()
	ft := NewFastTrack()
	runWith(t, 0, sched.NewRandom(), prog, er, ft)
	if er.RaceCount() == 0 {
		t.Fatal("Eraser must flag the unlocked shared writes regardless of schedule")
	}
	_ = ft // FastTrack may or may not flag, depending on interleaving
}

func TestForkEdgeOrdersParentChild(t *testing.T) {
	prog := func(g *sched.G) {
		v := sched.NewVar[int](g, "x")
		v.Store(g, 1) // before fork: ordered with child's accesses
		ch := sched.NewChan[int](g, "ch", 0)
		g.Go("child", func(g *sched.G) {
			v.Store(g, 2)
			ch.Send(g, 1)
		})
		ch.Recv(g)
		v.Load(g) // after recv: ordered after child's store
	}
	for seed := int64(0); seed < 10; seed++ {
		ft := NewFastTrack()
		runWith(t, seed, sched.NewRandom(), prog, ft)
		if ft.RaceCount() != 0 {
			t.Fatalf("seed %d: fork/channel edges missed:\n%s", seed, ft.Races()[0])
		}
	}
}

func TestWaitGroupEdge(t *testing.T) {
	prog := func(g *sched.G) {
		v := sched.NewVar[int](g, "x")
		wg := sched.NewWaitGroup(g, "wg")
		wg.Add(g, 1)
		g.Go("w", func(g *sched.G) {
			v.Store(g, 1)
			wg.Done(g)
		})
		wg.Wait(g)
		v.Load(g)
	}
	for seed := int64(0); seed < 10; seed++ {
		ft := NewFastTrack()
		runWith(t, seed, sched.NewRandom(), prog, ft)
		if ft.RaceCount() != 0 {
			t.Fatalf("seed %d: WaitGroup edge missed", seed)
		}
	}
}

func TestMisplacedWaitGroupAddRaces(t *testing.T) {
	// Listing 10: Add inside the goroutine. Under first-runnable
	// replay the parent reaches Wait with count 0 and reads while the
	// worker writes.
	prog := func(g *sched.G) {
		results := sched.NewSlice[int](g, "results", 1)
		wg := sched.NewWaitGroup(g, "wg")
		g.Go("worker", func(g *sched.G) {
			wg.Add(g, 1) // too late
			results.Set(g, 0, 7)
			wg.Done(g)
		})
		wg.Wait(g)
		results.Get(g, 0)
	}
	found := false
	for seed := int64(0); seed < 30; seed++ {
		ft := NewFastTrack()
		runWith(t, seed, sched.NewRandom(), prog, ft)
		if ft.RaceCount() > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("misplaced Add never produced a detected race")
	}
}

func TestRWMutexReadersDoNotRace(t *testing.T) {
	prog := func(g *sched.G) {
		v := sched.NewVarOf(g, "cfg", 1)
		mu := sched.NewRWMutex(g, "rw")
		wg := sched.NewWaitGroup(g, "wg")
		wg.Add(g, 1)
		g.Go("writer", func(g *sched.G) {
			mu.Lock(g)
			v.Store(g, 2)
			mu.Unlock(g)
			wg.Done(g)
		})
		for i := 0; i < 3; i++ {
			wg.Add(g, 1)
			g.Go("reader", func(g *sched.G) {
				mu.RLock(g)
				v.Load(g)
				mu.RUnlock(g)
				wg.Done(g)
			})
		}
		wg.Wait(g)
	}
	for seed := int64(0); seed < 20; seed++ {
		ft := NewFastTrack()
		er := NewEraser()
		runWith(t, seed, sched.NewRandom(), prog, ft, er)
		if ft.RaceCount() != 0 {
			t.Fatalf("seed %d: HB flagged a correct RWMutex program:\n%s", seed, ft.Races()[0])
		}
		if er.RaceCount() != 0 {
			t.Fatalf("seed %d: Eraser flagged a correct RWMutex program", seed)
		}
	}
}

func TestMutationUnderRLockRaces(t *testing.T) {
	// Listing 11: writing shared state while holding only the read lock.
	prog := func(g *sched.G) {
		ready := sched.NewVar[bool](g, "g.ready")
		mu := sched.NewRWMutex(g, "g.mutex")
		wg := sched.NewWaitGroup(g, "wg")
		for i := 0; i < 2; i++ {
			wg.Add(g, 1)
			g.Go("updateGate", func(g *sched.G) {
				mu.RLock(g)
				ready.Store(g, true) // write under read lock
				mu.RUnlock(g)
				wg.Done(g)
			})
		}
		wg.Wait(g)
	}
	foundHB := false
	for seed := int64(0); seed < 30; seed++ {
		ft := NewFastTrack()
		runWith(t, seed, sched.NewRandom(), prog, ft)
		if ft.RaceCount() > 0 {
			foundHB = true
			break
		}
	}
	if !foundHB {
		t.Fatal("write-under-RLock never flagged by HB detector")
	}
	er := NewEraser()
	runWith(t, 0, sched.NewRoundRobin(), prog, er)
	if er.RaceCount() == 0 {
		t.Fatal("write-under-RLock must be flagged by the lockset detector")
	}
}

func TestAtomicsDoNotRace(t *testing.T) {
	prog := func(g *sched.G) {
		a := sched.NewAtomic(g, "flag")
		wg := sched.NewWaitGroup(g, "wg")
		for i := 0; i < 2; i++ {
			wg.Add(g, 1)
			g.Go("w", func(g *sched.G) {
				a.Store(g, 1)
				a.Add(g, 1)
				a.Load(g)
				wg.Done(g)
			})
		}
		wg.Wait(g)
	}
	for seed := int64(0); seed < 20; seed++ {
		ft := NewFastTrack()
		runWith(t, seed, sched.NewRandom(), prog, ft)
		if ft.RaceCount() != 0 {
			t.Fatalf("seed %d: atomic ops flagged:\n%s", seed, ft.Races()[0])
		}
	}
}

func TestPartialAtomicsRace(t *testing.T) {
	// §4.9.2: atomic on the write side, plain on the read side.
	prog := func(g *sched.G) {
		a := sched.NewAtomic(g, "flag")
		wg := sched.NewWaitGroup(g, "wg")
		wg.Add(g, 1)
		g.Go("writer", func(g *sched.G) {
			a.Store(g, 1)
			wg.Done(g)
		})
		a.PlainLoad(g) // forgot atomic here
		wg.Wait(g)
	}
	found := false
	for seed := int64(0); seed < 30; seed++ {
		ft := NewFastTrack()
		runWith(t, seed, sched.NewRandom(), prog, ft)
		if ft.RaceCount() > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("plain read vs atomic store never flagged")
	}
}

func TestReadReadDoesNotRace(t *testing.T) {
	prog := func(g *sched.G) {
		v := sched.NewVarOf(g, "x", 1)
		wg := sched.NewWaitGroup(g, "wg")
		for i := 0; i < 3; i++ {
			wg.Add(g, 1)
			g.Go("r", func(g *sched.G) {
				v.Load(g)
				wg.Done(g)
			})
		}
		wg.Wait(g)
	}
	for seed := int64(0); seed < 10; seed++ {
		ft := NewFastTrack()
		runWith(t, seed, sched.NewRandom(), prog, ft)
		if ft.RaceCount() != 0 {
			t.Fatalf("seed %d: concurrent reads flagged", seed)
		}
	}
}

func TestMaxReportsPerCellCapsFlood(t *testing.T) {
	prog := func(g *sched.G) {
		v := sched.NewVar[int](g, "x")
		wg := sched.NewWaitGroup(g, "wg")
		for i := 0; i < 2; i++ {
			wg.Add(g, 1)
			g.Go("w", func(g *sched.G) {
				for j := 0; j < 50; j++ {
					v.Store(g, j)
				}
				wg.Done(g)
			})
		}
		wg.Wait(g)
	}
	ft := NewFastTrack()
	ft.MaxReportsPerCell = 3
	runWith(t, 5, sched.NewRandom(), prog, ft)
	if n := ft.RaceCount(); n > 3 {
		t.Fatalf("cap ignored: %d reports", n)
	}
}

func TestHybridCandidates(t *testing.T) {
	// A program whose race stays dormant under round-robin: the HB
	// detector sees nothing, the lockset detector still flags it.
	prog := func(g *sched.G) {
		v := sched.NewVar[int](g, "x")
		done := sched.NewChan[int](g, "done", 2)
		g.Go("a", func(g *sched.G) {
			v.Store(g, 1)
			done.Send(g, 1)
		})
		done.Recv(g) // serializes b after a under any schedule? No:
		// recv only orders main after a; b below is unordered with a's
		// write only through main's fork — which *does* order it.
		// So this really is race-free as written... make b racy:
		g.Go("b", func(g *sched.G) {
			v.Store(g, 2)
			done.Send(g, 1)
		})
		done.Recv(g)
	}
	// Note: a's write happens-before the fork of b (via done+fork), so
	// the program is genuinely race-free; Eraser still flags it as a
	// lockset candidate. That is precisely a lockset false positive.
	h := NewHybrid()
	runWith(t, 0, sched.NewRoundRobin(), prog, h)
	if got := h.HB.RaceCount(); got != 0 {
		t.Fatalf("HB flagged a race-free program: %d", got)
	}
	if len(h.Candidates()) == 0 {
		t.Fatal("hybrid should surface the lockset candidate")
	}
}

func TestEraserStateMachine(t *testing.T) {
	var addr trace.Addr
	er := NewEraser()
	runWith(t, 0, sched.NewReplay(nil), func(g *sched.G) {
		v := sched.NewVar[int](g, "x")
		addr = v.Addr()
		v.Store(g, 1) // virgin -> exclusive(main)
		ch := sched.NewChan[int](g, "ch", 0)
		g.Go("r", func(g *sched.G) {
			v.Load(g) // exclusive -> shared
			ch.Send(g, 1)
		})
		ch.Recv(g)
		g.Go("w", func(g *sched.G) {
			v.Store(g, 2) // shared -> shared-modified
			ch.Send(g, 1)
		})
		ch.Recv(g)
	}, er)
	if st := er.CellState(addr); st != "shared-modified" {
		t.Fatalf("state = %s", st)
	}
	if er.RaceCount() == 0 {
		t.Fatal("empty candidate lockset must report")
	}
}

// Cross-validation: on a battery of random programs, the epoch
// detector's racy-address set must equal FastTrack's, and DJIT must be
// a superset (DJIT keeps full read/write histories, so it can flag
// pairs FastTrack forgets after its first race on a cell).
func TestDetectorCrossValidation(t *testing.T) {
	progs := []func(*sched.G){racyCounter, lockedCounter, chanHandoff}
	for pi, prog := range progs {
		for seed := int64(0); seed < 15; seed++ {
			ft := NewFastTrack()
			ft.MaxReportsPerCell = 1 << 30
			ep := NewEpoch()
			dj := NewDJIT()
			runWith(t, seed, sched.NewRandom(), prog, ft, ep, dj)

			ftAddrs := make(map[trace.Addr]bool)
			for _, r := range ft.Races() {
				ftAddrs[r.Second.Addr] = true
			}
			epAddrs := ep.RacyAddrs()
			if len(ftAddrs) != len(epAddrs) {
				t.Fatalf("prog %d seed %d: fasttrack addrs %v != epoch addrs %v",
					pi, seed, ftAddrs, epAddrs)
			}
			for a := range ftAddrs {
				if !epAddrs[a] {
					t.Fatalf("prog %d seed %d: addr %d flagged by fasttrack, not epoch", pi, seed, a)
				}
			}
			for a := range epAddrs {
				if !dj.RacyAddrs()[a] {
					t.Fatalf("prog %d seed %d: addr %d flagged by epoch, not djit", pi, seed, a)
				}
			}
			if ep.RaceCount() > 0 && dj.RaceCount() == 0 {
				t.Fatalf("prog %d seed %d: epoch found races, djit none", pi, seed)
			}
		}
	}
}

func TestOfflineReplayMatchesOnline(t *testing.T) {
	// Post-facto mode (§3.3): record the trace, replay into a fresh
	// detector, and require identical verdicts.
	rec := &trace.Recorder{}
	online := NewFastTrack()
	runWith(t, 9, sched.NewRandom(), racyCounter, rec, online)
	offline := NewFastTrack()
	rec.Replay(offline)
	if online.RaceCount() != offline.RaceCount() {
		t.Fatalf("online %d races, offline %d", online.RaceCount(), offline.RaceCount())
	}
	for i, r := range online.Races() {
		if r.Hash() != offline.Races()[i].Hash() {
			t.Fatalf("report %d hash differs between online and offline", i)
		}
	}
}

func TestReportContainsBothStacks(t *testing.T) {
	prog := func(g *sched.G) {
		v := sched.NewVar[int](g, "job")
		wg := sched.NewWaitGroup(g, "wg")
		wg.Add(g, 1)
		g.Go("worker", func(g *sched.G) {
			g.Call("ProcessJob", "listing1.go", 3, func() {
				v.Load(g)
			})
			wg.Done(g)
		})
		g.Call("rangeLoop", "listing1.go", 1, func() {
			v.Store(g, 2)
		})
		wg.Wait(g)
	}
	var got bool
	for seed := int64(0); seed < 30 && !got; seed++ {
		ft := NewFastTrack()
		runWith(t, seed, sched.NewRandom(), prog, ft)
		for _, r := range ft.Races() {
			if r.First.Stack.Depth() > 0 && r.Second.Stack.Depth() > 0 {
				got = true
			}
		}
	}
	if !got {
		t.Fatal("no report carried both calling contexts")
	}
}

func TestStatsCounters(t *testing.T) {
	ft := NewFastTrack()
	ep := NewEpoch()
	er := NewEraser()
	runWith(t, 4, sched.NewRandom(), racyCounter, ft, ep, er)
	for _, s := range []Stats{ft.Stats(), ep.Stats(), er.Stats()} {
		if s.Events == 0 || s.Accesses == 0 {
			t.Fatalf("empty stats: %s", s)
		}
		if s.Accesses > s.Events || s.SyncOps > s.Events {
			t.Fatalf("inconsistent stats: %s", s)
		}
	}
	if ft.Stats().Cells == 0 || ft.Stats().Goroutines < 3 {
		t.Fatalf("fasttrack shadow stats: %s", ft.Stats())
	}
	// FastTrack and Epoch consumed the same stream.
	if ft.Stats().Events != ep.Stats().Events {
		t.Fatal("detectors saw different event counts")
	}
	if ft.Stats().String() == "" {
		t.Fatal("empty Stats string")
	}
}

func TestBufferedSlotEdge(t *testing.T) {
	// Go memory model: the k-th receive on a channel with capacity C
	// happens before the (k+C)-th send completes. With C=1: the
	// consumer's store before its recv must be visible to the
	// producer after its second send.
	prog := func(g *sched.G) {
		x := sched.NewVar[int](g, "x")
		ch := sched.NewChan[int](g, "ch", 1)
		done := sched.NewChan[int](g, "done", 0)
		g.Go("consumer", func(g *sched.G) {
			x.Store(g, 5) // before the 1st recv
			ch.Recv(g)
			done.Send(g, 1)
		})
		ch.Send(g, 1) // 1st send: buffered, no block
		ch.Send(g, 2) // 2nd send: completes only after the 1st recv
		x.Load(g)     // ordered after the consumer's store via the slot edge
		done.Recv(g)
	}
	for seed := int64(0); seed < 25; seed++ {
		ft := NewFastTrack()
		runWith(t, seed, sched.NewRandom(), prog, ft)
		if ft.RaceCount() != 0 {
			t.Fatalf("seed %d: capacity back-pressure edge missed:\n%s", seed, ft.Races()[0])
		}
	}
}

func TestCloseEdge(t *testing.T) {
	// A close happens before a receive that observes the close.
	prog := func(g *sched.G) {
		x := sched.NewVar[int](g, "x")
		ch := sched.NewChan[int](g, "ch", 0)
		g.Go("closer", func(g *sched.G) {
			x.Store(g, 9)
			ch.Close(g)
		})
		_, ok := ch.Recv(g)
		if !ok {
			x.Load(g) // ordered after the closer's store via the close edge
		}
	}
	for seed := int64(0); seed < 25; seed++ {
		ft := NewFastTrack()
		runWith(t, seed, sched.NewRandom(), prog, ft)
		if ft.RaceCount() != 0 {
			t.Fatalf("seed %d: close edge missed:\n%s", seed, ft.Races()[0])
		}
	}
}

func TestNoFalseEdgeFromUnrelatedChannel(t *testing.T) {
	// Synchronizing on one channel must not order accesses that only
	// a *different* channel could order: x is written by g1 and read
	// by main with no connecting edge — race — even though both
	// goroutines are busy with channel traffic elsewhere.
	prog := func(g *sched.G) {
		x := sched.NewVar[int](g, "x")
		chA := sched.NewChan[int](g, "a", 1)
		chB := sched.NewChan[int](g, "b", 1)
		g.Go("w", func(g *sched.G) {
			chA.Send(g, 1)
			x.Store(g, 1) // after its send: not covered by main's recv of B
			chB.Send(g, 1)
		})
		chB.Recv(g) // only orders against w's chB.Send... which is AFTER the store
		// x.Load here would be ordered (store happens before chB.Send).
		// To create the race, read BEFORE synchronizing on anything
		// that covers the store:
		_ = chA // main never receives from chA
		x.Load(g)
	}
	// The load is ordered after the store via chB (store precedes
	// chB.Send which precedes main's recv) — so this program is
	// race-FREE; assert the detector does not overreact, then flip it.
	for seed := int64(0); seed < 25; seed++ {
		ft := NewFastTrack()
		runWith(t, seed, sched.NewRandom(), prog, ft)
		if ft.RaceCount() != 0 {
			t.Fatalf("seed %d: false positive:\n%s", seed, ft.Races()[0])
		}
	}

	racy := func(g *sched.G) {
		x := sched.NewVar[int](g, "x")
		chB := sched.NewChan[int](g, "b", 1)
		g.Go("w", func(g *sched.G) {
			chB.Send(g, 1)
			x.Store(g, 1) // after the send: nothing orders it with main
		})
		chB.Recv(g)
		x.Load(g)
	}
	found := false
	for seed := int64(0); seed < 40 && !found; seed++ {
		ft := NewFastTrack()
		runWith(t, seed, sched.NewRandom(), racy, ft)
		found = ft.RaceCount() > 0
	}
	if !found {
		t.Fatal("store-after-send vs recv-side load never flagged")
	}
}
