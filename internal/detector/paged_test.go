package detector

import (
	"testing"

	"gorace/internal/progen"
	"gorace/internal/sched"
	"gorace/internal/trace"
	"gorace/internal/vclock"
)

// TestPagedFastTrackUnboundedMatchesPlain pins the tentpole identity:
// with no page budget, the paged detector must produce the exact
// ordered report sequence of plain FastTrack over a broad program
// sample — paging is a retention policy, not an algorithm change.
func TestPagedFastTrackUnboundedMatchesPlain(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		prog := progen.Generate(seed, progen.Params{})
		plain := NewFastTrack()
		paged := NewPagedFastTrack()
		sched.Run(prog.Main(), sched.Options{
			Strategy: sched.NewRandom(), Seed: seed, MaxSteps: 1 << 18,
			Listeners: []trace.Listener{plain, paged},
		})
		got, want := raceHashes(paged.Races()), raceHashes(plain.Races())
		if len(got) != len(want) {
			t.Fatalf("seed %d: paged reported %d races, plain %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: report %d diverged:\npaged %s\nplain %s", seed, i, got[i], want[i])
			}
		}
		st := paged.Stats()
		if st.Evictions != 0 || st.Reloads != 0 {
			t.Fatalf("seed %d: unbounded paged detector evicted (evictions=%d reloads=%d)",
				seed, st.Evictions, st.Reloads)
		}
	}
}

// TestPagedFastTrackEvicts drives a paged detector with a tiny budget
// over a wide address walk and verifies (a) the budget holds, (b)
// evictions and reloads are observed, and (c) every surviving report
// is one the unpaged detector also makes — eviction may only lose
// races, never invent them.
func TestPagedFastTrackEvicts(t *testing.T) {
	plain := NewFastTrack()
	paged := NewPagedFastTrack()
	paged.SetPageBudget(2)

	feed := func(l trace.Listener) {
		seq := uint64(0)
		emit := func(g int, op trace.Op, addr uint64) {
			seq++
			l.HandleEvent(trace.Event{Seq: seq, G: vclock.TID(g), Op: op, Addr: trace.Addr(addr)})
		}
		// Walk far past two pages of addresses, twice, so cold pages
		// evict and re-fault; plant a same-page racing pair (write by
		// g1, write by g2, no sync) that stays hot.
		for pass := 0; pass < 2; pass++ {
			for a := uint64(1); a <= 4*pagedCellsPerPage; a++ {
				emit(1, trace.OpWrite, a)
				emit(2, trace.OpWrite, 7) // hot racing cell, always touched
			}
		}
	}
	feed(trace.Multi{plain, paged})

	if got := paged.LivePages(); got > 2 {
		t.Fatalf("LivePages() = %d, exceeds budget 2", got)
	}
	st := paged.Stats()
	if st.Evictions == 0 {
		t.Fatal("wide address walk under a 2-page budget never evicted")
	}
	if st.Reloads == 0 {
		t.Fatal("second pass over evicted pages never re-faulted")
	}
	if len(paged.Races()) == 0 {
		t.Fatal("hot racing cell went unreported under eviction")
	}
	plainSet := make(map[string]bool)
	for _, h := range raceHashes(plain.Races()) {
		plainSet[h] = true
	}
	for _, h := range raceHashes(paged.Races()) {
		if !plainSet[h] {
			t.Fatalf("paged detector reported race %s that plain FastTrack did not", h)
		}
	}
	if pb := paged.PageBytes(); pb <= 0 {
		t.Fatalf("PageBytes() = %d, want positive", pb)
	}
}

// TestPagedFastTrackResetRewindsPaging verifies Reset clears eviction
// state so a recycled detector starts its next run cold.
func TestPagedFastTrackResetRewindsPaging(t *testing.T) {
	paged := NewPagedFastTrack()
	paged.SetPageBudget(1)
	for a := uint64(1); a <= 3*pagedCellsPerPage; a++ {
		paged.HandleEvent(trace.Event{Seq: a, G: 1, Op: trace.OpWrite, Addr: trace.Addr(a)})
	}
	if paged.Stats().Evictions == 0 {
		t.Fatal("setup walk never evicted")
	}
	paged.Reset()
	st := paged.Stats()
	if st.Evictions != 0 || st.Reloads != 0 || paged.LivePages() != 0 {
		t.Fatalf("Reset left paging state: evictions=%d reloads=%d live=%d",
			st.Evictions, st.Reloads, paged.LivePages())
	}
	if paged.maxPages != 1 {
		t.Fatal("Reset must keep the configured budget")
	}
}
