// Package taxonomy defines the race-cause categories of the paper's
// Tables 2 and 3, with the published counts from the study of 1011
// fixed data races. The pattern corpus tags its entries with these
// categories (ground truth) and the classifier maps detected reports
// back onto them; the Table 2/3 experiments compare the two.
package taxonomy

// Category identifies one root-cause category.
type Category string

// Table 2: races tied to Go language features and idioms.
const (
	CatCaptureErr         Category = "capture-err"          // err variable captured by reference
	CatCaptureLoop        Category = "capture-loop"         // loop range variable captured
	CatCaptureNamedReturn Category = "capture-named-return" // named return variable captured
	CatCaptureOther       Category = "capture-other"        // other accidental capture-by-reference
	CatSlice              Category = "slice"                // concurrent slice access
	CatMap                Category = "map"                  // concurrent map access
	CatPassByValue        Category = "pass-by-value"        // pass-by-value vs pass-by-reference confusion
	CatMixedChanShared    Category = "mixed-chan-shared"    // message passing mixed with shared memory
	CatGroupSync          Category = "group-sync"           // missing/incorrect WaitGroup usage
	CatParallelTest       Category = "parallel-test"        // table-driven parallel test suite
)

// Table 3: language-agnostic causes.
const (
	CatMissingLock     Category = "missing-lock"      // missing or partial locking
	CatRLockMutation   Category = "rlock-mutation"    // mutating inside a reader-only lock
	CatAPIContract     Category = "api-contract"      // thread-safe API contract violated
	CatGlobalVar       Category = "global-var"        // mutating a global variable
	CatPartialAtomics  Category = "partial-atomics"   // missing/incorrect atomic ops
	CatStatementOrder  Category = "statement-order"   // incorrect order of statements
	CatComplex         Category = "complex"           // complex multi-component interaction
	CatMetricsLogging  Category = "metrics-logging"   // racy metrics / logging
	CatFixRemovedConc  Category = "fix-removed-conc"  // fixed by removing concurrency
	CatFixDisabledTest Category = "fix-disabled-test" // fixed by disabling tests
	CatFixRefactor     Category = "fix-refactor"      // fixed by a major refactor
	CatUnknown         Category = "unknown"           // classifier could not decide
)

// Entry is one row of Table 2 or Table 3.
type Entry struct {
	Cat         Category
	Table       int    // 2 or 3
	Observation int    // paper observation number (0 for Table 3 misc rows)
	Description string // row text from the paper
	PaperCount  int    // count reported in the paper
}

// Entries lists every row of Tables 2 and 3 in paper order.
// Table 2's Observation 3 header row (121) is the sum of an
// "unattributed capture" remainder plus the three sub-rows; we model
// the sub-rows plus CatCaptureOther covering the remainder (121-102=19
// explicitly unattributed capture races... the paper presents 121 as
// the parent row; we treat 121 = 50 + 48 + 4 + 19).
var Entries = []Entry{
	{CatCaptureOther, 2, 3, "Accidental capture-by-reference in a goroutine (other)", 19},
	{CatCaptureErr, 2, 3, "Capture-by-reference of err variable", 50},
	{CatCaptureLoop, 2, 3, "Capture-by-reference of loop range variable", 48},
	{CatCaptureNamedReturn, 2, 3, "Capture of a named return", 4},
	{CatSlice, 2, 4, "Concurrent slice access", 391},
	{CatMap, 2, 5, "Concurrent map access", 38},
	{CatPassByValue, 2, 6, "Confusing pass-by-value vs pass-by-reference", 38},
	{CatMixedChanShared, 2, 7, "Mixing message passing with shared memory", 25},
	{CatGroupSync, 2, 8, "Missing or incorrect use of group synchronization", 24},
	{CatParallelTest, 2, 9, "Parallel test suite (table-driven testing)", 139},

	{CatMissingLock, 3, 10, "Missing or partial locking", 470},
	{CatRLockMutation, 3, 10, "Mutating inside a reader-only lock", 2},
	{CatAPIContract, 3, 0, "Thread-safe APIs violating contract", 369},
	{CatGlobalVar, 3, 0, "Mutating a global variable", 24},
	{CatPartialAtomics, 3, 0, "Missing or incorrect use of atomic ops", 40},
	{CatStatementOrder, 3, 0, "Incorrect order of statements", 5},
	{CatComplex, 3, 0, "Complex multi-component interaction", 6},
	{CatMetricsLogging, 3, 0, "Racy metrics / logging", 18},
	{CatFixRemovedConc, 3, 0, "Fixed by removing concurrency", 26},
	{CatFixDisabledTest, 3, 0, "Fixed by disabling tests", 3},
	{CatFixRefactor, 3, 0, "Fixed by a major refactor", 30},
}

// ByCategory returns the entry for cat, or a zero Entry.
func ByCategory(cat Category) (Entry, bool) {
	for _, e := range Entries {
		if e.Cat == cat {
			return e, true
		}
	}
	return Entry{}, false
}

// TableEntries returns the entries of one table, in paper order.
func TableEntries(table int) []Entry {
	var out []Entry
	for _, e := range Entries {
		if e.Table == table {
			out = append(out, e)
		}
	}
	return out
}

// Table2CaptureTotal is the parent-row count the paper reports for
// Observation 3 (the three sub-rows plus unattributed captures).
const Table2CaptureTotal = 121

// TotalFixed is the number of fixed races the study labeled. Labels
// are not mutually exclusive, so Σ counts exceeds it.
const TotalFixed = 1011
