package taxonomy

import "testing"

func TestEntriesMatchPaperTotals(t *testing.T) {
	// Table 2's Observation 3 parent row: 121 capture races.
	capture := 0
	for _, c := range []Category{CatCaptureErr, CatCaptureLoop, CatCaptureNamedReturn, CatCaptureOther} {
		e, ok := ByCategory(c)
		if !ok {
			t.Fatalf("missing %q", c)
		}
		capture += e.PaperCount
	}
	if capture != Table2CaptureTotal {
		t.Fatalf("capture sub-rows sum to %d, want %d", capture, Table2CaptureTotal)
	}
}

func TestPublishedRowCounts(t *testing.T) {
	want := map[Category]int{
		CatCaptureErr:         50,
		CatCaptureLoop:        48,
		CatCaptureNamedReturn: 4,
		CatSlice:              391,
		CatMap:                38,
		CatPassByValue:        38,
		CatMixedChanShared:    25,
		CatGroupSync:          24,
		CatParallelTest:       139,
		CatMissingLock:        470,
		CatRLockMutation:      2,
		CatAPIContract:        369,
		CatGlobalVar:          24,
		CatPartialAtomics:     40,
		CatStatementOrder:     5,
		CatComplex:            6,
		CatMetricsLogging:     18,
		CatFixRemovedConc:     26,
		CatFixDisabledTest:    3,
		CatFixRefactor:        30,
	}
	for cat, n := range want {
		e, ok := ByCategory(cat)
		if !ok {
			t.Errorf("missing category %q", cat)
			continue
		}
		if e.PaperCount != n {
			t.Errorf("%s: count %d, want %d", cat, e.PaperCount, n)
		}
	}
}

func TestTableEntriesPartition(t *testing.T) {
	t2, t3 := TableEntries(2), TableEntries(3)
	if len(t2)+len(t3) != len(Entries) {
		t.Fatal("tables do not partition the entries")
	}
	for _, e := range t2 {
		if e.Table != 2 {
			t.Errorf("%s in wrong table", e.Cat)
		}
	}
	for _, e := range t3 {
		if e.Table != 3 {
			t.Errorf("%s in wrong table", e.Cat)
		}
	}
	if len(TableEntries(4)) != 0 {
		t.Error("table 4 should be empty")
	}
}

func TestByCategoryUnknown(t *testing.T) {
	if _, ok := ByCategory("no-such"); ok {
		t.Fatal("unknown category found")
	}
	if _, ok := ByCategory(CatUnknown); ok {
		t.Fatal("CatUnknown has no table row and must not resolve")
	}
}

func TestLabelsNotMutuallyExclusive(t *testing.T) {
	// Σ of all rows exceeds the 1011 fixed races, as the paper notes.
	total := 0
	for _, e := range Entries {
		total += e.PaperCount
	}
	if total <= TotalFixed {
		t.Fatalf("row sum %d should exceed %d (multi-labeling)", total, TotalFixed)
	}
}

func TestDescriptionsNonEmpty(t *testing.T) {
	for _, e := range Entries {
		if e.Description == "" || e.Cat == "" {
			t.Errorf("entry %+v incomplete", e)
		}
		if e.Table != 2 && e.Table != 3 {
			t.Errorf("entry %s has table %d", e.Cat, e.Table)
		}
	}
}
