package classify

import (
	"testing"

	"gorace/internal/core"
	"gorace/internal/patterns"
	"gorace/internal/report"
	"gorace/internal/sched"
	"gorace/internal/stack"
	"gorace/internal/taxonomy"
	"gorace/internal/trace"
	"gorace/internal/vclock"
)

// manifest runs a racy pattern across seeds until races manifest,
// returning the reports and trace hints of the manifesting run.
func manifest(t *testing.T, prog func(*sched.G)) ([]report.Race, Hints) {
	t.Helper()
	runner := core.NewRunner(core.WithRecord(true), core.WithMaxSteps(1<<16))
	for seed := int64(0); seed < 120; seed++ {
		out, err := runner.RunSeed(prog, seed)
		if err != nil {
			t.Fatal(err)
		}
		if out.HasRace() {
			return out.Races, HintsFromTrace(out.Trace.Events)
		}
	}
	t.Fatal("race never manifested")
	return nil, Hints{}
}

// fixCats are fix-strategy labels that cannot be inferred from race
// reports; the classifier is not expected to produce them.
var fixCats = map[taxonomy.Category]bool{
	taxonomy.CatFixRemovedConc:  true,
	taxonomy.CatFixDisabledTest: true,
	taxonomy.CatFixRefactor:     true,
}

func TestClassifierRecoversGroundTruthPerPattern(t *testing.T) {
	for _, p := range patterns.All() {
		if fixCats[p.Cat] {
			continue
		}
		p := p
		t.Run(p.ID, func(t *testing.T) {
			races, hints := manifest(t, p.Racy)
			for _, r := range races {
				if Primary(r, hints) == p.Cat {
					return
				}
			}
			var got []taxonomy.Category
			for _, r := range races {
				got = append(got, Primary(r, hints))
			}
			t.Fatalf("want primary %q; reports classified as %v\nfirst report:\n%s",
				p.Cat, got, races[0])
		})
	}
}

func TestClassifierSecondaryLabels(t *testing.T) {
	// The Listing 10 pattern should carry both the group-sync primary
	// and a slice secondary (the racing data is a slice element).
	p, _ := patterns.ByID("waitgroup-add-inside")
	races, hints := manifest(t, p.Racy)
	for _, r := range races {
		cats := Classify(r, hints)
		if cats[0] != taxonomy.CatGroupSync {
			continue
		}
		for _, c := range cats[1:] {
			if c == taxonomy.CatSlice {
				return
			}
		}
	}
	t.Fatal("no report labeled {group-sync, slice}")
}

func TestClassifyNeverEmptyAndDeduped(t *testing.T) {
	r := report.Race{} // degenerate report
	cats := Classify(r, Hints{})
	if len(cats) == 0 {
		t.Fatal("empty classification")
	}
	seen := make(map[taxonomy.Category]bool)
	for _, c := range cats {
		if seen[c] {
			t.Fatalf("duplicate label %q", c)
		}
		seen[c] = true
	}
}

func TestWriteUnderReadLockRule(t *testing.T) {
	mk := func(op trace.Op, locks ...string) report.Access {
		return report.Access{Op: op, Locks: locks}
	}
	if !writeUnderReadLock(mk(trace.OpWrite, "mu(r)")) {
		t.Error("write with only read locks should match")
	}
	if writeUnderReadLock(mk(trace.OpWrite, "mu(r)", "other")) {
		t.Error("write-mode lock present: should not match")
	}
	if writeUnderReadLock(mk(trace.OpRead, "mu(r)")) {
		t.Error("reads never match")
	}
	if writeUnderReadLock(mk(trace.OpWrite)) {
		t.Error("no locks held: should not match")
	}
}

func TestClosureOfOtherRule(t *testing.T) {
	outer := report.Access{Stack: stack.NewContext(stack.Frame{Func: "aggregate"})}
	inner := report.Access{Stack: stack.NewContext(stack.Frame{Func: "aggregate.func1"})}
	if !closureOfOther(inner, outer) {
		t.Error("closure-of relationship missed")
	}
	if closureOfOther(outer, inner) {
		t.Error("reverse direction should not match")
	}
}

func TestHintsFromTrace(t *testing.T) {
	evs := []trace.Event{
		{G: 1, Op: trace.OpAcquire, Kind: trace.KindChan},
		{G: 1, Op: trace.OpRelease, Kind: trace.KindChan},
		{G: 2, Op: trace.OpAcquire, Kind: trace.KindWG},
		{G: 3, Op: trace.OpRelease, Kind: trace.KindWG},
		{G: 4, Op: trace.OpRead},
	}
	h := HintsFromTrace(evs)
	if h.ChanOps[vclock.TID(1)] != 2 {
		t.Errorf("chan ops = %d", h.ChanOps[1])
	}
	if !h.Waiters[2] || h.Waiters[3] {
		t.Error("waiters wrong")
	}
	if !h.Doners[3] || h.Doners[2] {
		t.Error("doners wrong")
	}
}

func TestPlainRaceFallsBackToMissingLock(t *testing.T) {
	a := report.Access{Op: trace.OpWrite, Stack: stack.NewContext(stack.Frame{Func: "w1", File: "a.go"})}
	b := report.Access{Op: trace.OpWrite, Stack: stack.NewContext(stack.Frame{Func: "w2", File: "a.go"})}
	got := Primary(report.Race{First: a, Second: b}, Hints{
		ChanOps: map[vclock.TID]int{}, Waiters: map[vclock.TID]bool{}, Doners: map[vclock.TID]bool{},
	})
	if got != taxonomy.CatMissingLock {
		t.Fatalf("fallback = %q", got)
	}
}
