// Package classify maps detected race reports back onto the taxonomy
// of Tables 2 and 3.
//
// The paper's authors labeled 1011 fixed races by hand, reading the
// two stack traces, the racing variable, and the surrounding code.
// This classifier mechanizes the same cues, in priority order:
// access-type evidence (atomic mismatch, write under a read-held
// lock), synchronization-role evidence (a WaitGroup waiter racing
// with a Done-er), structural evidence (map internals, slice headers,
// Test* root frames, closure-of-enclosing-function stacks, multi-file
// component spans), and naming conventions (err, range variables,
// named returns, globals, metrics).
//
// The classifier returns an ordered list: the first entry is the
// primary label; the rest are additional applicable labels ("these
// labelings are not mutually exclusive", §4.10). The three Table 3
// fix-strategy rows (removed concurrency, disabled tests, major
// refactor) are fix metadata, not race features, and cannot be
// inferred from a report; experiments take them from patch metadata.
package classify

import (
	"strings"

	"gorace/internal/report"
	"gorace/internal/taxonomy"
	"gorace/internal/trace"
	"gorace/internal/vclock"
)

// Hints carries per-goroutine synchronization-role evidence extracted
// from the execution trace (which goroutines touched channels, waited
// on WaitGroups, or completed them).
type Hints struct {
	ChanOps map[vclock.TID]int  // channel acquire/release counts
	Waiters map[vclock.TID]bool // goroutines that returned from wg.Wait
	Doners  map[vclock.TID]bool // goroutines that called wg.Done
	// WaitSeq records the sequence number of each goroutine's first
	// wg.Wait return; a waiter-side access participates in a
	// group-sync failure only if it executed *after* that point.
	WaitSeq map[vclock.TID]uint64
}

// HintsFromTrace scans a recorded event stream for role evidence.
func HintsFromTrace(events []trace.Event) Hints {
	h := Hints{
		ChanOps: make(map[vclock.TID]int),
		Waiters: make(map[vclock.TID]bool),
		Doners:  make(map[vclock.TID]bool),
		WaitSeq: make(map[vclock.TID]uint64),
	}
	for _, ev := range events {
		switch {
		case ev.Kind == trace.KindChan:
			h.ChanOps[ev.G]++
		case ev.Kind == trace.KindWG && ev.Op == trace.OpAcquire:
			h.Waiters[ev.G] = true
			if _, ok := h.WaitSeq[ev.G]; !ok {
				h.WaitSeq[ev.G] = ev.Seq
			}
		case ev.Kind == trace.KindWG && ev.Op == trace.OpRelease:
			h.Doners[ev.G] = true
		}
	}
	return h
}

// postWaitPair reports whether a is a waiter whose access happened
// after its wg.Wait returned, while b is a participant (Done-caller) —
// the pair group synchronization was supposed to order.
func postWaitPair(a, b report.Access, h Hints) bool {
	if !h.Waiters[a.G] || !h.Doners[b.G] {
		return false
	}
	ws, ok := h.WaitSeq[a.G]
	return ok && a.Seq > ws
}

// Classify returns the ordered labels for one race report. The list
// is never empty; the last-resort label is CatMissingLock for plain
// unsynchronized conflicts and CatUnknown if nothing at all applies.
func Classify(r report.Race, h Hints) []taxonomy.Category {
	var out []taxonomy.Category
	add := func(c taxonomy.Category) {
		for _, x := range out {
			if x == c {
				return
			}
		}
		out = append(out, c)
	}

	label := r.Var()
	first, second := r.First, r.Second

	// 1. Atomic mismatch: one side atomic, the other plain (§4.9.2).
	if first.Atomic != second.Atomic {
		add(taxonomy.CatPartialAtomics)
	}
	// 2. A write performed while holding only a read-mode lock.
	if writeUnderReadLock(first) || writeUnderReadLock(second) {
		add(taxonomy.CatRLockMutation)
	}
	// 3. A WaitGroup waiter's post-Wait access racing with a
	// participant's: the pair the group synchronization was supposed
	// to order. (A waiter's *pre*-Wait access racing with a worker is
	// an ordinary locking bug, not a WaitGroup misuse.)
	if postWaitPair(first, second, h) || postWaitPair(second, first, h) {
		add(taxonomy.CatGroupSync)
	}
	// 4. The two stacks span three or more source files: a
	// multi-component interaction.
	if distinctFiles(first, second) >= 3 {
		add(taxonomy.CatComplex)
	}
	// 5. A Test* root frame: the parallel test suite idiom.
	if isTestRoot(first) || isTestRoot(second) {
		add(taxonomy.CatParallelTest)
	}
	// 6. Map evidence: the shared sparse structure or a key cell.
	if strings.Contains(label, "(internal)") || strings.Contains(label, "[key]") {
		add(taxonomy.CatMap)
	}
	// 7. Slice evidence: the header (meta) cell or an element cell.
	if strings.Contains(label, "(meta") || strings.Contains(label, "[i]") || strings.Contains(label, "[new]") {
		add(taxonomy.CatSlice)
	}
	// 8. Library API state named by convention: a documented
	// thread-safe API whose implementation races internally. Checked
	// before the pointer-receiver cue — API-internal races also sit
	// in identical method leaves.
	if strings.HasPrefix(label, "api.") {
		add(taxonomy.CatAPIContract)
	}
	// 9. Pass-by-value evidence: a lock that is a copy, or the same
	// pointer-receiver method unexpectedly sharing receiver state.
	if hasCopyLock(first) || hasCopyLock(second) || sharedPointerReceiver(first, second) {
		add(taxonomy.CatPassByValue)
	}
	// 10–12. More naming conventions a human labeler would read off
	// the report: package globals, telemetry, init-before-publish.
	if strings.HasPrefix(label, "global.") {
		add(taxonomy.CatGlobalVar)
	}
	if strings.HasPrefix(label, "metrics.") || strings.HasPrefix(label, "log.") {
		add(taxonomy.CatMetricsLogging)
	}
	if strings.Contains(label, "(init)") {
		add(taxonomy.CatStatementOrder)
	}
	// 13–15. The capture idioms of Observation 3.
	if label == "err" {
		add(taxonomy.CatCaptureErr)
	}
	if strings.Contains(label, "(named)") {
		add(taxonomy.CatCaptureNamedReturn)
	}
	if strings.Contains(label, "(range)") {
		add(taxonomy.CatCaptureLoop)
	}
	// 16. Channel users racing on bare shared memory: the mixed
	// message-passing/shared-memory pattern.
	if len(first.Locks) == 0 && len(second.Locks) == 0 &&
		(h.ChanOps[first.G] > 0 || h.ChanOps[second.G] > 0) {
		add(taxonomy.CatMixedChanShared)
	}
	// 17. A closure racing with its enclosing function's frame, with
	// no locking in sight. (If either side holds a lock, the story is
	// partial locking, not an overlooked capture.)
	if len(first.Locks) == 0 && len(second.Locks) == 0 &&
		(closureOfOther(first, second) || closureOfOther(second, first)) {
		add(taxonomy.CatCaptureOther)
	}
	// 18. Fallback: missing or partial locking.
	add(taxonomy.CatMissingLock)
	return out
}

// Primary returns just the primary label.
func Primary(r report.Race, h Hints) taxonomy.Category {
	return Classify(r, h)[0]
}

func writeUnderReadLock(a report.Access) bool {
	if !a.Op.IsWrite() {
		return false
	}
	if len(a.Locks) == 0 {
		return false
	}
	for _, l := range a.Locks {
		if !strings.HasSuffix(l, "(r)") {
			return false // holds a write-mode lock too
		}
	}
	return true
}

func distinctFiles(a, b report.Access) int {
	files := make(map[string]bool)
	for _, f := range a.Stack.Frames() {
		if f.File != "" {
			files[f.File] = true
		}
	}
	for _, f := range b.Stack.Frames() {
		if f.File != "" {
			files[f.File] = true
		}
	}
	return len(files)
}

func isTestRoot(a report.Access) bool {
	return strings.HasPrefix(a.Stack.Root().Func, "Test")
}

func hasCopyLock(a report.Access) bool {
	for _, l := range a.Locks {
		if strings.Contains(l, "(copy)") {
			return true
		}
	}
	return false
}

// sharedPointerReceiver reports whether both accesses sit in the same
// pointer-receiver method — the "accidentally shared receiver" shape.
func sharedPointerReceiver(a, b report.Access) bool {
	la, lb := a.Stack.Leaf().Func, b.Stack.Leaf().Func
	return la != "" && la == lb && strings.HasPrefix(la, "(*")
}

// closureOfOther reports whether a's stack is inside an anonymous
// function of b's root function (Go names closures parent.funcN).
func closureOfOther(a, b report.Access) bool {
	root := b.Stack.Root().Func
	if root == "" {
		return false
	}
	for _, f := range a.Stack.Frames() {
		if strings.HasPrefix(f.Func, root+".func") {
			return true
		}
	}
	return false
}
