package racegen

import (
	"embed"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gorace/internal/taxonomy"
)

//go:embed testdata/keepers
var keeperFS embed.FS

// Suite returns the committed discriminating-program suite: every
// keeper a racegen loop has ever minimized and committed under
// testdata/keepers. CI replays the suite on every run and asserts the
// verdict signatures are byte-stable.
func Suite() ([]Keeper, error) {
	entries, err := keeperFS.ReadDir("testdata/keepers")
	if err != nil {
		return nil, err
	}
	var out []Keeper
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		raw, err := keeperFS.ReadFile("testdata/keepers/" + e.Name())
		if err != nil {
			return nil, err
		}
		var k Keeper
		if err := json.Unmarshal(raw, &k); err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name(), err)
		}
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// Replay re-evaluates one keeper and returns its current verdict
// signatures, for comparison against the committed ones. The config's
// Seeds/BaseSeed/MaxSteps must match the values the keeper was
// captured with (the defaults, unless the suite says otherwise).
func Replay(cfg Config, k Keeper) (map[string]string, error) {
	cfg = cfg.withDefaults()
	ev, err := cfg.evaluate(k.Spec)
	if err != nil {
		return nil, err
	}
	return ev.signatures, nil
}

// SaveKeepers writes each keeper to dir as <id>.json (pretty-printed,
// trailing newline) — the format committed under testdata/keepers.
func SaveKeepers(dir string, keepers []Keeper) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, k := range keepers {
		raw, err := json.MarshalIndent(k, "", "  ")
		if err != nil {
			return err
		}
		raw = append(raw, '\n')
		if err := os.WriteFile(filepath.Join(dir, k.ID+".json"), raw, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// Markdown renders the campaign round table plus the category fill
// table, the format `racedetect -racegen -markdown` prints and CI
// publishes to the job summary.
func Markdown(res *Result) string {
	var b strings.Builder
	b.WriteString("### racegen rounds\n\n")
	b.WriteString("| round | candidates | disagreeing | kept | new edges | total edges |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	for _, r := range res.Rounds {
		fmt.Fprintf(&b, "| %d | %d | %d | %d | %d | %d |\n",
			r.Round, r.Candidates, r.Disagreeing, r.Kept, r.NewEdges, r.TotalEdges)
	}
	b.WriteString("\n### category fill\n\n")
	b.WriteString("| category | keepers |\n")
	b.WriteString("|---|---|\n")
	cats := make([]taxonomy.Category, 0, len(res.Fill))
	for cat := range res.Fill {
		cats = append(cats, cat)
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
	for _, cat := range cats {
		fmt.Fprintf(&b, "| %s | %d |\n", cat, res.Fill[cat])
	}
	return b.String()
}
