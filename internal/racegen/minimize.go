package racegen

import (
	"gorace/internal/progen"
	"gorace/internal/taxonomy"
)

// minimize delta-debugs a discriminating candidate down to a keeper:
// it repeatedly deletes chunks of ops (then whole goroutines) and
// keeps each deletion that preserves the interesting behavior —
// clean execution, detector disagreement, and the primary taxonomy
// category. The probe budget bounds the cost; whatever shape holds
// when probes run out is the keeper.
func (c Config) minimize(ev *evaluation, fill map[taxonomy.Category]int) (*Keeper, error) {
	primary := c.rarest(ev.categories, fill)
	probes := c.MinProbes
	interesting := func(spec progen.Spec) bool {
		if probes <= 0 {
			return false
		}
		probes--
		cand, err := c.evaluate(spec)
		if err != nil || !cand.clean || cand.disagreements() == 0 {
			return false
		}
		if primary == taxonomy.CatUnknown {
			return true
		}
		for _, cat := range cand.categories {
			if cat == primary {
				return true
			}
		}
		return false
	}

	cur := ev.spec
	// Phase 1: drop whole goroutines (largest deletions first).
	for gi := len(cur.Goroutines) - 1; gi >= 0 && len(cur.Goroutines) > 1; gi-- {
		trial := dropGoroutine(cur, gi)
		if interesting(trial) {
			cur = trial
		}
	}
	// Phase 2: per-goroutine ddmin over op chunks, halving the chunk
	// size until single ops.
	for gi := 0; gi < len(cur.Goroutines); gi++ {
		for chunk := maxInt(len(cur.Goroutines[gi].Ops)/2, 1); chunk >= 1; chunk /= 2 {
			for start := 0; start < len(cur.Goroutines[gi].Ops); {
				trial := dropOps(cur, gi, start, chunk)
				if len(trial.Goroutines[gi].Ops) < len(cur.Goroutines[gi].Ops) && interesting(trial) {
					cur = trial // retry same start: the next chunk slid in
				} else {
					start += chunk
				}
			}
			if chunk == 1 {
				break
			}
		}
	}
	// Phase 3: clear the straggler flags that survived minimization
	// only if the disagreement does not depend on them.
	for gi := range cur.Goroutines {
		if !cur.Goroutines[gi].Straggler {
			continue
		}
		trial := cloneSpec(cur)
		trial.Goroutines[gi].Straggler = false
		if interesting(trial) {
			cur = trial
		}
	}

	final, err := c.evaluate(cur)
	if err != nil || !final.clean || final.disagreements() == 0 {
		// Minimization invalidated the candidate (probe budget hit on
		// a bad path); fall back to the original.
		final = ev
		cur = ev.spec
	}
	cat := c.rarest(final.categories, fill)
	return &Keeper{
		ID:       specID(cur),
		Spec:     cur,
		Category: cat,
		Verdicts: final.signatures,
	}, nil
}

// rarest picks the category the corpus lacks most among those the
// candidate exhibits (ties break alphabetically, keeping the choice
// deterministic); CatUnknown if the candidate classified nothing.
func (c Config) rarest(cats []taxonomy.Category, fill map[taxonomy.Category]int) taxonomy.Category {
	best := taxonomy.CatUnknown
	bestHave := int(^uint(0) >> 1)
	for _, cat := range cats {
		have := fill[cat] + c.Known[cat]
		if have < bestHave || (have == bestHave && cat < best) {
			best, bestHave = cat, have
		}
	}
	return best
}

func cloneSpec(s progen.Spec) progen.Spec {
	out := s
	out.Goroutines = make([]progen.GoroutineSpec, len(s.Goroutines))
	for i, g := range s.Goroutines {
		out.Goroutines[i] = progen.GoroutineSpec{
			Ops:       append([]progen.OpSpec(nil), g.Ops...),
			Straggler: g.Straggler,
		}
	}
	return out
}

func dropGoroutine(s progen.Spec, gi int) progen.Spec {
	out := cloneSpec(s)
	out.Goroutines = append(out.Goroutines[:gi], out.Goroutines[gi+1:]...)
	return out
}

func dropOps(s progen.Spec, gi, start, n int) progen.Spec {
	out := cloneSpec(s)
	ops := out.Goroutines[gi].Ops
	if start >= len(ops) {
		return out
	}
	end := start + n
	if end > len(ops) {
		end = len(ops)
	}
	out.Goroutines[gi].Ops = append(ops[:start], ops[end:]...)
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
