package racegen

import (
	"os"
	"testing"
)

func TestGenSuite(t *testing.T) {
	if os.Getenv("RACEGEN_GEN") == "" {
		t.Skip("set RACEGEN_GEN=1 to regenerate the keeper suite")
	}
	res, err := Run(Config{Rounds: 4, Budget: 12, Parallelism: 4, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("keepers=%d fill=%v", len(res.Keepers), res.Fill)
	if err := SaveKeepers("testdata/keepers", res.Keepers); err != nil {
		t.Fatal(err)
	}
}
