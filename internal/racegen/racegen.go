// Package racegen is the repo's first closed generate→measure→steer
// loop: feedback-driven scenario generation layered on progen + sweep.
//
// Each round draws a budget of candidate programs — fresh shapes plus
// mutations of the best shapes seen so far — and evaluates every
// candidate with a deterministic sweep campaign that runs it under
// four detectors (fasttrack, djit, eraser, fasttrack-paged) and two
// scheduling strategies. Three feedback signals score a candidate:
//
//   - coverage: schedule-shape edges (sweep.ShapeEdges) the campaign
//     exercised that no earlier candidate covered;
//   - disagreement: detectors whose verdict signatures split on the
//     same program + seeds — the differential oracle;
//   - taxonomy fill: races classified into categories the live corpus
//     under-represents.
//
// Discriminating candidates are kept, minimized by delta-debugging
// their op lists while the disagreement persists, and folded into the
// corpus via corpus.Collector. Everything is seeded and campaigns are
// sweep-deterministic, so a racegen run produces identical keepers,
// signatures, and round tables at any parallelism.
package racegen

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"

	"gorace/internal/classify"
	"gorace/internal/corpus"
	"gorace/internal/progen"
	"gorace/internal/sweep"
	"gorace/internal/taxonomy"
)

// Detectors is the differential-oracle panel, in verdict-table order.
// fasttrack is the reference; djit should agree on verdicts (same HB
// relation); eraser's lockset view both over-reports (channel/WG
// synchronized data) and under-reports (atomics, read-shared data);
// fasttrack-paged diverges only when its page budget evicts state.
var Detectors = []string{"fasttrack", "djit", "eraser", "fasttrack-paged"}

// Strategies is the schedule panel each candidate runs under.
var Strategies = []string{"random", "pct"}

// Config bounds a racegen campaign.
type Config struct {
	Rounds      int   // generation rounds (default 3)
	Budget      int   // candidates per round (default 8)
	Seeds       int   // schedule seeds per unit (default 4)
	BaseSeed    int64 // master seed for generation and schedules
	Parallelism int   // sweep workers (default runtime-chosen)
	MaxSteps    int   // per-run step budget (default 1<<16)
	MinProbes   int   // minimizer probe budget per keeper (default 48)

	// CategoryTarget is the per-category corpus fill target; races in
	// categories below it earn the under-representation bonus
	// (default 3).
	CategoryTarget int

	// Known seeds the category-fill scoring with the live corpus's
	// current per-category counts, so generation steers toward what
	// the store lacks.
	Known map[taxonomy.Category]int

	// RunID labels the keepers' corpus fold (default "racegen").
	RunID string

	// Log, when non-nil, receives one line per round of progress.
	Log func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Rounds == 0 {
		c.Rounds = 3
	}
	if c.Budget == 0 {
		c.Budget = 8
	}
	if c.Seeds == 0 {
		c.Seeds = 4
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 1 << 16
	}
	if c.MinProbes == 0 {
		c.MinProbes = 48
	}
	if c.CategoryTarget == 0 {
		c.CategoryTarget = 3
	}
	if c.RunID == "" {
		c.RunID = "racegen"
	}
	return c
}

// Keeper is one minimized discriminating program: a candidate at
// least two detectors disagreed about, shrunk until removing any
// further op chunk would lose the disagreement.
type Keeper struct {
	ID       string            `json:"id"`       // content hash of the minimized spec
	Spec     progen.Spec       `json:"spec"`     // minimized program
	Category taxonomy.Category `json:"category"` // primary classification
	// Verdicts maps "detector/strategy" to the byte-stable verdict
	// signature replay must reproduce.
	Verdicts map[string]string `json:"verdicts"`
}

// RoundStat summarizes one generation round for the round table.
type RoundStat struct {
	Round       int // 1-based
	Candidates  int // programs evaluated
	Disagreeing int // candidates with detector disagreement
	Kept        int // keepers folded in (post-dedup, post-minimize)
	NewEdges    int // shape edges first covered this round
	TotalEdges  int // cumulative covered edges after the round
}

// Result is a completed racegen campaign.
type Result struct {
	Keepers []Keeper
	Rounds  []RoundStat
	// Fill is the per-category keeper count, the campaign's
	// contribution to taxonomy coverage.
	Fill map[taxonomy.Category]int
	// Collector holds the keepers' corpus fold (run the keepers once
	// more under the reference detector); AppendTo a store to
	// persist.
	Collector *corpus.Collector
}

// evaluation is one candidate's measured behavior.
type evaluation struct {
	spec       progen.Spec
	clean      bool
	edges      []uint64
	signatures map[string]string // "detector/strategy" → signature
	categories []taxonomy.Category
	score      int
}

// health counts model-level trouble across a campaign: failures,
// leaks, and budget blowups all disqualify a candidate.
type health struct{ bad int }

func (h *health) Observe(r sweep.Run) {
	res := r.Outcome.Result
	if res == nil || len(res.Failures) > 0 || res.Deadlocked() || res.BudgetExceeded {
		h.bad++
	}
}

func (h *health) Merge(next sweep.Aggregator) { h.bad += next.(*health).bad }

// engine builds the sweep engine; Parallelism 0 keeps the engine's
// GOMAXPROCS default (results are identical either way).
func (c Config) engine() *sweep.Engine {
	if c.Parallelism > 0 {
		return sweep.New(sweep.WithParallelism(c.Parallelism))
	}
	return sweep.New()
}

// evaluate runs one candidate through the detector × strategy panel.
func (c Config) evaluate(spec progen.Spec) (*evaluation, error) {
	prog, err := progen.FromSpec(spec)
	if err != nil {
		return nil, err
	}
	var units []sweep.Unit
	type key struct{ det, strat string }
	var keys []key
	for _, det := range Detectors {
		for _, strat := range Strategies {
			units = append(units, sweep.Unit{
				ID:       fmt.Sprintf("%s/%s", det, strat),
				Program:  prog.Main(),
				Detector: det,
				Strategy: strat,
				BaseSeed: c.BaseSeed,
				Runs:     c.Seeds,
				MaxSteps: c.MaxSteps,
				// Record the reference detector for coverage and
				// classification; the rest only need verdicts.
				Record: det == Detectors[0],
			})
			keys = append(keys, key{det, strat})
		}
	}
	aggs, _, err := c.engine().Run(units,
		func() sweep.Aggregator { return sweep.NewVerdicts() },
		func() sweep.Aggregator { return sweep.NewCover() },
		func() sweep.Aggregator { return sweep.NewFirstRace() },
		func() sweep.Aggregator { return &health{} },
	)
	if err != nil {
		return nil, err
	}
	verdicts := aggs[0].(*sweep.Verdicts)
	cover := aggs[1].(*sweep.Cover)
	first := aggs[2].(*sweep.FirstRace)

	ev := &evaluation{
		spec:       spec,
		clean:      aggs[3].(*health).bad == 0,
		edges:      cover.Edges(),
		signatures: make(map[string]string),
	}
	for i, k := range keys {
		if u := verdicts.Unit(i); u != nil {
			ev.signatures[k.det+"/"+k.strat] = u.Signature()
		}
	}
	// Classify every race in the reference detector's first racy
	// recorded outcome.
	seen := make(map[taxonomy.Category]bool)
	for i, k := range keys {
		if k.det != Detectors[0] {
			continue
		}
		out, ok := first.Outcome(i)
		if !ok || out.Trace == nil {
			continue
		}
		hints := classify.HintsFromTrace(out.Trace.Events)
		for _, race := range out.Races {
			cat := classify.Primary(race, hints)
			if !seen[cat] {
				seen[cat] = true
				ev.categories = append(ev.categories, cat)
			}
		}
	}
	sort.Slice(ev.categories, func(i, j int) bool { return ev.categories[i] < ev.categories[j] })
	return ev, nil
}

// disagreements counts, per strategy, how many detectors broke from
// the majority verdict signature: 0 means the panel agreed everywhere.
func (ev *evaluation) disagreements() int {
	n := 0
	for _, strat := range Strategies {
		sigs := make(map[string]int)
		for _, det := range Detectors {
			if s, ok := ev.signatures[det+"/"+strat]; ok {
				sigs[s]++
			}
		}
		if len(sigs) > 1 {
			n += len(sigs) - 1
		}
	}
	return n
}

// score combines the three feedback signals. Weights are documented
// in docs/GENERATION.md: an edge of new coverage is worth 1, each
// disagreeing detector 40, each race in an under-filled category 80
// per missing slot.
func (c Config) score(ev *evaluation, covered map[uint64]struct{}, fill map[taxonomy.Category]int) int {
	novel := 0
	for _, e := range ev.edges {
		if _, ok := covered[e]; !ok {
			novel++
		}
	}
	s := novel + 40*ev.disagreements()
	for _, cat := range ev.categories {
		have := fill[cat] + c.Known[cat]
		if have < c.CategoryTarget {
			s += 80 * (c.CategoryTarget - have)
		}
	}
	return s
}

// Run executes the generation loop.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	res := &Result{Fill: make(map[taxonomy.Category]int)}
	covered := make(map[uint64]struct{})
	keeperIDs := make(map[string]bool)
	var pool []scored // best shapes seen, mutation bases

	for round := 1; round <= cfg.Rounds; round++ {
		stat := RoundStat{Round: round}
		var roundBest []scored
		for idx := 0; idx < cfg.Budget; idx++ {
			spec := cfg.propose(round, idx, pool)
			ev, err := cfg.evaluate(spec)
			if err != nil {
				// An invalid mutation is skipped, not fatal: the
				// proposer can produce degenerate shapes.
				continue
			}
			stat.Candidates++
			if !ev.clean {
				continue
			}
			ev.score = cfg.score(ev, covered, res.Fill)
			for _, e := range ev.edges {
				if _, ok := covered[e]; !ok {
					covered[e] = struct{}{}
					stat.NewEdges++
				}
			}
			roundBest = append(roundBest, scored{spec: spec, score: ev.score})
			if ev.disagreements() == 0 {
				continue
			}
			stat.Disagreeing++
			keeper, err := cfg.minimize(ev, res.Fill)
			if err != nil || keeper == nil {
				continue
			}
			if keeperIDs[keeper.ID] {
				continue // same minimized program found again
			}
			keeperIDs[keeper.ID] = true
			res.Keepers = append(res.Keepers, *keeper)
			res.Fill[keeper.Category]++
			stat.Kept++
		}
		pool = mergePool(pool, roundBest, 6)
		stat.TotalEdges = len(covered)
		res.Rounds = append(res.Rounds, stat)
		logf("round %d: %d candidates, %d disagreeing, %d kept, %d new edges (%d total)",
			round, stat.Candidates, stat.Disagreeing, stat.Kept, stat.NewEdges, stat.TotalEdges)
	}

	if err := cfg.fold(res); err != nil {
		return nil, err
	}
	return res, nil
}

type scored struct {
	spec  progen.Spec
	score int
}

// mergePool keeps the top-n shapes by score (stable on ties, so the
// pool is deterministic).
func mergePool(pool, add []scored, n int) []scored {
	pool = append(pool, add...)
	sort.SliceStable(pool, func(i, j int) bool { return pool[i].score > pool[j].score })
	if len(pool) > n {
		pool = pool[:n]
	}
	return pool
}

// fold replays every keeper once under the reference detector and
// collects the races into a corpus.Collector for persistence.
func (c Config) fold(res *Result) error {
	if len(res.Keepers) == 0 {
		res.Collector = corpus.NewCollector(c.RunID, corpus.WithRunLabel("racegen"))
		return nil
	}
	var units []sweep.Unit
	for _, k := range res.Keepers {
		prog, err := progen.FromSpec(k.Spec)
		if err != nil {
			return fmt.Errorf("keeper %s: %w", k.ID, err)
		}
		units = append(units, sweep.Unit{
			ID:       "racegen:" + k.ID,
			Program:  prog.Main(),
			Detector: Detectors[0],
			Strategy: Strategies[0],
			BaseSeed: c.BaseSeed,
			Runs:     c.Seeds,
			MaxSteps: c.MaxSteps,
			Record:   true,
		})
	}
	aggs, _, err := c.engine().Run(units,
		func() sweep.Aggregator { return corpus.NewCollector(c.RunID, corpus.WithRunLabel("racegen")) })
	if err != nil {
		return err
	}
	res.Collector = aggs[0].(*corpus.Collector)
	return nil
}

// specID is the keeper identity: a content hash of the canonical JSON
// spec.
func specID(spec progen.Spec) string {
	raw, _ := json.Marshal(spec)
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:8])
}

// propose draws the next candidate: early rounds and a slice of every
// budget explore fresh shapes; the rest mutate pool survivors. All
// randomness derives from (BaseSeed, round, idx), never from global
// state, so proposals are reproducible.
func (c Config) propose(round, idx int, pool []scored) progen.Spec {
	rng := rand.New(rand.NewSource(c.BaseSeed ^ int64(round)*1_000_003 ^ int64(idx)*7_919))
	if len(pool) == 0 || idx < c.Budget/3 {
		return freshSpec(rng)
	}
	base := pool[rng.Intn(len(pool))].spec
	return mutateSpec(rng, base)
}

// freshSpec generates a new random shape with a random idiom mix.
func freshSpec(rng *rand.Rand) progen.Spec {
	p := progen.Params{
		Goroutines: 2 + rng.Intn(4),
		OpsPerG:    4 + rng.Intn(10),
		Vars:       2 + rng.Intn(3),
	}
	// Bias toward racy shapes: mostly-unguarded accesses make the
	// detectors' differences reachable within a small seed panel.
	p.LockedRatio = progen.Int([]int{0, 0, 25, 50}[rng.Intn(4)])
	switch rng.Intn(6) {
	case 0:
		p.Maps = 1 + rng.Intn(2)
	case 1:
		p.Flags = 1 + rng.Intn(2)
	case 2:
		p.CtxDepth = 1 + rng.Intn(3)
	case 3:
		p.Errgroup = true
	case 4:
		p.Pools = 1 + rng.Intn(2)
	case 5: // plain base family
	}
	if rng.Intn(3) == 0 {
		p.ChanCap = progen.Int(rng.Intn(3))
	}
	return progen.Generate(rng.Int63(), p).Spec()
}

// mutateSpec applies one mutation operator to a pool shape: perturb a
// size knob, toggle an idiom, reroll the ratio/capacity, or regrow
// from a fresh generation seed.
func mutateSpec(rng *rand.Rand, base progen.Spec) progen.Spec {
	p := base.Params
	switch rng.Intn(8) {
	case 0:
		p.Goroutines = 2 + rng.Intn(5)
	case 1:
		p.OpsPerG = 4 + rng.Intn(12)
	case 2:
		p.LockedRatio = progen.Int([]int{0, 25, 50, 75, 100}[rng.Intn(5)])
	case 3:
		p.ChanCap = progen.Int(rng.Intn(4))
	case 4:
		p.Maps = rng.Intn(3)
	case 5:
		p.Flags = rng.Intn(3)
	case 6:
		p.CtxDepth = rng.Intn(4)
	case 7:
		if rng.Intn(2) == 0 {
			p.Errgroup = !p.Errgroup
		} else {
			p.Pools = rng.Intn(3)
		}
	}
	return progen.Generate(rng.Int63(), p).Spec()
}
