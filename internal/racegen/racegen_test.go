package racegen

import (
	"reflect"
	"strings"
	"testing"

	"gorace/internal/taxonomy"
)

// TestSuiteReplayByteStable is the regression replay: every committed
// keeper must reproduce its captured verdict signatures exactly, at
// parallelism 1 and at parallelism 8. A diff here means a detector or
// the scheduler changed observable behavior on a program the panel
// historically disagreed about.
func TestSuiteReplayByteStable(t *testing.T) {
	suite, err := Suite()
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) < 10 {
		t.Fatalf("committed suite has %d keepers, want >= 10", len(suite))
	}
	for _, par := range []int{1, 8} {
		for _, k := range suite {
			got, err := Replay(Config{Parallelism: par}, k)
			if err != nil {
				t.Fatalf("keeper %s (par %d): %v", k.ID, par, err)
			}
			if !reflect.DeepEqual(got, k.Verdicts) {
				t.Errorf("keeper %s (par %d): verdicts drifted\ngot:  %v\nwant: %v",
					k.ID, par, got, k.Verdicts)
			}
		}
	}
}

// TestSuiteStillDiscriminates: each keeper's committed verdicts must
// actually disagree — a suite of agreed-upon programs tests nothing.
func TestSuiteStillDiscriminates(t *testing.T) {
	suite, err := Suite()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range suite {
		split := false
		for _, strat := range Strategies {
			sigs := make(map[string]bool)
			for _, det := range Detectors {
				sigs[k.Verdicts[det+"/"+strat]] = true
			}
			if len(sigs) > 1 {
				split = true
			}
		}
		if !split {
			t.Errorf("keeper %s: all detectors agree, not a discriminator", k.ID)
		}
	}
}

// TestSuiteFillsCategories pins the acceptance criterion: the suite
// covers at least three taxonomy categories the pattern catalog
// under-represents (everything except its over-sampled staples).
func TestSuiteFillsCategories(t *testing.T) {
	suite, err := Suite()
	if err != nil {
		t.Fatal(err)
	}
	common := map[taxonomy.Category]bool{
		taxonomy.CatMissingLock: true,
		taxonomy.CatSlice:       true,
		taxonomy.CatUnknown:     true,
	}
	rare := make(map[taxonomy.Category]int)
	for _, k := range suite {
		if !common[k.Category] {
			rare[k.Category]++
		}
	}
	if len(rare) < 3 {
		t.Fatalf("suite fills %d under-represented categories (%v), want >= 3", len(rare), rare)
	}
}

// TestRunDeterministicAcrossParallelism: the whole loop — proposals,
// scores, keepers, minimization, round stats — must be identical at
// parallelism 1 and 8.
func TestRunDeterministicAcrossParallelism(t *testing.T) {
	run := func(par int) *Result {
		res, err := Run(Config{Rounds: 2, Budget: 4, Seeds: 3, BaseSeed: 77, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	if len(a.Keepers) != len(b.Keepers) {
		t.Fatalf("keeper count differs by parallelism: %d vs %d", len(a.Keepers), len(b.Keepers))
	}
	for i := range a.Keepers {
		if a.Keepers[i].ID != b.Keepers[i].ID {
			t.Fatalf("keeper %d differs: %s vs %s", i, a.Keepers[i].ID, b.Keepers[i].ID)
		}
		if !reflect.DeepEqual(a.Keepers[i].Verdicts, b.Keepers[i].Verdicts) {
			t.Fatalf("keeper %s verdicts differ by parallelism", a.Keepers[i].ID)
		}
	}
	if !reflect.DeepEqual(a.Rounds, b.Rounds) {
		t.Fatalf("round stats differ:\n%+v\n%+v", a.Rounds, b.Rounds)
	}
	if !reflect.DeepEqual(a.Fill, b.Fill) {
		t.Fatalf("category fill differs: %v vs %v", a.Fill, b.Fill)
	}
}

// TestFoldProducesCorpusRecords: keepers must land in the collector
// with racegen-prefixed unit IDs, ready to AppendTo a store.
func TestFoldProducesCorpusRecords(t *testing.T) {
	res, err := Run(Config{Rounds: 1, Budget: 4, Seeds: 3, BaseSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Collector == nil {
		t.Fatal("no collector")
	}
	if len(res.Keepers) == 0 {
		t.Skip("no keepers at this seed")
	}
	recs := res.Collector.Records()
	if len(recs) == 0 {
		t.Fatal("keepers folded no corpus records")
	}
	for _, rec := range recs {
		if rec.Category == "" {
			t.Errorf("record %q has no category", rec.Key)
		}
	}
}

func TestMarkdownRendersTables(t *testing.T) {
	res := &Result{
		Rounds: []RoundStat{{Round: 1, Candidates: 4, Disagreeing: 2, Kept: 1, NewEdges: 10, TotalEdges: 10}},
		Fill:   map[taxonomy.Category]int{taxonomy.CatMap: 1},
	}
	md := Markdown(res)
	for _, want := range []string{"### racegen rounds", "| 1 | 4 | 2 | 1 | 10 | 10 |", "### category fill", "| map | 1 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}
