// Package stream runs race detection online over unbounded event
// streams under a hard memory ceiling — the deployment shape of the
// paper's always-on production mode, where the monitored service
// outlives any buffer the detector could afford to keep.
//
// Batch detection (internal/core) holds three things whose footprint
// grows with run length: the full recorded trace, the detector's
// shadow memory, and the report set. Streaming replaces the first two
// with bounded structures:
//
//   - the trace is retained as a per-goroutine window of recent events
//     (trace.WindowRecorder), so a race that manifests mid-stream still
//     emits a classify-able report without pinning the whole history;
//   - shadow memory is paged and evictable (detector.Evictor, today
//     fasttrack-paged): past the configured ceiling the
//     least-recently-touched shadow pages are reclaimed. Eviction
//     forgets access history, so races straddling an evicted page are
//     missed — false negatives only, never false positives; the
//     contract is spelled out in docs/STREAMING.md.
//
// An Ingestor wraps one registered detector and consumes the binary
// trace codec ("GRTB", counted or streamed) from any io.Reader,
// folding defects into a corpus.Collector as they manifest. With no
// ceiling the paged detector never evicts and streaming results are
// report-identical to a batch replay of the same events
// (differential_test.go pins this over the progen and dogfood corpora).
package stream

import (
	"context"
	"fmt"
	"io"

	"gorace/internal/corpus"
	"gorace/internal/detector"
	"gorace/internal/report"
	"gorace/internal/trace"
)

// DefaultWindow is the per-goroutine recent-event retention used when
// Config.Window is zero: deep enough to carry the racing accesses'
// surrounding sync context into classification, shallow enough that a
// thousand goroutines retain only a few MiB.
const DefaultWindow = 1024

// shadowFraction is the slice of the memory ceiling granted to shadow
// pages: ceiling/shadowFraction bytes of resident cells. The rest
// covers what paging cannot evict — promoted reader lists, the stack
// depot, per-goroutine windows, and retained reports.
const shadowFraction = 4

// checkEvery is how many events pass between context-cancellation
// checks in the ingest loop.
const checkEvery = 1024

// Config configures an Ingestor.
type Config struct {
	// Detector is the registry name to run ("" selects the default).
	// Under a ceiling the detector must implement detector.Evictor;
	// "" and "fasttrack" are transparently upgraded to
	// "fasttrack-paged", any other non-evictable name is an error.
	Detector string
	// MemCeilingMiB bounds the detector's resident shadow state, in
	// MiB. 0 means unbounded: no eviction, batch-identical reports.
	MemCeilingMiB int
	// Window is the per-goroutine recent-event retention (default
	// DefaultWindow). Negative disables trace retention entirely;
	// defects then classify without trace hints.
	Window int
	// Unit and UnitIdx attribute folded defects within the Collector
	// (Unit defaults to "stream").
	Unit    string
	UnitIdx int
	// Seed is recorded as the defining seed of folded defects; for
	// ingested production streams it is an opaque stream id.
	Seed int64
	// Collector, when set, receives defects online: each first
	// manifestation is folded with the window retained at that
	// moment. The Ingestor does not lock the Collector — callers
	// serialize folds (the service holds its writer lock across
	// Ingest).
	Collector *corpus.Collector
}

// Result summarizes one ingested stream.
type Result struct {
	// Events is the number of events consumed, including any consumed
	// before a mid-stream error.
	Events uint64
	// Races holds every report the detector made, in manifestation
	// order.
	Races []report.Race
	// NewDefects counts defects this stream defined in the Collector
	// (first manifestations; 0 without a Collector).
	NewDefects int
	// Stats is the detector's final work summary; under a ceiling its
	// Evictions and Reloads quantify what bounded memory cost.
	Stats detector.Stats
}

// Ingestor runs one detector over successive event streams. It is not
// concurrency-safe; the service runs one Ingestor per ingest request.
type Ingestor struct {
	cfg     Config
	det     detector.Detector
	detName string
	win     *trace.WindowRecorder
	pages   int
	folded  int // reports already folded into the collector
}

// NewIngestor builds an Ingestor from cfg, resolving the detector
// through the registry and, under a ceiling, sizing its page budget to
// ceiling/4 bytes of resident shadow cells.
func NewIngestor(cfg Config) (*Ingestor, error) {
	name := cfg.Detector
	if cfg.MemCeilingMiB > 0 && (name == "" || name == "fasttrack") {
		name = "fasttrack-paged"
	}
	det, err := detector.New(name)
	if err != nil {
		return nil, err
	}
	if name == "" {
		name = detector.DefaultName
	}
	in := &Ingestor{cfg: cfg, det: det, detName: name}
	if cfg.MemCeilingMiB > 0 {
		ev, ok := det.(detector.Evictor)
		if !ok {
			return nil, fmt.Errorf("stream: detector %q cannot run under a memory ceiling (no paged shadow state); use fasttrack-paged", name)
		}
		in.pages = (cfg.MemCeilingMiB << 20) / shadowFraction / ev.PageBytes()
		if in.pages < 1 {
			in.pages = 1
		}
		ev.SetPageBudget(in.pages)
	}
	switch {
	case cfg.Window > 0:
		in.win = trace.NewWindowRecorder(cfg.Window)
	case cfg.Window == 0:
		in.win = trace.NewWindowRecorder(DefaultWindow)
	}
	return in, nil
}

// Detector exposes the wrapped detector, for stats inspection after
// ingest.
func (in *Ingestor) Detector() detector.Detector { return in.det }

// DetectorName returns the resolved registry name the Ingestor runs
// (after any ceiling-driven upgrade to the paged variant).
func (in *Ingestor) DetectorName() string { return in.detName }

// PageBudget returns the resident shadow-page bound derived from the
// ceiling (0 when unbounded).
func (in *Ingestor) PageBudget() int { return in.pages }

// raceCounter is the O(1) manifestation probe implemented by the
// FastTrack family; detectors without it fold only at stream end.
type raceCounter interface {
	RaceCount() int
}

// Ingest decodes events from r (binary codec, counted or streamed;
// JSON traces also decode) and feeds them through the detector until
// EOF, error, or context cancellation. Races are folded into the
// configured Collector as they manifest, each with the event window
// retained at that moment. The detector's state persists across calls,
// so one Ingestor may consume a stream delivered in several chunks;
// the execution is counted against the Collector once per Ingest.
//
// On a decode error or cancellation the events consumed so far have
// been fully detected and folded; the Result reflects them, alongside
// the error.
func (in *Ingestor) Ingest(ctx context.Context, r io.Reader) (res Result, err error) {
	before := len(in.det.Races())
	// Named returns: the finalizer below must land in the Result the
	// caller sees, on every exit path including mid-stream errors.
	defer func() {
		res.Stats = in.det.Stats()
		res.Races = append(res.Races, in.det.Races()[before:]...)
		if in.cfg.Collector != nil {
			in.cfg.Collector.NoteExecution()
		}
	}()
	dec, err := trace.NewDecoder(r)
	if err != nil {
		return res, err
	}
	counter, fast := in.det.(raceCounter)
	for {
		if res.Events%checkEvery == 0 {
			if err := ctx.Err(); err != nil {
				in.foldNew(&res, len(in.det.Races()))
				return res, err
			}
		}
		ev, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			in.foldNew(&res, len(in.det.Races()))
			return res, err
		}
		if in.win != nil {
			in.win.HandleEvent(ev)
		}
		in.det.HandleEvent(ev)
		res.Events++
		if fast && counter.RaceCount() > in.folded {
			in.foldNew(&res, counter.RaceCount())
		}
	}
	in.foldNew(&res, len(in.det.Races()))
	return res, nil
}

// foldNew folds reports [in.folded, n) into the collector with the
// current window as classification context. The watermark lives on the
// Ingestor so chunked streams never fold the same report twice.
func (in *Ingestor) foldNew(res *Result, n int) {
	if in.cfg.Collector == nil || n <= in.folded {
		in.folded = n
		return
	}
	races := in.det.Races()[in.folded:n]
	var window []trace.Event
	if in.win != nil {
		window = in.win.Events()
	}
	unit := in.cfg.Unit
	if unit == "" {
		unit = "stream"
	}
	res.NewDefects += in.cfg.Collector.FoldRaces(
		in.cfg.UnitIdx, unit, in.detName, in.cfg.Seed, races, window)
	in.folded = n
}
