package stream

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"gorace/internal/report"
	"gorace/internal/stack"
	"gorace/internal/trace"
	"gorace/internal/vclock"
)

// SynthSpec describes a synthetic production-shaped event stream: many
// goroutines sweeping wide, per-goroutine-private address ranges
// (guaranteed race-free noise that churns shadow pages), periodic
// private mutex traffic for sync realism, and Planted unsynchronized
// write pairs at known addresses. The generator is a pure function of
// the spec, so every ceiling in a sweep replays the identical stream.
type SynthSpec struct {
	// Events is the total stream length (default 1 << 20).
	Events int
	// Goroutines is the noise-goroutine count (default 8, min 2 so
	// planted pairs have two distinct writers).
	Goroutines int
	// Addrs is each goroutine's private noise address-space size
	// (default 1 << 16). Larger values touch more shadow pages and
	// evict harder under a ceiling.
	Addrs int
	// Planted is the number of racy write pairs planted at known
	// addresses (default Events/10000, min 1).
	Planted int
	// Gap is the event distance between a planted pair's two accesses
	// (default 512). Under a tight ceiling the noise inside the gap
	// can evict the first access's shadow page — exactly the false
	// negative the ceiling sweep quantifies.
	Gap int
	// Seed drives the noise generator.
	Seed int64
}

// norm returns the spec with defaults applied.
func (s SynthSpec) norm() SynthSpec {
	if s.Events <= 0 {
		s.Events = 1 << 20
	}
	if s.Goroutines < 2 {
		if s.Goroutines == 1 {
			s.Goroutines = 2
		} else if s.Goroutines == 0 {
			s.Goroutines = 8
		}
	}
	if s.Addrs <= 0 {
		s.Addrs = 1 << 16
	}
	if s.Planted <= 0 {
		s.Planted = s.Events / 10000
		if s.Planted < 1 {
			s.Planted = 1
		}
	}
	if s.Gap <= 0 {
		s.Gap = 512
	}
	return s
}

// plantedBase keeps planted addresses disjoint from every goroutine's
// noise partition.
const plantedBase uint64 = 1 << 40

// synthAddr marks a synthetic address stable: production streams carry
// structural-hash identities, not dense allocator indices, and the
// StableBit routes them through the detectors' sparse side index —
// without it a sparse 2⁴⁰-wide address space would force a dense
// shadow slice of the same width.
func synthAddr(a uint64) trace.Addr {
	return trace.Addr(a | trace.StableBit)
}

// PlantedAddr returns the address of planted pair i.
func (s SynthSpec) PlantedAddr(i int) trace.Addr {
	return synthAddr(plantedBase + uint64(i))
}

// DetectedPlanted counts how many distinct planted pairs appear among
// races (matched by address — synthetic stacks are unique per pair, so
// either access identifies it).
func (s SynthSpec) DetectedPlanted(races []report.Race) int {
	s = s.norm()
	seen := make(map[trace.Addr]bool)
	for _, r := range races {
		for _, a := range []trace.Addr{r.First.Addr, r.Second.Addr} {
			raw := uint64(a) &^ trace.StableBit
			if raw >= plantedBase && raw < plantedBase+uint64(s.Planted) {
				seen[a] = true
			}
		}
	}
	return len(seen)
}

// Write streams the synthetic trace to w in the binary codec's
// streamed framing, without materializing it: memory stays O(1) in
// Events, so a 10M-event stream can feed an Ingestor through an
// io.Pipe while the whole process observes the detector's ceiling.
func (s SynthSpec) Write(w io.Writer) error {
	s = s.norm()
	enc := trace.NewEncoder(w)
	rng := rand.New(rand.NewSource(s.Seed))

	// Planted schedule: pair k's first write lands at position firstAt
	// within its stride slot; the second follows Gap events later.
	type plant struct {
		pair  int
		first bool
	}
	at := make(map[int][]plant, 2*s.Planted)
	stride := s.Events / s.Planted
	for k := 0; k < s.Planted; k++ {
		firstAt := k * stride
		secondAt := firstAt + s.Gap
		if secondAt >= s.Events {
			secondAt = s.Events - 1
		}
		at[firstAt] = append(at[firstAt], plant{k, true})
		at[secondAt] = append(at[secondAt], plant{k, false})
	}

	noiseStack := make([]stack.Context, s.Goroutines+1)
	for g := 1; g <= s.Goroutines; g++ {
		noiseStack[g] = stack.NewContext(
			stack.Frame{Func: fmt.Sprintf("synth.worker%d", g), File: "synth.go", Line: g},
			stack.Frame{Func: "synth.main", File: "synth.go", Line: 1},
		)
	}

	seq := uint64(0)
	emit := func(ev trace.Event) error {
		seq++
		ev.Seq = seq
		return enc.Encode(ev)
	}
	for i := 0; i < s.Events; i++ {
		if ps := at[i]; len(ps) > 0 {
			for _, p := range ps {
				g := 1 + p.pair%s.Goroutines
				if !p.first {
					g = 1 + (p.pair+1)%s.Goroutines
				}
				err := emit(trace.Event{
					G: vclock.TID(g), Op: trace.OpWrite,
					Addr: s.PlantedAddr(p.pair),
					Stack: stack.NewContext(
						stack.Frame{Func: fmt.Sprintf("synth.planted%d", p.pair), File: "planted.go", Line: p.pair + 1},
					),
				})
				if err != nil {
					return err
				}
			}
			continue
		}
		g := 1 + rng.Intn(s.Goroutines)
		ev := trace.Event{G: vclock.TID(g), Stack: noiseStack[g]}
		switch roll := rng.Intn(32); {
		case roll == 0:
			ev.Op, ev.Obj, ev.Kind = trace.OpAcquire, trace.ObjID(g), trace.KindMutex
		case roll == 1:
			ev.Op, ev.Obj, ev.Kind = trace.OpRelease, trace.ObjID(g), trace.KindMutex
		case roll < 12:
			ev.Op = trace.OpRead
			ev.Addr = synthAddr(uint64(g)*uint64(s.Addrs) + uint64(rng.Intn(s.Addrs)))
		default:
			ev.Op = trace.OpWrite
			ev.Addr = synthAddr(uint64(g)*uint64(s.Addrs) + uint64(rng.Intn(s.Addrs)))
		}
		if err := emit(ev); err != nil {
			return err
		}
	}
	return enc.Flush()
}

// CeilingResult is one row of a ceiling sweep: what one memory ceiling
// cost in missed planted races, and what the detector's bounded state
// did to stay under it.
type CeilingResult struct {
	CeilingMiB  int     // 0 = unbounded
	Events      uint64  // events ingested
	Planted     int     // racy pairs planted in the stream
	Detected    int     // planted pairs the detector reported
	Evictions   int     // shadow pages reclaimed
	Reloads     int     // evicted pages re-faulted
	PeakHeapMiB float64 // max sampled runtime HeapAlloc during ingest
}

// RunCeilingSweep ingests the same synthetic stream once per ceiling
// and reports detection coverage against the plant list — the
// ceiling-vs-missed-races table published to CI. Ceiling 0 rows run
// unbounded and must detect every plant (the differential baseline).
//
// Ceilinged rows also install a runtime soft memory limit at 3/4 of
// the ceiling for the duration of the run: the detector's page budget
// bounds live shadow state to ceiling/4, and the limit makes the
// collector absorb transient decode garbage instead of letting the
// heap coast past the ceiling between GC cycles — the same pairing a
// production deployment under a hard budget runs with. The limit sits
// below the ceiling because Go's limit is soft: under allocation
// pressure the GC lets the heap overshoot it rather than stall, and
// the 1/4 headroom absorbs that overshoot so the sampled peak stays
// under the ceiling itself. The sweep is therefore process-global and
// not safe to run concurrently with other heap-sensitive work.
func RunCeilingSweep(ctx context.Context, spec SynthSpec, ceilingsMiB []int) ([]CeilingResult, error) {
	spec = spec.norm()
	out := make([]CeilingResult, 0, len(ceilingsMiB))
	for _, ceil := range ceilingsMiB {
		in, err := NewIngestor(Config{MemCeilingMiB: ceil})
		if err != nil {
			return out, err
		}
		pr, pw := io.Pipe()
		go func() { pw.CloseWithError(spec.Write(pw)) }()

		prevLimit := int64(0)
		if ceil > 0 {
			prevLimit = debug.SetMemoryLimit(int64(ceil) << 20 * 3 / 4)
		}
		runtime.GC()
		stop := make(chan struct{})
		peak := make(chan uint64, 1)
		go samplePeakHeap(stop, peak)

		res, err := in.Ingest(ctx, pr)
		close(stop)
		pr.Close()
		if ceil > 0 {
			debug.SetMemoryLimit(prevLimit)
		}
		if err != nil {
			return out, fmt.Errorf("stream: ceiling %d MiB: %w", ceil, err)
		}
		out = append(out, CeilingResult{
			CeilingMiB:  ceil,
			Events:      res.Events,
			Planted:     spec.Planted,
			Detected:    spec.DetectedPlanted(res.Races),
			Evictions:   res.Stats.Evictions,
			Reloads:     res.Stats.Reloads,
			PeakHeapMiB: float64(<-peak) / (1 << 20),
		})
	}
	return out, nil
}

// samplePeakHeap polls runtime HeapAlloc until stop closes, then sends
// the maximum observed. Polling (vs a single end-of-run read) catches
// the transient high-water mark that a post-GC reading would hide.
func samplePeakHeap(stop <-chan struct{}, out chan<- uint64) {
	var ms runtime.MemStats
	max := uint64(0)
	for {
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > max {
			max = ms.HeapAlloc
		}
		select {
		case <-stop:
			out <- max
			return
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// MarkdownTable renders sweep rows as a GitHub-flavored markdown table
// for CI job summaries.
func MarkdownTable(rows []CeilingResult) string {
	var b strings.Builder
	b.WriteString("| ceiling | events | planted | detected | coverage | evictions | reloads | peak heap |\n")
	b.WriteString("|---|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		ceil := "unbounded"
		if r.CeilingMiB > 0 {
			ceil = fmt.Sprintf("%d MiB", r.CeilingMiB)
		}
		cov := 100.0
		if r.Planted > 0 {
			cov = 100 * float64(r.Detected) / float64(r.Planted)
		}
		fmt.Fprintf(&b, "| %s | %d | %d | %d | %.1f%% | %d | %d | %.1f MiB |\n",
			ceil, r.Events, r.Planted, r.Detected, cov, r.Evictions, r.Reloads, r.PeakHeapMiB)
	}
	return b.String()
}
