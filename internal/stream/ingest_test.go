package stream

import (
	"bytes"
	"context"
	"io"
	"strings"
	"testing"

	"gorace/internal/corpus"
	"gorace/internal/trace"
)

// synthBytes renders spec once; tests reuse the buffer across ingests
// so every configuration sees the identical stream.
func synthBytes(t *testing.T, spec SynthSpec) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := spec.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestIngestUnboundedDetectsAllPlanted: with no ceiling, every planted
// pair must be reported — the synthetic stream's ground truth is
// exact, so anything less is a detector bug, not an eviction loss.
func TestIngestUnboundedDetectsAllPlanted(t *testing.T) {
	spec := SynthSpec{Events: 200000, Planted: 25, Seed: 1}.norm()
	data := synthBytes(t, spec)
	in, err := NewIngestor(Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Ingest(context.Background(), bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got := spec.DetectedPlanted(res.Races); got != spec.Planted {
		t.Fatalf("unbounded ingest detected %d of %d planted races", got, spec.Planted)
	}
	if res.Stats.Evictions != 0 {
		t.Fatalf("unbounded ingest evicted %d pages", res.Stats.Evictions)
	}
	if res.Events != uint64(spec.Events) {
		t.Fatalf("ingested %d events, stream has %d", res.Events, spec.Events)
	}
}

// TestIngestCeilingEvictsAndStaysSubset: a tight ceiling must actually
// evict, hold the page budget, and lose races only — every report the
// ceilinged run makes, the unbounded run also makes.
func TestIngestCeilingEvictsAndStaysSubset(t *testing.T) {
	spec := SynthSpec{Events: 200000, Planted: 25, Seed: 1}.norm()
	data := synthBytes(t, spec)

	full, err := NewIngestor(Config{})
	if err != nil {
		t.Fatal(err)
	}
	fullRes, err := full.Ingest(context.Background(), bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}

	in, err := NewIngestor(Config{MemCeilingMiB: 1})
	if err != nil {
		t.Fatal(err)
	}
	if in.DetectorName() != "fasttrack-paged" {
		t.Fatalf("ceilinged ingestor resolved %q, want the paged detector", in.DetectorName())
	}
	if in.PageBudget() < 1 {
		t.Fatalf("page budget %d", in.PageBudget())
	}
	res, err := in.Ingest(context.Background(), bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Evictions == 0 {
		t.Fatal("1 MiB ceiling over a wide synthetic stream never evicted")
	}
	fullSet := make(map[string]bool)
	for _, h := range raceHashes(fullRes.Races) {
		fullSet[h] = true
	}
	for _, h := range raceHashes(res.Races) {
		if !fullSet[h] {
			t.Fatalf("ceilinged ingest reported race %s the unbounded run did not", h)
		}
	}
	t.Logf("ceiling 1 MiB: detected %d/%d planted, evictions=%d reloads=%d",
		spec.DetectedPlanted(res.Races), spec.Planted, res.Stats.Evictions, res.Stats.Reloads)
}

// TestIngestFoldsIntoCollector: races fold online with window context,
// first manifestations define defects, and a second identical stream
// adds occurrence counts but no new defects.
func TestIngestFoldsIntoCollector(t *testing.T) {
	spec := SynthSpec{Events: 50000, Planted: 5, Seed: 3}.norm()
	data := synthBytes(t, spec)
	coll := corpus.NewCollector("stream-test")

	first, err := NewIngestor(Config{Unit: "svc/ingest", Collector: coll, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := first.Ingest(context.Background(), bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if res.NewDefects == 0 || res.NewDefects != coll.Defects() {
		t.Fatalf("first stream defined %d defects, collector has %d", res.NewDefects, coll.Defects())
	}
	if coll.Executions() != 1 {
		t.Fatalf("executions = %d, want 1", coll.Executions())
	}

	second, err := NewIngestor(Config{Unit: "svc/ingest", Collector: coll, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := second.Ingest(context.Background(), bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if res2.NewDefects != 0 {
		t.Fatalf("identical second stream defined %d new defects", res2.NewDefects)
	}
	if coll.Executions() != 2 {
		t.Fatalf("executions = %d, want 2", coll.Executions())
	}

	recs := coll.Records()
	if len(recs) == 0 {
		t.Fatal("no records collected")
	}
	for _, rec := range recs {
		if rec.Unit != "svc/ingest" || !strings.HasPrefix(rec.Key, "svc/ingest/") {
			t.Fatalf("record attribution wrong: %+v", rec)
		}
		if rec.Detector != "fasttrack" {
			t.Fatalf("record detector %q, want registry name fasttrack", rec.Detector)
		}
		if rec.Count < 2 {
			t.Fatalf("second stream did not raise occurrence count: %+v", rec)
		}
	}
}

// TestIngestChunkedStreams: one Ingestor fed a stream split across two
// Ingest calls keeps detector state across the boundary (races whose
// accesses straddle the cut still manifest), never re-reports chunk-1
// races in chunk 2's Result, and folds each defect once.
func TestIngestChunkedStreams(t *testing.T) {
	spec := SynthSpec{Events: 50000, Planted: 5, Seed: 3}.norm()
	data := synthBytes(t, spec)

	// Re-encode the stream as two independent chunks split mid-stream.
	dec, err := trace.NewDecoder(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	var events []trace.Event
	for {
		ev, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	encodeChunk := func(evs []trace.Event) []byte {
		var buf bytes.Buffer
		enc := trace.NewEncoder(&buf)
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				t.Fatal(err)
			}
		}
		if err := enc.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cut := len(events) / 2
	chunk1, chunk2 := encodeChunk(events[:cut]), encodeChunk(events[cut:])

	coll := corpus.NewCollector("chunked")
	in, err := NewIngestor(Config{Collector: coll})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := in.Ingest(context.Background(), bytes.NewReader(chunk1))
	if err != nil {
		t.Fatal(err)
	}
	res2, err := in.Ingest(context.Background(), bytes.NewReader(chunk2))
	if err != nil {
		t.Fatal(err)
	}
	if res1.Events+res2.Events != uint64(len(events)) {
		t.Fatalf("chunks consumed %d+%d events, stream has %d", res1.Events, res2.Events, len(events))
	}

	// The combined report sequence equals a single-shot ingest.
	single, err := NewIngestor(Config{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := single.Ingest(context.Background(), bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	got := append(raceHashes(res1.Races), raceHashes(res2.Races)...)
	if len(got) != len(want.Races) {
		t.Fatalf("chunked ingest reported %d races, single-shot %d", len(got), len(want.Races))
	}
	for i, h := range raceHashes(want.Races) {
		if got[i] != h {
			t.Fatalf("report %d diverged across the chunk boundary", i)
		}
	}
	if res1.NewDefects+res2.NewDefects != coll.Defects() {
		t.Fatalf("chunked folds defined %d+%d defects, collector has %d",
			res1.NewDefects, res2.NewDefects, coll.Defects())
	}
}

// TestIngestRejectsNonEvictableUnderCeiling: a detector without paged
// shadow state cannot promise a ceiling; configuration must fail
// loudly rather than silently run unbounded.
func TestIngestRejectsNonEvictableUnderCeiling(t *testing.T) {
	_, err := NewIngestor(Config{Detector: "eraser", MemCeilingMiB: 64})
	if err == nil || !strings.Contains(err.Error(), "eraser") {
		t.Fatalf("err = %v, want non-evictable rejection naming the detector", err)
	}
	if _, err := NewIngestor(Config{Detector: "eraser"}); err != nil {
		t.Fatalf("eraser without a ceiling must work: %v", err)
	}
}

// TestIngestCancellation: cancelling mid-stream stops the ingest
// within one check interval and reports the partial progress.
func TestIngestCancellation(t *testing.T) {
	spec := SynthSpec{Events: 500000, Planted: 1, Seed: 5}
	pr, pw := io.Pipe()
	go func() { pw.CloseWithError(spec.Write(pw)) }()
	defer pr.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in, err := NewIngestor(Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Ingest(ctx, pr)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Events >= uint64(spec.norm().Events) {
		t.Fatalf("cancelled ingest consumed the whole stream (%d events)", res.Events)
	}
}

// TestIngestTruncatedStreamKeepsProgress: a stream that dies mid-event
// surfaces the decode error and the events before the cut are fully
// detected.
func TestIngestTruncatedStreamKeepsProgress(t *testing.T) {
	spec := SynthSpec{Events: 20000, Planted: 3, Seed: 9}.norm()
	data := synthBytes(t, spec)
	in, err := NewIngestor(Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Ingest(context.Background(), bytes.NewReader(data[:len(data)*2/3]))
	if err == nil {
		t.Fatal("truncated stream ingested without error")
	}
	if res.Events == 0 {
		t.Fatal("no progress before the truncation point")
	}
	if res.Events != uint64(res.Stats.Events) {
		t.Fatalf("result says %d events, detector saw %d", res.Events, res.Stats.Events)
	}
}

// TestRunCeilingSweep exercises the CI-table path end to end on a
// small stream: unbounded detects everything, a starved ceiling
// evicts, and the markdown render carries one row per ceiling.
func TestRunCeilingSweep(t *testing.T) {
	spec := SynthSpec{Events: 100000, Planted: 10, Seed: 2}
	rows, err := RunCeilingSweep(context.Background(), spec, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	if rows[0].Detected != rows[0].Planted {
		t.Fatalf("unbounded row missed planted races: %+v", rows[0])
	}
	if rows[1].Evictions == 0 {
		t.Fatalf("1 MiB row never evicted: %+v", rows[1])
	}
	md := MarkdownTable(rows)
	if !strings.Contains(md, "unbounded") || !strings.Contains(md, "1 MiB") {
		t.Fatalf("markdown table incomplete:\n%s", md)
	}
}
