package stream

import (
	"bytes"
	"context"
	"testing"

	"gorace/internal/detector"
	"gorace/internal/instrument"
	"gorace/internal/progen"
	_ "gorace/internal/progs" // registers the instrumented dogfood programs
	"gorace/internal/report"
	"gorace/internal/sched"
	"gorace/internal/trace"
)

func raceHashes(races []report.Race) []string {
	out := make([]string, len(races))
	for i, r := range races {
		out[i] = r.Hash()
	}
	return out
}

// streamDiff runs prog once with a batch detector and a recorder
// attached, replays the recorded trace through the binary codec into
// an unbounded Ingestor, and requires the ordered report-hash
// sequences to be identical — streaming with no ceiling is batch
// detection, observed later.
func streamDiff(t *testing.T, name string, prog func(*sched.G), seed int64) {
	t.Helper()
	batch := detector.NewFastTrack()
	rec := &trace.Recorder{}
	sched.Run(prog, sched.Options{
		Strategy: sched.NewRandom(), Seed: seed, MaxSteps: 1 << 18,
		Listeners: []trace.Listener{batch, rec},
	})

	var buf bytes.Buffer
	enc := trace.NewEncoder(&buf)
	for _, ev := range rec.Events {
		if err := enc.Encode(ev); err != nil {
			t.Fatalf("%s seed %d: encode: %v", name, seed, err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatalf("%s seed %d: flush: %v", name, seed, err)
	}

	in, err := NewIngestor(Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := in.Ingest(context.Background(), &buf)
	if err != nil {
		t.Fatalf("%s seed %d: ingest: %v", name, seed, err)
	}
	if res.Events != uint64(len(rec.Events)) {
		t.Fatalf("%s seed %d: ingested %d of %d events", name, seed, res.Events, len(rec.Events))
	}
	got, want := raceHashes(res.Races), raceHashes(batch.Races())
	if len(got) != len(want) {
		t.Fatalf("%s seed %d: streaming reported %d races, batch %d", name, seed, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s seed %d: report %d diverged:\nstream %s\nbatch  %s",
				name, seed, i, got[i], want[i])
		}
	}
	if res.Stats.Evictions != 0 || res.Stats.Reloads != 0 {
		t.Fatalf("%s seed %d: unbounded ingest evicted (evictions=%d reloads=%d)",
			name, seed, res.Stats.Evictions, res.Stats.Reloads)
	}
}

// TestStreamingMatchesBatchOnProgen pins the unbounded-streaming
// identity over 60 generated programs.
func TestStreamingMatchesBatchOnProgen(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		prog := progen.Generate(seed, progen.Params{})
		streamDiff(t, "progen", prog.Main(), seed)
	}
}

// TestStreamingMatchesBatchOnPrograms pins the identity over every
// registered instrumented dogfood program, racy and fixed variants.
func TestStreamingMatchesBatchOnPrograms(t *testing.T) {
	progs := instrument.Programs()
	if len(progs) == 0 {
		t.Fatal("no instrumented programs registered")
	}
	for _, p := range progs {
		for seed := int64(0); seed < 3; seed++ {
			streamDiff(t, "prog:"+p.Name, p.Racy, seed)
			if p.Fixed != nil {
				streamDiff(t, "prog:"+p.Name+"/fixed", p.Fixed, seed)
			}
		}
	}
}
