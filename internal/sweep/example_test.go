package sweep_test

import (
	"fmt"

	"gorace/internal/patterns"
	"gorace/internal/sweep"
)

// ExampleEngine_Run executes a small campaign — one corpus pattern,
// racy and fixed variants, swept over 20 seeds each — and reads the
// per-unit detection probabilities off the Prob aggregator. Campaign
// results are deterministic at any parallelism, which is why the
// printed counts are stable enough to be an Example.
func ExampleEngine_Run() {
	p, _ := patterns.ByID("capture-loop-index")
	units := []sweep.Unit{
		{ID: "loop/racy", Program: p.Racy, Strategy: "random", Runs: 20, MaxSteps: 1 << 16},
		{ID: "loop/fixed", Program: p.Fixed, Strategy: "random", Runs: 20, MaxSteps: 1 << 16},
	}

	engine := sweep.New(sweep.WithParallelism(4))
	aggs, stats, err := engine.Run(units,
		func() sweep.Aggregator { return sweep.NewProb() },
		func() sweep.Aggregator { return sweep.NewCorpus() },
	)
	if err != nil {
		panic(err)
	}

	for _, s := range aggs[0].(*sweep.Prob).Stats() {
		fmt.Printf("%s: detected in %d/%d runs\n", s.Unit, s.Detected, s.Runs)
	}
	corpus := aggs[1].(*sweep.Corpus)
	fmt.Printf("campaign: %d executions, %d deduplicated defect(s)\n",
		stats.Runs, len(corpus.Detections()))
	// Output:
	// loop/racy: detected in 20/20 runs
	// loop/fixed: detected in 0/20 runs
	// campaign: 40 executions, 1 deduplicated defect(s)
}
