package sweep

import (
	"gorace/internal/classify"
	"gorace/internal/core"
	"gorace/internal/report"
	"gorace/internal/taxonomy"
	"gorace/internal/trace"
)

// This file holds the standard streaming aggregators. All of them key
// their state by unit index, so Merge — always called in shard order,
// with later shards on the right — reduces to an order-preserving
// per-unit fold. Campaigns that should outlive the process use
// corpus.Collector instead, the same shape folded into a persistent
// store.

// UnitStat is one unit's detection-probability estimate, the
// aggregate behind explore.Probe and the §3.2 flakiness argument.
type UnitStat struct {
	Unit       string // Unit.ID
	Detector   string // resolved detector name, from the first outcome
	Strategy   string // resolved strategy name, from the first outcome
	Runs       int    // executions observed
	Detected   int    // executions with at least one race
	Races      int    // total race reports
	LeakedRuns int    // executions that ended with blocked goroutines
}

// Probability returns the manifestation-probability estimate.
func (s UnitStat) Probability() float64 {
	if s.Runs == 0 {
		return 0
	}
	return float64(s.Detected) / float64(s.Runs)
}

// Prob estimates per-unit detection probability.
type Prob struct {
	stats []*UnitStat // indexed by UnitIdx
}

// NewProb returns an empty Prob aggregator (use as a Factory:
// func() Aggregator { return NewProb() }).
func NewProb() *Prob { return &Prob{} }

func (p *Prob) unit(idx int) *UnitStat {
	for len(p.stats) <= idx {
		p.stats = append(p.stats, nil)
	}
	if p.stats[idx] == nil {
		p.stats[idx] = &UnitStat{}
	}
	return p.stats[idx]
}

// Observe implements Aggregator.
func (p *Prob) Observe(r Run) {
	s := p.unit(r.UnitIdx)
	s.Unit = r.Unit.ID
	s.Detector = r.Outcome.Detector
	s.Strategy = r.Outcome.Strategy
	s.Runs++
	if r.Outcome.HasRace() {
		s.Detected++
	}
	s.Races += len(r.Outcome.Races)
	if r.Outcome.Result.Deadlocked() {
		s.LeakedRuns++
	}
}

// Merge implements Aggregator.
func (p *Prob) Merge(next Aggregator) {
	for idx, o := range next.(*Prob).stats {
		if o == nil {
			continue
		}
		s := p.unit(idx)
		s.Unit, s.Detector, s.Strategy = o.Unit, o.Detector, o.Strategy
		s.Runs += o.Runs
		s.Detected += o.Detected
		s.Races += o.Races
		s.LeakedRuns += o.LeakedRuns
	}
}

// Stats returns the per-unit estimates in unit order (units that
// executed no runs are skipped).
func (p *Prob) Stats() []UnitStat {
	out := make([]UnitStat, 0, len(p.stats))
	for _, s := range p.stats {
		if s != nil {
			out = append(out, *s)
		}
	}
	return out
}

// Detection is one deduplicated race in a campaign corpus.
type Detection struct {
	Unit    string // Unit.ID
	UnitIdx int
	Seed    int64 // seed of the run that first produced the report
	Race    report.Race
}

// Hash returns the unit-scoped dedup hash: the same corpus pattern
// embedded at two sites is two distinct defects, as two real code
// sites would be.
func (d Detection) Hash() string { return d.Unit + "/" + d.Race.Hash() }

// Corpus accumulates the campaign-wide race corpus, deduplicated per
// unit with the §3.3.1 hash via report.Deduper — the fleet-scale
// "file each defect once" pipeline.
type Corpus struct {
	units []*unitCorpus // indexed by UnitIdx
	seen  int           // race reports observed before dedup
}

type unitCorpus struct {
	dedup *report.Deduper
	dets  []Detection
}

// NewCorpus returns an empty Corpus aggregator.
func NewCorpus() *Corpus { return &Corpus{} }

func (c *Corpus) unit(idx int) *unitCorpus {
	for len(c.units) <= idx {
		c.units = append(c.units, nil)
	}
	if c.units[idx] == nil {
		c.units[idx] = &unitCorpus{dedup: report.NewDeduper()}
	}
	return c.units[idx]
}

func (uc *unitCorpus) add(d Detection) {
	if uc.dedup.Add(d.Race) {
		uc.dets = append(uc.dets, d)
	}
}

// Observe implements Aggregator.
func (c *Corpus) Observe(r Run) {
	races := r.Outcome.Races
	c.seen += len(races)
	if len(races) == 0 {
		return
	}
	uc := c.unit(r.UnitIdx)
	for _, race := range report.UniqueByHash(races) {
		uc.add(Detection{Unit: r.Unit.ID, UnitIdx: r.UnitIdx, Seed: r.Seed, Race: race})
	}
}

// Merge implements Aggregator.
func (c *Corpus) Merge(next Aggregator) {
	o := next.(*Corpus)
	c.seen += o.seen
	for idx, ouc := range o.units {
		if ouc == nil {
			continue
		}
		uc := c.unit(idx)
		for _, d := range ouc.dets {
			uc.add(d)
		}
	}
}

// Detections returns the deduplicated corpus in canonical order: by
// unit, then by first manifestation within the unit.
func (c *Corpus) Detections() []Detection {
	var out []Detection
	for _, uc := range c.units {
		if uc != nil {
			out = append(out, uc.dets...)
		}
	}
	return out
}

// Seen returns the number of race reports observed before
// deduplication.
func (c *Corpus) Seen() int { return c.seen }

// FirstRace keeps, per unit, the outcome of the earliest run (in seed
// order) that detected a race — the primitive behind "run until the
// race manifests" seed searches. Pair with Unit.HaltOnRace to stop a
// unit as soon as its hit is found. Retained outcomes keep their
// traces (when the unit records); campaigns that only need a derived
// value should compute it in Observe instead, like Tally does.
type FirstRace struct {
	first Earliest[*core.Outcome]
}

// NewFirstRace returns an empty FirstRace aggregator.
func NewFirstRace() *FirstRace { return &FirstRace{} }

// Observe implements Aggregator.
func (f *FirstRace) Observe(r Run) {
	if r.Outcome.HasRace() {
		f.first.Take(r.UnitIdx, r.SeedIdx, r.Outcome)
	}
}

// Merge implements Aggregator.
func (f *FirstRace) Merge(next Aggregator) {
	f.first.MergeFrom(&next.(*FirstRace).first)
}

// Outcome returns the first racy outcome of the given unit, or
// (nil, false) if the unit's race never manifested.
func (f *FirstRace) Outcome(unitIdx int) (*core.Outcome, bool) {
	return f.first.Get(unitIdx)
}

// Tally classifies each unit's first manifesting race with
// internal/classify and tallies primary categories — the streaming
// form of the study's root-cause breakdown. Classification happens in
// Observe, while the run's trace (the classifier's hint source, when
// the unit records) is still on the worker; only the label and the
// defining report survive, so a campaign never retains outcomes.
type Tally struct {
	first Earliest[tallied]
}

type tallied struct {
	cat  taxonomy.Category
	race report.Race // the classified (defining) report
}

// NewTally returns an empty Tally aggregator.
func NewTally() *Tally { return &Tally{} }

// Observe implements Aggregator.
func (t *Tally) Observe(r Run) {
	out := r.Outcome
	if len(out.Races) == 0 {
		// Includes counting-only detectors, which synthesize no
		// access pair to classify.
		return
	}
	if !t.first.Wants(r.UnitIdx, r.SeedIdx) {
		return
	}
	var events []trace.Event
	if out.Trace != nil {
		events = out.Trace.Events
	}
	hints := classify.HintsFromTrace(events)
	t.first.Take(r.UnitIdx, r.SeedIdx, tallied{
		cat:  classify.Primary(out.Races[0], hints),
		race: out.Races[0],
	})
}

// Merge implements Aggregator.
func (t *Tally) Merge(next Aggregator) {
	t.first.MergeFrom(&next.(*Tally).first)
}

// Counts returns the per-category tallies over units whose defining
// report passes keep (nil keeps everything — pass a suppression
// filter to keep tallies consistent with a suppressed corpus).
func (t *Tally) Counts(keep func(report.Race) bool) map[taxonomy.Category]int {
	counts := make(map[taxonomy.Category]int)
	t.first.Each(func(_ int, u tallied) {
		if keep == nil || keep(u.race) {
			counts[u.cat]++
		}
	})
	return counts
}

// UnitWork is one unit's accumulated detector work, the overhead side
// of the detection-probability-vs-overhead tradeoff a sample-rate
// sweep measures. All counters are sums over the unit's runs, taken
// from each Outcome's detector.Stats.
type UnitWork struct {
	Unit       string // Unit.ID
	Detector   string // resolved detector name, from the first outcome
	SampleRate int    // the unit's sampling rate (0/1 = unsampled)
	Runs       int    // executions observed
	Detected   int    // executions with at least one race
	Events     int    // events consumed (full stream, pre-gate)
	Accesses   int    // memory accesses in the stream
	Checked    int    // accesses the detector actually inspected
	Skipped    int    // accesses the sampling gate dropped
	Promotions int    // epoch→VC shadow promotions inside the detector
	Demotions  int    // VC→epoch demotions
	FastReads  int    // reads absorbed on the epoch fast path
}

// Probability returns the unit's detection-probability estimate.
func (w UnitWork) Probability() float64 {
	if w.Runs == 0 {
		return 0
	}
	return float64(w.Detected) / float64(w.Runs)
}

// CheckedFraction returns the fraction of accesses inspected — the
// direct overhead proxy a sampling rate buys down.
func (w UnitWork) CheckedFraction() float64 {
	if w.Accesses == 0 {
		return 0
	}
	return float64(w.Checked) / float64(w.Accesses)
}

// Overhead accumulates per-unit detector work counters. Paired with
// Prob over rate-expanded units it yields the campaign's
// P(detect)-vs-overhead table (see cmd/racedetect -sweep-rates).
type Overhead struct {
	units []*UnitWork // indexed by UnitIdx
}

// NewOverhead returns an empty Overhead aggregator.
func NewOverhead() *Overhead { return &Overhead{} }

func (o *Overhead) unit(idx int) *UnitWork {
	for len(o.units) <= idx {
		o.units = append(o.units, nil)
	}
	if o.units[idx] == nil {
		o.units[idx] = &UnitWork{}
	}
	return o.units[idx]
}

// Observe implements Aggregator.
func (o *Overhead) Observe(r Run) {
	w := o.unit(r.UnitIdx)
	w.Unit = r.Unit.ID
	w.Detector = r.Outcome.Detector
	w.SampleRate = r.Unit.SampleRate
	w.Runs++
	if r.Outcome.HasRace() {
		w.Detected++
	}
	st := r.Outcome.Stats
	w.Events += st.Events
	w.Accesses += st.Accesses
	w.Checked += st.CheckedAccesses
	w.Skipped += st.SkippedAccesses
	w.Promotions += st.Promotions
	w.Demotions += st.Demotions
	w.FastReads += st.FastPathReads
}

// Merge implements Aggregator.
func (o *Overhead) Merge(next Aggregator) {
	for idx, ow := range next.(*Overhead).units {
		if ow == nil {
			continue
		}
		w := o.unit(idx)
		w.Unit, w.Detector, w.SampleRate = ow.Unit, ow.Detector, ow.SampleRate
		w.Runs += ow.Runs
		w.Detected += ow.Detected
		w.Events += ow.Events
		w.Accesses += ow.Accesses
		w.Checked += ow.Checked
		w.Skipped += ow.Skipped
		w.Promotions += ow.Promotions
		w.Demotions += ow.Demotions
		w.FastReads += ow.FastReads
	}
}

// Work returns the per-unit work counters in unit order (units that
// executed no runs are skipped).
func (o *Overhead) Work() []UnitWork {
	out := make([]UnitWork, 0, len(o.units))
	for _, w := range o.units {
		if w != nil {
			out = append(out, *w)
		}
	}
	return out
}
