package sweep

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"gorace/internal/patterns"
	"gorace/internal/sched"
	"gorace/internal/vclock"
)

func pat(t testing.TB, id string) patterns.Pattern {
	t.Helper()
	p, ok := patterns.ByID(id)
	if !ok {
		t.Fatalf("pattern %s missing", id)
	}
	return p
}

func campaignUnits(t testing.TB) []Unit {
	racy := pat(t, "capture-loop-index")
	fixed := pat(t, "capture-loop-index")
	return []Unit{
		{ID: "racy/random", Program: racy.Racy, Strategy: "random", Runs: 40, MaxSteps: 1 << 16},
		{ID: "fixed/random", Program: fixed.Fixed, Strategy: "random", Runs: 40, MaxSteps: 1 << 16},
		{ID: "racy/pct", Program: racy.Racy, Strategy: "pct", Runs: 40, BaseSeed: 7, MaxSteps: 1 << 16},
	}
}

// fingerprint renders every aggregate detail that must be reproducible.
func fingerprint(t testing.TB, aggs []Aggregator, stats Stats) string {
	t.Helper()
	var b strings.Builder
	// Shards is how the campaign was cut, not a result; everything
	// else must be identical at any parallelism and shard size.
	fmt.Fprintf(&b, "units=%d runs=%d racy=%d\n", stats.Units, stats.Runs, stats.Racy)
	for _, s := range aggs[0].(*Prob).Stats() {
		fmt.Fprintf(&b, "prob %s %s %s %d %d %d %d\n",
			s.Unit, s.Detector, s.Strategy, s.Runs, s.Detected, s.Races, s.LeakedRuns)
	}
	c := aggs[1].(*Corpus)
	fmt.Fprintf(&b, "corpus seen=%d\n", c.Seen())
	for _, d := range c.Detections() {
		fmt.Fprintf(&b, "det %s seed=%d %s\n", d.Unit, d.Seed, d.Hash())
	}
	return b.String()
}

func runCampaign(t testing.TB, opts ...Option) string {
	t.Helper()
	aggs, stats, err := New(opts...).Run(campaignUnits(t),
		func() Aggregator { return NewProb() },
		func() Aggregator { return NewCorpus() },
	)
	if err != nil {
		t.Fatal(err)
	}
	return fingerprint(t, aggs, stats)
}

// TestDeterministicAcrossParallelismAndSharding is the engine's core
// contract: identical campaign results no matter how shards are cut
// or how many workers interleave.
func TestDeterministicAcrossParallelismAndSharding(t *testing.T) {
	want := runCampaign(t, WithParallelism(1), WithShardRuns(1000))
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"serial-tiny-shards", []Option{WithParallelism(1), WithShardRuns(1)}},
		{"parallel-4", []Option{WithParallelism(4)}},
		{"parallel-8-tiny-shards", []Option{WithParallelism(8), WithShardRuns(2)}},
		{"parallel-3-odd-shards", []Option{WithParallelism(3), WithShardRuns(7)}},
	} {
		if got := runCampaign(t, tc.opts...); got != want {
			t.Errorf("%s: campaign diverged:\n--- want\n%s--- got\n%s", tc.name, want, got)
		}
	}
}

func TestProbEstimates(t *testing.T) {
	aggs, stats, err := New(WithParallelism(4)).Run(campaignUnits(t),
		func() Aggregator { return NewProb() })
	if err != nil {
		t.Fatal(err)
	}
	ps := aggs[0].(*Prob).Stats()
	if len(ps) != 3 {
		t.Fatalf("%d unit stats, want 3", len(ps))
	}
	if ps[0].Unit != "racy/random" || ps[0].Strategy != "random" || ps[0].Detector == "" {
		t.Fatalf("unit 0 misattributed: %+v", ps[0])
	}
	if ps[0].Detected == 0 || ps[0].Probability() <= 0 {
		t.Fatal("racy unit never detected")
	}
	if ps[1].Detected != 0 || ps[1].Races != 0 {
		t.Fatalf("fixed unit detected races: %+v", ps[1])
	}
	if stats.Runs != 120 {
		t.Fatalf("runs = %d, want 120", stats.Runs)
	}
}

func TestCorpusDeduplicates(t *testing.T) {
	// The same racy program in two units must file one defect per
	// unit (unit-scoped hashes), however many runs manifest it.
	racy := pat(t, "capture-loop-index")
	units := []Unit{
		{ID: "svc-a/test", Program: racy.Racy, Runs: 30, MaxSteps: 1 << 16},
		{ID: "svc-b/test", Program: racy.Racy, Runs: 30, MaxSteps: 1 << 16},
	}
	aggs, _, err := New(WithParallelism(4), WithShardRuns(5)).Run(units,
		func() Aggregator { return NewCorpus() })
	if err != nil {
		t.Fatal(err)
	}
	c := aggs[0].(*Corpus)
	dets := c.Detections()
	if len(dets) != 2 {
		t.Fatalf("%d detections, want 2 (one per unit): %+v", len(dets), dets)
	}
	if dets[0].Unit != "svc-a/test" || dets[1].Unit != "svc-b/test" {
		t.Fatalf("detections out of unit order: %+v", dets)
	}
	if dets[0].Hash() == dets[1].Hash() {
		t.Fatal("unit scoping lost: identical hashes across units")
	}
	if c.Seen() <= 2 {
		t.Fatalf("seen = %d; expected many raw reports before dedup", c.Seen())
	}
}

func TestFirstRaceAndHaltOnRace(t *testing.T) {
	racy := pat(t, "capture-loop-index")
	units := []Unit{{
		ID: "hunt", Program: racy.Racy, Runs: 60, MaxSteps: 1 << 16,
		Record: true, HaltOnRace: true,
	}}
	aggs, stats, err := New(WithParallelism(4)).Run(units,
		func() Aggregator { return NewFirstRace() })
	if err != nil {
		t.Fatal(err)
	}
	fr := aggs[0].(*FirstRace)
	out, ok := fr.Outcome(0)
	if !ok {
		t.Fatal("race never manifested across 60 seeds")
	}
	if !out.HasRace() || out.Trace == nil {
		t.Fatalf("first racy outcome incomplete: races=%d trace=%v", len(out.Races), out.Trace != nil)
	}
	// HaltOnRace must have stopped the unit at its first hit: the
	// number of runs equals the winning seed's index + 1.
	wantRuns := int(out.Seed) + 1
	if stats.Runs != wantRuns {
		t.Fatalf("halt-on-race ran %d seeds; first hit at seed %d", stats.Runs, out.Seed)
	}
	if _, ok := fr.Outcome(1); ok {
		t.Fatal("phantom unit outcome")
	}
}

// TestWindowUnitBoundsRetainedTrace pins the Window unit mode: a
// windowed unit's outcome trace holds at most Window events per
// goroutine, yet a manifested race still arrives with enough recent
// context to be retained at all — bounded retention, not no retention.
func TestWindowUnitBoundsRetainedTrace(t *testing.T) {
	racy := pat(t, "capture-loop-index")
	units := []Unit{{
		ID: "windowed", Program: racy.Racy, Runs: 60, MaxSteps: 1 << 16,
		Window: 4, HaltOnRace: true,
	}}
	aggs, _, err := New(WithParallelism(2)).Run(units,
		func() Aggregator { return NewFirstRace() })
	if err != nil {
		t.Fatal(err)
	}
	out, ok := aggs[0].(*FirstRace).Outcome(0)
	if !ok {
		t.Fatal("race never manifested across 60 seeds")
	}
	if !out.HasRace() || out.Trace == nil {
		t.Fatalf("windowed racy outcome incomplete: races=%d trace=%v", len(out.Races), out.Trace != nil)
	}
	perG := make(map[vclock.TID]int)
	for _, ev := range out.Trace.Events {
		perG[ev.G]++
	}
	for g, n := range perG {
		if n > 4 {
			t.Fatalf("goroutine %d retained %d events, window is 4", g, n)
		}
	}
	if len(out.Trace.Events) == 0 {
		t.Fatal("window retained nothing")
	}
}

func TestStrategyFactoryUnits(t *testing.T) {
	racy := pat(t, "capture-loop-index")
	invocations := 0
	units := []Unit{{
		ID:              "factory",
		Program:         racy.Racy,
		StrategyFactory: func() sched.Strategy { invocations++; return sched.NewRandom() },
		Runs:            10, MaxSteps: 1 << 16,
	}}
	_, stats, err := New(WithParallelism(1)).Run(units,
		func() Aggregator { return NewProb() })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runs != 10 || invocations != 10 {
		t.Fatalf("runs=%d factory invocations=%d, want 10/10", stats.Runs, invocations)
	}
}

func TestUnknownDetectorFailsCampaign(t *testing.T) {
	racy := pat(t, "capture-loop-index")
	units := []Unit{{ID: "bad", Program: racy.Racy, Detector: "no-such", Runs: 5}}
	_, _, err := New().Run(units, func() Aggregator { return NewProb() })
	if err == nil || !strings.Contains(err.Error(), "no-such") {
		t.Fatalf("err = %v", err)
	}
}

func TestEmptyCampaign(t *testing.T) {
	aggs, stats, err := New().Run(nil, func() Aggregator { return NewProb() })
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runs != 0 || len(aggs[0].(*Prob).Stats()) != 0 {
		t.Fatal("phantom results from empty campaign")
	}
}

func TestTallyClassifies(t *testing.T) {
	units := []Unit{
		{ID: "a", Program: pat(t, "capture-loop-index").Racy, Runs: 40, Record: true, HaltOnRace: true, MaxSteps: 1 << 16},
		{ID: "b", Program: pat(t, "partial-locking").Racy, Runs: 40, Record: true, HaltOnRace: true, MaxSteps: 1 << 16},
	}
	aggs, _, err := New(WithParallelism(2)).Run(units, func() Aggregator { return NewTally() })
	if err != nil {
		t.Fatal(err)
	}
	counts := aggs[0].(*Tally).Counts(nil)
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 2 {
		t.Fatalf("classified %d units, want 2 (%v)", total, counts)
	}
}

// TestRunContextProgressIsDeterministic pins the progress contract:
// shard-ordered callbacks produce one fixed sequence no matter how
// many workers interleave.
func TestRunContextProgressIsDeterministic(t *testing.T) {
	seq := func(parallelism int) string {
		var b strings.Builder
		_, stats, err := New(WithParallelism(parallelism), WithShardRuns(8)).RunContext(
			context.Background(), campaignUnits(t),
			func(p Progress) {
				fmt.Fprintf(&b, "%d/%d runs=%d racy=%d\n",
					p.DoneShards, p.TotalShards, p.Runs, p.Racy)
			},
			func() Aggregator { return NewProb() },
		)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasSuffix(b.String(),
			fmt.Sprintf("%d/%d runs=%d racy=%d\n", stats.Shards, stats.Shards, stats.Runs, stats.Racy)) {
			t.Fatalf("final progress does not match stats %+v:\n%s", stats, b.String())
		}
		return b.String()
	}
	serial := seq(1)
	for _, p := range []int{2, 8} {
		if got := seq(p); got != serial {
			t.Fatalf("progress sequence differs at parallelism %d:\n--- serial\n%s--- parallel\n%s", p, serial, got)
		}
	}
}

// TestRunContextCancellation: a cancelled campaign stops promptly and
// reports the context's error instead of partial aggregates.
func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first seed: every shard must abort
	aggs, _, err := New(WithParallelism(2)).RunContext(ctx, campaignUnits(t), nil,
		func() Aggregator { return NewProb() })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if aggs != nil {
		t.Fatal("cancelled campaign returned aggregates")
	}

	// Cancelling mid-flight (from the progress callback) also aborts.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	fired := 0
	_, _, err = New(WithParallelism(1), WithShardRuns(4)).RunContext(ctx2, campaignUnits(t),
		func(Progress) {
			fired++
			cancel2()
		},
		func() Aggregator { return NewProb() })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-flight err = %v, want context.Canceled", err)
	}
	if fired == 0 {
		t.Fatal("progress callback never fired")
	}
}

// sampledCampaign runs a sample-rate-expanded campaign and returns a
// fingerprint of every per-unit work and probability figure.
func sampledCampaign(t testing.TB, opts ...Option) string {
	t.Helper()
	racy := pat(t, "capture-loop-index")
	var units []Unit
	for _, rate := range []int{1, 4, 16} {
		units = append(units, Unit{
			ID:         fmt.Sprintf("racy/sample:%d", rate),
			Program:    racy.Racy,
			Strategy:   "random",
			Runs:       40,
			MaxSteps:   1 << 16,
			SampleRate: rate,
		})
	}
	aggs, stats, err := New(opts...).Run(units,
		func() Aggregator { return NewProb() },
		func() Aggregator { return NewOverhead() },
	)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "runs=%d racy=%d\n", stats.Runs, stats.Racy)
	for _, s := range aggs[0].(*Prob).Stats() {
		fmt.Fprintf(&b, "prob %s %s %d %d %d\n", s.Unit, s.Detector, s.Runs, s.Detected, s.Races)
	}
	for _, w := range aggs[1].(*Overhead).Work() {
		fmt.Fprintf(&b, "work %s rate=%d runs=%d det=%d ev=%d acc=%d chk=%d skip=%d promo=%d demo=%d fast=%d\n",
			w.Unit, w.SampleRate, w.Runs, w.Detected, w.Events, w.Accesses,
			w.Checked, w.Skipped, w.Promotions, w.Demotions, w.FastReads)
	}
	return b.String()
}

// TestSampledCampaignDeterministicAcrossParallelism: a sampling gate's
// phase depends only on the run seed, so sampled campaigns — including
// every work counter the overhead table is built from — must be
// byte-identical at any parallelism or shard size.
func TestSampledCampaignDeterministicAcrossParallelism(t *testing.T) {
	want := sampledCampaign(t, WithParallelism(1), WithShardRuns(1000))
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"serial-tiny-shards", []Option{WithParallelism(1), WithShardRuns(1)}},
		{"parallel-8", []Option{WithParallelism(8), WithShardRuns(3)}},
	} {
		if got := sampledCampaign(t, tc.opts...); got != want {
			t.Errorf("%s: sampled campaign diverged:\n--- want\n%s--- got\n%s", tc.name, want, got)
		}
	}
	// Sanity: the gate actually skipped accesses at rate 16, or the
	// determinism check above proves less than it claims.
	sawSkip := false
	for _, line := range strings.Split(want, "\n") {
		if strings.Contains(line, "rate=16") && strings.Contains(line, "skip=") && !strings.Contains(line, "skip=0 ") {
			sawSkip = true
		}
	}
	if !sawSkip {
		t.Fatalf("rate-16 unit skipped no accesses; fingerprint:\n%s", want)
	}
}
