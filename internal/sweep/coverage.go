package sweep

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"gorace/internal/report"
	"gorace/internal/trace"
)

// This file holds the racegen feedback aggregators: Cover folds
// schedule-shape fingerprints (which interleaving structures a unit's
// runs actually exercised) and Verdicts folds per-seed detector
// verdicts into a byte-stable signature, the raw material for the
// detector-disagreement oracle. Both follow the standard per-unit
// fold shape so shard merges stay deterministic at any parallelism.

// ShapeEdges fingerprints a recorded trace's interleaving and
// synchronization structure as a set of 64-bit edge hashes. Two kinds
// of edge are folded:
//
//   - access edges: for each memory cell, every consecutive pair of
//     accesses contributes (site label, previous op, current op,
//     whether the pair crossed goroutines). This captures which
//     read/write orders a schedule actually produced — the property
//     coverage-guided generation wants to grow — without encoding
//     seq numbers or goroutine IDs, which would make every run
//     trivially novel.
//   - sync edges: per goroutine, every consecutive pair of
//     synchronization operations contributes (previous kind+op,
//     current kind+op, current object label), capturing the
//     lock/channel/WaitGroup discipline the schedule threaded
//     through.
//
// The result is sorted and deduplicated, so identical structure sets
// hash identically regardless of event order within a run.
func ShapeEdges(events []trace.Event) []uint64 {
	type access struct {
		op    trace.Op
		g     string
		label string
	}
	lastAccess := make(map[trace.Addr]access)
	type syncOp struct {
		kind  trace.ObjKind
		op    trace.Op
		label string
	}
	lastSync := make(map[string]syncOp) // by goroutine name
	set := make(map[uint64]struct{})
	edge := func(parts ...string) {
		h := fnv.New64a()
		for _, p := range parts {
			h.Write([]byte(p))
			h.Write([]byte{0})
		}
		set[h.Sum64()] = struct{}{}
	}
	for _, ev := range events {
		switch {
		case ev.Op.IsAccess():
			cur := access{op: ev.Op, g: ev.GName, label: ev.Label}
			if prev, ok := lastAccess[ev.Addr]; ok {
				cross := "same-g"
				if prev.g != cur.g {
					cross = "cross-g"
				}
				edge("acc", prev.label, prev.op.String(), cur.op.String(), cross)
			} else {
				edge("first", cur.label, cur.op.String())
			}
			lastAccess[ev.Addr] = cur
		case ev.Op == trace.OpAcquire || ev.Op == trace.OpRelease:
			cur := syncOp{kind: ev.Kind, op: ev.Op, label: ev.Label}
			if prev, ok := lastSync[ev.GName]; ok {
				edge("sync", prev.kind.String(), prev.op.String(),
					cur.kind.String(), cur.op.String(), cur.label)
			}
			lastSync[ev.GName] = cur
		}
	}
	out := make([]uint64, 0, len(set))
	for h := range set {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Cover accumulates the set of shape edges each unit's runs covered.
// It requires Unit.Record — runs without a trace contribute nothing.
type Cover struct {
	units []map[uint64]struct{} // indexed by UnitIdx
}

// NewCover returns an empty Cover aggregator (use as a Factory:
// func() Aggregator { return NewCover() }).
func NewCover() *Cover { return &Cover{} }

func (c *Cover) unit(idx int) map[uint64]struct{} {
	for len(c.units) <= idx {
		c.units = append(c.units, nil)
	}
	if c.units[idx] == nil {
		c.units[idx] = make(map[uint64]struct{})
	}
	return c.units[idx]
}

// Observe implements Aggregator.
func (c *Cover) Observe(r Run) {
	if r.Outcome.Trace == nil {
		return
	}
	set := c.unit(r.UnitIdx)
	for _, h := range ShapeEdges(r.Outcome.Trace.Events) {
		set[h] = struct{}{}
	}
}

// Merge implements Aggregator.
func (c *Cover) Merge(next Aggregator) {
	for idx, o := range next.(*Cover).units {
		if o == nil {
			continue
		}
		set := c.unit(idx)
		for h := range o {
			set[h] = struct{}{}
		}
	}
}

// Edges returns the union of edge hashes covered across all units,
// sorted.
func (c *Cover) Edges() []uint64 {
	set := make(map[uint64]struct{})
	for _, u := range c.units {
		for h := range u {
			set[h] = struct{}{}
		}
	}
	out := make([]uint64, 0, len(set))
	for h := range set {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// UnitEdges returns one unit's covered edge hashes, sorted, or nil.
func (c *Cover) UnitEdges(idx int) []uint64 {
	if idx < 0 || idx >= len(c.units) || c.units[idx] == nil {
		return nil
	}
	out := make([]uint64, 0, len(c.units[idx]))
	for h := range c.units[idx] {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RaceSiteKey identifies a race by its access sites rather than by
// report.Race.Hash: generated programs carry no calling contexts, so
// the §3.3.1 stack-based hash collapses every progen race to one
// value. The site key uses the two access labels and kinds, ordered
// lexicographically so it is stable across access-order flips.
func RaceSiteKey(r report.Race) string {
	a := r.First.Label + "\x00" + r.First.Kind()
	b := r.Second.Label + "\x00" + r.Second.Kind()
	if b < a {
		a, b = b, a
	}
	return a + "\x01" + b
}

// UnitVerdict is one unit's verdict summary under one detector: which
// seeds manifested a race and the deduplicated race site keys
// observed.
type UnitVerdict struct {
	Unit     string // Unit.ID
	Detector string // resolved detector name
	Runs     int
	RacySeed map[int]bool        // SeedIdx → race manifested
	Hashes   map[string]struct{} // RaceSiteKey values seen
}

// Racy reports whether any seed manifested a race.
func (v *UnitVerdict) Racy() bool {
	for _, r := range v.RacySeed {
		if r {
			return true
		}
	}
	return false
}

// Signature renders the verdict as a canonical byte-stable string:
// the sorted racy seed indices plus the sorted race hashes. Equal
// signatures mean the detector behaved identically; campaign
// determinism makes the signature identical at any parallelism.
func (v *UnitVerdict) Signature() string {
	seeds := make([]int, 0, len(v.RacySeed))
	for si, racy := range v.RacySeed {
		if racy {
			seeds = append(seeds, si)
		}
	}
	sort.Ints(seeds)
	hashes := make([]string, 0, len(v.Hashes))
	for h := range v.Hashes {
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)
	var b strings.Builder
	b.WriteString("seeds:")
	for i, s := range seeds {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", s)
	}
	b.WriteString(";races:")
	for i, h := range hashes {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(h)
	}
	return b.String()
}

// Verdicts folds per-seed race verdicts per unit — the differential
// oracle's input. Each unit typically runs the same program under a
// different detector; comparing their Signatures exposes
// disagreement.
type Verdicts struct {
	units []*UnitVerdict // indexed by UnitIdx
}

// NewVerdicts returns an empty Verdicts aggregator (use as a Factory:
// func() Aggregator { return NewVerdicts() }).
func NewVerdicts() *Verdicts { return &Verdicts{} }

func (v *Verdicts) unit(idx int) *UnitVerdict {
	for len(v.units) <= idx {
		v.units = append(v.units, nil)
	}
	if v.units[idx] == nil {
		v.units[idx] = &UnitVerdict{
			RacySeed: make(map[int]bool),
			Hashes:   make(map[string]struct{}),
		}
	}
	return v.units[idx]
}

// Observe implements Aggregator.
func (v *Verdicts) Observe(r Run) {
	u := v.unit(r.UnitIdx)
	u.Unit = r.Unit.ID
	u.Detector = r.Outcome.Detector
	u.Runs++
	u.RacySeed[r.SeedIdx] = u.RacySeed[r.SeedIdx] || r.Outcome.HasRace()
	for _, race := range r.Outcome.Races {
		u.Hashes[RaceSiteKey(race)] = struct{}{}
	}
}

// Merge implements Aggregator.
func (v *Verdicts) Merge(next Aggregator) {
	for idx, o := range next.(*Verdicts).units {
		if o == nil {
			continue
		}
		u := v.unit(idx)
		u.Unit, u.Detector = o.Unit, o.Detector
		u.Runs += o.Runs
		for si, racy := range o.RacySeed {
			u.RacySeed[si] = u.RacySeed[si] || racy
		}
		for h := range o.Hashes {
			u.Hashes[h] = struct{}{}
		}
	}
}

// Unit returns the verdict for one unit index, or nil if it never
// ran.
func (v *Verdicts) Unit(idx int) *UnitVerdict {
	if idx < 0 || idx >= len(v.units) {
		return nil
	}
	return v.units[idx]
}

// All returns every populated unit verdict in unit order.
func (v *Verdicts) All() []*UnitVerdict {
	out := make([]*UnitVerdict, 0, len(v.units))
	for _, u := range v.units {
		if u != nil {
			out = append(out, u)
		}
	}
	return out
}
