package sweep

// Remote-result folding: the wire-portable form of shard-level Prob
// state. A distributed worker executes a shard with RunShard, ships
// IndexedStats over the network, and the coordinator reconstructs a
// mergeable Prob with NewProbFromStats and folds it into the campaign
// root with Merge — in shard-index order, exactly like the local
// engine — so a distributed campaign's probability tables are
// identical to a single-node run of the same spec. internal/service's
// coordinator is the consumer.

// IndexedUnitStat pairs one unit's stats with its unit index, the
// coordinate Merge folds by. It is the transport form of a shard's
// Prob state.
type IndexedUnitStat struct {
	// UnitIdx indexes into the campaign's unit slice.
	UnitIdx int `json:"unitIdx"`
	// Unit and the resolved Detector/Strategy names echo UnitStat.
	Unit     string `json:"unit"`
	Detector string `json:"detector"`
	Strategy string `json:"strategy"`
	// Runs, Detected, Races, and LeakedRuns are the shard's counts for
	// this unit.
	Runs       int `json:"runs"`
	Detected   int `json:"detected"`
	Races      int `json:"races"`
	LeakedRuns int `json:"leakedRuns,omitempty"`
}

// IndexedStats renders the aggregator's per-unit stats with their unit
// indices, the form a shard result ships to a remote merger.
func (p *Prob) IndexedStats() []IndexedUnitStat {
	out := make([]IndexedUnitStat, 0, len(p.stats))
	for idx, s := range p.stats {
		if s == nil {
			continue
		}
		out = append(out, IndexedUnitStat{
			UnitIdx: idx,
			Unit:    s.Unit, Detector: s.Detector, Strategy: s.Strategy,
			Runs: s.Runs, Detected: s.Detected, Races: s.Races,
			LeakedRuns: s.LeakedRuns,
		})
	}
	return out
}

// NewProbFromStats reconstructs a Prob from transported shard stats.
// Feeding the reconstruction to Merge folds exactly the counts the
// originating shard observed, so local and remote shard results are
// interchangeable.
func NewProbFromStats(stats []IndexedUnitStat) *Prob {
	p := NewProb()
	for _, is := range stats {
		s := p.unit(is.UnitIdx)
		s.Unit, s.Detector, s.Strategy = is.Unit, is.Detector, is.Strategy
		s.Runs, s.Detected, s.Races, s.LeakedRuns = is.Runs, is.Detected, is.Races, is.LeakedRuns
	}
	return p
}
