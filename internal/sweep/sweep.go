// Package sweep is the campaign engine behind every multi-run driver
// in the repo: it executes a set of work units (program × detector ×
// strategy × seed range) over a pool of recycled core.Runner workers
// and streams each completed run into pluggable aggregators — the
// in-memory ones in this package (Prob, Corpus, FirstRace, Tally) or
// persistent ones like corpus.Collector, which folds a campaign
// straight into the on-disk race-corpus store.
//
// The paper's deployment story (§3.3) is fleet-scale, offline, and
// aggregate: record executions by the thousands, replay them into
// detectors post-facto, and deduplicate reports across the fleet.
// Every driver that used to hand-roll that loop — detection-
// probability probing (internal/explore), the root-cause study
// (internal/study), the monorepo nightly pipeline (internal/monorepo),
// and the corpus-wide campaigns in cmd/racedetect — now expresses its
// sweep as units plus aggregators and lets one engine own scheduling,
// state recycling, and result plumbing.
//
// # Determinism
//
// Campaigns are sharded: each unit's seed range is split into
// contiguous shards, shards execute on any worker in any order, and
// each shard feeds its own aggregator instances in seed order. When a
// shard completes, the engine folds it into the campaign's root
// aggregators in *shard index* order (holding briefly completed
// shards that arrive early). Per-seed outcomes are deterministic, so
// the fold sees an identical observation sequence no matter how
// workers interleave — sharded results are reproducible at any
// parallelism. Memory stays bounded by the out-of-order shard window,
// not by the campaign size: that is the "streaming" in streaming
// campaign engine.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"gorace/internal/core"
	"gorace/internal/sched"
)

// Unit is one work unit of a campaign: a program swept over a seed
// range under one detector/strategy configuration.
type Unit struct {
	// ID names the unit in aggregates (e.g. "capture-loop-index/pct").
	ID string
	// Program is the modeled program to execute.
	Program func(*sched.G)
	// Detector and Strategy are registry names; empty selects the
	// defaults. StrategyFactory overrides Strategy for strategies a
	// name cannot carry (replay prefixes, recorders); it is invoked
	// once per run, possibly from concurrent workers.
	Detector        string
	Strategy        string
	StrategyFactory func() sched.Strategy
	// BaseSeed and Runs define the seed range BaseSeed, BaseSeed+1,
	// ..., BaseSeed+Runs-1.
	BaseSeed int64
	Runs     int
	// MaxSteps bounds each execution (0 = scheduler default).
	MaxSteps int
	// Record keeps each run's event trace on its Outcome.
	Record bool
	// Window keeps only the most recent Window events per goroutine
	// on each run's Outcome instead of a full recording
	// (core.WithWindow) — bounded trace retention for long runs; a
	// manifested race still carries classify-able recent context.
	// Window > 0 overrides Record; 0 keeps full-trace semantics.
	Window int
	// SampleRate gates the detector behind a deterministic 1-in-N
	// access-sampling filter (core.WithSampleRate). 0 or 1 means
	// check every access.
	SampleRate int
	// HaltOnRace stops the unit's sweep at the first run that
	// detects a race (a bounded seed *search* rather than a full
	// sweep). Halting units are never split across shards, so the
	// early exit — and therefore the whole campaign — stays
	// deterministic.
	HaltOnRace bool
}

// Run is one completed execution, delivered to aggregators in
// canonical order (unit index, then seed index).
type Run struct {
	Unit    *Unit
	UnitIdx int
	SeedIdx int // index within the unit's seed range
	Seed    int64
	Outcome *core.Outcome
}

// Aggregator consumes a stream of runs. The engine creates one
// instance per shard (via a Factory), feeds it that shard's runs in
// seed order, and folds completed shards into the campaign root with
// Merge, always in shard order. Aggregators never see concurrent
// calls.
type Aggregator interface {
	// Observe folds one run into the aggregate.
	Observe(r Run)
	// Merge folds next — an aggregate of the same concrete type
	// covering strictly later runs — into this one.
	Merge(next Aggregator)
}

// Factory builds one aggregator instance; the engine calls it once
// per shard plus once for the campaign root.
type Factory func() Aggregator

// Stats summarizes an executed campaign.
type Stats struct {
	Units  int // units submitted
	Shards int // shards executed
	Runs   int // program executions performed
	Racy   int // executions that detected at least one race
}

// Progress is a point-in-time view of a running campaign, delivered
// to RunContext's progress callback after each shard folds into the
// campaign root. Because shards fold in shard-index order, a given
// campaign produces the same Progress sequence at any parallelism.
type Progress struct {
	DoneShards  int // shards folded so far
	TotalShards int // shards the campaign was split into
	Runs        int // program executions folded so far
	Racy        int // folded executions that detected at least one race
}

// Engine executes campaigns. The zero value is not useful; use New.
type Engine struct {
	parallelism int
	shardRuns   int
}

// Option configures an Engine.
type Option func(*Engine)

// WithParallelism sets the worker-goroutine count (default
// GOMAXPROCS; values < 1 mean serial).
func WithParallelism(n int) Option {
	return func(e *Engine) { e.parallelism = n }
}

// WithShardRuns sets the target runs per shard when splitting a
// unit's seed range (default 16). Smaller shards spread one big unit
// across more workers; larger shards amortize more state recycling.
func WithShardRuns(n int) Option {
	return func(e *Engine) { e.shardRuns = n }
}

// New builds an Engine.
func New(opts ...Option) *Engine {
	e := &Engine{parallelism: runtime.GOMAXPROCS(0), shardRuns: 16}
	for _, opt := range opts {
		opt(e)
	}
	if e.parallelism < 1 {
		e.parallelism = 1
	}
	if e.shardRuns < 1 {
		e.shardRuns = 1
	}
	return e
}

// Shard is a contiguous slice of one unit's seed range — the unit of
// work distribution, both across the engine's local workers and (via
// internal/service's coordinator) across machines. A shard is a pure
// function of (units, Shard): executing it anywhere, any number of
// times, yields the same aggregates, which is what makes re-dispatch
// after a node failure safe.
type Shard struct {
	// UnitIdx indexes into the campaign's unit slice.
	UnitIdx int
	// Lo and N delimit seed indices [Lo, Lo+N) within the unit.
	Lo, N int
}

// Plan splits a campaign's units into shards of at most shardRuns
// seeds each (values < 1 mean 1). The plan is deterministic and
// unit-major: all of unit 0's shards precede unit 1's, in ascending
// seed order — the shard-index order every merger folds in.
// HaltOnRace units are never split (see Unit.HaltOnRace).
func Plan(units []Unit, shardRuns int) []Shard {
	if shardRuns < 1 {
		shardRuns = 1
	}
	var shards []Shard
	for ui := range units {
		runs := units[ui].Runs
		if runs <= 0 {
			continue
		}
		if units[ui].HaltOnRace {
			shards = append(shards, Shard{UnitIdx: ui, Lo: 0, N: runs})
			continue
		}
		for lo := 0; lo < runs; lo += shardRuns {
			n := shardRuns
			if lo+n > runs {
				n = runs - lo
			}
			shards = append(shards, Shard{UnitIdx: ui, Lo: lo, N: n})
		}
	}
	return shards
}

// shardResult is what one executed shard hands to the merger.
type shardResult struct {
	idx  int
	aggs []Aggregator
	runs int
	racy int
	err  error
}

// workerSource is where runShard gets (and returns) recycled
// core.Workers. The engine's per-goroutine pool is a plain map (no
// locking: one goroutine); WorkerCache is the locked form remote shard
// executors share across concurrent requests.
type workerSource interface {
	// acquire checks a worker for key out of the source (a second
	// acquire before release must not return the same worker).
	acquire(key string) (*core.Worker, bool)
	// release returns a worker (possibly freshly created) for reuse.
	release(key string, wk *core.Worker)
}

// mapPool is the engine's single-goroutine worker pool.
type mapPool map[string]*core.Worker

func (p mapPool) acquire(key string) (*core.Worker, bool) {
	wk, ok := p[key]
	if ok {
		delete(p, key)
	}
	return wk, ok
}

func (p mapPool) release(key string, wk *core.Worker) { p[key] = wk }

// WorkerCache is a concurrency-safe pool of recycled core.Workers
// keyed by unit configuration, for callers that execute shards from
// concurrent goroutines (a service node running several RunShard
// requests at once). Detector shadow state is allocated once per
// (cached worker, config) and reset between seeds, not reallocated
// per shard.
type WorkerCache struct {
	mu   sync.Mutex
	free map[string][]*core.Worker
}

// NewWorkerCache returns an empty cache.
func NewWorkerCache() *WorkerCache {
	return &WorkerCache{free: make(map[string][]*core.Worker)}
}

func (c *WorkerCache) acquire(key string) (*core.Worker, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	stack := c.free[key]
	if len(stack) == 0 {
		return nil, false
	}
	wk := stack[len(stack)-1]
	c.free[key] = stack[:len(stack)-1]
	return wk, true
}

func (c *WorkerCache) release(key string, wk *core.Worker) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.free[key] = append(c.free[key], wk)
}

// RunShard executes one shard on the calling goroutine and returns
// one aggregator per factory, fed the shard's runs in seed order,
// plus the shard's run/racy counts. It is the remote half of the
// engine: a distributed worker node answers a shard dispatch with
// exactly this call, and because per-seed outcomes are deterministic,
// the result is identical to what the local engine would have folded
// for the same shard. cache may be nil (no cross-call recycling).
func RunShard(ctx context.Context, units []Unit, sh Shard, cache *WorkerCache, factories ...Factory) ([]Aggregator, Stats, error) {
	var src workerSource = mapPool{}
	if cache != nil {
		src = cache
	}
	res := runShard(ctx, units, sh, 0, src, factories)
	stats := Stats{Units: 1, Shards: 1, Runs: res.runs, Racy: res.racy}
	if res.err != nil {
		return nil, stats, res.err
	}
	return res.aggs, stats, nil
}

// Run executes the campaign and returns one merged root aggregator
// per factory, in factory order. An error (unknown detector or
// strategy name, nil factory strategy, model failure) aborts the
// campaign; the first error in shard order is returned.
func (e *Engine) Run(units []Unit, factories ...Factory) ([]Aggregator, Stats, error) {
	return e.RunContext(context.Background(), units, nil, factories...)
}

// RunContext is Run with cancellation and progress reporting, the
// form long-running services drive campaigns through. Cancelling ctx
// stops the campaign promptly — workers check the context between
// seeds — and RunContext returns the context's error; partial
// aggregates are discarded. onProgress, when non-nil, is invoked from
// the merge loop after each shard folds into the campaign root; it
// runs on the calling goroutine's merge path, so it must not block
// for long, and it observes the same deterministic shard-ordered
// sequence at any parallelism.
func (e *Engine) RunContext(ctx context.Context, units []Unit, onProgress func(Progress), factories ...Factory) ([]Aggregator, Stats, error) {
	stats := Stats{Units: len(units)}
	roots := make([]Aggregator, len(factories))
	for i, f := range factories {
		roots[i] = f()
	}

	shards := Plan(units, e.shardRuns)
	stats.Shards = len(shards)
	if len(shards) == 0 {
		return roots, stats, nil
	}

	workers := e.parallelism
	if workers > len(shards) {
		workers = len(shards)
	}
	results := make(chan shardResult, len(shards))
	var next int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			// Each worker goroutine keeps one recycled core.Worker
			// per distinct unit configuration, so a campaign over
			// thousands of seeds allocates detector shadow memory
			// once per (worker, config), not once per run.
			pool := mapPool{}
			for {
				// A failed shard (or a cancelled campaign) dooms the
				// result, so don't burn the remaining shards;
				// in-flight ones still finish.
				if failed.Load() {
					return
				}
				si := int(atomic.AddInt64(&next, 1)) - 1
				if si >= len(shards) {
					return
				}
				res := runShard(ctx, units, shards[si], si, pool, factories)
				if res.err != nil {
					failed.Store(true)
				}
				results <- res
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Deterministic streaming merge: fold shards into the roots in
	// shard-index order, buffering only shards that complete ahead of
	// their turn.
	pending := make(map[int]shardResult)
	nextMerge := 0
	var firstErr error
	firstErrShard := len(shards)
	for res := range results {
		pending[res.idx] = res
		for {
			r, ok := pending[nextMerge]
			if !ok {
				break
			}
			delete(pending, nextMerge)
			nextMerge++
			if r.err != nil {
				if r.idx < firstErrShard {
					firstErr, firstErrShard = r.err, r.idx
				}
				continue
			}
			stats.Runs += r.runs
			stats.Racy += r.racy
			for i := range roots {
				roots[i].Merge(r.aggs[i])
			}
			if onProgress != nil {
				onProgress(Progress{
					DoneShards:  nextMerge,
					TotalShards: len(shards),
					Runs:        stats.Runs,
					Racy:        stats.Racy,
				})
			}
		}
	}
	if firstErr != nil {
		return nil, stats, firstErr
	}
	return roots, stats, nil
}

// configKey identifies the recycled-state compatibility class of a
// unit. Units sharing a key reuse one core.Worker per engine worker;
// factory-driven units get a per-unit key so a stateful factory is
// never shared across units.
func configKey(u *Unit, unitIdx int) string {
	if u.StrategyFactory != nil {
		return fmt.Sprintf("factory/%d", unitIdx)
	}
	return fmt.Sprintf("%s\x00%s\x00%d\x00%t\x00%d\x00%d", u.Detector, u.Strategy, u.MaxSteps, u.Record, u.SampleRate, u.Window)
}

// runShard executes one shard on the calling goroutine, feeding fresh
// aggregator instances in seed order. The context is checked between
// seeds, so a cancelled campaign stops within one program execution
// per worker. The core.Worker is checked out of pool for the shard's
// duration and returned on every exit path.
func runShard(ctx context.Context, units []Unit, sh Shard, idx int, pool workerSource, factories []Factory) shardResult {
	res := shardResult{idx: idx, aggs: make([]Aggregator, len(factories))}
	for i, f := range factories {
		res.aggs[i] = f()
	}
	u := &units[sh.UnitIdx]
	key := configKey(u, sh.UnitIdx)
	wk, ok := pool.acquire(key)
	if !ok {
		opts := []core.Option{
			core.WithDetector(u.Detector),
			core.WithMaxSteps(u.MaxSteps),
			core.WithRecord(u.Record),
			core.WithWindow(u.Window),
			core.WithSampleRate(u.SampleRate),
		}
		if u.StrategyFactory != nil {
			opts = append(opts, core.WithStrategyFactory(u.StrategyFactory))
		} else if u.Strategy != "" {
			opts = append(opts, core.WithStrategy(u.Strategy))
		}
		var err error
		wk, err = core.NewRunner(opts...).NewWorker()
		if err != nil {
			res.err = fmt.Errorf("sweep: unit %q: %w", u.ID, err)
			return res
		}
	}
	defer pool.release(key, wk)
	for si := sh.Lo; si < sh.Lo+sh.N; si++ {
		if err := ctx.Err(); err != nil {
			res.err = err
			return res
		}
		seed := u.BaseSeed + int64(si)
		out, err := wk.RunSeed(u.Program, seed)
		if err != nil {
			res.err = fmt.Errorf("sweep: unit %q seed %d: %w", u.ID, seed, err)
			return res
		}
		res.runs++
		racy := out.HasRace()
		if racy {
			res.racy++
		}
		r := Run{Unit: u, UnitIdx: sh.UnitIdx, SeedIdx: si, Seed: seed, Outcome: out}
		for _, a := range res.aggs {
			a.Observe(r)
		}
		if racy && u.HaltOnRace {
			break
		}
	}
	return res
}
