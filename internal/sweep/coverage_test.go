package sweep_test

import (
	"testing"

	"gorace/internal/progen"
	"gorace/internal/sweep"
)

func coveragePlan(detectors []string, runs int) []sweep.Unit {
	prog := progen.Generate(42, progen.Params{Maps: 1, Flags: 1})
	units := make([]sweep.Unit, 0, len(detectors))
	for _, det := range detectors {
		units = append(units, sweep.Unit{
			ID:       "cov/" + det,
			Program:  prog.Main(),
			Detector: det,
			Strategy: "random",
			BaseSeed: 100,
			Runs:     runs,
			MaxSteps: 1 << 16,
			Record:   true,
		})
	}
	return units
}

// TestCoverAndVerdictsDeterministic: the coverage edge set and every
// verdict signature must be identical at parallelism 1 and 8 — the
// same determinism contract every other aggregator honors, and the
// one racegen's scoring depends on.
func TestCoverAndVerdictsDeterministic(t *testing.T) {
	dets := []string{"fasttrack", "djit", "eraser"}
	run := func(par int) (*sweep.Cover, *sweep.Verdicts) {
		aggs, _, err := sweep.New(sweep.WithParallelism(par)).Run(coveragePlan(dets, 3),
			func() sweep.Aggregator { return sweep.NewCover() },
			func() sweep.Aggregator { return sweep.NewVerdicts() },
		)
		if err != nil {
			t.Fatal(err)
		}
		return aggs[0].(*sweep.Cover), aggs[1].(*sweep.Verdicts)
	}
	c1, v1 := run(1)
	c8, v8 := run(8)

	e1, e8 := c1.Edges(), c8.Edges()
	if len(e1) == 0 {
		t.Fatal("no coverage edges observed from a recorded campaign")
	}
	if len(e1) != len(e8) {
		t.Fatalf("edge count differs by parallelism: %d vs %d", len(e1), len(e8))
	}
	for i := range e1 {
		if e1[i] != e8[i] {
			t.Fatalf("edge %d differs by parallelism", i)
		}
	}
	for idx := range dets {
		u1, u8 := v1.Unit(idx), v8.Unit(idx)
		if u1 == nil || u8 == nil {
			t.Fatalf("unit %d missing verdict", idx)
		}
		if u1.Signature() != u8.Signature() {
			t.Fatalf("unit %d signature differs by parallelism:\n%s\n%s",
				idx, u1.Signature(), u8.Signature())
		}
	}
}

// TestVerdictsExposeDisagreement: eraser ignores atomics, so the
// flag-publication idiom's partial-atomics race must split the
// verdicts — the exact differential signal racegen scores.
func TestVerdictsExposeDisagreement(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		prog := progen.Generate(seed, progen.Params{Flags: 2, LockedRatio: progen.Int(0)})
		units := []sweep.Unit{
			{ID: "ft", Program: prog.Main(), Detector: "fasttrack", Strategy: "random",
				BaseSeed: 1, Runs: 6, MaxSteps: 1 << 16},
			{ID: "er", Program: prog.Main(), Detector: "eraser", Strategy: "random",
				BaseSeed: 1, Runs: 6, MaxSteps: 1 << 16},
		}
		aggs, _, err := sweep.New(sweep.WithParallelism(2)).Run(units,
			func() sweep.Aggregator { return sweep.NewVerdicts() })
		if err != nil {
			t.Fatal(err)
		}
		v := aggs[0].(*sweep.Verdicts)
		ft, er := v.Unit(0), v.Unit(1)
		if ft == nil || er == nil {
			t.Fatal("missing verdicts")
		}
		if ft.Signature() != er.Signature() {
			return // disagreement found — the oracle has signal
		}
	}
	t.Fatal("no fasttrack/eraser disagreement across 25 flag-publication programs")
}
