package sweep

// Earliest is the shared skeleton of first-manifestation aggregators:
// it keeps, per unit, one value derived from the earliest run (in
// seed order) that offered one. FirstRace, Tally, and driver-side
// aggregators (e.g. the study's streaming classifier) all delegate
// their per-unit bookkeeping here, so the earliest-wins rule — and
// its interaction with the engine's shard-ordered merge — lives in
// exactly one place.
//
// The rule: an offer replaces the unit's current value iff no value
// exists yet or the offer comes from a strictly earlier seed. Within
// a shard, Observe sees seeds in ascending order, so the first offer
// wins; across shards, seed indices never collide, so MergeFrom
// applies the same comparison.
type Earliest[T any] struct {
	units []*earliestEntry[T] // indexed by UnitIdx
}

type earliestEntry[T any] struct {
	seedIdx int
	value   T
}

// Wants reports whether an offer for unitIdx at seedIdx would be
// kept. Callers computing an expensive value (a classification, a
// snapshot) should check Wants first and skip the work when the unit
// already has an earlier value.
func (e *Earliest[T]) Wants(unitIdx, seedIdx int) bool {
	if unitIdx >= len(e.units) || e.units[unitIdx] == nil {
		return true
	}
	return seedIdx < e.units[unitIdx].seedIdx
}

// Take offers v for unitIdx at seedIdx, keeping it iff Wants.
func (e *Earliest[T]) Take(unitIdx, seedIdx int, v T) {
	if !e.Wants(unitIdx, seedIdx) {
		return
	}
	for len(e.units) <= unitIdx {
		e.units = append(e.units, nil)
	}
	e.units[unitIdx] = &earliestEntry[T]{seedIdx: seedIdx, value: v}
}

// MergeFrom folds another aggregate's entries into this one under the
// same earliest-wins rule.
func (e *Earliest[T]) MergeFrom(o *Earliest[T]) {
	for idx, entry := range o.units {
		if entry != nil {
			e.Take(idx, entry.seedIdx, entry.value)
		}
	}
}

// Get returns the unit's value, or (zero, false) if no run offered
// one.
func (e *Earliest[T]) Get(unitIdx int) (T, bool) {
	if unitIdx < len(e.units) && e.units[unitIdx] != nil {
		return e.units[unitIdx].value, true
	}
	var zero T
	return zero, false
}

// Each calls f for every unit holding a value, in unit order.
func (e *Earliest[T]) Each(f func(unitIdx int, v T)) {
	for idx, entry := range e.units {
		if entry != nil {
			f(idx, entry.value)
		}
	}
}
