package pipeline

import (
	"strings"
	"testing"

	"gorace/internal/taxonomy"
)

func TestSummaryMatchesPaperAggregates(t *testing.T) {
	// §3.5: ~2000 detected, 1011 fixed, 790 unique patches by 210
	// engineers, ~5 new reports/day, ~78% unique root causes. We
	// accept ±15% (it is a stochastic simulation of a stochastic
	// process).
	for seed := int64(1); seed <= 3; seed++ {
		cfg := DefaultConfig()
		cfg.Seed = seed
		s := Run(cfg).Summary
		within := func(name string, got, want, tolPct int) {
			t.Helper()
			lo := want * (100 - tolPct) / 100
			hi := want * (100 + tolPct) / 100
			if got < lo || got > hi {
				t.Errorf("seed %d: %s = %d, want %d ±%d%%", seed, name, got, want, tolPct)
			}
		}
		within("unique races", s.UniqueRaces, 2000, 15)
		within("fixed races", s.FixedRaces, 1011, 15)
		within("unique patches", s.UniquePatches, 790, 15)
		within("unique fixers", s.UniqueFixers, 210, 15)
		if s.NewRacesPerDay < 3.5 || s.NewRacesPerDay > 8 {
			t.Errorf("seed %d: new/day = %.1f, want ~5", seed, s.NewRacesPerDay)
		}
		if s.UniqueRootCausePct < 70 || s.UniqueRootCausePct > 86 {
			t.Errorf("seed %d: root-cause%% = %.1f, want ~78", seed, s.UniqueRootCausePct)
		}
	}
}

func TestFigure3Shape(t *testing.T) {
	// The paper's narrative: a noticeable drop during the shepherded
	// initial phase, a surge when the floodgates open, then a gradual
	// climb once shepherding stops.
	o := Run(DefaultConfig())
	d := o.Days
	cfg := DefaultConfig()
	pre := d[cfg.FloodgateDay-1].Outstanding
	start := d[0].Outstanding
	if pre >= start {
		t.Errorf("no drop during shepherding: day0=%d, pre-floodgate=%d", start, pre)
	}
	surge := d[cfg.FloodgateDay+5].Outstanding
	if surge <= pre*2 {
		t.Errorf("no floodgate surge: pre=%d, post=%d", pre, surge)
	}
	end := d[len(d)-1].Outstanding
	mid := d[cfg.ShepherdEndDay+10].Outstanding
	if end <= mid {
		t.Errorf("no gradual climb after shepherding: day%d=%d, end=%d",
			cfg.ShepherdEndDay+10, mid, end)
	}
}

func TestFigure4Gradients(t *testing.T) {
	// "the gradient for the task creation is higher than that of task
	// resolution because the authors disengaged from shepherding."
	o := Run(DefaultConfig())
	cfg := DefaultConfig()
	late := o.Days[cfg.ShepherdEndDay+20:]
	first, last := late[0], late[len(late)-1]
	createdSlope := last.CreatedCum - first.CreatedCum
	resolvedSlope := last.ResolvedCum - first.ResolvedCum
	if createdSlope <= resolvedSlope {
		t.Errorf("late-phase creation slope %d not above resolution slope %d",
			createdSlope, resolvedSlope)
	}
	// Cumulative series must be monotone.
	for i := 1; i < len(o.Days); i++ {
		if o.Days[i].CreatedCum < o.Days[i-1].CreatedCum ||
			o.Days[i].ResolvedCum < o.Days[i-1].ResolvedCum {
			t.Fatal("cumulative series decreased")
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a := Run(DefaultConfig())
	b := Run(DefaultConfig())
	if a.Summary != b.Summary {
		t.Fatalf("same seed, different summaries: %+v vs %+v", a.Summary, b.Summary)
	}
	cfg := DefaultConfig()
	cfg.Seed = 99
	c := Run(cfg)
	if a.Summary == c.Summary {
		t.Log("note: different seeds produced identical summaries (unlikely)")
	}
}

func TestCategoryMixFollowsTables(t *testing.T) {
	o := Run(DefaultConfig())
	// The two largest categories in the paper are missing-lock (470)
	// and slice (391); they should dominate the sampled mix too.
	if o.CategoryMix[taxonomy.CatMissingLock] < o.CategoryMix[taxonomy.CatRLockMutation] {
		t.Error("missing-lock should outnumber rlock-mutation (470 vs 2)")
	}
	if o.CategoryMix[taxonomy.CatSlice] < o.CategoryMix[taxonomy.CatMap] {
		t.Error("slice should outnumber map (391 vs 38)")
	}
	total := 0
	for _, n := range o.CategoryMix {
		total += n
	}
	if total != o.Summary.UniqueRaces {
		t.Errorf("category mix sums to %d, want %d", total, o.Summary.UniqueRaces)
	}
}

func TestFormatters(t *testing.T) {
	o := Run(DefaultConfig())
	f3 := FormatFigure3(o)
	if !strings.HasPrefix(f3, "day,outstanding\n") || strings.Count(f3, "\n") != len(o.Days)+1 {
		t.Error("figure 3 CSV malformed")
	}
	f4 := FormatFigure4(o)
	if !strings.HasPrefix(f4, "day,created,resolved\n") {
		t.Error("figure 4 CSV malformed")
	}
	sum := FormatSummary(o.Summary)
	for _, want := range []string{"1011", "790", "210", "unique races"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q", want)
		}
	}
}

func TestConfigOverridesRespected(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Days = 30
	cfg.PreexistingRaces = 50
	o := Run(cfg)
	if len(o.Days) != 30 {
		t.Fatalf("days = %d", len(o.Days))
	}
	if o.Summary.UniqueRaces > 50+30*int(cfg.NewRacesPerDay)+5 {
		t.Fatalf("more races filed than can exist: %d", o.Summary.UniqueRaces)
	}
}

func BenchmarkDeploymentSimulation(b *testing.B) {
	cfg := DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		Run(cfg)
	}
}

func TestFixDifficultySlowsHardCategories(t *testing.T) {
	// With difficulty applied, the hard categories' fix fraction must
	// trail the easy ones'. Compare fixed counts per category between
	// a run with and without the difficulty map.
	base := DefaultConfig()
	base.Seed = 6
	hard := base
	hard.FixDifficulty = map[taxonomy.Category]float64{
		taxonomy.CatMissingLock: 0.05, // make the largest category sticky
	}
	easyRun := Run(base)
	hardRun := Run(hard)
	if hardRun.Summary.FixedRaces >= easyRun.Summary.FixedRaces {
		t.Fatalf("difficulty had no effect: %d vs %d",
			hardRun.Summary.FixedRaces, easyRun.Summary.FixedRaces)
	}
}

func TestDefaultFixDifficultyIsSane(t *testing.T) {
	for cat, d := range DefaultFixDifficulty() {
		if d <= 0 || d > 1 {
			t.Errorf("%s difficulty %f out of (0,1]", cat, d)
		}
	}
	// The default simulation (no difficulty map) must keep matching
	// the paper aggregates — guarded by TestSummaryMatchesPaperAggregates.
	cfg := DefaultConfig()
	if cfg.FixDifficulty != nil {
		t.Fatal("difficulty must be opt-in to preserve calibration")
	}
}
