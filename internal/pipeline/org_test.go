package pipeline

import (
	"strings"
	"testing"
)

func newTestOrg() *Org {
	return NewOrg(50, 5, 200, 0.2, 180, 42)
}

func TestOrgConstruction(t *testing.T) {
	o := newTestOrg()
	if len(o.Engineers) != 50 {
		t.Fatalf("engineers = %d", len(o.Engineers))
	}
	if len(o.files) != 200 {
		t.Fatalf("files = %d", len(o.files))
	}
	sizes, keys := o.TeamSizes(0)
	if len(keys) == 0 {
		t.Fatal("no teams")
	}
	total := 0
	for _, k := range keys {
		total += sizes[k]
	}
	if total != o.ActiveCount(0) {
		t.Fatal("team sizes do not sum to active count")
	}
}

func TestChurnReducesActiveCount(t *testing.T) {
	o := newTestOrg()
	if o.ActiveCount(179) >= o.ActiveCount(0) {
		// 20% churn over 180 days should lose someone.
		t.Error("churn had no effect by day 179")
	}
}

func TestAssignPrefersRootOwner(t *testing.T) {
	o := newTestOrg()
	f := o.files[0]
	owner := o.owner[f]
	day := 0
	if !owner.Active(day) {
		day = -1 // everyone is active before day 0 departures
	}
	a := o.Assign(f, o.files[1], day)
	if a.Engineer == nil {
		t.Fatal("no assignee")
	}
	if owner.Active(day) && a.Engineer != owner {
		t.Fatalf("assigned %s, want root owner %s", a.Engineer.ID, owner.ID)
	}
	if len(a.Rationale) == 0 {
		t.Fatal("no rationale log attached")
	}
	if !strings.Contains(a.Rationale[len(a.Rationale)-1], "assigned to") {
		t.Fatalf("rationale = %v", a.Rationale)
	}
}

func TestAssignFallsBackOnDeparture(t *testing.T) {
	o := newTestOrg()
	f := o.files[0]
	// Force the owner to have departed before the assignment day.
	o.owner[f].DepartedDay = 1
	a := o.Assign(f, f, 10)
	if a.Engineer == nil {
		t.Fatal("no assignee despite fallbacks")
	}
	if a.Engineer == o.owner[f] {
		t.Fatal("assigned to a departed engineer")
	}
	var sawSkip bool
	for _, r := range a.Rationale {
		if strings.Contains(r, "departed") {
			sawSkip = true
		}
	}
	if !sawSkip {
		t.Fatalf("rationale does not explain the skip: %v", a.Rationale)
	}
}

func TestAssignAlwaysExplains(t *testing.T) {
	o := newTestOrg()
	for i := 0; i < 20; i++ {
		a := o.Assign(o.RandomFile(), o.RandomFile(), i*7)
		if a.Engineer == nil {
			t.Fatal("unassigned race")
		}
		if len(a.Rationale) == 0 || len(a.Candidates) == 0 {
			t.Fatal("missing rationale or candidate log")
		}
	}
}

func TestEngineerActive(t *testing.T) {
	e := &Engineer{DepartedDay: -1}
	if !e.Active(1000) {
		t.Fatal("never-departed engineer inactive")
	}
	e.DepartedDay = 10
	if e.Active(10) || !e.Active(9) {
		t.Fatal("departure boundary wrong")
	}
}
