// Package pipeline simulates the DataRaceSpy deployment of §3.3–3.5:
// a daily post-facto run of the dynamic race detector over the
// monorepo snapshot, de-duplication against the open-defect database,
// ramped task filing, heuristic assignee selection over a churning
// organization, and developer fix dynamics with and without
// shepherding.
//
// The six months of operational data behind Figures 3 and 4 are
// proprietary; the simulation reimplements the *mechanisms* the paper
// describes and is calibrated so its aggregates land near the
// published ones (~2000 detected, 1011 fixed by 210 engineers in 790
// patches, ~5 new races/day, drop-then-climb outstanding curve).
package pipeline

import (
	"fmt"
	"math/rand"
	"strings"

	"gorace/internal/taxonomy"
)

// Config parameterizes the simulation. Zero values take defaults from
// DefaultConfig.
type Config struct {
	Days             int     // simulated days (default 180, ~6 months)
	PreexistingRaces int     // races latent in the codebase at rollout
	NewRacesPerDay   float64 // new races introduced by ongoing development
	InitialRelease   int     // tasks filed in the first-day bulk release
	RampPerDay       int     // max new tasks filed per day before the floodgate
	FloodgateDay     int     // day all pending reports are released ("July")
	ShepherdEndDay   int     // day the authors stop shepherding fixes
	ShepherdFixRate  float64 // per-day fix probability per open task, shepherded
	SteadyFixRate    float64 // per-day fix probability afterwards
	MeanManifestP    float64 // mean per-run manifestation probability
	TestDisabledP    float64 // chance a race's test is disabled on a given day
	BatchPatchP      float64 // chance a patch fixes a second race of the same assignee
	Engineers        int
	Teams            int
	Files            int
	ChurnRate        float64
	Seed             int64
	// FixDifficulty scales the fix probability per race category
	// (default: all 1.0). The paper observed that some categories
	// resist fixing — for the Listing 4 defer/named-return race "the
	// developer could not even understand the defect when our tool
	// reported the issue", and the Table 3 tail was closed only by
	// refactors.
	FixDifficulty map[taxonomy.Category]float64
}

// DefaultFixDifficulty reflects the paper's qualitative observations:
// subtle capture and multi-component races take longer to land.
func DefaultFixDifficulty() map[taxonomy.Category]float64 {
	return map[taxonomy.Category]float64{
		taxonomy.CatCaptureNamedReturn: 0.5, // "could not even understand the defect"
		taxonomy.CatComplex:            0.4,
		taxonomy.CatMixedChanShared:    0.7,
		taxonomy.CatFixRefactor:        0.5, // required a major redesign
	}
}

// DefaultConfig reproduces the paper's operational aggregates.
func DefaultConfig() Config {
	return Config{
		Days:             180,
		PreexistingRaces: 1100,
		NewRacesPerDay:   5.5,
		InitialRelease:   500,
		RampPerDay:       4,
		FloodgateDay:     85,
		ShepherdEndDay:   110,
		ShepherdFixRate:  0.011,
		SteadyFixRate:    0.0028,
		MeanManifestP:    0.72,
		TestDisabledP:    0.03,
		BatchPatchP:      0.32,
		Engineers:        250,
		Teams:            24,
		Files:            4000,
		ChurnRate:        0.10,
		Seed:             1,
	}
}

// raceState is one latent race in the simulated codebase.
type raceState struct {
	id            int
	cat           taxonomy.Category
	hash          string
	introducedDay int
	manifestP     float64
	rootFileA     string
	rootFileB     string

	taskOpen  bool
	detected  bool // currently has a pending (unfiled) detection
	fixedDay  int
	assignee  string
	patchID   int
	rationale []string
}

// DayStats is one day of the Figure 3 / Figure 4 time series.
type DayStats struct {
	Day         int
	Outstanding int // open filed tasks (Figure 3)
	CreatedCum  int // cumulative tasks filed (Figure 4 "found")
	ResolvedCum int // cumulative tasks resolved (Figure 4 "fixed")
	NewFiled    int
	FixedToday  int
}

// Summary holds the §3.5 aggregates.
type Summary struct {
	TotalDetections    int     // raw detections, duplicates included
	UniqueRaces        int     // distinct races ever filed (≈2000)
	FixedRaces         int     // tasks resolved (≈1011)
	UniquePatches      int     // distinct patches (≈790)
	UniqueFixers       int     // distinct engineers who fixed (≈210)
	NewRacesPerDay     float64 // late-phase new filings per day (≈5)
	UniqueRootCausePct float64 // patches/fixed (≈78%)
}

// Outcome bundles the run results.
type Outcome struct {
	Days    []DayStats
	Summary Summary
	Org     *Org
	// CategoryMix counts filed races per taxonomy category.
	CategoryMix map[taxonomy.Category]int
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Days == 0 {
		c.Days = d.Days
	}
	if c.PreexistingRaces == 0 {
		c.PreexistingRaces = d.PreexistingRaces
	}
	if c.NewRacesPerDay == 0 {
		c.NewRacesPerDay = d.NewRacesPerDay
	}
	if c.InitialRelease == 0 {
		c.InitialRelease = d.InitialRelease
	}
	if c.RampPerDay == 0 {
		c.RampPerDay = d.RampPerDay
	}
	if c.FloodgateDay == 0 {
		c.FloodgateDay = d.FloodgateDay
	}
	if c.ShepherdEndDay == 0 {
		c.ShepherdEndDay = d.ShepherdEndDay
	}
	if c.ShepherdFixRate == 0 {
		c.ShepherdFixRate = d.ShepherdFixRate
	}
	if c.SteadyFixRate == 0 {
		c.SteadyFixRate = d.SteadyFixRate
	}
	if c.MeanManifestP == 0 {
		c.MeanManifestP = d.MeanManifestP
	}
	if c.TestDisabledP == 0 {
		c.TestDisabledP = d.TestDisabledP
	}
	if c.BatchPatchP == 0 {
		c.BatchPatchP = d.BatchPatchP
	}
	if c.Engineers == 0 {
		c.Engineers = d.Engineers
	}
	if c.Teams == 0 {
		c.Teams = d.Teams
	}
	if c.Files == 0 {
		c.Files = d.Files
	}
	if c.ChurnRate == 0 {
		c.ChurnRate = d.ChurnRate
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	return c
}

// Run executes the deployment simulation.
func Run(cfg Config) *Outcome {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	org := NewOrg(cfg.Engineers, cfg.Teams, cfg.Files, cfg.ChurnRate, cfg.Days, cfg.Seed+1)

	mix := categoryDistribution()
	var races []*raceState
	newRace := func(id, day int) *raceState {
		return &raceState{
			id:            id,
			cat:           sampleCategory(mix, rng),
			hash:          fmt.Sprintf("h%08x", rng.Uint32()),
			introducedDay: day,
			manifestP:     clamp(cfg.MeanManifestP+rng.NormFloat64()*0.18, 0.15, 0.98),
			rootFileA:     org.RandomFile(),
			rootFileB:     org.RandomFile(),
			fixedDay:      -1,
		}
	}
	for i := 0; i < cfg.PreexistingRaces; i++ {
		races = append(races, newRace(i, -1))
	}
	nextID := cfg.PreexistingRaces
	nextPatch := 0

	var (
		days        []DayStats
		created     int
		resolved    int
		detections  int
		carry       float64
		fixers      = make(map[string]bool)
		patches     = make(map[int]bool)
		catMix      = make(map[taxonomy.Category]int)
		lateFilings int
		lateDays    int
	)

	for day := 0; day < cfg.Days; day++ {
		// 1. Ongoing development introduces new races.
		carry += cfg.NewRacesPerDay
		for carry >= 1 {
			carry--
			races = append(races, newRace(nextID, day))
			nextID++
		}

		// 2. The nightly detector run: every open race manifests with
		// its own probability, unless its test is disabled today.
		for _, r := range races {
			if r.fixedDay >= 0 {
				continue
			}
			if rng.Float64() < cfg.TestDisabledP {
				continue // test disabled/skipped today
			}
			if rng.Float64() < r.manifestP {
				detections++
				r.detected = true
			}
		}

		// 3. De-duplicate and file tasks, subject to the release ramp.
		budget := cfg.RampPerDay
		if day == 0 {
			budget = cfg.InitialRelease
		}
		if day >= cfg.FloodgateDay {
			budget = 1 << 30 // floodgates open
		}
		newFiled := 0
		for _, r := range races {
			if budget == 0 {
				break
			}
			if !r.detected || r.taskOpen || r.fixedDay >= 0 {
				continue
			}
			// Dedup: an open task with the same hash suppresses filing.
			r.taskOpen = true
			asg := org.Assign(r.rootFileA, r.rootFileB, day)
			if asg.Engineer != nil {
				r.assignee = asg.Engineer.ID
				r.rationale = asg.Rationale
			}
			created++
			newFiled++
			catMix[r.cat]++
			budget--
		}
		if day >= cfg.FloodgateDay+30 {
			lateFilings += newFiled
			lateDays++
		}

		// 4. Developers fix open tasks; shepherding boosts the rate.
		fixRate := cfg.SteadyFixRate
		if day < cfg.ShepherdEndDay {
			fixRate = cfg.ShepherdFixRate
		}
		fixedToday := 0
		for _, r := range races {
			if !r.taskOpen || r.fixedDay >= 0 {
				continue
			}
			rate := fixRate
			if d, ok := cfg.FixDifficulty[r.cat]; ok {
				rate *= d
			}
			if rng.Float64() >= rate {
				continue
			}
			nextPatch++
			r.fixedDay = day
			r.patchID = nextPatch
			r.taskOpen = false
			r.detected = false
			resolved++
			fixedToday++
			patches[nextPatch] = true
			if r.assignee != "" {
				fixers[r.assignee] = true
			}
			// Some patches fix a second race owned by the same
			// engineer (790 patches closed 1011 races).
			if rng.Float64() < cfg.BatchPatchP {
				for _, r2 := range races {
					if r2.taskOpen && r2.fixedDay < 0 && r2.assignee == r.assignee {
						r2.fixedDay = day
						r2.patchID = nextPatch
						r2.taskOpen = false
						r2.detected = false
						resolved++
						fixedToday++
						break
					}
				}
			}
		}

		outstanding := 0
		for _, r := range races {
			if r.taskOpen && r.fixedDay < 0 {
				outstanding++
			}
		}
		days = append(days, DayStats{
			Day: day, Outstanding: outstanding,
			CreatedCum: created, ResolvedCum: resolved,
			NewFiled: newFiled, FixedToday: fixedToday,
		})
	}

	sum := Summary{
		TotalDetections: detections,
		UniqueRaces:     created,
		FixedRaces:      resolved,
		UniquePatches:   len(patches),
		UniqueFixers:    len(fixers),
	}
	if lateDays > 0 {
		sum.NewRacesPerDay = float64(lateFilings) / float64(lateDays)
	}
	if resolved > 0 {
		sum.UniqueRootCausePct = 100 * float64(len(patches)) / float64(resolved)
	}
	return &Outcome{Days: days, Summary: sum, Org: org, CategoryMix: catMix}
}

// categoryDistribution builds the sampling weights for synthetic race
// categories from the paper's Tables 2 and 3 counts.
func categoryDistribution() []taxonomy.Entry {
	return taxonomy.Entries
}

func sampleCategory(entries []taxonomy.Entry, rng *rand.Rand) taxonomy.Category {
	total := 0
	for _, e := range entries {
		total += e.PaperCount
	}
	u := rng.Intn(total)
	for _, e := range entries {
		u -= e.PaperCount
		if u < 0 {
			return e.Cat
		}
	}
	return entries[len(entries)-1].Cat
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// FormatFigure3 renders the outstanding-races time series.
func FormatFigure3(o *Outcome) string {
	var b strings.Builder
	b.WriteString("day,outstanding\n")
	for _, d := range o.Days {
		fmt.Fprintf(&b, "%d,%d\n", d.Day, d.Outstanding)
	}
	return b.String()
}

// FormatFigure4 renders the found-vs-fixed cumulative series.
func FormatFigure4(o *Outcome) string {
	var b strings.Builder
	b.WriteString("day,created,resolved\n")
	for _, d := range o.Days {
		fmt.Fprintf(&b, "%d,%d,%d\n", d.Day, d.CreatedCum, d.ResolvedCum)
	}
	return b.String()
}

// FormatSummary renders the §3.5 aggregates next to the paper's.
func FormatSummary(s Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %10s %10s\n", "metric", "simulated", "paper")
	fmt.Fprintf(&b, "%-34s %10d %10s\n", "unique races detected", s.UniqueRaces, "~2000")
	fmt.Fprintf(&b, "%-34s %10d %10d\n", "races fixed", s.FixedRaces, 1011)
	fmt.Fprintf(&b, "%-34s %10d %10d\n", "unique patches", s.UniquePatches, 790)
	fmt.Fprintf(&b, "%-34s %10d %10d\n", "unique fixing engineers", s.UniqueFixers, 210)
	fmt.Fprintf(&b, "%-34s %10.1f %10s\n", "new races filed/day (late phase)", s.NewRacesPerDay, "~5")
	fmt.Fprintf(&b, "%-34s %9.1f%% %10s\n", "unique root causes (patch/fixed)", s.UniqueRootCausePct, "~78%")
	return b.String()
}
