package pipeline

import (
	"strings"
	"testing"

	"gorace/internal/core"
	"gorace/internal/patterns"
	"gorace/internal/report"
)

func manifestOne(t *testing.T, id string) report.Race {
	t.Helper()
	p, ok := patterns.ByID(id)
	if !ok {
		t.Fatalf("pattern %s missing", id)
	}
	runner := core.NewRunner(core.WithMaxSteps(1 << 16))
	for seed := int64(0); seed < 80; seed++ {
		out, err := runner.RunSeed(p.Racy, seed)
		if err != nil {
			t.Fatal(err)
		}
		if out.HasRace() {
			return out.Races[0]
		}
	}
	t.Fatal("race never manifested")
	return report.Race{}
}

func TestTaskRendersAllSections(t *testing.T) {
	r := manifestOne(t, "capture-err")
	org := newTestOrg()
	a := org.Assign(org.RandomFile(), org.RandomFile(), 3)
	task := NewTask(42, "rev-abc123", r, a,
		"go run ./cmd/racedetect -pattern capture-err -seeds 80")
	s := task.String()
	for _, want := range []string{
		"DATA RACE DEFECT #42",
		"source version: rev-abc123",
		"assignee: " + a.Engineer.ID,
		"WARNING: DATA RACE",
		"to reproduce:",
		"assignment rationale:",
		"candidate owners considered:",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("task missing %q\n%s", want, s)
		}
	}
	if task.Hash != r.Hash() {
		t.Error("task hash differs from report hash")
	}
}

func TestTaskWithoutAssignee(t *testing.T) {
	r := manifestOne(t, "capture-err")
	task := NewTask(1, "rev-x", r, Assignment{}, "")
	if task.Assignee != "" {
		t.Fatal("phantom assignee")
	}
	if strings.Contains(task.String(), "to reproduce") {
		t.Fatal("empty repro command rendered")
	}
}
