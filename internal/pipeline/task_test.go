package pipeline

import (
	"strings"
	"testing"

	"gorace/internal/detector"
	"gorace/internal/patterns"
	"gorace/internal/report"
	"gorace/internal/sched"
	"gorace/internal/trace"
)

func manifestOne(t *testing.T, id string) report.Race {
	t.Helper()
	p, ok := patterns.ByID(id)
	if !ok {
		t.Fatalf("pattern %s missing", id)
	}
	for seed := int64(0); seed < 80; seed++ {
		ft := detector.NewFastTrack()
		sched.Run(p.Racy, sched.Options{
			Strategy: sched.NewRandom(), Seed: seed, MaxSteps: 1 << 16,
			Listeners: []trace.Listener{ft},
		})
		if ft.RaceCount() > 0 {
			return ft.Races()[0]
		}
	}
	t.Fatal("race never manifested")
	return report.Race{}
}

func TestTaskRendersAllSections(t *testing.T) {
	r := manifestOne(t, "capture-err")
	org := newTestOrg()
	a := org.Assign(org.RandomFile(), org.RandomFile(), 3)
	task := NewTask(42, "rev-abc123", r, a,
		"go run ./cmd/racedetect -pattern capture-err -seeds 80")
	s := task.String()
	for _, want := range []string{
		"DATA RACE DEFECT #42",
		"source version: rev-abc123",
		"assignee: " + a.Engineer.ID,
		"WARNING: DATA RACE",
		"to reproduce:",
		"assignment rationale:",
		"candidate owners considered:",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("task missing %q\n%s", want, s)
		}
	}
	if task.Hash != r.Hash() {
		t.Error("task hash differs from report hash")
	}
}

func TestTaskWithoutAssignee(t *testing.T) {
	r := manifestOne(t, "capture-err")
	task := NewTask(1, "rev-x", r, Assignment{}, "")
	if task.Assignee != "" {
		t.Fatal("phantom assignee")
	}
	if strings.Contains(task.String(), "to reproduce") {
		t.Fatal("empty repro command rendered")
	}
}
