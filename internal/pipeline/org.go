package pipeline

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Engineer is one member of the synthetic organization.
type Engineer struct {
	ID          string
	Team        string
	DepartedDay int // day the engineer left the org; -1 = still active
}

// Active reports whether the engineer is present on the given day.
func (e *Engineer) Active(day int) bool {
	return e.DepartedDay < 0 || day < e.DepartedDay
}

// Org models the organization §3.3.2's assignee heuristic navigates:
// file ownership, team metadata, frequent modifiers, and churn.
type Org struct {
	Engineers []*Engineer
	teams     []string
	// owner maps a source file to the engineer who last modified it.
	owner map[string]*Engineer
	// modifiers maps a source file to engineers who frequently touch it.
	modifiers map[string][]*Engineer
	// fileTeam is the owning-team metadata attached to the source.
	fileTeam map[string]string
	files    []string
	rng      *rand.Rand
}

// NewOrg builds an organization with engineers spread over teams and
// nFiles source files with zipf-ish ownership concentration (a few
// prolific engineers own many files, as in a real monorepo).
func NewOrg(nEngineers, nTeams, nFiles int, churnRate float64, days int, seed int64) *Org {
	rng := rand.New(rand.NewSource(seed))
	o := &Org{
		owner:     make(map[string]*Engineer),
		modifiers: make(map[string][]*Engineer),
		fileTeam:  make(map[string]string),
		rng:       rng,
	}
	for t := 0; t < nTeams; t++ {
		o.teams = append(o.teams, fmt.Sprintf("team-%02d", t))
	}
	for i := 0; i < nEngineers; i++ {
		e := &Engineer{
			ID:          fmt.Sprintf("eng-%03d", i),
			Team:        o.teams[i%nTeams],
			DepartedDay: -1,
		}
		// Churn: a fraction of engineers leave at a random day.
		if rng.Float64() < churnRate {
			e.DepartedDay = rng.Intn(days)
		}
		o.Engineers = append(o.Engineers, e)
	}
	// Zipf-like ownership: engineer k owns files proportional to 1/(k+1).
	zipf := make([]float64, nEngineers)
	sum := 0.0
	for i := range zipf {
		zipf[i] = 1 / math.Sqrt(float64(i+1))
		sum += zipf[i]
	}
	pick := func() *Engineer {
		u := rng.Float64() * sum
		acc := 0.0
		for i, w := range zipf {
			acc += w
			if u <= acc {
				return o.Engineers[i]
			}
		}
		return o.Engineers[len(o.Engineers)-1]
	}
	for f := 0; f < nFiles; f++ {
		name := fmt.Sprintf("svc%03d/file%04d.go", f%97, f)
		o.files = append(o.files, name)
		own := pick()
		o.owner[name] = own
		o.fileTeam[name] = own.Team
		mods := []*Engineer{own}
		for m := 0; m < 2; m++ {
			mods = append(mods, pick())
		}
		o.modifiers[name] = mods
	}
	return o
}

// RandomFile returns a synthetic source file, weighted uniformly.
func (o *Org) RandomFile() string {
	return o.files[o.rng.Intn(len(o.files))]
}

// Assignment is the result of the assignee heuristic, including the
// rationale log the paper found "useful to the developers, rather than
// simply assigning without explaining why".
type Assignment struct {
	Engineer   *Engineer
	Rationale  []string
	Candidates []string
}

// Assign picks the developer responsible for a race whose two stacks
// are rooted in rootFileA and rootFileB, on the given day. Per §3.3.2
// the heuristic prefers the owners of the *root* nodes of the call
// stacks (they "have a stake in the functional correctness of their
// code"), falling back to frequent modifiers, then the owning team,
// when churn has invalidated the direct owner.
func (o *Org) Assign(rootFileA, rootFileB string, day int) Assignment {
	var a Assignment
	addCand := func(e *Engineer, why string) {
		a.Candidates = append(a.Candidates, fmt.Sprintf("%s (%s)", e.ID, why))
	}
	try := func(e *Engineer, why string) bool {
		if e == nil {
			return false
		}
		addCand(e, why)
		if !e.Active(day) {
			a.Rationale = append(a.Rationale, fmt.Sprintf("%s skipped: departed on day %d", e.ID, e.DepartedDay))
			return false
		}
		a.Engineer = e
		a.Rationale = append(a.Rationale, fmt.Sprintf("assigned to %s: %s", e.ID, why))
		return true
	}

	if try(o.owner[rootFileA], "owner of root of first stack "+rootFileA) {
		return a
	}
	if try(o.owner[rootFileB], "owner of root of second stack "+rootFileB) {
		return a
	}
	for _, f := range []string{rootFileA, rootFileB} {
		for _, m := range o.modifiers[f] {
			if try(m, "frequent modifier of "+f) {
				return a
			}
		}
	}
	// Team fallback: any active engineer on the owning team.
	for _, f := range []string{rootFileA, rootFileB} {
		team := o.fileTeam[f]
		for _, e := range o.Engineers {
			if e.Team == team && e.Active(day) {
				if try(e, "member of owning team "+team) {
					return a
				}
			}
		}
	}
	// Last resort: triage queue (first active engineer).
	for _, e := range o.Engineers {
		if e.Active(day) {
			a.Engineer = e
			a.Rationale = append(a.Rationale, "fallback: triage queue")
			return a
		}
	}
	a.Rationale = append(a.Rationale, "no active engineer found")
	return a
}

// ActiveCount returns the number of engineers present on day.
func (o *Org) ActiveCount(day int) int {
	n := 0
	for _, e := range o.Engineers {
		if e.Active(day) {
			n++
		}
	}
	return n
}

// TeamSizes returns team name → active size on day, sorted by name in
// the keys slice for deterministic iteration in reports.
func (o *Org) TeamSizes(day int) (map[string]int, []string) {
	m := make(map[string]int)
	for _, e := range o.Engineers {
		if e.Active(day) {
			m[e.Team]++
		}
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return m, keys
}
