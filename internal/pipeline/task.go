package pipeline

import (
	"fmt"
	"strings"

	"gorace/internal/report"
)

// Task is the defect filed for a detected race, carrying what §3.3–3.4
// say a report must contain: the source version the race was detected
// on, the two conflicting stack traces with access types, and the
// instructions to reproduce the underlying race, plus the assignee and
// the log of how the heuristic chose them.
type Task struct {
	ID            int
	Hash          string
	SourceVersion string
	Race          report.Race
	Assignee      string
	Rationale     []string
	Candidates    []string
	ReproCmd      string
}

// NewTask builds a task from a detected race and an assignment.
func NewTask(id int, sourceVersion string, r report.Race, a Assignment, reproCmd string) Task {
	t := Task{
		ID:            id,
		Hash:          r.Hash(),
		SourceVersion: sourceVersion,
		Race:          r,
		Rationale:     a.Rationale,
		Candidates:    a.Candidates,
		ReproCmd:      reproCmd,
	}
	if a.Engineer != nil {
		t.Assignee = a.Engineer.ID
	}
	return t
}

// String renders the task body as it would be filed to the bug
// tracker.
func (t Task) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DATA RACE DEFECT #%d (hash %s)\n", t.ID, t.Hash)
	fmt.Fprintf(&b, "source version: %s\n", t.SourceVersion)
	fmt.Fprintf(&b, "assignee: %s\n", t.Assignee)
	if len(t.Candidates) > 0 {
		fmt.Fprintf(&b, "candidate owners considered:\n")
		for _, c := range t.Candidates {
			fmt.Fprintf(&b, "  - %s\n", c)
		}
	}
	if len(t.Rationale) > 0 {
		fmt.Fprintf(&b, "assignment rationale:\n")
		for _, r := range t.Rationale {
			fmt.Fprintf(&b, "  - %s\n", r)
		}
	}
	b.WriteString("\n")
	b.WriteString(t.Race.String())
	if t.ReproCmd != "" {
		fmt.Fprintf(&b, "\nto reproduce:\n  %s\n", t.ReproCmd)
	}
	return b.String()
}
