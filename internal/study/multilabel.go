package study

import (
	"fmt"
	"strings"

	"gorace/internal/patterns"
	"gorace/internal/sweep"
)

// MultiLabelResult quantifies §4.10's remark that the study's
// "labelings are not mutually exclusive; sometimes, multiple labels
// were assigned to the same bug".
type MultiLabelResult struct {
	Instances   int
	MultiLabel  int     // instances whose reports carry ≥2 labels
	AvgLabels   float64 // mean labels per classified instance
	PairCounts  map[string]int
	SecondaryOK int // instances whose declared secondary label appears
	SecondaryN  int // instances that declare a secondary label
}

// RunMultiLabel classifies one manifesting run of every corpus pattern
// (excluding the fix-strategy entries) and tallies label multiplicity.
// Like RunTable23, the whole sweep is one campaign: a halt-on-race
// unit per pattern, labeled by the streaming classifier aggregator.
func RunMultiLabel(seed int64) *MultiLabelResult {
	res := &MultiLabelResult{PairCounts: make(map[string]int)}

	var units []sweep.Unit
	var pats []patterns.Pattern // parallel to units
	for _, p := range patterns.All() {
		if fixCats[p.Cat] {
			continue
		}
		units = append(units, instanceUnit(p.ID, p.Racy, seed))
		pats = append(pats, p)
	}
	aggs, _, err := sweep.New().Run(units,
		func() sweep.Aggregator { return &classifyAgg{} })
	if err != nil {
		panic(err) // default registry names; cannot fail
	}
	labels := aggs[0].(*classifyAgg)

	totalLabels := 0
	for i, p := range pats {
		cats, ok := labels.labels(i)
		if !ok {
			continue
		}
		res.Instances++
		totalLabels += len(cats)
		if len(cats) >= 2 {
			res.MultiLabel++
			key := fmt.Sprintf("%s+%s", cats[0], cats[1])
			res.PairCounts[key]++
		}
		if len(p.Secondary) > 0 {
			res.SecondaryN++
			for _, want := range p.Secondary {
				for _, got := range cats {
					if got == want {
						res.SecondaryOK++
						want = "" // count each instance once
						break
					}
				}
				if want == "" {
					break
				}
			}
		}
	}
	if res.Instances > 0 {
		res.AvgLabels = float64(totalLabels) / float64(res.Instances)
	}
	return res
}

// Format renders the multi-label summary.
func (m *MultiLabelResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "multi-label study (§4.10: labels are not mutually exclusive)\n")
	fmt.Fprintf(&b, "instances classified:        %d\n", m.Instances)
	fmt.Fprintf(&b, "with ≥2 labels:              %d\n", m.MultiLabel)
	fmt.Fprintf(&b, "mean labels per instance:    %.2f\n", m.AvgLabels)
	if m.SecondaryN > 0 {
		fmt.Fprintf(&b, "declared secondaries found:  %d/%d\n", m.SecondaryOK, m.SecondaryN)
	}
	return b.String()
}
