package study

import (
	"fmt"
	"strings"

	"gorace/internal/classify"
	"gorace/internal/patterns"
	"gorace/internal/taxonomy"
)

// MultiLabelResult quantifies §4.10's remark that the study's
// "labelings are not mutually exclusive; sometimes, multiple labels
// were assigned to the same bug".
type MultiLabelResult struct {
	Instances   int
	MultiLabel  int     // instances whose reports carry ≥2 labels
	AvgLabels   float64 // mean labels per classified instance
	PairCounts  map[string]int
	SecondaryOK int // instances whose declared secondary label appears
	SecondaryN  int // instances that declare a secondary label
}

// RunMultiLabel classifies one manifesting run of every corpus pattern
// (excluding the fix-strategy entries) and tallies label multiplicity.
func RunMultiLabel(seed int64) *MultiLabelResult {
	res := &MultiLabelResult{PairCounts: make(map[string]int)}
	totalLabels := 0
	for _, p := range patterns.All() {
		if fixCats[p.Cat] {
			continue
		}
		cats, ok := classifyInstanceAll(p, seed)
		if !ok {
			continue
		}
		res.Instances++
		totalLabels += len(cats)
		if len(cats) >= 2 {
			res.MultiLabel++
			key := fmt.Sprintf("%s+%s", cats[0], cats[1])
			res.PairCounts[key]++
		}
		if len(p.Secondary) > 0 {
			res.SecondaryN++
			for _, want := range p.Secondary {
				for _, got := range cats {
					if got == want {
						res.SecondaryOK++
						want = "" // count each instance once
						break
					}
				}
				if want == "" {
					break
				}
			}
		}
	}
	if res.Instances > 0 {
		res.AvgLabels = float64(totalLabels) / float64(res.Instances)
	}
	return res
}

// classifyInstanceAll returns the full ordered label list of the first
// manifesting report union, across reports of the manifesting run.
func classifyInstanceAll(p patterns.Pattern, base int64) ([]taxonomy.Category, bool) {
	const maxSeeds = 60
	for s := int64(0); s < maxSeeds; s++ {
		res, err := instanceRunner.RunSeed(p.Racy, base+s)
		if err != nil {
			panic(err) // default registry names; cannot fail
		}
		if !res.HasRace() {
			continue
		}
		hints := classify.HintsFromTrace(res.Trace.Events)
		var out []taxonomy.Category
		seen := make(map[taxonomy.Category]bool)
		for _, r := range res.Races {
			// The missing-lock label is the classifier's universal
			// fallback; as a *secondary* label it only carries signal
			// when the race shows partial locking (one side holds a
			// lock the other does not).
			partialLocking := (len(r.First.Locks) > 0) != (len(r.Second.Locks) > 0) ||
				(len(r.First.Locks) > 0 && len(r.Second.Locks) > 0)
			for _, c := range classify.Classify(r, hints) {
				if c == taxonomy.CatMissingLock && len(out) > 0 && !partialLocking {
					continue
				}
				if !seen[c] {
					seen[c] = true
					out = append(out, c)
				}
			}
		}
		return out, true
	}
	return nil, false
}

// Format renders the multi-label summary.
func (m *MultiLabelResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "multi-label study (§4.10: labels are not mutually exclusive)\n")
	fmt.Fprintf(&b, "instances classified:        %d\n", m.Instances)
	fmt.Fprintf(&b, "with ≥2 labels:              %d\n", m.MultiLabel)
	fmt.Fprintf(&b, "mean labels per instance:    %.2f\n", m.AvgLabels)
	if m.SecondaryN > 0 {
		fmt.Fprintf(&b, "declared secondaries found:  %d/%d\n", m.SecondaryOK, m.SecondaryN)
	}
	return b.String()
}
