package study

import (
	"strings"
	"testing"

	"gorace/internal/taxonomy"
)

func TestTable23RegeneratesPaperCounts(t *testing.T) {
	// Full-scale regeneration: every category's simulated count must
	// land near its paper count. Classification noise moves a few
	// instances between related rows, so allow ±20% plus slack of 4
	// for the small rows.
	r := RunTable23(1.0, 1)
	check := func(rows []Row) {
		t.Helper()
		for _, row := range rows {
			want := row.Entry.PaperCount
			slack := want/5 + 4
			if row.Simulated < want-slack || row.Simulated > want+slack {
				t.Errorf("%s: simulated %d, paper %d (±%d)",
					row.Entry.Description, row.Simulated, want, slack)
			}
		}
	}
	check(r.Table2)
	check(r.Table3)

	if r.Accuracy < 0.9 {
		t.Errorf("classifier accuracy %.2f, want ≥ 0.9", r.Accuracy)
	}
	// Observation 3 parent row: 121 capture races in the paper.
	if r.CaptureTotal < 100 || r.CaptureTotal > 145 {
		t.Errorf("capture total = %d, paper reports 121", r.CaptureTotal)
	}
	if r.Population < 1500 {
		// Σ of all table rows (2 and 3) at scale 1.
		t.Errorf("population = %d", r.Population)
	}
	if r.Manifested < r.Population*95/100 {
		t.Errorf("only %d/%d instances manifested", r.Manifested, r.Population)
	}
}

func TestScaleControlsPopulation(t *testing.T) {
	small := RunTable23(0.1, 1)
	full := RunTable23(1.0, 1)
	if small.Population >= full.Population {
		t.Fatalf("scale had no effect: %d vs %d", small.Population, full.Population)
	}
	if got := RunTable23(0, 1); got.Population == 0 {
		t.Fatal("zero scale should default to full scale")
	}
}

func TestFixStrategyRowsCountedFromMetadata(t *testing.T) {
	r := RunTable23(1.0, 2)
	byCat := make(map[taxonomy.Category]int)
	for _, row := range r.Table3 {
		byCat[row.Entry.Cat] = row.Simulated
	}
	if byCat[taxonomy.CatFixRemovedConc] == 0 ||
		byCat[taxonomy.CatFixDisabledTest] == 0 ||
		byCat[taxonomy.CatFixRefactor] == 0 {
		t.Fatalf("fix-strategy rows empty: %v", byCat)
	}
}

func TestFormatRendersBothTables(t *testing.T) {
	r := RunTable23(0.05, 3)
	s := r.Format(0.05)
	for _, want := range []string{"Table 2", "Table 3", "Concurrent slice access",
		"Missing or partial locking", "classifier-accuracy"} {
		if !strings.Contains(s, want) {
			t.Errorf("format missing %q", want)
		}
	}
}

func TestOverheadResultSlowdown(t *testing.T) {
	o := OverheadResult{Detector: "fasttrack", Baseline: 2, WithDet: 8}
	if o.Slowdown() != 4 {
		t.Fatalf("slowdown = %f", o.Slowdown())
	}
	if (OverheadResult{}).Slowdown() != 0 {
		t.Fatal("zero baseline should give 0")
	}
}

func TestMultiLabelStudy(t *testing.T) {
	m := RunMultiLabel(3)
	if m.Instances < 20 {
		t.Fatalf("only %d instances classified", m.Instances)
	}
	if m.MultiLabel == 0 {
		t.Fatal("no multi-labeled instance — the paper's §4.10 remark should reproduce")
	}
	if m.AvgLabels < 1 {
		t.Fatalf("avg labels %.2f < 1", m.AvgLabels)
	}
	if m.SecondaryN > 0 && m.SecondaryOK == 0 {
		t.Fatal("no declared secondary label ever recovered")
	}
	if !strings.Contains(m.Format(), "multi-label") {
		t.Fatal("format broken")
	}
}
