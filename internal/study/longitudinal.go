package study

import (
	"fmt"
	"sort"
	"strings"

	"gorace/internal/taxonomy"
)

// This file is the longitudinal counterpart of the Table 2/3
// regeneration: instead of classifying a synthetic population built
// for one experiment, it tabulates the root-cause labels accumulated
// in a persistent race corpus (internal/corpus) across many runs —
// the shape of the paper's own study, which read its categories off
// months of deduplicated production reports.

// CorpusBreakdown renders per-category defect counts from an
// accumulated corpus next to the paper's published row counts, in
// descending corpus order. Categories the paper does not tabulate
// (e.g. "unknown") print without a paper column.
func CorpusBreakdown(counts map[taxonomy.Category]int) string {
	if len(counts) == 0 {
		return "no classified defects\n"
	}
	cats := make([]taxonomy.Category, 0, len(counts))
	total := 0
	for c, n := range counts {
		cats = append(cats, c)
		total += n
	}
	sort.Slice(cats, func(i, j int) bool {
		if counts[cats[i]] != counts[cats[j]] {
			return counts[cats[i]] > counts[cats[j]]
		}
		return cats[i] < cats[j]
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %8s %8s %10s\n", "category", "defects", "share", "paper n")
	for _, c := range cats {
		n := counts[c]
		paper := ""
		if e, ok := taxonomy.ByCategory(c); ok {
			paper = fmt.Sprintf("%d", e.PaperCount)
		}
		fmt.Fprintf(&b, "%-24s %8d %7.1f%% %10s\n", c, n, 100*float64(n)/float64(total), paper)
	}
	fmt.Fprintf(&b, "%-24s %8d\n", "total", total)
	return b.String()
}
