// Package study regenerates the paper's Tables 2 and 3: the root-cause
// breakdown of the 1011 fixed data races.
//
// The original table was produced by hand-labeling races fixed in a
// proprietary codebase. The reproduction builds a synthetic population
// of fixed races by instantiating corpus patterns at the paper's
// category frequencies, runs each instance under the happens-before
// detector until its race manifests, classifies the resulting reports
// with internal/classify, and tabulates primary labels. The three
// fix-strategy rows of Table 3 (removed concurrency, disabled tests,
// major refactor) are taken from patch metadata, as in the paper —
// they describe the fix, not the race, and are not inferable from a
// race report.
package study

import (
	"fmt"
	"strings"

	"gorace/internal/classify"
	"gorace/internal/core"
	"gorace/internal/patterns"
	"gorace/internal/sched"
	"gorace/internal/sweep"
	"gorace/internal/taxonomy"
)

// Every study run uses random schedules, recorded traces (the
// classifier needs hints), bounded steps, and a bounded seed search
// per instance: instanceUnit expresses that as a sweep work unit, and
// one campaign executes the whole population.
const (
	instanceMaxSeeds = 60
	instanceMaxSteps = 1 << 16
)

// instanceUnit is the work unit of one population instance: hunt the
// instance's race across its seed range, stopping at the first
// manifestation.
func instanceUnit(id string, prog func(*sched.G), base int64) sweep.Unit {
	return sweep.Unit{
		ID: id, Program: prog, BaseSeed: base, Runs: instanceMaxSeeds,
		MaxSteps: instanceMaxSteps, Record: true, HaltOnRace: true,
	}
}

// Row is one table row: the paper's entry and the regenerated count.
type Row struct {
	Entry     taxonomy.Entry
	Simulated int
}

// Result is the regenerated Tables 2 and 3.
type Result struct {
	Table2     []Row
	Table3     []Row
	Population int     // synthetic fixed races instantiated
	Manifested int     // instances whose race manifested under detection
	Accuracy   float64 // fraction of cause-category instances classified correctly
	// CaptureTotal is the regenerated Observation 3 parent row
	// (paper: 121 = err + loop + named + other captures).
	CaptureTotal int
}

// fixCats identifies fix-strategy rows, counted from patch metadata.
var fixCats = map[taxonomy.Category]bool{
	taxonomy.CatFixRemovedConc:  true,
	taxonomy.CatFixDisabledTest: true,
	taxonomy.CatFixRefactor:     true,
}

// RunTable23 regenerates the tables at the given population scale
// (1.0 = the paper's 1011 fixed races; smaller scales run faster).
// The whole population executes as one sweep campaign: each cause
// instance is a halt-on-race unit, and a streaming classifier
// aggregator labels every instance's first manifesting run.
func RunTable23(scale float64, seed int64) *Result {
	if scale <= 0 {
		scale = 1
	}
	counts := make(map[taxonomy.Category]int)
	correct, causeTotal := 0, 0
	population, manifested := 0, 0

	var units []sweep.Unit
	var expected []taxonomy.Category // expected label, parallel to units
	for _, entry := range taxonomy.Entries {
		n := int(float64(entry.PaperCount)*scale + 0.5)
		pats := patterns.ByCategory(entry.Cat)
		if len(pats) == 0 || n == 0 {
			continue
		}
		for i := 0; i < n; i++ {
			population++
			p := pats[i%len(pats)]
			if fixCats[entry.Cat] {
				// Labeled from the patch ("fixed by removing
				// concurrency" etc.), not from the race report.
				counts[entry.Cat]++
				manifested++
				continue
			}
			units = append(units, instanceUnit(
				fmt.Sprintf("%s#%d", entry.Cat, i), p.Racy,
				seed+int64(population)*101))
			expected = append(expected, entry.Cat)
		}
	}

	aggs, _, err := sweep.New().Run(units,
		func() sweep.Aggregator { return &classifyAgg{} })
	if err != nil {
		panic(err) // default registry names; cannot fail
	}
	labels := aggs[0].(*classifyAgg)
	for i := range units {
		cats, ok := labels.labels(i)
		if !ok {
			continue
		}
		manifested++
		counts[cats[0]]++
		causeTotal++
		if cats[0] == expected[i] {
			correct++
		}
	}

	res := &Result{Population: population, Manifested: manifested}
	if causeTotal > 0 {
		res.Accuracy = float64(correct) / float64(causeTotal)
	}
	for _, e := range taxonomy.TableEntries(2) {
		res.Table2 = append(res.Table2, Row{Entry: e, Simulated: counts[e.Cat]})
	}
	for _, e := range taxonomy.TableEntries(3) {
		res.Table3 = append(res.Table3, Row{Entry: e, Simulated: counts[e.Cat]})
	}
	res.CaptureTotal = counts[taxonomy.CatCaptureErr] + counts[taxonomy.CatCaptureLoop] +
		counts[taxonomy.CatCaptureNamedReturn] + counts[taxonomy.CatCaptureOther]
	return res
}

// classifyAgg is a study-specific sweep.Aggregator: it classifies
// each unit's first manifesting run *as the campaign streams* and
// keeps only the ordered label list — the outcome and its trace are
// classified on a worker and dropped, so a full-scale population
// never holds more than a shard's worth of traces in memory. The
// per-unit earliest-wins bookkeeping (shared with sweep.FirstRace and
// sweep.Tally) lives in sweep.Earliest; classification is
// deterministic given an outcome, so the aggregate is reproducible at
// any parallelism.
type classifyAgg struct {
	first sweep.Earliest[[]taxonomy.Category]
}

// Observe implements sweep.Aggregator.
func (c *classifyAgg) Observe(r sweep.Run) {
	if !r.Outcome.HasRace() || !c.first.Wants(r.UnitIdx, r.SeedIdx) {
		return
	}
	c.first.Take(r.UnitIdx, r.SeedIdx, labelOutcome(r.Outcome))
}

// Merge implements sweep.Aggregator.
func (c *classifyAgg) Merge(next sweep.Aggregator) {
	c.first.MergeFrom(&next.(*classifyAgg).first)
}

// labels returns the ordered label list of the unit's first
// manifesting run; ok is false if the instance's race never
// manifested within its seed budget. The first label is the primary
// (the first report is usually the defining access pair).
func (c *classifyAgg) labels(unitIdx int) ([]taxonomy.Category, bool) {
	return c.first.Get(unitIdx)
}

// labelOutcome computes the ordered label union across the
// manifesting run's reports (§4.10: labelings are not mutually
// exclusive).
func labelOutcome(out *core.Outcome) []taxonomy.Category {
	hints := classify.HintsFromTrace(out.Trace.Events)
	var cats []taxonomy.Category
	seen := make(map[taxonomy.Category]bool)
	for _, r := range out.Races {
		// The missing-lock label is the classifier's universal
		// fallback; as a *secondary* label it only carries signal
		// when the race shows partial locking (one side holds a
		// lock the other does not).
		partialLocking := (len(r.First.Locks) > 0) != (len(r.Second.Locks) > 0) ||
			(len(r.First.Locks) > 0 && len(r.Second.Locks) > 0)
		for _, cat := range classify.Classify(r, hints) {
			if cat == taxonomy.CatMissingLock && len(cats) > 0 && !partialLocking {
				continue
			}
			if !seen[cat] {
				seen[cat] = true
				cats = append(cats, cat)
			}
		}
	}
	return cats
}

// Format renders the regenerated tables beside the paper's counts.
func (r *Result) Format(scale float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: races due to Go language features and idioms (scale %.2f)\n", scale)
	fmt.Fprintf(&b, "%-4s %-55s %8s %10s\n", "Obs", "Description", "paper", "simulated")
	fmt.Fprintf(&b, "%-4d %-55s %8d %10d\n", 3, "Accidental capture-by-reference (all forms)",
		taxonomy.Table2CaptureTotal, r.CaptureTotal)
	for _, row := range r.Table2 {
		fmt.Fprintf(&b, "%-4d %-55s %8d %10d\n",
			row.Entry.Observation, row.Entry.Description, row.Entry.PaperCount, row.Simulated)
	}
	fmt.Fprintf(&b, "\nTable 3: races due to language-agnostic reasons\n")
	fmt.Fprintf(&b, "%-4s %-55s %8s %10s\n", "", "Description", "paper", "simulated")
	for _, row := range r.Table3 {
		fmt.Fprintf(&b, "%-4s %-55s %8d %10d\n",
			"", row.Entry.Description, row.Entry.PaperCount, row.Simulated)
	}
	fmt.Fprintf(&b, "\npopulation=%d manifested=%d classifier-accuracy=%.1f%%\n",
		r.Population, r.Manifested, 100*r.Accuracy)
	return b.String()
}

// OverheadResult is the E8 measurement: detector cost relative to the
// uninstrumented-run baseline, the reproduction of §3.5's "25 minutes
// ... increases by 4× to about 100 minutes" and the TSan 2×–20×
// figure.
type OverheadResult struct {
	Detector string
	Baseline float64 // seconds, detector "none"
	WithDet  float64 // seconds, detector enabled
}

// Slowdown returns the ratio.
func (o OverheadResult) Slowdown() float64 {
	if o.Baseline == 0 {
		return 0
	}
	return o.WithDet / o.Baseline
}
