// Package study regenerates the paper's Tables 2 and 3: the root-cause
// breakdown of the 1011 fixed data races.
//
// The original table was produced by hand-labeling races fixed in a
// proprietary codebase. The reproduction builds a synthetic population
// of fixed races by instantiating corpus patterns at the paper's
// category frequencies, runs each instance under the happens-before
// detector until its race manifests, classifies the resulting reports
// with internal/classify, and tabulates primary labels. The three
// fix-strategy rows of Table 3 (removed concurrency, disabled tests,
// major refactor) are taken from patch metadata, as in the paper —
// they describe the fix, not the race, and are not inferable from a
// race report.
package study

import (
	"fmt"
	"strings"

	"gorace/internal/classify"
	"gorace/internal/core"
	"gorace/internal/patterns"
	"gorace/internal/taxonomy"
)

// instanceRunner drives every study run: random schedules, recorded
// traces (the classifier needs hints), bounded steps.
var instanceRunner = core.NewRunner(
	core.WithRecord(true),
	core.WithMaxSteps(1<<16),
)

// Row is one table row: the paper's entry and the regenerated count.
type Row struct {
	Entry     taxonomy.Entry
	Simulated int
}

// Result is the regenerated Tables 2 and 3.
type Result struct {
	Table2     []Row
	Table3     []Row
	Population int     // synthetic fixed races instantiated
	Manifested int     // instances whose race manifested under detection
	Accuracy   float64 // fraction of cause-category instances classified correctly
	// CaptureTotal is the regenerated Observation 3 parent row
	// (paper: 121 = err + loop + named + other captures).
	CaptureTotal int
}

// fixCats identifies fix-strategy rows, counted from patch metadata.
var fixCats = map[taxonomy.Category]bool{
	taxonomy.CatFixRemovedConc:  true,
	taxonomy.CatFixDisabledTest: true,
	taxonomy.CatFixRefactor:     true,
}

// RunTable23 regenerates the tables at the given population scale
// (1.0 = the paper's 1011 fixed races; smaller scales run faster).
func RunTable23(scale float64, seed int64) *Result {
	if scale <= 0 {
		scale = 1
	}
	counts := make(map[taxonomy.Category]int)
	correct, causeTotal := 0, 0
	population, manifested := 0, 0

	for _, entry := range taxonomy.Entries {
		n := int(float64(entry.PaperCount)*scale + 0.5)
		pats := patterns.ByCategory(entry.Cat)
		if len(pats) == 0 || n == 0 {
			continue
		}
		for i := 0; i < n; i++ {
			population++
			p := pats[i%len(pats)]
			if fixCats[entry.Cat] {
				// Labeled from the patch ("fixed by removing
				// concurrency" etc.), not from the race report.
				counts[entry.Cat]++
				manifested++
				continue
			}
			cat, ok := classifyInstance(p, seed+int64(population)*101)
			if !ok {
				continue
			}
			manifested++
			counts[cat]++
			causeTotal++
			if cat == entry.Cat {
				correct++
			}
		}
	}

	res := &Result{Population: population, Manifested: manifested}
	if causeTotal > 0 {
		res.Accuracy = float64(correct) / float64(causeTotal)
	}
	for _, e := range taxonomy.TableEntries(2) {
		res.Table2 = append(res.Table2, Row{Entry: e, Simulated: counts[e.Cat]})
	}
	for _, e := range taxonomy.TableEntries(3) {
		res.Table3 = append(res.Table3, Row{Entry: e, Simulated: counts[e.Cat]})
	}
	res.CaptureTotal = counts[taxonomy.CatCaptureErr] + counts[taxonomy.CatCaptureLoop] +
		counts[taxonomy.CatCaptureNamedReturn] + counts[taxonomy.CatCaptureOther]
	return res
}

// classifyInstance runs one pattern instance until its race manifests
// (bounded seed search) and returns the classified primary category.
func classifyInstance(p patterns.Pattern, base int64) (taxonomy.Category, bool) {
	const maxSeeds = 60
	for s := int64(0); s < maxSeeds; s++ {
		out, err := instanceRunner.RunSeed(p.Racy, base+s)
		if err != nil {
			panic(err) // default registry names; cannot fail
		}
		if !out.HasRace() {
			continue
		}
		hints := classify.HintsFromTrace(out.Trace.Events)
		// Classify every report and keep the most specific primary
		// (the first report is usually the defining access pair).
		return classify.Primary(out.Races[0], hints), true
	}
	return taxonomy.CatUnknown, false
}

// Format renders the regenerated tables beside the paper's counts.
func (r *Result) Format(scale float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: races due to Go language features and idioms (scale %.2f)\n", scale)
	fmt.Fprintf(&b, "%-4s %-55s %8s %10s\n", "Obs", "Description", "paper", "simulated")
	fmt.Fprintf(&b, "%-4d %-55s %8d %10d\n", 3, "Accidental capture-by-reference (all forms)",
		taxonomy.Table2CaptureTotal, r.CaptureTotal)
	for _, row := range r.Table2 {
		fmt.Fprintf(&b, "%-4d %-55s %8d %10d\n",
			row.Entry.Observation, row.Entry.Description, row.Entry.PaperCount, row.Simulated)
	}
	fmt.Fprintf(&b, "\nTable 3: races due to language-agnostic reasons\n")
	fmt.Fprintf(&b, "%-4s %-55s %8s %10s\n", "", "Description", "paper", "simulated")
	for _, row := range r.Table3 {
		fmt.Fprintf(&b, "%-4s %-55s %8d %10d\n",
			"", row.Entry.Description, row.Entry.PaperCount, row.Simulated)
	}
	fmt.Fprintf(&b, "\npopulation=%d manifested=%d classifier-accuracy=%.1f%%\n",
		r.Population, r.Manifested, 100*r.Accuracy)
	return b.String()
}

// OverheadResult is the E8 measurement: detector cost relative to the
// uninstrumented-run baseline, the reproduction of §3.5's "25 minutes
// ... increases by 4× to about 100 minutes" and the TSan 2×–20×
// figure.
type OverheadResult struct {
	Detector string
	Baseline float64 // seconds, detector "none"
	WithDet  float64 // seconds, detector enabled
}

// Slowdown returns the ratio.
func (o OverheadResult) Slowdown() float64 {
	if o.Baseline == 0 {
		return 0
	}
	return o.WithDet / o.Baseline
}
