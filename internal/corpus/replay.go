package corpus

import (
	"gorace/internal/detector"
	"gorace/internal/report"
	"gorace/internal/trace"
)

// Replay feeds a loaded trace into a fresh detector — by registry
// name, empty selecting the record's era default — and returns the
// deduplicated race reports, the record-once/analyze-many path behind
// `racedb replay`.
func Replay(rec *trace.Recorder, detectorName string) ([]report.Race, error) {
	if detectorName == "" {
		detectorName = detector.DefaultName
	}
	d, err := detector.New(detectorName)
	if err != nil {
		return nil, err
	}
	rec.Replay(d)
	races := d.Races()
	report.SortRaces(races)
	return report.UniqueByHash(races), nil
}

// ReplayHashes replays like Replay and returns the set of reported
// dedup hashes — the check that a stored defect's trace still
// reproduces its key.
func ReplayHashes(rec *trace.Recorder, detectorName string) map[string]bool {
	races, err := Replay(rec, detectorName)
	if err != nil {
		return nil
	}
	out := make(map[string]bool, len(races))
	for _, r := range races {
		out[r.Hash()] = true
	}
	return out
}
