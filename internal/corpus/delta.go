package corpus

import (
	"fmt"
	"io"
	"sort"
)

// Delta export/import: the framing that lets corpus state travel
// between nodes. An Export is a self-contained bundle of run markers
// plus records — a whole store's folded state (snapshot replication to
// read replicas) or one run's worth of new records (a worker shipping
// a shard's defects to the coordinator). The wire form reuses the
// store's CRC-framed binary record codec, so a record round-trips the
// network with exactly the fidelity it round-trips disk: dedup keys,
// stacks, and race hashes come back bit-identical, which is what makes
// a distributed campaign's folded corpus byte-identical to a
// single-node run.
//
// Layout ("GRCD" magic, then the store codec's frames):
//
//	"GRCD" magic | uvarint version | uvarint #runs | uvarint #records | frames...
//
// with each frame exactly as in the store log (see codec.go): run
// markers first, then records, both in the order WriteDelta was given.
// The counts in the header make truncation detectable even at frame
// boundaries: a delta decodes whole or not at all.

// deltaMagic identifies a corpus delta stream.
var deltaMagic = [4]byte{'G', 'R', 'C', 'D'}

// deltaVersion is written after the magic; readers reject versions
// they do not know.
const deltaVersion = 1

// Export is a transportable bundle of corpus state: the unit of
// corpus federation. Build one from a store or view, frame it with
// WriteDelta, ship it, and fold it into another store with
// Store.ApplyDelta (or into a read replica with ViewFromExport).
type Export struct {
	// Runs lists run markers in first-append order.
	Runs []RunInfo
	// Records lists defect records; ApplyDelta folds them in order.
	Records []Record
}

// Export renders the view's folded state as a transportable bundle.
func (v *View) Export() Export {
	return Export{Runs: v.Runs(), Records: v.Records()}
}

// WriteDelta frames the export onto w in the binary delta format.
func WriteDelta(w io.Writer, x Export) error {
	head := newRecEncoder()
	head.buf.Write(deltaMagic[:])
	head.uvarint(deltaVersion)
	head.uvarint(uint64(len(x.Runs)))
	head.uvarint(uint64(len(x.Records)))
	if _, err := w.Write(head.buf.Bytes()); err != nil {
		return fmt.Errorf("corpus: write delta header: %w", err)
	}
	for _, info := range x.Runs {
		e := newRecEncoder()
		e.run(info)
		if err := e.writeFrame(w); err != nil {
			return fmt.Errorf("corpus: write delta run %q: %w", info.ID, err)
		}
	}
	for _, rec := range x.Records {
		e := newRecEncoder()
		e.record(rec)
		if err := e.writeFrame(w); err != nil {
			return fmt.Errorf("corpus: write delta record %q: %w", rec.Key, err)
		}
	}
	return nil
}

// ReadDelta decodes a binary delta stream produced by WriteDelta.
// Unlike a store log, a delta has no torn-tail tolerance: it travels
// whole or not at all, so any framing error fails the read.
func ReadDelta(r io.Reader) (Export, error) {
	var x Export
	data, err := io.ReadAll(r)
	if err != nil {
		return x, fmt.Errorf("corpus: read delta: %w", err)
	}
	if len(data) < len(deltaMagic) || string(data[:len(deltaMagic)]) != string(deltaMagic[:]) {
		return x, fmt.Errorf("corpus: not a corpus delta (bad magic)")
	}
	d := &recDecoder{buf: data, off: len(deltaMagic)}
	version, err := d.uvarint()
	if err != nil {
		return x, fmt.Errorf("corpus: delta header: %w", err)
	}
	if version != deltaVersion {
		return x, fmt.Errorf("corpus: unsupported delta version %d (want %d)", version, deltaVersion)
	}
	nRuns, err := d.uvarint()
	if err != nil {
		return x, fmt.Errorf("corpus: delta header: %w", err)
	}
	nRecords, err := d.uvarint()
	if err != nil {
		return x, fmt.Errorf("corpus: delta header: %w", err)
	}
	for d.off < len(data) {
		payload, err := nextFrame(d)
		if err != nil {
			return x, fmt.Errorf("corpus: delta frame: %w", err)
		}
		pd := &recDecoder{buf: payload, strings: []string{""}}
		kind, err := pd.byte()
		if err != nil {
			return x, err
		}
		switch kind {
		case kindRecord:
			rec, err := pd.record()
			if err != nil {
				return x, fmt.Errorf("corpus: delta record: %w", err)
			}
			x.Records = append(x.Records, rec)
		case kindRun:
			info, err := pd.run()
			if err != nil {
				return x, fmt.Errorf("corpus: delta run: %w", err)
			}
			x.Runs = append(x.Runs, info)
		}
	}
	if uint64(len(x.Runs)) != nRuns || uint64(len(x.Records)) != nRecords {
		return x, fmt.Errorf("corpus: truncated delta: got %d runs + %d records, header promised %d + %d",
			len(x.Runs), len(x.Records), nRuns, nRecords)
	}
	return x, nil
}

// ApplyDelta folds an export into the store with run-idempotent
// semantics: run markers already in the history are skipped, and so
// is any record whose run ids are all already recorded. Applying the
// same delta twice is therefore a no-op the second time, and two
// deltas fold to the same state in either order (Merge's contract).
// Appends are synced at the end of the batch.
func (s *Store) ApplyDelta(x Export) error {
	seen := make(map[string]bool, len(s.runs))
	for id := range s.runs {
		seen[id] = true
	}
	appended := false
	applied := make(map[string]bool)
	for _, info := range x.Runs {
		if seen[info.ID] || applied[info.ID] {
			continue
		}
		if err := s.AppendRun(info); err != nil {
			return err
		}
		applied[info.ID] = true
		appended = true
	}
	for _, rec := range x.Records {
		if allRunsIn(rec.RunIDs, seen) {
			continue
		}
		if err := s.Append(rec); err != nil {
			return err
		}
		appended = true
	}
	if !appended {
		return nil
	}
	return s.Sync()
}

// allRunsIn reports whether every id (of a non-empty list) is in the
// set; records with no run ids fold unconditionally.
func allRunsIn(ids []string, set map[string]bool) bool {
	if len(ids) == 0 {
		return false
	}
	for _, id := range ids {
		if !set[id] {
			return false
		}
	}
	return true
}

// ViewFromExport builds an immutable read View directly from a
// transported export, with no backing store file — the shape a read
// replica serves from. gen and path stamp the snapshot with the
// *origin* store's generation and path, so responses rendered from a
// replica carry the same generation (and are byte-identical to the
// origin's at that generation, the distributed response-cache
// contract).
func ViewFromExport(gen uint64, path string, x Export) *View {
	v := &View{
		gen:  gen,
		path: path,
		recs: append([]Record(nil), x.Records...),
		key:  make(map[string]int, len(x.Records)),
		runs: append([]RunInfo(nil), x.Runs...),
		run:  make(map[string]bool, len(x.Runs)),
	}
	sort.Slice(v.recs, func(i, j int) bool { return v.recs[i].Key < v.recs[j].Key })
	for i := range v.recs {
		v.key[v.recs[i].Key] = i
	}
	for _, r := range v.runs {
		v.run[r.ID] = true
	}
	return v
}
