package corpus

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"gorace/internal/progen"
	"gorace/internal/report"
	"gorace/internal/stack"
	"gorace/internal/sweep"
	"gorace/internal/taxonomy"
	"gorace/internal/trace"
)

// sampleRecord builds a fully populated record for codec round-trips.
func sampleRecord(key string) Record {
	first := report.Access{
		G: 1, GName: "worker-1", Op: trace.OpWrite, Addr: 42, Seq: 7,
		Stack: stack.NewContext(
			stack.Frame{Func: "main", File: "main.go", Line: 10},
			stack.Frame{Func: "main.func1", File: "main.go", Line: 12},
		),
		Label: "counter", Atomic: false, Locks: []string{"mu", "rw(r)"},
	}
	second := report.Access{
		G: 2, GName: "worker-2", Op: trace.OpRead, Addr: 42, Seq: 9,
		Stack: stack.NewContext(
			stack.Frame{Func: "main", File: "main.go", Line: 10},
			stack.Frame{Func: "main.func2", File: "main.go", Line: 18},
		),
		Label: "counter", Atomic: true,
	}
	return Record{
		Key:       key,
		Unit:      "svc-001/TestFoo",
		RunIDs:    []string{"2026-07-01", "2026-07-02"},
		Count:     5,
		Category:  taxonomy.CatMissingLock,
		Labels:    []taxonomy.Category{taxonomy.CatMissingLock, taxonomy.CatGlobalVar},
		Detector:  "fasttrack",
		TracePath: "traces/" + TraceFileName(key),
		Race: report.Race{
			First: first, Second: second,
			Detector: "fasttrack", Seq: 9,
		},
	}
}

func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []Record{sampleRecord("u/aaaa"), sampleRecord("u/bbbb")}
	want[1].TracePath = ""
	want[1].Labels = nil
	want[1].Category = ""
	if err := s.AppendRun(RunInfo{ID: "2026-07-01", Label: "nightly", Executions: 80, Reports: 12}); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(want...); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := re.Records()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("records differ after reopen:\n got %+v\nwant %+v", got, want)
	}
	runs := re.Runs()
	if len(runs) != 1 || runs[0] != (RunInfo{ID: "2026-07-01", Label: "nightly", Executions: 80, Reports: 12}) {
		t.Fatalf("runs differ after reopen: %+v", runs)
	}
	// The dedup hash must survive serialization: corpus keys stay
	// valid only if the decoded race hashes identically.
	if got[0].Race.Hash() != want[0].Race.Hash() {
		t.Fatalf("race hash changed across store round trip")
	}
}

func TestAppendFoldsAcrossRuns(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "c.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec := sampleRecord("u/cccc")
	rec.RunIDs = []string{"r1"}
	rec.Count = 2
	if err := s.Append(rec); err != nil {
		t.Fatal(err)
	}
	rec2 := rec
	rec2.RunIDs = []string{"r2"}
	rec2.Count = 3
	if err := s.Append(rec2); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("u/cccc")
	if !ok {
		t.Fatal("folded record missing")
	}
	if got.Count != 5 {
		t.Fatalf("count = %d, want 5", got.Count)
	}
	if !reflect.DeepEqual(got.RunIDs, []string{"r1", "r2"}) {
		t.Fatalf("run ids = %v", got.RunIDs)
	}
	if got.FirstSeen() != "r1" || got.LastSeen() != "r2" {
		t.Fatalf("first/last seen = %q/%q", got.FirstSeen(), got.LastSeen())
	}
}

func TestAppendRejectsEmptyKey(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "c.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append(Record{}); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := s.AppendRun(RunInfo{}); err == nil {
		t.Fatal("empty run id accepted")
	}
}

func TestOpenRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-store")
	if err := os.WriteFile(path, []byte(`{"json": true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("foreign file opened as store")
	}
}

// TestCrashMidAppendLosesAtMostInFlightRecord simulates a crash by
// truncating the log inside the final frame: reopening must recover
// every earlier record and leave the store appendable.
func TestCrashMidAppendLosesAtMostInFlightRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Append(sampleRecord(fmt.Sprintf("u/rec%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear bytes off the tail, landing inside the last frame.
	for _, cut := range []int64{1, 5, 40} {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			torn := filepath.Join(t.TempDir(), "torn.db")
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(torn, data[:info.Size()-cut], 0o644); err != nil {
				t.Fatal(err)
			}
			re, err := Open(torn)
			if err != nil {
				t.Fatalf("reopen after torn tail: %v", err)
			}
			defer re.Close()
			if re.Len() != 2 {
				t.Fatalf("recovered %d records, want 2 (lost only the in-flight one)", re.Len())
			}
			// The truncated store must accept appends again.
			if err := re.Append(sampleRecord("u/after-crash")); err != nil {
				t.Fatal(err)
			}
			re2, err := Open(torn)
			if err == nil {
				defer re2.Close()
			}
			if err != nil || re2.Len() != 3 {
				t.Fatalf("store not healthy after recovery append: len=%d err=%v", re2.Len(), err)
			}
		})
	}
}

// TestMidFileCorruptionFailsOpen pins the flip side of torn-tail
// recovery: a corrupted frame with intact frames *after* it is not a
// tear, and Open must fail loudly instead of silently truncating the
// rest of the log away.
func TestMidFileCorruptionFailsOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Append(sampleRecord(fmt.Sprintf("u/rec%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one byte roughly in the middle of the log (inside the
	// second record's frame, well before the final frame).
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("mid-file corruption opened without error")
	}
	// And the failed open must not have mutated the file.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(data) {
		t.Fatalf("failed open changed file size: %d -> %d", len(data), len(after))
	}
}

func TestCompactPreservesStateAndShrinks(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.db")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Many per-run appends of the same defects: the log holds one
	// frame per (defect, run); compaction folds them.
	for run := 0; run < 10; run++ {
		runID := fmt.Sprintf("r%02d", run)
		if err := s.AppendRun(RunInfo{ID: runID, Executions: 4}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			rec := sampleRecord(fmt.Sprintf("u/rec%d", i))
			rec.RunIDs = []string{runID}
			rec.Count = 1
			if err := s.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	before, _ := os.Stat(path)
	want := s.Records()
	wantRuns := s.Runs()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink: %d -> %d bytes", before.Size(), after.Size())
	}
	if !reflect.DeepEqual(s.Records(), want) {
		t.Fatal("in-memory records changed across Compact")
	}
	// The compacted file must round-trip identically, and stay
	// appendable through the moved handle.
	if err := s.Append(sampleRecord("u/post-compact")); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != len(want)+1 {
		t.Fatalf("reopened len = %d, want %d", re.Len(), len(want)+1)
	}
	if !reflect.DeepEqual(re.Runs(), wantRuns) {
		t.Fatalf("runs differ after compact: %+v vs %+v", re.Runs(), wantRuns)
	}
	for _, w := range want {
		g, ok := re.Get(w.Key)
		if !ok || !reflect.DeepEqual(g, w) {
			t.Fatalf("record %s differs after compact+reopen:\n got %+v\nwant %+v", w.Key, g, w)
		}
	}
}

func TestMergeDisjointStores(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(filepath.Join(dir, "a.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open(filepath.Join(dir, "b.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	shared := sampleRecord("u/shared")
	shared.RunIDs = []string{"a1"}
	shared.Count = 2
	onlyA := sampleRecord("u/only-a")
	onlyA.RunIDs = []string{"a1"}
	if err := a.AppendRun(RunInfo{ID: "a1", Executions: 10}); err != nil {
		t.Fatal(err)
	}
	if err := a.Append(shared, onlyA); err != nil {
		t.Fatal(err)
	}

	sharedB := sampleRecord("u/shared")
	sharedB.RunIDs = []string{"b1"}
	sharedB.Count = 3
	onlyB := sampleRecord("u/only-b")
	onlyB.RunIDs = []string{"b1"}
	if err := b.AppendRun(RunInfo{ID: "b1", Executions: 20}); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(sharedB, onlyB); err != nil {
		t.Fatal(err)
	}

	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 3 {
		t.Fatalf("merged len = %d, want 3", a.Len())
	}
	got, _ := a.Get("u/shared")
	if got.Count != 5 || !reflect.DeepEqual(got.RunIDs, []string{"a1", "b1"}) {
		t.Fatalf("merged shared record wrong: %+v", got)
	}
	if len(a.Runs()) != 2 {
		t.Fatalf("merged runs = %+v", a.Runs())
	}
	// The merge is durable: reopening sees the same fold.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(filepath.Join(dir, "a.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	reShared, _ := re.Get("u/shared")
	if re.Len() != 3 || reShared.Count != 5 {
		t.Fatalf("merge not durable: len=%d shared=%+v", re.Len(), reShared)
	}
}

// nightlyUnits builds one sweep unit per progen program in [lo, hi):
// a fixed per-unit seed range makes the same unit produce the same
// detections in every "night" that includes it.
func nightlyUnits(lo, hi int) []sweep.Unit {
	var units []sweep.Unit
	for i := lo; i < hi; i++ {
		prog := progen.Generate(int64(i), progen.Params{LockedRatio: progen.Int(20)})
		units = append(units, sweep.Unit{
			ID:       fmt.Sprintf("prog-%02d", i),
			Program:  prog.Main(),
			BaseSeed: int64(i) * 997,
			Runs:     4,
			MaxSteps: 1 << 16,
			Record:   true,
		})
	}
	return units
}

// runNight executes one simulated nightly campaign into the store.
func runNight(t *testing.T, store *Store, runID string, units []sweep.Unit, parallelism int) *Collector {
	t.Helper()
	aggs, _, err := sweep.New(sweep.WithParallelism(parallelism)).Run(units,
		func() sweep.Aggregator { return NewCollector(runID) })
	if err != nil {
		t.Fatal(err)
	}
	coll := aggs[0].(*Collector)
	if err := coll.AppendTo(store); err != nil {
		t.Fatal(err)
	}
	return coll
}

func keysOf(recs []Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Key
	}
	return out
}

// TestAppendDiffTwoNights is the acceptance scenario: two simulated
// nightly runs over progen programs — overlapping on some units,
// disjoint on others — must classify every defect correctly into
// new/resolved/recurring, identically at any parallelism, and survive
// a crash mid-append.
func TestAppendDiffTwoNights(t *testing.T) {
	// Night 1 runs programs [0, 10); night 2 runs [4, 14). Unit seed
	// ranges are fixed per unit, so overlap units re-detect the same
	// defects: their races are recurring, [0,4)'s are resolved, and
	// [10,14)'s are new.
	for _, parallelism := range []int{1, 8} {
		t.Run(fmt.Sprintf("parallel%d", parallelism), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "nightly.db")
			store, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer store.Close()

			c1 := runNight(t, store, "night-1", nightlyUnits(0, 10), parallelism)
			c2 := runNight(t, store, "night-2", nightlyUnits(4, 14), parallelism)
			if c1.Defects() == 0 || c2.Defects() == 0 {
				t.Fatalf("progen nights found no defects (%d, %d); scenario is vacuous",
					c1.Defects(), c2.Defects())
			}

			delta, err := store.Diff("night-1", "night-2")
			if err != nil {
				t.Fatal(err)
			}
			if len(delta.New) == 0 || len(delta.Resolved) == 0 || len(delta.Recurring) == 0 {
				t.Fatalf("degenerate delta: %d new, %d resolved, %d recurring",
					len(delta.New), len(delta.Resolved), len(delta.Recurring))
			}
			// Every defect of an overlap unit must recur (identical unit
			// + seed range => identical detections), and the three sets
			// must partition the store by unit range.
			for _, rec := range delta.Recurring {
				var n int
				fmt.Sscanf(rec.Unit, "prog-%02d", &n)
				if n < 4 || n >= 10 {
					t.Errorf("recurring defect from non-overlap unit %s", rec.Unit)
				}
			}
			for _, rec := range delta.Resolved {
				var n int
				fmt.Sscanf(rec.Unit, "prog-%02d", &n)
				if n >= 4 {
					t.Errorf("resolved defect from unit %s, want only [0,4)", rec.Unit)
				}
			}
			for _, rec := range delta.New {
				var n int
				fmt.Sscanf(rec.Unit, "prog-%02d", &n)
				if n < 10 {
					t.Errorf("new defect from unit %s, want only [10,14)", rec.Unit)
				}
			}
			if got := len(delta.New) + len(delta.Resolved) + len(delta.Recurring); got != store.Len() {
				t.Fatalf("delta covers %d records, store has %d", got, store.Len())
			}

			// Recurring defects accumulated both runs' history.
			rec := delta.Recurring[0]
			if !rec.SeenIn("night-1") || !rec.SeenIn("night-2") {
				t.Fatalf("recurring record missing run ids: %v", rec.RunIDs)
			}

			// Determinism across parallelism: pin against a serial
			// rerun into a fresh store.
			ref, err := Open(filepath.Join(t.TempDir(), "ref.db"))
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()
			runNight(t, ref, "night-1", nightlyUnits(0, 10), 1)
			runNight(t, ref, "night-2", nightlyUnits(4, 14), 1)
			if !reflect.DeepEqual(store.Records(), ref.Records()) {
				t.Fatalf("corpus differs from serial reference at parallelism %d", parallelism)
			}

			// Crash tolerance: tear the tail and reopen; at most the
			// in-flight (last) record is gone, everything else intact.
			if err := store.Close(); err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
				t.Fatal(err)
			}
			crashed, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer crashed.Close()
			want := keysOf(ref.Records())
			got := keysOf(crashed.Records())
			if len(got) < len(want)-1 {
				t.Fatalf("crash lost %d records, want at most 1", len(want)-len(got))
			}
			missing := 0
			for i, j := 0, 0; i < len(want); i++ {
				if j < len(got) && got[j] == want[i] {
					j++
				} else {
					missing++
				}
			}
			if missing > 1 {
				t.Fatalf("crash dropped %d records (non-tail loss)", missing)
			}
		})
	}
}

// TestCollectorTraceReplay pins the replay path end to end: a defect's
// saved trace must load and replay into a detector that re-reports the
// defect's dedup hash.
func TestCollectorTraceReplay(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(filepath.Join(dir, "c.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	units := nightlyUnits(0, 6)
	aggs, _, err := sweep.New().Run(units,
		func() sweep.Aggregator {
			return NewCollector("night-1", WithTraceDir(filepath.Join(dir, "traces")))
		})
	if err != nil {
		t.Fatal(err)
	}
	coll := aggs[0].(*Collector)
	if err := coll.AppendTo(store); err != nil {
		t.Fatal(err)
	}
	recs := store.Records()
	if len(recs) == 0 {
		t.Skip("no defects found")
	}
	replayed := 0
	for _, rec := range recs {
		if rec.TracePath == "" {
			t.Fatalf("record %s has no trace path", rec.Key)
		}
		f, err := os.Open(rec.TracePath)
		if err != nil {
			t.Fatal(err)
		}
		loaded, err := trace.Load(f)
		f.Close()
		if err != nil {
			t.Fatalf("load %s: %v", rec.TracePath, err)
		}
		if got := ReplayHashes(loaded, rec.Detector); !got[rec.Race.Hash()] {
			t.Fatalf("replaying %s did not re-report hash %s", rec.Key, rec.Race.Hash())
		}
		replayed++
	}
	if replayed == 0 {
		t.Fatal("nothing replayed")
	}
}

func TestDiffUnknownRun(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "c.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Diff("nope", "nah"); err == nil {
		t.Fatal("diff of unknown runs succeeded")
	}
}

func TestTraceFileName(t *testing.T) {
	got := TraceFileName("svc-001/TestFoo/ab12cd34")
	if got != "svc-001_TestFoo_ab12cd34.trace" {
		t.Fatalf("TraceFileName = %q", got)
	}
}
