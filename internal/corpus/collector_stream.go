package corpus

import (
	"gorace/internal/classify"
	"gorace/internal/detector"
	"gorace/internal/report"
	"gorace/internal/trace"
)

// NoteExecution counts one program execution (or ingested stream)
// against the run marker without routing it through a sweep.Run.
// Streaming ingest (internal/stream) calls it once per stream, since
// its races arrive incrementally via FoldRaces rather than as one
// Outcome at run end.
func (c *Collector) NoteExecution() { c.executions++ }

// FoldRaces folds race reports that manifested mid-stream into the
// collector, deduplicating and classifying exactly as Observe does for
// batch outcomes: every report counts toward the unit's occurrence
// tallies, and a hash seen for the first time becomes the defect's
// defining report, classified against window — the recent-events
// window retained at manifestation time (may be nil; classification
// then runs without trace hints). With a trace dir configured, the
// first manifestation also retains a snapshot of the window so the
// stored defect stays replayable.
//
// unitID and detName attribute the defect; detName must be a registry
// name (empty selects detector.DefaultName). It returns the number of
// defects newly defined by this fold, so callers can log only on
// first manifestation.
//
// Like the rest of Collector, FoldRaces is not concurrency-safe; the
// service serializes folds under its writer lock.
func (c *Collector) FoldRaces(unitIdx int, unitID, detName string, seed int64, races []report.Race, window []trace.Event) int {
	c.reports += len(races)
	if len(races) == 0 {
		return 0
	}
	if detName == "" {
		detName = detector.DefaultName
	}
	ua := c.unit(unitIdx)
	for _, race := range races {
		ua.counts[race.Hash()]++
	}
	fresh := 0
	for _, race := range report.UniqueByHash(races) {
		h := race.Hash()
		if _, ok := ua.defs[h]; ok {
			continue
		}
		d := &defining{
			unit:     unitID,
			seed:     seed,
			race:     race,
			detector: detName,
			labels:   classify.Classify(race, classify.HintsFromTrace(window)),
		}
		if c.traceDir != "" && len(window) > 0 {
			snap := &trace.Recorder{Events: make([]trace.Event, len(window))}
			copy(snap.Events, window)
			d.trace = snap
		}
		ua.order = append(ua.order, h)
		ua.defs[h] = d
		fresh++
	}
	return fresh
}
