package corpus

import (
	"bytes"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"gorace/internal/taxonomy"
)

// deltaA/deltaB build two per-run deltas with overlapping run history:
// both carry run "r2" (with identical contents, as two exports of the
// same run do), and each carries a private run. Defect keys overlap
// across runs, with different defining metadata per run so the fold's
// earliest-run-wins resolution is actually exercised.
func perRunDelta(runID string, execs int, keys []string, category taxonomy.Category) Export {
	x := Export{Runs: []RunInfo{{ID: runID, Label: "night", Executions: execs, Reports: len(keys)}}}
	for _, key := range keys {
		rec := sampleRecord(key)
		rec.RunIDs = []string{runID}
		rec.Count = uint64(len(key)) // deterministic, varies per key
		rec.Category = category
		rec.Labels = []taxonomy.Category{category}
		rec.Detector = "fasttrack"
		rec.TracePath = ""
		x.Records = append(x.Records, rec)
	}
	return x
}

// foldInto applies the deltas to a fresh store in the given order and
// returns the store's observable state.
func foldInto(t *testing.T, dir string, name string, deltas ...Export) ([]Record, []RunInfo, uint64) {
	t.Helper()
	s, err := Open(filepath.Join(dir, name+".db"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, x := range deltas {
		if err := s.ApplyDelta(x); err != nil {
			t.Fatal(err)
		}
	}
	var total uint64
	for _, rec := range s.Records() {
		total += rec.Count
	}
	return s.Records(), s.Runs(), total
}

// runsEqualAsSets compares run histories ignoring append order (the
// one thing merge order is allowed to change).
func runsEqualAsSets(a, b []RunInfo) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[string]RunInfo, len(a))
	for _, r := range a {
		set[r.ID] = r
	}
	for _, r := range b {
		if set[r.ID] != r {
			return false
		}
	}
	return true
}

// TestMergeOverlappingDeltasIdempotentAndOrderIndependent is the
// corpus.Merge property test: for per-run deltas with overlapping run
// histories, fold(A ∪ B) == fold(B ∪ A) == fold(A ∪ B ∪ B) — records,
// run markers, and occurrence counts all included. This is the
// contract that lets a coordinator re-apply a worker's delta after a
// retransmit, or apply two workers' deltas in arrival order, without
// double counting or divergent defining reports.
func TestMergeOverlappingDeltasIdempotentAndOrderIndependent(t *testing.T) {
	dir := t.TempDir()

	// A covers runs r1+r2, B covers r2+r3; r2 (shared history) is
	// byte-identical in both, as two exports of one run are.
	r2 := perRunDelta("r2", 20, []string{"u/shared", "u/r2-only"}, taxonomy.CatMissingLock)
	deltaA := []Export{
		perRunDelta("r1", 10, []string{"u/shared", "u/a-only"}, taxonomy.CatGlobalVar),
		r2,
	}
	deltaB := []Export{
		r2,
		perRunDelta("r3", 30, []string{"u/shared", "u/b-only", "u/r2-only"}, taxonomy.CatMissingLock),
	}

	ab := append(append([]Export{}, deltaA...), deltaB...)
	ba := append(append([]Export{}, deltaB...), deltaA...)
	abb := append(append([]Export{}, ab...), deltaB...)

	recsAB, runsAB, countAB := foldInto(t, dir, "ab", ab...)
	recsBA, runsBA, countBA := foldInto(t, dir, "ba", ba...)
	recsABB, runsABB, countABB := foldInto(t, dir, "abb", abb...)

	if !reflect.DeepEqual(recsAB, recsBA) {
		t.Errorf("fold A∪B != fold B∪A:\n got %+v\nwant %+v", recsBA, recsAB)
	}
	if !reflect.DeepEqual(recsAB, recsABB) {
		t.Errorf("fold A∪B∪B != fold A∪B (not idempotent):\n got %+v\nwant %+v", recsABB, recsAB)
	}
	if countAB != countBA || countAB != countABB {
		t.Errorf("occurrence totals diverge: AB=%d BA=%d ABB=%d", countAB, countBA, countABB)
	}
	if !runsEqualAsSets(runsAB, runsBA) || !runsEqualAsSets(runsAB, runsABB) {
		t.Errorf("run histories diverge:\nAB  %+v\nBA  %+v\nABB %+v", runsAB, runsBA, runsABB)
	}

	// The shared defect's defining metadata must come from its
	// earliest run (r1, CatGlobalVar) in every fold order, and its
	// count must be the sum over its three distinct runs.
	for name, recs := range map[string][]Record{"AB": recsAB, "BA": recsBA, "ABB": recsABB} {
		var shared *Record
		for i := range recs {
			if recs[i].Key == "u/shared" {
				shared = &recs[i]
			}
		}
		if shared == nil {
			t.Fatalf("%s: u/shared missing", name)
		}
		if shared.Category != taxonomy.CatGlobalVar {
			t.Errorf("%s: shared category = %s, want %s (earliest run wins)", name, shared.Category, taxonomy.CatGlobalVar)
		}
		if want := []string{"r1", "r2", "r3"}; !reflect.DeepEqual(shared.RunIDs, want) {
			t.Errorf("%s: shared runs = %v, want %v", name, shared.RunIDs, want)
		}
		if want := uint64(3 * len("u/shared")); shared.Count != want {
			t.Errorf("%s: shared count = %d, want %d", name, shared.Count, want)
		}
	}

	// Run-marker semantics: the shared run r2 folded once — its
	// executions are not doubled by the second delta carrying it.
	for _, runs := range [][]RunInfo{runsAB, runsBA, runsABB} {
		for _, r := range runs {
			if r.ID == "r2" && r.Executions != 20 {
				t.Errorf("run r2 executions = %d, want 20 (marker folded more than once)", r.Executions)
			}
		}
	}
}

// TestMergeStoresIsRunIdempotent pins the same property at Store.Merge
// granularity: merging a store into another twice equals merging once.
func TestMergeStoresIsRunIdempotent(t *testing.T) {
	dir := t.TempDir()
	a, err := Open(filepath.Join(dir, "a.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Open(filepath.Join(dir, "b.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.ApplyDelta(perRunDelta("r1", 5, []string{"u/x"}, taxonomy.CatMissingLock)); err != nil {
		t.Fatal(err)
	}
	if err := b.ApplyDelta(perRunDelta("r2", 7, []string{"u/x", "u/y"}, taxonomy.CatGlobalVar)); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	once := a.Records()
	onceRuns := a.Runs()
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Records(), once) {
		t.Errorf("second merge changed records:\n got %+v\nwant %+v", a.Records(), once)
	}
	if !reflect.DeepEqual(a.Runs(), onceRuns) {
		t.Errorf("second merge changed runs: %+v vs %+v", a.Runs(), onceRuns)
	}
}

// TestDeltaRoundTrip pins the wire framing: a delta written and read
// back is structurally identical, and a truncated stream fails loudly
// instead of folding partially.
func TestDeltaRoundTrip(t *testing.T) {
	x := perRunDelta("r9", 11, []string{"u/one", "u/two"}, taxonomy.CatMissingLock)
	var buf bytes.Buffer
	if err := WriteDelta(&buf, x); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDelta(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, x) {
		t.Fatalf("delta round trip:\n got %+v\nwant %+v", got, x)
	}
	for cut := 1; cut < buf.Len(); cut += 7 {
		if _, err := ReadDelta(bytes.NewReader(buf.Bytes()[:buf.Len()-cut])); err == nil {
			t.Fatalf("truncated delta (%d bytes cut) read without error", cut)
		}
	}
	if _, err := ReadDelta(bytes.NewReader([]byte("GRTBnope"))); err == nil {
		t.Fatal("foreign stream read without error")
	}
}

// TestViewFromExport pins that a replicated view serves the same state
// as the origin: same records (sorted), runs, generation, and diffs.
func TestViewFromExport(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(filepath.Join(dir, "origin.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i, run := range []string{"r1", "r2"} {
		keys := []string{"u/a", fmt.Sprintf("u/only-%s", run)}
		if err := s.ApplyDelta(perRunDelta(run, 10*(i+1), keys, taxonomy.CatMissingLock)); err != nil {
			t.Fatal(err)
		}
	}
	origin := s.Snapshot()
	replica := ViewFromExport(origin.Generation(), origin.Path(), origin.Export())
	if replica.Generation() != origin.Generation() || replica.Path() != origin.Path() {
		t.Fatalf("replica stamp (%d,%q) != origin (%d,%q)",
			replica.Generation(), replica.Path(), origin.Generation(), origin.Path())
	}
	if !reflect.DeepEqual(replica.Records(), origin.Records()) {
		t.Errorf("replica records differ:\n got %+v\nwant %+v", replica.Records(), origin.Records())
	}
	if !reflect.DeepEqual(replica.Runs(), origin.Runs()) {
		t.Errorf("replica runs differ: %+v vs %+v", replica.Runs(), origin.Runs())
	}
	od, err1 := origin.Diff("r1", "r2")
	rd, err2 := replica.Diff("r1", "r2")
	if err1 != nil || err2 != nil || !reflect.DeepEqual(od, rd) {
		t.Errorf("replica diff differs: %+v (%v) vs %+v (%v)", rd, err2, od, err1)
	}
}
