package corpus

import (
	"fmt"
	"sort"
)

// View is an immutable snapshot of a store's folded state, the unit
// of concurrent read access. A Store is single-writer by design; a
// View taken with Store.Snapshot is safe to share among any number of
// reader goroutines with no locking at all, because nothing in it is
// ever written again — later appends to the store produce *later*
// snapshots and leave existing Views untouched (copy-on-write at
// snapshot granularity).
//
// Views carry the store generation they were taken at. Two Views of
// one store with equal generations hold identical state, which is
// what makes the generation a sound response-cache key: a cached
// rendering of a View can be served until a newer snapshot is
// published. internal/service is built on exactly this contract.
//
// The Records and Runs accessors return the snapshot's internal
// slices to keep thousand-reader fan-out allocation-free; treat them
// as read-only.
type View struct {
	gen  uint64
	path string
	recs []Record // key-sorted, deep-copied from the store
	key  map[string]int
	runs []RunInfo // first-append order
	run  map[string]bool
}

// Snapshot captures the store's current folded state as an immutable
// View. The caller may keep appending to the store afterwards; the
// View never changes. Snapshot deep-copies every record, so its cost
// is proportional to the corpus size — take one per mutation batch
// (per nightly append), not per read.
func (s *Store) Snapshot() *View {
	v := &View{
		gen:  s.gen,
		path: s.path,
		recs: s.Records(), // defensive copies: nothing aliases the store
		key:  make(map[string]int, len(s.byKey)),
		runs: s.Runs(),
		run:  make(map[string]bool, len(s.runs)),
	}
	for i := range v.recs {
		v.key[v.recs[i].Key] = i
	}
	for _, r := range v.runs {
		v.run[r.ID] = true
	}
	return v
}

// Generation returns the store generation the snapshot was taken at.
func (v *View) Generation() uint64 { return v.gen }

// Path returns the file path of the store the snapshot came from.
func (v *View) Path() string { return v.path }

// Records returns the snapshot's defect records, sorted by key. The
// slice is shared by every caller of this View: read, don't mutate.
func (v *View) Records() []Record { return v.recs }

// Get returns the record for key.
func (v *View) Get(key string) (Record, bool) {
	i, ok := v.key[key]
	if !ok {
		return Record{}, false
	}
	return v.recs[i], true
}

// Len returns the number of deduplicated defects in the snapshot.
func (v *View) Len() int { return len(v.recs) }

// Runs returns the snapshot's run history in first-append order. The
// slice is shared by every caller of this View: read, don't mutate.
func (v *View) Runs() []RunInfo { return v.runs }

// HasRun reports whether the snapshot's history contains the run id.
func (v *View) HasRun(id string) bool { return v.run[id] }

// LastRun returns the most recently appended run id, or "" for an
// empty history.
func (v *View) LastRun() string {
	if len(v.runs) == 0 {
		return ""
	}
	return v.runs[len(v.runs)-1].ID
}

// Diff computes the cross-run delta between two recorded runs, with
// the same semantics as Store.Diff, against the frozen snapshot.
func (v *View) Diff(runA, runB string) (Delta, error) {
	delta := Delta{RunA: runA, RunB: runB}
	for _, id := range []string{runA, runB} {
		if !v.run[id] {
			return delta, fmt.Errorf("corpus: unknown run id %q (have %d runs)", id, len(v.runs))
		}
	}
	for _, rec := range v.recs {
		inA, inB := rec.SeenIn(runA), rec.SeenIn(runB)
		switch {
		case inA && inB:
			delta.Recurring = append(delta.Recurring, rec)
		case inB:
			delta.New = append(delta.New, rec)
		case inA:
			delta.Resolved = append(delta.Resolved, rec)
		}
	}
	return delta, nil
}

// Top returns the n records with the highest cross-run occurrence
// counts (ties broken by key, so the ranking is deterministic),
// without disturbing the snapshot's key-sorted Records order.
func (v *View) Top(n int) []Record {
	out := append([]Record(nil), v.recs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if n >= 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
