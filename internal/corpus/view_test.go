package corpus

import (
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// TestRecordsAreDefensiveCopies pins the aliasing fix: records handed
// out by Records/Get own their slices, so neither mutating them nor
// appending to the store afterwards can corrupt a reader's view.
func TestRecordsAreDefensiveCopies(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "corpus.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec := sampleRecord("u/aaaa")
	rec.RunIDs = []string{"run-001"}
	if err := s.Append(rec); err != nil {
		t.Fatal(err)
	}

	got := s.Records()[0]
	got.RunIDs[0] = "mutated"
	got.Labels[0] = "mutated"
	fresh, _ := s.Get("u/aaaa")
	if fresh.RunIDs[0] != "run-001" || string(fresh.Labels[0]) == "mutated" {
		t.Fatalf("mutating a returned record reached store state: %+v", fresh)
	}

	// A later append folds more run ids into the same key; a copy
	// taken before must not change underneath the caller.
	before, _ := s.Get("u/aaaa")
	rec2 := sampleRecord("u/aaaa")
	rec2.RunIDs = []string{"run-000"} // sorts before run-001: folds at index 0
	if err := s.Append(rec2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before.RunIDs, []string{"run-001"}) {
		t.Fatalf("concurrent fold visible through earlier copy: %v", before.RunIDs)
	}
}

// TestSnapshotReadersNeverObserveAppends is the -race pin for the
// copy-on-write contract: readers iterating a snapshot (and records
// copied out before) race with nothing while the single writer keeps
// appending to the live store.
func TestSnapshotReadersNeverObserveAppends(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "corpus.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rec := sampleRecord("u/aaaa")
	rec.RunIDs = []string{"run-001"}
	if err := s.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRun(RunInfo{ID: "run-001", Executions: 1, Reports: 1}); err != nil {
		t.Fatal(err)
	}

	snap := s.Snapshot()
	recs := s.Records()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				for _, r := range snap.Records() {
					_ = r.FirstSeen()
					_ = r.SeenIn("run-001")
				}
				if _, ok := snap.Get("u/aaaa"); !ok {
					t.Error("snapshot lost a record")
					return
				}
				for _, r := range recs {
					_ = r.LastSeen()
				}
			}
		}()
	}
	// The single writer appends concurrently with the readers above —
	// under -race, any aliasing between reader copies and the store's
	// fold state shows up here.
	for i := 0; i < 200; i++ {
		more := sampleRecord("u/aaaa")
		more.RunIDs = []string{"run-002"}
		if err := s.Append(more); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	if got := snap.Len(); got != 1 {
		t.Fatalf("snapshot Len = %d, want 1", got)
	}
	if r, _ := snap.Get("u/aaaa"); !reflect.DeepEqual(r.RunIDs, []string{"run-001"}) {
		t.Fatalf("snapshot changed under appends: %v", r.RunIDs)
	}
}

func TestSnapshotGenerationAndDiff(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "corpus.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	a := sampleRecord("u/aaaa")
	a.RunIDs = []string{"run-001"}
	b := sampleRecord("u/bbbb")
	b.RunIDs = []string{"run-001", "run-002"}
	c := sampleRecord("u/cccc")
	c.RunIDs = []string{"run-002"}
	for _, run := range []string{"run-001", "run-002"} {
		if err := s.AppendRun(RunInfo{ID: run}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Append(a, b, c); err != nil {
		t.Fatal(err)
	}

	v1 := s.Snapshot()
	if v1.Generation() != s.Generation() {
		t.Fatalf("snapshot generation %d != store generation %d", v1.Generation(), s.Generation())
	}
	delta, err := v1.Diff("run-001", "run-002")
	if err != nil {
		t.Fatal(err)
	}
	if len(delta.New) != 1 || len(delta.Resolved) != 1 || len(delta.Recurring) != 1 {
		t.Fatalf("diff = %d new %d resolved %d recurring, want 1/1/1",
			len(delta.New), len(delta.Resolved), len(delta.Recurring))
	}
	if _, err := v1.Diff("run-001", "run-404"); err == nil {
		t.Fatal("diff against unknown run succeeded")
	}

	// Appends advance the generation; the old view keeps its own.
	if err := s.AppendRun(RunInfo{ID: "run-003"}); err != nil {
		t.Fatal(err)
	}
	v2 := s.Snapshot()
	if v2.Generation() <= v1.Generation() {
		t.Fatalf("generation did not advance: %d then %d", v1.Generation(), v2.Generation())
	}
	if v1.HasRun("run-003") || !v2.HasRun("run-003") {
		t.Fatalf("run visibility wrong: v1=%v v2=%v", v1.HasRun("run-003"), v2.HasRun("run-003"))
	}
	if v1.LastRun() != "run-002" || v2.LastRun() != "run-003" {
		t.Fatalf("LastRun: v1=%q v2=%q", v1.LastRun(), v2.LastRun())
	}

	// Generation survives a close/reopen: load replays the same frames.
	gen := s.Generation()
	path := s.Path()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Generation() != gen {
		t.Fatalf("generation after reopen %d, want %d", re.Generation(), gen)
	}
}

func TestViewTop(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "corpus.db"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i, key := range []string{"u/aaaa", "u/bbbb", "u/cccc"} {
		rec := sampleRecord(key)
		rec.RunIDs = []string{"run-001"}
		rec.Count = uint64(10 - i) // aaaa most frequent
		if err := s.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	v := s.Snapshot()
	top := v.Top(2)
	if len(top) != 2 || top[0].Key != "u/aaaa" || top[1].Key != "u/bbbb" {
		t.Fatalf("Top(2) = %v", keysOf(top))
	}
	if v.Records()[0].Key != "u/aaaa" {
		t.Fatal("Top disturbed the snapshot's sorted order")
	}
}
