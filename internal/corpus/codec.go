package corpus

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"gorace/internal/report"
	"gorace/internal/stack"
	"gorace/internal/taxonomy"
	"gorace/internal/trace"
	"gorace/internal/vclock"
)

// On-disk corpus store format (version 1), following the binary trace
// codec conventions: a magic header, varint integers, and interned
// strings.
//
// Layout:
//
//	"GRCS" magic | uvarint version | frames...
//
// Each frame:
//
//	uvarint payload length | uint32 LE CRC-32 (IEEE) of payload | payload
//
// A frame is written with a single Write call, so a crash tears at
// most the final frame; Open detects the torn tail by length/CRC and
// truncates it away. Payloads are self-contained — every frame carries
// its own string table — so dropping the tail never corrupts earlier
// frames.
//
// Payload:
//
//	kind byte (1 = race record, 2 = run marker) | kind-specific body
//
// Race record body (stringRef = uvarint index into the frame's string
// table; an index equal to the table size introduces a new entry as
// uvarint length + bytes; entry 0 is pre-seeded with ""):
//
//	stringRef key | stringRef unit
//	uvarint run count | stringRef run id ...
//	uvarint occurrence count
//	stringRef category | uvarint label count | stringRef label ...
//	stringRef detector | stringRef trace path
//	uvarint race seq | stringRef race detector
//	access first | access second
//
// Access:
//
//	uvarint G | stringRef goroutine name | op byte
//	uvarint addr | uvarint seq | stringRef label | atomic byte
//	uvarint lock count | stringRef lock ...
//	uvarint stack depth | per frame: stringRef func | stringRef file |
//	                      zigzag line
//
// Run marker body:
//
//	stringRef run id | stringRef label
//	uvarint executions | uvarint reports
//
// Version bumps are reserved for layout changes; adding new payload
// kinds is backward compatible (readers skip unknown kinds, whose CRC
// still validates). See docs/FORMATS.md for the compat policy.

// storeMagic identifies a corpus store file.
var storeMagic = [4]byte{'G', 'R', 'C', 'S'}

// storeVersion is written after the magic; readers reject versions
// they do not know.
const storeVersion = 1

// Frame payload kinds.
const (
	kindRecord = 1
	kindRun    = 2
)

// maxFramePayload bounds a single frame; anything larger is treated as
// tail corruption rather than allocated.
const maxFramePayload = 16 << 20

// recEncoder builds one frame payload. Each frame gets a fresh
// encoder, so its string table is self-contained.
type recEncoder struct {
	buf     bytes.Buffer
	scratch [binary.MaxVarintLen64]byte
	strings map[string]uint64
}

func newRecEncoder() *recEncoder {
	return &recEncoder{strings: map[string]uint64{"": 0}}
}

func (e *recEncoder) uvarint(v uint64) {
	n := binary.PutUvarint(e.scratch[:], v)
	e.buf.Write(e.scratch[:n])
}

func (e *recEncoder) zigzag(v int64) {
	n := binary.PutVarint(e.scratch[:], v)
	e.buf.Write(e.scratch[:n])
}

func (e *recEncoder) stringRef(s string) {
	if idx, ok := e.strings[s]; ok {
		e.uvarint(idx)
		return
	}
	idx := uint64(len(e.strings))
	e.strings[s] = idx
	e.uvarint(idx)
	e.uvarint(uint64(len(s)))
	e.buf.WriteString(s)
}

func (e *recEncoder) access(a report.Access) {
	e.uvarint(uint64(a.G))
	e.stringRef(a.GName)
	e.buf.WriteByte(byte(a.Op))
	e.uvarint(uint64(a.Addr))
	e.uvarint(a.Seq)
	e.stringRef(a.Label)
	atomic := byte(0)
	if a.Atomic {
		atomic = 1
	}
	e.buf.WriteByte(atomic)
	e.uvarint(uint64(len(a.Locks)))
	for _, l := range a.Locks {
		e.stringRef(l)
	}
	frames := a.Stack.Frames()
	e.uvarint(uint64(len(frames)))
	for _, f := range frames {
		e.stringRef(f.Func)
		e.stringRef(f.File)
		e.zigzag(int64(f.Line))
	}
}

func (e *recEncoder) record(r Record) {
	e.buf.WriteByte(kindRecord)
	e.stringRef(r.Key)
	e.stringRef(r.Unit)
	e.uvarint(uint64(len(r.RunIDs)))
	for _, id := range r.RunIDs {
		e.stringRef(id)
	}
	e.uvarint(r.Count)
	e.stringRef(string(r.Category))
	e.uvarint(uint64(len(r.Labels)))
	for _, l := range r.Labels {
		e.stringRef(string(l))
	}
	e.stringRef(r.Detector)
	e.stringRef(r.TracePath)
	e.uvarint(r.Race.Seq)
	e.stringRef(r.Race.Detector)
	e.access(r.Race.First)
	e.access(r.Race.Second)
}

func (e *recEncoder) run(info RunInfo) {
	e.buf.WriteByte(kindRun)
	e.stringRef(info.ID)
	e.stringRef(info.Label)
	e.uvarint(uint64(info.Executions))
	e.uvarint(uint64(info.Reports))
}

// writeFrame frames the encoder's payload (length, CRC, payload) into
// one buffer and writes it with a single Write call.
func (e *recEncoder) writeFrame(w io.Writer) error {
	payload := e.buf.Bytes()
	var frame bytes.Buffer
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], uint64(len(payload)))
	frame.Write(scratch[:n])
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	frame.Write(crc[:])
	frame.Write(payload)
	_, err := w.Write(frame.Bytes())
	return err
}

// recDecoder decodes one frame payload from an in-memory slice.
type recDecoder struct {
	buf     []byte
	off     int
	strings []string
}

var errTruncated = fmt.Errorf("unexpected end of record")

func (d *recDecoder) byte() (byte, error) {
	if d.off >= len(d.buf) {
		return 0, errTruncated
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *recDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, errTruncated
	}
	d.off += n
	return v, nil
}

func (d *recDecoder) zigzag() (int64, error) {
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		return 0, errTruncated
	}
	d.off += n
	return v, nil
}

func (d *recDecoder) stringRef() (string, error) {
	idx, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if idx < uint64(len(d.strings)) {
		return d.strings[idx], nil
	}
	if idx != uint64(len(d.strings)) {
		return "", fmt.Errorf("string ref %d out of range (table has %d)", idx, len(d.strings))
	}
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > 1<<20 || uint64(len(d.buf)-d.off) < n {
		return "", fmt.Errorf("string length %d implausible", n)
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	d.strings = append(d.strings, s)
	return s, nil
}

func (d *recDecoder) stringList() ([]string, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.buf)-d.off) {
		return nil, fmt.Errorf("list length %d implausible", n)
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]string, n)
	for i := range out {
		if out[i], err = d.stringRef(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (d *recDecoder) access() (report.Access, error) {
	var a report.Access
	g, err := d.uvarint()
	if err != nil {
		return a, err
	}
	a.G = vclock.TID(g)
	if a.GName, err = d.stringRef(); err != nil {
		return a, err
	}
	op, err := d.byte()
	if err != nil {
		return a, err
	}
	a.Op = trace.Op(op)
	addr, err := d.uvarint()
	if err != nil {
		return a, err
	}
	a.Addr = trace.Addr(addr)
	if a.Seq, err = d.uvarint(); err != nil {
		return a, err
	}
	if a.Label, err = d.stringRef(); err != nil {
		return a, err
	}
	atomic, err := d.byte()
	if err != nil {
		return a, err
	}
	a.Atomic = atomic != 0
	if a.Locks, err = d.stringList(); err != nil {
		return a, err
	}
	depth, err := d.uvarint()
	if err != nil {
		return a, err
	}
	if depth > 1<<16 {
		return a, fmt.Errorf("stack depth %d implausible", depth)
	}
	frames := make([]stack.Frame, depth)
	for i := range frames {
		if frames[i].Func, err = d.stringRef(); err != nil {
			return a, err
		}
		if frames[i].File, err = d.stringRef(); err != nil {
			return a, err
		}
		line, err := d.zigzag()
		if err != nil {
			return a, err
		}
		frames[i].Line = int(line)
	}
	a.Stack = stack.NewContext(frames...)
	return a, nil
}

func (d *recDecoder) record() (Record, error) {
	var r Record
	var err error
	if r.Key, err = d.stringRef(); err != nil {
		return r, err
	}
	if r.Unit, err = d.stringRef(); err != nil {
		return r, err
	}
	if r.RunIDs, err = d.stringList(); err != nil {
		return r, err
	}
	if r.Count, err = d.uvarint(); err != nil {
		return r, err
	}
	cat, err := d.stringRef()
	if err != nil {
		return r, err
	}
	r.Category = taxonomy.Category(cat)
	labels, err := d.stringList()
	if err != nil {
		return r, err
	}
	for _, l := range labels {
		r.Labels = append(r.Labels, taxonomy.Category(l))
	}
	if r.Detector, err = d.stringRef(); err != nil {
		return r, err
	}
	if r.TracePath, err = d.stringRef(); err != nil {
		return r, err
	}
	if r.Race.Seq, err = d.uvarint(); err != nil {
		return r, err
	}
	if r.Race.Detector, err = d.stringRef(); err != nil {
		return r, err
	}
	if r.Race.First, err = d.access(); err != nil {
		return r, err
	}
	if r.Race.Second, err = d.access(); err != nil {
		return r, err
	}
	return r, nil
}

func (d *recDecoder) run() (RunInfo, error) {
	var info RunInfo
	var err error
	if info.ID, err = d.stringRef(); err != nil {
		return info, err
	}
	if info.Label, err = d.stringRef(); err != nil {
		return info, err
	}
	execs, err := d.uvarint()
	if err != nil {
		return info, err
	}
	info.Executions = int(execs)
	reports, err := d.uvarint()
	if err != nil {
		return info, err
	}
	info.Reports = int(reports)
	return info, nil
}
