package corpus

import (
	"fmt"
	"os"
	"strings"

	"gorace/internal/classify"
	"gorace/internal/detector"
	"gorace/internal/report"
	"gorace/internal/sweep"
	"gorace/internal/taxonomy"
	"gorace/internal/trace"
)

// Collector is the sweep aggregator that folds a campaign straight
// into a corpus store: it deduplicates race reports per unit with the
// §3.3.1 hash, counts occurrences, classifies each defect's first
// manifesting report while its trace is still at hand, and (with
// WithTraceDir) retains that trace for replay. AppendTo then writes
// one run marker plus one Record per defect.
//
// Use one Collector per campaign run id, as a sweep.Factory:
//
//	coll := func() sweep.Aggregator { return corpus.NewCollector(runID) }
//	aggs, _, err := sweep.New().Run(units, coll)
//	err = aggs[0].(*corpus.Collector).AppendTo(store)
//
// Like every sweep aggregator, the engine folds shard instances in
// shard order, so the collected corpus — including which seed's trace
// defines each defect — is deterministic at any parallelism.
type Collector struct {
	runID    string
	label    string
	traceDir string

	executions int
	reports    int
	units      []*unitAgg // indexed by UnitIdx
}

// unitAgg is one unit's deduplicated defects.
type unitAgg struct {
	counts map[string]uint64 // race hash -> raw reports observed
	order  []string          // hashes in first-manifestation order
	defs   map[string]*defining
}

// defining is a defect's first manifesting report and its context.
type defining struct {
	unit     string
	seed     int64
	race     report.Race
	detector string // registry name, replayable via detector.New
	labels   []taxonomy.Category
	trace    *trace.Recorder // retained for WithTraceDir, else nil
}

// CollectorOption configures a Collector.
type CollectorOption func(*Collector)

// WithRunLabel attaches free-form metadata to the run marker
// ("nightly", "ci-1234", ...).
func WithRunLabel(label string) CollectorOption {
	return func(c *Collector) { c.label = label }
}

// WithTraceDir retains each defect's defining trace (for units that
// record) and saves it under dir — in the binary trace codec, named
// TraceFileName(key) — when the collector is appended to a store. The
// record's TracePath points at the saved file.
func WithTraceDir(dir string) CollectorOption {
	return func(c *Collector) { c.traceDir = dir }
}

// NewCollector returns an empty Collector for one campaign run.
func NewCollector(runID string, opts ...CollectorOption) *Collector {
	c := &Collector{runID: runID}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// NewCollectorFromRecords reconstructs a collector from transported
// shard records — the corpus half of remote-result folding. A
// distributed worker ships its shard's Records() (plus execution and
// report counts) as a binary delta; the coordinator rebuilds the
// collector here and folds it into the campaign root with Merge, in
// shard order, yielding exactly the corpus a local run of the same
// shards would have collected. unitIdx maps each record's Unit id
// back to its campaign unit index (the coordinate Merge folds by);
// an unknown unit is an error — it means the two nodes disagree about
// the campaign spec. Traces are not transported: reconstructed
// defects carry no retained trace.
func NewCollectorFromRecords(runID string, executions, reports int, recs []Record, unitIdx map[string]int) (*Collector, error) {
	c := &Collector{runID: runID, executions: executions, reports: reports}
	for _, rec := range recs {
		idx, ok := unitIdx[rec.Unit]
		if !ok {
			return nil, fmt.Errorf("corpus: shard record for unknown unit %q", rec.Unit)
		}
		h := strings.TrimPrefix(rec.Key, rec.Unit+"/")
		ua := c.unit(idx)
		if _, dup := ua.defs[h]; dup {
			return nil, fmt.Errorf("corpus: duplicate shard record %q", rec.Key)
		}
		ua.counts[h] += rec.Count
		ua.order = append(ua.order, h)
		ua.defs[h] = &defining{
			unit:     rec.Unit,
			race:     rec.Race,
			detector: rec.Detector,
			labels:   rec.Labels,
		}
	}
	return c, nil
}

// RunID returns the run id this collector attributes its defects to.
func (c *Collector) RunID() string { return c.runID }

func (c *Collector) unit(idx int) *unitAgg {
	for len(c.units) <= idx {
		c.units = append(c.units, nil)
	}
	if c.units[idx] == nil {
		c.units[idx] = &unitAgg{
			counts: make(map[string]uint64),
			defs:   make(map[string]*defining),
		}
	}
	return c.units[idx]
}

// Observe implements sweep.Aggregator.
func (c *Collector) Observe(r sweep.Run) {
	c.executions++
	races := r.Outcome.Races
	c.reports += len(races)
	if len(races) == 0 {
		return
	}
	ua := c.unit(r.UnitIdx)
	for _, race := range races {
		ua.counts[race.Hash()]++
	}
	for _, race := range report.UniqueByHash(races) {
		h := race.Hash()
		if _, ok := ua.defs[h]; ok {
			continue
		}
		var events []trace.Event
		if r.Outcome.Trace != nil {
			events = r.Outcome.Trace.Events
		}
		// Record the *registry* detector name, not the report's
		// display name, so `racedb replay` can resolve it.
		detName := r.Unit.Detector
		if detName == "" {
			detName = detector.DefaultName
		}
		d := &defining{
			unit:     r.Unit.ID,
			seed:     r.Seed,
			race:     race,
			detector: detName,
			labels:   classify.Classify(race, classify.HintsFromTrace(events)),
		}
		if c.traceDir != "" {
			d.trace = r.Outcome.Trace // outcomes own their traces
		}
		ua.order = append(ua.order, h)
		ua.defs[h] = d
	}
}

// Merge implements sweep.Aggregator: next covers strictly later runs,
// so its defining reports only fill hashes this instance never saw.
func (c *Collector) Merge(next sweep.Aggregator) {
	o := next.(*Collector)
	c.executions += o.executions
	c.reports += o.reports
	for idx, oua := range o.units {
		if oua == nil {
			continue
		}
		ua := c.unit(idx)
		for h, n := range oua.counts {
			ua.counts[h] += n
		}
		for _, h := range oua.order {
			if _, ok := ua.defs[h]; ok {
				continue
			}
			ua.order = append(ua.order, h)
			ua.defs[h] = oua.defs[h]
		}
	}
}

// Executions returns the number of program executions observed.
func (c *Collector) Executions() int { return c.executions }

// Reports returns the number of raw race reports observed.
func (c *Collector) Reports() int { return c.reports }

// Defects returns the number of deduplicated defects collected.
func (c *Collector) Defects() int {
	n := 0
	for _, ua := range c.units {
		if ua != nil {
			n += len(ua.order)
		}
	}
	return n
}

// Records renders the collected corpus as store records for this run,
// in canonical order (unit index, then first manifestation within the
// unit). TracePath is left empty; AppendTo fills it when saving
// traces.
func (c *Collector) Records() []Record {
	var out []Record
	for _, ua := range c.units {
		if ua == nil {
			continue
		}
		for _, h := range ua.order {
			d := ua.defs[h]
			rec := Record{
				Key:      d.unit + "/" + h,
				Unit:     d.unit,
				RunIDs:   []string{c.runID},
				Count:    ua.counts[h],
				Labels:   d.labels,
				Detector: d.detector,
				Race:     d.race,
			}
			if len(d.labels) > 0 {
				rec.Category = d.labels[0]
			}
			out = append(out, rec)
		}
	}
	return out
}

// AppendTo writes the run marker and every collected defect to the
// store; with WithTraceDir it first saves each defect's defining
// trace and points the record at it. Call once, on the campaign's
// root collector.
func (c *Collector) AppendTo(store *Store) error {
	err := store.AppendRun(RunInfo{
		ID: c.runID, Label: c.label,
		Executions: c.executions, Reports: c.reports,
	})
	if err != nil {
		return err
	}
	recs := c.Records()
	if c.traceDir != "" {
		if err := os.MkdirAll(c.traceDir, 0o755); err != nil {
			return fmt.Errorf("corpus: trace dir: %w", err)
		}
		i := 0
		for _, ua := range c.units {
			if ua == nil {
				continue
			}
			for _, h := range ua.order {
				if d := ua.defs[h]; d.trace != nil {
					path := TracePathIn(c.traceDir, recs[i].Key)
					if err := saveTrace(path, d.trace); err != nil {
						return err
					}
					recs[i].TracePath = path
				}
				i++
			}
		}
	}
	if err := store.Append(recs...); err != nil {
		return err
	}
	// One fsync per run, not per record: the whole night becomes
	// power-loss durable at the batch boundary.
	return store.Sync()
}

func saveTrace(path string, rec *trace.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("corpus: save trace: %w", err)
	}
	if err := rec.Save(f); err != nil {
		f.Close()
		return fmt.Errorf("corpus: save trace %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("corpus: save trace %s: %w", path, err)
	}
	return nil
}
