// Package corpus is the persistent race-corpus store: the layer that
// turns one-shot detection into the paper's longitudinal study engine.
//
// The paper's headline numbers come from running detection
// continuously over a monorepo and studying the *accumulated* corpus
// of deduplicated races across months of nightly runs (§3.3, §4). A
// Store persists that accumulation on disk: one Record per
// deduplicated defect — keyed by the unit-scoped §3.3.1 dedup hash —
// carrying the run ids it was seen in, its total occurrence count,
// its root-cause labels from internal/classify, and an optional
// pointer to a saved binary trace for post-facto replay.
//
// The file is an append-only log of CRC-framed records (see codec.go
// for the exact layout); Open folds the log into per-key state, so a
// defect appended by fifty nightly runs is one Record with fifty run
// ids. Append is crash-safe — a torn final frame is detected and
// truncated on the next Open, losing at most the in-flight record —
// and Compact atomically rewrites the log in folded form via a
// temp-file rename.
//
// Run ids are ordered by string comparison, so choose ids that sort
// chronologically (ISO timestamps, zero-padded counters). Merging
// (Merge, ApplyDelta) unions run-id sets and sums occurrence counts,
// skipping runs already in the history — so re-merging the same
// per-run delta is a no-op and merge order does not matter, the
// property the distributed service's corpus federation is built on
// (see delta.go).
package corpus

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"gorace/internal/report"
	"gorace/internal/taxonomy"
)

// Record is one deduplicated race defect with its cross-run history.
type Record struct {
	// Key is the store-wide dedup key, "<unit>/<§3.3.1 hash>": the
	// same race pattern at two code sites is two defects.
	Key string
	// Unit names the code site (service/test, pattern/strategy, ...).
	Unit string
	// RunIDs lists the runs in which the defect was observed, sorted.
	RunIDs []string
	// Count totals raw race reports attributed to the defect across
	// all runs (before per-run dedup).
	Count uint64
	// Category is the primary root-cause label from internal/classify;
	// Labels is the full ordered label list.
	Category taxonomy.Category
	Labels   []taxonomy.Category
	// Detector is the registry name of the detector that produced the
	// defining report, resolvable with detector.New for replay.
	Detector string
	// TracePath optionally points at a saved binary trace of the
	// defining run, replayable with trace.Load (racedb replay).
	TracePath string
	// Race is the defining report: the first manifestation observed in
	// the defect's earliest run.
	Race report.Race
}

// FirstSeen returns the earliest run id the defect was seen in.
func (r Record) FirstSeen() string {
	if len(r.RunIDs) == 0 {
		return ""
	}
	return r.RunIDs[0]
}

// LastSeen returns the latest run id the defect was seen in.
func (r Record) LastSeen() string {
	if len(r.RunIDs) == 0 {
		return ""
	}
	return r.RunIDs[len(r.RunIDs)-1]
}

// SeenIn reports whether the defect was observed in the given run.
func (r Record) SeenIn(runID string) bool {
	i := sort.SearchStrings(r.RunIDs, runID)
	return i < len(r.RunIDs) && r.RunIDs[i] == runID
}

// RunInfo is one appended run (e.g. one nightly sweep): the store's
// unit of history.
type RunInfo struct {
	// ID orders the run; ids compare as strings, so use forms that
	// sort chronologically.
	ID string
	// Label is free-form run metadata ("nightly", "ci-1234", ...).
	Label string
	// Executions counts program executions the run performed.
	Executions int
	// Reports counts raw race reports the run observed (before dedup).
	Reports int
}

// Delta is the cross-run diff surfaced by nightly reports: defects
// new in run B, resolved since run A, and recurring in both.
type Delta struct {
	RunA, RunB string
	// New lists defects seen in B but not in A.
	New []Record
	// Resolved lists defects seen in A but not in B.
	Resolved []Record
	// Recurring lists defects seen in both runs.
	Recurring []Record
}

// Store is an open corpus store. It holds the folded state in memory
// and an append handle on the log; it is not safe for concurrent use.
// Concurrent readers should take a Snapshot — an immutable View of the
// folded state — and serialize mutations externally (internal/service
// does exactly that).
type Store struct {
	path  string
	f     *os.File
	byKey map[string]*Record
	// defRun tracks, per key, the run id the record's defining fields
	// (Category, Labels, Detector, TracePath, Race) came from. The
	// fold keeps the fields of the *earliest* run — not the first
	// appended — so folding the same per-run records in any order
	// converges on one state, which is what lets distributed deltas
	// merge commutatively (see fold).
	defRun map[string]string
	runs   map[string]*RunInfo
	// runOrder preserves first-append order of run ids, the order
	// Runs returns (append order is chronological in normal use).
	runOrder []string
	// gen counts applied frames (records + run markers), including
	// those replayed by load. It only ever grows, so two Snapshots
	// with equal generations hold identical folded state.
	gen uint64
}

// Open opens the store at path, creating an empty one if the file
// does not exist. A torn final frame (crash mid-append) is truncated
// away; corruption anywhere before the final frame fails the open
// rather than discarding history.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("corpus: open %s: %w", path, err)
	}
	s := &Store{
		path:   path,
		f:      f,
		byKey:  make(map[string]*Record),
		defRun: make(map[string]string),
		runs:   make(map[string]*RunInfo),
	}
	if err := s.load(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// load reads the whole log, folds it into memory, and truncates a
// torn tail so the file ends on a frame boundary for appending.
func (s *Store) load() error {
	data, err := io.ReadAll(s.f)
	if err != nil {
		return fmt.Errorf("corpus: read %s: %w", s.path, err)
	}
	if len(data) == 0 {
		// Fresh store: write the header.
		e := newRecEncoder()
		e.buf.Write(storeMagic[:])
		e.uvarint(storeVersion)
		if _, err := s.f.Write(e.buf.Bytes()); err != nil {
			return fmt.Errorf("corpus: write header: %w", err)
		}
		return nil
	}
	if len(data) < len(storeMagic) || string(data[:len(storeMagic)]) != string(storeMagic[:]) {
		return fmt.Errorf("corpus: %s is not a corpus store (bad magic)", s.path)
	}
	d := &recDecoder{buf: data, off: len(storeMagic)}
	version, err := d.uvarint()
	if err != nil {
		return fmt.Errorf("corpus: %s: header: %w", s.path, err)
	}
	if version != storeVersion {
		return fmt.Errorf("corpus: %s: unsupported store version %d (want %d)", s.path, version, storeVersion)
	}

	// Scan frames until EOF. good marks the end of the last intact
	// frame. A *tail* tear — the frame extends past EOF, or the final
	// frame's CRC mismatches — is the signature of a crash mid-append
	// and is truncated away, losing at most that record. A bad frame
	// with intact frames after it is corruption, not a tear: fail the
	// open rather than silently discard history.
	good := d.off
	for d.off < len(data) {
		payload, err := nextFrame(d)
		if err == errTornTail {
			break
		}
		if err != nil {
			return fmt.Errorf("corpus: %s: frame at offset %d: %w", s.path, good, err)
		}
		// The CRC already validated, so a payload that fails to decode
		// is a writer/reader mismatch, not a tear — error even at EOF.
		if err := s.apply(payload); err != nil {
			return fmt.Errorf("corpus: %s: frame at offset %d: %w", s.path, good, err)
		}
		good = d.off
	}
	if good < len(data) {
		if err := s.f.Truncate(int64(good)); err != nil {
			return fmt.Errorf("corpus: truncate torn tail: %w", err)
		}
	}
	if _, err := s.f.Seek(int64(good), io.SeekStart); err != nil {
		return fmt.Errorf("corpus: seek: %w", err)
	}
	return nil
}

// errTornTail marks a frame cut off by the end of the file — the
// expected shape of a crash mid-append.
var errTornTail = fmt.Errorf("torn tail frame")

// nextFrame reads one frame's payload. It returns errTornTail when
// the frame runs past EOF or the *final* frame's CRC mismatches
// (recoverable by truncation), and a hard error for corruption with
// intact data after it.
func nextFrame(d *recDecoder) ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, errTornTail // length varint cut off at EOF
	}
	if n > maxFramePayload {
		return nil, fmt.Errorf("frame length %d implausible", n)
	}
	if len(d.buf)-d.off < 4+int(n) {
		return nil, errTornTail
	}
	crc := uint32(d.buf[d.off]) | uint32(d.buf[d.off+1])<<8 |
		uint32(d.buf[d.off+2])<<16 | uint32(d.buf[d.off+3])<<24
	d.off += 4
	payload := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	if crc32.ChecksumIEEE(payload) != crc {
		if d.off >= len(d.buf) {
			return nil, errTornTail
		}
		return nil, fmt.Errorf("CRC mismatch mid-file (payload %d bytes)", n)
	}
	return payload, nil
}

// apply folds one decoded frame into the in-memory state. Unknown
// payload kinds are skipped for forward compatibility.
func (s *Store) apply(payload []byte) error {
	d := &recDecoder{buf: payload, strings: []string{""}}
	kind, err := d.byte()
	if err != nil {
		return err
	}
	switch kind {
	case kindRecord:
		rec, err := d.record()
		if err != nil {
			return err
		}
		s.fold(rec)
	case kindRun:
		info, err := d.run()
		if err != nil {
			return err
		}
		s.foldRun(info)
	}
	return nil
}

// fold merges rec into the in-memory state: run-id sets union, counts
// add, and the defect's *earliest run* supplies the defining report
// and labels (ties keep the record already in place). Earliest-run-
// wins — rather than first-appended-wins — makes the fold commutative
// at run granularity: appending the same per-run records in any order
// converges on identical folded state, the property distributed
// corpus merging (Merge, ApplyDelta) relies on. In the common
// chronological-append case (nightlies appended in run-id order) the
// two rules agree.
func (s *Store) fold(rec Record) {
	s.gen++
	cur, ok := s.byKey[rec.Key]
	if !ok {
		cp := rec
		cp.RunIDs = append([]string(nil), rec.RunIDs...)
		sort.Strings(cp.RunIDs)
		s.byKey[rec.Key] = &cp
		s.defRun[rec.Key] = cp.FirstSeen()
		return
	}
	recRun := ""
	if len(rec.RunIDs) > 0 {
		ids := append([]string(nil), rec.RunIDs...)
		sort.Strings(ids)
		recRun = ids[0]
	}
	curRun := s.defRun[rec.Key]
	if recRun != "" && (curRun == "" || recRun < curRun) {
		// rec comes from a strictly earlier run: its defining fields
		// win, with cur's old fields only filling what rec left empty.
		old := *cur
		cur.Category, cur.Labels = rec.Category, rec.Labels
		cur.Detector, cur.TracePath = rec.Detector, rec.TracePath
		cur.Race = rec.Race
		s.defRun[rec.Key] = recRun
		fillDefining(cur, &old)
	} else {
		fillDefining(cur, &rec)
	}
	cur.RunIDs = mergeRuns(cur.RunIDs, rec.RunIDs)
	cur.Count += rec.Count
}

// fillDefining fills cur's empty defining fields from other, so a
// defining record that lacks (say) a trace path still picks one up
// from a later sighting — in either fold order.
func fillDefining(cur, other *Record) {
	if cur.Category == "" {
		cur.Category = other.Category
	}
	if len(cur.Labels) == 0 {
		cur.Labels = other.Labels
	}
	if cur.Detector == "" {
		cur.Detector = other.Detector
	}
	if cur.TracePath == "" {
		cur.TracePath = other.TracePath
	}
}

func (s *Store) foldRun(info RunInfo) {
	s.gen++
	cur, ok := s.runs[info.ID]
	if !ok {
		cp := info
		s.runs[info.ID] = &cp
		s.runOrder = append(s.runOrder, info.ID)
		return
	}
	cur.Executions += info.Executions
	cur.Reports += info.Reports
	if cur.Label == "" {
		cur.Label = info.Label
	}
}

// mergeRuns unions two sorted run-id lists (b need not be sorted).
func mergeRuns(a, b []string) []string {
	out := a
	for _, id := range b {
		i := sort.SearchStrings(out, id)
		if i < len(out) && out[i] == id {
			continue
		}
		out = append(out, "")
		copy(out[i+1:], out[i:])
		out[i] = id
	}
	return out
}

// Append appends records to the log and folds them into the open
// store. Each record is written as one CRC-framed Write, so a crash
// loses at most the frame being written. Appends reach the OS
// immediately but not the platter: call Sync at a batch boundary
// (Collector.AppendTo and Merge do) to make them power-loss durable.
func (s *Store) Append(recs ...Record) error {
	for _, rec := range recs {
		if rec.Key == "" {
			return fmt.Errorf("corpus: append: record with empty key")
		}
		sort.Strings(rec.RunIDs)
		e := newRecEncoder()
		e.record(rec)
		if err := e.writeFrame(s.f); err != nil {
			return fmt.Errorf("corpus: append: %w", err)
		}
		s.fold(rec)
	}
	return nil
}

// AppendRun appends a run marker. Append one per run even when no
// races were found — an empty run is what makes a defect *resolved*
// in a later Diff.
func (s *Store) AppendRun(info RunInfo) error {
	if info.ID == "" {
		return fmt.Errorf("corpus: append run: empty run id")
	}
	e := newRecEncoder()
	e.run(info)
	if err := e.writeFrame(s.f); err != nil {
		return fmt.Errorf("corpus: append run: %w", err)
	}
	s.foldRun(info)
	return nil
}

// Merge folds other's record and run-marker history into s, appending
// to s's log and syncing at the end. Merging is idempotent and
// order-independent at *run* granularity: run markers already in s's
// history are skipped, and so is any record all of whose run ids are
// already recorded — merging the same delta twice, or two deltas in
// either order, yields identical folded state (the defining report is
// resolved by earliest run id, not append order). The one ambiguity
// left is a record spanning several runs of which only some are new:
// its occurrence count cannot be split per run, so it folds whole and
// over-counts. Per-run deltas — what Collector, ExportDelta, and the
// distributed shard protocol produce — never hit that case.
func (s *Store) Merge(other *Store) error {
	return s.ApplyDelta(Export{Runs: other.Runs(), Records: other.Records()})
}

// Sync fsyncs the log: appends made so far survive power loss, not
// just a process crash.
func (s *Store) Sync() error {
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("corpus: sync: %w", err)
	}
	return nil
}

// copyRecord returns a Record whose slices do not alias store state.
// Appends keep folding into the store's internal RunIDs backing
// arrays, so handing those slices out would let a reader observe — or
// race with — a concurrent fold. Every read accessor copies.
func copyRecord(rec *Record) Record {
	out := *rec
	out.RunIDs = append([]string(nil), rec.RunIDs...)
	if rec.Labels != nil {
		out.Labels = append([]taxonomy.Category(nil), rec.Labels...)
	}
	return out
}

// Records returns the folded defect records, sorted by key. The
// returned records own their slices: mutating them — or appending to
// the store afterwards — cannot corrupt (or race with) the caller's
// view.
func (s *Store) Records() []Record {
	keys := make([]string, 0, len(s.byKey))
	for k := range s.byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Record, len(keys))
	for i, k := range keys {
		out[i] = copyRecord(s.byKey[k])
	}
	return out
}

// Get returns the folded record for key. Like Records, the result is
// a defensive copy that never aliases store state.
func (s *Store) Get(key string) (Record, bool) {
	rec, ok := s.byKey[key]
	if !ok {
		return Record{}, false
	}
	return copyRecord(rec), true
}

// Generation returns the store's fold generation: the count of frames
// applied so far (records and run markers, including those replayed
// from disk by Open). It grows on every append, so equal generations
// of one store imply identical folded state — the cache key
// internal/service uses.
func (s *Store) Generation() uint64 { return s.gen }

// Len returns the number of deduplicated defects in the store.
func (s *Store) Len() int { return len(s.byKey) }

// Path returns the file path the store was opened at.
func (s *Store) Path() string { return s.path }

// Runs returns the run history in first-append order.
func (s *Store) Runs() []RunInfo {
	out := make([]RunInfo, len(s.runOrder))
	for i, id := range s.runOrder {
		out[i] = *s.runs[id]
	}
	return out
}

// LastRun returns the most recently appended run id, or "" for an
// empty history.
func (s *Store) LastRun() string {
	if len(s.runOrder) == 0 {
		return ""
	}
	return s.runOrder[len(s.runOrder)-1]
}

// Diff computes the cross-run delta between two recorded runs: which
// defects are new in runB, resolved since runA, and recurring in
// both. Both ids must name appended runs.
func (s *Store) Diff(runA, runB string) (Delta, error) {
	delta := Delta{RunA: runA, RunB: runB}
	for _, id := range []string{runA, runB} {
		if _, ok := s.runs[id]; !ok {
			return delta, fmt.Errorf("corpus: unknown run id %q (have %d runs)", id, len(s.runs))
		}
	}
	for _, rec := range s.Records() {
		inA, inB := rec.SeenIn(runA), rec.SeenIn(runB)
		switch {
		case inA && inB:
			delta.Recurring = append(delta.Recurring, rec)
		case inB:
			delta.New = append(delta.New, rec)
		case inA:
			delta.Resolved = append(delta.Resolved, rec)
		}
	}
	return delta, nil
}

// Compact atomically rewrites the log in folded form — one frame per
// run marker and per defect — via a temp file renamed over the
// original. The open handle moves to the compacted file.
func (s *Store) Compact() error {
	tmp := s.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("corpus: compact: %w", err)
	}
	defer os.Remove(tmp) // no-op after a successful rename
	header := newRecEncoder()
	header.buf.Write(storeMagic[:])
	header.uvarint(storeVersion)
	if _, err := f.Write(header.buf.Bytes()); err != nil {
		f.Close()
		return fmt.Errorf("corpus: compact: %w", err)
	}
	for _, id := range s.runOrder {
		e := newRecEncoder()
		e.run(*s.runs[id])
		if err := e.writeFrame(f); err != nil {
			f.Close()
			return fmt.Errorf("corpus: compact: %w", err)
		}
	}
	for _, rec := range s.Records() {
		e := newRecEncoder()
		e.record(rec)
		if err := e.writeFrame(f); err != nil {
			f.Close()
			return fmt.Errorf("corpus: compact: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("corpus: compact: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("corpus: compact: %w", err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		return fmt.Errorf("corpus: compact: %w", err)
	}
	// Reopen the append handle on the compacted file.
	old := s.f
	nf, err := os.OpenFile(s.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("corpus: compact: reopen: %w", err)
	}
	if _, err := nf.Seek(0, io.SeekEnd); err != nil {
		nf.Close()
		return fmt.Errorf("corpus: compact: seek: %w", err)
	}
	old.Close()
	s.f = nf
	return nil
}

// Close releases the append handle. The store must not be used after.
func (s *Store) Close() error {
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	return err
}

// TraceFileName returns the canonical file name for a defect's saved
// trace inside a trace directory: the key with path separators and
// unusual characters flattened.
func TraceFileName(key string) string {
	out := make([]byte, 0, len(key)+6)
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out) + ".trace"
}

// TracePathIn joins dir and the canonical trace file name for key.
func TracePathIn(dir, key string) string {
	return filepath.Join(dir, TraceFileName(key))
}
