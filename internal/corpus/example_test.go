package corpus_test

import (
	"fmt"
	"os"
	"path/filepath"

	"gorace/internal/corpus"
)

// ExampleOpen opens (creating) a store, appends one night's worth of
// history — a run marker plus a deduplicated defect — and reads the
// folded record back. Reopening the same path folds the append-only
// log back into the same state.
func ExampleOpen() {
	dir, _ := os.MkdirTemp("", "corpus-example")
	defer os.RemoveAll(dir)

	store, err := corpus.Open(filepath.Join(dir, "races.db"))
	if err != nil {
		panic(err)
	}
	defer store.Close()

	store.AppendRun(corpus.RunInfo{
		ID: "2026-07-01", Label: "nightly", Executions: 120, Reports: 3,
	})
	store.Append(corpus.Record{
		Key:    "checkout/ab12cd34",
		Unit:   "checkout",
		RunIDs: []string{"2026-07-01"},
		Count:  3,
	})

	rec, _ := store.Get("checkout/ab12cd34")
	fmt.Printf("%d defect(s); %s seen %dx, first in %s\n",
		store.Len(), rec.Key, rec.Count, rec.FirstSeen())
	// Output:
	// 1 defect(s); checkout/ab12cd34 seen 3x, first in 2026-07-01
}

// ExampleStore_Diff appends two nightly runs and classifies the
// defects as new, resolved, or recurring between them — the delta the
// nightly report (and raced's /v1/diff endpoint) serves.
func ExampleStore_Diff() {
	dir, _ := os.MkdirTemp("", "corpus-example")
	defer os.RemoveAll(dir)

	store, err := corpus.Open(filepath.Join(dir, "races.db"))
	if err != nil {
		panic(err)
	}
	defer store.Close()

	// Night one sees two defects; night two sees one of them again
	// plus a brand new one.
	store.AppendRun(corpus.RunInfo{ID: "2026-07-01", Label: "nightly"})
	store.Append(
		corpus.Record{Key: "checkout/ab12", Unit: "checkout", RunIDs: []string{"2026-07-01"}, Count: 1},
		corpus.Record{Key: "billing/ef56", Unit: "billing", RunIDs: []string{"2026-07-01"}, Count: 2},
	)
	store.AppendRun(corpus.RunInfo{ID: "2026-07-02", Label: "nightly"})
	store.Append(
		corpus.Record{Key: "checkout/ab12", Unit: "checkout", RunIDs: []string{"2026-07-02"}, Count: 1},
		corpus.Record{Key: "search/9a0b", Unit: "search", RunIDs: []string{"2026-07-02"}, Count: 1},
	)

	delta, err := store.Diff("2026-07-01", "2026-07-02")
	if err != nil {
		panic(err)
	}
	fmt.Printf("new: %s\n", delta.New[0].Key)
	fmt.Printf("resolved: %s\n", delta.Resolved[0].Key)
	fmt.Printf("recurring: %s (seen %dx total)\n", delta.Recurring[0].Key, delta.Recurring[0].Count)
	// Output:
	// new: search/9a0b
	// resolved: billing/ef56
	// recurring: checkout/ab12 (seen 2x total)
}
