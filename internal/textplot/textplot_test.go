package textplot

import (
	"strings"
	"testing"
)

func TestChartBasicShape(t *testing.T) {
	s := Chart("demo", []Series{
		{Name: "up", Points: []float64{0, 1, 2, 3, 4}},
		{Name: "down", Points: []float64{4, 3, 2, 1, 0}},
	}, Options{Width: 20, Height: 5})
	if !strings.Contains(s, "demo") {
		t.Error("title missing")
	}
	if !strings.Contains(s, "* = up") || !strings.Contains(s, "+ = down") {
		t.Error("legend missing")
	}
	lines := strings.Split(s, "\n")
	// Title + 5 plot rows + axis + xlabel + 2 legend rows (+ trailing).
	if len(lines) < 9 {
		t.Fatalf("only %d lines", len(lines))
	}
	// The rising series must put a '*' in the top row's right side and
	// the bottom row's left side.
	top, bottom := lines[1], lines[5]
	if !strings.Contains(top, "*") || !strings.Contains(bottom, "*") {
		t.Errorf("rising series not spanning rows:\n%s", s)
	}
	if strings.Index(top, "*") < strings.Index(bottom, "*") {
		t.Errorf("rising series leans the wrong way:\n%s", s)
	}
}

func TestChartEmpty(t *testing.T) {
	s := Chart("t", nil, Options{})
	if !strings.Contains(s, "no data") {
		t.Fatalf("empty chart = %q", s)
	}
}

func TestChartConstantSeries(t *testing.T) {
	// A flat series must not divide by zero.
	s := Chart("flat", []Series{{Name: "c", Points: []float64{5, 5, 5}}}, Options{})
	if !strings.Contains(s, "c") {
		t.Fatal("flat series unrendered")
	}
}

func TestChartSinglePoint(t *testing.T) {
	s := Chart("", []Series{{Name: "p", Points: []float64{1}}}, Options{Width: 10, Height: 3})
	if !strings.Contains(s, "*") {
		t.Fatal("single point unrendered")
	}
}

func TestCDFIncludesBuckets(t *testing.T) {
	s := CDF("cdf", []string{"1", "2", "4"}, []Series{
		{Name: "go", Points: []float64{0, 0.5, 1}},
	}, Options{Width: 12, Height: 4})
	if !strings.Contains(s, "x buckets: 1 2 4") {
		t.Fatalf("bucket labels missing:\n%s", s)
	}
}

func TestDeterministicOutput(t *testing.T) {
	mk := func() string {
		return Chart("d", []Series{{Name: "a", Points: []float64{1, 3, 2}}}, Options{})
	}
	if mk() != mk() {
		t.Fatal("non-deterministic rendering")
	}
}
