// Package textplot renders small ASCII charts for the figure-
// regeneration commands: line charts for time series (Figures 3–4)
// and multi-series step charts for CDFs (Figure 1). Stdlib-only, fixed
// width, deterministic output suitable for golden tests.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of a chart.
type Series struct {
	Name   string
	Points []float64
}

// Options sizes a chart.
type Options struct {
	Width  int // plot columns (default 72)
	Height int // plot rows (default 16)
}

func (o Options) withDefaults() Options {
	if o.Width <= 0 {
		o.Width = 72
	}
	if o.Height <= 0 {
		o.Height = 16
	}
	return o
}

// markers distinguish up to six series.
var markers = []byte{'*', '+', 'o', 'x', '#', '@'}

// Chart renders the series over a common x-index (0..n-1 scaled to
// Width) and a common y-range. Returns a multi-line string with a
// y-axis, the plot area, and a legend.
func Chart(title string, series []Series, opts Options) string {
	opts = opts.withDefaults()
	maxLen := 0
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.Points) > maxLen {
			maxLen = len(s.Points)
		}
		for _, v := range s.Points {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if maxLen == 0 {
		return title + "\n(no data)\n"
	}
	if lo == hi {
		hi = lo + 1
	}

	grid := make([][]byte, opts.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opts.Width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i, v := range s.Points {
			col := 0
			if maxLen > 1 {
				col = i * (opts.Width - 1) / (maxLen - 1)
			}
			row := int(float64(opts.Height-1) * (hi - v) / (hi - lo))
			if row < 0 {
				row = 0
			}
			if row >= opts.Height {
				row = opts.Height - 1
			}
			grid[row][col] = m
		}
	}

	var b strings.Builder
	if title != "" {
		b.WriteString(title)
		b.WriteByte('\n')
	}
	for r, line := range grid {
		yval := hi - (hi-lo)*float64(r)/float64(opts.Height-1)
		fmt.Fprintf(&b, "%10.1f |%s\n", yval, string(line))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", opts.Width))
	fmt.Fprintf(&b, "%10s  0%*s\n", "", opts.Width-1, fmt.Sprintf("%d", maxLen-1))
	for si, s := range series {
		fmt.Fprintf(&b, "%10s  %c = %s\n", "", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// CDF renders cumulative-distribution series against labeled buckets
// (the Figure 1 shape): x positions are bucket indices.
func CDF(title string, bucketLabels []string, series []Series, opts Options) string {
	opts = opts.withDefaults()
	body := Chart(title, series, opts)
	var b strings.Builder
	b.WriteString(body)
	fmt.Fprintf(&b, "%10s  x buckets: %s\n", "", strings.Join(bucketLabels, " "))
	return b.String()
}
