package fleet

import (
	"math/rand"
	"strings"
	"testing"
)

func TestProfilesWellFormed(t *testing.T) {
	for _, p := range Profiles {
		if len(p.CDF) != len(Buckets) {
			t.Fatalf("%s: CDF has %d points, want %d", p.Lang, len(p.CDF), len(Buckets))
		}
		prev := 0.0
		for i, c := range p.CDF {
			if c < prev {
				t.Fatalf("%s: CDF decreases at bucket %d", p.Lang, i)
			}
			prev = c
		}
		if p.CDF[len(p.CDF)-1] != 1 {
			t.Fatalf("%s: CDF does not reach 1", p.Lang)
		}
	}
}

func TestProfileFor(t *testing.T) {
	if _, ok := ProfileFor("go"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	if _, ok := ProfileFor("cobol"); ok {
		t.Fatal("unknown language found")
	}
}

func TestScanMatchesPublishedCurve(t *testing.T) {
	// Re-measuring the sampled fleet must reproduce the input CDF
	// within sampling error.
	rng := rand.New(rand.NewSource(1))
	for _, p := range Profiles {
		fleet := SampleFleet(p, rng)
		got := Scan(fleet)
		for i := range Buckets {
			if diff := got[i] - p.CDF[i]; diff > 0.02 || diff < -0.02 {
				t.Errorf("%s bucket %d: scanned %.3f vs published %.3f",
					p.Lang, Buckets[i], got[i], p.CDF[i])
			}
		}
	}
}

func TestObservation2Medians(t *testing.T) {
	// "the 50% percentile of the number of threads is 16 in NodeJS,
	// 16 in Python, 256 in Java, and 2048 in Go."
	//
	// Note on Java: the paper's own Figure 1 series has CDF(256)=0.42
	// and CDF(512)=0.70, so the median crosses 0.5 inside the 512
	// bucket; the text's "256" is inconsistent with the published
	// curve. We assert what the published data actually implies (512)
	// and record the discrepancy in EXPERIMENTS.md.
	want := map[string]int{"Go": 2048, "Java": 512, "Node": 16, "Python": 16}
	for _, s := range RunExperiment(42) {
		if got := s.P50; got != want[s.Lang] {
			t.Errorf("%s p50 = %d, want %d", s.Lang, got, want[s.Lang])
		}
	}
}

func TestGoVsJavaConcurrencyRatio(t *testing.T) {
	// Observation 2: Go exposes ~8× more runtime concurrency than Java.
	series := RunExperiment(7)
	var goP50, javaP50 int
	for _, s := range series {
		switch s.Lang {
		case "Go":
			goP50 = s.P50
		case "Java":
			javaP50 = s.P50
		}
	}
	ratio := float64(goP50) / float64(javaP50)
	if ratio < 4 || ratio > 16 {
		t.Fatalf("Go/Java concurrency ratio = %.1f, paper reports ≈8×", ratio)
	}
}

func TestFleetSizes(t *testing.T) {
	series := RunExperiment(3)
	want := map[string]int{"Go": 130_000, "Java": 39_500, "Node": 7_000, "Python": 19_000}
	for _, s := range series {
		if s.Processes != want[s.Lang] {
			t.Errorf("%s: %d processes, want %d", s.Lang, s.Processes, want[s.Lang])
		}
	}
}

func TestScanEmptyFleet(t *testing.T) {
	got := Scan(nil)
	for _, v := range got {
		if v != 0 {
			t.Fatal("empty fleet should scan to zeros")
		}
	}
}

func TestPercentileBounds(t *testing.T) {
	procs := []Process{{Concurrency: 5}, {Concurrency: 10}, {Concurrency: 20}}
	if Percentile(procs, 0) != 5 || Percentile(procs, 1) != 20 {
		t.Fatal("percentile extremes wrong")
	}
	if BucketPercentile(procs, 1) != 32 {
		t.Fatalf("bucket percentile = %d, want 32", BucketPercentile(procs, 1))
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestSampleWithinBuckets(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p, _ := ProfileFor("Node")
	for i := 0; i < 1000; i++ {
		c := sampleOne(p.CDF, rng)
		if c < 1 || c > Buckets[len(Buckets)-1] {
			t.Fatalf("sample out of range: %d", c)
		}
	}
}

func TestFormatContainsAllLanguages(t *testing.T) {
	s := Format(RunExperiment(1))
	for _, lang := range []string{"Go", "Java", "Node", "Python"} {
		if !strings.Contains(s, lang) {
			t.Errorf("format missing %s", lang)
		}
	}
	if !strings.Contains(s, "p50") {
		t.Error("format missing p50 row")
	}
}

func BenchmarkFigure1Scan(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p, _ := ProfileFor("Go")
	fleet := SampleFleet(p, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Scan(fleet)
	}
}
