// Package fleet reproduces the Figure 1 experiment: scanning every
// process in the data centers and counting its threads (or goroutines,
// via pprof, for Go), then plotting the cumulative distribution of
// concurrency per language.
//
// The production fleet is proprietary, so the simulator samples
// per-process concurrency levels from the empirical CDFs the paper
// publishes in Figure 1, then re-runs the measurement pipeline
// (scan → bucket → cumulative fraction → percentiles) over the
// synthetic fleet. The output is the regenerated Figure 1 series plus
// the summary statistics quoted in Observation 2 (p50 = 16/16/256/2048
// for NodeJS/Python/Java/Go, Go ≈ 8× Java).
package fleet

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Buckets are Figure 1's x axis: powers of two from 1 to 262144.
var Buckets = []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048,
	4096, 8192, 16384, 32768, 65536, 131072, 262144}

// LangProfile is one language's published curve and fleet size.
type LangProfile struct {
	Lang      string
	Processes int       // processes scanned in the paper
	CDF       []float64 // cumulative fraction at each bucket boundary
}

// Profiles reproduces Figure 1's four series with the paper's scan
// sizes: 130K Go, 39.5K Java, 19K Python, 7K NodeJS processes.
var Profiles = []LangProfile{
	{
		Lang: "Go", Processes: 130_000,
		CDF: []float64{0, 0, 0, 0, 0, 0.08, 0.1, 0.13, 0.16, 0.19, 0.39, 0.69, 0.92, 0.98, 0.99, 1, 1, 1, 1},
	},
	{
		Lang: "Java", Processes: 39_500,
		CDF: []float64{0, 0, 0, 0, 0, 0, 0.01, 0.15, 0.42, 0.7, 0.8, 0.81, 0.93, 1, 1, 1, 1, 1, 1},
	},
	{
		Lang: "Node", Processes: 7_000,
		CDF: []float64{0, 0, 0, 0.02, 0.87, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1},
	},
	{
		Lang: "Python", Processes: 19_000,
		CDF: []float64{0.28, 0.28, 0.34, 0.36, 0.76, 0.92, 0.96, 0.99, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1},
	},
}

// ProfileFor returns the published profile for a language.
func ProfileFor(lang string) (LangProfile, bool) {
	for _, p := range Profiles {
		if strings.EqualFold(p.Lang, lang) {
			return p, true
		}
	}
	return LangProfile{}, false
}

// Process is one scanned process.
type Process struct {
	Lang        string
	Concurrency int // threads, or goroutines for Go
}

// SampleFleet draws a synthetic fleet for one language profile by
// inverse-transform sampling its published CDF. Within a bucket the
// concurrency level is drawn log-uniformly, mimicking the spread the
// real scan would see.
func SampleFleet(p LangProfile, rng *rand.Rand) []Process {
	out := make([]Process, p.Processes)
	for i := range out {
		out[i] = Process{Lang: p.Lang, Concurrency: sampleOne(p.CDF, rng)}
	}
	return out
}

func sampleOne(cdf []float64, rng *rand.Rand) int {
	u := rng.Float64()
	prev := 0.0
	for i, c := range cdf {
		if u <= c {
			lo := 1
			if i > 0 {
				lo = Buckets[i-1] + 1
			}
			hi := Buckets[i]
			if lo >= hi {
				return hi
			}
			// Log-uniform within the bucket.
			lg := math.Log(float64(lo)) + rng.Float64()*(math.Log(float64(hi))-math.Log(float64(lo)))
			return int(math.Exp(lg))
		}
		prev = c
	}
	_ = prev
	return Buckets[len(Buckets)-1]
}

// Scan recomputes Figure 1's cumulative fractions from a scanned
// fleet, exactly as the measurement pipeline would.
func Scan(procs []Process) []float64 {
	if len(procs) == 0 {
		return make([]float64, len(Buckets))
	}
	counts := make([]int, len(Buckets))
	for _, p := range procs {
		for i, b := range Buckets {
			if p.Concurrency <= b {
				counts[i]++
				break
			}
		}
	}
	out := make([]float64, len(Buckets))
	cum := 0
	for i, c := range counts {
		cum += c
		out[i] = float64(cum) / float64(len(procs))
	}
	return out
}

// Percentile returns the q-quantile (0..1) of fleet concurrency.
func Percentile(procs []Process, q float64) int {
	if len(procs) == 0 {
		return 0
	}
	xs := make([]int, len(procs))
	for i, p := range procs {
		xs[i] = p.Concurrency
	}
	sort.Ints(xs)
	idx := int(q * float64(len(xs)-1))
	return xs[idx]
}

// BucketPercentile returns the Figure 1 bucket boundary containing the
// q-quantile — the granularity at which the paper quotes medians
// ("the 50% percentile ... is 16 in NodeJS, 16 in Python, 256 in Java,
// and 2048 in Go").
func BucketPercentile(procs []Process, q float64) int {
	v := Percentile(procs, q)
	for _, b := range Buckets {
		if v <= b {
			return b
		}
	}
	return Buckets[len(Buckets)-1]
}

// Series is the regenerated Figure 1 for one language.
type Series struct {
	Lang      string
	Processes int
	CDF       []float64
	P50       int // median, at bucket granularity
}

// RunExperiment regenerates all four Figure 1 series.
func RunExperiment(seed int64) []Series {
	rng := rand.New(rand.NewSource(seed))
	var out []Series
	for _, p := range Profiles {
		fleet := SampleFleet(p, rng)
		out = append(out, Series{
			Lang:      p.Lang,
			Processes: len(fleet),
			CDF:       Scan(fleet),
			P50:       BucketPercentile(fleet, 0.5),
		})
	}
	return out
}

// Format renders the series as an aligned text table (one row per
// bucket, one column per language), the textual analogue of Figure 1.
func Format(series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "threads")
	for _, s := range series {
		fmt.Fprintf(&b, "%10s", s.Lang)
	}
	b.WriteByte('\n')
	for i, bucket := range Buckets {
		fmt.Fprintf(&b, "%-10d", bucket)
		for _, s := range series {
			fmt.Fprintf(&b, "%10.2f", s.CDF[i])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-10s", "p50")
	for _, s := range series {
		fmt.Fprintf(&b, "%10d", s.P50)
	}
	b.WriteByte('\n')
	return b.String()
}
