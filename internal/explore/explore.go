// Package explore measures how race manifestation depends on thread
// interleavings — the non-determinism at the heart of §3.2's argument
// that dynamic race detection is a misfit for CI.
//
// It provides (a) detection-probability estimation under each
// scheduling strategy (random walk, PCT, delay injection, round-robin),
// and (b) a CHESS-style stateless exhaustive explorer that enumerates
// schedules by replaying recorded decision prefixes with one decision
// flipped, depth-first, under a run budget.
package explore

import (
	"fmt"
	"sort"
	"strings"

	"gorace/internal/core"
	"gorace/internal/sched"
	"gorace/internal/sweep"
	"gorace/internal/vclock"
)

// maxSteps bounds every exploration run; racy corpus programs are
// small, so a run that exceeds this is a model bug, not a workload.
const maxSteps = 1 << 16

// ProbeResult is the detection statistics of one strategy.
type ProbeResult struct {
	Strategy   string
	Runs       int
	Detected   int
	AvgRaces   float64 // mean race reports per run
	LeakedRuns int     // runs that ended with blocked goroutines
}

// Probability returns the manifestation probability estimate.
func (p ProbeResult) Probability() float64 {
	if p.Runs == 0 {
		return 0
	}
	return float64(p.Detected) / float64(p.Runs)
}

// Probe runs prog `runs` times under the named scheduling strategy
// (see sched.StrategyNames) and reports how often at least one race
// manifested. Seeds are sequential from base; the sweep is one
// internal/sweep campaign with parallelism workers (≤1 = serial).
func Probe(prog func(*sched.G), strategy string, runs int, base int64, parallelism int) ProbeResult {
	if parallelism < 1 {
		parallelism = 1
	}
	res := probe([]sweep.Unit{{
		ID: strategy, Program: prog, Strategy: strategy,
		BaseSeed: base, Runs: runs, MaxSteps: maxSteps,
	}}, parallelism)
	if len(res) == 0 {
		return ProbeResult{Runs: runs}
	}
	return res[0]
}

// ProbeFactory is Probe for strategies a registry name cannot carry
// (replayed prefixes, custom parameters). The factory is invoked once
// per run, always from a single worker goroutine.
func ProbeFactory(prog func(*sched.G), factory func() sched.Strategy, runs int, base int64) ProbeResult {
	res := probe([]sweep.Unit{{
		ID: "factory", Program: prog, StrategyFactory: factory,
		BaseSeed: base, Runs: runs, MaxSteps: maxSteps,
	}}, 1)
	if len(res) == 0 {
		return ProbeResult{Runs: runs}
	}
	return res[0]
}

// probe runs one campaign and projects its Prob aggregate into
// per-unit ProbeResults, in unit order.
func probe(units []sweep.Unit, parallelism int) []ProbeResult {
	opts := []sweep.Option{}
	if parallelism > 0 {
		opts = append(opts, sweep.WithParallelism(parallelism))
	}
	aggs, _, err := sweep.New(opts...).Run(units,
		func() sweep.Aggregator { return sweep.NewProb() })
	if err != nil {
		// Unknown strategy names and nil factories are programming
		// errors here; surface them loudly rather than as P=0.
		panic(err)
	}
	var out []ProbeResult
	for _, s := range aggs[0].(*sweep.Prob).Stats() {
		out = append(out, ProbeResult{
			Strategy:   s.Strategy,
			Runs:       s.Runs,
			Detected:   s.Detected,
			AvgRaces:   float64(s.Races) / float64(s.Runs),
			LeakedRuns: s.LeakedRuns,
		})
	}
	return out
}

// CompareStrategies probes prog under every registered strategy, as
// one campaign (a unit per strategy over the shared seed range).
func CompareStrategies(prog func(*sched.G), runs int, base int64) []ProbeResult {
	names := sched.StrategyNames()
	units := make([]sweep.Unit, 0, len(names))
	for _, name := range names {
		units = append(units, sweep.Unit{
			ID: name, Program: prog, Strategy: name,
			BaseSeed: base, Runs: runs, MaxSteps: maxSteps,
		})
	}
	return probe(units, 0)
}

// FormatProbes renders strategy-comparison results as a table.
func FormatProbes(rs []ProbeResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %10s %10s %8s\n", "strategy", "runs", "detected", "P(detect)", "races/run")
	for _, r := range rs {
		fmt.Fprintf(&b, "%-12s %8d %10d %10.2f %8.2f\n",
			r.Strategy, r.Runs, r.Detected, r.Probability(), r.AvgRaces)
	}
	return b.String()
}

// ExhaustiveResult summarizes a bounded exhaustive exploration.
type ExhaustiveResult struct {
	Schedules     int   // schedules executed
	Racy          int   // schedules in which at least one race manifested
	Budget        int   // run budget
	BudgetReached bool  //
	FirstRacy     []int // decision prefix of the first racy schedule, nil if none
}

// Exhaustive performs CHESS-style stateless exploration: it executes
// prog under a replayed decision prefix (empty at first), records the
// decisions actually taken, and then enqueues every one-decision
// deviation from the recorded schedule, depth-first, until the budget
// is exhausted or the schedule space is covered.
//
// Unlike the seed sweeps in this package — which run as
// internal/sweep campaigns — exploration is an *adaptive search*:
// each run's schedule prefix comes from a previous run's recording,
// so runs cannot be pre-enumerated as campaign units and the explorer
// drives core.Runner one run at a time.
//
// The state space of even small programs is huge, so maxRuns bounds
// the exploration; coverage is systematic-in-prefix rather than
// random, which is exactly the CHESS trade-off.
func Exhaustive(prog func(*sched.G), maxRuns int) ExhaustiveResult {
	return ExhaustiveBounded(prog, maxRuns, -1)
}

// ExhaustiveBounded is Exhaustive with CHESS's iterative context
// bounding: schedules with more than maxPreemptions preemptions (a
// switch away from a still-runnable goroutine) are pruned. Most
// concurrency bugs manifest within very few preemptions, so a small
// bound covers the interesting space with exponentially fewer runs.
// maxPreemptions < 0 disables the bound.
func ExhaustiveBounded(prog func(*sched.G), maxRuns, maxPreemptions int) ExhaustiveResult {
	res := ExhaustiveResult{Budget: maxRuns}
	if maxRuns <= 0 {
		return res
	}
	type item struct {
		prefix      []int
		preemptions int // preemptions committed within prefix
	}
	stack := []item{{nil, 0}}
	seen := make(map[string]bool)

	for len(stack) > 0 && res.Schedules < maxRuns {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		key := fmt.Sprint(it.prefix)
		if seen[key] {
			continue
		}
		seen[key] = true

		rec := sched.NewRecording(sched.NewReplay(it.prefix))
		out, err := core.NewRunner(
			core.WithStrategyFactory(func() sched.Strategy { return rec }),
			core.WithMaxSteps(maxSteps),
		).Run(prog)
		if err != nil {
			panic(err) // no registry lookups involved; cannot fail
		}
		res.Schedules++
		if out.HasRace() {
			res.Racy++
			if res.FirstRacy == nil {
				res.FirstRacy = append([]int(nil), it.prefix...)
			}
		}
		// Enqueue deviations: for every decision point beyond the
		// replayed prefix, try each alternative, tracking the
		// preemption count along the recorded schedule.
		cnt := it.preemptions
		prev := prevPicked(rec.Picks, len(it.prefix))
		for i := len(it.prefix); i < len(rec.Picks); i++ {
			p := rec.Picks[i]
			for alt := 0; alt < p.Options; alt++ {
				if alt == p.Chosen {
					continue
				}
				devPre := cnt
				if p.IsPreemption(prev, alt) {
					devPre++
				}
				if maxPreemptions >= 0 && devPre > maxPreemptions {
					continue
				}
				dev := make([]int, 0, i+1)
				for j := 0; j < i; j++ {
					dev = append(dev, rec.Picks[j].Chosen)
				}
				dev = append(dev, alt)
				stack = append(stack, item{dev, devPre})
			}
			// Advance along the recorded schedule.
			if p.IsPreemption(prev, p.Chosen) {
				cnt++
			}
			prev = p.Picked
		}
	}
	res.BudgetReached = res.Schedules >= maxRuns && len(stack) > 0
	return res
}

// DeepeningResult is the outcome of iterative preemption-bound
// deepening.
type DeepeningResult struct {
	Bound     int // the preemption bound at which a race first appeared
	Schedules int // total schedules executed across all bounds
	Racy      int // racy schedules at the final bound
	Found     bool
}

// IterativeDeepening runs CHESS's outer loop: explore with preemption
// bound 0, then 1, then 2, ... up to maxBound, stopping at the first
// bound that exposes a race. The returned bound is the bug's
// "preemption depth" — CHESS's empirical claim is that real bugs have
// very small depth.
func IterativeDeepening(prog func(*sched.G), runsPerBound, maxBound int) DeepeningResult {
	var res DeepeningResult
	for bound := 0; bound <= maxBound; bound++ {
		r := ExhaustiveBounded(prog, runsPerBound, bound)
		res.Schedules += r.Schedules
		if r.Racy > 0 {
			res.Bound = bound
			res.Racy = r.Racy
			res.Found = true
			return res
		}
	}
	res.Bound = maxBound + 1
	return res
}

// prevPicked returns the goroutine running just before decision i
// (main, TID 0, before the first decision).
func prevPicked(picks []sched.PickRecord, i int) vclock.TID {
	if i > 0 && i-1 < len(picks) {
		return picks[i-1].Picked
	}
	return 0
}

// FlakinessReport bundles per-strategy probabilities for one pattern,
// for the E9 experiment output.
type FlakinessReport struct {
	Pattern string
	Results []ProbeResult
}

// FormatFlakiness renders several patterns' flakiness side by side.
func FormatFlakiness(reports []FlakinessReport) string {
	var b strings.Builder
	if len(reports) == 0 {
		return ""
	}
	names := make([]string, 0, len(reports[0].Results))
	for _, r := range reports[0].Results {
		names = append(names, r.Strategy)
	}
	fmt.Fprintf(&b, "%-28s", "pattern")
	for _, n := range names {
		fmt.Fprintf(&b, "%12s", n)
	}
	b.WriteByte('\n')
	sorted := make([]FlakinessReport, len(reports))
	copy(sorted, reports)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Pattern < sorted[j].Pattern })
	for _, rep := range sorted {
		fmt.Fprintf(&b, "%-28s", rep.Pattern)
		for _, r := range rep.Results {
			fmt.Fprintf(&b, "%12.2f", r.Probability())
		}
		b.WriteByte('\n')
	}
	return b.String()
}
