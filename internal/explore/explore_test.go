package explore

import (
	"strings"
	"testing"

	"gorace/internal/patterns"
	"gorace/internal/sched"
)

func racyProg() func(*sched.G) {
	p, ok := patterns.ByID("capture-loop-index")
	if !ok {
		panic("pattern missing")
	}
	return p.Racy
}

func fixedProg() func(*sched.G) {
	p, _ := patterns.ByID("capture-loop-index")
	return p.Fixed
}

func TestProbeDetectsRacyProgram(t *testing.T) {
	r := Probe(racyProg(), "random", 30, 0, 1)
	if r.Detected == 0 {
		t.Fatal("random probing never detected the loop-capture race")
	}
	if r.Probability() <= 0 || r.Probability() > 1 {
		t.Fatalf("probability = %f", r.Probability())
	}
	if r.Strategy != "random" {
		t.Fatalf("strategy name = %q", r.Strategy)
	}
}

func TestProbeCleanOnFixedProgram(t *testing.T) {
	r := Probe(fixedProg(), "random", 30, 0, 4)
	if r.Detected != 0 {
		t.Fatalf("fixed program detected %d times", r.Detected)
	}
	if r.AvgRaces != 0 {
		t.Fatalf("avg races = %f", r.AvgRaces)
	}
}

func TestProbeZeroRuns(t *testing.T) {
	r := Probe(racyProg(), "random", 0, 0, 1)
	if r.Probability() != 0 {
		t.Fatal("zero runs should give zero probability")
	}
}

func TestCompareStrategiesCoversFamily(t *testing.T) {
	rs := CompareStrategies(racyProg(), 10, 0)
	if len(rs) != 4 {
		t.Fatalf("%d strategies compared", len(rs))
	}
	names := map[string]bool{}
	for _, r := range rs {
		names[r.Strategy] = true
	}
	for _, want := range []string{"roundrobin", "random", "pct", "delay"} {
		if !names[want] {
			t.Errorf("missing strategy %q", want)
		}
	}
}

func TestExhaustiveFindsRaceAndReproduces(t *testing.T) {
	res := Exhaustive(racyProg(), 200)
	if res.Racy == 0 {
		t.Fatal("exhaustive exploration never found the race")
	}
	if res.Schedules == 0 || res.Schedules > 200 {
		t.Fatalf("schedules = %d", res.Schedules)
	}
	// The first racy schedule must deterministically reproduce.
	r2 := ProbeFactory(racyProg(), func() sched.Strategy { return sched.NewReplay(res.FirstRacy) }, 1, 0)
	if r2.Detected != 1 {
		t.Fatal("recorded racy schedule did not reproduce the race")
	}
}

func TestExhaustiveCleanProgram(t *testing.T) {
	res := Exhaustive(fixedProg(), 150)
	if res.Racy != 0 {
		t.Fatalf("fixed program racy in %d schedules", res.Racy)
	}
	if res.FirstRacy != nil {
		t.Fatal("FirstRacy set on clean program")
	}
}

func TestExhaustiveBudget(t *testing.T) {
	res := Exhaustive(racyProg(), 5)
	if res.Schedules > 5 {
		t.Fatalf("budget exceeded: %d", res.Schedules)
	}
	if Exhaustive(racyProg(), 0).Schedules != 0 {
		t.Fatal("zero budget ran schedules")
	}
}

func TestRoundRobinVsRandomFlakiness(t *testing.T) {
	// §3.2.1's point, quantified: a polite deterministic schedule can
	// leave a race dormant that fuzzing exposes. For the WaitGroup
	// misplacement, round-robin (first-runnable-ish rotation) and
	// random should differ in detection probability; at minimum,
	// random must detect it.
	p, _ := patterns.ByID("waitgroup-add-inside")
	rnd := Probe(p.Racy, "random", 40, 0, 0)
	if rnd.Detected == 0 {
		t.Fatal("random never detected the WaitGroup race")
	}
}

func TestFormatters(t *testing.T) {
	rs := CompareStrategies(racyProg(), 5, 0)
	s := FormatProbes(rs)
	if !strings.Contains(s, "P(detect)") || !strings.Contains(s, "random") {
		t.Fatalf("probe table malformed:\n%s", s)
	}
	f := FormatFlakiness([]FlakinessReport{{Pattern: "p1", Results: rs}})
	if !strings.Contains(f, "p1") {
		t.Fatal("flakiness table missing pattern")
	}
	if FormatFlakiness(nil) != "" {
		t.Fatal("empty reports should render empty")
	}
}

func TestPreemptionBoundPrunesSchedules(t *testing.T) {
	// CHESS's iterative context bounding: a tighter preemption bound
	// must explore no more schedules than a looser one, and bound 0
	// (no preemptions at all) must still run the base schedules.
	prog := racyProg()
	unbounded := ExhaustiveBounded(prog, 400, -1)
	b2 := ExhaustiveBounded(prog, 400, 2)
	b0 := ExhaustiveBounded(prog, 400, 0)
	if b0.Schedules > b2.Schedules || b2.Schedules > unbounded.Schedules {
		t.Fatalf("bounds not monotone: b0=%d b2=%d unbounded=%d",
			b0.Schedules, b2.Schedules, unbounded.Schedules)
	}
	if b0.Schedules == 0 {
		t.Fatal("bound 0 explored nothing")
	}
}

func TestPreemptionBoundStillFindsShallowRaces(t *testing.T) {
	// The loop-capture race needs no preemption gymnastics: it should
	// manifest within a small preemption bound, CHESS's empirical
	// claim about real bugs being shallow.
	res := ExhaustiveBounded(racyProg(), 400, 2)
	if res.Racy == 0 {
		t.Fatal("bound-2 exploration missed a depth-shallow race")
	}
}

func TestIterativeDeepeningFindsShallowBug(t *testing.T) {
	res := IterativeDeepening(racyProg(), 200, 3)
	if !res.Found {
		t.Fatal("deepening never found the race")
	}
	if res.Bound > 3 {
		t.Fatalf("loop-capture depth = %d, expected shallow", res.Bound)
	}
	if res.Schedules == 0 {
		t.Fatal("no schedules executed")
	}
}

func TestIterativeDeepeningCleanProgram(t *testing.T) {
	res := IterativeDeepening(fixedProg(), 100, 2)
	if res.Found {
		t.Fatal("race found in fixed program")
	}
	if res.Bound != 3 {
		t.Fatalf("bound = %d, want maxBound+1", res.Bound)
	}
}
