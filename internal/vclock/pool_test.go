package vclock

import "testing"

func TestPoolAcquireEmpty(t *testing.T) {
	p := NewPool()
	v := p.Acquire()
	if v == nil || v.Len() != 0 {
		t.Fatalf("fresh clock not empty: %v", v)
	}
	if got := v.Get(5); got != 0 {
		t.Fatalf("component 5 = %d on a fresh clock", got)
	}
}

func TestPoolReusesReleasedClock(t *testing.T) {
	p := NewPool()
	v := p.Acquire()
	v.Set(3, 7)
	v.Set(9, 2)
	p.Release(v)
	if p.Len() != 1 {
		t.Fatalf("pool holds %d clocks after one release", p.Len())
	}
	w := p.Acquire()
	if w != v {
		t.Fatal("released clock not reused (freelist is LIFO)")
	}
	if p.Len() != 0 {
		t.Fatalf("pool holds %d clocks after re-acquire", p.Len())
	}
}

func TestPoolNoStaleComponentsAfterRelease(t *testing.T) {
	// A recycled clock must read all-zero even though its backing
	// array held nonzero components when it was released.
	p := NewPool()
	v := p.Acquire()
	for tid := TID(0); tid < 16; tid++ {
		v.Set(tid, uint32(100+tid))
	}
	p.Release(v)
	w := p.Acquire()
	if w.Len() != 0 {
		t.Fatalf("recycled clock reports %d components", w.Len())
	}
	for tid := TID(0); tid < 32; tid++ {
		if got := w.Get(tid); got != 0 {
			t.Fatalf("stale component leaked: g%d = %d", tid, got)
		}
	}
	// Growing back over the previously-used range must see zeros, not
	// the old values lingering in capacity.
	w.Tick(15)
	for tid := TID(0); tid < 15; tid++ {
		if got := w.Get(tid); got != 0 {
			t.Fatalf("grow exposed stale component: g%d = %d", tid, got)
		}
	}
	if w.Get(15) != 1 {
		t.Fatalf("tick on recycled clock = %d, want 1", w.Get(15))
	}
}

func TestPoolNoAliasingAcrossAcquires(t *testing.T) {
	// Two live clocks must never share a backing array, even when one
	// of them was recycled.
	p := NewPool()
	a := p.Acquire()
	a.Set(0, 1)
	p.Release(a)
	b := p.Acquire() // recycled a
	c := p.Acquire() // fresh
	b.Set(2, 42)
	if c.Get(2) != 0 {
		t.Fatal("mutating one acquired clock changed another")
	}
	c.Set(2, 7)
	if b.Get(2) != 42 {
		t.Fatal("mutating one acquired clock changed another")
	}
}

func TestPoolReleaseNil(t *testing.T) {
	p := NewPool()
	p.Release(nil) // must not panic
	if p.Len() != 0 {
		t.Fatal("nil release entered the freelist")
	}
}

func TestCopyIntoReusesCapacity(t *testing.T) {
	src := New()
	src.Set(4, 9)
	dst := New()
	dst.Set(10, 3)
	src.CopyInto(dst)
	if dst.Len() != src.Len() || dst.Get(4) != 9 || dst.Get(10) != 0 {
		t.Fatalf("CopyInto mismatch: %v", dst)
	}
	// And the copy is deep: mutating dst must not touch src.
	dst.Set(4, 100)
	if src.Get(4) != 9 {
		t.Fatal("CopyInto aliased the source")
	}
}

func TestJoinInto(t *testing.T) {
	a := New()
	a.Set(0, 5)
	a.Set(1, 1)
	b := New()
	b.Set(1, 4)
	a.JoinInto(b)
	if b.Get(0) != 5 || b.Get(1) != 4 {
		t.Fatalf("JoinInto = %v", b)
	}
	if a.Get(0) != 5 || a.Get(1) != 1 {
		t.Fatalf("JoinInto mutated the source: %v", a)
	}
}

func TestReadSetPooledMatchesUnpooled(t *testing.T) {
	// The pooled Note/ReleaseTo cycle must behave exactly like the
	// allocating one, including after recycling an inflated clock.
	p := NewPool()
	cur := New()
	cur.Set(0, 1)
	for round := 0; round < 3; round++ {
		var plain, pooled ReadSet
		plain.Reset()
		pooled.Reset()
		// Two concurrent readers force inflation.
		plain.Note(MakeEpoch(1, 5), cur)
		plain.Note(MakeEpoch(2, 3), cur)
		pooled.NotePooled(MakeEpoch(1, 5), cur, p)
		pooled.NotePooled(MakeEpoch(2, 3), cur, p)
		if !pooled.IsInflated() || !plain.IsInflated() {
			t.Fatal("concurrent readers did not inflate")
		}
		a, b := plain.Readers(), pooled.Readers()
		if len(a) != len(b) {
			t.Fatalf("round %d: %d vs %d readers", round, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round %d: reader %d: %v vs %v", round, i, a[i], b[i])
			}
		}
		pooled.ReleaseTo(p)
		if pooled.IsInflated() || pooled.Epoch() != NoEpoch {
			t.Fatal("ReleaseTo did not clear the read set")
		}
	}
}
