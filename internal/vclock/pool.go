package vclock

import "sync"

// Pool recycles VC instances so the detection hot path stops paying an
// allocation per goroutine spawn, synchronization object, or run. A
// released clock keeps its backing array; the next Acquire hands it
// back empty but pre-sized, so a steady-state detector that is Reset
// between runs performs no clock allocations at all.
//
// The freelist is LIFO, which keeps recently-used (cache-warm,
// right-sized) clocks in circulation. Acquire and Release are safe for
// concurrent use; the clocks themselves are not, and a clock must not
// be touched after Release until Acquire returns it again.
type Pool struct {
	mu   sync.Mutex
	free []*VC
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// Acquire returns an empty clock: every component reads zero, but the
// backing array of a recycled clock is retained, so growing it back to
// its previous size allocates nothing.
func (p *Pool) Acquire() *VC {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		v := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return v
	}
	return New()
}

// Release returns v to the pool. The clock is truncated immediately so
// no stale components can leak into the next Acquire; the caller must
// drop every reference to v (including copies of the *VC) — using a
// released clock aliases whoever acquires it next.
func (p *Pool) Release(v *VC) {
	if v == nil {
		return
	}
	v.ts = v.ts[:0]
	p.mu.Lock()
	p.free = append(p.free, v)
	p.mu.Unlock()
}

// Len reports the number of idle clocks, mainly for tests.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}
