package vclock

import (
	"testing"
	"testing/quick"
)

func TestZeroValueUsable(t *testing.T) {
	var v VC
	if got := v.Get(3); got != 0 {
		t.Fatalf("Get on zero VC = %d, want 0", got)
	}
	v.Tick(2)
	if got := v.Get(2); got != 1 {
		t.Fatalf("after Tick, Get = %d, want 1", got)
	}
}

func TestTickMonotonic(t *testing.T) {
	v := New()
	for i := 1; i <= 100; i++ {
		if got := v.Tick(0); got != uint32(i) {
			t.Fatalf("Tick %d returned %d", i, got)
		}
	}
}

func TestJoinPointwiseMax(t *testing.T) {
	a, b := New(), New()
	a.Set(0, 5)
	a.Set(1, 1)
	b.Set(1, 7)
	b.Set(2, 3)
	a.Join(b)
	want := []uint32{5, 7, 3}
	for i, w := range want {
		if got := a.Get(TID(i)); got != w {
			t.Errorf("component %d = %d, want %d", i, got, w)
		}
	}
}

func TestJoinNilIsNoop(t *testing.T) {
	a := New()
	a.Set(0, 2)
	a.Join(nil)
	if a.Get(0) != 2 {
		t.Fatal("Join(nil) modified the clock")
	}
}

func TestCopyIndependence(t *testing.T) {
	a := New()
	a.Set(0, 1)
	c := a.Copy()
	c.Set(0, 99)
	if a.Get(0) != 1 {
		t.Fatal("Copy aliases the original")
	}
}

func TestAssignOverwrites(t *testing.T) {
	a, b := New(), New()
	a.Set(0, 1)
	a.Set(5, 9)
	b.Set(1, 2)
	a.Assign(b)
	if a.Get(0) != 0 || a.Get(5) != 0 || a.Get(1) != 2 {
		t.Fatalf("Assign produced %v", a)
	}
}

func TestHappensBeforeOrdering(t *testing.T) {
	a, b := New(), New()
	a.Set(0, 1)
	b.Set(0, 2)
	b.Set(1, 1)
	if !a.LeqAll(b) {
		t.Error("a should happen before b")
	}
	if b.LeqAll(a) {
		t.Error("b must not happen before a")
	}
	if a.Concurrent(b) {
		t.Error("ordered clocks reported concurrent")
	}
}

func TestConcurrentClocks(t *testing.T) {
	a, b := New(), New()
	a.Set(0, 2)
	b.Set(1, 2)
	if !a.Concurrent(b) || !b.Concurrent(a) {
		t.Error("disjoint nonzero clocks must be concurrent")
	}
}

func TestResetRetainsZero(t *testing.T) {
	a := New()
	a.Set(4, 4)
	a.Reset()
	for i := 0; i < a.Len(); i++ {
		if a.Get(TID(i)) != 0 {
			t.Fatal("Reset left a nonzero component")
		}
	}
}

func TestStringFormat(t *testing.T) {
	a := New()
	if s := a.String(); s != "{}" {
		t.Fatalf("empty VC String = %q", s)
	}
	a.Set(1, 3)
	if s := a.String(); s != "{g1:3}" {
		t.Fatalf("String = %q", s)
	}
}

func TestEpochPackUnpack(t *testing.T) {
	e := MakeEpoch(7, 42)
	if e.TID() != 7 || e.Time() != 42 {
		t.Fatalf("round trip got (%d,%d)", e.TID(), e.Time())
	}
	if !NoEpoch.IsNone() {
		t.Fatal("NoEpoch not none")
	}
	if e.IsNone() {
		t.Fatal("real epoch reported none")
	}
}

func TestEpochLeqVC(t *testing.T) {
	v := New()
	v.Set(3, 10)
	if !MakeEpoch(3, 10).LeqVC(v) {
		t.Error("equal time should be Leq")
	}
	if MakeEpoch(3, 11).LeqVC(v) {
		t.Error("later time should not be Leq")
	}
	if !NoEpoch.LeqVC(v) {
		t.Error("NoEpoch should be Leq everything")
	}
}

func TestReadSetSameThreadStaysEpoch(t *testing.T) {
	r := NewReadSet()
	cur := New()
	cur.Set(0, 1)
	r.Note(MakeEpoch(0, 1), cur)
	cur.Set(0, 2)
	r.Note(MakeEpoch(0, 2), cur)
	if r.IsInflated() {
		t.Fatal("same-thread reads must not inflate")
	}
	if r.Epoch() != MakeEpoch(0, 2) {
		t.Fatalf("epoch = %v", r.Epoch())
	}
}

func TestReadSetOrderedReadsStayEpoch(t *testing.T) {
	r := NewReadSet()
	// g0 reads at time 1; then g1, whose clock includes g0@1, reads.
	c0 := New()
	c0.Set(0, 1)
	r.Note(MakeEpoch(0, 1), c0)
	c1 := New()
	c1.Set(0, 1) // g1 has synchronized with g0
	c1.Set(1, 4)
	r.Note(MakeEpoch(1, 4), c1)
	if r.IsInflated() {
		t.Fatal("ordered cross-thread reads must not inflate")
	}
	if r.Epoch() != MakeEpoch(1, 4) {
		t.Fatalf("epoch = %v", r.Epoch())
	}
}

func TestReadSetConcurrentReadsInflate(t *testing.T) {
	r := NewReadSet()
	c0 := New()
	c0.Set(0, 1)
	r.Note(MakeEpoch(0, 1), c0)
	c1 := New()
	c1.Set(1, 2) // no knowledge of g0
	r.Note(MakeEpoch(1, 2), c1)
	if !r.IsInflated() {
		t.Fatal("concurrent reads must inflate")
	}
	got := r.Readers()
	if len(got) != 2 || got[0] != MakeEpoch(0, 1) || got[1] != MakeEpoch(1, 2) {
		t.Fatalf("Readers = %v", got)
	}
}

func TestReadSetFindConcurrent(t *testing.T) {
	r := NewReadSet()
	c0 := New()
	c0.Set(0, 5)
	r.Note(MakeEpoch(0, 5), c0)
	// A writer on g1 that never synchronized with g0.
	w := New()
	w.Set(1, 1)
	if e := r.FindConcurrent(w); e != MakeEpoch(0, 5) {
		t.Fatalf("FindConcurrent = %v", e)
	}
	// After synchronizing, no concurrent reader remains.
	w.Set(0, 5)
	if e := r.FindConcurrent(w); !e.IsNone() {
		t.Fatalf("FindConcurrent after sync = %v", e)
	}
}

func TestReadSetAllLeq(t *testing.T) {
	r := NewReadSet()
	c0 := New()
	c0.Set(0, 1)
	r.Note(MakeEpoch(0, 1), c0)
	c1 := New()
	c1.Set(1, 1)
	r.Note(MakeEpoch(1, 1), c1) // inflates
	cur := New()
	cur.Set(0, 1)
	cur.Set(1, 1)
	if !r.AllLeq(cur) {
		t.Error("all reads are covered, AllLeq should hold")
	}
	cur2 := New()
	cur2.Set(0, 1)
	if r.AllLeq(cur2) {
		t.Error("g1 read is not covered, AllLeq must fail")
	}
}

func TestReadSetReset(t *testing.T) {
	r := NewReadSet()
	c := New()
	c.Set(0, 1)
	r.Note(MakeEpoch(0, 1), c)
	r.Reset()
	if len(r.Readers()) != 0 || r.IsInflated() {
		t.Fatal("Reset did not clear history")
	}
}

// Property: Join is commutative, associative, idempotent (a semilattice),
// and LeqAll(a, Join(a,b)) always holds.
func TestJoinSemilatticeProperties(t *testing.T) {
	mk := func(xs []uint8) *VC {
		v := New()
		for i, x := range xs {
			v.Set(TID(i), uint32(x))
		}
		return v
	}
	eq := func(a, b *VC) bool { return a.LeqAll(b) && b.LeqAll(a) }

	comm := func(xs, ys []uint8) bool {
		a1, b1 := mk(xs), mk(ys)
		a2, b2 := mk(xs), mk(ys)
		a1.Join(b1)
		b2.Join(a2)
		return eq(a1, b2)
	}
	if err := quick.Check(comm, nil); err != nil {
		t.Errorf("commutativity: %v", err)
	}

	assoc := func(xs, ys, zs []uint8) bool {
		l := mk(xs)
		l.Join(mk(ys))
		l.Join(mk(zs))
		r2 := mk(ys)
		r2.Join(mk(zs))
		r1 := mk(xs)
		r1.Join(r2)
		return eq(l, r1)
	}
	if err := quick.Check(assoc, nil); err != nil {
		t.Errorf("associativity: %v", err)
	}

	idem := func(xs []uint8) bool {
		a := mk(xs)
		b := mk(xs)
		a.Join(b)
		return eq(a, b)
	}
	if err := quick.Check(idem, nil); err != nil {
		t.Errorf("idempotence: %v", err)
	}

	upper := func(xs, ys []uint8) bool {
		a, b := mk(xs), mk(ys)
		j := a.Copy()
		j.Join(b)
		return a.LeqAll(j) && b.LeqAll(j)
	}
	if err := quick.Check(upper, nil); err != nil {
		t.Errorf("upper bound: %v", err)
	}
}

// Property: epoch pack/unpack is lossless for arbitrary inputs.
func TestEpochRoundTripProperty(t *testing.T) {
	f := func(tid int16, tm uint32) bool {
		if tid < 0 {
			tid = -tid
		}
		e := MakeEpoch(TID(tid), tm)
		return e.TID() == TID(tid) && e.Time() == tm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkVCJoin(b *testing.B) {
	a, o := New(), New()
	for i := 0; i < 64; i++ {
		a.Set(TID(i), uint32(i))
		o.Set(TID(i), uint32(64-i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Join(o)
	}
}

func BenchmarkEpochLeqVC(b *testing.B) {
	v := New()
	v.Set(63, 100)
	e := MakeEpoch(63, 50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !e.LeqVC(v) {
			b.Fatal("unexpected")
		}
	}
}

func TestNewWithCapacity(t *testing.T) {
	v := NewWithCapacity(8)
	if v.Len() != 0 {
		t.Fatal("capacity leaked into length")
	}
	v.Set(3, 5)
	if v.Get(3) != 5 {
		t.Fatal("set after preallocation broken")
	}
}

func TestEpochString(t *testing.T) {
	if NoEpoch.String() != "⊥" {
		t.Fatalf("NoEpoch = %q", NoEpoch.String())
	}
	if MakeEpoch(2, 7).String() != "g2@7" {
		t.Fatalf("epoch = %q", MakeEpoch(2, 7).String())
	}
}

func TestReadSetInflatedOperations(t *testing.T) {
	r := NewReadSet()
	// Build an inflated set with three concurrent readers.
	for tid := TID(0); tid < 3; tid++ {
		c := New()
		c.Set(tid, uint32(tid)+1)
		r.Note(MakeEpoch(tid, uint32(tid)+1), c)
	}
	if !r.IsInflated() {
		t.Fatal("three concurrent readers should inflate")
	}
	// Note again on the inflated set (covers the inflated-note path).
	c := New()
	c.Set(1, 9)
	r.Note(MakeEpoch(1, 9), c)
	if got := r.Readers(); len(got) != 3 || got[1] != MakeEpoch(1, 9) {
		t.Fatalf("readers = %v", got)
	}
	// AllLeq over the inflated form, both outcomes.
	all := New()
	all.Set(0, 1)
	all.Set(1, 9)
	all.Set(2, 3)
	if !r.AllLeq(all) {
		t.Fatal("covered inflated reads should be AllLeq")
	}
	all.Set(1, 8)
	if r.AllLeq(all) {
		t.Fatal("uncovered reader escaped AllLeq")
	}
	// FindConcurrent over the inflated form, both outcomes.
	if e := r.FindConcurrent(all); e.TID() != 1 {
		t.Fatalf("FindConcurrent = %v", e)
	}
	all.Set(1, 9)
	if e := r.FindConcurrent(all); !e.IsNone() {
		t.Fatalf("FindConcurrent after covering = %v", e)
	}
}

func TestFindConcurrentEpochForm(t *testing.T) {
	r := NewReadSet()
	if e := r.FindConcurrent(New()); !e.IsNone() {
		t.Fatal("empty read set reported a concurrent reader")
	}
}
