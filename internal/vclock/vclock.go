// Package vclock implements vector clocks and FastTrack-style epochs,
// the timestamp machinery underlying happens-before race detection.
//
// A vector clock VC maps goroutine identifiers to logical times. The
// happens-before relation between two events is decided by comparing the
// clocks recorded at those events: event a happens before event b iff
// VC(a) ≤ VC(b) pointwise and the two clocks differ.
//
// FastTrack (Flanagan & Freund, PLDI 2009) observes that most accesses
// are totally ordered, so a single (goroutine, time) pair — an Epoch —
// suffices for the common case. The detector in this repository uses
// epochs for write histories and adaptively inflates read histories from
// an epoch to a full vector clock only when reads become concurrent.
package vclock

import (
	"fmt"
	"sort"
	"strings"
)

// TID identifies a modeled goroutine. TIDs are small dense integers
// assigned in spawn order by the scheduler, which keeps vector clocks
// compact (indexable by slice).
type TID int32

// None is the TID used by epochs that denote "no access yet".
const None TID = -1

// VC is a vector clock. The zero value is a usable clock with all
// components zero. VCs grow on demand; a missing component is zero.
type VC struct {
	ts []uint32
}

// New returns an empty vector clock.
func New() *VC { return &VC{} }

// NewWithCapacity returns an empty vector clock pre-sized for n goroutines.
func NewWithCapacity(n int) *VC { return &VC{ts: make([]uint32, 0, n)} }

// grow ensures the clock has a component for tid.
func (v *VC) grow(tid TID) {
	for int(tid) >= len(v.ts) {
		v.ts = append(v.ts, 0)
	}
}

// Get returns the component for tid (zero if never set).
func (v *VC) Get(tid TID) uint32 {
	if v == nil || int(tid) >= len(v.ts) || tid < 0 {
		return 0
	}
	return v.ts[tid]
}

// Set assigns the component for tid.
func (v *VC) Set(tid TID, t uint32) {
	v.grow(tid)
	v.ts[tid] = t
}

// Tick increments the component for tid and returns the new value.
func (v *VC) Tick(tid TID) uint32 {
	v.grow(tid)
	v.ts[tid]++
	return v.ts[tid]
}

// Join sets v to the pointwise maximum of v and o.
func (v *VC) Join(o *VC) {
	if o == nil {
		return
	}
	if len(o.ts) > len(v.ts) {
		v.grow(TID(len(o.ts) - 1))
	}
	for i, t := range o.ts {
		if t > v.ts[i] {
			v.ts[i] = t
		}
	}
}

// Copy returns a deep copy of v.
func (v *VC) Copy() *VC {
	c := &VC{ts: make([]uint32, len(v.ts))}
	copy(c.ts, v.ts)
	return c
}

// Assign overwrites v with the contents of o.
func (v *VC) Assign(o *VC) {
	v.ts = v.ts[:0]
	v.ts = append(v.ts, o.ts...)
}

// CopyInto overwrites dst with the contents of v, reusing dst's backing
// array. It is the pool-friendly form of Copy: a recycled destination
// of sufficient capacity makes the copy allocation-free.
func (v *VC) CopyInto(dst *VC) {
	dst.ts = append(dst.ts[:0], v.ts...)
}

// JoinInto folds v into dst (dst becomes the pointwise maximum),
// allocating only if dst must grow beyond its capacity. It is Join with
// the data flowing out of the receiver, which reads naturally when v is
// a source clock being merged into pooled, reused state.
func (v *VC) JoinInto(dst *VC) {
	dst.Join(v)
}

// LeqAll reports whether v ≤ o pointwise (v happens before or equals o).
func (v *VC) LeqAll(o *VC) bool {
	for i, t := range v.ts {
		if t > o.Get(TID(i)) {
			return false
		}
	}
	return true
}

// Concurrent reports whether neither clock is pointwise ≤ the other.
func (v *VC) Concurrent(o *VC) bool {
	return !v.LeqAll(o) && !o.LeqAll(v)
}

// Len returns the number of allocated components.
func (v *VC) Len() int { return len(v.ts) }

// Reset zeroes the clock in place, retaining capacity.
func (v *VC) Reset() {
	for i := range v.ts {
		v.ts[i] = 0
	}
}

// String renders the clock as {g0:t0 g1:t1 ...} omitting zero entries.
func (v *VC) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i, t := range v.ts {
		if t == 0 {
			continue
		}
		if !first {
			b.WriteByte(' ')
		}
		first = false
		fmt.Fprintf(&b, "g%d:%d", i, t)
	}
	b.WriteByte('}')
	return b.String()
}

// Epoch packs a (TID, time) pair into one word, FastTrack style.
// The zero Epoch is "no access" (TID None, time 0).
type Epoch uint64

// NoEpoch denotes the absence of any prior access (TID None, time 0).
const NoEpoch Epoch = Epoch(uint64(0xFFFFFFFF) << 32)

// MakeEpoch builds an epoch from a goroutine id and a time.
func MakeEpoch(tid TID, t uint32) Epoch {
	return Epoch(uint64(uint32(tid))<<32 | uint64(t))
}

// TID extracts the goroutine id of the epoch.
func (e Epoch) TID() TID { return TID(int32(uint32(e >> 32))) }

// Time extracts the logical time of the epoch.
func (e Epoch) Time() uint32 { return uint32(e) }

// IsNone reports whether the epoch denotes "no access".
func (e Epoch) IsNone() bool { return e.TID() == None }

// LeqVC reports whether the epoch happens before or equals the clock o,
// i.e. e.Time ≤ o[e.TID]. A None epoch vacuously happens before anything.
func (e Epoch) LeqVC(o *VC) bool {
	if e.IsNone() {
		return true
	}
	return e.Time() <= o.Get(e.TID())
}

// String renders the epoch as tid@time ("\u22a5" for the none epoch).
func (e Epoch) String() string {
	if e.IsNone() {
		return "⊥"
	}
	return fmt.Sprintf("g%d@%d", e.TID(), e.Time())
}

// ReadSet is FastTrack's adaptive read history: either a single epoch
// (the common, totally-ordered case) or an inflated read vector clock
// when concurrent readers exist.
type ReadSet struct {
	epoch    Epoch
	inflated *VC
}

// NewReadSet returns an empty read history.
func NewReadSet() ReadSet { return ReadSet{epoch: NoEpoch} }

// IsInflated reports whether the history holds a full vector clock.
func (r *ReadSet) IsInflated() bool { return r.inflated != nil }

// Epoch returns the single-epoch form; only meaningful when not inflated.
func (r *ReadSet) Epoch() Epoch { return r.epoch }

// Note records a read at epoch e by goroutine e.TID() whose current
// clock is cur. It inflates to a VC when the new read is concurrent
// with the recorded one, and reports whether this note performed that
// epoch→VC promotion — the signal adaptive detectors count.
func (r *ReadSet) Note(e Epoch, cur *VC) bool {
	return r.note(e, cur, nil)
}

// NotePooled is Note drawing the inflated clock from p, so a detector
// that recycles its read histories (ReleaseTo) inflates without
// allocating in the steady state. Like Note, it reports whether the
// history was promoted from epoch to vector-clock form.
func (r *ReadSet) NotePooled(e Epoch, cur *VC, p *Pool) bool {
	return r.note(e, cur, p)
}

func (r *ReadSet) note(e Epoch, cur *VC, p *Pool) bool {
	if r.inflated != nil {
		r.inflated.Set(e.TID(), e.Time())
		return false
	}
	if r.epoch.IsNone() || r.epoch.TID() == e.TID() || r.epoch.LeqVC(cur) {
		// Same reader, or previous read happens before this one:
		// stay in the cheap epoch representation.
		r.epoch = e
		return false
	}
	// Concurrent reads: promote to a full clock.
	if p != nil {
		r.inflated = p.Acquire()
	} else {
		r.inflated = New()
	}
	r.inflated.Set(r.epoch.TID(), r.epoch.Time())
	r.inflated.Set(e.TID(), e.Time())
	return true
}

// AllLeq reports whether every recorded read happens before or equals cur.
func (r *ReadSet) AllLeq(cur *VC) bool {
	if r.inflated != nil {
		return r.inflated.LeqAll(cur)
	}
	return r.epoch.LeqVC(cur)
}

// FindConcurrent returns one recorded reader epoch that is concurrent
// with cur (not ≤ cur), or NoEpoch if all reads are ordered before cur.
func (r *ReadSet) FindConcurrent(cur *VC) Epoch {
	if r.inflated != nil {
		for i := 0; i < r.inflated.Len(); i++ {
			t := r.inflated.Get(TID(i))
			if t != 0 && t > cur.Get(TID(i)) {
				return MakeEpoch(TID(i), t)
			}
		}
		return NoEpoch
	}
	if !r.epoch.IsNone() && !r.epoch.LeqVC(cur) {
		return r.epoch
	}
	return NoEpoch
}

// Reset clears the history back to "no reads".
func (r *ReadSet) Reset() {
	r.epoch = NoEpoch
	r.inflated = nil
}

// ReleaseTo clears the history like Reset, returning any inflated
// clock to p for reuse by the next inflation. It reports whether an
// inflated clock was actually released — a genuine VC→epoch demotion,
// as opposed to clearing a history that never left epoch form — so
// adaptive detectors can count demotions without peeking inside.
func (r *ReadSet) ReleaseTo(p *Pool) bool {
	demoted := r.inflated != nil
	if demoted {
		p.Release(r.inflated)
		r.inflated = nil
	}
	r.epoch = NoEpoch
	return demoted
}

// ForEach calls fn for every recorded reader epoch, in TID order for
// the inflated form. Unlike Readers it allocates nothing, so it is the
// form the detection hot path uses to walk the read history on a write.
func (r *ReadSet) ForEach(fn func(Epoch)) {
	if r.inflated != nil {
		for i := 0; i < r.inflated.Len(); i++ {
			if t := r.inflated.Get(TID(i)); t != 0 {
				fn(MakeEpoch(TID(i), t))
			}
		}
		return
	}
	if !r.epoch.IsNone() {
		fn(r.epoch)
	}
}

// AdaptiveClock is an adaptively-represented history clock: a single
// packed (TID, time) epoch while one goroutine owns the history — by
// far the common case for per-cell access histories — inflated to a
// pooled full vector clock on the first touch by a second goroutine,
// and demoted back to epoch form when the history is released.
//
// Unlike ReadSet, which follows FastTrack's read-share rule (ordered
// reads by different goroutines collapse into one epoch),
// AdaptiveClock preserves *every* goroutine's latest component exactly
// like a full VC does — it is a representation change only, so a
// DJIT-style detector that counts each concurrent component sees
// identical verdicts. The zero value is an empty history.
type AdaptiveClock struct {
	// epoch == 0 means empty: logical times start at 1, so a real
	// MakeEpoch(tid, t) is never the zero word.
	epoch    Epoch
	inflated *VC
}

// IsInflated reports whether the history holds a full vector clock.
func (a *AdaptiveClock) IsInflated() bool { return a.inflated != nil }

// Get returns the recorded time for tid (zero if never set).
func (a *AdaptiveClock) Get(tid TID) uint32 {
	if a.inflated != nil {
		return a.inflated.Get(tid)
	}
	if a.epoch != 0 && a.epoch.TID() == tid {
		return a.epoch.Time()
	}
	return 0
}

// SetPooled records time t for tid, drawing the inflated clock from p
// on promotion. It reports whether this set promoted the history from
// epoch to vector-clock form (first second-goroutine touch).
func (a *AdaptiveClock) SetPooled(tid TID, t uint32, p *Pool) bool {
	if a.inflated != nil {
		a.inflated.Set(tid, t)
		return false
	}
	if a.epoch == 0 || a.epoch.TID() == tid {
		a.epoch = MakeEpoch(tid, t)
		return false
	}
	if p != nil {
		a.inflated = p.Acquire()
	} else {
		a.inflated = New()
	}
	a.inflated.Set(a.epoch.TID(), a.epoch.Time())
	a.inflated.Set(tid, t)
	return true
}

// Set is SetPooled without a pool (promotion allocates).
func (a *AdaptiveClock) Set(tid TID, t uint32) bool { return a.SetPooled(tid, t, nil) }

// ForEachTime calls fn for every nonzero component, in TID order for
// the inflated form. It allocates nothing, so detection hot paths can
// walk the history per access.
func (a *AdaptiveClock) ForEachTime(fn func(TID, uint32)) {
	if a.inflated != nil {
		for i := 0; i < a.inflated.Len(); i++ {
			if t := a.inflated.Get(TID(i)); t != 0 {
				fn(TID(i), t)
			}
		}
		return
	}
	if a.epoch != 0 {
		fn(a.epoch.TID(), a.epoch.Time())
	}
}

// ReleaseTo empties the history, returning any inflated clock to p.
// Like ReadSet.ReleaseTo it reports whether a clock was actually
// released — a genuine VC→epoch demotion.
func (a *AdaptiveClock) ReleaseTo(p *Pool) bool {
	demoted := a.inflated != nil
	if demoted {
		p.Release(a.inflated)
		a.inflated = nil
	}
	a.epoch = 0
	return demoted
}

// Reset empties the history without pooling the inflated clock.
func (a *AdaptiveClock) Reset() {
	a.epoch = 0
	a.inflated = nil
}

// Readers returns the recorded reader epochs, sorted by TID, mainly for
// tests and diagnostics.
func (r *ReadSet) Readers() []Epoch {
	var out []Epoch
	if r.inflated != nil {
		for i := 0; i < r.inflated.Len(); i++ {
			if t := r.inflated.Get(TID(i)); t != 0 {
				out = append(out, MakeEpoch(TID(i), t))
			}
		}
	} else if !r.epoch.IsNone() {
		out = append(out, r.epoch)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TID() < out[j].TID() })
	return out
}
