package trace

import (
	"sort"

	"gorace/internal/vclock"
)

// WindowRecorder is a Listener that retains only the most recent
// events of each goroutine in a fixed-size ring — the trace-retention
// mode of streaming detection, where the full history of an unbounded
// stream cannot be kept but a manifested race should still carry
// enough recent context to classify and report. Memory is bounded by
// perG × live goroutines regardless of stream length.
type WindowRecorder struct {
	perG int
	gs   map[vclock.TID]*eventRing
}

// eventRing is one goroutine's window: an append-until-full buffer
// that then overwrites oldest-first.
type eventRing struct {
	buf  []Event
	next int // overwrite position once len(buf) == cap
}

// NewWindowRecorder returns a recorder retaining the last perG events
// of each goroutine (minimum 1).
func NewWindowRecorder(perG int) *WindowRecorder {
	if perG < 1 {
		perG = 1
	}
	return &WindowRecorder{perG: perG, gs: make(map[vclock.TID]*eventRing)}
}

// PerG returns the per-goroutine window size.
func (w *WindowRecorder) PerG() int { return w.perG }

// HandleEvent implements Listener.
func (w *WindowRecorder) HandleEvent(ev Event) {
	rg := w.gs[ev.G]
	if rg == nil {
		n := w.perG
		if n > 64 {
			n = 64 // grow to perG on demand; most goroutines stay short
		}
		rg = &eventRing{buf: make([]Event, 0, n)}
		w.gs[ev.G] = rg
	}
	if len(rg.buf) < w.perG {
		rg.buf = append(rg.buf, ev)
		return
	}
	rg.buf[rg.next] = ev
	rg.next++
	if rg.next == len(rg.buf) {
		rg.next = 0
	}
}

// Retained returns the total number of events currently held across
// all goroutine windows.
func (w *WindowRecorder) Retained() int {
	n := 0
	for _, rg := range w.gs {
		n += len(rg.buf)
	}
	return n
}

// Events returns the retained events of all goroutines merged into one
// fresh slice in Seq order — the classify-able trace excerpt a defect
// report keeps when it manifests mid-stream.
func (w *WindowRecorder) Events() []Event {
	out := make([]Event, 0, w.Retained())
	for _, rg := range w.gs {
		out = append(out, rg.buf...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Snapshot returns the merged window as a Recorder the caller owns.
func (w *WindowRecorder) Snapshot() *Recorder {
	return &Recorder{Events: w.Events()}
}

// Reset empties every window in place, keeping ring capacity, so one
// recorder serves many runs.
func (w *WindowRecorder) Reset() {
	for _, rg := range w.gs {
		rg.buf = rg.buf[:0]
		rg.next = 0
	}
}
