package trace

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"gorace/internal/stack"
	"gorace/internal/vclock"
)

func sampleTrace() *Recorder {
	ctx := stack.NewContext(
		stack.Frame{Func: "main", File: "m.go", Line: 1},
		stack.Frame{Func: "worker", File: "w.go", Line: 9},
	)
	return &Recorder{Events: []Event{
		{Seq: 1, G: 0, GName: "main", Op: OpFork, Child: 1},
		{Seq: 2, G: 1, GName: "worker", Op: OpWrite, Addr: 7, Stack: ctx, Label: "x"},
		{Seq: 3, G: 1, Op: OpAcquire, Obj: 3, Kind: KindMutex, Label: "mu"},
		{Seq: 4, G: 1, Op: OpRelease, Obj: 3, Kind: KindMutex, Label: "mu"},
		{Seq: 5, G: 1, Op: OpGoEnd},
	}}
}

// requireSameEvents asserts got replays the same operations as want,
// field for field (on the fields each op carries).
func requireSameEvents(t *testing.T, got, want []Event) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("event count %d, want %d", len(got), len(want))
	}
	for i, ev := range got {
		w := want[i]
		if ev.Seq != w.Seq || ev.G != w.G || ev.Op != w.Op ||
			ev.Addr != w.Addr || ev.Obj != w.Obj || ev.Kind != w.Kind ||
			ev.Child != w.Child || ev.Label != w.Label || ev.GName != w.GName {
			t.Fatalf("event %d: got %+v, want %+v", i, ev, w)
		}
		if ev.Stack.Key() != w.Stack.Key() {
			t.Fatalf("event %d: stack %q, want %q", i, ev.Stack.Key(), w.Stack.Key())
		}
		if ev.Stack.Leaf().Line != w.Stack.Leaf().Line {
			t.Fatalf("event %d: line lost in round trip", i)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	requireSameEvents(t, got.Events, orig.Events)
}

func TestSaveJSONLoadRoundTrip(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := orig.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	requireSameEvents(t, got.Events, orig.Events)
}

func TestLoadedTraceReplaysIdentically(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var a, b []string
	orig.Replay(ListenerFunc(func(ev Event) { a = append(a, ev.String()) }))
	loaded.Replay(ListenerFunc(func(ev Event) { b = append(b, ev.String()) }))
	if len(a) != len(b) {
		t.Fatal("replay lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverges at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestSaveEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Recorder{}).Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != 0 {
		t.Fatal("phantom events")
	}
}

func TestLoadGarbageFails(t *testing.T) {
	if _, err := Load(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Valid magic, truncated body.
	if _, err := Load(strings.NewReader("GRTB")); err == nil {
		t.Fatal("truncated binary header accepted")
	}
}

func TestLoadRejectsUnknownBinaryVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 99 // version byte follows the 4-byte magic
	if _, err := Load(bytes.NewReader(b)); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Fatalf("future version accepted: %v", err)
	}
}

func TestSaveJSONIsJSONLines(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("%d lines, want 5", len(lines))
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "{") || !strings.HasSuffix(l, "}") {
			t.Fatalf("line is not a JSON object: %q", l)
		}
	}
}

func TestSaveIsBinary(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), codecMagic[:]) {
		t.Fatalf("binary trace does not start with magic: % x", buf.Bytes()[:8])
	}
}

// Property: arbitrary events survive the save/load round trip in both
// formats. Fields an op does not carry (e.g. Addr on a fork) are
// normalized away by the codec, so the generated event only populates
// the fields its op defines — exactly what the runtime emits.
func TestRoundTripProperty(t *testing.T) {
	f := func(seq uint64, g int16, op uint8, addr, obj uint64, kind uint8, label string, fn string, line uint8) bool {
		if g < 0 {
			g = -g
		}
		ev := Event{
			Seq: seq, G: vclock.TID(g), Op: Op(op % 11), Label: label,
			Stack: stack.NewContext(stack.Frame{Func: fn, File: "f.go", Line: int(line)}),
		}
		switch {
		case ev.Op.IsAccess():
			ev.Addr = Addr(addr)
		case ev.Op == OpAcquire || ev.Op == OpRelease:
			ev.Obj = ObjID(obj)
			ev.Kind = ObjKind(kind % 8)
		case ev.Op == OpFork:
			ev.Child = vclock.TID(g) + 1
		}
		check := func(save func(*Recorder, io.Writer) error) bool {
			var buf bytes.Buffer
			if err := save(&Recorder{Events: []Event{ev}}, &buf); err != nil {
				return false
			}
			got, err := Load(&buf)
			if err != nil || len(got.Events) != 1 {
				return false
			}
			e := got.Events[0]
			return e.Seq == ev.Seq && e.G == ev.G && e.Op == ev.Op &&
				e.Addr == ev.Addr && e.Obj == ev.Obj && e.Kind == ev.Kind &&
				e.Child == ev.Child && e.Label == ev.Label && e.Stack.Key() == ev.Stack.Key()
		}
		return check((*Recorder).Save) &&
			check((*Recorder).SaveJSON)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
