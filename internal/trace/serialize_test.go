package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"gorace/internal/stack"
	"gorace/internal/vclock"
)

func sampleTrace() *Recorder {
	ctx := stack.NewContext(
		stack.Frame{Func: "main", File: "m.go", Line: 1},
		stack.Frame{Func: "worker", File: "w.go", Line: 9},
	)
	return &Recorder{Events: []Event{
		{Seq: 1, G: 0, GName: "main", Op: OpFork, Child: 1},
		{Seq: 2, G: 1, GName: "worker", Op: OpWrite, Addr: 7, Stack: ctx, Label: "x"},
		{Seq: 3, G: 1, Op: OpAcquire, Obj: 3, Kind: KindMutex, Label: "mu"},
		{Seq: 4, G: 1, Op: OpRelease, Obj: 3, Kind: KindMutex, Label: "mu"},
		{Seq: 5, G: 1, Op: OpGoEnd},
	}}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(orig.Events) {
		t.Fatalf("event count %d, want %d", len(got.Events), len(orig.Events))
	}
	for i, ev := range got.Events {
		want := orig.Events[i]
		if ev.Seq != want.Seq || ev.G != want.G || ev.Op != want.Op ||
			ev.Addr != want.Addr || ev.Obj != want.Obj || ev.Kind != want.Kind ||
			ev.Child != want.Child || ev.Label != want.Label || ev.GName != want.GName {
			t.Fatalf("event %d: got %+v, want %+v", i, ev, want)
		}
		if ev.Stack.Key() != want.Stack.Key() {
			t.Fatalf("event %d: stack %q, want %q", i, ev.Stack.Key(), want.Stack.Key())
		}
		if ev.Stack.Leaf().Line != want.Stack.Leaf().Line {
			t.Fatalf("event %d: line lost in round trip", i)
		}
	}
}

func TestLoadedTraceReplaysIdentically(t *testing.T) {
	orig := sampleTrace()
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var a, b []string
	orig.Replay(ListenerFunc(func(ev Event) { a = append(a, ev.String()) }))
	loaded.Replay(ListenerFunc(func(ev Event) { b = append(b, ev.String()) }))
	if len(a) != len(b) {
		t.Fatal("replay lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverges at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestSaveEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Recorder{}).Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != 0 {
		t.Fatal("phantom events")
	}
}

func TestLoadGarbageFails(t *testing.T) {
	if _, err := Load(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestSaveIsJSONLines(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().Save(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("%d lines, want 5", len(lines))
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "{") || !strings.HasSuffix(l, "}") {
			t.Fatalf("line is not a JSON object: %q", l)
		}
	}
}

// Property: arbitrary events survive the save/load round trip.
func TestRoundTripProperty(t *testing.T) {
	f := func(seq uint64, g int16, op uint8, addr, obj uint64, kind uint8, label string, fn string, line uint8) bool {
		if g < 0 {
			g = -g
		}
		ev := Event{
			Seq: seq, G: vclock.TID(g), Op: Op(op % 11), Addr: Addr(addr),
			Obj: ObjID(obj), Kind: ObjKind(kind % 8), Label: label,
			Stack: stack.NewContext(stack.Frame{Func: fn, File: "f.go", Line: int(line)}),
		}
		var buf bytes.Buffer
		if err := (&Recorder{Events: []Event{ev}}).Save(&buf); err != nil {
			return false
		}
		got, err := Load(&buf)
		if err != nil || len(got.Events) != 1 {
			return false
		}
		e := got.Events[0]
		return e.Seq == ev.Seq && e.G == ev.G && e.Op == ev.Op &&
			e.Addr == ev.Addr && e.Obj == ev.Obj && e.Kind == ev.Kind &&
			e.Label == ev.Label && e.Stack.Key() == ev.Stack.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
