package trace_test

import (
	"bytes"
	"testing"

	"gorace/internal/detector"
	"gorace/internal/progen"
	"gorace/internal/sched"
	"gorace/internal/trace"
)

// recordProgen runs one random program live under FastTrack while
// recording, returning the live reports' hashes and the recording.
func recordProgen(t testing.TB, seed int64) ([]string, *trace.Recorder) {
	t.Helper()
	prog := progen.Generate(seed, progen.Params{})
	det := detector.NewFastTrack()
	rec := &trace.Recorder{}
	sched.Run(prog.Main(), sched.Options{
		Strategy: sched.NewRandom(), Seed: seed, MaxSteps: 1 << 18,
		Listeners: []trace.Listener{det, rec},
	})
	return raceHashes(det), rec
}

func raceHashes(det detector.Detector) []string {
	var out []string
	for _, r := range det.Races() {
		out = append(out, r.Hash())
	}
	return out
}

// TestCodecReplayMatchesLiveDetection is the codec's end-to-end
// differential, mirroring the pooled-vs-fresh detector differentials:
// for ~60 random programs, a trace pushed through the binary codec
// (encode, decode, replay into a fresh detector) must produce exactly
// the race reports live detection produced. Any lossy field — a
// collapsed address delta, a dropped stack frame, a mangled label —
// shows up as a changed dedup hash here.
func TestCodecReplayMatchesLiveDetection(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		live, rec := recordProgen(t, seed)

		var buf bytes.Buffer
		if err := rec.Save(&buf); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		loaded, err := trace.Load(&buf)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		offline := detector.NewFastTrack()
		loaded.Replay(offline)
		replayed := raceHashes(offline)

		if len(live) != len(replayed) {
			t.Fatalf("seed %d: live detection %d races, replay-through-codec %d",
				seed, len(live), len(replayed))
		}
		for i := range live {
			if live[i] != replayed[i] {
				t.Fatalf("seed %d: race %d hash diverged: live %s, replayed %s",
					seed, i, live[i], replayed[i])
			}
		}
	}
}

// TestBinarySmallerThanJSON pins the codec's size win on real recorded
// traces: the acceptance bar is ≥5×, measured over random programs
// (not a hand-picked best case).
func TestBinarySmallerThanJSON(t *testing.T) {
	var jsonBytes, binBytes int
	for seed := int64(0); seed < 10; seed++ {
		_, rec := recordProgen(t, seed)
		var jb, bb bytes.Buffer
		if err := rec.SaveJSON(&jb); err != nil {
			t.Fatal(err)
		}
		if err := rec.Save(&bb); err != nil {
			t.Fatal(err)
		}
		jsonBytes += jb.Len()
		binBytes += bb.Len()
	}
	ratio := float64(jsonBytes) / float64(binBytes)
	t.Logf("json %d B, binary %d B: %.1fx smaller", jsonBytes, binBytes, ratio)
	if ratio < 5 {
		t.Fatalf("binary codec only %.1fx smaller than JSON Lines, want >= 5x", ratio)
	}
}
