package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"gorace/internal/stack"
	"gorace/internal/vclock"
)

// Binary trace codec (format version 1).
//
// The paper's deployment mode is record-once/analyze-many: a trace is
// captured on one machine and replayed into detectors long after the
// execution is gone, across thousands of runs a night. At that scale
// the JSON Lines form (SaveJSON) is the bottleneck — every event
// repeats its goroutine name, its label, and its whole call stack as
// text. The binary codec exploits the stream's actual redundancy:
//
//   - all integers are varints (addresses, objects, and sequence
//     numbers are small or slowly drifting);
//   - Seq is delta-encoded against the previous event (the scheduler
//     hands out nearly consecutive numbers);
//   - Addr and Obj are zigzag-delta-encoded against the *same
//     goroutine's* previous access — goroutines revisit nearby cells,
//     so per-goroutine deltas are far smaller than absolute values;
//   - GName, Label, and stack frame strings are interned in one
//     string table, written once on first use;
//   - a call stack identical to the same goroutine's previous stack
//     (the overwhelmingly common case: many events per frame) is a
//     single 0 byte.
//
// Layout:
//
//	"GRTB" magic | uvarint version | uvarint event count | events...
//
// A writer that knows the event count up front (Recorder.Save) writes
// it; a streaming writer (Encoder) cannot, and writes the sentinel
// codecStreamed instead, meaning "events until EOF". Decoders accept
// both.
//
// Each event:
//
//	op byte | uvarint G | uvarint ΔSeq
//	| access ops:     zigzag ΔAddr (vs G's last Addr)
//	| acquire/release: zigzag ΔObj (vs G's last Obj) | kind byte
//	| fork:           uvarint Child
//	| stringRef GName | stringRef Label
//	| stack: 0 (same as G's previous stack)
//	|        or uvarint depth+1, then per frame:
//	|          stringRef Func | stringRef File | zigzag Line
//
// A stringRef is uvarint index into the table; index == len(table)
// introduces a new entry (uvarint byte length + bytes) that is
// appended. Entry 0 is pre-seeded with "".

// codecMagic identifies a binary trace. The first byte ('G') can never
// open a JSON Lines trace (which starts with '{'), so Load can
// dispatch on a 4-byte peek.
var codecMagic = [4]byte{'G', 'R', 'T', 'B'}

// codecVersion is written after the magic; readers reject versions
// they do not know.
const codecVersion = 1

// codecStreamed is the event-count sentinel written by streaming
// encoders: the stream holds events until EOF, with no count known up
// front.
const codecStreamed = ^uint64(0)

// maxStringLen bounds one interned string. Real traces intern function
// names, file names, and site labels; anything longer is corruption,
// and rejecting it bounds what a hostile stream can make the decoder
// allocate for a single entry.
const maxStringLen = 1 << 20

// maxStackDepth bounds one encoded call stack, for the same reason.
const maxStackDepth = 1 << 16

// gCodecState is the per-goroutine prediction context shared (in
// shape) by the encoder and decoder.
type gCodecState struct {
	lastAddr  uint64
	lastObj   uint64
	lastStack []stack.Frame
}

type encoder struct {
	w       *bufio.Writer
	err     error
	scratch [binary.MaxVarintLen64]byte
	strings map[string]uint64
	gs      map[vclock.TID]*gCodecState
	lastSeq uint64
}

func newEncoderState(w io.Writer) *encoder {
	return &encoder{
		w:       bufio.NewWriter(w),
		strings: map[string]uint64{"": 0},
		gs:      make(map[vclock.TID]*gCodecState),
	}
}

// write funnels every byte through one sticky-error check, so a
// failing sink (a closed pipe, a full disk) surfaces on the next
// Encode instead of only at Flush.
func (e *encoder) write(p []byte) {
	if e.err == nil {
		_, e.err = e.w.Write(p)
	}
}

func (e *encoder) writeByte(b byte) {
	if e.err == nil {
		e.err = e.w.WriteByte(b)
	}
}

func (e *encoder) writeString(s string) {
	if e.err == nil {
		_, e.err = e.w.WriteString(s)
	}
}

func (e *encoder) uvarint(v uint64) {
	n := binary.PutUvarint(e.scratch[:], v)
	e.write(e.scratch[:n])
}

func (e *encoder) zigzag(v int64) {
	n := binary.PutVarint(e.scratch[:], v)
	e.write(e.scratch[:n])
}

// stringRef writes an interned reference, defining the string on first
// use.
func (e *encoder) stringRef(s string) {
	if idx, ok := e.strings[s]; ok {
		e.uvarint(idx)
		return
	}
	idx := uint64(len(e.strings))
	e.strings[s] = idx
	e.uvarint(idx)
	e.uvarint(uint64(len(s)))
	e.writeString(s)
}

func (e *encoder) gstate(g vclock.TID) *gCodecState {
	st, ok := e.gs[g]
	if !ok {
		st = &gCodecState{}
		e.gs[g] = st
	}
	return st
}

func sameFrames(a, b []stack.Frame) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (e *encoder) header(count uint64) {
	e.write(codecMagic[:])
	e.uvarint(codecVersion)
	e.uvarint(count)
}

func (e *encoder) event(ev Event) {
	gs := e.gstate(ev.G)
	e.writeByte(byte(ev.Op))
	e.uvarint(uint64(ev.G))
	e.zigzag(int64(ev.Seq) - int64(e.lastSeq))
	e.lastSeq = ev.Seq
	switch {
	case ev.Op.IsAccess():
		e.zigzag(int64(ev.Addr) - int64(gs.lastAddr))
		gs.lastAddr = uint64(ev.Addr)
	case ev.Op == OpAcquire || ev.Op == OpRelease:
		e.zigzag(int64(ev.Obj) - int64(gs.lastObj))
		gs.lastObj = uint64(ev.Obj)
		e.writeByte(byte(ev.Kind))
	case ev.Op == OpFork:
		e.uvarint(uint64(ev.Child))
	}
	e.stringRef(ev.GName)
	e.stringRef(ev.Label)
	frames := ev.Stack.Frames()
	if sameFrames(frames, gs.lastStack) {
		e.uvarint(0)
		return
	}
	e.uvarint(uint64(len(frames)) + 1)
	for _, f := range frames {
		e.stringRef(f.Func)
		e.stringRef(f.File)
		e.zigzag(int64(f.Line))
	}
	gs.lastStack = frames
}

func (e *encoder) flush() error {
	if e.err != nil {
		return e.err
	}
	return e.w.Flush()
}

// Save writes the recorded trace in the binary format. This is the
// default durable form; SaveJSON remains for the legacy JSON Lines
// format. The event count is known up front, so Save writes a counted
// header; Encoder is the streaming path for counts not known until
// EOF.
func (r *Recorder) Save(w io.Writer) error {
	e := newEncoderState(w)
	e.header(uint64(len(r.Events)))
	for _, ev := range r.Events {
		e.event(ev)
	}
	if err := e.flush(); err != nil {
		return fmt.Errorf("trace: save binary: %w", err)
	}
	return nil
}

// Encoder writes events incrementally in the binary codec — the
// live-capture half of streaming detection, where a producer encodes
// an execution as it happens and the total event count is unknown
// until the stream ends. The header carries the codecStreamed
// sentinel; Decoder reads such streams until EOF.
type Encoder struct {
	e *encoder
}

// NewEncoder starts a streamed binary trace on w. The header is
// buffered immediately; call Flush (or encode enough events to fill
// the buffer) to push bytes to w.
func NewEncoder(w io.Writer) *Encoder {
	e := newEncoderState(w)
	e.header(codecStreamed)
	return &Encoder{e: e}
}

// Encode appends one event to the stream. Events must arrive in
// stream order (Seq deltas are encoded against the previous event).
// An error is sticky: once the underlying writer fails, every later
// Encode reports the same error.
func (enc *Encoder) Encode(ev Event) error {
	enc.e.event(ev)
	return enc.e.err
}

// Flush pushes all buffered bytes to the underlying writer. Call it
// at stream end (and at any latency boundary a live consumer needs).
func (enc *Encoder) Flush() error {
	return enc.e.flush()
}

var errTruncated = fmt.Errorf("unexpected end of trace")

// binDecoder decodes the binary codec incrementally from a byte
// stream. It holds the string table, the per-goroutine prediction
// state, and a stack depot, so memory scales with the trace's distinct
// strings and stacks — not with its length.
type binDecoder struct {
	br      *bufio.Reader
	strings []string
	gs      map[vclock.TID]*gCodecState
	// stacks caches the Context built for each goroutine's current
	// frame list, so the "same stack" marker reuses one allocation.
	stacks map[vclock.TID]stack.Context
	// depot interns decoded contexts across goroutines and stack
	// switches: a stream that revisits the same call sites millions of
	// times materializes each Context once.
	depot   *stack.Depot
	frames  []stack.Frame // scratch, reused across events
	lastSeq uint64
}

func newBinDecoder(br *bufio.Reader) *binDecoder {
	return &binDecoder{
		br:      br,
		strings: []string{""},
		gs:      make(map[vclock.TID]*gCodecState),
		stacks:  make(map[vclock.TID]stack.Context),
		depot:   stack.NewDepot(),
	}
}

// mid maps an EOF that interrupts an event mid-field to errTruncated;
// a clean EOF is only legal before an event's first byte.
func mid(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return errTruncated
	}
	return err
}

func (d *binDecoder) uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(d.br)
	if err != nil {
		return 0, mid(err)
	}
	return v, nil
}

func (d *binDecoder) zigzag() (int64, error) {
	v, err := binary.ReadVarint(d.br)
	if err != nil {
		return 0, mid(err)
	}
	return v, nil
}

func (d *binDecoder) stringRef() (string, error) {
	idx, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if idx < uint64(len(d.strings)) {
		return d.strings[idx], nil
	}
	if idx != uint64(len(d.strings)) {
		return "", fmt.Errorf("string ref %d out of range (table has %d)", idx, len(d.strings))
	}
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("string length %d implausible", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(d.br, buf); err != nil {
		return "", mid(err)
	}
	s := string(buf)
	d.strings = append(d.strings, s)
	return s, nil
}

func (d *binDecoder) gstate(g vclock.TID) *gCodecState {
	st, ok := d.gs[g]
	if !ok {
		st = &gCodecState{}
		d.gs[g] = st
	}
	return st
}

// event decodes the next event. atEOF reports whether a clean EOF (no
// event bytes at all) is legal here; when it is, the bare io.EOF is
// returned untouched for the caller to translate into end-of-stream.
func (d *binDecoder) event(atEOF bool) (Event, error) {
	var ev Event
	opb, err := d.br.ReadByte()
	if err != nil {
		if err == io.EOF && atEOF {
			return ev, io.EOF
		}
		return ev, mid(err)
	}
	ev.Op = Op(opb)
	g, err := d.uvarint()
	if err != nil {
		return ev, err
	}
	ev.G = vclock.TID(g)
	gs := d.gstate(ev.G)
	dseq, err := d.zigzag()
	if err != nil {
		return ev, err
	}
	ev.Seq = uint64(int64(d.lastSeq) + dseq)
	d.lastSeq = ev.Seq
	switch {
	case ev.Op.IsAccess():
		da, err := d.zigzag()
		if err != nil {
			return ev, err
		}
		gs.lastAddr = uint64(int64(gs.lastAddr) + da)
		ev.Addr = Addr(gs.lastAddr)
	case ev.Op == OpAcquire || ev.Op == OpRelease:
		do, err := d.zigzag()
		if err != nil {
			return ev, err
		}
		gs.lastObj = uint64(int64(gs.lastObj) + do)
		ev.Obj = ObjID(gs.lastObj)
		kb, err := d.br.ReadByte()
		if err != nil {
			return ev, mid(err)
		}
		ev.Kind = ObjKind(kb)
	case ev.Op == OpFork:
		c, err := d.uvarint()
		if err != nil {
			return ev, err
		}
		ev.Child = vclock.TID(c)
	}
	if ev.GName, err = d.stringRef(); err != nil {
		return ev, err
	}
	if ev.Label, err = d.stringRef(); err != nil {
		return ev, err
	}
	depth, err := d.uvarint()
	if err != nil {
		return ev, err
	}
	if depth == 0 {
		ev.Stack = d.stacks[ev.G]
		return ev, nil
	}
	depth--
	if depth > maxStackDepth {
		return ev, fmt.Errorf("stack depth %d implausible", depth)
	}
	if uint64(cap(d.frames)) < depth {
		d.frames = make([]stack.Frame, depth)
	}
	frames := d.frames[:depth]
	for i := range frames {
		if frames[i].Func, err = d.stringRef(); err != nil {
			return ev, err
		}
		if frames[i].File, err = d.stringRef(); err != nil {
			return ev, err
		}
		line, err := d.zigzag()
		if err != nil {
			return ev, err
		}
		frames[i].Line = int(line)
	}
	ctx := d.depot.Intern(frames)
	d.stacks[ev.G] = ctx
	ev.Stack = ctx
	return ev, nil
}
