package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"gorace/internal/stack"
	"gorace/internal/vclock"
)

// Binary trace codec (format version 1).
//
// The paper's deployment mode is record-once/analyze-many: a trace is
// captured on one machine and replayed into detectors long after the
// execution is gone, across thousands of runs a night. At that scale
// the JSON Lines form (SaveJSON) is the bottleneck — every event
// repeats its goroutine name, its label, and its whole call stack as
// text. The binary codec exploits the stream's actual redundancy:
//
//   - all integers are varints (addresses, objects, and sequence
//     numbers are small or slowly drifting);
//   - Seq is delta-encoded against the previous event (the scheduler
//     hands out nearly consecutive numbers);
//   - Addr and Obj are zigzag-delta-encoded against the *same
//     goroutine's* previous access — goroutines revisit nearby cells,
//     so per-goroutine deltas are far smaller than absolute values;
//   - GName, Label, and stack frame strings are interned in one
//     string table, written once on first use;
//   - a call stack identical to the same goroutine's previous stack
//     (the overwhelmingly common case: many events per frame) is a
//     single 0 byte.
//
// Layout:
//
//	"GRTB" magic | uvarint version | uvarint event count | events...
//
// Each event:
//
//	op byte | uvarint G | uvarint ΔSeq
//	| access ops:     zigzag ΔAddr (vs G's last Addr)
//	| acquire/release: zigzag ΔObj (vs G's last Obj) | kind byte
//	| fork:           uvarint Child
//	| stringRef GName | stringRef Label
//	| stack: 0 (same as G's previous stack)
//	|        or uvarint depth+1, then per frame:
//	|          stringRef Func | stringRef File | zigzag Line
//
// A stringRef is uvarint index into the table; index == len(table)
// introduces a new entry (uvarint byte length + bytes) that is
// appended. Entry 0 is pre-seeded with "".

// codecMagic identifies a binary trace. The first byte ('G') can never
// open a JSON Lines trace (which starts with '{'), so Load can
// dispatch on a 4-byte peek.
var codecMagic = [4]byte{'G', 'R', 'T', 'B'}

// codecVersion is written after the magic; readers reject versions
// they do not know.
const codecVersion = 1

// gCodecState is the per-goroutine prediction context shared (in
// shape) by the encoder and decoder.
type gCodecState struct {
	lastAddr  uint64
	lastObj   uint64
	lastStack []stack.Frame
}

type encoder struct {
	w       *bufio.Writer
	scratch [binary.MaxVarintLen64]byte
	strings map[string]uint64
	gs      map[vclock.TID]*gCodecState
	lastSeq uint64
}

func (e *encoder) uvarint(v uint64) {
	n := binary.PutUvarint(e.scratch[:], v)
	e.w.Write(e.scratch[:n])
}

func (e *encoder) zigzag(v int64) {
	n := binary.PutVarint(e.scratch[:], v)
	e.w.Write(e.scratch[:n])
}

// stringRef writes an interned reference, defining the string on first
// use.
func (e *encoder) stringRef(s string) {
	if idx, ok := e.strings[s]; ok {
		e.uvarint(idx)
		return
	}
	idx := uint64(len(e.strings))
	e.strings[s] = idx
	e.uvarint(idx)
	e.uvarint(uint64(len(s)))
	e.w.WriteString(s)
}

func (e *encoder) gstate(g vclock.TID) *gCodecState {
	st, ok := e.gs[g]
	if !ok {
		st = &gCodecState{}
		e.gs[g] = st
	}
	return st
}

func sameFrames(a, b []stack.Frame) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (e *encoder) event(ev Event) {
	gs := e.gstate(ev.G)
	e.w.WriteByte(byte(ev.Op))
	e.uvarint(uint64(ev.G))
	e.zigzag(int64(ev.Seq) - int64(e.lastSeq))
	e.lastSeq = ev.Seq
	switch {
	case ev.Op.IsAccess():
		e.zigzag(int64(ev.Addr) - int64(gs.lastAddr))
		gs.lastAddr = uint64(ev.Addr)
	case ev.Op == OpAcquire || ev.Op == OpRelease:
		e.zigzag(int64(ev.Obj) - int64(gs.lastObj))
		gs.lastObj = uint64(ev.Obj)
		e.w.WriteByte(byte(ev.Kind))
	case ev.Op == OpFork:
		e.uvarint(uint64(ev.Child))
	}
	e.stringRef(ev.GName)
	e.stringRef(ev.Label)
	frames := ev.Stack.Frames()
	if sameFrames(frames, gs.lastStack) {
		e.uvarint(0)
		return
	}
	e.uvarint(uint64(len(frames)) + 1)
	for _, f := range frames {
		e.stringRef(f.Func)
		e.stringRef(f.File)
		e.zigzag(int64(f.Line))
	}
	gs.lastStack = frames
}

// Save writes the recorded trace in the binary format. This is the
// default durable form; SaveJSON remains for the legacy JSON Lines
// format.
func (r *Recorder) Save(w io.Writer) error {
	e := &encoder{
		w:       bufio.NewWriter(w),
		strings: map[string]uint64{"": 0},
		gs:      make(map[vclock.TID]*gCodecState),
	}
	e.w.Write(codecMagic[:])
	e.uvarint(codecVersion)
	e.uvarint(uint64(len(r.Events)))
	for _, ev := range r.Events {
		e.event(ev)
	}
	if err := e.w.Flush(); err != nil {
		return fmt.Errorf("trace: save binary: %w", err)
	}
	return nil
}

// decoder decodes from an in-memory buffer: traces shrink ~10× under
// the codec, so reading the whole stream first costs little memory and
// lets the varint hot path run over a slice instead of paying an
// interface call per byte.
type decoder struct {
	buf     []byte
	off     int
	strings []string
	gs      map[vclock.TID]*gCodecState
	// stacks caches the Context built for each goroutine's current
	// frame list, so the "same stack" marker reuses one allocation.
	stacks  map[vclock.TID]stack.Context
	lastSeq uint64
}

var errTruncated = fmt.Errorf("unexpected end of trace")

func (d *decoder) byte() (byte, error) {
	if d.off >= len(d.buf) {
		return 0, errTruncated
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, errTruncated
	}
	d.off += n
	return v, nil
}

func (d *decoder) zigzag() (int64, error) {
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		return 0, errTruncated
	}
	d.off += n
	return v, nil
}

func (d *decoder) stringRef() (string, error) {
	idx, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if idx < uint64(len(d.strings)) {
		return d.strings[idx], nil
	}
	if idx != uint64(len(d.strings)) {
		return "", fmt.Errorf("string ref %d out of range (table has %d)", idx, len(d.strings))
	}
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > 1<<20 || uint64(len(d.buf)-d.off) < n {
		return "", fmt.Errorf("string length %d implausible", n)
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	d.strings = append(d.strings, s)
	return s, nil
}

func (d *decoder) gstate(g vclock.TID) *gCodecState {
	st, ok := d.gs[g]
	if !ok {
		st = &gCodecState{}
		d.gs[g] = st
	}
	return st
}

func (d *decoder) event() (Event, error) {
	var ev Event
	opb, err := d.byte()
	if err != nil {
		return ev, err
	}
	ev.Op = Op(opb)
	g, err := d.uvarint()
	if err != nil {
		return ev, err
	}
	ev.G = vclock.TID(g)
	gs := d.gstate(ev.G)
	dseq, err := d.zigzag()
	if err != nil {
		return ev, err
	}
	ev.Seq = uint64(int64(d.lastSeq) + dseq)
	d.lastSeq = ev.Seq
	switch {
	case ev.Op.IsAccess():
		da, err := d.zigzag()
		if err != nil {
			return ev, err
		}
		gs.lastAddr = uint64(int64(gs.lastAddr) + da)
		ev.Addr = Addr(gs.lastAddr)
	case ev.Op == OpAcquire || ev.Op == OpRelease:
		do, err := d.zigzag()
		if err != nil {
			return ev, err
		}
		gs.lastObj = uint64(int64(gs.lastObj) + do)
		ev.Obj = ObjID(gs.lastObj)
		kb, err := d.byte()
		if err != nil {
			return ev, err
		}
		ev.Kind = ObjKind(kb)
	case ev.Op == OpFork:
		c, err := d.uvarint()
		if err != nil {
			return ev, err
		}
		ev.Child = vclock.TID(c)
	}
	if ev.GName, err = d.stringRef(); err != nil {
		return ev, err
	}
	if ev.Label, err = d.stringRef(); err != nil {
		return ev, err
	}
	depth, err := d.uvarint()
	if err != nil {
		return ev, err
	}
	if depth == 0 {
		ev.Stack = d.stacks[ev.G]
		return ev, nil
	}
	depth--
	if depth > 1<<16 {
		return ev, fmt.Errorf("stack depth %d implausible", depth)
	}
	frames := make([]stack.Frame, depth)
	for i := range frames {
		if frames[i].Func, err = d.stringRef(); err != nil {
			return ev, err
		}
		if frames[i].File, err = d.stringRef(); err != nil {
			return ev, err
		}
		line, err := d.zigzag()
		if err != nil {
			return ev, err
		}
		frames[i].Line = int(line)
	}
	ctx := stack.NewContext(frames...)
	d.stacks[ev.G] = ctx
	ev.Stack = ctx
	return ev, nil
}

// loadBinary decodes a binary trace whose magic has already been
// verified by Load.
func loadBinary(br *bufio.Reader) (*Recorder, error) {
	if _, err := br.Discard(len(codecMagic)); err != nil {
		return nil, err
	}
	data, err := io.ReadAll(br)
	if err != nil {
		return nil, fmt.Errorf("trace: read binary: %w", err)
	}
	d := &decoder{
		buf:     data,
		strings: []string{""},
		gs:      make(map[vclock.TID]*gCodecState),
		stacks:  make(map[vclock.TID]stack.Context),
	}
	version, err := d.uvarint()
	if err != nil {
		return nil, fmt.Errorf("trace: binary header: %w", err)
	}
	if version != codecVersion {
		return nil, fmt.Errorf("trace: unsupported binary trace version %d (want %d)", version, codecVersion)
	}
	count, err := d.uvarint()
	if err != nil {
		return nil, fmt.Errorf("trace: binary header: %w", err)
	}
	// Every event costs at least six bytes (op, G, ΔSeq, two string
	// refs, stack marker), so a count beyond remaining/6 is
	// corruption — reject before preallocating count Events.
	if count > uint64(len(data)-d.off)/6 {
		return nil, fmt.Errorf("trace: event count %d implausible for %d-byte body", count, len(data)-d.off)
	}
	rec := &Recorder{Events: make([]Event, 0, count)}
	for i := uint64(0); i < count; i++ {
		ev, err := d.event()
		if err != nil {
			return nil, fmt.Errorf("trace: decode binary event %d: %w", i, err)
		}
		rec.Events = append(rec.Events, ev)
	}
	return rec, nil
}
