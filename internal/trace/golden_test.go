package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden trace files")

// The golden files pin both on-disk trace formats: golden.jsonl is the
// legacy JSON Lines form (a trace saved before the binary codec
// existed), golden.bin is binary codec version 1. Load must keep
// reading both byte-for-byte forever — a codec change that breaks
// either is a compatibility break, not a refactor.
func TestGoldenTracesLoad(t *testing.T) {
	want := sampleTrace()
	for _, tc := range []struct {
		file string
		save func(*Recorder) []byte
	}{
		{"golden.jsonl", func(r *Recorder) []byte {
			var buf bytes.Buffer
			if err := r.SaveJSON(&buf); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}},
		{"golden.bin", func(r *Recorder) []byte {
			var buf bytes.Buffer
			if err := r.Save(&buf); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}},
	} {
		path := filepath.Join("testdata", tc.file)
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, tc.save(want), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("%s: %v (run `go test -run Golden -update ./internal/trace` after a deliberate format change)", tc.file, err)
		}
		got, err := Load(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", tc.file, err)
		}
		requireSameEvents(t, got.Events, want.Events)
	}
}
