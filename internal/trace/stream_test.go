package trace

import (
	"bytes"
	"io"
	"testing"
)

// TestEncoderDecoderRoundTrip pins the streamed (count-unknown) form:
// events pushed through Encoder one at a time come back identical
// through Decoder, and the decoder reports a clean EOF at the
// boundary.
func TestEncoderDecoderRoundTrip(t *testing.T) {
	want := sampleTrace()
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for _, ev := range want.Events {
		if err := enc.Encode(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := dec.Count(); ok {
		t.Fatal("streamed trace should not advertise a count")
	}
	var got []Event
	for {
		ev, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("event %d: %v", len(got), err)
		}
		got = append(got, ev)
	}
	requireSameEvents(t, got, want.Events)
	if dec.Decoded() != uint64(len(want.Events)) {
		t.Fatalf("Decoded() = %d, want %d", dec.Decoded(), len(want.Events))
	}
	// Sticky EOF: once drained, Next keeps reporting end of stream.
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("Next after EOF = %v, want io.EOF", err)
	}
}

// TestDecoderMatchesLoadOnSavedTrace pins Load's delegation: decoding
// a counted (Recorder.Save) trace incrementally yields exactly what
// Load returns, and the header count is surfaced as a hint.
func TestDecoderMatchesLoadOnSavedTrace(t *testing.T) {
	want := sampleTrace()
	var buf bytes.Buffer
	if err := want.Save(&buf); err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	n, ok := dec.Count()
	if !ok || n != uint64(len(want.Events)) {
		t.Fatalf("Count() = %d,%t, want %d,true", n, ok, len(want.Events))
	}
	var got []Event
	for {
		ev, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, ev)
	}
	requireSameEvents(t, got, want.Events)
}

// TestDecoderTruncation verifies every proper prefix of a binary trace
// fails with an error — never a panic, never a silently short result
// on a counted stream.
func TestDecoderTruncation(t *testing.T) {
	want := sampleTrace()
	var buf bytes.Buffer
	if err := want.Save(&buf); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := len(whole) - 1; cut > len(codecMagic); cut-- {
		dec, err := NewDecoder(bytes.NewReader(whole[:cut]))
		if err != nil {
			continue // truncated inside the header: also a clean error
		}
		decoded := 0
		for {
			_, err := dec.Next()
			if err == io.EOF {
				t.Fatalf("cut at %d/%d: decoder reported clean EOF after %d events on a counted stream",
					cut, len(whole), decoded)
			}
			if err != nil {
				break // truncation surfaced as an error: correct
			}
			decoded++
		}
	}
}

// TestWindowRecorder pins the ring semantics: per-goroutine retention,
// oldest-first overwrite, and a Seq-ordered merged snapshot.
func TestWindowRecorder(t *testing.T) {
	w := NewWindowRecorder(3)
	for i := 0; i < 10; i++ {
		w.HandleEvent(Event{Seq: uint64(i + 1), G: 1, Op: OpRead, Addr: 7})
	}
	w.HandleEvent(Event{Seq: 100, G: 2, Op: OpWrite, Addr: 7})
	if got := w.Retained(); got != 4 {
		t.Fatalf("Retained() = %d, want 4 (3 for g1 + 1 for g2)", got)
	}
	evs := w.Events()
	wantSeqs := []uint64{8, 9, 10, 100}
	if len(evs) != len(wantSeqs) {
		t.Fatalf("Events() returned %d events, want %d", len(evs), len(wantSeqs))
	}
	for i, ev := range evs {
		if ev.Seq != wantSeqs[i] {
			t.Fatalf("event %d has Seq %d, want %d", i, ev.Seq, wantSeqs[i])
		}
	}
	w.Reset()
	if got := w.Retained(); got != 0 {
		t.Fatalf("Retained() after Reset = %d, want 0", got)
	}
}

// FuzzStreamDecode feeds the streaming decoder truncated, corrupt, and
// hostile inputs: whatever the bytes, decoding must error cleanly —
// never panic and never allocate proportionally to an
// attacker-claimed length. Seeded from the golden binary trace so the
// fuzzer starts from a structurally valid stream.
func FuzzStreamDecode(f *testing.F) {
	want := sampleTrace()
	var counted bytes.Buffer
	if err := want.Save(&counted); err != nil {
		f.Fatal(err)
	}
	f.Add(counted.Bytes())
	var streamed bytes.Buffer
	enc := NewEncoder(&streamed)
	for _, ev := range want.Events {
		enc.Encode(ev)
	}
	enc.Flush()
	f.Add(streamed.Bytes())
	f.Add([]byte("GRTB"))
	f.Add([]byte{})
	f.Add([]byte(`{"seq":1,"g":0,"op":2,"addr":3}` + "\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := NewDecoder(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Cap decoded events to bound fuzz-iteration time; hostile
		// counts must not translate into allocations regardless.
		for i := 0; i < 1<<16; i++ {
			if _, err := dec.Next(); err != nil {
				return
			}
		}
	})
}
