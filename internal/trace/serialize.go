package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"gorace/internal/stack"
)

// The paper's deployment analyzes executions post-facto: the detector
// runs over captured executions, and reports reference the source
// snapshot they came from. Recorder has two durable forms: the binary
// codec (codec.go, the default written by Save) and the legacy JSON
// Lines format below, one event per line. Load auto-detects which one
// it is reading, so traces saved before the binary codec existed keep
// loading.

// wireEvent is the serialized form of Event in the JSON Lines format.
type wireEvent struct {
	Seq   uint64        `json:"seq"`
	G     int32         `json:"g"`
	GName string        `json:"gname,omitempty"`
	Op    uint8         `json:"op"`
	Addr  uint64        `json:"addr,omitempty"`
	Obj   uint64        `json:"obj,omitempty"`
	Kind  uint8         `json:"kind,omitempty"`
	Child int32         `json:"child,omitempty"`
	Stack []stack.Frame `json:"stack,omitempty"`
	Label string        `json:"label,omitempty"`
}

// SaveJSON writes the recorded trace as JSON Lines, the legacy
// interchange format. New traces should use Save (binary): it is both
// far smaller and far faster, and Load reads either.
func (r *Recorder) SaveJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range r.Events {
		we := wireEvent{
			Seq: ev.Seq, G: int32(ev.G), GName: ev.GName, Op: uint8(ev.Op),
			Addr: uint64(ev.Addr), Obj: uint64(ev.Obj), Kind: uint8(ev.Kind),
			Child: int32(ev.Child), Stack: ev.Stack.Frames(), Label: ev.Label,
		}
		if err := enc.Encode(we); err != nil {
			return fmt.Errorf("trace: encode event %d: %w", ev.Seq, err)
		}
	}
	return bw.Flush()
}

// Load reads a trace into a fresh Recorder by delegating to the
// incremental Decoder, so even a multi-gigabyte trace file is decoded
// event by event rather than slurped into one buffer first. Callers
// that do not need the whole trace in memory should use NewDecoder
// directly.
func Load(r io.Reader) (*Recorder, error) {
	dec, err := NewDecoder(r)
	if err != nil {
		return nil, err
	}
	rec := &Recorder{}
	if n, ok := dec.Count(); ok {
		rec.Events = make([]Event, 0, min(n, maxCountPrealloc))
	}
	for {
		ev, err := dec.Next()
		if err == io.EOF {
			return rec, nil
		}
		if err != nil {
			return nil, err
		}
		rec.Events = append(rec.Events, ev)
	}
}
