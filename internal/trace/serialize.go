package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"gorace/internal/stack"
	"gorace/internal/vclock"
)

// The paper's deployment analyzes executions post-facto: the detector
// runs over captured executions, and reports reference the source
// snapshot they came from. This file gives Recorder a durable form —
// JSON Lines, one event per line — so a trace captured in one process
// can be re-analyzed later (Recorder.Replay) by any detector.

// wireEvent is the serialized form of Event.
type wireEvent struct {
	Seq   uint64        `json:"seq"`
	G     int32         `json:"g"`
	GName string        `json:"gname,omitempty"`
	Op    uint8         `json:"op"`
	Addr  uint64        `json:"addr,omitempty"`
	Obj   uint64        `json:"obj,omitempty"`
	Kind  uint8         `json:"kind,omitempty"`
	Child int32         `json:"child,omitempty"`
	Stack []stack.Frame `json:"stack,omitempty"`
	Label string        `json:"label,omitempty"`
}

// Save writes the recorded trace as JSON Lines.
func (r *Recorder) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range r.Events {
		we := wireEvent{
			Seq: ev.Seq, G: int32(ev.G), GName: ev.GName, Op: uint8(ev.Op),
			Addr: uint64(ev.Addr), Obj: uint64(ev.Obj), Kind: uint8(ev.Kind),
			Child: int32(ev.Child), Stack: ev.Stack.Frames(), Label: ev.Label,
		}
		if err := enc.Encode(we); err != nil {
			return fmt.Errorf("trace: encode event %d: %w", ev.Seq, err)
		}
	}
	return bw.Flush()
}

// Load reads a JSON Lines trace into a fresh Recorder.
func Load(r io.Reader) (*Recorder, error) {
	rec := &Recorder{}
	dec := json.NewDecoder(bufio.NewReader(r))
	for {
		var we wireEvent
		if err := dec.Decode(&we); err == io.EOF {
			return rec, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: decode: %w", err)
		}
		rec.Events = append(rec.Events, Event{
			Seq: we.Seq, G: vclock.TID(we.G), GName: we.GName, Op: Op(we.Op),
			Addr: Addr(we.Addr), Obj: ObjID(we.Obj), Kind: ObjKind(we.Kind),
			Child: vclock.TID(we.Child), Stack: stack.NewContext(we.Stack...),
			Label: we.Label,
		})
	}
}
