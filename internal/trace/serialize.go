package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"gorace/internal/stack"
	"gorace/internal/vclock"
)

// The paper's deployment analyzes executions post-facto: the detector
// runs over captured executions, and reports reference the source
// snapshot they came from. Recorder has two durable forms: the binary
// codec (codec.go, the default written by Save) and the legacy JSON
// Lines format below, one event per line. Load auto-detects which one
// it is reading, so traces saved before the binary codec existed keep
// loading.

// wireEvent is the serialized form of Event in the JSON Lines format.
type wireEvent struct {
	Seq   uint64        `json:"seq"`
	G     int32         `json:"g"`
	GName string        `json:"gname,omitempty"`
	Op    uint8         `json:"op"`
	Addr  uint64        `json:"addr,omitempty"`
	Obj   uint64        `json:"obj,omitempty"`
	Kind  uint8         `json:"kind,omitempty"`
	Child int32         `json:"child,omitempty"`
	Stack []stack.Frame `json:"stack,omitempty"`
	Label string        `json:"label,omitempty"`
}

// SaveJSON writes the recorded trace as JSON Lines, the legacy
// interchange format. New traces should use Save (binary): it is both
// far smaller and far faster, and Load reads either.
func (r *Recorder) SaveJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range r.Events {
		we := wireEvent{
			Seq: ev.Seq, G: int32(ev.G), GName: ev.GName, Op: uint8(ev.Op),
			Addr: uint64(ev.Addr), Obj: uint64(ev.Obj), Kind: uint8(ev.Kind),
			Child: int32(ev.Child), Stack: ev.Stack.Frames(), Label: ev.Label,
		}
		if err := enc.Encode(we); err != nil {
			return fmt.Errorf("trace: encode event %d: %w", ev.Seq, err)
		}
	}
	return bw.Flush()
}

// Load reads a trace into a fresh Recorder, auto-detecting the format:
// a binary-codec magic header selects the binary decoder, anything
// else falls back to the legacy JSON Lines reader.
func Load(r io.Reader) (*Recorder, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(codecMagic))
	if err == nil && bytes.Equal(head, codecMagic[:]) {
		return loadBinary(br)
	}
	return loadJSON(br)
}

// loadJSON reads the legacy JSON Lines format.
func loadJSON(br *bufio.Reader) (*Recorder, error) {
	rec := &Recorder{}
	dec := json.NewDecoder(br)
	for {
		var we wireEvent
		if err := dec.Decode(&we); err == io.EOF {
			return rec, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: decode: %w", err)
		}
		rec.Events = append(rec.Events, Event{
			Seq: we.Seq, G: vclock.TID(we.G), GName: we.GName, Op: Op(we.Op),
			Addr: Addr(we.Addr), Obj: ObjID(we.Obj), Kind: ObjKind(we.Kind),
			Child: vclock.TID(we.Child), Stack: stack.NewContext(we.Stack...),
			Label: we.Label,
		})
	}
}
