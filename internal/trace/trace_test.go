package trace

import (
	"testing"

	"gorace/internal/stack"
)

func TestOpClassification(t *testing.T) {
	cases := []struct {
		op      Op
		access  bool
		atomic  bool
		isWrite bool
	}{
		{OpRead, true, false, false},
		{OpWrite, true, false, true},
		{OpAtomicLoad, true, true, false},
		{OpAtomicStore, true, true, true},
		{OpAtomicRMW, true, true, true},
		{OpAcquire, false, false, false},
		{OpRelease, false, false, false},
		{OpFork, false, false, false},
		{OpGoEnd, false, false, false},
	}
	for _, c := range cases {
		if c.op.IsAccess() != c.access {
			t.Errorf("%v IsAccess = %v", c.op, c.op.IsAccess())
		}
		if c.op.IsAtomic() != c.atomic {
			t.Errorf("%v IsAtomic = %v", c.op, c.op.IsAtomic())
		}
		if c.op.IsWrite() != c.isWrite {
			t.Errorf("%v IsWrite = %v", c.op, c.op.IsWrite())
		}
	}
}

func TestOpStrings(t *testing.T) {
	for op := OpNone; op <= OpGoLeak; op++ {
		if op.String() == "" {
			t.Errorf("op %d has empty String", op)
		}
	}
}

func TestObjKindStrings(t *testing.T) {
	for k := KindNone; k <= KindInternal; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has empty String", k)
		}
	}
}

func TestRecorderReplayPreservesOrder(t *testing.T) {
	r := &Recorder{}
	for i := 0; i < 5; i++ {
		r.HandleEvent(Event{Seq: uint64(i), Op: OpRead, Addr: Addr(i)})
	}
	var got []uint64
	r.Replay(ListenerFunc(func(ev Event) { got = append(got, ev.Seq) }))
	for i, s := range got {
		if s != uint64(i) {
			t.Fatalf("replay order broken: %v", got)
		}
	}
}

func TestRecorderCountOps(t *testing.T) {
	r := &Recorder{}
	r.HandleEvent(Event{Op: OpRead})
	r.HandleEvent(Event{Op: OpRead})
	r.HandleEvent(Event{Op: OpWrite})
	m := r.CountOps()
	if m[OpRead] != 2 || m[OpWrite] != 1 {
		t.Fatalf("CountOps = %v", m)
	}
}

func TestMultiFansOut(t *testing.T) {
	var a, b int
	m := Multi{
		ListenerFunc(func(Event) { a++ }),
		ListenerFunc(func(Event) { b++ }),
	}
	m.HandleEvent(Event{Op: OpRead})
	if a != 1 || b != 1 {
		t.Fatalf("fan-out counts: %d, %d", a, b)
	}
}

func TestEventString(t *testing.T) {
	ctx := stack.NewContext(stack.Frame{Func: "main", File: "m.go", Line: 3})
	evs := []Event{
		{Seq: 1, G: 0, Op: OpWrite, Addr: 7, Stack: ctx},
		{Seq: 2, G: 1, Op: OpAcquire, Obj: 9, Kind: KindMutex},
		{Seq: 3, G: 0, Op: OpFork, Child: 2},
		{Seq: 4, G: 2, Op: OpGoEnd},
	}
	for _, ev := range evs {
		if ev.String() == "" {
			t.Errorf("empty String for %v", ev.Op)
		}
	}
}

func TestRecorderReuseAndSnapshot(t *testing.T) {
	rec := &Recorder{}
	for i := 0; i < 6; i++ {
		rec.HandleEvent(Event{Seq: uint64(i + 1), Op: OpRead, Addr: Addr(i + 1)})
	}
	snap := rec.Snapshot()
	if len(snap.Events) != 6 {
		t.Fatalf("snapshot has %d events", len(snap.Events))
	}
	// The snapshot must own its storage: rewinding and refilling the
	// recorder cannot disturb it.
	rec.Reset()
	if len(rec.Events) != 0 {
		t.Fatalf("reset recorder holds %d events", len(rec.Events))
	}
	rec.HandleEvent(Event{Seq: 99, Op: OpWrite, Addr: 42})
	if snap.Events[0].Seq != 1 || snap.Events[0].Addr != 1 {
		t.Fatal("snapshot aliased the reused recorder")
	}
	if len(rec.Events) != 1 || rec.Events[0].Seq != 99 {
		t.Fatalf("recorder after reuse = %v", rec.Events)
	}
}
