package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"gorace/internal/stack"
	"gorace/internal/vclock"
)

// Decoder incrementally decodes a trace from a reader, auto-detecting
// the format the way Load does: a binary-codec magic header selects
// the binary decoder, anything else falls back to the legacy JSON
// Lines reader. Next returns events one at a time and io.EOF at a
// clean end of stream, so arbitrarily long traces — including live
// streams that have no end yet — replay without a full-file buffer.
// Decoder state (string table, per-goroutine prediction context,
// interned stacks) scales with the trace's distinct strings and call
// sites, not with its length.
type Decoder struct {
	bin *binDecoder
	jd  *json.Decoder
	// counted is set for binary traces whose header carries an exact
	// event count (Recorder.Save); streamed traces read until EOF.
	counted   bool
	count     uint64
	remaining uint64
	events    uint64
	err       error
}

// NewDecoder reads the trace header from r and returns a decoder
// positioned at the first event. The reader is buffered internally;
// the caller must not read from r afterwards.
func NewDecoder(r io.Reader) (*Decoder, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(codecMagic))
	if err != nil || !bytes.Equal(head, codecMagic[:]) {
		// Legacy JSON Lines (or empty input, which decodes to an empty
		// trace exactly as it always has).
		return &Decoder{jd: json.NewDecoder(br)}, nil
	}
	if _, err := br.Discard(len(codecMagic)); err != nil {
		return nil, fmt.Errorf("trace: binary header: %w", err)
	}
	d := newBinDecoder(br)
	version, err := d.uvarint()
	if err != nil {
		return nil, fmt.Errorf("trace: binary header: %w", err)
	}
	if version != codecVersion {
		return nil, fmt.Errorf("trace: unsupported binary trace version %d (want %d)", version, codecVersion)
	}
	count, err := d.uvarint()
	if err != nil {
		return nil, fmt.Errorf("trace: binary header: %w", err)
	}
	dec := &Decoder{bin: d}
	if count != codecStreamed {
		dec.counted = true
		dec.count = count
		dec.remaining = count
	}
	return dec, nil
}

// Count returns the event count from a counted binary header and true,
// or 0 and false for streamed binary and JSON traces whose length is
// unknown until EOF. The count is a size *hint* from the producer, not
// a promise — a hostile header can claim anything, so consumers must
// cap what they preallocate from it.
func (d *Decoder) Count() (uint64, bool) {
	return d.count, d.counted
}

// Decoded returns the number of events successfully decoded so far.
func (d *Decoder) Decoded() uint64 { return d.events }

// Next decodes and returns the next event. At a clean end of stream it
// returns io.EOF; any other error means the trace is truncated or
// corrupt. Errors are sticky.
func (d *Decoder) Next() (Event, error) {
	if d.err != nil {
		return Event{}, d.err
	}
	ev, err := d.next()
	if err != nil {
		d.err = err
		return Event{}, err
	}
	d.events++
	return ev, nil
}

func (d *Decoder) next() (Event, error) {
	if d.bin != nil {
		if d.counted {
			if d.remaining == 0 {
				return Event{}, io.EOF
			}
			ev, err := d.bin.event(false)
			if err != nil {
				return ev, fmt.Errorf("trace: decode binary event %d: %w", d.events, err)
			}
			d.remaining--
			return ev, nil
		}
		ev, err := d.bin.event(true)
		if err == io.EOF {
			return ev, io.EOF
		}
		if err != nil {
			return ev, fmt.Errorf("trace: decode binary event %d: %w", d.events, err)
		}
		return ev, nil
	}
	var we wireEvent
	if err := d.jd.Decode(&we); err != nil {
		if err == io.EOF {
			return Event{}, io.EOF
		}
		return Event{}, fmt.Errorf("trace: decode: %w", err)
	}
	return Event{
		Seq: we.Seq, G: vclock.TID(we.G), GName: we.GName, Op: Op(we.Op),
		Addr: Addr(we.Addr), Obj: ObjID(we.Obj), Kind: ObjKind(we.Kind),
		Child: vclock.TID(we.Child), Stack: stack.NewContext(we.Stack...),
		Label: we.Label,
	}, nil
}

// maxCountPrealloc caps how many events Load preallocates from a
// counted header: the count is attacker-controlled in a hostile trace,
// and must not translate directly into an allocation.
const maxCountPrealloc = 1 << 16
