// Package trace defines the event vocabulary shared by the modeled
// runtime (internal/sched) and the race detectors (internal/detector).
//
// The modeled runtime emits one Event per dynamic memory access or
// synchronization operation. Detectors are pure consumers of this event
// stream: FastTrack interprets Acquire/Release/Fork edges to maintain
// vector clocks, Eraser interprets Acquire/Release on lock-kind objects
// to maintain locksets, and both interpret Read/Write/Atomic* to update
// shadow memory. A Recorder can capture the stream for post-facto
// (offline) analysis, mirroring the paper's §3.3 deployment mode.
package trace

import (
	"fmt"

	"gorace/internal/stack"
	"gorace/internal/vclock"
)

// Addr identifies a modeled memory cell. Every instrumented variable,
// map key, map internal state, slice element, and slice header gets a
// distinct Addr from the scheduler's allocator.
type Addr uint64

// NoAddr is the zero Addr, used by events that do not touch memory.
const NoAddr Addr = 0

// ObjID identifies a synchronization object (mutex, channel slot,
// WaitGroup, atomic cell, ...).
type ObjID uint64

// NoObj is the zero ObjID.
const NoObj ObjID = 0

// StableBit marks addresses and object ids minted by the scheduler's
// stable identity mode (sched.G.StableIDs): 63-bit structural hashes
// rather than small dense allocation indices. Detectors that keep
// shadow state in dense slices test this bit and route such identities
// through a sparse side index instead of indexing directly.
const StableBit uint64 = 1 << 63

// IsStable reports whether the address came from stable identity mode.
func (a Addr) IsStable() bool { return uint64(a)&StableBit != 0 }

// IsStable reports whether the object id came from stable identity mode.
func (o ObjID) IsStable() bool { return uint64(o)&StableBit != 0 }

// ObjKind classifies synchronization objects so that detectors can
// treat them differently (e.g. the lockset algorithm only tracks
// mutexes and reader locks, not channel or WaitGroup edges).
type ObjKind uint8

const (
	KindNone     ObjKind = iota // no synchronization object
	KindMutex                   // sync.Mutex, and sync.RWMutex held in write mode
	KindRWRead                  // sync.RWMutex held in read mode (r-side release object)
	KindChan                    // channel rendezvous / buffer slot objects
	KindWG                      // WaitGroup completion edges
	KindAtomic                  // sync/atomic cells
	KindOnce                    // sync.Once completion edge
	KindInternal                // other runtime-internal edges (fork bookkeeping etc.)
)

// String names the kind for trace dumps and diagnostics.
func (k ObjKind) String() string {
	switch k {
	case KindMutex:
		return "mutex"
	case KindRWRead:
		return "rwread"
	case KindChan:
		return "chan"
	case KindWG:
		return "waitgroup"
	case KindAtomic:
		return "atomic"
	case KindOnce:
		return "once"
	case KindInternal:
		return "internal"
	default:
		return "none"
	}
}

// Op enumerates event kinds.
type Op uint8

const (
	// OpNone is the zero Op; no real event carries it.
	OpNone Op = iota

	OpRead        // plain memory read (carries Addr)
	OpWrite       // plain memory write (carries Addr)
	OpAtomicLoad  // sync/atomic load (carries Addr)
	OpAtomicStore // sync/atomic store (carries Addr)
	OpAtomicRMW   // sync/atomic read-modify-write (carries Addr)

	// Synchronization edges (carry Obj and Kind).
	OpAcquire // join the object's clock into the goroutine's clock
	OpRelease // join the goroutine's clock into the object's clock, then tick

	// Goroutine lifecycle.
	OpFork   // G spawned Child; child clock starts as copy of parent's
	OpGoEnd  // G finished
	OpGoLeak // G still blocked when the program ended (e.g. Listing 9 send)
)

// String names the operation for trace dumps and diagnostics.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpAtomicLoad:
		return "atomic-load"
	case OpAtomicStore:
		return "atomic-store"
	case OpAtomicRMW:
		return "atomic-rmw"
	case OpAcquire:
		return "acquire"
	case OpRelease:
		return "release"
	case OpFork:
		return "fork"
	case OpGoEnd:
		return "go-end"
	case OpGoLeak:
		return "go-leak"
	default:
		return "none"
	}
}

// IsAccess reports whether the op is a memory access (plain or atomic).
func (o Op) IsAccess() bool {
	switch o {
	case OpRead, OpWrite, OpAtomicLoad, OpAtomicStore, OpAtomicRMW:
		return true
	}
	return false
}

// IsAtomic reports whether the op is an atomic access.
func (o Op) IsAtomic() bool {
	switch o {
	case OpAtomicLoad, OpAtomicStore, OpAtomicRMW:
		return true
	}
	return false
}

// IsWrite reports whether the op writes memory.
func (o Op) IsWrite() bool {
	return o == OpWrite || o == OpAtomicStore || o == OpAtomicRMW
}

// Event is one dynamic operation observed by the runtime.
type Event struct {
	Seq   uint64        // global sequence number (scheduler step)
	G     vclock.TID    // acting goroutine
	GName string        // acting goroutine's diagnostic name
	Op    Op            //
	Addr  Addr          // memory cell, for access ops
	Obj   ObjID         // sync object, for acquire/release
	Kind  ObjKind       // classification of Obj
	Child vclock.TID    // for OpFork
	Stack stack.Context // calling context at the operation
	Label string        // human-readable site label ("errMap[uuid] = err")
}

// String renders the event on one line for trace dumps.
func (e Event) String() string {
	switch {
	case e.Op.IsAccess():
		return fmt.Sprintf("#%d g%d %s a%d %s", e.Seq, e.G, e.Op, e.Addr, e.Stack.Leaf())
	case e.Op == OpAcquire || e.Op == OpRelease:
		return fmt.Sprintf("#%d g%d %s %s o%d", e.Seq, e.G, e.Op, e.Kind, e.Obj)
	case e.Op == OpFork:
		return fmt.Sprintf("#%d g%d fork g%d", e.Seq, e.G, e.Child)
	default:
		return fmt.Sprintf("#%d g%d %s", e.Seq, e.G, e.Op)
	}
}

// Listener consumes events online, in program order.
type Listener interface {
	HandleEvent(ev Event)
}

// ListenerFunc adapts a function to the Listener interface.
type ListenerFunc func(Event)

// HandleEvent implements Listener.
func (f ListenerFunc) HandleEvent(ev Event) { f(ev) }

// Recorder is a Listener that captures the event stream for offline
// (post-facto) analysis or replay into another detector.
type Recorder struct {
	Events []Event
}

// HandleEvent implements Listener.
func (r *Recorder) HandleEvent(ev Event) { r.Events = append(r.Events, ev) }

// Reset truncates the recording in place, retaining capacity, so one
// recorder can capture many runs without reallocating its buffer —
// core.Runner records each batch run into a per-worker recycled
// Recorder, so a 1000-seed sweep reuses a single recording buffer
// instead of growing a thousand. Slices of Events handed out earlier
// are invalidated.
func (r *Recorder) Reset() { r.Events = r.Events[:0] }

// Snapshot copies the recording into a fresh, exactly-sized Recorder
// the caller owns — the one allocation a recorded, recycled run
// performs for its trace.
func (r *Recorder) Snapshot() *Recorder {
	out := &Recorder{Events: make([]Event, len(r.Events))}
	copy(out.Events, r.Events)
	return out
}

// Replay feeds the recorded stream to another listener in order.
func (r *Recorder) Replay(l Listener) {
	for _, ev := range r.Events {
		l.HandleEvent(ev)
	}
}

// CountOps tallies the recorded events by Op, mainly for tests and
// workload characterization.
func (r *Recorder) CountOps() map[Op]int {
	m := make(map[Op]int)
	for _, ev := range r.Events {
		m[ev.Op]++
	}
	return m
}

// Multi fans one event stream out to several listeners.
type Multi []Listener

// HandleEvent implements Listener.
func (m Multi) HandleEvent(ev Event) {
	for _, l := range m {
		l.HandleEvent(ev)
	}
}
