package patterns

import (
	"gorace/internal/sched"
	"gorace/internal/taxonomy"
)

// Idiom corpus: the concurrency idioms internal/racegen's generator
// explores, distilled into hand-written corpus entries. Each one is a
// shape the campaign loop surfaced as detector-discriminating — flag
// publication that Eraser is blind to, context-cancellation reasons
// read outside the Done edge, errgroup results written after Done,
// pooled objects mutated after being returned, and check-then-insert
// on a shared map.

func init() {
	register(Pattern{
		ID:          "atomic-flag-publication",
		Listing:     0,
		Cat:         taxonomy.CatPartialAtomics,
		Secondary:   []taxonomy.Category{taxonomy.CatMissingLock},
		Description: "Payload published via an atomic ready flag that the reader polls with a plain load (§4.9.2)",
		Racy:        flagPublicationRacy,
		Fixed:       flagPublicationFixed,
	})
	register(Pattern{
		ID:          "ctx-cancel-reason",
		Listing:     0,
		Cat:         taxonomy.CatMixedChanShared,
		Secondary:   []taxonomy.Category{taxonomy.CatAPIContract},
		Description: "Cancellation reason read in a select default arm, unordered with the canceller's write (§4.6)",
		Racy:        ctxCancelReasonRacy,
		Fixed:       ctxCancelReasonFixed,
	})
	register(Pattern{
		ID:          "errgroup-late-error",
		Listing:     0,
		Cat:         taxonomy.CatGroupSync,
		Secondary:   []taxonomy.Category{taxonomy.CatCaptureErr},
		Description: "Worker records its error after wg.Done, racing the post-Wait read in the parent (§4.7)",
		Racy:        errgroupLateErrorRacy,
		Fixed:       errgroupLateErrorFixed,
	})
	register(Pattern{
		ID:          "pool-put-then-write",
		Listing:     0,
		Cat:         taxonomy.CatAPIContract,
		Secondary:   []taxonomy.Category{taxonomy.CatMixedChanShared},
		Description: "Object mutated after being returned to a pool, racing its next borrower (§4.8)",
		Racy:        poolPutThenWriteRacy,
		Fixed:       poolPutThenWriteFixed,
	})
	register(Pattern{
		ID:          "map-check-then-insert",
		Listing:     0,
		Cat:         taxonomy.CatMap,
		Secondary:   []taxonomy.Category{taxonomy.CatMissingLock},
		Description: "Unlocked check-then-insert on a shared map from concurrent registrars (§4.4)",
		Racy:        mapCheckInsertRacy,
		Fixed:       mapCheckInsertFixed,
	})
}

// flagPublicationRacy: the writer stores the payload and then flips an
// atomic ready flag, but the reader polls the flag with a plain load —
// the flag itself races (atomic store vs plain load), and the payload
// read has no happens-before edge even when the flag is observed set.
// Eraser, being atomic-blind, sees nothing here; FastTrack and DJIT
// report both cells — racegen's canonical discriminator.
func flagPublicationRacy(g *sched.G) {
	g.Call("publish", "flagpub.go", 1, func() {
		payload := sched.NewVar[string](g, "payload")
		ready := sched.NewAtomic(g, "ready")
		wg := sched.NewWaitGroup(g, "wg")
		wg.Add(g, 1)
		g.Go("publish.func1", func(g *sched.G) {
			g.Call("publish.func1", "flagpub.go", 5, func() {
				payload.Store(g, "v1")
				ready.Store(g, 1)
			})
			wg.Done(g)
		})
		g.Line(10)
		if ready.PlainLoad(g) == 1 { // plain read of the atomic flag
			payload.Load(g) // unordered even when the flag reads 1
		}
		wg.Wait(g)
	})
}

// flagPublicationFixed publishes over a channel: the flag stays fully
// atomic on both sides and the payload read is ordered by the handoff.
func flagPublicationFixed(g *sched.G) {
	g.Call("publish", "flagpub.go", 1, func() {
		payload := sched.NewVar[string](g, "payload")
		ready := sched.NewAtomic(g, "ready")
		published := sched.NewChan[int](g, "published", 1)
		g.Go("publish.func1", func(g *sched.G) {
			g.Call("publish.func1", "flagpub.go", 5, func() {
				payload.Store(g, "v1")
				ready.Store(g, 1)
				published.Send(g, 1)
			})
		})
		g.Line(10)
		published.Recv(g)
		if ready.Load(g) == 1 { // atomic on both sides
			payload.Load(g) // ordered by the channel handoff
		}
	})
}

// ctxCancelReasonRacy: the canceller records why it is cancelling and
// then cancels; the watcher's select has a default arm that reads the
// reason without having observed Done — unordered with the write.
func ctxCancelReasonRacy(g *sched.G) {
	g.Call("watch", "ctxreason.go", 1, func() {
		reason := sched.NewVar[string](g, "cancelReason")
		ctx, cancel := sched.Background(g).WithCancel(g, "req")
		wg := sched.NewWaitGroup(g, "wg")
		wg.Add(g, 1)
		g.Go("watch.canceller", func(g *sched.G) {
			g.Call("watch.canceller", "ctxreason.go", 6, func() {
				reason.Store(g, "shutting down")
				cancel(g)
			})
			wg.Done(g)
		})
		g.Line(12)
		g.Select(
			ctx.OnDone(nil),
			sched.Default(func() {
				reason.Load(g) // reads the reason before cancellation is visible
			}),
		)
		wg.Wait(g)
	})
}

// ctxCancelReasonFixed reads the reason only inside the Done arm: the
// cancel closes Done, the receive acquires it, and the read is ordered
// after the canceller's write.
func ctxCancelReasonFixed(g *sched.G) {
	g.Call("watch", "ctxreason.go", 1, func() {
		reason := sched.NewVar[string](g, "cancelReason")
		ctx, cancel := sched.Background(g).WithCancel(g, "req")
		wg := sched.NewWaitGroup(g, "wg")
		wg.Add(g, 1)
		g.Go("watch.canceller", func(g *sched.G) {
			g.Call("watch.canceller", "ctxreason.go", 6, func() {
				reason.Store(g, "shutting down")
				cancel(g)
			})
			wg.Done(g)
		})
		g.Line(12)
		g.Select(ctx.OnDone(func() {
			reason.Load(g) // ordered: Store happens-before Close happens-before Recv
		}))
		wg.Wait(g)
	})
}

// errgroupLateErrorRacy: the worker signals completion first and only
// then records its error (a deferred-cleanup ordering slip), so the
// parent's post-Wait read of err is unordered with the late write.
func errgroupLateErrorRacy(g *sched.G) {
	g.Call("fanOut", "lateerr.go", 1, func() {
		errV := sched.NewVar[string](g, "err")
		wg := sched.NewWaitGroup(g, "wg")
		wg.Add(g, 1)
		g.Go("fanOut.func1", func(g *sched.G) {
			g.Call("fanOut.func1", "lateerr.go", 5, func() {
				wg.Done(g)               // signals completion first...
				errV.Store(g, "timeout") // ...then records the error
			})
		})
		g.Line(10)
		wg.Wait(g)
		errV.Load(g)
	})
}

func errgroupLateErrorFixed(g *sched.G) {
	g.Call("fanOut", "lateerr.go", 1, func() {
		errV := sched.NewVar[string](g, "err")
		wg := sched.NewWaitGroup(g, "wg")
		wg.Add(g, 1)
		g.Go("fanOut.func1", func(g *sched.G) {
			g.Call("fanOut.func1", "lateerr.go", 5, func() {
				errV.Store(g, "timeout") // record the error first
				wg.Done(g)               // then signal completion
			})
		})
		g.Line(10)
		wg.Wait(g)
		errV.Load(g)
	})
}

// poolPutThenWriteRacy: the worker returns the object to the pool and
// then keeps writing through its stale reference. The next borrower's
// read is ordered after the pre-put write (the pool channel carries the
// edge) but not after the post-put one.
func poolPutThenWriteRacy(g *sched.G) {
	g.Call("recycle", "pool.go", 1, func() {
		objField := sched.NewVar[int](g, "api.pool.obj.field")
		pool := sched.NewChan[int](g, "api.pool", 1)
		g.Go("recycle.func1", func(g *sched.G) {
			g.Call("recycle.func1", "pool.go", 4, func() {
				objField.Store(g, 1)
				pool.Send(g, 1)      // return the object to the pool
				objField.Store(g, 2) // ...then write through the stale reference
			})
		})
		g.Line(10)
		pool.Recv(g) // borrow it back
		objField.Load(g)
	})
}

func poolPutThenWriteFixed(g *sched.G) {
	g.Call("recycle", "pool.go", 1, func() {
		objField := sched.NewVar[int](g, "api.pool.obj.field")
		pool := sched.NewChan[int](g, "api.pool", 1)
		g.Go("recycle.func1", func(g *sched.G) {
			g.Call("recycle.func1", "pool.go", 4, func() {
				objField.Store(g, 1)
				objField.Store(g, 2) // finish every write...
				pool.Send(g, 1)      // ...before giving the object up
			})
		})
		g.Line(10)
		pool.Recv(g)
		objField.Load(g)
	})
}

// mapCheckInsertRacy: two registrars race an unlocked check-then-insert
// on the same key — both the per-key cell and the map's internal state
// conflict.
func mapCheckInsertRacy(g *sched.G) {
	g.Call("register", "checkinsert.go", 1, func() {
		seen := sched.NewMap[string, int](g, "seen")
		wg := sched.NewWaitGroup(g, "wg")
		for i := 0; i < 2; i++ {
			wg.Add(g, 1)
			g.Go("register.func1", func(g *sched.G) {
				g.Call("register.func1", "checkinsert.go", 5, func() {
					if _, ok := seen.Get(g, "id"); !ok {
						seen.Put(g, "id", 1)
					}
				})
				wg.Done(g)
			})
		}
		wg.Wait(g)
	})
}

func mapCheckInsertFixed(g *sched.G) {
	g.Call("register", "checkinsert.go", 1, func() {
		seen := sched.NewMap[string, int](g, "seen")
		mu := sched.NewMutex(g, "seenMu")
		wg := sched.NewWaitGroup(g, "wg")
		for i := 0; i < 2; i++ {
			wg.Add(g, 1)
			g.Go("register.func1", func(g *sched.G) {
				g.Call("register.func1", "checkinsert.go", 5, func() {
					mu.Lock(g)
					if _, ok := seen.Get(g, "id"); !ok {
						seen.Put(g, "id", 1)
					}
					mu.Unlock(g)
				})
				wg.Done(g)
			})
		}
		wg.Wait(g)
	})
}
