package patterns

import (
	"gorace/internal/sched"
	"gorace/internal/taxonomy"
)

// The last three rows of Table 3 are fix *strategies* rather than root
// causes: races that were "not root caused but instead addressed by
// refactoring the code". Their Racy variants are ordinary races; the
// Fixed variants model the respective escape hatch.

func init() {
	register(Pattern{
		ID:          "fix-removed-concurrency",
		Listing:     0,
		Cat:         taxonomy.CatFixRemovedConc,
		Secondary:   []taxonomy.Category{taxonomy.CatMissingLock},
		Description: "Race fixed conservatively by eliminating the concurrency altogether",
		Racy:        removedConcRacy,
		Fixed:       removedConcFixed,
	})
	register(Pattern{
		ID:          "fix-disabled-test",
		Listing:     0,
		Cat:         taxonomy.CatFixDisabledTest,
		Secondary:   []taxonomy.Category{taxonomy.CatParallelTest},
		Description: "Race 'fixed' by disabling the test that exposed it",
		Racy:        disabledTestRacy,
		Fixed:       disabledTestFixed,
	})
	register(Pattern{
		ID:          "fix-major-refactor",
		Listing:     0,
		Cat:         taxonomy.CatFixRefactor,
		Secondary:   []taxonomy.Category{taxonomy.CatMixedChanShared},
		Description: "Race fixed by redesigning the component around a single owner goroutine",
		Racy:        refactorRacy,
		Fixed:       refactorFixed,
	})
}

// removedConcRacy: parallel enrichment of items over a shared cursor.
func removedConcRacy(g *sched.G) {
	g.Call("enrichAll", "enrich.go", 1, func() {
		cursor := sched.NewVar[int](g, "cursor")
		for i := 0; i < 2; i++ {
			g.Go("enrichAll.func1", func(g *sched.G) {
				g.Call("enrichAll.func1", "enrich.go", 5, func() {
					cursor.Update(g, func(x int) int { return x + 1 })
				})
			})
		}
	})
}

// removedConcFixed runs the same work sequentially — the conservative
// "suspicious code region" fix the paper's introduction mentions.
func removedConcFixed(g *sched.G) {
	g.Call("enrichAll", "enrich.go", 1, func() {
		cursor := sched.NewVar[int](g, "cursor")
		for i := 0; i < 2; i++ {
			g.Call("enrichAll.step", "enrich.go", 5, func() {
				cursor.Update(g, func(x int) int { return x + 1 })
			})
		}
	})
}

// disabledTestRacy: a parallel test tripping over shared product state.
func disabledTestRacy(g *sched.G) {
	g.Call("TestFlaky", "flaky_test.go", 1, func() {
		sharedState := sched.NewVar[int](g, "server.state")
		for i := 0; i < 2; i++ {
			i := i
			g.Go("TestFlaky/sub", func(g *sched.G) {
				g.Call("TestFlaky.func1", "flaky_test.go", 6, func() {
					sharedState.Store(g, i)
				})
			})
		}
	})
}

// disabledTestFixed models t.Skip(): the racy body never runs.
func disabledTestFixed(g *sched.G) {
	g.Call("TestFlaky", "flaky_test.go", 1, func() {
		// t.Skip("disabled: flaky under -race") — nothing executes.
	})
}

// refactorRacy: two owners mutate connection state guarded by
// half-shared conventions.
func refactorRacy(g *sched.G) {
	g.Call("connManager", "conn.go", 1, func() {
		connState := sched.NewVar[string](g, "conn.state")
		g.Go("reader", func(g *sched.G) {
			g.Call("readLoop", "conn.go", 8, func() {
				connState.Store(g, "reading")
			})
		})
		g.Go("writer", func(g *sched.G) {
			g.Call("writeLoop", "conn.go", 20, func() {
				connState.Store(g, "writing")
			})
		})
	})
}

// refactorFixed redesigns around a single owner goroutine fed by
// channels — "changing the code/logic in a significant way".
func refactorFixed(g *sched.G) {
	g.Call("connManager", "conn.go", 1, func() {
		connState := sched.NewVar[string](g, "conn.state")
		requests := sched.NewChan[string](g, "requests", 2)
		done := sched.NewChan[int](g, "ownerDone", 0)
		g.Go("owner", func(g *sched.G) {
			g.Call("ownerLoop", "conn.go", 30, func() {
				for {
					msg, ok := requests.Recv(g)
					if !ok {
						break
					}
					connState.Store(g, msg) // single writer
				}
				done.Send(g, 1)
			})
		})
		wg := sched.NewWaitGroup(g, "wg")
		wg.Add(g, 2)
		g.Go("reader", func(g *sched.G) {
			g.Call("readLoop", "conn.go", 8, func() {
				requests.Send(g, "reading")
			})
			wg.Done(g)
		})
		g.Go("writer", func(g *sched.G) {
			g.Call("writeLoop", "conn.go", 20, func() {
				requests.Send(g, "writing")
			})
			wg.Done(g)
		})
		wg.Wait(g)
		requests.Close(g)
		done.Recv(g)
	})
}
