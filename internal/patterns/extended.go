package patterns

import (
	"gorace/internal/sched"
	"gorace/internal/taxonomy"
)

// Extended corpus: variations the paper describes in prose — "more
// complex concurrent map access data races ... resulting from the same
// hash table being passed to deep call paths" (§4.4), loop capture
// "happens for value and reference types; slices, array, and maps"
// (§4.2.1), and the §4.9 locking-mistake family.

func init() {
	register(Pattern{
		ID:          "map-deep-call-path",
		Listing:     0,
		Cat:         taxonomy.CatMap,
		Description: "Shared map passed down a deep call path and mutated by an async goroutine (§4.4)",
		Racy:        mapDeepCallRacy,
		Fixed:       mapDeepCallFixed,
	})
	register(Pattern{
		ID:          "capture-map-range",
		Listing:     0,
		Cat:         taxonomy.CatCaptureLoop,
		Secondary:   []taxonomy.Category{taxonomy.CatMap},
		Description: "Map range variables captured by reference in per-entry goroutines (§4.2.1)",
		Racy:        mapRangeCaptureRacy,
		Fixed:       mapRangeCaptureFixed,
	})
	register(Pattern{
		ID:          "slice-range-append",
		Listing:     0,
		Cat:         taxonomy.CatSlice,
		Description: "Range iteration over a slice concurrent with appends to it",
		Racy:        sliceRangeAppendRacy,
		Fixed:       sliceRangeAppendFixed,
	})
	register(Pattern{
		ID:          "double-checked-locking",
		Listing:     0,
		Cat:         taxonomy.CatMissingLock,
		Description: "Double-checked locking: the unlocked fast-path check races with the locked write",
		Racy:        doubleCheckedRacy,
		Fixed:       doubleCheckedFixed,
	})
	register(Pattern{
		ID:          "lazy-init",
		Listing:     0,
		Cat:         taxonomy.CatMissingLock,
		Description: "Unsynchronized lazy initialization of a shared singleton",
		Racy:        lazyInitRacy,
		Fixed:       lazyInitFixed,
	})
	register(Pattern{
		ID:          "chan-pointer-payload",
		Listing:     0,
		Cat:         taxonomy.CatMixedChanShared,
		Description: "Pointer sent over a channel while the sender keeps mutating the pointee",
		Racy:        chanPointerRacy,
		Fixed:       chanPointerFixed,
	})
	register(Pattern{
		ID:          "rwmutex-upgrade-gap",
		Listing:     0,
		Cat:         taxonomy.CatMissingLock,
		Description: "Write after RUnlock without taking the write lock (bad lock upgrade)",
		Racy:        rwUpgradeGapRacy,
		Fixed:       rwUpgradeGapFixed,
	})
	register(Pattern{
		ID:          "cond-unlocked-producer",
		Listing:     0,
		Cat:         taxonomy.CatMissingLock,
		Description: "Condition-variable queue whose producer mutates state outside the lock",
		Racy:        condProducerRacy,
		Fixed:       condProducerFixed,
	})
	register(Pattern{
		ID:          "atomic-rmw-mix",
		Listing:     0,
		Cat:         taxonomy.CatPartialAtomics,
		Description: "atomic.Add on the write side, plain read on the reporting side (§4.9.2)",
		Racy:        atomicRMWMixRacy,
		Fixed:       atomicRMWMixFixed,
	})
}

// mapDeepCallRacy threads the map through three call levels before the
// mutation, so neither the caller nor the report's reader sees the
// sharing at a glance.
func mapDeepCallRacy(g *sched.G) {
	g.Call("handleSync", "deepmap.go", 1, func() {
		index := sched.NewMap[string, int](g, "index")
		update := func(g *sched.G, key string) {
			g.Call("refreshEntry", "deepmap.go", 20, func() {
				g.Call("storeEntry", "deepmap.go", 31, func() {
					index.Put(g, key, 1)
				})
			})
		}
		g.Go("handleSync.func1", func(g *sched.G) {
			g.Call("handleSync.func1", "deepmap.go", 6, func() {
				update(g, "alpha")
			})
		})
		g.Line(9)
		update(g, "beta")
	})
}

func mapDeepCallFixed(g *sched.G) {
	g.Call("handleSync", "deepmap.go", 1, func() {
		index := sched.NewMap[string, int](g, "index")
		mu := sched.NewMutex(g, "indexMu")
		update := func(g *sched.G, key string) {
			g.Call("refreshEntry", "deepmap.go", 20, func() {
				g.Call("storeEntry", "deepmap.go", 31, func() {
					mu.Lock(g)
					index.Put(g, key, 1)
					mu.Unlock(g)
				})
			})
		}
		wg := sched.NewWaitGroup(g, "wg")
		wg.Add(g, 1)
		g.Go("handleSync.func1", func(g *sched.G) {
			g.Call("handleSync.func1", "deepmap.go", 6, func() {
				update(g, "alpha")
			})
			wg.Done(g)
		})
		g.Line(9)
		update(g, "beta")
		wg.Wait(g)
	})
}

// mapRangeCaptureRacy: both the key and value range variables are
// shared with the goroutines, as in Listing 1 but over a map.
func mapRangeCaptureRacy(g *sched.G) {
	g.Call("notifyAll", "maprange.go", 1, func() {
		k := sched.NewVar[string](g, "k(range)")
		entries := []string{"a", "b", "c"} // deterministic stand-in for map order
		for _, key := range entries {
			g.Line(3)
			k.Store(g, key)
			g.Go("notifyAll.func1", func(g *sched.G) {
				g.Call("notifyAll.func1", "maprange.go", 5, func() {
					k.Load(g)
				})
			})
		}
	})
}

func mapRangeCaptureFixed(g *sched.G) {
	g.Call("notifyAll", "maprange.go", 1, func() {
		entries := []string{"a", "b", "c"}
		for _, key := range entries {
			g.Line(3)
			priv := sched.NewVarOf(g, "k(private)", key)
			g.Go("notifyAll.func1", func(g *sched.G) {
				g.Call("notifyAll.func1", "maprange.go", 5, func() {
					priv.Load(g)
				})
			})
		}
	})
}

// sliceRangeAppendRacy: a reader iterates (header reads + element
// reads) while a writer appends (header writes).
func sliceRangeAppendRacy(g *sched.G) {
	g.Call("auditLog", "rangeappend.go", 1, func() {
		log := sched.NewSlice[int](g, "log", 2)
		g.Go("auditLog.func1", func(g *sched.G) {
			g.Call("auditLog.func1", "rangeappend.go", 4, func() {
				log.Append(g, 3)
			})
		})
		g.Line(8)
		for i := 0; i < log.Len(g); i++ {
			log.Get(g, i)
		}
	})
}

func sliceRangeAppendFixed(g *sched.G) {
	g.Call("auditLog", "rangeappend.go", 1, func() {
		log := sched.NewSlice[int](g, "log", 2)
		mu := sched.NewRWMutex(g, "logMu")
		done := sched.NewChan[int](g, "done", 1)
		g.Go("auditLog.func1", func(g *sched.G) {
			g.Call("auditLog.func1", "rangeappend.go", 4, func() {
				mu.Lock(g)
				log.Append(g, 3)
				mu.Unlock(g)
				done.Send(g, 1)
			})
		})
		g.Line(8)
		mu.RLock(g)
		for i := 0; i < log.Len(g); i++ {
			log.Get(g, i)
		}
		mu.RUnlock(g)
		done.Recv(g)
	})
}

// doubleCheckedRacy: the classic broken idiom — an unlocked fast-path
// read of the flag races with the locked initialization write.
func doubleCheckedRacy(g *sched.G) {
	g.Call("getConfig", "dcl.go", 1, func() {
		initialized := sched.NewVar[bool](g, "initialized")
		mu := sched.NewMutex(g, "initMu")
		wg := sched.NewWaitGroup(g, "wg")
		for i := 0; i < 2; i++ {
			wg.Add(g, 1)
			g.Go("getConfig.func1", func(g *sched.G) {
				g.Call("getConfig.func1", "dcl.go", 5, func() {
					if !initialized.Load(g) { // unlocked fast path
						mu.Lock(g)
						if !initialized.Load(g) {
							initialized.Store(g, true)
						}
						mu.Unlock(g)
					}
				})
				wg.Done(g)
			})
		}
		wg.Wait(g)
	})
}

// doubleCheckedFixed uses sync.Once, the idiomatic repair.
func doubleCheckedFixed(g *sched.G) {
	g.Call("getConfig", "dcl.go", 1, func() {
		initialized := sched.NewVar[bool](g, "initialized")
		once := sched.NewOnce(g, "initOnce")
		wg := sched.NewWaitGroup(g, "wg")
		for i := 0; i < 2; i++ {
			wg.Add(g, 1)
			g.Go("getConfig.func1", func(g *sched.G) {
				g.Call("getConfig.func1", "dcl.go", 5, func() {
					once.Do(g, func() {
						initialized.Store(g, true)
					})
					initialized.Load(g)
				})
				wg.Done(g)
			})
		}
		wg.Wait(g)
	})
}

// lazyInitRacy: two goroutines race to populate a shared singleton.
func lazyInitRacy(g *sched.G) {
	g.Call("getInstance", "lazy.go", 1, func() {
		instance := sched.NewVar[int](g, "instance")
		wg := sched.NewWaitGroup(g, "wg")
		for i := 0; i < 2; i++ {
			wg.Add(g, 1)
			g.Go("getInstance.worker", func(g *sched.G) {
				g.Call("getInstance.worker", "lazy.go", 5, func() {
					if instance.Load(g) == 0 {
						instance.Store(g, 42)
					}
				})
				wg.Done(g)
			})
		}
		wg.Wait(g)
	})
}

func lazyInitFixed(g *sched.G) {
	g.Call("getInstance", "lazy.go", 1, func() {
		instance := sched.NewVar[int](g, "instance")
		once := sched.NewOnce(g, "instanceOnce")
		wg := sched.NewWaitGroup(g, "wg")
		for i := 0; i < 2; i++ {
			wg.Add(g, 1)
			g.Go("getInstance.worker", func(g *sched.G) {
				g.Call("getInstance.worker", "lazy.go", 5, func() {
					once.Do(g, func() { instance.Store(g, 42) })
					instance.Load(g)
				})
				wg.Done(g)
			})
		}
		wg.Wait(g)
	})
}

// chanPointerRacy: the channel synchronizes the *handoff*, but the
// sender keeps mutating the pointee after the send — message passing
// in form, shared memory in substance.
func chanPointerRacy(g *sched.G) {
	g.Call("submit", "chanptr.go", 1, func() {
		reqField := sched.NewVar[string](g, "req.field")
		ch := sched.NewChan[int](g, "ch", 1)
		g.Go("submit.func1", func(g *sched.G) {
			g.Call("submit.func1", "chanptr.go", 4, func() {
				ch.Send(g, 1)              // hand the pointer over
				reqField.Store(g, "oops!") // ...then keep writing through it
			})
		})
		g.Line(9)
		ch.Recv(g)
		reqField.Load(g) // races with the post-send write
	})
}

func chanPointerFixed(g *sched.G) {
	g.Call("submit", "chanptr.go", 1, func() {
		reqField := sched.NewVar[string](g, "req.field")
		ch := sched.NewChan[int](g, "ch", 1)
		g.Go("submit.func1", func(g *sched.G) {
			g.Call("submit.func1", "chanptr.go", 4, func() {
				reqField.Store(g, "final") // finish all writes first
				ch.Send(g, 1)              // transfer ownership last
			})
		})
		g.Line(9)
		ch.Recv(g)
		reqField.Load(g)
	})
}

// rwUpgradeGapRacy: read under RLock, drop it, then write without
// taking the write lock — a botched lock upgrade.
func rwUpgradeGapRacy(g *sched.G) {
	g.Call("rebalance", "upgrade.go", 1, func() {
		shards := sched.NewVar[int](g, "shards")
		mu := sched.NewRWMutex(g, "shardMu")
		wg := sched.NewWaitGroup(g, "wg")
		for i := 0; i < 2; i++ {
			wg.Add(g, 1)
			g.Go("rebalance.func1", func(g *sched.G) {
				g.Call("rebalance.func1", "upgrade.go", 5, func() {
					mu.RLock(g)
					n := shards.Load(g)
					mu.RUnlock(g)
					shards.Store(g, n+1) // forgot mu.Lock for the upgrade
				})
				wg.Done(g)
			})
		}
		wg.Wait(g)
	})
}

func rwUpgradeGapFixed(g *sched.G) {
	g.Call("rebalance", "upgrade.go", 1, func() {
		shards := sched.NewVar[int](g, "shards")
		mu := sched.NewRWMutex(g, "shardMu")
		wg := sched.NewWaitGroup(g, "wg")
		for i := 0; i < 2; i++ {
			wg.Add(g, 1)
			g.Go("rebalance.func1", func(g *sched.G) {
				g.Call("rebalance.func1", "upgrade.go", 5, func() {
					mu.Lock(g) // take the write lock for the full RMW
					n := shards.Load(g)
					shards.Store(g, n+1)
					mu.Unlock(g)
				})
				wg.Done(g)
			})
		}
		wg.Wait(g)
	})
}

// condProducerRacy: the consumer is disciplined (checks the queue
// under the lock, waits on the cond), but the producer bumps the queue
// without the lock.
func condProducerRacy(g *sched.G) {
	g.Call("dispatch", "condq.go", 1, func() {
		queued := sched.NewVar[int](g, "queued")
		mu := sched.NewMutex(g, "qMu")
		cond := sched.NewCond(g, "qCond", mu)
		wg := sched.NewWaitGroup(g, "wg")
		wg.Add(g, 1)
		g.Go("consumer", func(g *sched.G) {
			g.Call("consumeLoop", "condq.go", 6, func() {
				mu.Lock(g)
				for queued.Load(g) == 0 {
					cond.Wait(g)
				}
				queued.Store(g, queued.Load(g)-1)
				mu.Unlock(g)
			})
			wg.Done(g)
		})
		g.Line(16)
		queued.Store(g, 1) // producer forgot the lock
		cond.Signal(g)
		wg.Wait(g)
	})
}

func condProducerFixed(g *sched.G) {
	g.Call("dispatch", "condq.go", 1, func() {
		queued := sched.NewVar[int](g, "queued")
		mu := sched.NewMutex(g, "qMu")
		cond := sched.NewCond(g, "qCond", mu)
		wg := sched.NewWaitGroup(g, "wg")
		wg.Add(g, 1)
		g.Go("consumer", func(g *sched.G) {
			g.Call("consumeLoop", "condq.go", 6, func() {
				mu.Lock(g)
				for queued.Load(g) == 0 {
					cond.Wait(g)
				}
				queued.Store(g, queued.Load(g)-1)
				mu.Unlock(g)
			})
			wg.Done(g)
		})
		g.Line(16)
		mu.Lock(g)
		queued.Store(g, 1)
		mu.Unlock(g)
		cond.Signal(g)
		wg.Wait(g)
	})
}

// atomicRMWMixRacy: counters bumped with atomic.Add but read plainly.
func atomicRMWMixRacy(g *sched.G) {
	g.Call("trackRequests", "rmwmix.go", 1, func() {
		inflight := sched.NewAtomic(g, "inflight")
		wg := sched.NewWaitGroup(g, "wg")
		wg.Add(g, 1)
		g.Go("trackRequests.func1", func(g *sched.G) {
			g.Call("trackRequests.func1", "rmwmix.go", 4, func() {
				inflight.Add(g, 1)
			})
			wg.Done(g)
		})
		g.Line(8)
		inflight.PlainLoad(g) // plain read of an atomically-updated cell
		wg.Wait(g)
	})
}

func atomicRMWMixFixed(g *sched.G) {
	g.Call("trackRequests", "rmwmix.go", 1, func() {
		inflight := sched.NewAtomic(g, "inflight")
		wg := sched.NewWaitGroup(g, "wg")
		wg.Add(g, 1)
		g.Go("trackRequests.func1", func(g *sched.G) {
			g.Call("trackRequests.func1", "rmwmix.go", 4, func() {
				inflight.Add(g, 1)
			})
			wg.Done(g)
		})
		g.Line(8)
		inflight.Load(g)
		wg.Wait(g)
	})
}
