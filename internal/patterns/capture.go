package patterns

import (
	"gorace/internal/sched"
	"gorace/internal/taxonomy"
)

// Observation 3: transparent capture-by-reference of free variables in
// goroutines is a recipe for data races.

func init() {
	register(Pattern{
		ID:          "capture-loop-index",
		Listing:     1,
		Cat:         taxonomy.CatCaptureLoop,
		Description: "Loop index variable captured by reference in a per-item goroutine (Listing 1)",
		Racy:        loopIndexRacy,
		Fixed:       loopIndexFixed,
	})
	register(Pattern{
		ID:          "capture-err",
		Listing:     2,
		Cat:         taxonomy.CatCaptureErr,
		Description: "Idiomatic err variable reused across calls and captured in a goroutine (Listing 2)",
		Racy:        errCaptureRacy,
		Fixed:       errCaptureFixed,
	})
	register(Pattern{
		ID:          "capture-named-return",
		Listing:     3,
		Cat:         taxonomy.CatCaptureNamedReturn,
		Description: "Named return variable read in a goroutine while `return 20` writes it (Listing 3)",
		Racy:        namedReturnRacy,
		Fixed:       namedReturnFixed,
	})
	register(Pattern{
		ID:          "capture-named-return-defer",
		Listing:     4,
		Cat:         taxonomy.CatCaptureNamedReturn,
		Secondary:   []taxonomy.Category{taxonomy.CatCaptureErr},
		Description: "Deferred function writes a named return while a goroutine reads it (Listing 4)",
		Racy:        deferNamedReturnRacy,
		Fixed:       deferNamedReturnFixed,
	})
	register(Pattern{
		ID:          "capture-local",
		Listing:     0,
		Cat:         taxonomy.CatCaptureOther,
		Description: "Local accumulator captured by reference in an async closure",
		Racy:        localCaptureRacy,
		Fixed:       localCaptureFixed,
	})
}

// loopIndexRacy models Listing 1: `for _, job := range jobs { go func()
// { ProcessJob(job) }() }`. The goroutines read the range variable
// while the loop keeps writing it.
func loopIndexRacy(g *sched.G) {
	g.Call("processJobs", "listing1.go", 1, func() {
		job := sched.NewVar[int](g, "job(range)")
		jobs := []int{10, 20, 30}
		for _, j := range jobs {
			g.Line(1)
			job.Store(g, j) // the range clause advances the shared variable
			g.Go("processJobs.func1", func(g *sched.G) {
				g.Call("processJobs.func1", "listing1.go", 3, func() {
					g.Call("ProcessJob", "listing1.go", 3, func() {
						job.Load(g)
					})
				})
			})
		}
	})
}

// loopIndexFixed privatizes the loop variable per iteration — the
// coding idiom Go recommends (passing it as an argument).
func loopIndexFixed(g *sched.G) {
	g.Call("processJobs", "listing1.go", 1, func() {
		jobs := []int{10, 20, 30}
		for _, j := range jobs {
			g.Line(2)
			priv := sched.NewVarOf(g, "job(private)", j) // fresh variable per iteration
			g.Go("processJobs.func1", func(g *sched.G) {
				g.Call("processJobs.func1", "listing1.go", 3, func() {
					g.Call("ProcessJob", "listing1.go", 3, func() {
						priv.Load(g)
					})
				})
			})
		}
	})
}

// errCaptureRacy models Listing 2: the shared err is assigned by
// Foo/Baz in the enclosing function and by Bar inside the goroutine.
func errCaptureRacy(g *sched.G) {
	g.Call("handleRequest", "listing2.go", 1, func() {
		err := sched.NewVar[string](g, "err")
		g.Line(1)
		err.Store(g, "") // x, err := Foo()
		err.Load(g)      // if err != nil
		g.Go("handleRequest.func1", func(g *sched.G) {
			g.Call("handleRequest.func1", "listing2.go", 8, func() {
				err.Store(g, "bar failed") // y, err = Bar()
				err.Load(g)                // if err != nil
			})
		})
		g.Line(15)
		err.Store(g, "") // z, err = Baz()
		err.Load(g)
	})
}

// errCaptureFixed declares a fresh error variable inside the closure
// (`yErr := Bar()`), removing the sharing.
func errCaptureFixed(g *sched.G) {
	g.Call("handleRequest", "listing2.go", 1, func() {
		err := sched.NewVar[string](g, "err")
		g.Line(1)
		err.Store(g, "")
		err.Load(g)
		done := sched.NewChan[int](g, "done", 1)
		g.Go("handleRequest.func1", func(g *sched.G) {
			g.Call("handleRequest.func1", "listing2.go", 8, func() {
				yErr := sched.NewVar[string](g, "yErr")
				yErr.Store(g, "bar failed")
				yErr.Load(g)
				done.Send(g, 1)
			})
		})
		g.Line(15)
		err.Store(g, "")
		err.Load(g)
		done.Recv(g)
	})
}

// namedReturnRacy models Listing 3: `return 20` compiles to a write of
// the named return variable `result`, racing with the goroutine's read.
func namedReturnRacy(g *sched.G) {
	g.Call("NamedReturnCallee", "listing3.go", 1, func() {
		result := sched.NewVar[int](g, "result(named)")
		g.Line(2)
		result.Store(g, 10)
		g.Go("NamedReturnCallee.func1", func(g *sched.G) {
			g.Call("NamedReturnCallee.func1", "listing3.go", 7, func() {
				result.Load(g) // read of the named return
			})
		})
		g.Line(9)
		result.Store(g, 20) // return 20 => result = 20
	})
}

// namedReturnFixed uses an unnamed return: the goroutine reads a
// private copy taken before the return.
func namedReturnFixed(g *sched.G) {
	g.Call("NamedReturnCallee", "listing3.go", 1, func() {
		result := sched.NewVar[int](g, "result(named)")
		g.Line(2)
		result.Store(g, 10)
		snapshot := sched.NewVarOf(g, "resultCopy", 10)
		done := sched.NewChan[int](g, "done", 1)
		g.Go("NamedReturnCallee.func1", func(g *sched.G) {
			g.Call("NamedReturnCallee.func1", "listing3.go", 7, func() {
				snapshot.Load(g)
				done.Send(g, 1)
			})
		})
		done.Recv(g) // join before the writing return
		g.Line(9)
		result.Store(g, 20)
	})
}

// deferNamedReturnRacy models Listing 4: the deferred function writes
// the named return err *after* the return statement, racing with the
// goroutine that captured err.
func deferNamedReturnRacy(g *sched.G) {
	g.Call("Redeem", "listing4.go", 1, func() {
		err := sched.NewVar[string](g, "err(named)")
		g.Line(5)
		err.Store(g, "") // err = CheckRequest(request)
		g.Go("Redeem.func2", func(g *sched.G) {
			g.Call("Redeem.func2", "listing4.go", 8, func() {
				err.Load(g) // ProcessRequest(request, err != nil)
			})
		})
		g.Line(10) // return — and then the deferred function runs:
		g.Call("Redeem.func1(defer)", "listing4.go", 3, func() {
			err.Store(g, "wrapped") // resp, err = c.Foo(request, err)
		})
	})
}

// deferNamedReturnFixed passes the error value into the goroutine
// instead of capturing the named return variable.
func deferNamedReturnFixed(g *sched.G) {
	g.Call("Redeem", "listing4.go", 1, func() {
		err := sched.NewVar[string](g, "err(named)")
		g.Line(5)
		err.Store(g, "")
		errSnapshot := err.Load(g)
		failed := sched.NewVarOf(g, "failed", errSnapshot != "")
		g.Go("Redeem.func2", func(g *sched.G) {
			g.Call("Redeem.func2", "listing4.go", 8, func() {
				failed.Load(g)
			})
		})
		g.Line(10)
		g.Call("Redeem.func1(defer)", "listing4.go", 3, func() {
			err.Store(g, "wrapped")
		})
	})
}

// localCaptureRacy models the generic capture bug: a local counter
// mutated both by the enclosing function and its async closure.
func localCaptureRacy(g *sched.G) {
	g.Call("aggregate", "capture.go", 1, func() {
		total := sched.NewVar[int](g, "total")
		g.Go("aggregate.func1", func(g *sched.G) {
			g.Call("aggregate.func1", "capture.go", 4, func() {
				total.Update(g, func(x int) int { return x + 1 })
			})
		})
		g.Line(7)
		total.Update(g, func(x int) int { return x + 10 })
	})
}

// localCaptureFixed synchronizes the closure with a channel before the
// enclosing function touches the variable again.
func localCaptureFixed(g *sched.G) {
	g.Call("aggregate", "capture.go", 1, func() {
		total := sched.NewVar[int](g, "total")
		done := sched.NewChan[int](g, "done", 0)
		g.Go("aggregate.func1", func(g *sched.G) {
			g.Call("aggregate.func1", "capture.go", 4, func() {
				total.Update(g, func(x int) int { return x + 1 })
				done.Send(g, 1)
			})
		})
		done.Recv(g)
		g.Line(7)
		total.Update(g, func(x int) int { return x + 10 })
	})
}
