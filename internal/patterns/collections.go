package patterns

import (
	"fmt"

	"gorace/internal/sched"
	"gorace/internal/taxonomy"
)

// Observation 4 (slices) and Observation 5 (maps).

func init() {
	register(Pattern{
		ID:          "slice-append-unlocked",
		Listing:     0,
		Cat:         taxonomy.CatSlice,
		Secondary:   []taxonomy.Category{taxonomy.CatMissingLock},
		Description: "Concurrent append to a shared slice without a lock",
		Racy:        sliceAppendRacy,
		Fixed:       sliceAppendFixed,
	})
	register(Pattern{
		ID:          "slice-header-copy",
		Listing:     5,
		Cat:         taxonomy.CatSlice,
		Description: "Locked appends race with an unlocked slice-header copy at a goroutine callsite (Listing 5)",
		Racy:        sliceHeaderCopyRacy,
		Fixed:       sliceHeaderCopyFixed,
	})
	register(Pattern{
		ID:          "map-concurrent-write",
		Listing:     6,
		Cat:         taxonomy.CatMap,
		Description: "Per-uuid goroutines write disjoint keys of a shared map (Listing 6)",
		Racy:        mapWriteRacy,
		Fixed:       mapWriteFixed,
	})
	register(Pattern{
		ID:          "map-read-write",
		Listing:     0,
		Cat:         taxonomy.CatMap,
		Description: "Unlocked map read concurrent with an insert",
		Racy:        mapReadWriteRacy,
		Fixed:       mapReadWriteFixed,
	})
}

// sliceAppendRacy: the most common shape behind Table 2's 391 slice
// races — plain concurrent appends.
func sliceAppendRacy(g *sched.G) {
	g.Call("collect", "slice.go", 1, func() {
		results := sched.NewSlice[string](g, "results", 0)
		wg := sched.NewWaitGroup(g, "wg")
		for i := 0; i < 3; i++ {
			wg.Add(g, 1)
			i := i
			g.Go("collect.func1", func(g *sched.G) {
				g.Call("collect.func1", "slice.go", 5, func() {
					results.Append(g, fmt.Sprintf("res-%d", i))
				})
				wg.Done(g)
			})
		}
		wg.Wait(g)
		results.Len(g)
	})
}

func sliceAppendFixed(g *sched.G) {
	g.Call("collect", "slice.go", 1, func() {
		results := sched.NewSlice[string](g, "results", 0)
		mu := sched.NewMutex(g, "mutex")
		wg := sched.NewWaitGroup(g, "wg")
		for i := 0; i < 3; i++ {
			wg.Add(g, 1)
			i := i
			g.Go("collect.func1", func(g *sched.G) {
				g.Call("collect.func1", "slice.go", 5, func() {
					mu.Lock(g)
					results.Append(g, fmt.Sprintf("res-%d", i))
					mu.Unlock(g)
				})
				wg.Done(g)
			})
		}
		wg.Wait(g)
		results.Len(g)
	})
}

// sliceHeaderCopyRacy models Listing 5: safeAppend locks around the
// append, but the goroutine invocation copies the slice header
// (`}(uuid, myResults)`) without holding the lock.
func sliceHeaderCopyRacy(g *sched.G) {
	g.Call("ProcessAll", "listing5.go", 1, func() {
		myResults := sched.NewSlice[string](g, "myResults", 0)
		mutex := sched.NewMutex(g, "mutex")
		uuids := []string{"u1", "u2", "u3"}
		for _, id := range uuids {
			g.Line(14)
			// The callsite copies the slice's meta fields unlocked.
			myResults.Header(g)
			id := id
			g.Go("ProcessAll.func2", func(g *sched.G) {
				g.Call("ProcessAll.func2", "listing5.go", 11, func() {
					g.Call("safeAppend", "listing5.go", 6, func() {
						mutex.Lock(g)
						myResults.Append(g, "res-"+id)
						mutex.Unlock(g)
					})
				})
			})
		}
	})
}

// sliceHeaderCopyFixed follows the paper's advice: pass a pointer and
// only touch the slice under the lock (no header copy at the callsite).
func sliceHeaderCopyFixed(g *sched.G) {
	g.Call("ProcessAll", "listing5.go", 1, func() {
		myResults := sched.NewSlice[string](g, "myResults", 0)
		mutex := sched.NewMutex(g, "mutex")
		wg := sched.NewWaitGroup(g, "wg")
		uuids := []string{"u1", "u2", "u3"}
		for _, id := range uuids {
			wg.Add(g, 1)
			id := id
			g.Go("ProcessAll.func2", func(g *sched.G) {
				g.Call("ProcessAll.func2", "listing5.go", 11, func() {
					g.Call("safeAppend", "listing5.go", 6, func() {
						mutex.Lock(g)
						myResults.Append(g, "res-"+id)
						mutex.Unlock(g)
					})
				})
				wg.Done(g)
			})
		}
		wg.Wait(g)
	})
}

// mapWriteRacy models Listing 6: goroutines insert *different* keys,
// which still mutates the shared sparse structure.
func mapWriteRacy(g *sched.G) {
	g.Call("processOrders", "listing6.go", 1, func() {
		errMap := sched.NewMap[string, string](g, "errMap")
		uuids := []string{"a", "b", "c"}
		for _, uuid := range uuids {
			uuid := uuid
			g.Go("processOrders.func1", func(g *sched.G) {
				g.Call("processOrders.func1", "listing6.go", 7, func() {
					errMap.Put(g, uuid, "failed") // errMap[uuid] = err
				})
			})
		}
		g.Line(12)
		g.Call("combineErrors", "listing6.go", 12, func() {
			errMap.Len(g)
		})
	})
}

func mapWriteFixed(g *sched.G) {
	g.Call("processOrders", "listing6.go", 1, func() {
		errMap := sched.NewMap[string, string](g, "errMap")
		mu := sched.NewMutex(g, "mu")
		wg := sched.NewWaitGroup(g, "wg")
		uuids := []string{"a", "b", "c"}
		for _, uuid := range uuids {
			wg.Add(g, 1)
			uuid := uuid
			g.Go("processOrders.func1", func(g *sched.G) {
				g.Call("processOrders.func1", "listing6.go", 7, func() {
					mu.Lock(g)
					errMap.Put(g, uuid, "failed")
					mu.Unlock(g)
				})
				wg.Done(g)
			})
		}
		wg.Wait(g)
		g.Line(12)
		g.Call("combineErrors", "listing6.go", 12, func() {
			mu.Lock(g)
			errMap.Len(g)
			mu.Unlock(g)
		})
	})
}

// mapReadWriteRacy: a lookup of one key races with an insert of
// another key through the shared structure.
func mapReadWriteRacy(g *sched.G) {
	g.Call("cacheLookup", "map.go", 1, func() {
		cache := sched.NewMap[string, int](g, "cache")
		cache.Put(g, "warm", 1)
		g.Go("cacheLookup.func1", func(g *sched.G) {
			g.Call("cacheLookup.func1", "map.go", 5, func() {
				cache.Put(g, "new", 2)
			})
		})
		g.Line(8)
		cache.Get(g, "warm")
	})
}

func mapReadWriteFixed(g *sched.G) {
	g.Call("cacheLookup", "map.go", 1, func() {
		cache := sched.NewMap[string, int](g, "cache")
		mu := sched.NewRWMutex(g, "mu")
		cache.Put(g, "warm", 1)
		done := sched.NewChan[int](g, "done", 1)
		g.Go("cacheLookup.func1", func(g *sched.G) {
			g.Call("cacheLookup.func1", "map.go", 5, func() {
				mu.Lock(g)
				cache.Put(g, "new", 2)
				mu.Unlock(g)
				done.Send(g, 1)
			})
		})
		g.Line(8)
		mu.RLock(g)
		cache.Get(g, "warm")
		mu.RUnlock(g)
		done.Recv(g)
	})
}
