package patterns

import (
	"os"
	"testing"

	"gorace/internal/detector"
	"gorace/internal/sched"
	"gorace/internal/taxonomy"
	"gorace/internal/trace"
)

func TestRegistryValid(t *testing.T) {
	if err := Validate(); err != nil {
		t.Fatal(err)
	}
	if len(All()) < 20 {
		t.Fatalf("corpus has only %d patterns", len(All()))
	}
}

func TestEveryTableCategoryCovered(t *testing.T) {
	// Every row of Tables 2 and 3 must have at least one corpus entry
	// (primary category).
	for _, e := range taxonomy.Entries {
		if len(ByCategory(e.Cat)) == 0 {
			t.Errorf("category %q (%s) has no corpus pattern", e.Cat, e.Description)
		}
	}
}

func TestEveryListingCovered(t *testing.T) {
	want := map[int]bool{1: false, 2: false, 3: false, 4: false, 5: false,
		6: false, 7: false, 9: false, 10: false, 11: false}
	for _, p := range All() {
		if _, ok := want[p.Listing]; ok {
			want[p.Listing] = true
		}
	}
	for l, ok := range want {
		if !ok {
			t.Errorf("paper listing %d has no corpus pattern", l)
		}
	}
}

func TestByIDAndIDs(t *testing.T) {
	ids := IDs()
	if len(ids) != len(All()) {
		t.Fatal("IDs/All length mismatch")
	}
	for _, id := range ids {
		if _, ok := ByID(id); !ok {
			t.Errorf("ByID(%q) failed", id)
		}
	}
	if _, ok := ByID("no-such-pattern"); ok {
		t.Error("ByID on unknown id succeeded")
	}
}

func TestRacyVariantsManifest(t *testing.T) {
	const maxSeeds = 80
	for _, p := range All() {
		p := p
		t.Run(p.ID+"/racy", func(t *testing.T) {
			for seed := int64(0); seed < maxSeeds; seed++ {
				ft := detector.NewFastTrack()
				res := sched.Run(p.Racy, sched.Options{
					Strategy: sched.NewRandom(), Seed: seed, MaxSteps: 1 << 16,
					Listeners: []trace.Listener{ft},
				})
				if res.BudgetExceeded {
					t.Fatalf("seed %d: budget exceeded", seed)
				}
				if ft.RaceCount() > 0 {
					return // manifested
				}
			}
			t.Fatalf("race never manifested across %d seeds", maxSeeds)
		})
	}
}

func TestFixedVariantsClean(t *testing.T) {
	const seeds = 40
	for _, p := range All() {
		p := p
		t.Run(p.ID+"/fixed", func(t *testing.T) {
			for seed := int64(0); seed < seeds; seed++ {
				ft := detector.NewFastTrack()
				res := sched.Run(p.Fixed, sched.Options{
					Strategy: sched.NewRandom(), Seed: seed, MaxSteps: 1 << 16,
					Listeners: []trace.Listener{ft},
				})
				if ft.RaceCount() > 0 {
					t.Fatalf("seed %d: fixed variant raced:\n%s", seed, ft.Races()[0])
				}
				if res.Deadlocked() {
					t.Fatalf("seed %d: fixed variant leaked goroutines: %+v", seed, res.Leaked)
				}
				if len(res.Failures) > 0 {
					t.Fatalf("seed %d: fixed variant failed: %v", seed, res.Failures)
				}
				if res.BudgetExceeded {
					t.Fatalf("seed %d: budget exceeded", seed)
				}
			}
		})
	}
}

func TestFutureRacyLeaksGoroutine(t *testing.T) {
	// Listing 9's second defect: when the cancel arm wins, the future
	// goroutine blocks forever on the unbuffered send.
	p, _ := ByID("future-ctx-cancel")
	leaked := false
	for seed := int64(0); seed < 80 && !leaked; seed++ {
		res := sched.Run(p.Racy, sched.Options{
			Strategy: sched.NewRandom(), Seed: seed, MaxSteps: 1 << 16,
		})
		leaked = res.Deadlocked()
	}
	if !leaked {
		t.Fatal("future goroutine never leaked across 80 seeds")
	}
}

func TestRacyReportsCarryListingFrames(t *testing.T) {
	// Reports from listing-based patterns should carry the pseudo
	// source files of the paper's listings.
	p, _ := ByID("capture-loop-index")
	for seed := int64(0); seed < 40; seed++ {
		ft := detector.NewFastTrack()
		sched.Run(p.Racy, sched.Options{
			Strategy: sched.NewRandom(), Seed: seed, MaxSteps: 1 << 16,
			Listeners: []trace.Listener{ft},
		})
		for _, r := range ft.Races() {
			if r.Second.Stack.Leaf().File == "listing1.go" || r.First.Stack.Leaf().File == "listing1.go" {
				return
			}
		}
	}
	t.Fatal("no report referenced listing1.go")
}

func TestCatalogInSyncWithFile(t *testing.T) {
	want := Catalog()
	got, err := os.ReadFile("../../PATTERNS.md")
	if err != nil {
		t.Fatalf("PATTERNS.md missing: %v (regenerate with the snippet in the test)", err)
	}
	if string(got) != want {
		t.Fatal("PATTERNS.md is stale; regenerate it from patterns.Catalog()")
	}
}
