package patterns

import (
	"os"
	"testing"

	"gorace/internal/core"
	"gorace/internal/taxonomy"
)

// runner drives every corpus execution in these tests: default
// (fasttrack) detector, random schedules, bounded steps.
var runner = core.NewRunner(core.WithMaxSteps(1 << 16))

func TestRegistryValid(t *testing.T) {
	if err := Validate(); err != nil {
		t.Fatal(err)
	}
	if len(All()) < 20 {
		t.Fatalf("corpus has only %d patterns", len(All()))
	}
}

func TestEveryTableCategoryCovered(t *testing.T) {
	// Every row of Tables 2 and 3 must have at least one corpus entry
	// (primary category).
	for _, e := range taxonomy.Entries {
		if len(ByCategory(e.Cat)) == 0 {
			t.Errorf("category %q (%s) has no corpus pattern", e.Cat, e.Description)
		}
	}
}

func TestEveryListingCovered(t *testing.T) {
	want := map[int]bool{1: false, 2: false, 3: false, 4: false, 5: false,
		6: false, 7: false, 9: false, 10: false, 11: false}
	for _, p := range All() {
		if _, ok := want[p.Listing]; ok {
			want[p.Listing] = true
		}
	}
	for l, ok := range want {
		if !ok {
			t.Errorf("paper listing %d has no corpus pattern", l)
		}
	}
}

func TestByIDAndIDs(t *testing.T) {
	ids := IDs()
	if len(ids) != len(All()) {
		t.Fatal("IDs/All length mismatch")
	}
	for _, id := range ids {
		if _, ok := ByID(id); !ok {
			t.Errorf("ByID(%q) failed", id)
		}
	}
	if _, ok := ByID("no-such-pattern"); ok {
		t.Error("ByID on unknown id succeeded")
	}
}

func TestRacyVariantsManifest(t *testing.T) {
	const maxSeeds = 80
	for _, p := range All() {
		p := p
		t.Run(p.ID+"/racy", func(t *testing.T) {
			for seed := int64(0); seed < maxSeeds; seed++ {
				out, err := runner.RunSeed(p.Racy, seed)
				if err != nil {
					t.Fatal(err)
				}
				if out.Result.BudgetExceeded {
					t.Fatalf("seed %d: budget exceeded", seed)
				}
				if out.HasRace() {
					return // manifested
				}
			}
			t.Fatalf("race never manifested across %d seeds", maxSeeds)
		})
	}
}

func TestFixedVariantsClean(t *testing.T) {
	const seeds = 40
	for _, p := range All() {
		p := p
		t.Run(p.ID+"/fixed", func(t *testing.T) {
			outs, err := runner.RunBatch(p.Fixed, core.Seeds(0, seeds))
			if err != nil {
				t.Fatal(err)
			}
			for _, out := range outs {
				if out.HasRace() {
					t.Fatalf("seed %d: fixed variant raced:\n%s", out.Seed, out.Races[0])
				}
				if out.Result.Deadlocked() {
					t.Fatalf("seed %d: fixed variant leaked goroutines: %+v", out.Seed, out.Result.Leaked)
				}
				if len(out.Result.Failures) > 0 {
					t.Fatalf("seed %d: fixed variant failed: %v", out.Seed, out.Result.Failures)
				}
				if out.Result.BudgetExceeded {
					t.Fatalf("seed %d: budget exceeded", out.Seed)
				}
			}
		})
	}
}

func TestFutureRacyLeaksGoroutine(t *testing.T) {
	// Listing 9's second defect: when the cancel arm wins, the future
	// goroutine blocks forever on the unbuffered send.
	p, _ := ByID("future-ctx-cancel")
	leakRunner := core.NewRunner(core.WithDetector("none"), core.WithMaxSteps(1<<16))
	leaked := false
	for seed := int64(0); seed < 80 && !leaked; seed++ {
		out, err := leakRunner.RunSeed(p.Racy, seed)
		if err != nil {
			t.Fatal(err)
		}
		leaked = out.Result.Deadlocked()
	}
	if !leaked {
		t.Fatal("future goroutine never leaked across 80 seeds")
	}
}

func TestRacyReportsCarryListingFrames(t *testing.T) {
	// Reports from listing-based patterns should carry the pseudo
	// source files of the paper's listings.
	p, _ := ByID("capture-loop-index")
	for seed := int64(0); seed < 40; seed++ {
		out, err := runner.RunSeed(p.Racy, seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range out.Races {
			if r.Second.Stack.Leaf().File == "listing1.go" || r.First.Stack.Leaf().File == "listing1.go" {
				return
			}
		}
	}
	t.Fatal("no report referenced listing1.go")
}

func TestCatalogInSyncWithFile(t *testing.T) {
	want := Catalog()
	got, err := os.ReadFile("../../PATTERNS.md")
	if err != nil {
		t.Fatalf("PATTERNS.md missing: %v (regenerate with the snippet in the test)", err)
	}
	if string(got) != want {
		t.Fatal("PATTERNS.md is stale; regenerate it from patterns.Catalog()")
	}
}
