// Package patterns is the corpus of data race patterns from §4 of the
// paper. Every listing (1–11) and every category row of Tables 2 and 3
// has at least one corpus entry, each with two variants:
//
//   - Racy: a faithful transliteration of the buggy code into the
//     modeled runtime; under some schedule it produces unordered
//     conflicting accesses.
//   - Fixed: the repaired version (the fix the paper describes or the
//     fix class of Table 3); race-free under every schedule.
//
// Programs push pseudo stack frames named after the paper's listings,
// so detector reports read like the study's examples, and they name
// variables with the corpus conventions the classifier keys on
// (a human labeling the same reports would use the same cues: "err",
// a range variable, a map's internal state, a Test* root frame...).
package patterns

import (
	"fmt"
	"sort"
	"strings"

	"gorace/internal/sched"
	"gorace/internal/taxonomy"
)

// Pattern is one corpus entry.
type Pattern struct {
	// ID is the stable corpus identifier, e.g. "capture-loop-index".
	ID string
	// Listing is the paper listing number (0 when the pattern comes
	// from a table row without a listing).
	Listing int
	// Cat is the primary taxonomy category (ground truth).
	Cat taxonomy.Category
	// Secondary lists additional applicable categories; the paper's
	// labels "are not mutually exclusive".
	Secondary []taxonomy.Category
	// Description summarizes the root cause.
	Description string
	// Racy is the buggy program; Fixed is the repaired program.
	Racy  func(*sched.G)
	Fixed func(*sched.G)
}

var registry []Pattern

func register(p Pattern) {
	registry = append(registry, p)
}

// All returns the corpus in deterministic (ID) order.
func All() []Pattern {
	out := make([]Pattern, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks a pattern up by identifier.
func ByID(id string) (Pattern, bool) {
	for _, p := range registry {
		if p.ID == id {
			return p, true
		}
	}
	return Pattern{}, false
}

// ByCategory returns all patterns whose primary category is cat.
func ByCategory(cat taxonomy.Category) []Pattern {
	var out []Pattern
	for _, p := range All() {
		if p.Cat == cat {
			out = append(out, p)
		}
	}
	return out
}

// IDs returns all corpus identifiers in deterministic order.
func IDs() []string {
	var out []string
	for _, p := range All() {
		out = append(out, p.ID)
	}
	return out
}

// Catalog renders the corpus as a markdown table (PATTERNS.md); a
// test keeps the committed file in sync with the registry.
func Catalog() string {
	var b strings.Builder
	b.WriteString("# Race pattern corpus\n\n")
	b.WriteString("Generated from `internal/patterns` — do not edit by hand.\n")
	b.WriteString("Each pattern has a `Racy` and a `Fixed` variant; run one with\n")
	b.WriteString("`go run ./cmd/racedetect -pattern <id>`.\n\n")
	b.WriteString("| ID | Listing | Category | Description |\n")
	b.WriteString("|---|---|---|---|\n")
	for _, p := range All() {
		listing := "—"
		if p.Listing > 0 {
			listing = fmt.Sprintf("%d", p.Listing)
		}
		cats := string(p.Cat)
		for _, s := range p.Secondary {
			cats += ", " + string(s)
		}
		fmt.Fprintf(&b, "| `%s` | %s | %s | %s |\n", p.ID, listing, cats, p.Description)
	}
	return b.String()
}

// Validate checks registry invariants (unique IDs, both variants
// present, category known); the test suite calls it.
func Validate() error {
	seen := make(map[string]bool)
	for _, p := range registry {
		if p.ID == "" {
			return fmt.Errorf("pattern with empty ID: %q", p.Description)
		}
		if seen[p.ID] {
			return fmt.Errorf("duplicate pattern ID %q", p.ID)
		}
		seen[p.ID] = true
		if p.Racy == nil || p.Fixed == nil {
			return fmt.Errorf("pattern %q missing a variant", p.ID)
		}
		if _, ok := taxonomy.ByCategory(p.Cat); !ok {
			return fmt.Errorf("pattern %q has unknown category %q", p.ID, p.Cat)
		}
		for _, c := range p.Secondary {
			if _, ok := taxonomy.ByCategory(c); !ok {
				return fmt.Errorf("pattern %q has unknown secondary category %q", p.ID, c)
			}
		}
	}
	return nil
}
