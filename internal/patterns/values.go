package patterns

import (
	"gorace/internal/sched"
	"gorace/internal/taxonomy"
)

// Observation 6: pass-by-value vs pass-by-reference confusion.

func init() {
	register(Pattern{
		ID:          "mutex-by-value",
		Listing:     7,
		Cat:         taxonomy.CatPassByValue,
		Description: "sync.Mutex passed by value: each goroutine locks its own copy (Listing 7)",
		Racy:        mutexByValueRacy,
		Fixed:       mutexByValueFixed,
	})
	register(Pattern{
		ID:          "receiver-by-pointer",
		Listing:     0,
		Cat:         taxonomy.CatPassByValue,
		Description: "Method accidentally declared on a pointer receiver: goroutines share state meant to be copied",
		Racy:        pointerReceiverRacy,
		Fixed:       pointerReceiverFixed,
	})
}

// mutexByValueRacy models Listing 7: CriticalSection receives a *copy*
// of the mutex, so the two critical sections exclude nothing.
func mutexByValueRacy(g *sched.G) {
	g.Call("main", "listing7.go", 8, func() {
		a := sched.NewVar[int](g, "a")
		mutex := sched.NewMutex(g, "mutex")
		criticalSection := func(g *sched.G, m *sched.Mutex) {
			g.Call("CriticalSection", "listing7.go", 3, func() {
				m.Lock(g)
				a.Update(g, func(x int) int { return x + 1 })
				m.Unlock(g)
			})
		}
		for i := 0; i < 2; i++ {
			g.Go("CriticalSection", func(g *sched.G) {
				// go CriticalSection(mutex): the argument is copied.
				criticalSection(g, mutex.Clone(g))
			})
		}
	})
}

// mutexByValueFixed passes &mutex; both goroutines share one lock.
func mutexByValueFixed(g *sched.G) {
	g.Call("main", "listing7.go", 8, func() {
		a := sched.NewVar[int](g, "a")
		mutex := sched.NewMutex(g, "mutex")
		wg := sched.NewWaitGroup(g, "wg")
		criticalSection := func(g *sched.G, m *sched.Mutex) {
			g.Call("CriticalSection", "listing7.go", 3, func() {
				m.Lock(g)
				a.Update(g, func(x int) int { return x + 1 })
				m.Unlock(g)
			})
		}
		for i := 0; i < 2; i++ {
			wg.Add(g, 1)
			g.Go("CriticalSection", func(g *sched.G) {
				criticalSection(g, mutex) // &mutex: the same lock
				wg.Done(g)
			})
		}
		wg.Wait(g)
	})
}

// pointerReceiverRacy models the converse of Listing 7: the developer
// meant each goroutine to operate on its own copy of a small struct,
// but the method was declared on a pointer receiver, so all goroutines
// mutate the same scratch state.
func pointerReceiverRacy(g *sched.G) {
	g.Call("render", "receiver.go", 1, func() {
		scratch := sched.NewVar[int](g, "buf.scratch")
		for i := 0; i < 2; i++ {
			i := i
			g.Go("(*Buffer).Render", func(g *sched.G) {
				g.Call("(*Buffer).Render", "receiver.go", 6, func() {
					scratch.Store(g, i) // shared receiver state
					scratch.Load(g)
				})
			})
		}
	})
}

// pointerReceiverFixed declares the method on a value receiver: each
// invocation works on a private copy.
func pointerReceiverFixed(g *sched.G) {
	g.Call("render", "receiver.go", 1, func() {
		for i := 0; i < 2; i++ {
			i := i
			g.Go("Buffer.Render", func(g *sched.G) {
				g.Call("Buffer.Render", "receiver.go", 6, func() {
					private := sched.NewVar[int](g, "buf.scratch(copy)")
					private.Store(g, i)
					private.Load(g)
				})
			})
		}
	})
}
