package patterns

import (
	"fmt"

	"gorace/internal/sched"
	"gorace/internal/taxonomy"
)

// Observation 8 (WaitGroup misuse) and Observation 9 (parallel tests).

func init() {
	register(Pattern{
		ID:          "waitgroup-add-inside",
		Listing:     10,
		Cat:         taxonomy.CatGroupSync,
		Secondary:   []taxonomy.Category{taxonomy.CatSlice},
		Description: "wg.Add placed inside the goroutine body: Wait can unblock early (Listing 10)",
		Racy:        wgAddInsideRacy,
		Fixed:       wgAddInsideFixed,
	})
	register(Pattern{
		ID:          "waitgroup-early-done",
		Listing:     0,
		Cat:         taxonomy.CatGroupSync,
		Description: "wg.Done called before the goroutine's final write",
		Racy:        wgEarlyDoneRacy,
		Fixed:       wgEarlyDoneFixed,
	})
	register(Pattern{
		ID:          "parallel-table-test",
		Listing:     0,
		Cat:         taxonomy.CatParallelTest,
		Secondary:   []taxonomy.Category{taxonomy.CatMap},
		Description: "Table-driven subtests run in parallel while sharing a fixture map (Observation 9)",
		Racy:        parallelTestRacy,
		Fixed:       parallelTestFixed,
	})
	register(Pattern{
		ID:          "parallel-test-product-api",
		Listing:     0,
		Cat:         taxonomy.CatParallelTest,
		Secondary:   []taxonomy.Category{taxonomy.CatAPIContract},
		Description: "Parallel subtests exercise a product API written without thread safety",
		Racy:        parallelTestAPIRacy,
		Fixed:       parallelTestAPIFixed,
	})
}

// wgAddInsideRacy models Listing 10: Add runs inside the goroutines,
// so Wait can see a zero counter and the parent reads `results` while
// workers still write it.
func wgAddInsideRacy(g *sched.G) {
	g.Call("WaitGrpExample", "listing10.go", 1, func() {
		itemIDs := []int{0, 1, 2}
		results := sched.NewSlice[int](g, "results", len(itemIDs))
		wg := sched.NewWaitGroup(g, "wg")
		for i := range itemIDs {
			idx := i
			g.Go("WaitGrpExample.func1", func(g *sched.G) {
				g.Call("WaitGrpExample.func1", "listing10.go", 6, func() {
					wg.Add(g, 1) // incorrect placement (line 7)
					g.Line(8)
					results.Set(g, idx, idx*10)
					wg.Done(g)
				})
			})
		}
		g.Line(12)
		wg.Wait(g) // waits only for participants added so far
		g.Line(13)
		for i := range itemIDs {
			results.Get(g, i)
		}
	})
}

// wgAddInsideFixed hoists Add before each goroutine launch.
func wgAddInsideFixed(g *sched.G) {
	g.Call("WaitGrpExample", "listing10.go", 1, func() {
		itemIDs := []int{0, 1, 2}
		results := sched.NewSlice[int](g, "results", len(itemIDs))
		wg := sched.NewWaitGroup(g, "wg")
		for i := range itemIDs {
			idx := i
			wg.Add(g, 1) // correct placement (line 5)
			g.Go("WaitGrpExample.func1", func(g *sched.G) {
				g.Call("WaitGrpExample.func1", "listing10.go", 6, func() {
					g.Line(8)
					results.Set(g, idx, idx*10)
					wg.Done(g)
				})
			})
		}
		g.Line(12)
		wg.Wait(g)
		g.Line(13)
		for i := range itemIDs {
			results.Get(g, i)
		}
	})
}

// wgEarlyDoneRacy: Done is signaled before the goroutine's final write
// — "a premature placement of the Done() call" (§4.7).
func wgEarlyDoneRacy(g *sched.G) {
	g.Call("flushAll", "wgdone.go", 1, func() {
		status := sched.NewVar[string](g, "status")
		wg := sched.NewWaitGroup(g, "wg")
		wg.Add(g, 1)
		g.Go("flushAll.func1", func(g *sched.G) {
			g.Call("flushAll.func1", "wgdone.go", 4, func() {
				wg.Done(g) // too early
				status.Store(g, "flushed")
			})
		})
		wg.Wait(g)
		status.Load(g)
	})
}

func wgEarlyDoneFixed(g *sched.G) {
	g.Call("flushAll", "wgdone.go", 1, func() {
		status := sched.NewVar[string](g, "status")
		wg := sched.NewWaitGroup(g, "wg")
		wg.Add(g, 1)
		g.Go("flushAll.func1", func(g *sched.G) {
			g.Call("flushAll.func1", "wgdone.go", 4, func() {
				status.Store(g, "flushed")
				wg.Done(g) // after the last write
			})
		})
		wg.Wait(g)
		status.Load(g)
	})
}

// parallelTestRacy models the table-driven idiom with t.Parallel():
// subtests share the suite's fixture map.
func parallelTestRacy(g *sched.G) {
	g.Call("TestOrderProcessing", "suite_test.go", 1, func() {
		fixtures := sched.NewMap[string, string](g, "suite.fixtures")
		fixtures.Put(g, "base", "cfg")
		for i := 0; i < 3; i++ {
			name := fmt.Sprintf("case-%d", i)
			g.Go("TestOrderProcessing/"+name, func(g *sched.G) {
				g.Call("TestOrderProcessing.func1", "suite_test.go", 9, func() {
					// t.Parallel(): the subtest body runs concurrently
					fixtures.Put(g, name, "per-case override")
					fixtures.Get(g, "base")
				})
			})
		}
	})
}

// parallelTestFixed gives each subtest its own fixture copy.
func parallelTestFixed(g *sched.G) {
	g.Call("TestOrderProcessing", "suite_test.go", 1, func() {
		wg := sched.NewWaitGroup(g, "wg")
		for i := 0; i < 3; i++ {
			name := fmt.Sprintf("case-%d", i)
			wg.Add(g, 1)
			g.Go("TestOrderProcessing/"+name, func(g *sched.G) {
				g.Call("TestOrderProcessing.func1", "suite_test.go", 9, func() {
					local := sched.NewMap[string, string](g, "fixtures(local)")
					local.Put(g, "base", "cfg")
					local.Put(g, name, "per-case override")
					local.Get(g, "base")
				})
				wg.Done(g)
			})
		}
		wg.Wait(g)
	})
}

// parallelTestAPIRacy: the product API keeps unsynchronized internal
// state ("perhaps thread safety was not needed" when written); the
// parallel suite violates that assumption.
func parallelTestAPIRacy(g *sched.G) {
	g.Call("TestClientReuse", "client_test.go", 1, func() {
		lastRequest := sched.NewVar[string](g, "client.lastRequest")
		clientCall := func(g *sched.G, req string) {
			g.Call("(*Client).Call", "client.go", 20, func() {
				lastRequest.Store(g, req) // product code, not test code
			})
		}
		for i := 0; i < 2; i++ {
			name := fmt.Sprintf("sub-%d", i)
			req := name
			g.Go("TestClientReuse/"+name, func(g *sched.G) {
				g.Call("TestClientReuse.func1", "client_test.go", 8, func() {
					clientCall(g, req)
				})
			})
		}
	})
}

// parallelTestAPIFixed constructs a client per subtest.
func parallelTestAPIFixed(g *sched.G) {
	g.Call("TestClientReuse", "client_test.go", 1, func() {
		wg := sched.NewWaitGroup(g, "wg")
		for i := 0; i < 2; i++ {
			name := fmt.Sprintf("sub-%d", i)
			req := name
			wg.Add(g, 1)
			g.Go("TestClientReuse/"+name, func(g *sched.G) {
				g.Call("TestClientReuse.func1", "client_test.go", 8, func() {
					private := sched.NewVar[string](g, "client.lastRequest(private)")
					g.Call("(*Client).Call", "client.go", 20, func() {
						private.Store(g, req)
					})
				})
				wg.Done(g)
			})
		}
		wg.Wait(g)
	})
}
