package patterns

import (
	"gorace/internal/sched"
	"gorace/internal/taxonomy"
)

// Observation 7: mixing shared memory with message passing.

func init() {
	register(Pattern{
		ID:          "future-ctx-cancel",
		Listing:     9,
		Cat:         taxonomy.CatMixedChanShared,
		Description: "Future implementation: Wait writes f.err on context cancel while the goroutine writes it (Listing 9)",
		Racy:        futureRacy,
		Fixed:       futureFixed,
	})
	register(Pattern{
		ID:          "chan-result-flag",
		Listing:     0,
		Cat:         taxonomy.CatMixedChanShared,
		Description: "Result written to shared memory while completion is signaled on a different channel path",
		Racy:        chanFlagRacy,
		Fixed:       chanFlagFixed,
	})
}

// futureRacy models Listing 9. Start's goroutine writes f.response and
// f.err, then signals on an unbuffered channel. Wait selects on the
// channel vs. context cancellation; the cancel arm *also* writes f.err.
// When the context wins: (a) the two writes to f.err race, and (b) the
// future's goroutine blocks forever on the channel send (a leak our
// scheduler reports).
func futureRacy(g *sched.G) {
	g.Call("main", "listing9.go", 1, func() {
		fErr := sched.NewVar[string](g, "Future.err")
		fResp := sched.NewVar[string](g, "Future.response")
		ch := sched.NewChan[int](g, "f.ch", 0)
		ctxDone := sched.NewChan[int](g, "ctx.Done", 0)

		// (f *Future) Start()
		g.Call("(*Future).Start", "listing9.go", 1, func() {
			g.Go("(*Future).Start.func1", func(g *sched.G) {
				g.Call("(*Future).Start.func1", "listing9.go", 3, func() {
					fResp.Store(g, "resp") // f.response = resp
					g.Line(5)
					fErr.Store(g, "") // f.err = err
					g.Line(6)
					ch.Send(g, 1) // may block forever!
				})
			})
		})

		// The context is cancelled concurrently.
		g.Go("ctx.cancel", func(g *sched.G) {
			ctxDone.Close(g)
		})

		// (f *Future) Wait(ctx)
		g.Call("(*Future).Wait", "listing9.go", 9, func() {
			g.Select(
				sched.OnRecv(ch, nil),
				sched.OnRecv(ctxDone, func(int, bool) {
					g.Line(14)
					fErr.Store(g, "ErrCancelled") // races with line 5
				}),
			)
		})
	})
}

// futureFixed applies the standard repairs: a buffered channel (the
// goroutine never blocks), and Wait returns the cancellation error
// without touching the shared field.
func futureFixed(g *sched.G) {
	g.Call("main", "listing9.go", 1, func() {
		fErr := sched.NewVar[string](g, "Future.err")
		fResp := sched.NewVar[string](g, "Future.response")
		ch := sched.NewChan[int](g, "f.ch", 1)
		ctxDone := sched.NewChan[int](g, "ctx.Done", 0)

		g.Call("(*Future).Start", "listing9.go", 1, func() {
			g.Go("(*Future).Start.func1", func(g *sched.G) {
				g.Call("(*Future).Start.func1", "listing9.go", 3, func() {
					fResp.Store(g, "resp")
					fErr.Store(g, "")
					ch.Send(g, 1) // buffered: never blocks
				})
			})
		})

		g.Go("ctx.cancel", func(g *sched.G) {
			ctxDone.Close(g)
		})

		g.Call("(*Future).Wait", "listing9.go", 9, func() {
			g.Select(
				sched.OnRecv(ch, func(int, bool) {
					fErr.Load(g) // safe: ordered after the send
				}),
				sched.OnRecv(ctxDone, func(int, bool) {
					// return ErrCancelled without writing f.err
				}),
			)
		})
	})
}

// chanFlagRacy: a worker stores its result in shared memory and
// signals on a channel, but the consumer reads the result when *either*
// the signal or a timeout fires — on timeout the read is unordered
// with the worker's write.
func chanFlagRacy(g *sched.G) {
	g.Call("fetch", "chanflag.go", 1, func() {
		result := sched.NewVar[string](g, "result")
		done := sched.NewChan[int](g, "done", 0)
		timeout := sched.NewChan[int](g, "timeout", 0)
		g.Go("fetch.func1", func(g *sched.G) {
			g.Call("fetch.func1", "chanflag.go", 4, func() {
				result.Store(g, "payload")
				done.Send(g, 1)
			})
		})
		g.Go("timer", func(g *sched.G) {
			timeout.Close(g)
		})
		g.Select(
			sched.OnRecv(done, nil),
			sched.OnRecv(timeout, nil),
		)
		g.Line(12)
		result.Load(g) // unordered when the timeout arm won
	})
}

// chanFlagFixed passes the result over the channel itself, so the data
// travels with the synchronization.
func chanFlagFixed(g *sched.G) {
	g.Call("fetch", "chanflag.go", 1, func() {
		done := sched.NewChan[string](g, "done", 1)
		timeout := sched.NewChan[int](g, "timeout", 0)
		g.Go("fetch.func1", func(g *sched.G) {
			g.Call("fetch.func1", "chanflag.go", 4, func() {
				done.Send(g, "payload") // data rides the channel
			})
		})
		g.Go("timer", func(g *sched.G) {
			timeout.Close(g)
		})
		g.Select(
			sched.OnRecv(done, func(v string, ok bool) { _ = v }),
			sched.OnRecv(timeout, nil),
		)
	})
}
