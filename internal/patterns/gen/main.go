// Command gen regenerates PATTERNS.md from the corpus registry:
//
//	go run gorace/internal/patterns/gen > PATTERNS.md
//
// TestCatalogInSyncWithFile keeps the committed file honest.
package main

import (
	"fmt"

	"gorace/internal/patterns"
)

func main() {
	fmt.Print(patterns.Catalog())
}
