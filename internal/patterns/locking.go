package patterns

import (
	"gorace/internal/sched"
	"gorace/internal/taxonomy"
)

// Observation 10 and the Table 3 miscellaneous categories.

func init() {
	register(Pattern{
		ID:          "partial-locking",
		Listing:     0,
		Cat:         taxonomy.CatMissingLock,
		Description: "Lock used at one access site and forgotten at another (§4.9.2)",
		Racy:        partialLockRacy,
		Fixed:       partialLockFixed,
	})
	register(Pattern{
		ID:          "premature-unlock",
		Listing:     0,
		Cat:         taxonomy.CatMissingLock,
		Description: "Unlock called before the last access of the critical section (§4.9.2)",
		Racy:        prematureUnlockRacy,
		Fixed:       prematureUnlockFixed,
	})
	register(Pattern{
		ID:          "rlock-mutation",
		Listing:     11,
		Cat:         taxonomy.CatRLockMutation,
		Secondary:   []taxonomy.Category{taxonomy.CatMissingLock},
		Description: "Shared state mutated inside an RLock-protected section (Listing 11)",
		Racy:        rlockMutationRacy,
		Fixed:       rlockMutationFixed,
	})
	register(Pattern{
		ID:          "api-contract",
		Listing:     0,
		Cat:         taxonomy.CatAPIContract,
		Description: "API documented as thread-safe but implemented without synchronization",
		Racy:        apiContractRacy,
		Fixed:       apiContractFixed,
	})
	register(Pattern{
		ID:          "global-mutation",
		Listing:     0,
		Cat:         taxonomy.CatGlobalVar,
		Description: "Package-level variable mutated by concurrent request handlers",
		Racy:        globalMutationRacy,
		Fixed:       globalMutationFixed,
	})
	register(Pattern{
		ID:          "partial-atomics",
		Listing:     0,
		Cat:         taxonomy.CatPartialAtomics,
		Description: "atomic used for the write but not the read of the same variable (§4.9.2)",
		Racy:        partialAtomicsRacy,
		Fixed:       partialAtomicsFixed,
	})
	register(Pattern{
		ID:          "statement-order",
		Listing:     0,
		Cat:         taxonomy.CatStatementOrder,
		Description: "Ready flag published before the data it guards is initialized",
		Racy:        statementOrderRacy,
		Fixed:       statementOrderFixed,
	})
	register(Pattern{
		ID:          "metrics-logging",
		Listing:     0,
		Cat:         taxonomy.CatMetricsLogging,
		Description: "Request counter bumped by handlers while a reporter reads it",
		Racy:        metricsRacy,
		Fixed:       metricsFixed,
	})
	register(Pattern{
		ID:          "complex-interaction",
		Listing:     0,
		Cat:         taxonomy.CatComplex,
		Secondary:   []taxonomy.Category{taxonomy.CatMissingLock},
		Description: "Callback registry mutated by one component while another component invokes callbacks",
		Racy:        complexRacy,
		Fixed:       complexFixed,
	})
}

// partialLockRacy: the writer locks, a reader forgets to.
func partialLockRacy(g *sched.G) {
	g.Call("refreshConfig", "partial.go", 1, func() {
		conf := sched.NewVar[string](g, "conf")
		mu := sched.NewMutex(g, "confMu")
		g.Go("refreshConfig.func1", func(g *sched.G) {
			g.Call("refreshConfig.func1", "partial.go", 4, func() {
				mu.Lock(g)
				conf.Store(g, "v2")
				mu.Unlock(g)
			})
		})
		g.Line(9)
		conf.Load(g) // lock forgotten here
	})
}

func partialLockFixed(g *sched.G) {
	g.Call("refreshConfig", "partial.go", 1, func() {
		conf := sched.NewVar[string](g, "conf")
		mu := sched.NewMutex(g, "confMu")
		done := sched.NewChan[int](g, "done", 1)
		g.Go("refreshConfig.func1", func(g *sched.G) {
			g.Call("refreshConfig.func1", "partial.go", 4, func() {
				mu.Lock(g)
				conf.Store(g, "v2")
				mu.Unlock(g)
				done.Send(g, 1)
			})
		})
		g.Line(9)
		mu.Lock(g)
		conf.Load(g)
		mu.Unlock(g)
		done.Recv(g)
	})
}

// prematureUnlockRacy: the critical section is cut short, leaving the
// last access outside it.
func prematureUnlockRacy(g *sched.G) {
	g.Call("drainQueue", "unlock.go", 1, func() {
		pending := sched.NewVar[int](g, "pending")
		mu := sched.NewMutex(g, "qMu")
		wg := sched.NewWaitGroup(g, "wg")
		for i := 0; i < 2; i++ {
			wg.Add(g, 1)
			g.Go("drainQueue.func1", func(g *sched.G) {
				g.Call("drainQueue.func1", "unlock.go", 5, func() {
					mu.Lock(g)
					n := pending.Load(g)
					mu.Unlock(g) // too early
					pending.Store(g, n+1)
				})
				wg.Done(g)
			})
		}
		wg.Wait(g)
	})
}

func prematureUnlockFixed(g *sched.G) {
	g.Call("drainQueue", "unlock.go", 1, func() {
		pending := sched.NewVar[int](g, "pending")
		mu := sched.NewMutex(g, "qMu")
		wg := sched.NewWaitGroup(g, "wg")
		for i := 0; i < 2; i++ {
			wg.Add(g, 1)
			g.Go("drainQueue.func1", func(g *sched.G) {
				g.Call("drainQueue.func1", "unlock.go", 5, func() {
					mu.Lock(g)
					n := pending.Load(g)
					pending.Store(g, n+1)
					mu.Unlock(g)
				})
				wg.Done(g)
			})
		}
		wg.Wait(g)
	})
}

// rlockMutationRacy models Listing 11: updateGate holds only the read
// lock yet flips g.ready (and performs a non-idempotent side effect).
func rlockMutationRacy(g *sched.G) {
	g.Call("healthCheck", "listing11.go", 1, func() {
		ready := sched.NewVar[bool](g, "g.ready")
		mu := sched.NewRWMutex(g, "g.mutex")
		wg := sched.NewWaitGroup(g, "wg")
		for i := 0; i < 2; i++ {
			wg.Add(g, 1)
			g.Go("updateGate", func(g *sched.G) {
				g.Call("(*HealthGate).updateGate", "listing11.go", 2, func() {
					mu.RLock(g)
					g.Line(6)
					ready.Store(g, true) // concurrent writes under RLock
					mu.RUnlock(g)
				})
				wg.Done(g)
			})
		}
		wg.Wait(g)
	})
}

// rlockMutationFixed upgrades to the write lock around the mutation.
func rlockMutationFixed(g *sched.G) {
	g.Call("healthCheck", "listing11.go", 1, func() {
		ready := sched.NewVar[bool](g, "g.ready")
		mu := sched.NewRWMutex(g, "g.mutex")
		wg := sched.NewWaitGroup(g, "wg")
		for i := 0; i < 2; i++ {
			wg.Add(g, 1)
			g.Go("updateGate", func(g *sched.G) {
				g.Call("(*HealthGate).updateGate", "listing11.go", 2, func() {
					mu.Lock(g)
					g.Line(6)
					ready.Store(g, true)
					mu.Unlock(g)
				})
				wg.Done(g)
			})
		}
		wg.Wait(g)
	})
}

// apiContractRacy: Cache.Incr is documented thread-safe; two handler
// goroutines trust the contract, but the implementation is bare.
func apiContractRacy(g *sched.G) {
	g.Call("handleBatch", "library.go", 1, func() {
		hits := sched.NewVar[int](g, "api.cache.hits")
		incr := func(g *sched.G) {
			g.Call("(*Cache).Incr", "library.go", 30, func() {
				hits.Update(g, func(x int) int { return x + 1 })
			})
		}
		for i := 0; i < 2; i++ {
			g.Go("handler", func(g *sched.G) {
				g.Call("handleBatch.func1", "server.go", 12, func() {
					incr(g)
				})
			})
		}
	})
}

func apiContractFixed(g *sched.G) {
	g.Call("handleBatch", "library.go", 1, func() {
		hits := sched.NewVar[int](g, "api.cache.hits")
		mu := sched.NewMutex(g, "cache.mu")
		wg := sched.NewWaitGroup(g, "wg")
		incr := func(g *sched.G) {
			g.Call("(*Cache).Incr", "library.go", 30, func() {
				mu.Lock(g)
				hits.Update(g, func(x int) int { return x + 1 })
				mu.Unlock(g)
			})
		}
		for i := 0; i < 2; i++ {
			wg.Add(g, 1)
			g.Go("handler", func(g *sched.G) {
				g.Call("handleBatch.func1", "server.go", 12, func() {
					incr(g)
				})
				wg.Done(g)
			})
		}
		wg.Wait(g)
	})
}

// globalMutationRacy: handlers mutate a package-level default.
func globalMutationRacy(g *sched.G) {
	g.Call("serve", "globals.go", 1, func() {
		defaultTimeout := sched.NewVarOf(g, "global.defaultTimeout", 30)
		for i := 0; i < 2; i++ {
			i := i
			g.Go("handler", func(g *sched.G) {
				g.Call("applyOverride", "globals.go", 9, func() {
					defaultTimeout.Store(g, 10+i)
				})
			})
		}
	})
}

func globalMutationFixed(g *sched.G) {
	g.Call("serve", "globals.go", 1, func() {
		wg := sched.NewWaitGroup(g, "wg")
		for i := 0; i < 2; i++ {
			i := i
			wg.Add(g, 1)
			g.Go("handler", func(g *sched.G) {
				g.Call("applyOverride", "globals.go", 9, func() {
					// per-request configuration, not a global
					local := sched.NewVar[int](g, "requestTimeout")
					local.Store(g, 10+i)
				})
				wg.Done(g)
			})
		}
		wg.Wait(g)
	})
}

// partialAtomicsRacy: §4.9.2 — atomic write, plain read.
func partialAtomicsRacy(g *sched.G) {
	g.Call("pollState", "atomics.go", 1, func() {
		state := sched.NewAtomic(g, "state")
		wg := sched.NewWaitGroup(g, "wg")
		wg.Add(g, 1)
		g.Go("pollState.func1", func(g *sched.G) {
			g.Call("pollState.func1", "atomics.go", 4, func() {
				state.Store(g, 1) // atomic.StoreInt64
			})
			wg.Done(g)
		})
		g.Line(9)
		state.PlainLoad(g) // forgot atomic.LoadInt64
		wg.Wait(g)
	})
}

func partialAtomicsFixed(g *sched.G) {
	g.Call("pollState", "atomics.go", 1, func() {
		state := sched.NewAtomic(g, "state")
		wg := sched.NewWaitGroup(g, "wg")
		wg.Add(g, 1)
		g.Go("pollState.func1", func(g *sched.G) {
			g.Call("pollState.func1", "atomics.go", 4, func() {
				state.Store(g, 1)
			})
			wg.Done(g)
		})
		g.Line(9)
		state.Load(g) // atomic on both sides
		wg.Wait(g)
	})
}

// statementOrderRacy: the ready flag is set *before* the data write,
// so a reader that sees ready=1 still races on the data.
func statementOrderRacy(g *sched.G) {
	g.Call("initService", "order.go", 1, func() {
		data := sched.NewVar[string](g, "payload(init)")
		readyFlag := sched.NewAtomic(g, "ready")
		g.Go("initService.func1", func(g *sched.G) {
			g.Call("initService.func1", "order.go", 4, func() {
				readyFlag.Store(g, 1)      // wrong order: published first
				data.Store(g, "populated") // initialized second
			})
		})
		g.Line(10)
		if readyFlag.Load(g) == 1 {
			data.Load(g) // flag said ready, but the write may be in flight
		}
	})
}

func statementOrderFixed(g *sched.G) {
	g.Call("initService", "order.go", 1, func() {
		data := sched.NewVar[string](g, "payload(init)")
		readyFlag := sched.NewAtomic(g, "ready")
		g.Go("initService.func1", func(g *sched.G) {
			g.Call("initService.func1", "order.go", 4, func() {
				data.Store(g, "populated") // initialize first
				readyFlag.Store(g, 1)      // publish second
			})
		})
		g.Line(10)
		if readyFlag.Load(g) == 1 {
			data.Load(g) // release/acquire through the flag orders this
		}
	})
}

// metricsRacy: fire-and-forget stats, the §4.10 "racy metrics/logging"
// category.
func metricsRacy(g *sched.G) {
	g.Call("serveRequests", "metrics.go", 1, func() {
		requests := sched.NewVar[int](g, "metrics.requests")
		for i := 0; i < 2; i++ {
			g.Go("handler", func(g *sched.G) {
				g.Call("recordMetric", "metrics.go", 7, func() {
					requests.Update(g, func(x int) int { return x + 1 })
				})
			})
		}
		g.Line(12)
		g.Call("reportMetrics", "metrics.go", 12, func() {
			requests.Load(g)
		})
	})
}

func metricsFixed(g *sched.G) {
	g.Call("serveRequests", "metrics.go", 1, func() {
		requests := sched.NewAtomic(g, "metrics.requests")
		wg := sched.NewWaitGroup(g, "wg")
		for i := 0; i < 2; i++ {
			wg.Add(g, 1)
			g.Go("handler", func(g *sched.G) {
				g.Call("recordMetric", "metrics.go", 7, func() {
					requests.Add(g, 1)
				})
				wg.Done(g)
			})
		}
		wg.Wait(g)
		g.Line(12)
		g.Call("reportMetrics", "metrics.go", 12, func() {
			requests.Load(g)
		})
	})
}

// complexRacy: three components — a registrar locks the registry map,
// a dispatcher iterates it WITHOUT the lock (it lives in another
// package and predates the lock), and a worker triggers dispatch.
func complexRacy(g *sched.G) {
	g.Call("startSystem", "registry.go", 1, func() {
		callbacks := sched.NewMap[string, int](g, "registry.callbacks")
		mu := sched.NewMutex(g, "registry.mu")
		g.Go("registrar", func(g *sched.G) {
			g.Call("(*Registry).Register", "registry.go", 14, func() {
				mu.Lock(g)
				callbacks.Put(g, "onCommit", 1)
				mu.Unlock(g)
			})
		})
		g.Go("dispatcher", func(g *sched.G) {
			g.Call("(*Dispatcher).Fire", "dispatch.go", 22, func() {
				g.Call("(*EventBus).fanout", "bus.go", 40, func() {
					callbacks.Len(g) // iterates without the registry lock
					callbacks.Get(g, "onCommit")
				})
			})
		})
	})
}

func complexFixed(g *sched.G) {
	g.Call("startSystem", "registry.go", 1, func() {
		callbacks := sched.NewMap[string, int](g, "registry.callbacks")
		mu := sched.NewMutex(g, "registry.mu")
		wg := sched.NewWaitGroup(g, "wg")
		wg.Add(g, 2)
		g.Go("registrar", func(g *sched.G) {
			g.Call("(*Registry).Register", "registry.go", 14, func() {
				mu.Lock(g)
				callbacks.Put(g, "onCommit", 1)
				mu.Unlock(g)
			})
			wg.Done(g)
		})
		g.Go("dispatcher", func(g *sched.G) {
			g.Call("(*Dispatcher).Fire", "dispatch.go", 22, func() {
				g.Call("(*EventBus).fanout", "bus.go", 40, func() {
					mu.Lock(g)
					callbacks.Len(g)
					callbacks.Get(g, "onCommit")
					mu.Unlock(g)
				})
			})
			wg.Done(g)
		})
		wg.Wait(g)
	})
}
