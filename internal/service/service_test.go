package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gorace/internal/corpus"
	"gorace/internal/monorepo"
	"gorace/internal/patterns"
	"gorace/internal/sweep"
)

// seedStore builds a store with two recorded runs over real campaign
// output — including saved defining traces, so replay endpoints have
// something to chew on — and returns it with the key of one defect
// that carries a trace.
func seedStore(t testing.TB) (*corpus.Store, string) {
	t.Helper()
	dir := t.TempDir()
	store, err := corpus.Open(filepath.Join(dir, "corpus.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })

	p, ok := patterns.ByID("capture-loop-index")
	if !ok {
		t.Fatal("pattern capture-loop-index missing")
	}
	units := []sweep.Unit{
		{ID: "svc-a/TestLoop", Program: p.Racy, Strategy: "random", Runs: 8, MaxSteps: 1 << 16, Record: true},
		{ID: "svc-b/TestLoop", Program: p.Racy, Strategy: "pct", Runs: 8, BaseSeed: 100, MaxSteps: 1 << 16, Record: true},
	}
	for i, runID := range []string{"run-001", "run-002"} {
		base := int64(i * 1000)
		for u := range units {
			units[u].BaseSeed = base + int64(u)*100
		}
		aggs, _, err := sweep.New().Run(units, func() sweep.Aggregator {
			return corpus.NewCollector(runID,
				corpus.WithRunLabel("seed"),
				corpus.WithTraceDir(filepath.Join(dir, "traces")))
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := aggs[0].(*corpus.Collector).AppendTo(store); err != nil {
			t.Fatal(err)
		}
	}

	var traced string
	for _, rec := range store.Records() {
		if rec.TracePath != "" {
			traced = rec.Key
			break
		}
	}
	if traced == "" {
		t.Fatal("seed campaign produced no defect with a saved trace")
	}
	return store, traced
}

func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = log.New(io.Discard, "", 0)
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Drain(ctx)
	})
	return svc, ts
}

func get(t testing.TB, url string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

func post(t testing.TB, url, body string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b, resp.Header
}

func TestReadEndpoints(t *testing.T) {
	store, traced := seedStore(t)
	_, ts := newTestServer(t, Config{Store: store})

	status, body, _ := get(t, ts.URL+"/healthz")
	if status != http.StatusOK || !strings.Contains(string(body), `"status": "ok"`) {
		t.Fatalf("healthz = %d %s", status, body)
	}

	var stats statsResponse
	status, body, _ = get(t, ts.URL+"/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("stats = %d %s", status, body)
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Defects == 0 || len(stats.RunHistory) != 2 {
		t.Fatalf("stats: %+v", stats)
	}

	// report.Race marshals through a custom wire form with no
	// unmarshaler, so probes decode only the envelope fields.
	type racesProbe struct {
		Generation uint64
		Total      int
		Returned   int
	}
	var races racesProbe
	status, body, _ = get(t, ts.URL+"/v1/races?limit=0")
	if status != http.StatusOK {
		t.Fatalf("races = %d %s", status, body)
	}
	if err := json.Unmarshal(body, &races); err != nil {
		t.Fatal(err)
	}
	if races.Total != stats.Defects || races.Returned != races.Total {
		t.Fatalf("races total %d returned %d, stats defects %d", races.Total, races.Returned, stats.Defects)
	}

	// Unit filter narrows; unknown unit matches nothing.
	status, body, _ = get(t, ts.URL+"/v1/races?unit=svc-a/TestLoop&limit=0")
	var filtered racesProbe
	json.Unmarshal(body, &filtered)
	if status != http.StatusOK || filtered.Total == 0 || filtered.Total >= races.Total {
		t.Fatalf("unit filter: %d of %d (status %d)", filtered.Total, races.Total, status)
	}

	status, body, _ = get(t, ts.URL+"/v1/races/"+traced)
	if status != http.StatusOK || !strings.Contains(string(body), `"hasTrace": true`) {
		t.Fatalf("race by key = %d %s", status, body)
	}
	status, _, _ = get(t, ts.URL+"/v1/races/no/such/key")
	if status != http.StatusNotFound {
		t.Fatalf("missing key = %d, want 404", status)
	}

	status, body, _ = get(t, ts.URL+"/v1/diff?a=run-001&b=run-002")
	if status != http.StatusOK {
		t.Fatalf("diff = %d %s", status, body)
	}
	status, _, _ = get(t, ts.URL+"/v1/diff?a=run-001&b=run-999")
	if status != http.StatusNotFound {
		t.Fatalf("diff unknown run = %d, want 404", status)
	}
	status, _, _ = get(t, ts.URL+"/v1/diff")
	if status != http.StatusBadRequest {
		t.Fatalf("diff without runs = %d, want 400", status)
	}

	var replay struct {
		Reproduced bool
		Events     int
	}
	status, body, _ = get(t, ts.URL+"/v1/replay/"+traced)
	if status != http.StatusOK {
		t.Fatalf("replay = %d %s", status, body)
	}
	if err := json.Unmarshal(body, &replay); err != nil {
		t.Fatal(err)
	}
	if !replay.Reproduced || replay.Events == 0 {
		t.Fatalf("replay did not reproduce: %+v", replay)
	}

	status, _, _ = get(t, ts.URL+"/v1/stats") // anything non-POST on a POST route
	if s, _, _ := post(t, ts.URL+"/v1/stats", "{}"); s != http.StatusMethodNotAllowed {
		t.Fatalf("POST stats = %d, want 405", s)
	}
	_ = status
}

func TestResponseCacheServesIdenticalBytes(t *testing.T) {
	store, traced := seedStore(t)
	_, ts := newTestServer(t, Config{Store: store})

	for _, path := range []string{"/v1/stats", "/v1/races?limit=0", "/v1/races/" + traced, "/v1/replay/" + traced} {
		_, first, h1 := get(t, ts.URL+path)
		_, second, h2 := get(t, ts.URL+path)
		if h1.Get("X-Cache") != "miss" || h2.Get("X-Cache") != "hit" {
			t.Fatalf("%s: X-Cache %q then %q, want miss then hit", path, h1.Get("X-Cache"), h2.Get("X-Cache"))
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("%s: cached bytes differ from rendered bytes", path)
		}
		if h1.Get("X-Corpus-Generation") == "" || h1.Get("X-Corpus-Generation") != h2.Get("X-Corpus-Generation") {
			t.Fatalf("%s: generation header %q then %q", path, h1.Get("X-Corpus-Generation"), h2.Get("X-Corpus-Generation"))
		}
	}
}

func TestJobLifecycle(t *testing.T) {
	store, _ := seedStore(t)
	_, ts := newTestServer(t, Config{Store: store, JobWorkers: 2, JobParallelism: 2})

	spec := `{"patterns":["capture-loop-index"],"strategies":["random"],"seeds":6}`
	status, body, h := post(t, ts.URL+"/v1/jobs", spec)
	if status != http.StatusAccepted {
		t.Fatalf("submit = %d %s", status, body)
	}
	var sub submitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if h.Get("Location") != "/v1/jobs/"+sub.ID {
		t.Fatalf("Location = %q", h.Get("Location"))
	}

	st := waitForJob(t, ts.URL, sub.ID)
	if st.State != StateDone {
		t.Fatalf("job state = %s (%s)", st.State, st.Error)
	}
	if st.Progress.Runs != 6 || st.Progress.DoneShards != st.Progress.TotalShards {
		t.Fatalf("job progress: %+v", st.Progress)
	}

	status, body, h = get(t, ts.URL+"/v1/jobs/"+sub.ID+"/results")
	if status != http.StatusOK || h.Get("Content-Type") != "application/x-ndjson" {
		t.Fatalf("results = %d (%s)", status, h.Get("Content-Type"))
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) < 3 || !strings.Contains(lines[0], `"type":"summary"`) {
		t.Fatalf("results stream:\n%s", body)
	}

	// The whole-campaign engine is deterministic, so an identical spec
	// yields byte-identical results.
	status, body2, _ := post(t, ts.URL+"/v1/jobs", spec)
	var sub2 submitResponse
	json.Unmarshal(body2, &sub2)
	if status != http.StatusAccepted {
		t.Fatalf("second submit = %d", status)
	}
	if st2 := waitForJob(t, ts.URL, sub2.ID); st2.State != StateDone {
		t.Fatalf("second job state = %s", st2.State)
	}
	_, res1, _ := get(t, ts.URL+"/v1/jobs/"+sub.ID+"/results")
	_, res2, _ := get(t, ts.URL+"/v1/jobs/"+sub2.ID+"/results")
	if !bytes.Equal(res1, res2) {
		t.Fatalf("identical specs produced different results:\n%s\nvs\n%s", res1, res2)
	}

	// Bad specs bounce at the door.
	for _, bad := range []string{
		`{"patterns":["no-such-pattern"]}`,
		`{"detector":"no-such-detector"}`,
		`{"strategies":["no-such-strategy"]}`,
		`{"variant":"maybe"}`,
		`{"seeds":100000}`,
		`{"bogus":true}`,
	} {
		if s, b, _ := post(t, ts.URL+"/v1/jobs", bad); s != http.StatusBadRequest {
			t.Fatalf("spec %s = %d %s, want 400", bad, s, b)
		}
	}

	if s, _, _ := get(t, ts.URL+"/v1/jobs/job-999999"); s != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", s)
	}
}

// TestJobRacegen submits a racegen-mode job: the generation loop runs
// on the local engine, keepers land as racegen-prefixed defects, and
// an identical spec reproduces byte-identical results.
func TestJobRacegen(t *testing.T) {
	store, _ := seedStore(t)
	_, ts := newTestServer(t, Config{Store: store, JobWorkers: 1, JobParallelism: 2})

	spec := `{"mode":"racegen","rounds":1,"budget":4,"seeds":3}`
	status, body, _ := post(t, ts.URL+"/v1/jobs", spec)
	if status != http.StatusAccepted {
		t.Fatalf("submit = %d %s", status, body)
	}
	var sub submitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	st := waitForJob(t, ts.URL, sub.ID)
	if st.State != StateDone {
		t.Fatalf("job state = %s (%s)", st.State, st.Error)
	}

	status, res1, _ := get(t, ts.URL+"/v1/jobs/"+sub.ID+"/results")
	if status != http.StatusOK {
		t.Fatalf("results = %d", status)
	}
	if !bytes.Contains(res1, []byte(`"racegen:`)) {
		t.Fatalf("results carry no racegen-prefixed defects:\n%s", res1)
	}
	if !bytes.Contains(res1, []byte(`racegen/round-1`)) {
		t.Fatalf("results carry no round rows:\n%s", res1)
	}

	status, body2, _ := post(t, ts.URL+"/v1/jobs", spec)
	if status != http.StatusAccepted {
		t.Fatalf("second submit = %d %s", status, body2)
	}
	var sub2 submitResponse
	json.Unmarshal(body2, &sub2)
	if st2 := waitForJob(t, ts.URL, sub2.ID); st2.State != StateDone {
		t.Fatalf("second job state = %s (%s)", st2.State, st2.Error)
	}
	_, res2, _ := get(t, ts.URL+"/v1/jobs/"+sub2.ID+"/results")
	if !bytes.Equal(res1, res2) {
		t.Fatalf("identical racegen specs produced different results:\n%s\nvs\n%s", res1, res2)
	}

	// Mode validation bounces at the door.
	for _, bad := range []string{
		`{"mode":"generate"}`,
		`{"mode":"racegen","patterns":["capture-loop-index"]}`,
		`{"mode":"racegen","rounds":-1}`,
		`{"mode":"racegen","seeds":100000}`,
	} {
		if s, b, _ := post(t, ts.URL+"/v1/jobs", bad); s != http.StatusBadRequest {
			t.Fatalf("spec %s = %d %s, want 400", bad, s, b)
		}
	}
}

// TestJobInstrumentedProgram sweeps an instrumented program (a
// prog:<name> spec entry) next to a synthetic pattern, and checks
// both bad-program rejections.
func TestJobInstrumentedProgram(t *testing.T) {
	store, _ := seedStore(t)
	_, ts := newTestServer(t, Config{Store: store, JobWorkers: 1, JobParallelism: 2})

	spec := `{"patterns":["prog:metrics-counter","capture-loop-index"],"strategies":["random"],"seeds":6}`
	status, body, _ := post(t, ts.URL+"/v1/jobs", spec)
	if status != http.StatusAccepted {
		t.Fatalf("submit = %d %s", status, body)
	}
	var sub submitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if st := waitForJob(t, ts.URL, sub.ID); st.State != StateDone {
		t.Fatalf("job state = %s (%s)", st.State, st.Error)
	}
	_, res, _ := get(t, ts.URL+"/v1/jobs/"+sub.ID+"/results")
	if !strings.Contains(string(res), `"unit":"prog:metrics-counter/random"`) {
		t.Fatalf("results missing program unit:\n%s", res)
	}
	if !strings.Contains(string(res), `"racy":`) {
		t.Fatalf("results missing racy counts:\n%s", res)
	}

	if s, b, _ := post(t, ts.URL+"/v1/jobs", `{"patterns":["prog:no-such-program"]}`); s != http.StatusBadRequest {
		t.Fatalf("unknown program spec = %d %s, want 400", s, b)
	}
}

func waitForJob(t testing.TB, base, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, body, _ := get(t, base+"/v1/jobs/"+id)
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("job status decode: %v (%s)", err, body)
		}
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestBackpressure exercises the bounded queue directly: with no
// workers draining it, the depth'th+1 submit reports ErrQueueFull, and
// after drain begins submits report ErrDraining.
func TestBackpressure(t *testing.T) {
	m := newJobManager(0, 2, 1, 512, 64, log.New(io.Discard, "", 0))
	spec := JobSpec{Patterns: []string{"capture-loop-index"}, Strategies: []string{"random"}, Seeds: 1}
	if _, err := m.Submit(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(spec); err != ErrQueueFull {
		t.Fatalf("third submit err = %v, want ErrQueueFull", err)
	}
	if queued, _ := m.Counts(); queued != 2 {
		t.Fatalf("queued = %d, want 2", queued)
	}
	if err := m.drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(spec); err != ErrDraining {
		t.Fatalf("submit after drain err = %v, want ErrDraining", err)
	}
}

// TestBackpressureHTTP pins the wire mapping: 429 + Retry-After.
func TestBackpressureHTTP(t *testing.T) {
	store, _ := seedStore(t)
	svc, ts := newTestServer(t, Config{Store: store, JobWorkers: 1, QueueDepth: 1, JobParallelism: 1})

	// Saturate: one long job occupies the worker, one fills the queue;
	// keep submitting until the full queue answers 429.
	long := `{"seeds":64}`
	saw429 := false
	var hdr http.Header
	for i := 0; i < 20 && !saw429; i++ {
		status, _, h := post(t, ts.URL+"/v1/jobs", long)
		switch status {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			saw429, hdr = true, h
		default:
			t.Fatalf("submit %d = %d", i, status)
		}
	}
	if !saw429 {
		t.Fatal("queue never filled; backpressure path not exercised")
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Drain with an immediate deadline: the in-flight campaigns are
	// cancelled and marked failed rather than blocking shutdown.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if err := svc.Drain(ctx); err == nil {
		t.Log("drain finished inside the deadline (jobs were fast); cancellation path not forced")
	}
	if s, _, _ := post(t, ts.URL+"/v1/jobs", long); s != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain = %d, want 503", s)
	}
}

func TestNightlyPublish(t *testing.T) {
	store, _ := seedStore(t)
	repo := monorepo.Generate(2, 2, 0.8, 42)
	svc, ts := newTestServer(t, Config{Store: store, Repo: repo})

	genBefore := svc.View().Generation()
	status, body, _ := post(t, ts.URL+"/v1/nightly", `{"runId":"run-003","seed":7}`)
	if status != http.StatusOK {
		t.Fatalf("nightly = %d %s", status, body)
	}
	var resp nightlyResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.RunID != "run-003" || resp.Executions != 4 {
		t.Fatalf("nightly response: %+v", resp)
	}
	if svc.View().Generation() <= genBefore {
		t.Fatal("nightly publish did not advance the generation")
	}
	if !svc.View().HasRun("run-003") {
		t.Fatal("published snapshot missing the nightly run")
	}

	// Same run id again: refused, nothing double-counted.
	status, _, _ = post(t, ts.URL+"/v1/nightly", `{"runId":"run-003","seed":7}`)
	if status != http.StatusConflict {
		t.Fatalf("duplicate nightly = %d, want 409", status)
	}
	status, _, _ = post(t, ts.URL+"/v1/nightly", `{"runId":"","seed":7}`)
	if status != http.StatusBadRequest {
		t.Fatalf("empty run id = %d, want 400", status)
	}
}

func TestNightlyWithoutRepo(t *testing.T) {
	store, _ := seedStore(t)
	_, ts := newTestServer(t, Config{Store: store})
	status, _, _ := post(t, ts.URL+"/v1/nightly", `{"runId":"run-009"}`)
	if status != http.StatusBadRequest {
		t.Fatalf("nightly without repo = %d, want 400", status)
	}
}

func TestCacheBoundsAndPrune(t *testing.T) {
	c := newCache(2)
	c.put(cacheKey(1, "/a", ""), 1, []byte("a"))
	c.put(cacheKey(1, "/b", ""), 1, []byte("b"))
	c.put(cacheKey(1, "/c", ""), 1, []byte("c")) // evicts /a (LRU)
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if _, ok := c.get(cacheKey(1, "/a", "")); ok {
		t.Fatal("LRU eviction failed")
	}
	if got, ok := c.get(cacheKey(1, "/c", "")); !ok || string(got) != "c" {
		t.Fatalf("get /c = %q %v", got, ok)
	}
	c.put(cacheKey(2, "/d", ""), 2, []byte("d"))
	c.prune(2)
	if c.len() != 1 {
		t.Fatalf("after prune len = %d, want 1", c.len())
	}
	if _, ok := c.get(cacheKey(2, "/d", "")); !ok {
		t.Fatal("prune dropped the current generation")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without a store succeeded")
	}
	store, _ := seedStore(t)
	svc, err := New(Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Drain(context.Background())
	if svc.View() == nil || svc.View().Len() == 0 {
		t.Fatal("initial snapshot not published")
	}
	if fmt.Sprint(svc.View().Generation()) == "0" {
		t.Fatal("seeded store at generation 0")
	}
}

// TestFinishedJobRetention: the completed-job table is bounded like
// every other buffer — oldest finished jobs are evicted and answer
// 404 once the retention cap is exceeded.
func TestFinishedJobRetention(t *testing.T) {
	store, _ := seedStore(t)
	_, ts := newTestServer(t, Config{Store: store, JobWorkers: 1, JobsRetained: 2})

	spec := `{"patterns":["capture-loop-index"],"strategies":["random"],"seeds":2}`
	var ids []string
	for i := 0; i < 3; i++ {
		status, body, _ := post(t, ts.URL+"/v1/jobs", spec)
		if status != http.StatusAccepted {
			t.Fatalf("submit %d = %d %s", i, status, body)
		}
		var sub submitResponse
		json.Unmarshal(body, &sub)
		ids = append(ids, sub.ID)
		if st := waitForJob(t, ts.URL, sub.ID); st.State != StateDone {
			t.Fatalf("job %s state = %s", sub.ID, st.State)
		}
	}
	if s, _, _ := get(t, ts.URL+"/v1/jobs/"+ids[0]); s != http.StatusNotFound {
		t.Fatalf("oldest finished job = %d, want 404 after eviction", s)
	}
	for _, id := range ids[1:] {
		if s, _, _ := get(t, ts.URL+"/v1/jobs/"+id); s != http.StatusOK {
			t.Fatalf("retained job %s = %d, want 200", id, s)
		}
	}
}

// TestDrainQuiescesNightly: after Drain, nightly publishes are
// refused (503 on the wire) and nothing can append to the store —
// the property that makes closing the store after Drain safe.
func TestDrainQuiescesNightly(t *testing.T) {
	store, _ := seedStore(t)
	repo := monorepo.Generate(2, 2, 0.8, 42)
	svc, ts := newTestServer(t, Config{Store: store, Repo: repo})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	genAfterDrain := store.Generation()
	if _, err := svc.PublishNightly("run-009", 1); err != ErrDraining {
		t.Fatalf("PublishNightly after drain err = %v, want ErrDraining", err)
	}
	if status, _, _ := post(t, ts.URL+"/v1/nightly", `{"runId":"run-009","seed":1}`); status != http.StatusServiceUnavailable {
		t.Fatalf("nightly after drain = %d, want 503", status)
	}
	if store.Generation() != genAfterDrain {
		t.Fatal("store mutated after Drain returned")
	}
}
