package service

import (
	"container/list"
	"strconv"
	"sync"
)

// cache is the per-endpoint response cache. Keys embed the snapshot
// generation they were rendered from, so a hit is *provably* the same
// bytes a recompute would produce — equal generations of one store
// imply identical folded state — and publishing a new snapshot
// invalidates everything implicitly by changing the key prefix.
// Entries from superseded generations are dropped eagerly on publish
// (prune) and the total entry count is LRU-bounded, so a burst of
// distinct queries cannot grow the cache without limit.
type cache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
}

// cacheEntry is one rendered response body.
type cacheEntry struct {
	key  string
	gen  uint64
	body []byte
}

func newCache(max int) *cache {
	return &cache{
		max:     max,
		entries: make(map[string]*list.Element),
		lru:     list.New(),
	}
}

// cacheKey renders the (generation, path, query) triple.
func cacheKey(gen uint64, path, rawQuery string) string {
	return strconv.FormatUint(gen, 10) + "\x00" + path + "\x00" + rawQuery
}

// get returns the cached body for key, marking it recently used.
func (c *cache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put stores a rendered body, evicting the least recently used entry
// beyond the bound. Storing the same key twice keeps the first body;
// they are identical by construction (same generation, same query).
func (c *cache) put(key string, gen uint64, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, gen: gen, body: body})
	for c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// prune drops every entry rendered from a generation other than gen —
// called when a new snapshot is published, since superseded
// generations can never be requested again.
func (c *cache) prune(gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.lru.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*cacheEntry); e.gen != gen {
			c.lru.Remove(el)
			delete(c.entries, e.key)
		}
		el = next
	}
}

// len returns the number of cached entries.
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
