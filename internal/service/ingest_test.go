package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"gorace/internal/stream"
	"gorace/internal/trace"
)

// synthStream renders a small synthetic trace stream for ingest tests.
func synthStream(t testing.TB, spec stream.SynthSpec) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := spec.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// postIngest POSTs body to /v1/ingest with the given query string and
// returns the status code and decoded error-or-result body.
func postIngest(t testing.TB, url, query string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/ingest?"+query, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestIngestEndpoint drives the happy path end to end: a binary
// stream POSTs in, defects land in the corpus under the given run id,
// and the response reports what the detector saw.
func TestIngestEndpoint(t *testing.T) {
	store, _ := seedStore(t)
	_, ts := newTestServer(t, Config{Store: store})
	data := synthStream(t, stream.SynthSpec{Events: 30000, Planted: 4, Seed: 11})

	status, body := postIngest(t, ts.URL, "run=ingest-001&unit=svc/stream&seed=9", data)
	if status != http.StatusOK {
		t.Fatalf("ingest = %d: %s", status, body)
	}
	var res struct {
		Run        string `json:"run"`
		Detector   string `json:"detector"`
		Events     uint64 `json:"events"`
		Reports    int    `json:"reports"`
		NewDefects int    `json:"new_defects"`
	}
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Run != "ingest-001" || res.Detector != "fasttrack" {
		t.Fatalf("response attribution wrong: %+v", res)
	}
	if res.Events != 30000 || res.Reports == 0 || res.NewDefects == 0 {
		t.Fatalf("stream not detected: %+v", res)
	}

	// The fold is queryable immediately.
	rstatus, rbody, _ := get(t, ts.URL+"/v1/races?unit=svc/stream&limit=0")
	if rstatus != http.StatusOK {
		t.Fatalf("races after ingest = %d", rstatus)
	}
	if !bytes.Contains(rbody, []byte("svc/stream")) {
		t.Fatalf("ingested defects not served: %s", rbody)
	}

	// Same run id again: conflict, nothing double-folded.
	status, body = postIngest(t, ts.URL, "run=ingest-001", data)
	if status != http.StatusConflict {
		t.Fatalf("duplicate run = %d: %s", status, body)
	}
}

// TestIngestEndpointValidation covers the request-shape failures: the
// method gate, the required run id, unknown detectors, and a detector
// that cannot hold a ceiling.
func TestIngestEndpointValidation(t *testing.T) {
	store, _ := seedStore(t)
	_, ts := newTestServer(t, Config{Store: store, IngestCeilingMiB: 16})
	data := synthStream(t, stream.SynthSpec{Events: 1000, Planted: 1, Seed: 1})

	resp, err := http.Get(ts.URL + "/v1/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/ingest = %d, want 405", resp.StatusCode)
	}

	if status, body := postIngest(t, ts.URL, "", data); status != http.StatusBadRequest {
		t.Fatalf("missing run id = %d: %s", status, body)
	}
	if status, body := postIngest(t, ts.URL, "run=x&detector=no-such", data); status != http.StatusBadRequest {
		t.Fatalf("unknown detector = %d: %s", status, body)
	}
	if status, body := postIngest(t, ts.URL, "run=x&detector=eraser", data); status != http.StatusBadRequest {
		t.Fatalf("non-evictable detector under ceiling = %d: %s", status, body)
	}
	if status, body := postIngest(t, ts.URL, "run=x&seed=abc", data); status != http.StatusBadRequest {
		t.Fatalf("bad seed = %d: %s", status, body)
	}
	// And the ceilinged happy path resolves the paged detector.
	status, body := postIngest(t, ts.URL, "run=ceil-001", data)
	if status != http.StatusOK || !bytes.Contains(body, []byte("fasttrack-paged")) {
		t.Fatalf("ceilinged ingest = %d: %s", status, body)
	}
}

// TestIngestEndpointGarbage: hostile bytes answer 400 with the decode
// error and publish nothing.
func TestIngestEndpointGarbage(t *testing.T) {
	store, _ := seedStore(t)
	svc, ts := newTestServer(t, Config{Store: store})

	data := synthStream(t, stream.SynthSpec{Events: 5000, Planted: 1, Seed: 2})
	truncated := data[:len(data)/2]
	if status, body := postIngest(t, ts.URL, "run=bad-001", truncated); status != http.StatusBadRequest {
		t.Fatalf("truncated stream = %d: %s", status, body)
	}
	if status, body := postIngest(t, ts.URL, "run=bad-002", []byte("GRTB\xff\xff\xff\xff")); status != http.StatusBadRequest {
		t.Fatalf("hostile header = %d: %s", status, body)
	}
	for _, run := range []string{"bad-001", "bad-002"} {
		if svc.View().HasRun(run) {
			t.Fatalf("failed ingest %s landed in the corpus", run)
		}
	}
}

// TestIngestBackpressure: with one ingest slot occupied by a stalled
// stream, the next request answers 429 + Retry-After immediately
// instead of queueing.
func TestIngestBackpressure(t *testing.T) {
	store, _ := seedStore(t)
	_, ts := newTestServer(t, Config{Store: store, IngestStreams: 1})
	data := synthStream(t, stream.SynthSpec{Events: 5000, Planted: 1, Seed: 3})

	pr, pw := io.Pipe()
	started := make(chan struct{})
	finished := make(chan error, 1)
	go func() {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/ingest?run=slow-001", pr)
		if err != nil {
			finished <- err
			return
		}
		close(started)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		finished <- err
	}()
	<-started
	// Feed the header so the handler is committed, then stall.
	if _, err := pw.Write(data[:20]); err != nil {
		t.Fatal(err)
	}
	// Wait for the slot to be taken: the next ingest must bounce.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Post(ts.URL+"/v1/ingest?run=bounced", "application/octet-stream", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("saturated server answered %d, want 429", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Unstall: deliver the rest and let the slow ingest finish.
	if _, err := pw.Write(data[20:]); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if err := <-finished; err != nil {
		t.Fatalf("stalled ingest: %v", err)
	}
}

// TestIngestChunkedTransfer: the endpoint accepts chunked bodies (an
// io.Pipe-backed request has no Content-Length), the production shape
// of a live event stream.
func TestIngestChunkedTransfer(t *testing.T) {
	store, _ := seedStore(t)
	svc, ts := newTestServer(t, Config{Store: store})
	data := synthStream(t, stream.SynthSpec{Events: 20000, Planted: 2, Seed: 4})

	pr, pw := io.Pipe()
	go func() {
		for len(data) > 0 {
			n := 4096
			if n > len(data) {
				n = len(data)
			}
			if _, err := pw.Write(data[:n]); err != nil {
				return
			}
			data = data[n:]
		}
		pw.Close()
	}()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/ingest?run=chunked-001", pr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chunked ingest = %d: %s", resp.StatusCode, body)
	}
	if !svc.View().HasRun("chunked-001") {
		t.Fatal("chunked ingest did not land")
	}
}

// streamedHeader returns a valid streamed-mode header with no events —
// the smallest prefix that commits the decoder to binary mode.
func streamedHeader(t testing.TB) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := trace.NewEncoder(&buf)
	if err := enc.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
