package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"

	"gorace/internal/corpus"
	"gorace/internal/report"
	"gorace/internal/trace"
)

// The HTTP surface. Routing is deliberately plain ServeMux + manual
// method/suffix dispatch so the module keeps building on go1.21
// (pattern-matching mux arrived in 1.22).
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/races", s.handleRaces)
	mux.HandleFunc("/v1/races/", s.handleRaceByKey)
	mux.HandleFunc("/v1/diff", s.handleDiff)
	mux.HandleFunc("/v1/replay/", s.handleReplay)
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/", s.handleJobByID)
	mux.HandleFunc("/v1/nightly", s.handleNightly)
	mux.HandleFunc("/v1/ingest", s.handleIngest)
	if s.cluster != nil {
		mux.HandleFunc("/v1/cluster", s.handleCluster)
		mux.HandleFunc("/v1/cluster/join", s.handleClusterJoin)
		mux.HandleFunc("/v1/cluster/heartbeat", s.handleClusterBeat)
		mux.HandleFunc("/v1/replica", s.handleReplica)
	}
	if s.worker != nil {
		mux.HandleFunc("/v1/shards", s.handleShards)
	}
	return mux
}

// errorBody is the uniform error envelope.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body, _ := json.Marshal(errorBody{Error: fmt.Sprintf(format, args...)})
	w.Write(append(body, '\n'))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encode: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}

func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		writeError(w, http.StatusMethodNotAllowed, "%s requires %s", r.URL.Path, method)
		return false
	}
	return true
}

// cached serves a snapshot-derived GET endpoint through the response
// cache: render computes the response value from the View exactly
// once per (generation, path, query), and every later identical
// request replays the same bytes. render must be a pure function of
// the View and the query — that purity is what the soak test's
// byte-identical assertion pins.
func (s *Server) cached(w http.ResponseWriter, r *http.Request, v *corpus.View, render func() (any, int, error)) {
	key := cacheKey(v.Generation(), r.URL.Path, r.URL.RawQuery)
	w.Header().Set("X-Corpus-Generation", strconv.FormatUint(v.Generation(), 10))
	if body, ok := s.cache.get(key); ok {
		w.Header().Set("X-Cache", "hit")
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
		return
	}
	val, status, err := render()
	if err != nil {
		// Errors are not cached: they carry no generation-stable
		// guarantee (a bad query is cheap to re-reject anyway).
		writeError(w, status, "%s", err.Error())
		return
	}
	body, err := json.MarshalIndent(val, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encode: %v", err)
		return
	}
	body = append(body, '\n')
	s.cache.put(key, v.Generation(), body)
	w.Header().Set("X-Cache", "miss")
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// healthResponse is the /healthz payload.
type healthResponse struct {
	Status      string `json:"status"`
	Role        string `json:"role"`
	Generation  uint64 `json:"generation"`
	Defects     int    `json:"defects"`
	Runs        int    `json:"runs"`
	QueuedJobs  int    `json:"queuedJobs"`
	RunningJobs int    `json:"runningJobs"`
	// LiveWorkers is the coordinator's live-worker count (coordinator
	// mode only).
	LiveWorkers int `json:"liveWorkers,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	v := s.View()
	resp := healthResponse{
		Status: "ok", Role: s.role(), Generation: v.Generation(),
		Defects: v.Len(), Runs: len(v.Runs()),
	}
	if s.jobs != nil {
		resp.QueuedJobs, resp.RunningJobs = s.jobs.Counts()
	}
	if s.cluster != nil {
		resp.LiveWorkers = s.cluster.reg.liveCount()
	}
	writeJSON(w, http.StatusOK, resp)
}

// runJSON is the wire form of one recorded run.
type runJSON struct {
	ID         string `json:"id"`
	Label      string `json:"label,omitempty"`
	Executions int    `json:"executions"`
	Reports    int    `json:"reports"`
}

// statsResponse is the /v1/stats payload: the corpus at a glance.
type statsResponse struct {
	Generation  uint64         `json:"generation"`
	Store       string         `json:"store"`
	Defects     int            `json:"defects"`
	Recurring   int            `json:"recurring"`
	Occurrences uint64         `json:"occurrences"`
	Executions  int            `json:"executions"`
	Reports     int            `json:"reports"`
	Categories  map[string]int `json:"categories"`
	RunHistory  []runJSON      `json:"runHistory"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	v := s.View()
	s.cached(w, r, v, func() (any, int, error) {
		resp := statsResponse{
			Generation: v.Generation(),
			Store:      v.Path(),
			Defects:    v.Len(),
			Categories: make(map[string]int),
		}
		for _, rec := range v.Records() {
			resp.Occurrences += rec.Count
			if len(rec.RunIDs) > 1 {
				resp.Recurring++
			}
			if rec.Category != "" {
				resp.Categories[string(rec.Category)]++
			}
		}
		for _, run := range v.Runs() {
			resp.Executions += run.Executions
			resp.Reports += run.Reports
			resp.RunHistory = append(resp.RunHistory, runJSON{
				ID: run.ID, Label: run.Label,
				Executions: run.Executions, Reports: run.Reports,
			})
		}
		return resp, 0, nil
	})
}

// recordJSON is the wire form of one corpus record. TracePath stays
// server-side; clients get HasTrace plus the /v1/replay endpoint.
type recordJSON struct {
	Key       string      `json:"key"`
	Unit      string      `json:"unit"`
	FirstSeen string      `json:"firstSeen"`
	LastSeen  string      `json:"lastSeen"`
	RunIDs    []string    `json:"runIds"`
	Count     uint64      `json:"count"`
	Category  string      `json:"category,omitempty"`
	Labels    []string    `json:"labels,omitempty"`
	Detector  string      `json:"detector,omitempty"`
	HasTrace  bool        `json:"hasTrace"`
	Race      report.Race `json:"race"`
}

func toRecordJSON(rec corpus.Record) recordJSON {
	out := recordJSON{
		Key: rec.Key, Unit: rec.Unit,
		FirstSeen: rec.FirstSeen(), LastSeen: rec.LastSeen(),
		RunIDs: rec.RunIDs, Count: rec.Count,
		Category: string(rec.Category), Detector: rec.Detector,
		HasTrace: rec.TracePath != "", Race: rec.Race,
	}
	for _, l := range rec.Labels {
		out.Labels = append(out.Labels, string(l))
	}
	return out
}

// racesResponse is the /v1/races payload.
type racesResponse struct {
	Generation uint64       `json:"generation"`
	Total      int          `json:"total"`
	Returned   int          `json:"returned"`
	Races      []recordJSON `json:"races"`
}

func (s *Server) handleRaces(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	v := s.View()
	s.cached(w, r, v, func() (any, int, error) {
		q := r.URL.Query()
		limit := 100
		if raw := q.Get("limit"); raw != "" {
			n, err := strconv.Atoi(raw)
			if err != nil || n < 0 {
				return nil, http.StatusBadRequest, fmt.Errorf("limit %q is not a non-negative integer", raw)
			}
			limit = n
		}
		var recs []corpus.Record
		if q.Get("sort") == "count" {
			recs = v.Top(-1)
		} else {
			recs = v.Records()
		}
		unit, category, run := q.Get("unit"), q.Get("category"), q.Get("run")
		resp := racesResponse{Generation: v.Generation(), Races: []recordJSON{}}
		for _, rec := range recs {
			if unit != "" && rec.Unit != unit {
				continue
			}
			if category != "" && string(rec.Category) != category {
				continue
			}
			if run != "" && !rec.SeenIn(run) {
				continue
			}
			resp.Total++
			if limit == 0 || len(resp.Races) < limit {
				resp.Races = append(resp.Races, toRecordJSON(rec))
			}
		}
		resp.Returned = len(resp.Races)
		return resp, 0, nil
	})
}

// raceResponse is the /v1/races/{id} payload.
type raceResponse struct {
	Generation uint64     `json:"generation"`
	Race       recordJSON `json:"race"`
}

func (s *Server) handleRaceByKey(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	key := strings.TrimPrefix(r.URL.Path, "/v1/races/")
	if key == "" {
		writeError(w, http.StatusBadRequest, "missing race id (try /v1/races for the list)")
		return
	}
	v := s.View()
	s.cached(w, r, v, func() (any, int, error) {
		rec, ok := v.Get(key)
		if !ok {
			return nil, http.StatusNotFound, fmt.Errorf("no defect %q at generation %d", key, v.Generation())
		}
		return raceResponse{Generation: v.Generation(), Race: toRecordJSON(rec)}, 0, nil
	})
}

// diffResponse is the /v1/diff payload.
type diffResponse struct {
	Generation uint64       `json:"generation"`
	RunA       string       `json:"runA"`
	RunB       string       `json:"runB"`
	New        []recordJSON `json:"new"`
	Resolved   []recordJSON `json:"resolved"`
	Recurring  []recordJSON `json:"recurring"`
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	v := s.View()
	s.cached(w, r, v, func() (any, int, error) {
		a, b := r.URL.Query().Get("a"), r.URL.Query().Get("b")
		if a == "" || b == "" {
			return nil, http.StatusBadRequest, fmt.Errorf("diff needs ?a=<runA>&b=<runB>")
		}
		delta, err := v.Diff(a, b)
		if err != nil {
			return nil, http.StatusNotFound, err
		}
		resp := diffResponse{
			Generation: v.Generation(), RunA: a, RunB: b,
			New: []recordJSON{}, Resolved: []recordJSON{}, Recurring: []recordJSON{},
		}
		for _, rec := range delta.New {
			resp.New = append(resp.New, toRecordJSON(rec))
		}
		for _, rec := range delta.Resolved {
			resp.Resolved = append(resp.Resolved, toRecordJSON(rec))
		}
		for _, rec := range delta.Recurring {
			resp.Recurring = append(resp.Recurring, toRecordJSON(rec))
		}
		return resp, 0, nil
	})
}

// replayResponse is the /v1/replay/{id} payload: the stored trace
// re-detected post-facto.
type replayResponse struct {
	Generation uint64        `json:"generation"`
	Key        string        `json:"key"`
	Detector   string        `json:"detector"`
	Events     int           `json:"events"`
	Reproduced bool          `json:"reproduced"`
	Races      []report.Race `json:"races"`
}

func (s *Server) handleReplay(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	key := strings.TrimPrefix(r.URL.Path, "/v1/replay/")
	if key == "" {
		writeError(w, http.StatusBadRequest, "missing race id")
		return
	}
	v := s.View()
	s.cached(w, r, v, func() (any, int, error) {
		rec, ok := v.Get(key)
		if !ok {
			return nil, http.StatusNotFound, fmt.Errorf("no defect %q at generation %d", key, v.Generation())
		}
		if rec.TracePath == "" {
			return nil, http.StatusConflict, fmt.Errorf("defect %q carries no saved trace (campaign ran without a trace dir)", key)
		}
		name := r.URL.Query().Get("detector")
		if name == "" {
			name = rec.Detector
		}
		f, err := os.Open(rec.TracePath)
		if err != nil {
			return nil, http.StatusInternalServerError, fmt.Errorf("open trace: %v", err)
		}
		loaded, err := trace.Load(f)
		f.Close()
		if err != nil {
			return nil, http.StatusInternalServerError, fmt.Errorf("load trace: %v", err)
		}
		races, err := corpus.Replay(loaded, name)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		resp := replayResponse{
			Generation: v.Generation(), Key: key, Detector: name,
			Events: len(loaded.Events), Races: races,
		}
		if resp.Races == nil {
			resp.Races = []report.Race{}
		}
		for _, race := range races {
			if race.Hash() == rec.Race.Hash() {
				resp.Reproduced = true
			}
		}
		return resp, 0, nil
	})
}

// submitResponse is the POST /v1/jobs payload.
type submitResponse struct {
	ID    string `json:"id"`
	State string `json:"state"`
}

// jobsResponse is the GET /v1/jobs payload.
type jobsResponse struct {
	Jobs []JobStatus `json:"jobs"`
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		writeError(w, http.StatusServiceUnavailable, "worker node: submit jobs to the coordinator")
		return
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, jobsResponse{Jobs: s.jobs.List()})
	case http.MethodPost:
		var spec JobSpec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
			return
		}
		job, err := s.jobs.Submit(spec)
		switch {
		case err == ErrQueueFull:
			// Backpressure: bounded queue, explicit retry signal —
			// never unbounded buffering.
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "job queue full; retry later")
		case err == ErrDraining:
			writeError(w, http.StatusServiceUnavailable, "server is draining; no new jobs")
		case err == ErrNoWorkers:
			// Coordinator with an empty fleet: fail fast at the door
			// instead of queueing work nothing can execute.
			writeError(w, http.StatusServiceUnavailable, "no live workers joined; campaign cannot execute")
		case err != nil:
			writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		default:
			w.Header().Set("Location", "/v1/jobs/"+job.ID)
			writeJSON(w, http.StatusAccepted, submitResponse{ID: job.ID, State: StateQueued})
		}
	default:
		w.Header().Set("Allow", "GET, POST")
		writeError(w, http.StatusMethodNotAllowed, "/v1/jobs accepts GET and POST")
	}
}

func (s *Server) handleJobByID(w http.ResponseWriter, r *http.Request) {
	if s.jobs == nil {
		writeError(w, http.StatusServiceUnavailable, "worker node: query jobs on the coordinator")
		return
	}
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub := rest, ""
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		id, sub = rest[:i], rest[i+1:]
	}
	job, ok := s.jobs.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	switch sub {
	case "":
		writeJSON(w, http.StatusOK, job.Status())
	case "results":
		s.streamResults(w, job)
	default:
		writeError(w, http.StatusNotFound, "no sub-resource %q (try /v1/jobs/%s or /v1/jobs/%s/results)", sub, id, id)
	}
}

// streamResults writes a finished job's results as JSON Lines: one
// summary line, then one line per unit estimate, then one per defect
// — a shape a client can consume incrementally however large the
// campaign was.
func (s *Server) streamResults(w http.ResponseWriter, job *Job) {
	res, ok := job.Result()
	if !ok {
		st := job.Status()
		if st.State == StateFailed {
			writeError(w, http.StatusConflict, "job %s failed: %s", job.ID, st.Error)
			return
		}
		writeError(w, http.StatusConflict, "job %s is %s; results stream once it is done", job.ID, st.State)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	type line struct {
		Type string `json:"type"`
		// exactly one of the below is set, keyed by Type
		Summary    *JobResult     `json:"summary,omitempty"`
		Unit       *JobUnitResult `json:"unit,omitempty"`
		Defect     *JobDefect     `json:"defect,omitempty"`
		Categories map[string]int `json:"categories,omitempty"`
	}
	summary := *res
	summary.UnitResults = nil
	summary.Defects = nil
	summary.Categories = nil
	enc.Encode(line{Type: "summary", Summary: &summary})
	for i := range res.UnitResults {
		enc.Encode(line{Type: "unit", Unit: &res.UnitResults[i]})
	}
	for i := range res.Defects {
		enc.Encode(line{Type: "defect", Defect: &res.Defects[i]})
	}
	enc.Encode(line{Type: "categories", Categories: res.Categories})
}

// nightlyRequest is the POST /v1/nightly body.
type nightlyRequest struct {
	// RunID names the nightly run; ids must sort chronologically.
	RunID string `json:"runId"`
	// Seed picks the night's fresh schedule seed.
	Seed int64 `json:"seed"`
}

// nightlyResponse is the POST /v1/nightly payload.
type nightlyResponse struct {
	Generation uint64   `json:"generation"`
	RunID      string   `json:"runId"`
	Executions int      `json:"executions"`
	Reports    int      `json:"reports"`
	Defects    int      `json:"defects"`
	FirstNight bool     `json:"firstNight"`
	PrevRun    string   `json:"prevRun,omitempty"`
	New        []string `json:"new"`
	Resolved   []string `json:"resolved"`
	Recurring  []string `json:"recurring"`
}

func (s *Server) handleNightly(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req nightlyRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad nightly request: %v", err)
		return
	}
	n, err := s.PublishNightly(req.RunID, req.Seed)
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case err == ErrDraining:
			status = http.StatusServiceUnavailable
		case strings.Contains(err.Error(), "already recorded"):
			status = http.StatusConflict
		}
		writeError(w, status, "%s", err.Error())
		return
	}
	resp := nightlyResponse{
		Generation: s.View().Generation(),
		RunID:      n.RunID,
		Executions: n.Executions,
		Reports:    n.Reports,
		Defects:    n.Defects,
		FirstNight: n.FirstNight,
		PrevRun:    n.Delta.RunA,
		New:        []string{}, Resolved: []string{}, Recurring: []string{},
	}
	for _, rec := range n.Delta.New {
		resp.New = append(resp.New, rec.Key)
	}
	for _, rec := range n.Delta.Resolved {
		resp.Resolved = append(resp.Resolved, rec.Key)
	}
	for _, rec := range n.Delta.Recurring {
		resp.Recurring = append(resp.Recurring, rec.Key)
	}
	sort.Strings(resp.New)
	sort.Strings(resp.Resolved)
	sort.Strings(resp.Recurring)
	writeJSON(w, http.StatusOK, resp)
}
