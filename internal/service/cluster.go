package service

// Coordinator mode: the distributed half of raced. A coordinator is a
// normal Server (store, snapshots, jobs API) whose campaigns execute
// on registered worker nodes instead of the local sweep engine. The
// protocol is deliberately small:
//
//	POST /v1/cluster/join       {url}  worker registers itself
//	POST /v1/cluster/heartbeat  {url}  worker liveness beat
//	GET  /v1/cluster                   registry status
//	GET  /v1/replica?since=gen         binary snapshot for read replicas
//	POST /v1/shards                    (on workers) execute one shard
//
// Campaign determinism survives distribution because shards are pure
// functions of (spec, shard coordinates) and the coordinator folds
// results in shard-index order — see dispatch.go.

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"gorace/internal/corpus"
)

// ClusterConfig configures coordinator mode (Config.Cluster). The
// zero value of every field selects a sensible default.
type ClusterConfig struct {
	// ShardRuns is the seed count per dispatched shard (default 16,
	// matching the local engine). Any value yields identical campaign
	// results; it only tunes dispatch granularity.
	ShardRuns int
	// MaxInflight bounds concurrent shard dispatches per worker
	// (default 2).
	MaxInflight int
	// HeartbeatEvery is the liveness watchdog cadence (default 2s).
	HeartbeatEvery time.Duration
	// DeadAfter is how stale a worker's last heartbeat may grow before
	// the coordinator declares it dead and re-dispatches its shards
	// (default 10s).
	DeadAfter time.Duration
	// ShardTimeout bounds one shard dispatch end to end (default 2m).
	ShardTimeout time.Duration
}

// withDefaults fills zero fields with the documented defaults.
func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.ShardRuns < 1 {
		c.ShardRuns = 16
	}
	if c.MaxInflight < 1 {
		c.MaxInflight = 2
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 2 * time.Second
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 10 * time.Second
	}
	if c.ShardTimeout <= 0 {
		c.ShardTimeout = 2 * time.Minute
	}
	return c
}

// ErrNoWorkers rejects campaign submissions on a coordinator with no
// live workers: failing fast at the door beats queueing work nothing
// can execute (handlers answer 503).
var ErrNoWorkers = fmt.Errorf("service: no live workers registered")

// member is one registered worker in the coordinator's registry.
type member struct {
	url        string
	lastBeat   time.Time
	dead       bool
	shardsDone int
}

// registry tracks worker nodes and their liveness. A worker is live
// if it has not been marked dead (failed dispatch) and its last
// heartbeat is within deadAfter. Joining again resurrects a dead
// worker — for the *next* campaign; a running dispatch keeps the
// worker set it started with.
type registry struct {
	mu        sync.Mutex
	deadAfter time.Duration
	nodes     map[string]*member
	order     []string // join order, for stable listings
}

func newRegistry(deadAfter time.Duration) *registry {
	return &registry{deadAfter: deadAfter, nodes: make(map[string]*member)}
}

// join registers (or resurrects) a worker; reports whether the worker
// was not previously live.
func (r *registry) join(url string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.nodes[url]
	if !ok {
		r.nodes[url] = &member{url: url, lastBeat: time.Now()}
		r.order = append(r.order, url)
		return true
	}
	wasDead := m.dead
	m.dead = false
	m.lastBeat = time.Now()
	return wasDead
}

// beat refreshes a worker's liveness; false means the worker is not
// registered (it should rejoin).
func (r *registry) beat(url string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.nodes[url]
	if !ok {
		return false
	}
	m.lastBeat = time.Now()
	m.dead = false
	return true
}

// markDead flips a worker dead; reports whether this call made the
// transition (so exactly one caller acts on a death).
func (r *registry) markDead(url string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.nodes[url]
	if !ok || m.dead {
		return false
	}
	m.dead = true
	return true
}

// addDone bumps a worker's completed-shard counter (status reporting
// only).
func (r *registry) addDone(url string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.nodes[url]; ok {
		m.shardsDone++
	}
}

func (r *registry) liveAt(m *member, now time.Time) bool {
	return !m.dead && now.Sub(m.lastBeat) <= r.deadAfter
}

// liveURLs returns the live workers in join order.
func (r *registry) liveURLs() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	var out []string
	for _, u := range r.order {
		if r.liveAt(r.nodes[u], now) {
			out = append(out, u)
		}
	}
	return out
}

// liveCount returns how many workers are currently live.
func (r *registry) liveCount() int {
	return len(r.liveURLs())
}

// staleLive returns workers that are not marked dead but whose last
// heartbeat has gone stale — the watchdog's kill list.
func (r *registry) staleLive(now time.Time) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for _, u := range r.order {
		m := r.nodes[u]
		if !m.dead && now.Sub(m.lastBeat) > r.deadAfter {
			out = append(out, u)
		}
	}
	return out
}

// WorkerStatus is the wire form of one registered worker in
// GET /v1/cluster.
type WorkerStatus struct {
	// URL is the worker's advertised base URL.
	URL string `json:"url"`
	// Live reports current liveness (joined, beating, not marked dead).
	Live bool `json:"live"`
	// LastHeartbeat is the last join/heartbeat time, RFC 3339.
	LastHeartbeat string `json:"lastHeartbeat"`
	// ShardsDone counts shards this worker has completed.
	ShardsDone int `json:"shardsDone"`
}

// status renders the registry for GET /v1/cluster.
func (r *registry) status() []WorkerStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	out := make([]WorkerStatus, 0, len(r.order))
	for _, u := range r.order {
		m := r.nodes[u]
		out = append(out, WorkerStatus{
			URL:           u,
			Live:          r.liveAt(m, now),
			LastHeartbeat: m.lastBeat.UTC().Format(time.RFC3339),
			ShardsDone:    m.shardsDone,
		})
	}
	return out
}

// cluster is the coordinator runtime: the worker registry plus the
// pooled HTTP client every dispatch reuses.
type cluster struct {
	cfg    ClusterConfig
	log    *log.Logger
	reg    *registry
	client *http.Client
}

func newCluster(cfg ClusterConfig, logger *log.Logger) *cluster {
	return &cluster{
		cfg: cfg,
		log: logger,
		reg: newRegistry(cfg.DeadAfter),
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}},
	}
}

// joinRequest is the POST /v1/cluster/join and /v1/cluster/heartbeat
// body: the worker's advertised base URL, which the coordinator
// dials back for shard dispatches.
type joinRequest struct {
	URL string `json:"url"`
}

// joinResponse is the POST /v1/cluster/join payload.
type joinResponse struct {
	Workers    int    `json:"workers"`
	Generation uint64 `json:"generation"`
}

func decodeNodeURL(w http.ResponseWriter, r *http.Request) (string, bool) {
	var req joinRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad cluster request: %v", err)
		return "", false
	}
	u, err := url.Parse(req.URL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		writeError(w, http.StatusBadRequest, "worker url %q is not an absolute URL", req.URL)
		return "", false
	}
	return req.URL, true
}

func (s *Server) handleClusterJoin(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	u, ok := decodeNodeURL(w, r)
	if !ok {
		return
	}
	if s.cluster.reg.join(u) {
		s.log.Printf("cluster: worker %s joined (%d registered)", u, len(s.cluster.reg.status()))
	}
	writeJSON(w, http.StatusOK, joinResponse{
		Workers:    len(s.cluster.reg.status()),
		Generation: s.View().Generation(),
	})
}

func (s *Server) handleClusterBeat(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	u, ok := decodeNodeURL(w, r)
	if !ok {
		return
	}
	if !s.cluster.reg.beat(u) {
		writeError(w, http.StatusNotFound, "worker %s is not registered; rejoin via /v1/cluster/join", u)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// clusterResponse is the GET /v1/cluster payload.
type clusterResponse struct {
	Workers []WorkerStatus `json:"workers"`
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, clusterResponse{Workers: s.cluster.reg.status()})
}

// handleReplica serves the current snapshot as a binary corpus delta
// for read replicas. ?since=<gen> answers 304 when the replica is
// already at the served generation, so the steady-state pull is one
// header exchange. The X-Corpus-Generation and X-Corpus-Path headers
// stamp the replica's View with the origin's identity, which is what
// makes replica responses byte-identical to the coordinator's at the
// same generation.
func (s *Server) handleReplica(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	v := s.View()
	gen := strconv.FormatUint(v.Generation(), 10)
	w.Header().Set("X-Corpus-Generation", gen)
	if r.URL.Query().Get("since") == gen {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("X-Corpus-Path", v.Path())
	w.Header().Set("Content-Type", "application/octet-stream")
	if err := corpus.WriteDelta(w, v.Export()); err != nil {
		// Too late for a status change; the truncated body fails the
		// replica's strict ReadDelta, which is the point of the format.
		s.log.Printf("replica: write: %v", err)
	}
}
